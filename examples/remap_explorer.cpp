// Hardware designer's view: explore the automated remapping-function
// generator (§V). Generates candidate circuits for a chosen Table II spec,
// shows what the constraint filter discards, and prints the winning
// construction with its C2/C3 validation report (cf. paper Figure 2).
#include <cstdio>
#include <string>

#include "remapgen/search.h"

int main(int argc, char** argv) {
  using namespace stbpu::remapgen;
  const std::string which = argc > 1 ? argv[1] : "R1";

  RemapSpec spec;
  bool found = false;
  for (const auto& s : table2_specs()) {
    if (s.name == which) {
      spec = s;
      found = true;
    }
  }
  if (!found) {
    std::printf("unknown function '%s' (choose R1 R2 R3 R4 Rt Rp)\n", which.c_str());
    return 1;
  }

  std::printf("searching remapping circuits for %s: %u -> %u bits\n", spec.name.c_str(),
              spec.input_bits, spec.output_bits);
  std::printf("hardware constraints (C1): critical path <= 45 transistors "
              "(single cycle), layer/total/crossover budgets per §V-A\n\n");

  SearchConfig cfg;
  cfg.candidates = 24;
  cfg.validation.uniformity_samples = 1 << 15;
  cfg.validation.avalanche_samples = 512;

  const auto result = search(spec, cfg);
  std::printf("constraint-satisfying candidates generated: %u\n", result.generated);
  std::printf("partial designs discarded by the constraint filter: %llu\n",
              static_cast<unsigned long long>(result.discarded));
  std::printf("candidates passing C2 (uniformity) + C3 (avalanche): %u\n\n",
              result.passed);

  if (!result.best) {
    std::printf("no candidate validated — rerun (the search is randomized)\n");
    return 1;
  }
  std::printf("== selected circuit (lowest Eq. (1) score) ==\n%s\n",
              result.best->describe().c_str());
  const auto& rep = result.best_report;
  std::printf("C2 uniformity:  bin CV %.4f vs ideal %.4f  [%s]\n", rep.bin_cv,
              rep.ideal_bin_cv, rep.uniform() ? "pass" : "FAIL");
  std::printf("C3 avalanche:   mean flip %.4f (ideal 0.5), per-lambda CV %.4f,\n"
              "                per-output-bit spread %.4f  [%s]\n",
              rep.mean_avalanche, rep.avalanche_cv, rep.per_bit_spread,
              rep.avalanche_ok() ? "pass" : "FAIL");
  std::printf("Eq. (1) score:  %.4f (0 = ideal)\n", rep.score);
  return 0;
}
