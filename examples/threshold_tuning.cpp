// OS operator's view: tuning the re-randomization thresholds (Γ = r·C).
// Sweeps the attack-difficulty factor r and reports, for one workload, the
// accuracy cost and re-randomization frequency — the security/performance
// dial the paper gives the OS (§IV-A, §VII-A, Figure 6's trace-level twin).
#include <cstdio>

#include "analysis/equations.h"
#include "models/models.h"
#include "sim/bpu_sim.h"
#include "trace/generator.h"
#include "trace/profile.h"

int main(int argc, char** argv) {
  using namespace stbpu;
  const std::string workload = argc > 1 ? argv[1] : "deepsjeng";
  const auto profile = trace::profile_by_name(workload);
  const sim::BpuSimOptions opt{.max_branches = 600'000, .warmup_branches = 60'000};

  std::printf("threshold tuning on '%s' (600k branches)\n\n", profile.name.c_str());
  std::printf("binding attack complexities C (paper §VI-A5): M=%.3g, E=%.3g\n\n",
              analysis::binding_complexity().mispredictions_c,
              analysis::binding_complexity().evictions_c);

  // Unprotected reference.
  double base_oae;
  {
    auto model = models::BpuModel::create({});
    trace::SyntheticWorkloadGenerator gen(profile);
    base_oae = sim::simulate_bpu(*model, gen, opt).oae();
  }
  std::printf("unprotected baseline OAE: %.4f\n\n", base_oae);
  std::printf("%-10s %14s %14s %10s %10s %10s\n", "r", "misp thresh", "evict thresh",
              "OAE", "norm.", "rerands");

  for (const double r : {1.0, 0.1, 0.05, 0.01, 1e-3, 1e-4, 1e-5}) {
    models::ModelSpec spec{.model = models::ModelKind::kStbpu};
    spec.rerand_difficulty_r = r;
    auto model = models::BpuModel::create(spec);
    trace::SyntheticWorkloadGenerator gen(profile);
    const auto stats = sim::simulate_bpu(*model, gen, opt);
    const auto thresholds = analysis::derive_thresholds(r);
    std::printf("%-10g %14llu %14llu %10.4f %10.4f %10llu%s\n", r,
                static_cast<unsigned long long>(thresholds.mispredictions),
                static_cast<unsigned long long>(thresholds.evictions), stats.oae(),
                stats.oae() / base_oae,
                static_cast<unsigned long long>(model->tokens()->rerandomizations()),
                r == 0.05 ? "   <- paper default" : "");
  }

  std::printf("\nreading the dial: r=1 means an attacker reaches 50%% success\n"
              "probability exactly when the ST rotates; smaller r rotates earlier.\n"
              "The OS can even set per-process thresholds of 1, disabling the BPU\n"
              "for ultra-sensitive code (paper §IV-A).\n");
  return 0;
}
