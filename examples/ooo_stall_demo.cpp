// Cycle-level stall attribution: run a workload through the integer-tick
// OoO core (Table IV machine) on an STBPU-protected vs unprotected BPU and
// show where the simulated machine's cycles went — the per-thread stall
// breakdown OooResult carries (fetch bandwidth, branch redirects,
// ROB/IQ/LQ/SQ occupancy).
//
//   ./examples/ooo_stall_demo [workload] [instructions]
//
// Demonstrates:
//   * trace::SyntheticInstrGenerator — instruction-level workload streams
//   * exp::for_each_engine + sim::run_ooo — the devirtualized tick core
//   * OooResult::stalls — exact stall attribution (integer ticks, reported
//     as cycles), the `--stall-stats` side channel of `stbpu_bench run
//     ooo_engine`
#include <cstdio>
#include <cstdlib>
#include <string>

#include "exp/engine_visit.h"
#include "models/models.h"
#include "sim/ooo.h"
#include "trace/instr.h"
#include "trace/profile.h"

int main(int argc, char** argv) {
  using namespace stbpu;

  const std::string workload = argc > 1 ? argv[1] : "mcf";
  const std::uint64_t instructions =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 300'000;
  const std::uint64_t warmup = instructions / 10;

  const trace::WorkloadProfile profile = trace::profile_by_name(workload);
  std::printf("workload: %s — %llu instructions (+%llu warm-up), Table IV core\n\n",
              profile.name.c_str(),
              static_cast<unsigned long long>(instructions),
              static_cast<unsigned long long>(warmup));

  for (const auto model :
       {models::ModelKind::kUnprotected, models::ModelKind::kStbpu}) {
    const models::ModelSpec spec{.model = model,
                                 .direction = models::DirectionKind::kSklCond};
    exp::for_each_engine(spec, [&](auto& engine) {
      trace::SyntheticInstrGenerator gen(profile);
      const sim::OooResult r =
          sim::run_ooo({}, engine, {&gen}, instructions, warmup);
      const sim::OooThreadStalls& s = r.stalls[0];
      std::printf("%s/SKLCond\n", models::to_string(model).c_str());
      std::printf("  IPC %.4f over %.0f cycles (%llu instructions, OAE %.4f)\n",
                  r.ipc[0], r.cycles[0],
                  static_cast<unsigned long long>(r.instructions[0]),
                  r.branch_stats[0].oae());
      std::printf("  stall cycles: redirect %.0f | fetch-bw %.0f | "
                  "ROB %.0f | IQ %.0f | LQ %.0f | SQ %.0f\n\n",
                  s.redirect, s.fetch_bandwidth, s.rob, s.iq, s.lq, s.sq);
    });
  }
  std::printf("(same breakdown per grid point: "
              "stbpu_bench run ooo_engine --stall-stats)\n");
  return 0;
}
