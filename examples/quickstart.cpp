// Quickstart: build an STBPU-protected predictor, run a workload trace
// through it next to the unprotected baseline, and print accuracy plus the
// re-randomization activity of the secret-token monitors.
//
//   ./examples/quickstart [workload] [branches]
//
// Demonstrates the core public API:
//   * trace::SyntheticWorkloadGenerator — workload branch streams
//   * models::BpuModel::create          — assembled BPU designs
//   * sim::simulate_bpu                 — trace-driven evaluation (OAE)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "models/models.h"
#include "sim/bpu_sim.h"
#include "trace/generator.h"
#include "trace/profile.h"

int main(int argc, char** argv) {
  using namespace stbpu;

  const std::string workload = argc > 1 ? argv[1] : "perlbench";
  const std::uint64_t branches = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                          : 1'000'000;

  trace::WorkloadProfile profile = trace::profile_by_name(workload);
  std::printf("workload: %s  (%u branch sites, %u processes)\n",
              profile.name.c_str(), profile.static_branches, profile.num_processes);
  std::printf("simulating %llu branches per model (100k warm-up)\n\n",
              static_cast<unsigned long long>(branches));

  const sim::BpuSimOptions opt{.max_branches = branches, .warmup_branches = 100'000};

  const models::ModelKind kinds[] = {
      models::ModelKind::kUnprotected,
      models::ModelKind::kUcode1,
      models::ModelKind::kUcode2,
      models::ModelKind::kConservative,
      models::ModelKind::kStbpu,
  };

  std::printf("%-28s %8s %8s %8s %10s %8s\n", "model", "OAE", "dir", "target",
              "evictions", "rerand");
  double baseline_oae = 0.0;
  for (const auto kind : kinds) {
    auto model = models::BpuModel::create({.model = kind});
    trace::SyntheticWorkloadGenerator gen(profile);
    const sim::BranchStats s = sim::simulate_bpu(*model, gen, opt);
    if (kind == models::ModelKind::kUnprotected) baseline_oae = s.oae();
    std::printf("%-28s %8.4f %8.4f %8.4f %10llu %8llu", model->name().data(),
                s.oae(), s.direction_rate(), s.target_rate(),
                static_cast<unsigned long long>(s.btb_evictions),
                static_cast<unsigned long long>(
                    model->tokens() ? model->tokens()->rerandomizations() : 0));
    if (baseline_oae > 0.0) std::printf("   (%.3fx baseline)", s.oae() / baseline_oae);
    std::printf("\n");
  }

  std::printf("\nSTBPU keeps accuracy at the unprotected level while the\n"
              "flush/partition designs pay for every context and mode switch.\n");
  return 0;
}
