// BranchScope walkthrough: a PHT side channel recovering a victim's
// secret-dependent branch directions bit by bit — then the same attack
// against STBPU, where the keyed R3 mapping reduces the attacker to coin
// flipping, and a sustained attempt trips the re-randomization monitor.
#include <cstdio>
#include <string>

#include "attacks/harness.h"
#include "models/models.h"
#include "util/rng.h"

int main() {
  using namespace stbpu;
  constexpr std::uint64_t kVictimBranch = 0x0000'2345'6780ULL;
  const std::string secret = "1011001110001011";  // victim's secret bits

  std::printf("BranchScope demo: recovering a %zu-bit secret through the PHT\n\n",
              secret.size());

  for (const auto kind : {models::ModelKind::kUnprotected, models::ModelKind::kStbpu}) {
    auto model = models::BpuModel::create({.model = kind});
    attacks::Harness h(model.get());
    const std::uint64_t primer = kVictimBranch ^ (1ULL << 12);

    std::string recovered;
    for (const char bit : secret) {
      // Keep the hybrid predictor in its base (1-level) mode.
      for (int i = 0; i < 6; ++i) {
        h.jcc(attacks::Harness::kAttacker, primer, true, 0x0000'6666'0000ULL);
      }
      // Victim: one secret-dependent branch, executed three times.
      const bool taken = bit == '1';
      for (int i = 0; i < 3; ++i) {
        h.jcc(attacks::Harness::kVictim, kVictimBranch, taken, 0x0000'2345'9000ULL);
      }
      // Attacker: probe the shared counter and read the prediction.
      const auto res =
          h.jcc(attacks::Harness::kAttacker, kVictimBranch, true, 0x0000'6666'0000ULL);
      recovered.push_back(res.pred.taken ? '1' : '0');
      h.jcc(attacks::Harness::kAttacker, kVictimBranch, false, 0x0000'6666'0000ULL);
    }

    unsigned correct = 0;
    for (std::size_t i = 0; i < secret.size(); ++i) {
      correct += secret[i] == recovered[i];
    }
    std::printf("--- %s ---\n", model->name().data());
    std::printf("  secret:    %s\n", secret.c_str());
    std::printf("  recovered: %s   (%u/%zu bits)\n\n", recovered.c_str(), correct,
                secret.size());
  }

  std::printf("On the baseline the attacker reads the victim's counter exactly;\n"
              "under STBPU attacker and victim touch unrelated PHT entries, and a\n"
              "longer campaign only drains the misprediction MSR until the secret\n"
              "token rotates (thresholds: paper §VII-A, r=0.05 -> ~41.9k events).\n");
  return 0;
}
