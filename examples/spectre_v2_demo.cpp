// Spectre v2 walkthrough: a cross-process branch-target-injection attack,
// step by step, against the unprotected baseline and against STBPU.
//
// The attacker trains the shared BTB so the victim's indirect branch
// speculates into a chosen "gadget". On STBPU the attacker's entry lives
// under a different ψ mapping and its payload is φ-encrypted — the victim
// either misses or decodes garbage, never the gadget.
#include <cstdio>

#include "attacks/harness.h"
#include "attacks/table1.h"
#include "models/models.h"

int main() {
  using namespace stbpu;
  constexpr std::uint64_t kVictimBranch = 0x0000'2345'6780ULL;
  constexpr std::uint64_t kLegitTarget = 0x0000'2345'9000ULL;
  constexpr std::uint64_t kGadget = 0x0000'1122'3344ULL;

  std::printf("Spectre v2 (branch target injection) demo\n");
  std::printf("victim indirect branch @ %#llx, legitimate target %#llx\n",
              (unsigned long long)kVictimBranch, (unsigned long long)kLegitTarget);
  std::printf("attacker's gadget address %#llx\n\n", (unsigned long long)kGadget);

  for (const auto kind : {models::ModelKind::kUnprotected, models::ModelKind::kStbpu}) {
    auto model = models::BpuModel::create({.model = kind});
    attacks::Harness h(model.get());
    std::printf("--- %s ---\n", model->name().data());

    // Step 1: the attacker reaches the branch with the victim's history
    // (controlled via the victim's inputs in a real exploit) and trains the
    // gadget target.
    h.align_history(attacks::Harness::kAttacker);
    h.ijmp(attacks::Harness::kAttacker, kVictimBranch, kGadget);
    std::printf("  [A] trained BTB entry for %#llx -> gadget\n",
                (unsigned long long)kVictimBranch);

    // Step 2: the victim executes its indirect branch with the same history.
    h.align_history(attacks::Harness::kVictim);
    const auto res =
        h.ijmp(attacks::Harness::kVictim, kVictimBranch, kLegitTarget);

    if (res.pred.target_valid) {
      std::printf("  [V] front end predicted target %#llx\n",
                  (unsigned long long)res.pred.target);
    } else {
      std::printf("  [V] no BTB prediction (static fall-through)\n");
    }
    if (res.pred.target_valid && res.pred.target == kGadget) {
      std::printf("  => INJECTION SUCCEEDED: victim speculatively executes the "
                  "attacker's gadget!\n\n");
    } else {
      std::printf("  => injection failed: speculation never reaches the gadget\n\n");
    }
  }

  // Statistics over many trials.
  std::printf("success rate over 256 trials:\n");
  for (const auto kind : {models::ModelKind::kUnprotected, models::ModelKind::kUcode1,
                          models::ModelKind::kConservative, models::ModelKind::kStbpu}) {
    auto model = models::BpuModel::create({.model = kind});
    const auto r = attacks::btb_injection_away(*model, 256, 99, kGadget);
    std::printf("  %-28s %.3f\n", model->name().data(), r.success_rate);
  }
  std::printf("\nSTBPU stops the attack without flushing: the entry is simply\n"
              "unreachable under the victim's secret token (paper §VI-A1).\n");
  return 0;
}
