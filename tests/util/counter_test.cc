#include "util/saturating_counter.h"

#include <gtest/gtest.h>

namespace stbpu::util {
namespace {

TEST(SaturatingCounter, ClassicTwoBitFsm) {
  SaturatingCounter<2> c;  // starts weakly not-taken (1)
  EXPECT_FALSE(c.taken());
  c.update(true);  // -> 2 weakly taken
  EXPECT_TRUE(c.taken());
  c.update(true);  // -> 3 strongly taken
  EXPECT_TRUE(c.is_saturated());
  c.update(false);  // -> 2, still predicts taken (hysteresis)
  EXPECT_TRUE(c.taken());
  c.update(false);  // -> 1
  EXPECT_FALSE(c.taken());
}

TEST(SaturatingCounter, SaturatesAtBounds) {
  SaturatingCounter<2> c;
  for (int i = 0; i < 10; ++i) c.increment();
  EXPECT_EQ(c.raw(), 3);
  for (int i = 0; i < 10; ++i) c.decrement();
  EXPECT_EQ(c.raw(), 0);
}

TEST(SaturatingCounter, ResetBias) {
  SaturatingCounter<2> c;
  c.reset(true);
  EXPECT_TRUE(c.taken());
  EXPECT_FALSE(c.is_saturated());
  c.reset(false);
  EXPECT_FALSE(c.taken());
  EXPECT_FALSE(c.is_saturated());
}

TEST(SaturatingCounter, ConstructorClampsToMax) {
  SaturatingCounter<2> c(250);
  EXPECT_EQ(c.raw(), 3);
}

template <unsigned Bits>
void exercise_width() {
  SaturatingCounter<Bits> c;
  const unsigned max = SaturatingCounter<Bits>::kMax;
  for (unsigned i = 0; i < 2 * max; ++i) c.increment();
  EXPECT_EQ(c.raw(), max);
  EXPECT_TRUE(c.taken());
  for (unsigned i = 0; i < 2 * max; ++i) c.decrement();
  EXPECT_EQ(c.raw(), 0u);
  EXPECT_FALSE(c.taken());
}

TEST(SaturatingCounter, AllSupportedWidths) {
  exercise_width<1>();
  exercise_width<2>();
  exercise_width<3>();
  exercise_width<4>();
  exercise_width<8>();
}

TEST(SignedSaturatingCounter, UpdatesAndSaturates) {
  SignedSaturatingCounter<3> c;  // range [-4, 3]
  EXPECT_TRUE(c.taken());        // 0 predicts taken
  for (int i = 0; i < 10; ++i) c.update(true);
  EXPECT_EQ(c.value(), 3);
  EXPECT_TRUE(c.high_confidence());
  for (int i = 0; i < 20; ++i) c.update(false);
  EXPECT_EQ(c.value(), -4);
  EXPECT_TRUE(c.high_confidence());
  EXPECT_FALSE(c.taken());
  EXPECT_EQ(c.magnitude(), 4);
}

TEST(SignedSaturatingCounter, SetClamps) {
  SignedSaturatingCounter<3> c;
  c.set(100);
  EXPECT_EQ(c.value(), 3);
  c.set(-100);
  EXPECT_EQ(c.value(), -4);
}

TEST(SignedSaturatingCounter, WeakStates) {
  SignedSaturatingCounter<3> c;
  c.set(0);
  EXPECT_TRUE(c.taken());
  c.set(-1);
  EXPECT_FALSE(c.taken());
  EXPECT_FALSE(c.high_confidence());
}

}  // namespace
}  // namespace stbpu::util
