#include "util/stats.h"

#include <gtest/gtest.h>

namespace stbpu::util {
namespace {

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_NEAR(stddev(xs), std::sqrt(2.0), 1e-12);
}

TEST(Stats, EmptyInputsAreSafe) {
  const std::vector<double> xs;
  EXPECT_EQ(mean(xs), 0.0);
  EXPECT_EQ(stddev(xs), 0.0);
  EXPECT_EQ(harmonic_mean(xs), 0.0);
  EXPECT_EQ(coefficient_of_variation(xs), 0.0);
}

TEST(Stats, CoefficientOfVariation) {
  const std::vector<double> uniform = {5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(uniform), 0.0);
  const std::vector<double> spread = {0, 10};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(spread), 1.0);
}

TEST(Stats, HarmonicMean) {
  const std::vector<double> xs = {1.0, 2.0};                // hmean = 4/3
  EXPECT_NEAR(harmonic_mean(xs), 4.0 / 3.0, 1e-12);
  const std::vector<double> equal = {2.5, 2.5};
  EXPECT_DOUBLE_EQ(harmonic_mean(equal), 2.5);
  // Harmonic mean penalizes imbalance — the SMT-throughput property.
  const std::vector<double> imbalanced = {0.5, 4.5};
  EXPECT_LT(harmonic_mean(imbalanced), mean(imbalanced));
}

TEST(Stats, HarmonicMeanGuardsNonPositive) {
  const std::vector<double> xs = {1.0, 0.0};
  EXPECT_EQ(harmonic_mean(xs), 0.0);
}

TEST(RunningStats, MatchesBatch) {
  RunningStats rs;
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_DOUBLE_EQ(rs.mean(), mean(xs));
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
  EXPECT_EQ(rs.min(), 2);
  EXPECT_EQ(rs.max(), 9);
}

TEST(RunningStats, SingleValue) {
  RunningStats rs;
  rs.add(3.5);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.5);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.min(), 3.5);
  EXPECT_EQ(rs.max(), 3.5);
}

}  // namespace
}  // namespace stbpu::util
