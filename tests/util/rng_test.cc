#include "util/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace stbpu::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  unsigned same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 2u);
}

TEST(Rng, BelowStaysInBounds) {
  Xoshiro256 rng(7);
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowZeroBound) {
  Xoshiro256 rng(7);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, RangeInclusive) {
  Xoshiro256 rng(7);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    lo_seen |= v == 3;
    hi_seen |= v == 6;
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability) {
  Xoshiro256 rng(7);
  for (const double p : {0.1, 0.5, 0.9}) {
    unsigned hits = 0;
    for (int i = 0; i < 20000; ++i) hits += rng.chance(p) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, p, 0.02) << "p=" << p;
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Xoshiro256 rng(9);
  std::vector<unsigned> hist(16, 0);
  for (int i = 0; i < 64000; ++i) ++hist[rng.below(16)];
  for (unsigned h : hist) EXPECT_NEAR(h, 4000.0, 400.0);
}

TEST(Rng, SplitMixExpandsDistinctly) {
  std::uint64_t s = 1;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace stbpu::util
