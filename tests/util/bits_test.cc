#include "util/bits.h"

#include <gtest/gtest.h>

namespace stbpu::util {
namespace {

TEST(Bits, ExtractBasic) {
  EXPECT_EQ(bits(0xFF00, 8, 8), 0xFFu);
  EXPECT_EQ(bits(0xABCD, 0, 4), 0xDu);
  EXPECT_EQ(bits(0xABCD, 4, 4), 0xCu);
  EXPECT_EQ(bits(0xABCD, 12, 4), 0xAu);
}

TEST(Bits, ExtractZeroWidth) { EXPECT_EQ(bits(0xFFFF, 3, 0), 0u); }

TEST(Bits, ExtractFullWidth) {
  EXPECT_EQ(bits(~0ULL, 0, 64), ~0ULL);
  EXPECT_EQ(bits(~0ULL, 1, 64), ~0ULL >> 1);
}

TEST(Bits, MaskWidths) {
  EXPECT_EQ(mask(0), 0u);
  EXPECT_EQ(mask(1), 1u);
  EXPECT_EQ(mask(8), 0xFFu);
  EXPECT_EQ(mask(48), 0xFFFF'FFFF'FFFFULL);
  EXPECT_EQ(mask(64), ~0ULL);
}

TEST(Bits, FoldXorReducesWidth) {
  for (unsigned w : {4u, 8u, 14u, 22u}) {
    const std::uint64_t v = 0x0123'4567'89AB'CDEFULL;
    EXPECT_LE(fold_xor(v, w), mask(w)) << "width " << w;
  }
}

TEST(Bits, FoldXorIsXorOfChunks) {
  // 16-bit value folded to 8: high byte XOR low byte.
  EXPECT_EQ(fold_xor(0xAB12, 8), 0xABu ^ 0x12u);
  // Three chunks.
  EXPECT_EQ(fold_xor(0x01'02'03, 8), 0x01u ^ 0x02u ^ 0x03u);
}

TEST(Bits, FoldXorZero) { EXPECT_EQ(fold_xor(0, 8), 0u); }

TEST(Bits, FoldXorLinearity) {
  // fold(a ^ b) == fold(a) ^ fold(b) — the linearity attackers exploit to
  // construct legacy-mapping collisions.
  const std::uint64_t a = 0xDEAD'BEEF'1234ULL;
  const std::uint64_t b = 0x1111'2222'3333ULL;
  EXPECT_EQ(fold_xor(a ^ b, 14), fold_xor(a, 14) ^ fold_xor(b, 14));
}

TEST(Bits, Rotations) {
  EXPECT_EQ(rotl64(1, 1), 2u);
  EXPECT_EQ(rotl64(1ULL << 63, 1), 1u);
  EXPECT_EQ(rotr64(1, 1), 1ULL << 63);
  const std::uint64_t v = 0x0123'4567'89AB'CDEFULL;
  for (unsigned r : {0u, 7u, 32u, 63u}) {
    EXPECT_EQ(rotr64(rotl64(v, r), r), v) << "rot " << r;
  }
}

TEST(Bits, Hamming) {
  EXPECT_EQ(hamming(0, 0), 0u);
  EXPECT_EQ(hamming(0, ~0ULL), 64u);
  EXPECT_EQ(hamming(0b1010, 0b0101), 4u);
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0xFF, 8), -1);
  EXPECT_EQ(sign_extend(0x7F, 8), 127);
  EXPECT_EQ(sign_extend(0x80, 8), -128);
  EXPECT_EQ(sign_extend(0x0, 8), 0);
  EXPECT_EQ(sign_extend(0b111, 3), -1);
}

TEST(Bits, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_EQ(next_pow2(5), 8u);
  EXPECT_EQ(next_pow2(8), 8u);
  EXPECT_EQ(log2_pow2(4096), 12u);
}

}  // namespace
}  // namespace stbpu::util
