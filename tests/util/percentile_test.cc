// PercentileReservoir: exact nearest-rank quantiles under the budget,
// unbiased (and seed-deterministic) reservoir sampling past it.
#include "util/percentile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace stbpu::util {
namespace {

TEST(Percentile, ExactUnderBudget) {
  // 1..100 inserted shuffled: nearest-rank quantiles are exact.
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(i);
  Xoshiro256 rng(3);
  for (std::size_t i = values.size(); i > 1; --i) {
    std::swap(values[i - 1], values[rng.below(i)]);
  }
  PercentileReservoir res(4096, 7);
  for (double v : values) res.add(v);
  EXPECT_TRUE(res.exact());
  EXPECT_EQ(res.count(), 100u);
  EXPECT_DOUBLE_EQ(res.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(res.p50(), 50.0);
  EXPECT_DOUBLE_EQ(res.p99(), 99.0);
  EXPECT_DOUBLE_EQ(res.quantile(1.0), 100.0);
}

TEST(Percentile, EmptyAndSingle) {
  PercentileReservoir res;
  EXPECT_DOUBLE_EQ(res.p50(), 0.0);
  EXPECT_EQ(res.count(), 0u);
  res.add(42.0);
  EXPECT_DOUBLE_EQ(res.p50(), 42.0);
  EXPECT_DOUBLE_EQ(res.p99(), 42.0);
}

TEST(Percentile, DeterministicUnderSeed) {
  // Same stream + same seed ⇒ bit-identical quantiles even far past the
  // budget (the compare-gate contract for tail metrics).
  PercentileReservoir a(256, 11), b(256, 11);
  Xoshiro256 input(99);
  for (int i = 0; i < 100'000; ++i) {
    const double x = input.uniform();
    a.add(x);
    b.add(x);
  }
  EXPECT_FALSE(a.exact());
  EXPECT_EQ(a.p50(), b.p50());
  EXPECT_EQ(a.p99(), b.p99());
  EXPECT_EQ(a.quantile(0.25), b.quantile(0.25));
}

TEST(Percentile, ApproximatesPastBudget) {
  // 200K uniform [0,1) samples through a 1024-slot reservoir: the retained
  // sample is uniform over the stream, so quantile error is a few σ of
  // sqrt(q(1-q)/budget) ≈ 0.016 — a 0.06 tolerance is far outside noise.
  PercentileReservoir res(1024, 5);
  Xoshiro256 input(1234);
  for (int i = 0; i < 200'000; ++i) res.add(input.uniform());
  EXPECT_NEAR(res.p50(), 0.50, 0.06);
  EXPECT_NEAR(res.p99(), 0.99, 0.03);
  EXPECT_NEAR(res.quantile(0.10), 0.10, 0.06);
}

TEST(Percentile, QuantilesAreMonotone) {
  PercentileReservoir res(512, 21);
  Xoshiro256 input(8);
  for (int i = 0; i < 10'000; ++i) res.add(input.uniform() * 1e6);
  double prev = res.quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = res.quantile(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
}

}  // namespace
}  // namespace stbpu::util
