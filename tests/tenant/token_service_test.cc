// Multi-tenant ψ-token service: state machine, pid-slot save/restore,
// clock-hand eviction, O(1) shard invalidation, QoS classes, and the churn
// driver's single-tenant bit-identity anchor.
#include "tenant/token_service.h"

#include <gtest/gtest.h>

#include "core/monitor.h"
#include "core/secret_token.h"
#include "models/engine.h"
#include "sim/stats.h"
#include "tenant/churn.h"
#include "trace/generator.h"
#include "trace/profile.h"
#include "trace/stream.h"

namespace stbpu::tenant {
namespace {

TokenServiceConfig tiny(std::uint32_t shard_bits, std::uint32_t capacity,
                        std::uint16_t pid_slots) {
  TokenServiceConfig cfg;
  cfg.shard_bits = shard_bits;
  cfg.shard_capacity = capacity;
  cfg.pid_slots = pid_slots;
  return cfg;
}

TEST(TokenService, LifecycleColdLiveCold) {
  core::STManager stm(1);
  TokenService svc(tiny(2, 16, 4), {core::MonitorConfig{}});
  EXPECT_FALSE(svc.contains(42));
  EXPECT_EQ(svc.state(42), TenantState::kCold) << "unknown tenants read as COLD";

  EXPECT_EQ(svc.register_tenant(42), AcquireStatus::kOk);
  EXPECT_TRUE(svc.contains(42));
  EXPECT_EQ(svc.state(42), TenantState::kCold);
  EXPECT_EQ(svc.size(), 1u);

  const auto a = svc.acquire(42, stm, nullptr);
  ASSERT_EQ(a.status, AcquireStatus::kOk);
  EXPECT_EQ(svc.state(42), TenantState::kLive);
  EXPECT_FALSE(a.ctx.kernel);
  EXPECT_GE(a.ctx.pid, 1u);

  svc.release(42);
  EXPECT_EQ(svc.state(42), TenantState::kCold);

  // Immediate re-acquire is a free resume onto the same pid.
  const auto b = svc.acquire(42, stm, nullptr);
  EXPECT_EQ(b.ctx, a.ctx);
  EXPECT_EQ(svc.stats().resumes, 1u);
  EXPECT_EQ(svc.stats().slot_recycles, 0u);
}

TEST(TokenService, AcquireAutoRegistersUnknownTenants) {
  core::STManager stm(1);
  TokenService svc(tiny(2, 16, 4), {core::MonitorConfig{}});
  const auto a = svc.acquire(7, stm, nullptr);
  EXPECT_EQ(a.status, AcquireStatus::kOk);
  EXPECT_TRUE(svc.contains(7));
  EXPECT_EQ(svc.state(7), TenantState::kLive);
}

TEST(TokenService, SavedTokenIsRestoredAcrossSlotRecycling) {
  core::STManager stm(0xFEED);
  // One pid slot: every tenant change recycles it.
  TokenService svc(tiny(0, 16, 1), {core::MonitorConfig{}});

  const auto a1 = svc.acquire(/*A=*/10, stm, nullptr);
  ASSERT_EQ(a1.status, AcquireStatus::kOk);
  const core::SecretToken tok_a = stm.token(a1.ctx);  // engine's lazy draw
  svc.release(10);

  const auto b = svc.acquire(/*B=*/20, stm, nullptr);
  ASSERT_EQ(b.status, AcquireStatus::kOk);
  EXPECT_EQ(b.ctx, a1.ctx) << "single slot must be recycled";
  EXPECT_EQ(svc.stats().slot_recycles, 1u);
  const core::SecretToken tok_b = stm.token(b.ctx);
  EXPECT_NE(tok_b, tok_a) << "recycled pid must never serve the victim's ST";
  svc.release(20);

  const auto a2 = svc.acquire(10, stm, nullptr);
  ASSERT_EQ(a2.status, AcquireStatus::kOk);
  EXPECT_TRUE(a2.installed);
  EXPECT_FALSE(a2.rekeyed);
  EXPECT_EQ(stm.token(a2.ctx), tok_a)
      << "returning tenant gets its saved ST back (OS context-switch restore)";
  EXPECT_EQ(svc.stats().installs, 1u);
}

TEST(TokenService, MonitorBudgetIsSavedAndRestored) {
  core::STManager stm(3);
  core::EventMonitor mon(&stm, {.misprediction_threshold = 10, .eviction_threshold = 10});
  TokenService svc(tiny(0, 16, 1), {mon.config()});

  const auto a1 = svc.acquire(10, stm, &mon);
  (void)stm.token(a1.ctx);
  mon.on_misprediction(a1.ctx, false);
  mon.on_misprediction(a1.ctx, false);
  mon.on_misprediction(a1.ctx, false);
  svc.release(10);

  (void)svc.acquire(20, stm, &mon);  // recycles the slot, saving A's image
  svc.release(20);

  const auto a2 = svc.acquire(10, stm, &mon);
  EXPECT_EQ(mon.remaining(a2.ctx).misp, 7u)
      << "restored budget must continue draining where the tenant left off";
}

TEST(TokenService, ClockHandEvictsColdKeepsLive) {
  core::STManager stm(1);
  // One shard of 2 entries, plenty of pid slots.
  TokenService svc(tiny(0, 2, 4), {core::MonitorConfig{}});
  ASSERT_EQ(svc.register_tenant(1), AcquireStatus::kOk);
  ASSERT_EQ(svc.register_tenant(2), AcquireStatus::kOk);

  (void)svc.acquire(1, stm, nullptr);
  (void)svc.acquire(2, stm, nullptr);  // both LIVE — table pinned
  EXPECT_EQ(svc.register_tenant(3), AcquireStatus::kTableFull)
      << "a shard full of LIVE tenants is a named error, never silent reuse";
  EXPECT_EQ(svc.stats().table_full, 1u);

  svc.release(1);
  EXPECT_EQ(svc.register_tenant(3), AcquireStatus::kOk)
      << "COLD tenant is evictable once the hand clears its reference bit";
  EXPECT_EQ(svc.stats().evictions, 1u);
  EXPECT_FALSE(svc.contains(1));
  EXPECT_TRUE(svc.contains(2));
  EXPECT_TRUE(svc.contains(3));
}

TEST(TokenService, EvictedBoundTenantFreesItsSlotSafely) {
  core::STManager stm(5);
  TokenService svc(tiny(0, 2, 2), {core::MonitorConfig{}});
  const auto a = svc.acquire(1, stm, nullptr);
  const core::SecretToken tok_a = stm.token(a.ctx);
  svc.release(1);  // COLD but still bound to its pid slot

  (void)svc.acquire(2, stm, nullptr);
  svc.release(2);
  // Shard full; registering two more evicts the cold bound tenants.
  ASSERT_EQ(svc.register_tenant(3), AcquireStatus::kOk);
  ASSERT_EQ(svc.register_tenant(4), AcquireStatus::kOk);
  EXPECT_EQ(svc.stats().evictions, 2u);

  // The evicted tenants' slots were handed back: new tenants bind without
  // recycling pressure and must not inherit the stale ST left behind.
  const auto c = svc.acquire(3, stm, nullptr);
  ASSERT_EQ(c.status, AcquireStatus::kOk);
  EXPECT_NE(stm.token(c.ctx), tok_a)
      << "slot recycled after table eviction must still isolate tokens";
}

TEST(TokenService, PidSpaceExhaustionIsNamed) {
  core::STManager stm(1);
  TokenService svc(tiny(2, 16, 2), {core::MonitorConfig{}});
  ASSERT_EQ(svc.acquire(1, stm, nullptr).status, AcquireStatus::kOk);
  ASSERT_EQ(svc.acquire(2, stm, nullptr).status, AcquireStatus::kOk);
  EXPECT_EQ(svc.acquire(3, stm, nullptr).status, AcquireStatus::kPidSpaceExhausted);
  EXPECT_EQ(svc.stats().pid_exhausted, 1u);
  svc.release(1);
  EXPECT_EQ(svc.acquire(3, stm, nullptr).status, AcquireStatus::kOk)
      << "released slot becomes recyclable";
}

TEST(TokenService, InvalidationIsO1RegardlessOfTenantCount) {
  core::STManager stm(1);
  // Same shard geometry, 64x different population: the generation bump
  // must touch zero entries either way — that is the O(1) claim.
  for (const std::uint64_t n : {std::uint64_t{1024}, std::uint64_t{65536}}) {
    TokenService svc(tiny(4, 1u << 13, 8), {core::MonitorConfig{}});
    for (std::uint64_t t = 0; t < n; ++t) (void)svc.register_tenant(t + 1);
    svc.invalidate_all_shards();
    EXPECT_EQ(svc.stats().invalidations, svc.shard_count());
    EXPECT_EQ(svc.stats().invalidation_entry_touches, 0u)
        << "invalidation cost must be independent of " << n << " tenants";
  }
}

TEST(TokenService, InvalidatedTenantRekeysAtNextAcquire) {
  core::STManager stm(8);
  TokenService svc(tiny(0, 16, 2), {core::MonitorConfig{}});
  const auto a1 = svc.acquire(5, stm, nullptr);
  const core::SecretToken before = stm.token(a1.ctx);
  svc.release(5);

  svc.invalidate_shard(svc.shard_of(5));
  EXPECT_EQ(svc.state(5), TenantState::kRerandomizing)
      << "stale generation reads as re-key pending";
  const auto a2 = svc.acquire(5, stm, nullptr);
  EXPECT_TRUE(a2.rekeyed);
  EXPECT_NE(stm.token(a2.ctx), before) << "fresh ST after shard invalidation";
  EXPECT_EQ(svc.stats().rekeys, 1u);
}

TEST(TokenService, MarkRerandomizeForcesFreshKey) {
  core::STManager stm(8);
  TokenService svc(tiny(1, 16, 2), {core::MonitorConfig{}});
  const auto a1 = svc.acquire(5, stm, nullptr);
  const core::SecretToken before = stm.token(a1.ctx);
  EXPECT_TRUE(svc.mark_rerandomize(5));
  EXPECT_FALSE(svc.mark_rerandomize(999)) << "unknown tenant";
  const auto a2 = svc.acquire(5, stm, nullptr);
  EXPECT_TRUE(a2.rekeyed);
  EXPECT_NE(stm.token(a2.ctx), before);
}

TEST(TokenService, ShardGenerationWraparound) {
  core::STManager stm(1);
  TokenService svc(tiny(0, 16, 2), {core::MonitorConfig{}});
  for (TenantId t = 1; t <= 5; ++t) (void)svc.register_tenant(t);

  svc.debug_set_shard_generation(0, 0xFFFF'FFFFu);
  svc.invalidate_shard(0);
  EXPECT_EQ(svc.debug_shard_generation(0), 1u)
      << "wrap restarts at 1 — 0 stays the always-stale sentinel";
  EXPECT_EQ(svc.stats().invalidation_entry_touches, 5u)
      << "the once-per-4G sweep restamps every entry";

  // Entries restamped 0 are stale under the new generation: no tenant can
  // read as fresh after the wrap.
  const auto a = svc.acquire(3, stm, nullptr);
  EXPECT_TRUE(a.rekeyed) << "post-wrap acquire must re-key, never resurrect";
}

TEST(TokenService, QosClassProgramsPerTenantThresholds) {
  core::STManager stm(2);
  core::EventMonitor mon(&stm, {.misprediction_threshold = 100, .eviction_threshold = 100});
  // Class 1: 50x stricter misprediction budget.
  TokenService svc(tiny(0, 16, 4),
                   {mon.config(),
                    {.misprediction_threshold = 2, .eviction_threshold = 100}});
  ASSERT_EQ(svc.register_tenant(1, /*qos=*/0), AcquireStatus::kOk);
  ASSERT_EQ(svc.register_tenant(2, /*qos=*/1), AcquireStatus::kOk);
  EXPECT_EQ(svc.qos_class(1).misprediction_threshold, 2u);

  const auto a = svc.acquire(1, stm, &mon);
  const auto b = svc.acquire(2, stm, &mon);
  mon.on_misprediction(a.ctx, false);
  mon.on_misprediction(a.ctx, false);
  mon.on_misprediction(b.ctx, false);
  mon.on_misprediction(b.ctx, false);
  EXPECT_EQ(mon.rerandomizations(), 1u)
      << "only the strict-class tenant's register fired";
  EXPECT_EQ(mon.remaining(a.ctx).misp, 98u) << "class-0 tenant untouched";
}

TEST(TokenService, SingleTenantVirginPathIssuesZeroEngineCalls) {
  core::STManager stm(0xBEEF);
  TokenService svc(TokenServiceConfig{}, {core::MonitorConfig{}});
  ASSERT_EQ(svc.register_tenant(1), AcquireStatus::kOk);
  for (int i = 0; i < 100; ++i) {
    const auto a = svc.acquire(1, stm, nullptr);
    ASSERT_EQ(a.status, AcquireStatus::kOk);
    EXPECT_FALSE(a.installed);
    EXPECT_FALSE(a.rekeyed);
    svc.release(1);
  }
  EXPECT_EQ(stm.mutations(), 0u)
      << "the bit-identity contract: no STManager writes on the virgin path";
  EXPECT_EQ(stm.valid_slots(), 0u) << "no token was drawn";
}

// ------------------------------------------------------------ churn ----

ChurnResult churn_once(const models::ModelSpec& mspec,
                       const std::vector<bpu::BranchRecord>& base,
                       const ChurnConfig& cfg) {
  ChurnResult r;
  auto engine = models::make_engine(mspec);
  models::visit_engine(*engine, [&](auto& e) {
    const core::MonitorConfig mon_cfg =
        e.monitor() != nullptr ? e.monitor()->config() : core::MonitorConfig{};
    r = run_churn(e, base, cfg, {mon_cfg});
  });
  return r;
}

std::vector<bpu::BranchRecord> workload(std::uint64_t n) {
  trace::SyntheticWorkloadGenerator gen(trace::profile_by_name("mcf"));
  std::vector<bpu::BranchRecord> base = trace::collect(gen, n);
  for (bpu::BranchRecord& r : base) {
    r.ctx = {.pid = 1, .hart = 0, .kernel = false};
  }
  return base;
}

TEST(ChurnDriver, SingleTenantBitIdenticalToReplay) {
  const auto base = workload(60'000);
  const models::ModelSpec mspec{.model = models::ModelKind::kStbpu};
  ChurnConfig cfg;
  cfg.tenants = 1;
  cfg.max_branches = 50'000;
  cfg.warmup_branches = 10'000;
  const ChurnResult churn = churn_once(mspec, base, cfg);

  auto ref_engine = models::make_engine(mspec);
  trace::VectorStream stream(base);
  const sim::BranchStats ref = models::replay_engine(
      *ref_engine, stream, {.max_branches = 50'000, .warmup_branches = 10'000});
  EXPECT_TRUE(ref == churn.stats)
      << "1-tenant churn must be bit-identical to plain replay (got oae "
      << churn.stats.oae() << " vs " << ref.oae() << ")";
  EXPECT_EQ(churn.service.installs, 0u);
  EXPECT_EQ(churn.service.rekeys, 0u);
}

TEST(ChurnDriver, DeterministicForFixedSeed) {
  const auto base = workload(20'000);
  const models::ModelSpec mspec{.model = models::ModelKind::kStbpu};
  ChurnConfig cfg;
  cfg.tenants = 1024;
  cfg.storm_passes = 2;
  cfg.max_branches = 15'000;
  cfg.warmup_branches = 5'000;
  cfg.invalidate_every = 64;
  const ChurnResult a = churn_once(mspec, base, cfg);
  const ChurnResult b = churn_once(mspec, base, cfg);
  EXPECT_TRUE(a.stats == b.stats);
  EXPECT_EQ(a.service.acquires, b.service.acquires);
  EXPECT_EQ(a.service.slot_recycles, b.service.slot_recycles);
  EXPECT_EQ(a.service.rekeys, b.service.rekeys);
  EXPECT_EQ(a.misp_p50, b.misp_p50);
  EXPECT_EQ(a.misp_p99, b.misp_p99);
  EXPECT_EQ(a.probe_p99, b.probe_p99);
  EXPECT_EQ(a.tenants_touched, b.tenants_touched);
}

TEST(ChurnDriver, StormExercisesSlotRecycling) {
  const auto base = workload(8'000);
  const models::ModelSpec mspec{.model = models::ModelKind::kStbpu};
  ChurnConfig cfg;
  cfg.tenants = 4096;  // far more tenants than the 256-slot pid pool
  cfg.storm_passes = 2;
  cfg.max_branches = 6'000;
  cfg.warmup_branches = 2'000;
  const ChurnResult r = churn_once(mspec, base, cfg);
  EXPECT_EQ(r.storm_acquires, 8192u);
  EXPECT_GT(r.service.slot_recycles, 7000u)
      << "storm must recycle pid slots, not resume";
  EXPECT_EQ(r.failed_acquires, 0u);
  EXPECT_GT(r.tenants_touched, 1u);
}

}  // namespace
}  // namespace stbpu::tenant
