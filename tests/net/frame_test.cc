// Wire-layer tests: frame roundtrip over a real loopback socket, and the
// property the fabric's robustness rests on — every way a payload can be
// damaged (flipped byte, truncation, garbage header, dead peer) surfaces
// as a distinct, classifiable error from recv_frame, never as a partial
// or silently-wrong result.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>

#include "net/chaos.h"
#include "net/frame.h"
#include "net/socket.h"

namespace stbpu::net {
namespace {

/// Loopback pair: a listener plus a connected client/server TcpConn couple.
struct Loopback {
  TcpListener listener;
  TcpConn client;
  TcpConn server;

  void open() {
    std::string err;
    ASSERT_TRUE(listener.listen(0, err)) << err;
    ASSERT_TRUE(TcpConn::connect("127.0.0.1", listener.port(), 2'000, client, err))
        << err;
    ASSERT_EQ(listener.accept(server, 2'000, err), 1) << err;
  }
};

std::int64_t deadline_in(int ms) { return mono_now_ms() + ms; }

TEST(Frame, Fnv1a64KnownVectors) {
  // Reference values from the FNV-1a specification.
  EXPECT_EQ(fnv1a64("", 0), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar", 6), 0x85944171f73967e8ull);
}

TEST(Frame, RoundTripOverLoopback) {
  Loopback lb;
  lb.open();

  const std::string payload = R"({"scenario": "fig5_smt", "points": [0, 1]})";
  std::string err;
  ASSERT_TRUE(send_frame(lb.client, FrameType::kRequest, payload, deadline_in(2'000),
                         err))
      << err;

  FrameType type{};
  std::string got;
  ASSERT_TRUE(recv_frame(lb.server, type, got, deadline_in(2'000), err)) << err;
  EXPECT_EQ(type, FrameType::kRequest);
  EXPECT_EQ(got, payload);

  // And the other direction, with an empty payload.
  ASSERT_TRUE(send_frame(lb.server, FrameType::kError, "", deadline_in(2'000), err))
      << err;
  ASSERT_TRUE(recv_frame(lb.client, type, got, deadline_in(2'000), err)) << err;
  EXPECT_EQ(type, FrameType::kError);
  EXPECT_TRUE(got.empty());
}

TEST(Frame, FlippedPayloadByteFailsChecksum) {
  Loopback lb;
  lb.open();

  std::string wire = encode_frame(FrameType::kResponse, "shard payload bytes");
  wire[kFrameHeaderBytes + 3] ^= 0x5A;  // corrupt one payload byte
  std::string err;
  ASSERT_TRUE(lb.client.send_all(wire.data(), wire.size(), deadline_in(2'000), err))
      << err;

  FrameType type{};
  std::string got;
  EXPECT_FALSE(recv_frame(lb.server, type, got, deadline_in(2'000), err));
  EXPECT_NE(err.find("checksum"), std::string::npos) << err;
}

TEST(Frame, TruncatedPayloadFailsWithEof) {
  Loopback lb;
  lb.open();

  // Full header declaring the whole payload, but only half of it sent
  // before the peer closes — exactly the chaos kCorruptTruncate shape.
  const std::string wire = encode_frame(FrameType::kResponse, "0123456789abcdef");
  std::string err;
  ASSERT_TRUE(lb.client.send_all(wire.data(), kFrameHeaderBytes + 8, deadline_in(2'000),
                                 err))
      << err;
  lb.client.close();

  FrameType type{};
  std::string got;
  EXPECT_FALSE(recv_frame(lb.server, type, got, deadline_in(2'000), err));
  EXPECT_NE(err.find("connection closed"), std::string::npos) << err;
}

TEST(Frame, GarbageHeaderFailsMagicCheck) {
  Loopback lb;
  lb.open();

  std::string wire(kFrameHeaderBytes + 4, '\x7f');
  std::string err;
  ASSERT_TRUE(lb.client.send_all(wire.data(), wire.size(), deadline_in(2'000), err))
      << err;

  FrameType type{};
  std::string got;
  EXPECT_FALSE(recv_frame(lb.server, type, got, deadline_in(2'000), err));
  EXPECT_NE(err.find("magic"), std::string::npos) << err;
}

TEST(Frame, RecvHonorsDeadline) {
  Loopback lb;
  lb.open();

  // Nothing is ever sent: the receive must give up at the deadline with a
  // classifiable timeout error, not hang.
  FrameType type{};
  std::string got, err;
  const std::int64_t t0 = mono_now_ms();
  EXPECT_FALSE(recv_frame(lb.server, type, got, deadline_in(120), err));
  EXPECT_NE(err.find("deadline exceeded"), std::string::npos) << err;
  EXPECT_LT(mono_now_ms() - t0, 5'000);
}

TEST(Chaos, ParsesSpecStrings) {
  ChaosSpec spec;
  std::string err;
  ASSERT_TRUE(ChaosSpec::parse("drop:0.25,stall:50,corrupt:0.1,seed:7", spec, err))
      << err;
  EXPECT_DOUBLE_EQ(spec.drop_p, 0.25);
  EXPECT_DOUBLE_EQ(spec.corrupt_p, 0.1);
  EXPECT_EQ(spec.stall_ms, 50u);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_TRUE(spec.enabled());

  // Subsets and reordering are fine.
  ASSERT_TRUE(ChaosSpec::parse("seed:3,drop:1", spec, err)) << err;
  EXPECT_DOUBLE_EQ(spec.drop_p, 1.0);
  EXPECT_EQ(spec.seed, 3u);

  // Out-of-range probability, unknown key, malformed value: all rejected.
  EXPECT_FALSE(ChaosSpec::parse("drop:1.5", spec, err));
  EXPECT_FALSE(ChaosSpec::parse("explode:1", spec, err));
  EXPECT_FALSE(ChaosSpec::parse("drop:abc", spec, err));
  EXPECT_FALSE(ChaosSpec::parse("drop", spec, err));
}

TEST(Chaos, SameSeedSameVerdictSequence) {
  ChaosSpec spec;
  std::string err;
  ASSERT_TRUE(ChaosSpec::parse("drop:0.4,stall:10,corrupt:0.4,seed:42", spec, err))
      << err;

  ChaosEngine a(spec);
  ChaosEngine b(spec);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.next(), b.next()) << "verdict " << i;
  }
  EXPECT_EQ(a.log(), b.log());

  // A different seed must diverge somewhere in the sequence.
  spec.seed = 43;
  ChaosEngine c(spec);
  bool diverged = false;
  for (int i = 0; i < 64 && !diverged; ++i) diverged = !(c.next() == a.log()[i]);
  EXPECT_TRUE(diverged);
}

TEST(Chaos, DisabledSpecNeverInjects) {
  ChaosEngine engine{ChaosSpec{}};
  for (int i = 0; i < 16; ++i) {
    const ChaosVerdict v = engine.next();
    EXPECT_EQ(v.action, ChaosAction::kNone);
    EXPECT_EQ(v.stall_ms, 0u);
  }
}

}  // namespace
}  // namespace stbpu::net
