// Loopback fabric tests: every recovery path of the coordinator — clean
// dispatch, chaos-injected corruption, worker death mid-shard, timeout →
// backoff → retry-exhaustion → local fallback, straggler re-dispatch —
// must converge on a merged BENCH JSON byte-identical to an unsharded
// in-process run. Byte identity is the acceptance contract: recovery may
// change *where* a shard executes, never *what* the sweep produces.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "exp/fabric.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/spec.h"
#include "net/chaos.h"
#include "net/socket.h"

namespace stbpu::exp {
namespace {

/// Tiny fig5 slice (two workload pairs × four predictors) — real simulation,
/// unit-test cheap, same shape the shard-merge tests use.
ExperimentSpec tiny_spec() {
  ExperimentSpec spec;
  spec.scenario = "fig5_smt";
  spec.scale.ooo_instructions = 1'500;
  spec.scale.ooo_warmup = 150;
  spec.points = {0, 1, 2, 3, 4, 5, 6, 7};
  return spec;
}

/// Unsharded in-process reference: the byte-identity baseline.
std::string local_reference(const Scenario& scenario, const ExperimentSpec& spec) {
  RunOutcome outcome;
  std::string err;
  EXPECT_TRUE(run_experiment(scenario, spec, outcome, err)) << err;
  return final_json(scenario, spec, outcome.points);
}

net::ChaosSpec chaos(const std::string& text) {
  net::ChaosSpec spec;
  std::string err;
  EXPECT_TRUE(net::ChaosSpec::parse(text, spec, err)) << err;
  return spec;
}

WorkerOptions worker_opts(const net::ChaosSpec& spec = {}) {
  WorkerOptions opts;
  opts.port = 0;  // ephemeral
  opts.chaos = spec;
  return opts;
}

std::string endpoint_of(const WorkerServer& w) {
  return "127.0.0.1:" + std::to_string(w.port());
}

/// Dispatch options tuned for tests: short backoff, generous deadline.
DispatchOptions dispatch_opts(const std::vector<std::string>& workers) {
  DispatchOptions opts;
  opts.workers = workers;
  opts.shard_count = 4;
  opts.connect_timeout_ms = 1'000;
  opts.shard_deadline_ms = 30'000;
  opts.backoff_base_ms = 5;
  opts.backoff_max_ms = 40;
  return opts;
}

class FabricTest : public ::testing::Test {
 protected:
  void SetUp() override {
    register_builtin_scenarios();
    scenario_ = find_scenario("fig5_smt");
    ASSERT_NE(scenario_, nullptr);
    spec_ = tiny_spec();
    reference_ = local_reference(*scenario_, spec_);
    ASSERT_FALSE(reference_.empty());
  }

  const Scenario* scenario_ = nullptr;
  ExperimentSpec spec_;
  std::string reference_;
};

TEST_F(FabricTest, CleanDispatchIsByteIdenticalToLocal) {
  WorkerServer a, b;
  std::string err;
  ASSERT_TRUE(a.start(worker_opts(), err)) << err;
  ASSERT_TRUE(b.start(worker_opts(), err)) << err;

  std::string merged;
  DispatchStats stats;
  ASSERT_TRUE(dispatch_experiment(*scenario_, spec_,
                                  dispatch_opts({endpoint_of(a), endpoint_of(b)}),
                                  merged, stats, err))
      << err;
  EXPECT_EQ(merged, reference_);
  EXPECT_EQ(stats.shard_count, 4u);
  EXPECT_EQ(stats.remote_shards, 4u);
  EXPECT_EQ(stats.local_shards, 0u);
  EXPECT_EQ(stats.failed_attempts, 0u);
  EXPECT_GE(a.served() + b.served(), 4u);
}

TEST_F(FabricTest, ChaosDispatchIsByteIdenticalToLocal) {
  // One saboteur (drops, flips, truncations, stalls) plus one honest
  // worker: the acceptance criterion of the fabric — recovery under chaos
  // must still produce the exact unsharded bytes.
  WorkerServer saboteur, honest;
  std::string err;
  ASSERT_TRUE(saboteur.start(worker_opts(chaos("drop:0.4,corrupt:0.4,stall:10,seed:7")),
                             err))
      << err;
  ASSERT_TRUE(honest.start(worker_opts(), err)) << err;

  std::string merged;
  DispatchStats stats;
  ASSERT_TRUE(dispatch_experiment(
      *scenario_, spec_, dispatch_opts({endpoint_of(saboteur), endpoint_of(honest)}),
      merged, stats, err))
      << err;
  EXPECT_EQ(merged, reference_);
  EXPECT_EQ(stats.remote_shards + stats.local_shards, 4u);
}

TEST_F(FabricTest, CorruptedPayloadsAreRejectedAndRefetched) {
  // corrupt:1.0 = every response flipped or truncated. Each one must be
  // rejected at the frame/validation layer and the shard re-fetched from
  // the honest worker — never merged.
  WorkerServer corruptor, honest;
  std::string err;
  // seed:1's first verdict is corrupt-flip (checksum-detectable), so the
  // rejected_payloads assertion below is deterministic, not a coin flip.
  ASSERT_TRUE(corruptor.start(worker_opts(chaos("corrupt:1,seed:1")), err)) << err;
  ASSERT_TRUE(honest.start(worker_opts(), err)) << err;

  std::string merged;
  DispatchStats stats;
  ASSERT_TRUE(dispatch_experiment(
      *scenario_, spec_, dispatch_opts({endpoint_of(corruptor), endpoint_of(honest)}),
      merged, stats, err))
      << err;
  EXPECT_EQ(merged, reference_);
  EXPECT_GE(stats.rejected_payloads, 1u);
  EXPECT_GE(stats.failed_attempts, 1u);
  EXPECT_EQ(corruptor.served(), 0u);  // no untampered response ever left it
}

TEST_F(FabricTest, WorkerKilledMidShardIsRedispatched) {
  // The victim stalls mid-response, then is hard-stopped while a shard is
  // in flight — the coordinator sees EOF mid-message and the shard must be
  // re-dispatched to the survivor (or degraded locally), with the merged
  // output unchanged.
  WorkerServer victim, survivor;
  std::string err;
  ASSERT_TRUE(victim.start(worker_opts(chaos("stall:3000,seed:1")), err)) << err;
  ASSERT_TRUE(survivor.start(worker_opts(), err)) << err;

  std::string merged;
  DispatchStats stats;
  bool ok = false;
  std::thread killer([&victim] {
    const std::int64_t deadline = net::mono_now_ms() + 10'000;
    while (victim.accepted() == 0 && net::mono_now_ms() < deadline) net::sleep_ms(5);
    net::sleep_ms(50);  // land the kill inside the stalled response stream
    victim.stop();
  });
  ok = dispatch_experiment(*scenario_, spec_,
                           dispatch_opts({endpoint_of(victim), endpoint_of(survivor)}),
                           merged, stats, err);
  killer.join();
  ASSERT_TRUE(ok) << err;
  EXPECT_EQ(merged, reference_);
  EXPECT_GE(stats.failed_attempts + stats.redispatches, 1u);
  EXPECT_EQ(stats.remote_shards + stats.local_shards, 4u);
}

TEST_F(FabricTest, TimeoutBackoffRetryExhaustionFallsBackLocally) {
  // Every response stalls past the shard deadline: each attempt times out,
  // backs off, retries, exhausts its retry budget and the whole sweep
  // degrades to in-process execution — still byte-identical.
  WorkerServer molasses;
  std::string err;
  ASSERT_TRUE(molasses.start(worker_opts(chaos("stall:700,seed:5")), err)) << err;

  DispatchOptions opts = dispatch_opts({endpoint_of(molasses)});
  opts.shard_count = 2;
  opts.shard_deadline_ms = 200;
  opts.retry_limit = 2;
  opts.worker_failure_limit = 3;

  std::string merged;
  DispatchStats stats;
  ASSERT_TRUE(dispatch_experiment(*scenario_, spec_, opts, merged, stats, err)) << err;
  EXPECT_EQ(merged, reference_);
  EXPECT_GE(stats.timeouts, 1u);
  EXPECT_EQ(stats.remote_shards, 0u);
  EXPECT_EQ(stats.local_shards, 2u);
}

TEST_F(FabricTest, RetryExhaustionWithoutFallbackFailsTheDispatch) {
  // Dead endpoint, fallback disabled: the dispatch must fail loudly (with
  // the shard and attempt count) rather than return a partial sweep.
  DispatchOptions opts = dispatch_opts({"127.0.0.1:1"});
  opts.shard_count = 2;
  opts.connect_timeout_ms = 200;
  opts.retry_limit = 2;
  opts.local_fallback = false;

  std::string merged;
  DispatchStats stats;
  std::string err;
  EXPECT_FALSE(dispatch_experiment(*scenario_, spec_, opts, merged, stats, err));
  EXPECT_NE(err.find("unserved"), std::string::npos) << err;
  EXPECT_NE(err.find("local fallback is disabled"), std::string::npos) << err;
  EXPECT_GE(stats.connect_failures, 1u);
  EXPECT_TRUE(merged.empty());
}

TEST_F(FabricTest, DeadEndpointDegradesToLocalByteIdentically) {
  DispatchOptions opts = dispatch_opts({"127.0.0.1:1"});
  opts.shard_count = 2;
  opts.connect_timeout_ms = 200;
  opts.retry_limit = 1;

  std::string merged;
  DispatchStats stats;
  std::string err;
  ASSERT_TRUE(dispatch_experiment(*scenario_, spec_, opts, merged, stats, err)) << err;
  EXPECT_EQ(merged, reference_);
  EXPECT_EQ(stats.local_shards, 2u);
  EXPECT_GE(stats.connect_failures, 1u);
}

TEST_F(FabricTest, StragglerIsRedispatchedToIdleWorkerFirstResultWins) {
  // One fast and one slow-but-correct worker, one shard each: the fast one
  // goes idle, duplicates the straggling shard, and its result lands first;
  // the straggler's late duplicate is discarded by shard identity.
  WorkerServer slow, fast;
  std::string err;
  ASSERT_TRUE(slow.start(worker_opts(chaos("stall:1500,seed:2")), err)) << err;
  ASSERT_TRUE(fast.start(worker_opts(), err)) << err;

  DispatchOptions opts = dispatch_opts({endpoint_of(slow), endpoint_of(fast)});
  opts.shard_count = 2;

  std::string merged;
  DispatchStats stats;
  ASSERT_TRUE(dispatch_experiment(*scenario_, spec_, opts, merged, stats, err)) << err;
  EXPECT_EQ(merged, reference_);
  EXPECT_GE(stats.redispatches, 1u);
  EXPECT_GE(stats.duplicates_discarded, 1u);
  EXPECT_EQ(stats.remote_shards, 2u);
  EXPECT_EQ(stats.local_shards, 0u);
}

TEST_F(FabricTest, ChaosSeededRecoveryIsDeterministic) {
  // Same chaos seed + same dispatch parameters = the same verdict sequence
  // on the worker and the same recovery trajectory in the coordinator —
  // a flaky-looking failure can always be replayed exactly.
  auto run_once = [&](WorkerServer& worker, DispatchStats& stats, std::string& merged) {
    std::string err;
    ASSERT_TRUE(worker.start(worker_opts(chaos("drop:0.3,corrupt:0.3,seed:99")), err))
        << err;
    DispatchOptions opts = dispatch_opts({endpoint_of(worker)});
    opts.shard_count = 2;
    opts.retry_limit = 5;
    ASSERT_TRUE(dispatch_experiment(*scenario_, spec_, opts, merged, stats, err)) << err;
  };

  WorkerServer first, second;
  DispatchStats s1, s2;
  std::string m1, m2;
  run_once(first, s1, m1);
  run_once(second, s2, m2);

  EXPECT_EQ(m1, reference_);
  EXPECT_EQ(m2, reference_);
  EXPECT_EQ(first.chaos_log(), second.chaos_log());
  EXPECT_EQ(first.accepted(), second.accepted());
  EXPECT_EQ(s1.failed_attempts, s2.failed_attempts);
  EXPECT_EQ(s1.rejected_payloads, s2.rejected_payloads);
  EXPECT_EQ(s1.remote_shards, s2.remote_shards);
  EXPECT_EQ(s1.local_shards, s2.local_shards);
}

TEST_F(FabricTest, RejectsShardedSpecAndBadEndpoints) {
  ExperimentSpec sharded = spec_;
  sharded.shard_index = 0;
  sharded.shard_count = 2;
  std::string merged, err;
  DispatchStats stats;
  DispatchOptions opts = dispatch_opts({"127.0.0.1:1"});
  EXPECT_FALSE(dispatch_experiment(*scenario_, sharded, opts, merged, stats, err));
  EXPECT_NE(err.find("--shards"), std::string::npos) << err;

  std::string host;
  std::uint16_t port = 0;
  EXPECT_TRUE(parse_endpoint("10.0.0.2:5055", host, port, err));
  EXPECT_EQ(host, "10.0.0.2");
  EXPECT_EQ(port, 5055);
  EXPECT_FALSE(parse_endpoint("nohost", host, port, err));
  EXPECT_FALSE(parse_endpoint("host:notaport", host, port, err));
  EXPECT_FALSE(parse_endpoint("host:99999", host, port, err));
}

}  // namespace
}  // namespace stbpu::exp
