// The §VI-A5 arithmetic must reproduce the paper's printed constants.
#include "analysis/equations.h"

#include <gtest/gtest.h>

#include "core/monitor.h"

namespace stbpu::analysis {
namespace {

TEST(Equations, BtbReuseMatchesPaperConstants) {
  const auto c = btb_reuse_cost(BtbGeometry{});
  // n = I·T·O/2 = 512·256·32/2 = 2^21.
  EXPECT_DOUBLE_EQ(c.set_size_n, 2097152.0);
  // M ≈ 6.9×10^8 (paper §VI-A5).
  EXPECT_NEAR(c.mispredictions_m, 6.9e8, 0.05e9);
  // E ≈ 2^21 (minus the I·W capacity term).
  EXPECT_NEAR(c.evictions_e, 2097152.0 - 4096.0, 1.0);
}

TEST(Equations, PhtReuseMatchesPaperConstant) {
  const auto c = pht_reuse_cost(PhtGeometry{});
  EXPECT_NEAR(c.mispredictions_m, 8.38e5, 0.02e5);  // paper: ≈ 8.38×10^5
  EXPECT_EQ(c.evictions_e, 0.0) << "PHT entries are not evicted";
}

TEST(Equations, GemEvictionMatchesPaperConstant) {
  // E at P = 0.5 ≈ 5.3×10^5 (paper §VI-A5).
  EXPECT_NEAR(gem_eviction_cost(BtbGeometry{}, 0.5), 5.3e5, 0.02e5);
}

TEST(Equations, InjectionIsHalfTheTargetSpace) {
  EXPECT_DOUBLE_EQ(injection_attempts(), 2147483648.0);  // 2^31
}

TEST(Equations, NaiveEvictionGuessIsHopeless) {
  // Eq. (3): (1/512)^7 — why the attacker needs GEM at all.
  const double p = naive_eviction_set_probability(BtbGeometry{});
  EXPECT_LT(p, 1e-18);
  EXPECT_GT(p, 0.0);
}

TEST(Equations, GemCostGrowsWithSuccessRate) {
  const BtbGeometry g{};
  EXPECT_LT(gem_eviction_cost(g, 0.25), gem_eviction_cost(g, 0.5));
  EXPECT_LT(gem_eviction_cost(g, 0.5), gem_eviction_cost(g, 1.0));
}

TEST(Equations, Section65TableHasAllFourRows) {
  const auto rows = section_vi5_table();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_NE(rows[0].attack.find("BTB reuse"), std::string::npos);
  EXPECT_NE(rows[1].attack.find("BranchScope"), std::string::npos);
  EXPECT_NE(rows[2].attack.find("eviction"), std::string::npos);
  EXPECT_NE(rows[3].attack.find("Spectre"), std::string::npos);
}

TEST(Equations, BindingComplexityIsTheMinimum) {
  const auto c = binding_complexity();
  // PHT reuse binds mispredictions; GEM binds evictions.
  EXPECT_NEAR(c.mispredictions_c, 8.38e5, 0.02e5);
  EXPECT_NEAR(c.evictions_c, 5.3e5, 0.02e5);
  const auto rows = section_vi5_table();
  for (const auto& row : rows) {
    if (row.mispredictions > 0) {
      EXPECT_GE(row.mispredictions, c.mispredictions_c * 0.99);
    }
    if (row.evictions > 0) {
      EXPECT_GE(row.evictions, c.evictions_c * 0.99);
    }
  }
}

TEST(Equations, ThresholdDerivationMatchesPaperExamples) {
  // §VII-A: r = 0.1 → 8.3×10^4 / 5.3×10^4; r = 0.05 → 4.15×10^4 / 2.65×10^4.
  const auto t01 = derive_thresholds(0.1);
  EXPECT_NEAR(static_cast<double>(t01.mispredictions), 8.3e4, 0.1e4);
  EXPECT_NEAR(static_cast<double>(t01.evictions), 5.3e4, 0.1e4);
  const auto t005 = derive_thresholds(0.05);
  EXPECT_NEAR(static_cast<double>(t005.mispredictions), 4.15e4, 0.1e4);
  EXPECT_NEAR(static_cast<double>(t005.evictions), 2.65e4, 0.1e4);
}

TEST(Equations, MonitorDefaultsAgreeWithAnalysis) {
  // The hardware MSR defaults (core::MonitorConfig) must be the r=0.05
  // derivation of this module — one source of truth, two implementations.
  const auto t = derive_thresholds(0.05);
  const auto cfg = core::MonitorConfig::from_difficulty(0.05, false);
  EXPECT_NEAR(static_cast<double>(cfg.misprediction_threshold),
              static_cast<double>(t.mispredictions), 100.0);
  EXPECT_NEAR(static_cast<double>(cfg.eviction_threshold),
              static_cast<double>(t.evictions), 100.0);
}

TEST(Equations, ThresholdsScaleLinearlyInR) {
  const auto a = derive_thresholds(0.1);
  const auto b = derive_thresholds(0.05);
  EXPECT_NEAR(static_cast<double>(a.mispredictions) /
                  static_cast<double>(b.mispredictions),
              2.0, 0.01);
}

TEST(Equations, ReuseCostMonotoneInGeometry) {
  BtbGeometry small{};
  BtbGeometry big{};
  big.sets *= 2;
  EXPECT_LT(btb_reuse_cost(small).mispredictions_m,
            btb_reuse_cost(big).mispredictions_m);
}

}  // namespace
}  // namespace stbpu::analysis
