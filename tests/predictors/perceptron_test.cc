#include "perceptron/perceptron.h"

#include <gtest/gtest.h>

#include <functional>

#include "bpu/mapping.h"
#include "tage/tage.h"
#include "util/rng.h"

namespace stbpu::perceptron {
namespace {

const bpu::ExecContext kCtx{.pid = 1, .hart = 0, .kernel = false};

class PerceptronTest : public ::testing::Test {
 protected:
  PerceptronTest() : pred_(&map_) {}

  double accuracy(const std::function<bool(std::uint64_t)>& oracle,
                  std::uint64_t ip, unsigned iters, unsigned warmup) {
    unsigned correct = 0;
    for (std::uint64_t i = 0; i < iters + warmup; ++i) {
      const bool taken = oracle(i);
      const auto p = pred_.predict(ip, kCtx);
      if (i >= warmup && p.taken == taken) ++correct;
      pred_.update(ip, kCtx, taken, p);
    }
    return static_cast<double>(correct) / iters;
  }

  bpu::BaselineMapping map_;
  PerceptronPredictor pred_;
};

TEST_F(PerceptronTest, ThetaFollowsJimenezLin) {
  // θ = ⌊1.93h + 14⌋ for h = 32.
  EXPECT_EQ(pred_.theta(), static_cast<int>(1.93 * 32 + 14));
}

TEST_F(PerceptronTest, LearnsBias) {
  EXPECT_GT(accuracy([](std::uint64_t) { return true; }, 0x1000, 400, 32), 0.99);
}

TEST_F(PerceptronTest, LearnsAlternation) {
  EXPECT_GT(accuracy([](std::uint64_t i) { return i % 2 == 0; }, 0x2000, 600, 128),
            0.97);
}

TEST_F(PerceptronTest, LearnsLinearHistoryFunction) {
  // outcome = history[3] — exactly representable by one weight.
  std::uint64_t hist = 0;
  unsigned correct = 0, total = 0;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const bool taken = (hist >> 3) & 1;
    const auto p = pred_.predict(0x3000, kCtx);
    if (i > 400) {
      ++total;
      correct += p.taken == taken;
    }
    pred_.update(0x3000, kCtx, taken, p);
    hist = (hist << 1) | static_cast<std::uint64_t>(taken);
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.97);
}

TEST_F(PerceptronTest, XorOfHistoryBitsIsHard) {
  // Classic demonstration: branches A and B have independent random
  // outcomes; branch C's outcome is A^B. C appears right after A and B in
  // the global history, so a history-pattern predictor (TAGE) learns it but
  // a linear perceptron cannot (XOR is not linearly separable).
  util::Xoshiro256 rng(11);
  tage::TagePredictor tage(tage::TageConfig::kb64(), &map_);
  unsigned p_correct = 0, t_correct = 0, total = 0;
  for (std::uint64_t i = 0; i < 6000; ++i) {
    const bool a = rng.chance(0.5);
    const bool b = rng.chance(0.5);
    const bool c = a != b;
    for (const auto& [ip, taken] : {std::pair<std::uint64_t, bool>{0x4000, a},
                                    {0x4040, b}}) {
      const auto pp = pred_.predict(ip, kCtx);
      pred_.update(ip, kCtx, taken, pp);
      const auto tp = tage.predict(ip, kCtx);
      tage.update(ip, kCtx, taken, tp);
    }
    const auto pp = pred_.predict(0x4080, kCtx);
    const auto tp = tage.predict(0x4080, kCtx);
    if (i > 2000) {
      ++total;
      p_correct += pp.taken == c;
      t_correct += tp.taken == c;
    }
    pred_.update(0x4080, kCtx, c, pp);
    tage.update(0x4080, kCtx, c, tp);
  }
  EXPECT_LT(static_cast<double>(p_correct) / total, 0.75)
      << "perceptron must NOT learn XOR";
  EXPECT_GT(static_cast<double>(t_correct) / total, 0.9)
      << "TAGE pattern tables learn XOR easily";
}

TEST_F(PerceptronTest, WeightsSaturate) {
  // A very long bias run must not overflow weights (they clamp).
  EXPECT_GT(accuracy([](std::uint64_t) { return true; }, 0x5000, 20000, 0), 0.99);
}

TEST_F(PerceptronTest, FlushForgets) {
  accuracy([](std::uint64_t) { return true; }, 0x6000, 500, 0);
  pred_.flush();
  // After a flush the dot product is 0 → predicts taken (>=0); train it
  // not-taken and verify it adapts fresh.
  EXPECT_GT(accuracy([](std::uint64_t) { return false; }, 0x6000, 400, 64), 0.98);
}

TEST_F(PerceptronTest, HartsSeparateHistories) {
  bpu::ExecContext h1 = kCtx;
  h1.hart = 1;
  util::Xoshiro256 rng(3);
  unsigned correct = 0, total = 0;
  for (std::uint64_t i = 0; i < 3000; ++i) {
    const bool taken = i % 2 == 0;
    const auto p = pred_.predict(0x7000, kCtx);
    if (i > 600) {
      ++total;
      correct += p.taken == taken;
    }
    pred_.update(0x7000, kCtx, taken, p);
    const auto q = pred_.predict(0x8880, h1);
    pred_.update(0x8880, h1, rng.chance(0.5), q);
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.93);
}

}  // namespace
}  // namespace stbpu::perceptron
