// Model factory wiring and switch-policy semantics for the five designs.
#include "models/models.h"

#include <gtest/gtest.h>

namespace stbpu::models {
namespace {

const bpu::ExecContext kUserA{.pid = 1, .hart = 0, .kernel = false};
const bpu::ExecContext kUserB{.pid = 2, .hart = 0, .kernel = false};
const bpu::ExecContext kKernelA{.pid = 1, .hart = 0, .kernel = true};

bpu::AccessResult jump(BpuModel& m, const bpu::ExecContext& ctx, std::uint64_t ip,
                       std::uint64_t target) {
  return m.access({.ip = ip, .target = target, .type = bpu::BranchType::kDirectJump,
                   .taken = true, .ctx = ctx});
}

TEST(Models, FactoryBuildsEveryCombination) {
  for (const auto mk : {ModelKind::kUnprotected, ModelKind::kUcode1, ModelKind::kUcode2,
                        ModelKind::kConservative, ModelKind::kStbpu}) {
    for (const auto dk : {DirectionKind::kSklCond, DirectionKind::kTage8,
                          DirectionKind::kTage64, DirectionKind::kPerceptron}) {
      const auto model = BpuModel::create({.model = mk, .direction = dk});
      ASSERT_NE(model, nullptr);
      EXPECT_FALSE(model->name().empty());
      EXPECT_EQ(model->tokens() != nullptr, mk == ModelKind::kStbpu);
      EXPECT_EQ(model->monitor() != nullptr, mk == ModelKind::kStbpu);
    }
  }
}

TEST(Models, StbpuTageGetsSeparateTaggedRegister) {
  const auto tage = BpuModel::create(
      {.model = ModelKind::kStbpu, .direction = DirectionKind::kTage64});
  EXPECT_GT(tage->monitor()->config().tagged_misprediction_threshold, 0u);
  const auto skl = BpuModel::create(
      {.model = ModelKind::kStbpu, .direction = DirectionKind::kSklCond});
  EXPECT_EQ(skl->monitor()->config().tagged_misprediction_threshold, 0u)
      << "ST_SKLCond has no separate TAGE-table register (paper §VII-B2)";
}

TEST(Models, UnprotectedRetainsAcrossContextSwitch) {
  auto m = BpuModel::create({.model = ModelKind::kUnprotected});
  jump(*m, kUserA, 0x1000, 0x9000);
  m->on_switch(kUserA, kUserB);
  m->on_switch(kUserB, kUserA);
  EXPECT_TRUE(jump(*m, kUserA, 0x1000, 0x9000).target_correct);
}

TEST(Models, Ucode1FlushesOnContextSwitch) {
  auto m = BpuModel::create({.model = ModelKind::kUcode1});
  jump(*m, kUserA, 0x1000, 0x9000);
  m->on_switch(kUserA, kUserB);  // IBPB
  EXPECT_EQ(m->policy_flushes(), 1u);
  m->on_switch(kUserB, kUserA);
  EXPECT_FALSE(jump(*m, kUserA, 0x1000, 0x9000).target_correct)
      << "IBPB discards the branch history on a context switch";
}

TEST(Models, Ucode1KernelEntryFlushesIndirectOnly) {
  auto m = BpuModel::create({.model = ModelKind::kUcode1});
  jump(*m, kUserA, 0x1000, 0x9000);  // direct entry
  m->on_switch(kUserA, kKernelA);    // IBRS on kernel entry
  EXPECT_EQ(m->policy_flushes(), 1u);
  m->on_switch(kKernelA, kUserA);    // kernel exit: no flush
  EXPECT_EQ(m->policy_flushes(), 1u);
  EXPECT_TRUE(jump(*m, kUserA, 0x1000, 0x9000).target_correct)
      << "direct-branch targets survive IBRS";
}

TEST(Models, StbpuRetainsAcrossSwitches) {
  auto m = BpuModel::create({.model = ModelKind::kStbpu});
  jump(*m, kUserA, 0x1000, 0x9000);
  m->on_switch(kUserA, kUserB);
  jump(*m, kUserB, 0x5000, 0x6000);
  m->on_switch(kUserB, kUserA);
  EXPECT_TRUE(jump(*m, kUserA, 0x1000, 0x9000).target_correct)
      << "ST reload preserves usable history (no flush)";
  EXPECT_EQ(m->policy_flushes(), 0u);
}

TEST(Models, ConservativeStoresFullTags) {
  auto m = BpuModel::create({.model = ModelKind::kConservative});
  // The 2^30 alias that fools the baseline must NOT hit in conservative.
  jump(*m, kUserA, 0x1000, 0x9000);
  const auto res = jump(*m, kUserA, 0x1000 + (1ULL << 30), 0x8000);
  EXPECT_FALSE(res.pred.target_valid && res.pred.target == 0x9000u)
      << "full 48-bit tags eliminate truncation aliases";
}

TEST(Models, ConservativeHasReducedCapacity) {
  auto m = BpuModel::create({.model = ModelKind::kConservative});
  EXPECT_EQ(m->core().btb().capacity(), 128u * 8u)
      << "hardware-budget-neutral entry reduction";
  auto b = BpuModel::create({.model = ModelKind::kUnprotected});
  EXPECT_EQ(b->core().btb().capacity(), 512u * 8u);
}

TEST(Models, ConservativeRebuildsFarTargets) {
  auto m = BpuModel::create({.model = ModelKind::kConservative});
  // Full 48-bit targets: a branch and target in different 4GB regions.
  const std::uint64_t branch = 0x7FFF'0000'1000ULL;
  const std::uint64_t target = 0x0000'2345'9000ULL;
  jump(*m, kUserA, branch, target);
  EXPECT_TRUE(jump(*m, kUserA, branch, target).target_correct);
}

TEST(Models, Ucode2PartitionsByHart) {
  auto m = BpuModel::create({.model = ModelKind::kUcode2});
  bpu::ExecContext h1 = kUserA;
  h1.hart = 1;
  jump(*m, kUserA, 0x1000, 0x9000);
  const auto res = jump(*m, h1, 0x1000, 0x9000);
  EXPECT_FALSE(res.pred.target_valid && res.pred.target == 0x9000u)
      << "STIBP: SMT siblings must not share indirect predictions";
}

TEST(Models, NamesAreDescriptive) {
  EXPECT_EQ(to_string(ModelKind::kStbpu), "STBPU");
  EXPECT_EQ(to_string(DirectionKind::kTage8), "TAGE_SC_L_8KB");
  const auto m = BpuModel::create(
      {.model = ModelKind::kStbpu, .direction = DirectionKind::kPerceptron});
  EXPECT_NE(m->name().find("STBPU"), std::string::npos);
  EXPECT_NE(m->name().find("PerceptronBP"), std::string::npos);
}

TEST(Models, DifficultyFactorPropagates) {
  ModelSpec spec{.model = ModelKind::kStbpu};
  spec.rerand_difficulty_r = 0.1;
  const auto m = BpuModel::create(spec);
  EXPECT_EQ(m->monitor()->config().misprediction_threshold, 83'800u);
}

}  // namespace
}  // namespace stbpu::models
