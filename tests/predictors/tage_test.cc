// TAGE-SC-L behaviour: it must learn what its components are for — bias,
// loop trip counts, long-history correlations — and respect isolation.
#include "tage/tage.h"

#include <gtest/gtest.h>

#include "bpu/mapping.h"
#include "util/rng.h"

namespace stbpu::tage {
namespace {

const bpu::ExecContext kCtx{.pid = 1, .hart = 0, .kernel = false};

class TageTest : public ::testing::TestWithParam<TageConfig> {
 protected:
  TageTest() : pred_(GetParam(), &map_) {}

  double accuracy(const std::function<bool(std::uint64_t)>& oracle,
                  std::uint64_t ip, unsigned iters, unsigned warmup) {
    unsigned correct = 0;
    for (std::uint64_t i = 0; i < iters + warmup; ++i) {
      const bool taken = oracle(i);
      const auto p = pred_.predict(ip, kCtx);
      if (i >= warmup && p.taken == taken) ++correct;
      pred_.update(ip, kCtx, taken, p);
    }
    return static_cast<double>(correct) / iters;
  }

  bpu::BaselineMapping map_;
  TagePredictor pred_;
};

TEST_P(TageTest, LearnsStrongBias) {
  EXPECT_GT(accuracy([](std::uint64_t) { return true; }, 0x1000, 500, 16), 0.99);
}

TEST_P(TageTest, LearnsAlternation) {
  EXPECT_GT(accuracy([](std::uint64_t i) { return i % 2 == 0; }, 0x2000, 500, 64),
            0.95);
}

TEST_P(TageTest, LearnsShortLoopExit) {
  // Trip count 7: taken 7x then not-taken. Loop predictor / short history.
  EXPECT_GT(accuracy([](std::uint64_t i) { return i % 8 != 7; }, 0x3000, 800, 200),
            0.95);
}

TEST_P(TageTest, LearnsLongPeriodWithTaggedTables) {
  // Period-24 pattern — beyond a bimodal counter, needs tagged history.
  EXPECT_GT(accuracy([](std::uint64_t i) { return i % 24 < 20; }, 0x4000, 1500, 600),
            0.93);
}

TEST_P(TageTest, RandomIsUnlearnable) {
  util::Xoshiro256 rng(1);
  const double acc =
      accuracy([&rng](std::uint64_t) { return rng.chance(0.5); }, 0x5000, 2000, 200);
  EXPECT_GT(acc, 0.4);
  EXPECT_LT(acc, 0.6);
}

TEST_P(TageTest, HartsHaveSeparateHistories) {
  bpu::ExecContext h0 = kCtx, h1 = kCtx;
  h1.hart = 1;
  // Alternation on hart 0 must still be learnable while hart 1 pushes
  // conflicting random outcomes for a different branch.
  util::Xoshiro256 rng(2);
  unsigned correct = 0, total = 0;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const bool taken = i % 2 == 0;
    const auto p = pred_.predict(0x6000, h0);
    if (i > 500) {
      ++total;
      correct += p.taken == taken;
    }
    pred_.update(0x6000, h0, taken, p);
    const auto q = pred_.predict(0x7770, h1);
    pred_.update(0x7770, h1, rng.chance(0.5), q);
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.90);
}

TEST_P(TageTest, FlushForgets) {
  accuracy([](std::uint64_t) { return true; }, 0x8000, 300, 0);
  pred_.flush();
  const auto p = pred_.predict(0x8000, kCtx);
  EXPECT_FALSE(p.from_tagged) << "no tagged entry may survive a flush";
}

TEST_P(TageTest, TaggedProviderFlagSurfaces) {
  // After enough history-correlated training, predictions should come from
  // tagged tables (the flag ST_TAGE monitors rely on).
  bool saw_tagged = false;
  for (std::uint64_t i = 0; i < 3000; ++i) {
    const bool taken = i % 12 < 9;
    const auto p = pred_.predict(0x9000, kCtx);
    saw_tagged |= p.from_tagged;
    pred_.update(0x9000, kCtx, taken, p);
  }
  EXPECT_TRUE(saw_tagged);
}

TEST_P(TageTest, TracksUnconditionalHistory) {
  // track() must advance history without crashing or corrupting state.
  for (int i = 0; i < 200; ++i) {
    pred_.track({.ip = 0xA000u + i * 16, .target = 0xB000,
                 .type = bpu::BranchType::kDirectJump, .taken = true, .ctx = kCtx});
  }
  EXPECT_GT(accuracy([](std::uint64_t) { return true; }, 0xC000, 300, 16), 0.98);
}

INSTANTIATE_TEST_SUITE_P(Configs, TageTest,
                         ::testing::Values(TageConfig::kb8(), TageConfig::kb64()),
                         [](const auto& info) {
                           return std::string(info.param.name.substr(0, 4) == "TAGE"
                                                  ? (info.param.num_tables > 6
                                                         ? "kb64"
                                                         : "kb8")
                                                  : "cfg");
                         });

TEST(TageConfigs, GeometryMatchesTable2) {
  const auto kb8 = TageConfig::kb8();
  EXPECT_EQ(kb8.index_bits, 10u);  // Rt: 10-bit index
  EXPECT_EQ(kb8.tag_bits, 8u);     // 8-bit tag
  const auto kb64 = TageConfig::kb64();
  EXPECT_EQ(kb64.index_bits, 13u);  // 13-bit index
  EXPECT_EQ(kb64.tag_bits, 12u);    // 12-bit tag
  EXPECT_GT(kb64.max_history, kb8.max_history);
}

}  // namespace
}  // namespace stbpu::tage
