// Folded-history correctness — the foundation the TAGE shadow lookahead
// stands on. The incremental circular-shift-register fold maintained by
// Folded::update must equal, at every point, the from-scratch fold of the
// last L outcomes (closed form: the bit pushed j steps ago contributes one
// bit at position j mod C; the outgoing XOR cancels it exactly at age L).
// Covered across random outcome mixes, unconditional track()s, history-ring
// wrap, flush_hart() resets and context switches; plus the shadow-walk
// contract itself: seed_shadow + ShadowHistory::advance must replay the
// live predictor's history advance bit for bit.
#include "tage/tage.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>

#include "bpu/mapping.h"
#include "util/rng.h"

namespace stbpu::tage {
namespace {

using Shadow = TagePredictor::ShadowHistory;

/// From-scratch fold over the recorded outcome window (newest first).
std::uint32_t fold_scratch(const std::deque<bool>& newest_first, unsigned L,
                           unsigned C) {
  std::uint32_t v = 0;
  const std::size_t n = std::min<std::size_t>(L, newest_first.size());
  for (std::size_t j = 0; j < n; ++j) {
    if (newest_first[j]) v ^= 1u << (j % C);
  }
  return v & ((1u << C) - 1);
}

class TageFoldTest : public ::testing::TestWithParam<TageConfig> {
 protected:
  TageFoldTest() : pred_(GetParam(), &map_) {}

  void step_conditional(unsigned hart, std::uint64_t ip, bool taken,
                        std::uint16_t pid = 1) {
    const bpu::ExecContext ctx{.pid = pid, .hart = static_cast<std::uint8_t>(hart),
                               .kernel = false};
    const auto p = pred_.predict(ip, ctx);
    pred_.update(ip, ctx, taken, p);
    outcomes_[hart & 1].push_front(taken);
  }

  void step_unconditional(unsigned hart, std::uint64_t ip, bool taken) {
    const bpu::ExecContext ctx{.pid = 1, .hart = static_cast<std::uint8_t>(hart),
                               .kernel = false};
    pred_.track({.ip = ip, .target = 0, .type = bpu::BranchType::kDirectJump,
                 .taken = taken, .ctx = ctx});
    // Not-taken unconditionals do not enter the history.
    if (taken) outcomes_[hart & 1].push_front(true);
  }

  void expect_folds_match(unsigned hart, const char* where) {
    Shadow sh;
    pred_.seed_shadow(sh, static_cast<std::uint8_t>(hart));
    const TageConfig& cfg = pred_.config();
    for (unsigned t = 0; t < cfg.num_tables; ++t) {
      const unsigned L = pred_.history_lengths()[t];
      EXPECT_EQ(sh.fold_index_value(t),
                fold_scratch(outcomes_[hart & 1], L, cfg.index_bits))
          << where << ": index fold, table " << t;
      EXPECT_EQ(sh.fold_tag_value(t),
                fold_scratch(outcomes_[hart & 1], L, cfg.tag_bits))
          << where << ": tag fold, table " << t;
    }
  }

  bpu::BaselineMapping map_;
  TagePredictor pred_;
  std::deque<bool> outcomes_[2];  ///< newest first, per hart
};

TEST_P(TageFoldTest, IncrementalFoldEqualsFromScratchFold) {
  // Random mix of conditionals and unconditionals on both harts — 2000
  // steps wraps the (max_history + 8)-entry ring many times over.
  util::Xoshiro256 rng(42);
  for (int i = 0; i < 2000; ++i) {
    const unsigned h = static_cast<unsigned>(rng() & 1);
    const std::uint64_t ip = 0x1000 + (rng() & 0xFFF0);
    if (rng.chance(0.7)) {
      step_conditional(h, ip, rng.chance(0.5));
    } else {
      step_unconditional(h, ip, rng.chance(0.5));
    }
    if (i % 97 == 0) {
      expect_folds_match(0, "walk");
      expect_folds_match(1, "walk");
    }
  }
  expect_folds_match(0, "final");
  expect_folds_match(1, "final");
}

TEST_P(TageFoldTest, FlushHartResetsFolds) {
  util::Xoshiro256 rng(7);
  for (int i = 0; i < 400; ++i) {
    step_conditional(0, 0x2000 + (rng() & 0xFF0), rng.chance(0.5));
  }
  pred_.flush_hart(0);
  outcomes_[0].clear();
  expect_folds_match(0, "after flush");  // all-zero folds
  // The fold must rebuild correctly from the zeroed ring.
  for (int i = 0; i < 100; ++i) {
    step_conditional(0, 0x3000 + (rng() & 0xFF0), rng.chance(0.5));
  }
  expect_folds_match(0, "after refill");
}

TEST_P(TageFoldTest, ContextSwitchesDoNotPerturbFolds) {
  // Folds are per-hart state; entity churn on one hart must leave the fold
  // stream exactly as a single-entity run would (the predictor's history is
  // not flushed on switches — isolation comes from the ψ keys).
  util::Xoshiro256 rng(11);
  for (int i = 0; i < 600; ++i) {
    const auto pid = static_cast<std::uint16_t>(1 + (i / 37) % 3);
    step_conditional(0, 0x4000 + (rng() & 0xFF0), rng.chance(0.5), pid);
    if (i % 53 == 0) expect_folds_match(0, "churn");
  }
  expect_folds_match(0, "final");
}

TEST_P(TageFoldTest, ShadowWalkMatchesLiveAdvance) {
  // The lookahead contract: copy the live fold state, advance the copy
  // through the same records the predictor consumes, end bit-identical.
  util::Xoshiro256 rng(99);
  for (int i = 0; i < 500; ++i) {
    step_conditional(0, 0x5000 + (rng() & 0xFF0), rng.chance(0.5));
  }
  Shadow sh;
  pred_.seed_shadow(sh, 0);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t ip = 0x6000 + (rng() & 0xFF0);
    if (rng.chance(0.8)) {
      const bool taken = rng.chance(0.5);
      step_conditional(0, ip, taken);
      sh.advance(taken, ip);
    } else {
      step_unconditional(0, ip, true);
      sh.advance(true, ip);
    }
  }
  Shadow live;
  pred_.seed_shadow(live, 0);
  EXPECT_EQ(sh.head, live.head);
  EXPECT_EQ(sh.path, live.path);
  EXPECT_EQ(sh.history, live.history);
  const TageConfig& cfg = pred_.config();
  for (unsigned t = 0; t < cfg.num_tables; ++t) {
    EXPECT_EQ(sh.fold_index_value(t), live.fold_index_value(t)) << t;
    EXPECT_EQ(sh.fold_tag_value(t), live.fold_tag_value(t)) << t;
    EXPECT_EQ(TagePredictor::folded_key(sh, t, false),
              TagePredictor::folded_key(live, t, false))
        << t;
    EXPECT_EQ(TagePredictor::folded_key(sh, t, true),
              TagePredictor::folded_key(live, t, true))
        << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, TageFoldTest,
                         ::testing::Values(TageConfig::kb8(), TageConfig::kb64()),
                         [](const auto& info) {
                           return std::string(info.param.num_tables > 6 ? "kb64"
                                                                        : "kb8");
                         });

}  // namespace
}  // namespace stbpu::tage
