// End-to-end integration: the paper's own validation steps plus the
// headline claims, executed across module boundaries.
#include <gtest/gtest.h>

#include "attacks/table1.h"
#include "models/models.h"
#include "sim/bpu_sim.h"
#include "sim/ooo.h"
#include "trace/generator.h"
#include "trace/instr.h"
#include "trace/profile.h"

namespace stbpu {
namespace {

TEST(Integration, SimulatorConsistencySklCond) {
  // Paper §VII-B2: "We compared the direction prediction accuracy between
  // SKLCond in gem5 with our previous baseline model using the same
  // workloads. We observed on average less than 5% direction prediction
  // difference which validates our simulator consistency."
  double total_diff = 0.0;
  const char* names[] = {"mcf", "leela", "bwaves", "exchange2"};
  for (const char* name : names) {
    const auto profile = trace::profile_by_name(name);
    auto m1 = models::BpuModel::create({});
    trace::SyntheticWorkloadGenerator branch_gen(profile);
    const auto trace_stats = sim::simulate_bpu(
        *m1, branch_gen, {.max_branches = 150'000, .warmup_branches = 20'000});

    auto m2 = models::BpuModel::create({});
    trace::SyntheticInstrGenerator instr_gen(profile);
    sim::OooCore core({}, m2.get(), {&instr_gen});
    const auto ooo = core.run(400'000, 40'000);

    total_diff +=
        std::abs(trace_stats.direction_rate() - ooo.branch_stats[0].direction_rate());
  }
  EXPECT_LT(total_diff / 4.0, 0.05)
      << "trace-driven and cycle-level simulators must agree on accuracy";
}

TEST(Integration, HeadlineClaimAccuracyAndSecurityTogether) {
  // The paper's core claim in one test: on the same workload STBPU costs
  // ~nothing in accuracy while the attack surface collapses.
  const auto profile = trace::profile_by_name("perlbench");
  double oae[2];
  for (int st = 0; st < 2; ++st) {
    auto model = models::BpuModel::create(
        {.model = st ? models::ModelKind::kStbpu : models::ModelKind::kUnprotected});
    trace::SyntheticWorkloadGenerator gen(profile);
    oae[st] = sim::simulate_bpu(*model, gen,
                                {.max_branches = 300'000, .warmup_branches = 50'000})
                  .oae();
  }
  EXPECT_GT(oae[1] / oae[0], 0.95) << "accuracy within 5% of unprotected";

  auto victim_model = models::BpuModel::create({.model = models::ModelKind::kStbpu});
  const auto spectre =
      attacks::btb_injection_away(*victim_model, 64, 5, 0x0000'1122'3344ULL);
  EXPECT_FALSE(spectre.success) << "...while Spectre v2 is dead";
}

TEST(Integration, FlushModelsPayOnSwitchHeavyWorkloads) {
  // Figure 3's qualitative core on one server workload.
  const auto profile = trace::profile_by_name("apache2_prefork_c256");
  const sim::BpuSimOptions opt{.max_branches = 300'000, .warmup_branches = 50'000};
  double base, ucode, stbpu;
  {
    auto m = models::BpuModel::create({});
    trace::SyntheticWorkloadGenerator gen(profile);
    base = sim::simulate_bpu(*m, gen, opt).oae();
  }
  {
    auto m = models::BpuModel::create({.model = models::ModelKind::kUcode1});
    trace::SyntheticWorkloadGenerator gen(profile);
    ucode = sim::simulate_bpu(*m, gen, opt).oae();
  }
  {
    auto m = models::BpuModel::create({.model = models::ModelKind::kStbpu});
    trace::SyntheticWorkloadGenerator gen(profile);
    stbpu = sim::simulate_bpu(*m, gen, opt).oae();
  }
  EXPECT_LT(ucode / base, 0.93) << "flushing must visibly hurt server workloads";
  EXPECT_GT(stbpu / base, 0.93) << "STBPU must not";
  EXPECT_GT(stbpu, ucode);
}

TEST(Integration, RerandomizationIsRareUnderBenignLoad) {
  // §IV-A: "our analysis indicates that such events are infrequent" — the
  // r = 0.05 thresholds must essentially never fire on benign workloads.
  std::uint64_t total_rerands = 0;
  for (const char* name : {"bwaves", "x264", "nab", "leela"}) {
    auto model = models::BpuModel::create({.model = models::ModelKind::kStbpu});
    trace::SyntheticWorkloadGenerator gen(trace::profile_by_name(name));
    (void)sim::simulate_bpu(*model, gen,
                            {.max_branches = 300'000, .warmup_branches = 0});
    total_rerands += model->tokens()->rerandomizations();
  }
  EXPECT_LE(total_rerands, 8u) << "benign workloads must not thrash the ST";
}

TEST(Integration, HistoryRetentionBeatsFlushingAfterSwitchStorm) {
  // Directly contrast the two protection philosophies: after a burst of
  // context switches, the STBPU process still predicts its own hot branch;
  // the ucode process starts cold every time.
  const bpu::ExecContext a{.pid = 1, .hart = 0, .kernel = false};
  const bpu::ExecContext b{.pid = 2, .hart = 0, .kernel = false};
  for (const auto kind : {models::ModelKind::kUcode1, models::ModelKind::kStbpu}) {
    auto m = models::BpuModel::create({.model = kind});
    unsigned correct = 0;
    for (int round = 0; round < 50; ++round) {
      const auto res = m->access({.ip = 0x1000, .target = 0x9000,
                                  .type = bpu::BranchType::kDirectJump,
                                  .taken = true, .ctx = a});
      if (round > 0 && res.target_correct) ++correct;
      m->on_switch(a, b);
      m->access({.ip = 0x5000, .target = 0x6000,
                 .type = bpu::BranchType::kDirectJump, .taken = true, .ctx = b});
      m->on_switch(b, a);
    }
    if (kind == models::ModelKind::kUcode1) {
      EXPECT_EQ(correct, 0u) << "IBPB: cold after every switch";
    } else {
      EXPECT_EQ(correct, 49u) << "STBPU: history survives switches";
    }
  }
}

}  // namespace
}  // namespace stbpu
