// Batch-native prediction API contracts:
//   * access_batch ≡ a scalar access() loop, result for result;
//   * precompute is pure cache warming — even adversarially wrong
//     speculative GHRs must be detected (tag mismatch) and discarded
//     without perturbing a single statistic;
//   * the mapping-level probe/fill never creates secret tokens (token
//     creation order is architectural state) and drops foreign-context
//     requests.
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "core/remap_cache.h"
#include "core/secret_token.h"
#include "models/engine.h"
#include "models/models.h"
#include "sim/bpu_sim.h"
#include "trace/generator.h"
#include "trace/profile.h"
#include "trace/stream.h"
#include "util/rng.h"

namespace stbpu {
namespace {

std::vector<bpu::BranchRecord> test_trace(std::size_t n) {
  trace::SyntheticWorkloadGenerator gen(trace::profile_by_name("mcf"));
  return trace::collect(gen, n);
}

void expect_result_eq(const bpu::AccessResult& a, const bpu::AccessResult& b,
                      std::size_t i) {
  EXPECT_EQ(a.direction_correct, b.direction_correct) << i;
  EXPECT_EQ(a.target_correct, b.target_correct) << i;
  EXPECT_EQ(a.overall_correct, b.overall_correct) << i;
  EXPECT_EQ(a.direction_mispredicted, b.direction_mispredicted) << i;
  EXPECT_EQ(a.target_mispredicted, b.target_mispredicted) << i;
  EXPECT_EQ(a.btb_eviction, b.btb_eviction) << i;
  EXPECT_EQ(a.rsb_underflow, b.rsb_underflow) << i;
  EXPECT_EQ(a.from_tagged, b.from_tagged) << i;
  EXPECT_EQ(a.pred.taken, b.pred.taken) << i;
  EXPECT_EQ(a.pred.target_valid, b.pred.target_valid) << i;
  EXPECT_EQ(a.pred.target, b.pred.target) << i;
}

TEST(BatchApi, AccessBatchMatchesScalarLoop) {
  const auto records = test_trace(30'000);
  for (const auto dir : {models::DirectionKind::kSklCond, models::DirectionKind::kTage8,
                         models::DirectionKind::kPerceptron}) {
    const models::ModelSpec spec{.model = models::ModelKind::kStbpu, .direction = dir};

    auto scalar_engine = models::make_engine(spec);
    std::vector<bpu::AccessResult> scalar_results;
    scalar_results.reserve(records.size());
    for (const auto& rec : records) scalar_results.push_back(scalar_engine->access(rec));

    auto batch_engine = models::make_engine(spec);
    std::vector<bpu::AccessResult> batch_results(records.size());
    bool dispatched = models::visit_engine(*batch_engine, [&](auto& e) {
      constexpr std::size_t kChunk = 512;
      for (std::size_t at = 0; at < records.size(); at += kChunk) {
        const std::size_t n = std::min(kChunk, records.size() - at);
        e.access_batch(std::span<const bpu::BranchRecord>(&records[at], n),
                       std::span<bpu::AccessResult>(&batch_results[at], n));
      }
    });
    ASSERT_TRUE(dispatched);
    for (std::size_t i = 0; i < records.size(); ++i) {
      expect_result_eq(scalar_results[i], batch_results[i], i);
    }
  }
}

// Replay bookkeeping identical to sim::replay's step sequence, with an
// optional hostile precompute injected before every chunk.
template <class Engine, class Corrupt>
sim::BranchStats replay_with(Engine& engine, const std::vector<bpu::BranchRecord>& recs,
                             std::size_t chunk, Corrupt&& corrupt) {
  sim::BranchStats stats;
  bool have_last[2] = {false, false};
  bpu::ExecContext last[2];
  for (std::size_t at = 0; at < recs.size(); at += chunk) {
    const std::size_t n = std::min(chunk, recs.size() - at);
    corrupt(engine, &recs[at], n);
    for (std::size_t i = 0; i < n; ++i) {
      const bpu::BranchRecord& rec = recs[at + i];
      const unsigned h = rec.ctx.hart & 1;
      if (have_last[h] && !(last[h] == rec.ctx)) {
        engine.on_switch(last[h], rec.ctx);
        if (last[h].pid != rec.ctx.pid) {
          ++stats.context_switches;
        } else {
          ++stats.mode_switches;
        }
      }
      last[h] = rec.ctx;
      have_last[h] = true;
      stats.absorb(rec, engine.access(rec));
    }
  }
  return stats;
}

TEST(BatchApi, WrongGhrPrecomputeIsDiscardedWithoutStatPollution) {
  const auto records = test_trace(40'000);
  for (const auto dir : {models::DirectionKind::kSklCond,
                         models::DirectionKind::kPerceptron}) {
    const models::ModelSpec spec{.model = models::ModelKind::kStbpu, .direction = dir};

    auto clean = models::make_engine(spec);
    sim::BranchStats clean_stats;
    ASSERT_TRUE(models::visit_engine(*clean, [&](auto& e) {
      clean_stats = replay_with(e, records, 512, [](auto&, const bpu::BranchRecord*,
                                                    std::size_t) {});
    }));

    // Hostile lookahead: every chunk is precomputed with garbage
    // speculative GHRs, every request promoted to conditional so the R4
    // path definitely fires on the SKLCond engine (on the Perceptron
    // engine precompute is an engine-level no-op, making that leg a
    // stability check). Entries keyed by wrong GHRs never match at access
    // time. Statistics must be bit-identical either way.
    auto hostile = models::make_engine(spec);
    util::Xoshiro256 rng(0xBAD);
    sim::BranchStats hostile_stats;
    ASSERT_TRUE(models::visit_engine(*hostile, [&](auto& e) {
      hostile_stats = replay_with(
          e, records, 512,
          [&rng](auto& eng, const bpu::BranchRecord* run, std::size_t n) {
            std::vector<bpu::PredictRequest> reqs;
            reqs.reserve(n);
            for (std::size_t i = 0; i < n; ++i) {
              reqs.push_back(bpu::PredictRequest{.ip = run[i].ip,
                                                 .ghr = rng(),  // wrong on purpose
                                                 .ctx = run[i].ctx,
                                                 .type = bpu::BranchType::kConditional});
            }
            eng.precompute(std::span<const bpu::PredictRequest>(reqs));
          });
    }));
    EXPECT_EQ(clean_stats, hostile_stats)
        << "hostile precompute leaked into statistics (dir="
        << models::to_string(dir) << ")";
  }
}

TEST(BatchApi, ReplayPrecomputePathMatchesScalarSimulate) {
  // sim::replay now precomputes every borrowed run through the batch
  // kernels; the scalar record-at-a-time simulate_bpu is the oracle.
  const auto records = test_trace(50'000);
  const sim::BpuSimOptions opt{.max_branches = 40'000, .warmup_branches = 5'000};
  for (const auto dir : {models::DirectionKind::kSklCond, models::DirectionKind::kTage8,
                         models::DirectionKind::kTage64,
                         models::DirectionKind::kPerceptron}) {
    const models::ModelSpec spec{.model = models::ModelKind::kStbpu, .direction = dir};
    auto scalar_engine = models::make_engine(spec);
    trace::VectorStream s1(records);
    const auto scalar_stats = sim::simulate_bpu(*scalar_engine, s1, opt);

    auto batch_engine = models::make_engine(spec);
    trace::VectorStream s2(records);
    const auto batch_stats = models::replay_engine(*batch_engine, s2, opt);
    EXPECT_EQ(scalar_stats, batch_stats) << models::to_string(dir);

    // The precompute-off arm of the A/B lever must be just as
    // bit-identical — it is the same binary minus the cache warming.
    auto off_engine = models::make_engine(spec);
    trace::VectorStream s3(records);
    auto opt_off = opt;
    opt_off.precompute = false;
    const auto off_stats = models::replay_engine(*off_engine, s3, opt_off);
    EXPECT_EQ(scalar_stats, off_stats) << models::to_string(dir) << " (precompute off)";

    // History-keyed engines have compulsory misses worth batching — they
    // must actually batch (SKLCond through the PredictRequest path, TAGE
    // through the TageRtRequest shadow-fold path); the perceptron must pay
    // zero precompute overhead (engine-level no-op).
    const auto cache = models::engine_remap_cache_stats(*batch_engine);
    const auto cache_off = models::engine_remap_cache_stats(*off_engine);
    EXPECT_EQ(cache_off.batch_requests, 0u) << models::to_string(dir);
    EXPECT_EQ(cache_off.batch_rt_requests, 0u) << models::to_string(dir);
    if (dir == models::DirectionKind::kSklCond) {
      EXPECT_GT(cache.batch_requests, 0u) << models::to_string(dir);
      EXPECT_GT(cache.batch_fills, 0u) << models::to_string(dir);
    } else if (dir == models::DirectionKind::kTage8 ||
               dir == models::DirectionKind::kTage64) {
      EXPECT_EQ(cache.batch_requests, 0u) << models::to_string(dir);
      EXPECT_GT(cache.batch_rt_requests, 0u) << models::to_string(dir);
      EXPECT_GT(cache.fn_batch_fills[core::RemapCacheStats::kRtIndex], 0u)
          << models::to_string(dir);
      EXPECT_GT(cache.fn_batch_fills[core::RemapCacheStats::kRtTag], 0u)
          << models::to_string(dir);
    } else {
      EXPECT_EQ(cache.batch_requests, 0u) << models::to_string(dir);
      EXPECT_EQ(cache.batch_rt_requests, 0u) << models::to_string(dir);
    }
  }
}

TEST(BatchApi, WrongOutcomeTagePrecomputeIsDiscardedWithoutStatPollution) {
  // TAGE rendering of the adversarial-lookahead contract: the shadow
  // fold-forward walk consumes trace outcomes, so a mis-speculated window
  // derails every subsequent folded key for the hart. Feed precompute a
  // copy of each chunk with randomly flipped outcomes (and types) — the
  // wrong folded keys never match a demand lookup, so every statistic must
  // stay bit-identical to the clean run.
  const auto records = test_trace(40'000);
  for (const auto dir : {models::DirectionKind::kTage8, models::DirectionKind::kTage64}) {
    const models::ModelSpec spec{.model = models::ModelKind::kStbpu, .direction = dir};

    auto clean = models::make_engine(spec);
    sim::BranchStats clean_stats;
    ASSERT_TRUE(models::visit_engine(*clean, [&](auto& e) {
      clean_stats = replay_with(e, records, 64, [](auto&, const bpu::BranchRecord*,
                                                   std::size_t) {});
    }));

    auto hostile = models::make_engine(spec);
    util::Xoshiro256 rng(0xBAD);
    sim::BranchStats hostile_stats;
    ASSERT_TRUE(models::visit_engine(*hostile, [&](auto& e) {
      hostile_stats = replay_with(
          e, records, 64,
          [&rng](auto& eng, const bpu::BranchRecord* run, std::size_t n) {
            if constexpr (std::remove_reference_t<decltype(eng)>::kBatchPrecompute) {
              std::vector<bpu::BranchRecord> wrong(run, run + n);
              for (auto& rec : wrong) {
                if ((rng() & 1) != 0) rec.taken = !rec.taken;  // wrong on purpose
              }
              eng.precompute_records(std::span<const bpu::BranchRecord>(wrong));
            }
          });
    }));
    EXPECT_EQ(clean_stats, hostile_stats)
        << "hostile TAGE precompute leaked into statistics (dir="
        << models::to_string(dir) << ")";
  }
}

TEST(BatchApi, MappingPrecomputeRtNeverCreatesTokens) {
  core::STManager stm(0x5678);
  const core::CachedStbpuMapping mapping(&stm);
  const bpu::ExecContext ctx{.pid = 9, .hart = 0, .kernel = false};
  constexpr unsigned kIndexBits = 10, kTagBits = 8;

  std::vector<bpu::TageRtRequest> reqs;
  for (std::uint64_t i = 0; i < 24; ++i) {
    reqs.push_back(bpu::TageRtRequest{.ip = 0x4000 + i * 16,
                                      .folded_index = 0x111 * i,
                                      .folded_tag = (0x111 * i) ^ 0x5A5A,
                                      .table = static_cast<std::uint32_t>(i % 6),
                                      .ctx = ctx});
  }

  // No token established yet: the whole span must drop without asking the
  // STManager to create one (same PRNG draw sequence as a fresh manager).
  mapping.precompute_rt(std::span<const bpu::TageRtRequest>(reqs), kIndexBits, kTagBits);
  EXPECT_EQ(mapping.stats().batch_rt_requests, reqs.size());
  EXPECT_EQ(mapping.stats().batch_drops, reqs.size());
  EXPECT_EQ(mapping.stats().batch_fills, 0u);
  core::STManager fresh(0x5678);
  EXPECT_EQ(stm.token(ctx).psi, fresh.token(ctx).psi)
      << "precompute_rt changed the token creation order";

  // One demand access establishes the token; the same span now fills both
  // Rt caches, and demand lookups then serve Remapper-identical values
  // without missing.
  (void)mapping.tage_index(0x9999, 0, 0, kIndexBits, ctx);
  mapping.precompute_rt(std::span<const bpu::TageRtRequest>(reqs), kIndexBits, kTagBits);
  EXPECT_GT(mapping.stats().fn_batch_fills[core::RemapCacheStats::kRtIndex], 0u);
  EXPECT_GT(mapping.stats().fn_batch_fills[core::RemapCacheStats::kRtTag], 0u);

  const std::uint32_t psi = stm.token(ctx).psi;
  const auto idx_misses = mapping.stats().fn_misses[core::RemapCacheStats::kRtIndex];
  const auto tag_misses = mapping.stats().fn_misses[core::RemapCacheStats::kRtTag];
  for (const auto& q : reqs) {
    EXPECT_EQ(mapping.tage_index(q.ip, q.folded_index, q.table, kIndexBits, ctx),
              core::Remapper::rt_index(psi, q.ip, q.folded_index, q.table, kIndexBits));
    EXPECT_EQ(mapping.tage_tag(q.ip, q.folded_tag, q.table, kTagBits, ctx),
              core::Remapper::rt_tag(psi, q.ip, q.folded_tag, q.table, kTagBits));
  }
  EXPECT_EQ(mapping.stats().fn_misses[core::RemapCacheStats::kRtIndex], idx_misses)
      << "demand path missed despite Rt precompute";
  EXPECT_EQ(mapping.stats().fn_misses[core::RemapCacheStats::kRtTag], tag_misses)
      << "demand path missed despite Rt precompute";

  // Foreign contexts are dropped request by request.
  const std::uint64_t drops_before = mapping.stats().batch_drops;
  std::vector<bpu::TageRtRequest> foreign = reqs;
  for (auto& q : foreign) q.ctx.pid = 10;
  mapping.precompute_rt(std::span<const bpu::TageRtRequest>(foreign), kIndexBits,
                        kTagBits);
  EXPECT_EQ(mapping.stats().batch_drops, drops_before + foreign.size());
}

TEST(BatchApi, MappingPrecomputeNeverCreatesTokens) {
  core::STManager stm(0x1234);
  const core::CachedStbpuMapping mapping(&stm);
  const bpu::ExecContext ctx{.pid = 7, .hart = 0, .kernel = false};

  std::vector<bpu::PredictRequest> reqs;
  for (std::uint64_t i = 0; i < 32; ++i) {
    reqs.push_back(bpu::PredictRequest{.ip = 0x1000 + i * 64,
                                       .ghr = i,
                                       .ctx = ctx,
                                       .type = bpu::BranchType::kConditional});
  }
  core::CachedStbpuMapping::PrecomputeSelect sel;
  sel.r34 = true;

  // Before any demand access the mapping holds no token — the whole span
  // must be dropped, and the STManager must not have been asked to create
  // one (same PRNG draw sequence as an untouched manager).
  mapping.precompute(std::span<const bpu::PredictRequest>(reqs), sel);
  EXPECT_EQ(mapping.stats().batch_drops, reqs.size());
  EXPECT_EQ(mapping.stats().batch_fills, 0u);
  core::STManager fresh(0x1234);
  EXPECT_EQ(stm.token(ctx).psi, fresh.token(ctx).psi)
      << "precompute changed the token creation order";

  // One demand access establishes the token; the same span now fills.
  (void)mapping.btb_mode1(0x9999, ctx);
  mapping.precompute(std::span<const bpu::PredictRequest>(reqs), sel);
  EXPECT_GT(mapping.stats().batch_fills, 0u);

  // Filled entries serve demand lookups with values identical to the
  // direct Remapper computation.
  const std::uint32_t psi = stm.token(ctx).psi;
  for (const auto& q : reqs) {
    const auto pair = mapping.pht_indexes(q.ip, q.ghr, ctx);
    EXPECT_EQ(pair.i1, core::Remapper::r3(psi, q.ip));
    EXPECT_EQ(pair.i2, core::Remapper::r4(psi, q.ip, q.ghr));
    EXPECT_EQ(mapping.btb_mode1(q.ip, ctx), core::Remapper::r1(psi, q.ip));
  }

  // Foreign contexts are dropped request by request.
  const std::uint64_t drops_before = mapping.stats().batch_drops;
  std::vector<bpu::PredictRequest> foreign = reqs;
  for (auto& q : foreign) q.ctx.pid = 8;
  mapping.precompute(std::span<const bpu::PredictRequest>(foreign), sel);
  EXPECT_EQ(mapping.stats().batch_drops, drops_before + foreign.size());
}

TEST(BatchApi, MappingRpWarmingMatchesDemand) {
  // The perceptron-row warm is a mapping-level capability (engines don't
  // select it — Rp's demand hit rate makes it a net loss there); callers
  // that do select it must get bit-identical fills.
  core::STManager stm(0xABC);
  const core::CachedStbpuMapping mapping(&stm);
  const bpu::ExecContext ctx{.pid = 3, .hart = 0, .kernel = false};
  constexpr unsigned kRowBits = 10;
  (void)mapping.perceptron_row(0x40, kRowBits, ctx);  // establish the token

  std::vector<bpu::PredictRequest> reqs;
  for (std::uint64_t i = 0; i < 24; ++i) {
    reqs.push_back(bpu::PredictRequest{.ip = 0x7000 + i * 4,
                                       .ghr = 0,
                                       .ctx = ctx,
                                       .type = bpu::BranchType::kConditional});
  }
  core::CachedStbpuMapping::PrecomputeSelect sel;
  sel.r1 = false;
  sel.rp = true;
  sel.rp_row_bits = kRowBits;
  mapping.precompute(std::span<const bpu::PredictRequest>(reqs), sel);
  EXPECT_GT(mapping.stats().fn_batch_fills[core::RemapCacheStats::kRp], 0u);

  const std::uint32_t psi = stm.token(ctx).psi;
  const auto misses_before = mapping.stats().fn_misses[core::RemapCacheStats::kRp];
  for (const auto& q : reqs) {
    EXPECT_EQ(mapping.perceptron_row(q.ip, kRowBits, ctx),
              core::Remapper::rp(psi, q.ip, kRowBits));
  }
  EXPECT_EQ(mapping.stats().fn_misses[core::RemapCacheStats::kRp], misses_before)
      << "demand path missed despite Rp precompute";
}

TEST(BatchApi, PrecomputedEntriesCountAsDemandHits) {
  core::STManager stm(0x777);
  const core::CachedStbpuMapping mapping(&stm);
  const bpu::ExecContext ctx{.pid = 1, .hart = 0, .kernel = false};
  (void)mapping.btb_mode1(0x40, ctx);  // establish the token

  std::vector<bpu::PredictRequest> reqs;
  for (std::uint64_t i = 0; i < 16; ++i) {
    reqs.push_back(bpu::PredictRequest{.ip = 0x2000 + i * 4,
                                       .ghr = 0x3F ^ i,
                                       .ctx = ctx,
                                       .type = bpu::BranchType::kConditional});
  }
  core::CachedStbpuMapping::PrecomputeSelect sel;
  sel.r34 = true;
  mapping.precompute(std::span<const bpu::PredictRequest>(reqs), sel);

  const auto before = mapping.stats();
  for (const auto& q : reqs) {
    (void)mapping.pht_indexes(q.ip, q.ghr, ctx);
    (void)mapping.btb_mode1(q.ip, ctx);
  }
  const auto after = mapping.stats();
  EXPECT_EQ(after.fn_misses[core::RemapCacheStats::kR34],
            before.fn_misses[core::RemapCacheStats::kR34])
      << "demand path missed despite precompute";
  EXPECT_EQ(after.fn_misses[core::RemapCacheStats::kR1],
            before.fn_misses[core::RemapCacheStats::kR1]);
  EXPECT_EQ(after.fn_hits[core::RemapCacheStats::kR34],
            before.fn_hits[core::RemapCacheStats::kR34] + reqs.size());
}

}  // namespace
}  // namespace stbpu
