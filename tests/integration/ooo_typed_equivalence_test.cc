// Cycle-level core equivalence, two axes at once:
//
//  1. Engine-typed fan-out: the core instantiated on the concrete engine
//     type (exp::for_each_engine + sim::run_ooo — zero per-branch virtual
//     dispatch) must produce BIT-IDENTICAL results to driving the same
//     engine through the interface-typed core. This is the contract that
//     lets the OoO scenarios adopt the typed path without changing
//     Figures 4-6.
//  2. Integer-tick vs double-precision: the production OooCoreT runs on
//     u64 ticks (1 tick = 1/width cycle) with SoA ring state; the retained
//     OooCoreRefT is the original double/AoS implementation. With the
//     default power-of-two width every double the reference computes is an
//     exact multiple of 1/width, so cycles and IPC (reconstructed from
//     ticks at report time) must match bit-for-bit — not approximately —
//     and BranchStats/instruction counts are identical by construction.
//     Asserted across all 20 model×direction combos and the SMT config.
#include <gtest/gtest.h>

#include <memory>

#include "exp/engine_visit.h"
#include "models/engine.h"
#include "models/models.h"
#include "sim/ooo.h"
#include "trace/instr.h"
#include "trace/pregen.h"
#include "trace/profile.h"

namespace stbpu {
namespace {

constexpr std::uint64_t kBudget = 20'000;
constexpr std::uint64_t kWarmup = 2'000;

void expect_identical_results(const sim::OooResult& iface, const sim::OooResult& typed,
                              const models::ModelSpec& spec) {
  const auto label =
      models::to_string(spec.model) + "/" + models::to_string(spec.direction);
  ASSERT_EQ(iface.threads, typed.threads) << label;
  for (unsigned t = 0; t < iface.threads; ++t) {
    EXPECT_EQ(iface.instructions[t], typed.instructions[t]) << label;
    EXPECT_EQ(iface.cycles[t], typed.cycles[t]) << label;    // bit-exact doubles
    EXPECT_EQ(iface.ipc[t], typed.ipc[t]) << label;
    EXPECT_EQ(iface.branch_stats[t], typed.branch_stats[t]) << label;
  }
  // The cache hierarchy's demand counters are part of the contract: the
  // interleaved metadata layout must make the same hit/miss/evict
  // decisions in every core variant.
  EXPECT_EQ(iface.cache, typed.cache) << label;
  EXPECT_GT(iface.combined_stats().branches, 0u) << label;
}

void expect_single_equivalent(const models::ModelSpec& spec) {
  // Interface-typed baseline: the engine driven through IPredictor* (this
  // path has no lookahead front end by construction).
  auto engine = models::make_engine(spec);
  trace::SyntheticInstrGenerator gen(trace::profile_by_name("mcf"));
  bpu::IPredictor* iface = engine.get();
  const auto iface_result = sim::run_ooo({}, *iface, {&gen}, kBudget, kWarmup);

  // Double-precision reference core on a fresh identical engine: the
  // integer-tick core must reproduce its cycles/IPC bit-for-bit.
  auto ref_engine = models::make_engine(spec);
  trace::SyntheticInstrGenerator ref_gen(trace::profile_by_name("mcf"));
  bpu::IPredictor* ref_iface = ref_engine.get();
  const auto ref_result = sim::run_ooo_ref({}, *ref_iface, {&ref_gen}, kBudget, kWarmup);
  expect_identical_results(ref_result, iface_result, spec);

  // Engine-typed path with the lookahead front end on (the default):
  // concrete EngineT recovered once, OooCoreT instantiated on it, windowed
  // fetch + batched precompute ahead of every access.
  sim::OooResult typed_result{};
  ASSERT_TRUE(exp::for_each_engine(spec, [&](auto& typed_engine) {
    trace::SyntheticInstrGenerator typed_gen(trace::profile_by_name("mcf"));
    typed_result = sim::run_ooo({}, typed_engine, {&typed_gen}, kBudget, kWarmup);
  })) << "for_each_engine did not dispatch";

  expect_identical_results(iface_result, typed_result, spec);

  // And with the lookahead disabled — the window and precompute must be
  // pure mechanics with zero observable effect.
  sim::OooConfig no_lookahead;
  no_lookahead.lookahead = false;
  sim::OooResult nola_result{};
  ASSERT_TRUE(exp::for_each_engine(spec, [&](auto& typed_engine) {
    trace::SyntheticInstrGenerator typed_gen(trace::profile_by_name("mcf"));
    nola_result =
        sim::run_ooo(no_lookahead, typed_engine, {&typed_gen}, kBudget, kWarmup);
  }));
  expect_identical_results(iface_result, nola_result, spec);

  // Engine-typed double reference (lookahead on) vs the engine-typed tick
  // core: the integerization must be exact on the devirtualized path too.
  sim::OooResult ref_typed{};
  ASSERT_TRUE(exp::for_each_engine(spec, [&](auto& typed_engine) {
    trace::SyntheticInstrGenerator typed_gen(trace::profile_by_name("mcf"));
    ref_typed = sim::run_ooo_ref({}, typed_engine, {&typed_gen}, kBudget, kWarmup);
  }));
  expect_identical_results(ref_typed, typed_result, spec);

  // Pregenerated-stream arm: the same engine-typed tick core fed by a
  // cursor over the whole-run SoA artifact, consumed by pointer through
  // the lookahead window — the blocks must be pure transport. Stall
  // attribution is compared too (both arms run the tick core).
  sim::OooResult pregen_result{};
  const auto artifact = trace::shared_instr_trace(trace::profile_by_name("mcf"),
                                                  kBudget + kWarmup + 4096);
  ASSERT_TRUE(exp::for_each_engine(spec, [&](auto& typed_engine) {
    trace::InstrTraceStream stream(artifact);
    pregen_result = sim::run_ooo({}, typed_engine, {&stream}, kBudget, kWarmup);
  }));
  expect_identical_results(typed_result, pregen_result, spec);
  EXPECT_EQ(typed_result.stalls, pregen_result.stalls)
      << models::to_string(spec.model) + "/" + models::to_string(spec.direction);
}

TEST(OooTypedEquivalence, AllModelsSingleThread) {
  // All 20 model × direction combos; every one runs the lookahead front
  // end on the typed path (STBPU engines batch keyed mixes through it,
  // the others exercise the windowed fetch with a no-op precompute).
  for (const auto model :
       {models::ModelKind::kUnprotected, models::ModelKind::kUcode1,
        models::ModelKind::kUcode2, models::ModelKind::kConservative,
        models::ModelKind::kStbpu}) {
    for (const auto dir : {models::DirectionKind::kSklCond, models::DirectionKind::kTage8,
                           models::DirectionKind::kTage64,
                           models::DirectionKind::kPerceptron}) {
      expect_single_equivalent({.model = model, .direction = dir});
    }
  }
}

TEST(OooTypedEquivalence, LookaheadActuallyBatches) {
  // The windowed front end must genuinely drive the batch probe/fill layer
  // on STBPU engines — otherwise the equivalence above is vacuous.
  const models::ModelSpec spec{.model = models::ModelKind::kStbpu,
                               .direction = models::DirectionKind::kSklCond};
  ASSERT_TRUE(exp::for_each_engine(spec, [&](auto& engine) {
    trace::SyntheticInstrGenerator gen(trace::profile_by_name("mcf"));
    (void)sim::run_ooo({}, engine, {&gen}, kBudget, kWarmup);
    const auto cache = models::engine_remap_cache_stats(engine);
    EXPECT_GT(cache.batch_requests, 0u);
    EXPECT_GT(cache.batch_fills, 0u);
    // SKLCond lookahead speculates the GHR: the fused R3+R4 probe must be
    // among the warmed functions, not just the address-keyed R1.
    EXPECT_GT(cache.fn_batch_fills[core::RemapCacheStats::kR34], 0u);
  }));
}

TEST(OooTypedEquivalence, StbpuSmtPair) {
  // The SMT configuration (shared BPU, two instruction streams) through
  // the TAGE-64 STBPU — the combination Figures 5/6 rely on.
  const models::ModelSpec spec{.model = models::ModelKind::kStbpu,
                               .direction = models::DirectionKind::kTage64};

  auto engine = models::make_engine(spec);
  trace::SyntheticInstrGenerator g0(trace::profile_by_name("bwaves"));
  trace::SyntheticInstrGenerator g1(trace::profile_by_name("mcf"));
  bpu::IPredictor* iface = engine.get();
  const auto iface_result = sim::run_ooo({}, *iface, {&g0, &g1}, kBudget, kWarmup);

  sim::OooResult typed_result{};
  ASSERT_TRUE(exp::for_each_engine(spec, [&](auto& typed_engine) {
    trace::SyntheticInstrGenerator t0(trace::profile_by_name("bwaves"));
    trace::SyntheticInstrGenerator t1(trace::profile_by_name("mcf"));
    typed_result = sim::run_ooo({}, typed_engine, {&t0, &t1}, kBudget, kWarmup);
  }));

  expect_identical_results(iface_result, typed_result, spec);
  EXPECT_EQ(iface_result.threads, 2u);
  EXPECT_EQ(iface_result.ipc_harmonic_mean(), typed_result.ipc_harmonic_mean());

  // SMT through the double reference core: the shared fetch/issue tick
  // clocks must interleave the two threads exactly as the shared double
  // clocks did — thread ordering, context switches, and both threads'
  // cycles bit-identical.
  auto ref_engine = models::make_engine(spec);
  trace::SyntheticInstrGenerator r0(trace::profile_by_name("bwaves"));
  trace::SyntheticInstrGenerator r1(trace::profile_by_name("mcf"));
  bpu::IPredictor* ref_iface = ref_engine.get();
  const auto ref_result = sim::run_ooo_ref({}, *ref_iface, {&r0, &r1}, kBudget, kWarmup);
  expect_identical_results(ref_result, typed_result, spec);
  EXPECT_EQ(ref_result.ipc_harmonic_mean(), typed_result.ipc_harmonic_mean());
}

TEST(OooTypedEquivalence, VisitRecoversConcreteTypeOnce) {
  // for_each_engine hands the scenario a reference whose static type is the
  // final EngineT — not IPredictor — so OooCoreT instantiates devirtualized.
  const models::ModelSpec spec{.model = models::ModelKind::kStbpu,
                               .direction = models::DirectionKind::kSklCond};
  bool visited = false;
  ASSERT_TRUE(exp::for_each_engine(spec, [&](auto& engine) {
    using Engine = std::decay_t<decltype(engine)>;
    static_assert(!std::is_same_v<Engine, bpu::IPredictor>);
    static_assert(std::is_final_v<Engine>);
    visited = true;
  }));
  EXPECT_TRUE(visited);

  // Foreign predictors are reported, not mis-dispatched.
  auto legacy = models::BpuModel::create(spec);
  EXPECT_FALSE(models::visit_engine(*legacy, [](auto&) {}));
}

}  // namespace
}  // namespace stbpu
