// Devirtualized-engine equivalence: models::make_engine(spec) must produce
// BIT-IDENTICAL prediction statistics to the legacy virtual-dispatch
// BpuModel::create(spec) on identical traces — every field of BranchStats,
// for every model kind and direction predictor, on both the record-at-a-
// time legacy loop and the batched SoA replay. This is the contract that
// lets the benches swap in the fast engine without changing any figure.
#include <gtest/gtest.h>

#include <vector>

#include "models/engine.h"
#include "models/models.h"
#include "sim/bpu_sim.h"
#include "sim/ooo.h"
#include "trace/generator.h"
#include "trace/instr.h"
#include "trace/profile.h"
#include "trace/stream.h"

namespace stbpu {
namespace {

trace::VectorStream make_trace(const char* profile_name, std::uint64_t branches) {
  trace::SyntheticWorkloadGenerator gen(trace::profile_by_name(profile_name));
  return trace::VectorStream(trace::collect(gen, branches));
}

void expect_equivalent(const models::ModelSpec& spec, trace::VectorStream& stream,
                       const sim::BpuSimOptions& opt) {
  stream.reset();
  auto legacy = models::BpuModel::create(spec);
  const auto legacy_stats = sim::simulate_bpu(*legacy, stream, opt);

  stream.reset();
  auto engine = models::make_engine(spec);
  const auto engine_stats = models::replay_engine(*engine, stream, opt);

  EXPECT_EQ(legacy_stats, engine_stats)
      << "stats diverge for " << models::to_string(spec.model) << "/"
      << models::to_string(spec.direction) << " (OAE legacy=" << legacy_stats.oae()
      << " engine=" << engine_stats.oae() << ")";
}

TEST(EngineEquivalence, AllModelsAllDirectionsBitIdentical) {
  // The kind/direction axes come from the registry itself
  // (all_model_kinds/all_direction_kinds), so an arm added to
  // RegisteredArms is covered here with no test edit.
  auto stream = make_trace("perlbench", 60'000);
  const sim::BpuSimOptions opt{.max_branches = 50'000, .warmup_branches = 10'000};
  for (const auto kind : models::all_model_kinds()) {
    for (const auto dir : models::all_direction_kinds()) {
      expect_equivalent({.model = kind, .direction = dir}, stream, opt);
    }
  }
}

TEST(EngineEquivalence, TokenKeyedArmsWithAggressiveRerandomization) {
  // Tiny thresholds force many monitor-triggered ψ re-keys mid-trace —
  // exactly the regime where a stale memo-cache entry would diverge. Every
  // token-keyed arm (STBPU and both rivals) goes through it.
  auto stream = make_trace("mcf", 80'000);
  const sim::BpuSimOptions opt{.max_branches = 70'000, .warmup_branches = 10'000};
  for (const auto kind :
       {models::ModelKind::kStbpu, models::ModelKind::kCibpu,
        models::ModelKind::kXorIsolation}) {
    models::ModelSpec spec{.model = kind,
                           .direction = models::DirectionKind::kSklCond};
    spec.rerand_difficulty_r = 1e-5;  // thresholds of a few events
    expect_equivalent(spec, stream, opt);
  }
}

TEST(EngineEquivalence, ContextSwitchHeavyWorkload) {
  // Server-style profile: frequent context switches + kernel excursions
  // exercise the flush policies and the cache's cross-entity tagging.
  auto stream = make_trace("apache2_prefork_c32", 80'000);
  const sim::BpuSimOptions opt{.max_branches = 70'000, .warmup_branches = 10'000};
  for (const auto kind :
       {models::ModelKind::kUcode1, models::ModelKind::kUcode2,
        models::ModelKind::kConservative, models::ModelKind::kStbpu,
        models::ModelKind::kCibpu, models::ModelKind::kXorIsolation}) {
    expect_equivalent({.model = kind, .direction = models::DirectionKind::kSklCond},
                      stream, opt);
  }
}

TEST(EngineEquivalence, BatchedReplayMatchesRecordAtATimeLoop) {
  // The batched SoA loop and the legacy per-record loop must agree given
  // the SAME model type (loop-level equivalence, independent of engine).
  auto stream = make_trace("leela", 60'000);
  const sim::BpuSimOptions opt{.max_branches = 50'000, .warmup_branches = 5'000};

  stream.reset();
  auto m1 = models::BpuModel::create({.model = models::ModelKind::kStbpu});
  const auto a = sim::simulate_bpu(*m1, stream, opt);

  stream.reset();
  auto m2 = models::BpuModel::create({.model = models::ModelKind::kStbpu});
  const auto b = sim::replay(*m2, stream, opt);
  EXPECT_EQ(a, b);
}

TEST(EngineEquivalence, EngineThroughOooCoreMatchesLegacy) {
  // Cycle-level path: the OoO core drives both predictors through the
  // IPredictor seam; IPC and branch stats must match exactly.
  models::ModelSpec spec{.model = models::ModelKind::kStbpu,
                         .direction = models::DirectionKind::kTage8};
  trace::SyntheticInstrGenerator g1(trace::profile_by_name("xz"));
  auto legacy = models::BpuModel::create(spec);
  sim::OooCore c1({}, legacy.get(), {&g1});
  const auto r1 = c1.run(60'000, 5'000);

  trace::SyntheticInstrGenerator g2(trace::profile_by_name("xz"));
  auto engine = models::make_engine(spec);
  sim::OooCore c2({}, engine.get(), {&g2});
  const auto r2 = c2.run(60'000, 5'000);

  EXPECT_EQ(r1.branch_stats[0], r2.branch_stats[0]);
  EXPECT_DOUBLE_EQ(r1.ipc[0], r2.ipc[0]);
}

}  // namespace
}  // namespace stbpu
