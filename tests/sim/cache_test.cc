// Interleaved cache-metadata equivalence: sim::CacheLevel packs each set's
// tag+LRU state into one interleaved array of (tag << rank) words; the old
// layout kept two parallel tag/global-clock arrays. The replacement
// decisions must be BIT-IDENTICAL — same hit/miss outcome on every access,
// same victim on every fill, same counters — including across flushes and
// on adversarial (mcf-like miss-heavy) patterns. The reference below is
// the retained pre-interleave implementation, verbatim.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/cache.h"
#include "util/rng.h"

namespace stbpu {
namespace {

/// The previous CacheLevel implementation (separate tag array + global
/// monotonic LRU clock), kept as the executable specification.
class ReferenceCacheLevel {
 public:
  static constexpr std::uint32_t kLineBytes = 64;

  explicit ReferenceCacheLevel(const sim::CacheLevelConfig& cfg)
      : cfg_(cfg),
        sets_(cfg.size_kb * 1024 / kLineBytes / cfg.ways),
        tags_(std::size_t{sets_} * cfg.ways, kInvalid),
        lru_(std::size_t{sets_} * cfg.ways, 0) {}

  bool access(std::uint64_t addr) {
    const std::uint64_t line = addr / kLineBytes;
    const std::uint32_t set = static_cast<std::uint32_t>(line % sets_);
    const std::uint64_t tag = line / sets_;
    const std::size_t base = std::size_t{set} * cfg_.ways;
    std::size_t victim = base;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (std::size_t w = 0; w < cfg_.ways; ++w) {
      if (tags_[base + w] == tag) {
        lru_[base + w] = ++clock_;
        ++hits_;
        return true;
      }
      if (lru_[base + w] < oldest) {
        oldest = lru_[base + w];
        victim = base + w;
      }
    }
    tags_[victim] = tag;
    lru_[victim] = ++clock_;
    ++misses_;
    return false;
  }

  void flush() { std::fill(tags_.begin(), tags_.end(), kInvalid); }

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

 private:
  static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};
  sim::CacheLevelConfig cfg_;
  std::uint32_t sets_;
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> lru_;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// mcf-like access stream: a pointer-chasing working set far larger than
/// the cache, a hot region absorbing most accesses, and a conflict-heavy
/// stride component that hammers a few sets — the miss-heavy shape the
/// cycle-level profile blames for ~31% of step() time.
std::vector<std::uint64_t> adversarial_addresses(std::uint64_t seed, std::size_t n,
                                                 std::uint64_t working_set) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> out;
  out.reserve(n);
  const std::uint64_t heap = 0x0000'7000'0000ULL;
  const std::uint64_t hot = std::min<std::uint64_t>(working_set, 256 * 1024);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform();
    if (u < 0.45) {
      out.push_back(heap + (rng.below(hot) & ~std::uint64_t{7}));
    } else if (u < 0.85) {
      out.push_back(heap + (rng.below(working_set) & ~std::uint64_t{7}));
    } else {
      // Same-set conflict stride: increments of sets × line size.
      out.push_back(heap + (rng.below(64) * 64 * 512) + (rng.below(8) * 4096 * 512));
    }
  }
  return out;
}

void expect_level_equivalent(const sim::CacheLevelConfig& cfg, std::uint64_t seed,
                             bool with_flush) {
  sim::CacheLevel level(cfg);
  ReferenceCacheLevel ref(cfg);
  const auto addrs = adversarial_addresses(seed, 60'000, 8ULL * 1024 * 1024);
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    if (with_flush && i == addrs.size() / 2) {
      // Flush invalidates tags but keeps recency, so the post-flush victim
      // order must replay the pre-flush LRU order in both layouts.
      level.flush();
      ref.flush();
    }
    ASSERT_EQ(level.access(addrs[i]), ref.access(addrs[i]))
        << "access " << i << " size_kb=" << cfg.size_kb << " ways=" << cfg.ways;
  }
  EXPECT_EQ(level.hits(), ref.hits());
  EXPECT_EQ(level.misses(), ref.misses());
}

TEST(CacheInterleaved, TableIvGeometriesBitIdentical) {
  // The three Table IV levels, exactly as the OoO core instantiates them.
  expect_level_equivalent({.size_kb = 32, .ways = 8, .latency = 4}, 1, false);
  expect_level_equivalent({.size_kb = 256, .ways = 4, .latency = 14}, 2, false);
  expect_level_equivalent({.size_kb = 4096, .ways = 16, .latency = 42}, 3, false);
}

TEST(CacheInterleaved, FlushPreservesRecencyOrder) {
  expect_level_equivalent({.size_kb = 32, .ways = 8, .latency = 4}, 4, true);
  expect_level_equivalent({.size_kb = 4096, .ways = 16, .latency = 42}, 5, true);
}

TEST(CacheInterleaved, OddGeometriesBitIdentical) {
  // Non-power-of-two set counts (the divide fallback) and degenerate
  // associativities: 1-way direct-mapped, 3-way, single-set fully
  // associative.
  expect_level_equivalent({.size_kb = 48, .ways = 8, .latency = 4}, 6, true);
  expect_level_equivalent({.size_kb = 16, .ways = 1, .latency = 4}, 7, false);
  expect_level_equivalent({.size_kb = 24, .ways = 3, .latency = 4}, 8, true);
  expect_level_equivalent({.size_kb = 4, .ways = 64 / 1, .latency = 4}, 9, false);
}

TEST(CacheInterleaved, HierarchyLatenciesAndCountersUnchanged) {
  // Whole-hierarchy check: the load-to-use latency sequence (what the OoO
  // timing consumes) and every level's hit/miss counters must match a
  // hierarchy built from reference levels.
  sim::CacheHierarchyConfig cfg;
  sim::CacheHierarchy hier(cfg);
  ReferenceCacheLevel r1(cfg.l1d), r2(cfg.l2), r3(cfg.llc);
  const auto ref_latency = [&](std::uint64_t addr, bool streaming) -> std::uint32_t {
    if (streaming) {  // mirror CacheHierarchy::prefetch
      const std::uint64_t next = addr + 64;
      if (!r1.access(next)) {
        r2.access(next);
        r3.access(next);
      }
    }
    std::uint32_t lat = cfg.l1d.latency;
    if (r1.access(addr)) return lat;
    lat += cfg.l2.latency;
    if (r2.access(addr)) return lat;
    lat += cfg.llc.latency;
    if (r3.access(addr)) return lat;
    return lat + cfg.memory_latency;
  };

  util::Xoshiro256 rng(42);
  const auto addrs = adversarial_addresses(99, 40'000, 16ULL * 1024 * 1024);
  for (const std::uint64_t addr : addrs) {
    const bool streaming = rng.chance(0.2);
    ASSERT_EQ(hier.load_latency(addr, streaming), ref_latency(addr, streaming));
  }
  const auto counters = hier.counters();
  EXPECT_EQ(counters.l1d_hits, r1.hits());
  EXPECT_EQ(counters.l1d_misses, r1.misses());
  EXPECT_EQ(counters.l2_hits, r2.hits());
  EXPECT_EQ(counters.l2_misses, r2.misses());
  EXPECT_EQ(counters.llc_hits, r3.hits());
  EXPECT_EQ(counters.llc_misses, r3.misses());
  EXPECT_GT(counters.l1d_misses, 0u);  // the pattern actually misses
}

}  // namespace
}  // namespace stbpu
