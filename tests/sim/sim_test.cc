// Simulators: OAE accounting in the trace-driven BPU simulator, cache
// hierarchy behaviour, and OoO timing-model invariants.
#include <gtest/gtest.h>

#include "models/models.h"
#include "sim/bpu_sim.h"
#include "sim/cache.h"
#include "sim/ooo.h"
#include "trace/generator.h"
#include "trace/instr.h"
#include "trace/profile.h"

namespace stbpu::sim {
namespace {

// ------------------------------------------------------------ BPU sim ----

TEST(BpuSim, OaeAccountsAllNecessaryPredictions) {
  auto model = models::BpuModel::create({});
  // A hand-built trace: a jump executed twice — first cold (incorrect),
  // then learned (correct).
  std::vector<bpu::BranchRecord> recs(2, {.ip = 0x1000, .target = 0x9000,
                                          .type = bpu::BranchType::kDirectJump,
                                          .taken = true,
                                          .ctx = {.pid = 1}});
  trace::VectorStream vs(recs);
  const auto stats = simulate_bpu(*model, vs, {.max_branches = 2, .warmup_branches = 0});
  EXPECT_EQ(stats.branches, 2u);
  EXPECT_EQ(stats.oae_correct, 1u);
  EXPECT_EQ(stats.mispredictions, 1u);
  EXPECT_DOUBLE_EQ(stats.oae(), 0.5);
}

TEST(BpuSim, WarmupExcludedFromStats) {
  auto model = models::BpuModel::create({});
  trace::SyntheticWorkloadGenerator gen(trace::profile_by_name("mcf"));
  const auto stats =
      simulate_bpu(*model, gen, {.max_branches = 1000, .warmup_branches = 5000});
  EXPECT_EQ(stats.branches, 1000u);
}

TEST(BpuSim, CountsContextAndModeSwitches) {
  auto model = models::BpuModel::create({});
  std::vector<bpu::BranchRecord> recs;
  const auto mk = [](std::uint16_t pid, bool kernel) {
    return bpu::BranchRecord{.ip = 0x1000, .target = 0x9000,
                             .type = bpu::BranchType::kDirectJump, .taken = true,
                             .ctx = {.pid = pid, .hart = 0, .kernel = kernel}};
  };
  recs.push_back(mk(1, false));
  recs.push_back(mk(1, true));   // mode switch
  recs.push_back(mk(1, false));  // mode switch back
  recs.push_back(mk(2, false));  // context switch
  trace::VectorStream vs(recs);
  const auto stats = simulate_bpu(*model, vs, {.max_branches = 4, .warmup_branches = 0});
  EXPECT_EQ(stats.mode_switches, 2u);
  EXPECT_EQ(stats.context_switches, 1u);
}

TEST(BpuSim, IdenticalTraceAcrossModelsViaReset) {
  trace::SyntheticWorkloadGenerator gen(trace::profile_by_name("xz"));
  auto m1 = models::BpuModel::create({});
  const auto s1 = simulate_bpu(*m1, gen, {.max_branches = 20000, .warmup_branches = 0});
  gen.reset();
  auto m2 = models::BpuModel::create({});
  const auto s2 = simulate_bpu(*m2, gen, {.max_branches = 20000, .warmup_branches = 0});
  EXPECT_EQ(s1.oae_correct, s2.oae_correct) << "same model + same trace = same result";
}

// -------------------------------------------------------------- cache ----

TEST(Cache, ColdMissThenHit) {
  CacheLevel l1({.size_kb = 32, .ways = 8, .latency = 4});
  EXPECT_FALSE(l1.access(0x1000));
  EXPECT_TRUE(l1.access(0x1000));
  EXPECT_TRUE(l1.access(0x1030)) << "same 64B line";
  EXPECT_FALSE(l1.access(0x1040)) << "next line";
}

TEST(Cache, LruEvictionWithinSet) {
  // 2-way tiny cache: 2 sets of 2 ways (256B, 64B lines).
  CacheLevel c({.size_kb = 0, .ways = 2, .latency = 1});
  // size 0KB is degenerate — use a small real one instead.
  CacheLevel tiny({.size_kb = 1, .ways = 2, .latency = 1});  // 8 sets
  const std::uint64_t stride = 8 * 64;  // same set
  tiny.access(0 * stride);
  tiny.access(1 * stride);
  tiny.access(0 * stride);        // refresh line 0
  tiny.access(2 * stride);        // evicts line 1 (LRU)
  EXPECT_TRUE(tiny.access(0 * stride));
  EXPECT_FALSE(tiny.access(1 * stride));
}

TEST(Cache, HierarchyLatenciesCompose) {
  CacheHierarchy h;
  const auto cold = h.load_latency(0x5000);
  EXPECT_EQ(cold, 4u + 14u + 42u + 220u);
  const auto hot = h.load_latency(0x5000);
  EXPECT_EQ(hot, 4u);
}

TEST(Cache, L2HitAfterL1Eviction) {
  CacheHierarchy h;
  h.load_latency(0x0);
  // Blow L1 (32KB) with 64KB of lines; L2 (256KB) retains them.
  for (std::uint64_t a = 64; a < 64 * 1024; a += 64) h.load_latency(a);
  const auto lat = h.load_latency(0x0);
  EXPECT_EQ(lat, 4u + 14u);
}

TEST(Cache, PrefetchHidesStreamLatency) {
  CacheHierarchy h;
  h.load_latency(0x0, /*streaming=*/true);  // cold + prefetch of line 1
  EXPECT_EQ(h.load_latency(64, true), 4u) << "next line was prefetched";
}

// ---------------------------------------------------------------- OoO ----

OooResult run_ooo(const char* workload, models::ModelSpec spec, std::uint64_t n,
                  std::uint64_t warm) {
  auto model = models::BpuModel::create(spec);
  trace::SyntheticInstrGenerator gen(trace::profile_by_name(workload));
  OooCore core({}, model.get(), {&gen});
  return core.run(n, warm);
}

TEST(Ooo, IpcWithinPhysicalBounds) {
  const auto r = run_ooo("leela", {}, 100'000, 10'000);
  EXPECT_GT(r.ipc[0], 0.01);
  EXPECT_LE(r.ipc[0], 8.0) << "cannot exceed machine width";
  EXPECT_EQ(r.instructions[0], 100'000u);
}

TEST(Ooo, Deterministic) {
  const auto a = run_ooo("mcf", {}, 50'000, 5'000);
  const auto b = run_ooo("mcf", {}, 50'000, 5'000);
  EXPECT_DOUBLE_EQ(a.ipc[0], b.ipc[0]);
}

TEST(Ooo, BranchHostileWorkloadIsSlower) {
  const auto hostile = run_ooo("leela", {}, 80'000, 8'000);   // hard branches
  const auto friendly = run_ooo("exchange2", {}, 80'000, 8'000);
  EXPECT_LT(hostile.branch_stats[0].direction_rate(),
            friendly.branch_stats[0].direction_rate());
}

TEST(Ooo, MispredictionPenaltyLowersIpc) {
  // Same workload, perfect-vs-broken predictor: IPC must respond.
  auto good = models::BpuModel::create({.direction = models::DirectionKind::kTage64});
  trace::SyntheticInstrGenerator g1(trace::profile_by_name("exchange2"));
  OooCore core1({}, good.get(), {&g1});
  const auto fast = core1.run(80'000, 8'000);

  OooConfig harsh;
  harsh.mispredict_penalty = 200;  // grotesque penalty amplifies the effect
  auto bad = models::BpuModel::create({.direction = models::DirectionKind::kSklCond});
  trace::SyntheticInstrGenerator g2(trace::profile_by_name("exchange2"));
  OooCore core2(harsh, bad.get(), {&g2});
  const auto slow = core2.run(80'000, 8'000);
  EXPECT_LT(slow.ipc[0], fast.ipc[0]);
}

TEST(Ooo, SmtSharesBandwidth) {
  auto m1 = models::BpuModel::create({.direction = models::DirectionKind::kTage64});
  trace::SyntheticInstrGenerator solo(trace::profile_by_name("leela"));
  OooCore solo_core({}, m1.get(), {&solo});
  const auto alone = solo_core.run(60'000, 6'000);

  auto m2 = models::BpuModel::create({.direction = models::DirectionKind::kTage64});
  trace::SyntheticInstrGenerator a(trace::profile_by_name("leela"));
  trace::SyntheticInstrGenerator b(trace::profile_by_name("exchange2"));
  OooCore smt_core({}, m2.get(), {&a, &b});
  const auto pair = smt_core.run(60'000, 6'000);
  EXPECT_EQ(pair.threads, 2u);
  EXPECT_LT(pair.ipc[0], alone.ipc[0]) << "SMT sibling must cost throughput";
  EXPECT_GT(pair.ipc_harmonic_mean(), 0.0);
}

TEST(Ooo, HarmonicMeanBelowArithmetic) {
  auto m = models::BpuModel::create({.direction = models::DirectionKind::kTage64});
  trace::SyntheticInstrGenerator a(trace::profile_by_name("bwaves"));
  trace::SyntheticInstrGenerator b(trace::profile_by_name("leela"));
  OooCore core({}, m.get(), {&a, &b});
  const auto r = core.run(60'000, 6'000);
  const double amean = (r.ipc[0] + r.ipc[1]) / 2.0;
  EXPECT_LE(r.ipc_harmonic_mean(), amean + 1e-12);
}

TEST(Ooo, TableIVConfigIsDefault) {
  const OooConfig cfg;
  EXPECT_EQ(cfg.width, 8u);
  EXPECT_EQ(cfg.rob, 192u);
  EXPECT_EQ(cfg.iq, 64u);
  EXPECT_EQ(cfg.lq, 32u);
  EXPECT_EQ(cfg.sq, 32u);
  EXPECT_EQ(cfg.caches.l1d.size_kb, 32u);
  EXPECT_EQ(cfg.caches.l2.size_kb, 256u);
  EXPECT_EQ(cfg.caches.llc.size_kb, 4096u);
}

}  // namespace
}  // namespace stbpu::sim
