// Direct timing-invariant tests for the integer-tick OoO core (OooCoreT):
// scripted instruction streams and a scripted BPU make every event time
// hand-computable, so the tests assert exact tick values — redirect stalls,
// ROB occupancy back-pressure, SMT bandwidth sharing, lookahead-window
// transparency — instead of the indirect IPC-shape checks in sim_test.cc.
// Also pins the integer core to the double-precision reference core
// (OooCoreRefT) across widths, including a non-power-of-two width where the
// reference accumulates 1/width rounding and only the statistics contract
// (not bit-equal cycles) can hold.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "exp/engine_visit.h"
#include "models/models.h"
#include "sim/ooo.h"
#include "trace/instr.h"
#include "trace/profile.h"

namespace stbpu {
namespace {

using trace::InstrRecord;

/// Deterministic BPU: mispredicts exactly the accesses whose ordinal (from
/// 0) appears in `mispredict_every` steps. No batch precompute, so the
/// core's generic (window-less) fetch path is exercised.
struct ScriptedBpu {
  std::uint64_t accesses = 0;
  std::uint64_t mispredict_every = 0;  ///< 0 = always correct

  bpu::AccessResult access(const bpu::BranchRecord&) {
    const bool wrong =
        mispredict_every != 0 && accesses % mispredict_every == 0;
    ++accesses;
    bpu::AccessResult r;
    r.overall_correct = !wrong;
    r.direction_correct = !wrong;
    r.direction_mispredicted = wrong;
    return r;
  }
  void on_switch(const bpu::ExecContext&, const bpu::ExecContext&) {}
};

class ScriptedStream final : public trace::InstrStream {
 public:
  explicit ScriptedStream(std::vector<InstrRecord> recs) : recs_(std::move(recs)) {}
  bool next(InstrRecord& out) override {
    if (pos_ >= recs_.size()) return false;
    out = recs_[pos_++];
    return true;
  }
  void reset() override { pos_ = 0; }

 private:
  std::vector<InstrRecord> recs_;
  std::size_t pos_ = 0;
};

InstrRecord alu() { return InstrRecord{}; }
InstrRecord div_instr() {
  InstrRecord r;
  r.kind = InstrRecord::Kind::kDiv;
  return r;
}
InstrRecord branch() {
  InstrRecord r;
  r.kind = InstrRecord::Kind::kBranch;
  r.branch.ip = 0x1000;
  r.branch.target = 0x2000;
  return r;
}

TEST(OooCoreTiming, MispredictRedirectStallEqualsResolveDepthPlusPenalty) {
  // width=1 makes ticks == cycles; one mispredicted branch followed by ALUs.
  // The branch resolves at frontend_depth + lat_branch, and the next fetch
  // is pushed to resolve + mispredict_penalty — the redirect stall counter
  // must equal exactly that, and total cycles must move by exactly the
  // penalty delta.
  const auto run_with_penalty = [](unsigned penalty) {
    sim::OooConfig cfg;
    cfg.width = 1;
    cfg.mispredict_penalty = penalty;
    std::vector<InstrRecord> recs{branch()};
    for (int i = 0; i < 10; ++i) recs.push_back(alu());
    ScriptedStream stream(recs);
    ScriptedBpu bpu{.mispredict_every = 1};  // every branch mispredicts
    sim::OooCoreT<ScriptedBpu> core(cfg, &bpu, {&stream});
    return core.run(/*instr_budget=*/11, /*warmup=*/0);
  };

  const sim::OooConfig defaults;  // frontend_depth=6, lat_branch=2
  const double resolve =
      static_cast<double>(defaults.frontend_depth + defaults.lat_branch);

  const auto penalized = run_with_penalty(14);
  EXPECT_EQ(penalized.instructions[0], 11u);
  EXPECT_EQ(penalized.stalls[0].redirect, resolve + 14.0);
  EXPECT_EQ(penalized.cycles[0], 38.0);

  const auto free = run_with_penalty(0);
  EXPECT_EQ(free.stalls[0].redirect, resolve);
  EXPECT_EQ(free.cycles[0], 24.0);
  EXPECT_EQ(penalized.cycles[0] - free.cycles[0], 14.0);
}

TEST(OooCoreTiming, NoMispredictsMeansNoRedirectStall) {
  sim::OooConfig cfg;
  cfg.width = 1;
  std::vector<InstrRecord> recs;
  for (int i = 0; i < 8; ++i) {
    recs.push_back(branch());
    recs.push_back(alu());
  }
  ScriptedStream stream(recs);
  ScriptedBpu bpu{};  // always correct
  sim::OooCoreT<ScriptedBpu> core(cfg, &bpu, {&stream});
  const auto r = core.run(16, 0);
  EXPECT_EQ(r.stalls[0].redirect, 0.0);
  EXPECT_EQ(r.branch_stats[0].branches, 8u);
  EXPECT_EQ(r.branch_stats[0].mispredictions, 0u);
}

TEST(OooCoreTiming, RobFullStallsDispatchAndCapsIpc) {
  // Independent 20-cycle divides: a ROB of 8 turns over at most 8 entries
  // per 20 cycles (IPC <= 0.4), while ROB 192 lets the 8-wide machine run
  // free. The lost throughput must be attributed to the ROB counter.
  const auto run_with_rob = [](unsigned rob) {
    sim::OooConfig cfg;
    cfg.rob = rob;
    std::vector<InstrRecord> recs(512, div_instr());
    ScriptedStream stream(recs);
    ScriptedBpu bpu{};
    sim::OooCoreT<ScriptedBpu> core(cfg, &bpu, {&stream});
    return core.run(512, 0);
  };

  const auto small = run_with_rob(8);
  const auto large = run_with_rob(192);
  EXPECT_EQ(small.instructions[0], 512u);
  EXPECT_LE(small.ipc[0], 0.45);
  EXPECT_GT(large.ipc[0], 4.0);
  EXPECT_GT(small.stalls[0].rob, 0.0);
  EXPECT_EQ(large.stalls[0].rob, 0.0) << "a 192-entry ROB never fills here";
  // The ROB is the bottleneck structure: it must dwarf the other dispatch
  // stalls in the attribution.
  EXPECT_GT(small.stalls[0].rob,
            small.stalls[0].iq + small.stalls[0].lq + small.stalls[0].sq);
}

TEST(OooCoreTiming, SmtThreadsShareFetchBandwidthFairly) {
  // Two identical ALU streams on a width-1 machine: the shared fetch port
  // alternates strictly, so both threads see ~2x the solo cycle count,
  // equal instruction counts, and near-identical fetch-bandwidth stall.
  constexpr std::uint64_t kN = 1000;
  const std::vector<InstrRecord> recs(kN, alu());

  sim::OooConfig cfg;
  cfg.width = 1;

  ScriptedStream solo_stream(recs);
  ScriptedBpu solo_bpu{};
  sim::OooCoreT<ScriptedBpu> solo_core(cfg, &solo_bpu, {&solo_stream});
  const auto solo = solo_core.run(kN, 0);

  ScriptedStream s0(recs), s1(recs);
  ScriptedBpu smt_bpu{};
  sim::OooCoreT<ScriptedBpu> smt_core(cfg, &smt_bpu, {&s0, &s1});
  const auto pair = smt_core.run(kN, 0);

  ASSERT_EQ(pair.threads, 2u);
  EXPECT_EQ(pair.instructions[0], kN);
  EXPECT_EQ(pair.instructions[1], kN);
  // Strict alternation: the two threads finish within one cycle of each
  // other, at ~2x the solo time.
  EXPECT_LE(std::abs(pair.cycles[0] - pair.cycles[1]), 1.0);
  EXPECT_GT(pair.cycles[0], 1.9 * solo.cycles[0]);
  EXPECT_LT(pair.cycles[0], 2.1 * solo.cycles[0]);
  // Fairness shows up in the attribution too: both threads lose about one
  // cycle of fetch bandwidth per instruction, within a few cycles.
  EXPECT_GT(pair.stalls[0].fetch_bandwidth, 0.9 * static_cast<double>(kN));
  EXPECT_GT(pair.stalls[1].fetch_bandwidth, 0.9 * static_cast<double>(kN));
  EXPECT_LE(std::abs(pair.stalls[0].fetch_bandwidth - pair.stalls[1].fetch_bandwidth),
            4.0);
}

TEST(OooCoreTiming, MatchesDoubleReferenceAcrossPowerOfTwoWidths) {
  // The integerization claim, exercised beyond the default width: for any
  // power-of-two width every double the reference core computes is an
  // exact multiple of 1/width, so ticks/width must reproduce it bit-for-bit.
  for (const unsigned width : {1u, 2u, 4u, 8u, 16u}) {
    sim::OooConfig cfg;
    cfg.width = width;

    trace::SyntheticInstrGenerator gen_a(trace::profile_by_name("mcf"));
    ScriptedBpu bpu_a{.mispredict_every = 7};
    sim::OooCoreT<ScriptedBpu> tick_core(cfg, &bpu_a, {&gen_a});
    const auto tick = tick_core.run(20'000, 2'000);

    trace::SyntheticInstrGenerator gen_b(trace::profile_by_name("mcf"));
    ScriptedBpu bpu_b{.mispredict_every = 7};
    sim::OooCoreRefT<ScriptedBpu> ref_core(cfg, &bpu_b, {&gen_b});
    const auto ref = ref_core.run(20'000, 2'000);

    EXPECT_EQ(tick.instructions[0], ref.instructions[0]) << "width=" << width;
    EXPECT_EQ(tick.cycles[0], ref.cycles[0]) << "width=" << width;
    EXPECT_EQ(tick.ipc[0], ref.ipc[0]) << "width=" << width;
    EXPECT_EQ(tick.branch_stats[0], ref.branch_stats[0]) << "width=" << width;
  }
}

TEST(OooCoreTiming, NonPowerOfTwoWidthKeepsStatsAndTracksReferenceClosely) {
  // width=3: 1/3 is not representable, so the reference's doubles round
  // while the tick core stays exact. Statistics and instruction counts are
  // timing-independent (identical), and the cycle counts agree to double
  // rounding — documenting that the tick core is the *more* exact one.
  sim::OooConfig cfg;
  cfg.width = 3;

  trace::SyntheticInstrGenerator gen_a(trace::profile_by_name("leela"));
  ScriptedBpu bpu_a{.mispredict_every = 5};
  sim::OooCoreT<ScriptedBpu> tick_core(cfg, &bpu_a, {&gen_a});
  const auto tick = tick_core.run(10'000, 1'000);

  trace::SyntheticInstrGenerator gen_b(trace::profile_by_name("leela"));
  ScriptedBpu bpu_b{.mispredict_every = 5};
  sim::OooCoreRefT<ScriptedBpu> ref_core(cfg, &bpu_b, {&gen_b});
  const auto ref = ref_core.run(10'000, 1'000);

  EXPECT_EQ(tick.instructions[0], ref.instructions[0]);
  EXPECT_EQ(tick.branch_stats[0], ref.branch_stats[0]);
  EXPECT_NEAR(tick.cycles[0] / ref.cycles[0], 1.0, 1e-9);
}

TEST(OooCoreTiming, LookaheadWindowOnOffIdenticalIncludingStalls) {
  // The windowed front end is pure mechanics on the tick core: timing,
  // statistics AND the stall attribution must be unchanged by it.
  const models::ModelSpec spec{.model = models::ModelKind::kStbpu,
                               .direction = models::DirectionKind::kSklCond};
  sim::OooResult with{}, without{};
  ASSERT_TRUE(exp::for_each_engine(spec, [&](auto& engine) {
    trace::SyntheticInstrGenerator gen(trace::profile_by_name("mcf"));
    with = sim::run_ooo({}, engine, {&gen}, 20'000, 2'000);
  }));
  ASSERT_TRUE(exp::for_each_engine(spec, [&](auto& engine) {
    trace::SyntheticInstrGenerator gen(trace::profile_by_name("mcf"));
    sim::OooConfig cfg;
    cfg.lookahead = false;
    without = sim::run_ooo(cfg, engine, {&gen}, 20'000, 2'000);
  }));
  EXPECT_EQ(with.instructions, without.instructions);
  EXPECT_EQ(with.cycles, without.cycles);
  EXPECT_EQ(with.branch_stats[0], without.branch_stats[0]);
  EXPECT_EQ(with.stalls, without.stalls);
}

TEST(OooCoreTiming, StallAttributionIsBoundedAndDeterministic) {
  // Attribution sanity on a real workload. Counters accumulate per
  // instruction (in-flight instructions overlap), so the valid bound is
  // per-instruction: no instruction can wait longer than the whole
  // measured window. And the whole breakdown must be exactly reproducible.
  const auto run_once = [] {
    trace::SyntheticInstrGenerator gen(trace::profile_by_name("mcf"));
    ScriptedBpu bpu{.mispredict_every = 9};
    sim::OooCoreT<ScriptedBpu> core({}, &bpu, {&gen});
    return core.run(20'000, 2'000);
  };
  const auto r = run_once();
  const auto& s = r.stalls[0];
  const double per_instr_bound =
      static_cast<double>(r.instructions[0]) * r.cycles[0];
  for (const double v :
       {s.fetch_bandwidth, s.redirect, s.rob, s.iq, s.lq, s.sq}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, per_instr_bound);
  }
  EXPECT_GT(s.redirect, 0.0) << "a 1-in-9 mispredict stream must redirect";
  EXPECT_EQ(run_once().stalls[0], s) << "integer ticks: exactly reproducible";
}

TEST(OooCoreTiming, ArchitecturalRegisterCountIsNamed) {
  // The scoreboard is sized by the named constant, not a magic 33; slot 0
  // is the "no dependency" register.
  EXPECT_EQ(sim::kNumArchRegs, 32u);
  // A record using the highest architectural register is legal.
  InstrRecord r = alu();
  r.dst = sim::kNumArchRegs;
  r.src1 = sim::kNumArchRegs;
  ScriptedStream stream({r, alu()});
  ScriptedBpu bpu{};
  sim::OooCoreT<ScriptedBpu> core({}, &bpu, {&stream});
  const auto res = core.run(2, 0);
  EXPECT_EQ(res.instructions[0], 2u);
}

#if GTEST_HAS_DEATH_TEST && !defined(NDEBUG)
TEST(OooCoreDeathTest, OutOfRangeTraceRegisterAssertsInDebug) {
  // A corrupt trace record (register index beyond kNumArchRegs) must fail
  // the Debug bounds check instead of reading past the scoreboard.
  InstrRecord r = alu();
  r.src1 = static_cast<std::uint8_t>(sim::kNumArchRegs + 1);
  ScriptedStream stream({r});
  ScriptedBpu bpu{};
  sim::OooCoreT<ScriptedBpu> core({}, &bpu, {&stream});
  EXPECT_DEATH(core.run(1, 0), "kNumArchRegs");
}
#endif

}  // namespace
}  // namespace stbpu
