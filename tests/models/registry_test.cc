// Mapping-registry contract: the compile-time typelist (RegisteredArms) is
// the single registration point, the mapping concepts gate what goes in it,
// parse errors self-diagnose against the registered kinds, and
// visit_engine recovers the concrete engine type for every kind×direction.
#include <gtest/gtest.h>

#include <string>

#include "core/cibpu_mapping.h"
#include "core/stbpu_mapping.h"
#include "core/xor_isolation_mapping.h"
#include "models/engine.h"
#include "models/models.h"

namespace stbpu::models {
namespace {

// --- Concept contract (compile-time; a failure here is a build break). ---
static_assert(bpu::MappingCore<bpu::BaselineMappingLogic>);
static_assert(bpu::MappingCore<core::StbpuMapping>);
static_assert(bpu::MappingCore<core::CachedStbpuMapping>);
static_assert(bpu::MappingCore<core::CibpuMappingLogic>);
static_assert(bpu::MappingCore<core::XorIsolationMappingLogic>);
// Optional capabilities: only the cached STBPU mapping invalidates, batches
// and reports stats; the baseline and the rivals must NOT accidentally
// grow those hooks without the engine noticing.
static_assert(bpu::Invalidatable<core::CachedStbpuMapping>);
static_assert(!bpu::Invalidatable<bpu::BaselineMappingLogic>);
static_assert(!bpu::Invalidatable<core::CibpuMappingLogic>);
static_assert(!bpu::Invalidatable<core::XorIsolationMappingLogic>);
static_assert(bpu::BatchPrecompute<core::CachedStbpuMapping>);
static_assert(!bpu::BatchPrecompute<core::CibpuMappingLogic>);
static_assert(bpu::StatsReporting<core::CachedStbpuMapping>);
static_assert(!bpu::StatsReporting<bpu::BaselineMappingLogic>);

TEST(MappingRegistry, ToStringParseRoundTripsEveryRegisteredKind) {
  for (const ModelKind kind : all_model_kinds()) {
    ModelKind parsed{};
    std::string err;
    ASSERT_TRUE(parse_model_kind(to_string(kind), parsed, err)) << err;
    EXPECT_EQ(parsed, kind);
  }
  for (const DirectionKind dir : all_direction_kinds()) {
    DirectionKind parsed{};
    std::string err;
    ASSERT_TRUE(parse_direction_kind(to_string(dir), parsed, err)) << err;
    EXPECT_EQ(parsed, dir);
  }
}

TEST(MappingRegistry, ParseErrorNamesOffenderAndListsRegisteredKinds) {
  ModelKind kind{};
  std::string err;
  EXPECT_FALSE(parse_model_kind("sbpu", kind, err));
  EXPECT_NE(err.find("'sbpu'"), std::string::npos) << err;
  // Every registered kind appears in the diagnostic.
  for (const ModelKind k : all_model_kinds()) {
    EXPECT_NE(err.find(to_string(k)), std::string::npos) << err;
  }

  DirectionKind dir{};
  err.clear();
  EXPECT_FALSE(parse_direction_kind("tage", dir, err));
  EXPECT_NE(err.find("'tage'"), std::string::npos) << err;
  EXPECT_NE(err.find(to_string(DirectionKind::kTage64)), std::string::npos) << err;
}

TEST(MappingRegistry, VisitEngineRecoversEveryKindTimesDirection) {
  for (const ModelKind kind : all_model_kinds()) {
    for (const DirectionKind dir : all_direction_kinds()) {
      auto engine = make_engine({.model = kind, .direction = dir});
      ASSERT_NE(engine, nullptr)
          << to_string(kind) << "/" << to_string(dir) << " missing from registry";
      bool visited = false;
      EXPECT_TRUE(visit_engine(*engine, [&](auto&) { visited = true; }))
          << "visit_engine failed for " << to_string(kind) << "/" << to_string(dir);
      EXPECT_TRUE(visited);
    }
  }
}

TEST(MappingRegistry, TokenKeyedArmsCarryAMonitor) {
  for (const ModelKind kind :
       {ModelKind::kStbpu, ModelKind::kCibpu, ModelKind::kXorIsolation}) {
    auto engine = make_engine({.model = kind});
    ASSERT_NE(engine, nullptr);
    EXPECT_NE(engine_monitor(*engine), nullptr) << to_string(kind);
  }
  auto unprotected = make_engine({.model = ModelKind::kUnprotected});
  ASSERT_NE(unprotected, nullptr);
  EXPECT_EQ(engine_monitor(*unprotected), nullptr);
}

}  // namespace
}  // namespace stbpu::models
