// GEM eviction-set construction, brute-force reuse search on scaled
// geometries (empirical Eq. (2) validation), and the DoS attacks.
#include <gtest/gtest.h>

#include "analysis/equations.h"
#include "attacks/brute.h"
#include "attacks/dos.h"
#include "attacks/gem.h"
#include "attacks/scaled.h"
#include "models/models.h"

namespace stbpu::attacks {
namespace {

TEST(Gem, BuildsMinimalEvictionSetOnBaseline) {
  auto m = models::BpuModel::create({.model = models::ModelKind::kUnprotected});
  GemConfig cfg;
  cfg.ways = 8;
  cfg.sets_hint = 512;
  const auto r = gem_eviction_set(*m, 0x0000'2345'6780ULL, cfg);
  EXPECT_TRUE(r.success);
  EXPECT_LE(r.eviction_set.size(), 8u);
  EXPECT_GT(r.evictions, 0u);
}

TEST(Gem, ScaledGeometryStillWorks) {
  const ScaledGeometry g{.set_bits = 4, .tag_bits = 4, .offset_bits = 1, .ways = 4};
  auto target = make_scaled_target(g, /*stbpu=*/false, 1);
  GemConfig cfg;
  cfg.ways = g.ways;
  cfg.sets_hint = static_cast<unsigned>(g.sets());
  const auto r = gem_eviction_set(*target.predictor, 0x0000'2345'6780ULL, cfg);
  EXPECT_TRUE(r.success);
  EXPECT_LE(r.eviction_set.size(), g.ways);
}

TEST(Gem, StbpuMonitorRotatesStMidConstruction) {
  // With paper thresholds scaled to the shrunken structure, GEM's eviction
  // storm must trip the monitor before it converges usefully.
  const ScaledGeometry g{.set_bits = 6, .tag_bits = 5, .offset_bits = 2, .ways = 8};
  core::MonitorConfig mon;
  mon.misprediction_threshold = 1'000'000;  // isolate the eviction register
  mon.eviction_threshold = 200;
  auto target = make_scaled_target(g, /*stbpu=*/true, 2, &mon);
  GemConfig cfg;
  cfg.ways = g.ways;
  cfg.sets_hint = static_cast<unsigned>(g.sets());
  (void)gem_eviction_set(*target.predictor, 0x0000'2345'6780ULL, cfg);
  EXPECT_GT(target.stm->rerandomizations(), 0u);
}

TEST(BruteReuse, FindsCollisionOnScaledStbpu) {
  // Without a monitor, brute force eventually finds a keyed collision —
  // randomization alone is not cryptographic (paper §V). The point of the
  // measurement is the COST, which Eq. (2) bounds.
  const ScaledGeometry g{.set_bits = 4, .tag_bits = 3, .offset_bits = 1, .ways = 4};
  auto target = make_scaled_target(g, /*stbpu=*/true, 3);
  ReuseSearchConfig cfg;
  cfg.max_set_size = 4 * g.ito();
  const auto r = reuse_collision_search(*target.predictor, cfg);
  EXPECT_TRUE(r.found);
  EXPECT_GT(r.set_size, 1u);
}

TEST(BruteReuse, CostScalesWithGeometry) {
  // Doubling I·T·O must grow the attacker's event bill superlinearly in
  // the measured range (M grows ~quadratically in n per Eq. (2)).
  const ScaledGeometry small{.set_bits = 3, .tag_bits = 3, .offset_bits = 1, .ways = 4};
  const ScaledGeometry large{.set_bits = 5, .tag_bits = 4, .offset_bits = 1, .ways = 4};
  std::uint64_t cost_small = 0, cost_large = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto ts = make_scaled_target(small, true, 100 + seed);
    ReuseSearchConfig cs;
    cs.seed = 900 + seed;
    cs.max_set_size = 16 * small.ito();
    cost_small += reuse_collision_search(*ts.predictor, cs).mispredictions;
    auto tl = make_scaled_target(large, true, 200 + seed);
    ReuseSearchConfig cl;
    cl.seed = 900 + seed;
    cl.max_set_size = 16 * large.ito();
    cost_large += reuse_collision_search(*tl.predictor, cl).mispredictions;
  }
  EXPECT_GT(cost_large, 2 * cost_small);
}

TEST(BruteReuse, EquationBoundsMeasurement) {
  // Empirical median observation count vs Eq. (2) at the same geometry.
  // The closed form uses birthday-scale per-pair factors and deliberately
  // over-estimates (conservative for threshold derivation): the measured
  // count must stay below it but within a bounded factor.
  const ScaledGeometry g{.set_bits = 4, .tag_bits = 3, .offset_bits = 1, .ways = 4};
  analysis::BtbGeometry eq;
  eq.sets = static_cast<double>(g.sets());
  eq.tag_space = static_cast<double>(g.tag_space());
  eq.offset_space = static_cast<double>(g.offset_space());
  eq.ways = g.ways;
  const auto predicted = analysis::btb_reuse_cost(eq);

  std::vector<std::uint64_t> measured;
  for (std::uint64_t seed = 0; seed < 9; ++seed) {
    auto t = make_scaled_target(g, true, 300 + seed);
    ReuseSearchConfig cfg;
    cfg.seed = 500 + seed;
    cfg.max_set_size = 64 * g.ito();
    const auto r = reuse_collision_search(*t.predictor, cfg);
    ASSERT_TRUE(r.found);
    measured.push_back(r.mispredictions);
  }
  std::sort(measured.begin(), measured.end());
  const double median = static_cast<double>(measured[measured.size() / 2]);
  EXPECT_GT(median, predicted.mispredictions_m / 50.0);
  EXPECT_LT(median, predicted.mispredictions_m * 2.0)
      << "Eq. (2) must stay a (conservative) upper estimate";
}

TEST(Dos, TargetedEvictionDegradesBaselineVictim) {
  auto clean = models::BpuModel::create({.model = models::ModelKind::kUnprotected});
  auto attacked = models::BpuModel::create({.model = models::ModelKind::kUnprotected});
  const auto r = dos_eviction(*clean, *attacked, {}, /*targeted=*/true);
  EXPECT_GT(r.victim_oae_clean, 0.95);
  EXPECT_GT(r.degradation(), 0.10) << "a targeted flood must visibly hurt";
}

TEST(Dos, TargetedEvictionLosesAimOnStbpu) {
  auto clean = models::BpuModel::create({.model = models::ModelKind::kStbpu});
  auto attacked = models::BpuModel::create({.model = models::ModelKind::kStbpu});
  const auto r = dos_eviction(*clean, *attacked, {}, /*targeted=*/true);
  auto clean_b = models::BpuModel::create({.model = models::ModelKind::kUnprotected});
  auto attacked_b = models::BpuModel::create({.model = models::ModelKind::kUnprotected});
  const auto rb = dos_eviction(*clean_b, *attacked_b, {}, /*targeted=*/true);
  EXPECT_LT(r.degradation(), rb.degradation())
      << "unknown mapping forces the attacker back to blind flooding";
}

TEST(Dos, ReuseDosPoisonsBaselineButNotStbpu) {
  auto clean = models::BpuModel::create({.model = models::ModelKind::kUnprotected});
  auto attacked = models::BpuModel::create({.model = models::ModelKind::kUnprotected});
  const auto rb = dos_reuse(*clean, *attacked, {});
  EXPECT_GT(rb.degradation(), 0.3)
      << "exact-address poisoning devastates the legacy BPU";

  auto clean_s = models::BpuModel::create({.model = models::ModelKind::kStbpu});
  auto attacked_s = models::BpuModel::create({.model = models::ModelKind::kStbpu});
  const auto rs = dos_reuse(*clean_s, *attacked_s, {});
  EXPECT_LT(rs.degradation(), 0.1)
      << "the attacker's 'collisions' land in its own mapping";
}

TEST(Dos, RivalArmsResistTargetedEvictionAndReusePoisoning) {
  // The rival defenses (CIBPU keyed indexing, XOR per-domain masking) must
  // both blunt the exact-address DoS attacks that devastate the baseline:
  // either the attacker's aim is scrambled (eviction) or its writes land
  // in its own mapping / decode to garbage (reuse).
  for (const auto kind : {models::ModelKind::kCibpu, models::ModelKind::kXorIsolation}) {
    auto clean_e = models::BpuModel::create({.model = kind});
    auto attacked_e = models::BpuModel::create({.model = kind});
    const auto ev = dos_eviction(*clean_e, *attacked_e, {}, /*targeted=*/true);
    EXPECT_GT(ev.victim_oae_clean, 0.95) << models::to_string(kind);
    EXPECT_LT(ev.degradation(), 0.05) << models::to_string(kind);

    auto clean_r = models::BpuModel::create({.model = kind});
    auto attacked_r = models::BpuModel::create({.model = kind});
    const auto ru = dos_reuse(*clean_r, *attacked_r, {});
    EXPECT_LT(ru.degradation(), 0.05) << models::to_string(kind);
  }
}

TEST(Gem, XorIsolationLinearityLeavesGemViable) {
  // XOR masking is a fixed per-domain permutation of sets, so eviction-set
  // construction inside the attacker's own domain works exactly as on the
  // baseline — the honest weakness the three-way matrix reports. CIBPU's
  // keyed per-entity indexing (plus the monitor) breaks the same
  // construction.
  auto xor_m = models::BpuModel::create({.model = models::ModelKind::kXorIsolation});
  const auto rx = gem_eviction_set(*xor_m, 0x0000'2345'6780ULL, {});
  EXPECT_TRUE(rx.success);
  EXPECT_LE(rx.eviction_set.size(), 8u);

  auto cibpu_m = models::BpuModel::create({.model = models::ModelKind::kCibpu});
  const auto rc = gem_eviction_set(*cibpu_m, 0x0000'2345'6780ULL, {});
  EXPECT_FALSE(rc.success);
}

}  // namespace
}  // namespace stbpu::attacks
