// The Table I security matrix, executed: every collision-based attack must
// work against the unprotected baseline and be defeated by STBPU. The
// distinguishing case is the same-address-space trojan, which flushing
// designs (ucode) cannot stop but full-width remapping does — the paper's
// §IV-B argument for 48-bit R-function inputs.
#include "attacks/table1.h"
#include "attacks/brute.h"

#include <gtest/gtest.h>

#include "models/models.h"

namespace stbpu::attacks {
namespace {

constexpr std::uint64_t kGadget = 0x0000'1122'3344ULL;
constexpr unsigned kTrials = 96;

std::unique_ptr<models::BpuModel> make(models::ModelKind kind) {
  return models::BpuModel::create({.model = kind});
}

// ------------------------------------------------- baseline is broken ----

TEST(Table1Baseline, BtbReuseHomeLeaks) {
  auto m = make(models::ModelKind::kUnprotected);
  const auto r = btb_reuse_home(*m, kTrials, 1);
  EXPECT_TRUE(r.success) << r.success_rate;
  EXPECT_GT(r.success_rate, 0.9);
}

TEST(Table1Baseline, PhtReuseHomeLeaksBranchScope) {
  auto m = make(models::ModelKind::kUnprotected);
  const auto r = pht_reuse_home(*m, kTrials, 2);
  EXPECT_TRUE(r.success);
  EXPECT_GT(r.success_rate, 0.85);
}

TEST(Table1Baseline, RsbReuseHomeLeaksCallSite) {
  auto m = make(models::ModelKind::kUnprotected);
  const auto r = rsb_reuse_home(*m, kTrials, 3);
  EXPECT_TRUE(r.success);
  EXPECT_GT(r.success_rate, 0.9);
}

TEST(Table1Baseline, PhtReuseAwaySteersVictim) {
  auto m = make(models::ModelKind::kUnprotected);
  const auto r = pht_reuse_away(*m, kTrials, 4);
  EXPECT_TRUE(r.success);
  EXPECT_GT(r.success_rate, 0.85);
}

TEST(Table1Baseline, SpectreV2InjectsGadget) {
  auto m = make(models::ModelKind::kUnprotected);
  const auto r = btb_injection_away(*m, kTrials, 5, kGadget);
  EXPECT_TRUE(r.success);
  EXPECT_GT(r.success_rate, 0.9);
}

TEST(Table1Baseline, SpectreRsbInjectsGadget) {
  auto m = make(models::ModelKind::kUnprotected);
  const auto r = rsb_injection_away(*m, kTrials, 6, kGadget);
  EXPECT_TRUE(r.success);
  EXPECT_GT(r.success_rate, 0.9);
}

TEST(Table1Baseline, SameAddressSpaceTrojanWorks) {
  auto m = make(models::ModelKind::kUnprotected);
  const auto r = same_address_space_trojan(*m, kTrials, 7, kGadget);
  EXPECT_TRUE(r.success);
  EXPECT_GT(r.success_rate, 0.9);
}

TEST(Table1Baseline, BtbEvictionHomeDetectsVictim) {
  auto m = make(models::ModelKind::kUnprotected);
  const auto r = btb_eviction_home(*m, kTrials, 8);
  EXPECT_TRUE(r.success);
  EXPECT_GT(r.success_rate, 0.9);
}

TEST(Table1Baseline, BtbEvictionAwayForcesStatic) {
  auto m = make(models::ModelKind::kUnprotected);
  const auto r = btb_eviction_away(*m, kTrials, 9);
  EXPECT_TRUE(r.success);
}

TEST(Table1Baseline, RsbEvictionChannelsWork) {
  auto m = make(models::ModelKind::kUnprotected);
  EXPECT_TRUE(rsb_eviction_home(*m, kTrials, 10).success);
  auto m2 = make(models::ModelKind::kUnprotected);
  EXPECT_TRUE(rsb_eviction_away(*m2, kTrials, 11).success);
}

// --------------------------------------------------- STBPU defends -------

TEST(Table1Stbpu, BtbReuseHomeBlindedToGuessRate) {
  auto m = make(models::ModelKind::kStbpu);
  const auto r = btb_reuse_home(*m, kTrials, 1);
  EXPECT_FALSE(r.success);
  EXPECT_NEAR(r.success_rate, 0.5, 0.2);
}

TEST(Table1Stbpu, PhtReuseHomeBlinded) {
  auto m = make(models::ModelKind::kStbpu);
  const auto r = pht_reuse_home(*m, kTrials, 2);
  EXPECT_FALSE(r.success);
}

TEST(Table1Stbpu, RsbReuseHomeBlindedByEncryption) {
  auto m = make(models::ModelKind::kStbpu);
  const auto r = rsb_reuse_home(*m, kTrials, 3);
  EXPECT_FALSE(r.success)
      << "φ-encrypted payload decodes to garbage under the attacker's ST";
}

TEST(Table1Stbpu, PhtReuseAwayCannotSteer) {
  auto m = make(models::ModelKind::kStbpu);
  const auto r = pht_reuse_away(*m, kTrials, 4);
  EXPECT_FALSE(r.success);
  EXPECT_LT(r.success_rate, 0.2);
}

TEST(Table1Stbpu, SpectreV2Defeated) {
  auto m = make(models::ModelKind::kStbpu);
  const auto r = btb_injection_away(*m, kTrials, 5, kGadget);
  EXPECT_FALSE(r.success);
  EXPECT_LT(r.success_rate, 0.05)
      << "collision probability bounded by 1/(I·T·O), decode by 2^-32";
}

TEST(Table1Stbpu, SpectreRsbDefeated) {
  auto m = make(models::ModelKind::kStbpu);
  const auto r = rsb_injection_away(*m, kTrials, 6, kGadget);
  EXPECT_FALSE(r.success);
  EXPECT_LT(r.success_rate, 0.05);
}

TEST(Table1Stbpu, SameAddressSpaceTrojanDefeated) {
  auto m = make(models::ModelKind::kStbpu);
  const auto r = same_address_space_trojan(*m, kTrials, 7, kGadget);
  EXPECT_FALSE(r.success)
      << "R-functions consume all 48 address bits — the 2^30 alias is gone";
  EXPECT_LT(r.success_rate, 0.05);
}

TEST(Table1Stbpu, BtbEvictionHomeBlinded) {
  auto m = make(models::ModelKind::kStbpu);
  const auto r = btb_eviction_home(*m, kTrials, 8);
  EXPECT_FALSE(r.success)
      << "the attacker's 'same-set' family scatters across the ST mapping";
}

TEST(Table1Stbpu, BtbEvictionAwayBlinded) {
  auto m = make(models::ModelKind::kStbpu);
  const auto r = btb_eviction_away(*m, kTrials, 9);
  EXPECT_FALSE(r.success);
  EXPECT_LT(r.success_rate, 0.2);
}

TEST(Table1Stbpu, RsbOccupancyChannelRemainsButLeaksNoAddresses) {
  // Documented residual channel (§VI-A6 flavour): eviction/overflow of the
  // shared RSB reveals call *counts* — STBPU bounds, not eliminates, it.
  auto m = make(models::ModelKind::kStbpu);
  const auto r = rsb_eviction_home(*m, kTrials, 10);
  EXPECT_TRUE(r.success) << "occupancy detection is content-independent";
  // But the reuse (address-leak) variant stays dead:
  auto m2 = make(models::ModelKind::kStbpu);
  EXPECT_FALSE(rsb_reuse_home(*m2, kTrials, 3).success);
}

// --------------------------------- flushing vs same-address-space --------

TEST(Table1Ucode, FlushingStopsCrossProcessInjection) {
  auto m = make(models::ModelKind::kUcode1);
  const auto r = btb_injection_away(*m, kTrials, 5, kGadget);
  EXPECT_FALSE(r.success) << "IBPB flush between A and V kills the training";
}

TEST(Table1Ucode, FlushingDoesNotStopSameAddressSpaceTrojan) {
  // The paper's key point (§II-A): enforcing security only at context/mode
  // switches is incomplete — the trojan and victim share one context.
  auto m = make(models::ModelKind::kUcode1);
  const auto r = same_address_space_trojan(*m, kTrials, 7, kGadget);
  EXPECT_TRUE(r.success) << "no switch separates trojan from victim";
}

TEST(Table1Conservative, FullTagsStopSameAddressSpaceTrojan) {
  auto m = make(models::ModelKind::kConservative);
  const auto r = same_address_space_trojan(*m, kTrials, 7, kGadget);
  EXPECT_FALSE(r.success) << "48-bit tags leave no truncation alias";
}

// ------------------------------------------ monitor throttles attacks ----

TEST(Table1Stbpu, SustainedAttackTriggersRerandomization) {
  // A true brute-force search (fresh branches, constant misses/evictions)
  // must drain the MSRs and rotate the ST long before it gets anywhere.
  models::ModelSpec spec{.model = models::ModelKind::kStbpu};
  spec.rerand_difficulty_r = 1e-3;  // thresholds ≈ 838 misp / 530 evictions
  auto m = models::BpuModel::create(spec);
  ReuseSearchConfig cfg;
  cfg.max_set_size = 3000;
  cfg.internal_collision_checks = false;  // pure probing volume
  (void)reuse_collision_search(*m, cfg);
  EXPECT_GT(m->tokens()->rerandomizations(), 0u)
      << "attacker events must drain the MSR and rotate the ST";
}

}  // namespace
}  // namespace stbpu::attacks
