// Block-generation contract: the SoA block API must emit the identical
// record sequence as per-record generation (same seed → same RNG draws →
// same records), across arbitrary block boundaries; pregenerated traces
// replayed through InstrTraceStream must be indistinguishable from the
// live generator — including through both OoO cores (stats, cycles, stall
// attribution, cache counters) and under SMT thread interleave.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "exp/engine_visit.h"
#include "models/engine.h"
#include "models/models.h"
#include "sim/ooo.h"
#include "trace/batch.h"
#include "trace/generator.h"
#include "trace/instr.h"
#include "trace/pregen.h"
#include "trace/profile.h"

namespace stbpu {
namespace {

bool same_record(const trace::InstrRecord& a, const trace::InstrRecord& b) {
  if (a.kind != b.kind || a.dst != b.dst || a.src1 != b.src1 || a.src2 != b.src2 ||
      a.streaming != b.streaming || a.mem_addr != b.mem_addr) {
    return false;
  }
  if (a.kind != trace::InstrRecord::Kind::kBranch) return true;
  return a.branch.ip == b.branch.ip && a.branch.target == b.branch.target &&
         a.branch.type == b.branch.type && a.branch.taken == b.branch.taken &&
         a.branch.ctx == b.branch.ctx;
}

TEST(InstrBlock, BlockFillMatchesPerRecordAcrossBoundaries) {
  const auto profile = trace::profile_by_name("mcf");
  trace::SyntheticInstrGenerator per_record(profile);

  // Ragged block sizes (1, 7, 48, 4096) so block boundaries land on every
  // phase of the generator (mid-basic-block, pending-branch, post-branch).
  const std::size_t limits[] = {1, 7, 48, 4096};
  trace::SyntheticInstrGenerator blocked(profile);
  trace::InstrBlock block;
  std::size_t consumed = 0, which = 0;
  while (consumed < 20'000) {
    const std::size_t limit = limits[which++ % 4];
    const std::size_t n = blocked.next_block(block, limit);
    ASSERT_EQ(n, limit) << "generator is unbounded";
    ASSERT_EQ(block.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      trace::InstrRecord expect;
      ASSERT_TRUE(per_record.next(expect));
      EXPECT_TRUE(same_record(expect, block.record(i))) << "instr " << consumed + i;
      // SoA invariants: the prefix count addresses the compacted payloads.
      if (block.is_branch(i)) {
        EXPECT_EQ(block.branch(i).ip, expect.branch.ip);
      }
    }
    EXPECT_EQ(block.branch_count_through(n), block.branches.size());
    consumed += n;
  }
}

TEST(InstrBlock, BranchGeneratorBatchMatchesPerRecord) {
  const auto profile = trace::profile_by_name("mcf");
  trace::SyntheticWorkloadGenerator per_record(profile);
  trace::SyntheticWorkloadGenerator batched(profile);
  trace::BranchBatch batch;
  for (unsigned round = 0; round < 8; ++round) {
    const std::size_t n = batched.next_batch(batch, 1000 + round * 37);
    ASSERT_EQ(n, batch.size());
    for (std::size_t i = 0; i < n; ++i) {
      bpu::BranchRecord expect;
      ASSERT_TRUE(per_record.next(expect));
      const bpu::BranchRecord got = batch.record(i);
      EXPECT_EQ(expect.ip, got.ip);
      EXPECT_EQ(expect.target, got.target);
      EXPECT_EQ(expect.type, got.type);
      EXPECT_EQ(expect.taken, got.taken);
      EXPECT_TRUE(expect.ctx == got.ctx);
    }
  }
}

TEST(InstrBlock, PregenTraceReplaysGeneratorExactly) {
  const auto profile = trace::profile_by_name("bwaves");
  const auto artifact = trace::generate_instr_trace(profile, 10'000);
  ASSERT_EQ(artifact->size(), 10'000u);

  trace::SyntheticInstrGenerator gen(profile);
  trace::InstrTraceStream stream(artifact);
  trace::InstrRecord expect, got;
  for (std::size_t i = 0; i < 10'000; ++i) {
    ASSERT_TRUE(gen.next(expect));
    ASSERT_TRUE(stream.next(got));
    ASSERT_TRUE(same_record(expect, got)) << "instr " << i;
  }
  EXPECT_FALSE(stream.next(got)) << "trace ends exactly at its pregen count";

  // borrow_block lends pointers into the artifact itself (zero copy).
  stream.reset();
  std::size_t start = ~std::size_t{0}, n = 0;
  const trace::InstrBlock* b = stream.borrow_block(256, start, n);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b, &artifact->block);
  EXPECT_EQ(start, 0u);
  EXPECT_EQ(n, 256u);
  b = stream.borrow_block(1 << 20, start, n);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(start, 256u);
  EXPECT_EQ(n, 10'000u - 256u) << "borrow clamps at end of trace";
  EXPECT_TRUE(stream.contiguous());
}

TEST(InstrBlock, SharedTraceCacheMemoizes) {
  trace::clear_instr_trace_cache();
  const auto profile = trace::profile_by_name("mcf");
  const auto a = trace::shared_instr_trace(profile, 2'000);
  const auto b = trace::shared_instr_trace(profile, 2'000);
  EXPECT_EQ(a.get(), b.get()) << "same (profile, seed, count) shares one artifact";
  const auto c = trace::shared_instr_trace(profile, 3'000);
  EXPECT_NE(a.get(), c.get()) << "different count is a different artifact";
  const auto d = trace::shared_instr_trace(profile, 2'000, /*seed_override=*/77);
  EXPECT_NE(a.get(), d.get()) << "different seed is a different artifact";
  trace::WorkloadProfile tweaked = profile;
  tweaked.branch_density *= 2.0;  // same name + seed, different generator knobs
  const auto t = trace::shared_instr_trace(tweaked, 2'000);
  EXPECT_NE(a.get(), t.get()) << "a tweaked same-named profile must regenerate";
  EXPECT_TRUE(t->profile == tweaked);
  trace::clear_instr_trace_cache();
  const auto e = trace::shared_instr_trace(profile, 2'000);
  EXPECT_NE(a.get(), e.get()) << "clear drops the memo (old artifact stays alive)";
  EXPECT_EQ(a->size(), e->size());
}

void expect_same_result(const sim::OooResult& gen_r, const sim::OooResult& pre_r) {
  ASSERT_EQ(gen_r.threads, pre_r.threads);
  for (unsigned t = 0; t < gen_r.threads; ++t) {
    EXPECT_EQ(gen_r.instructions[t], pre_r.instructions[t]);
    EXPECT_EQ(gen_r.cycles[t], pre_r.cycles[t]);
    EXPECT_EQ(gen_r.ipc[t], pre_r.ipc[t]);
    EXPECT_EQ(gen_r.branch_stats[t], pre_r.branch_stats[t]);
    EXPECT_EQ(gen_r.stalls[t], pre_r.stalls[t]);
  }
  EXPECT_EQ(gen_r.cache, pre_r.cache);
  EXPECT_GT(gen_r.combined_stats().branches, 0u);
}

TEST(InstrBlock, PregenThroughTickCoreBitIdentical) {
  // The core consumes the pregenerated stream by pointer through its
  // lookahead window; everything the simulation computes must match the
  // on-the-fly generator run — for a batch-precompute engine (STBPU/SKLCond
  // exercises the windowed precompute against borrowed blocks) and for an
  // engine without batch precompute (STBPU/TAGE8, windowed only because the
  // stream is contiguous).
  constexpr std::uint64_t kBudget = 15'000, kWarmup = 1'500;
  const auto profile = trace::profile_by_name("mcf");
  const auto artifact =
      trace::generate_instr_trace(profile, kBudget + kWarmup + 4096);
  for (const auto dir :
       {models::DirectionKind::kSklCond, models::DirectionKind::kTage8}) {
    const models::ModelSpec spec{.model = models::ModelKind::kStbpu, .direction = dir};
    sim::OooResult gen_r{}, pre_r{}, pre_ref_r{};
    ASSERT_TRUE(exp::for_each_engine(spec, [&](auto& engine) {
      trace::SyntheticInstrGenerator gen(profile);
      gen_r = sim::run_ooo({}, engine, {&gen}, kBudget, kWarmup);
    }));
    ASSERT_TRUE(exp::for_each_engine(spec, [&](auto& engine) {
      trace::InstrTraceStream stream(artifact);
      pre_r = sim::run_ooo({}, engine, {&stream}, kBudget, kWarmup);
    }));
    expect_same_result(gen_r, pre_r);
    // The double-precision reference core consumes the same blocks.
    ASSERT_TRUE(exp::for_each_engine(spec, [&](auto& engine) {
      trace::InstrTraceStream stream(artifact);
      pre_ref_r = sim::run_ooo_ref({}, engine, {&stream}, kBudget, kWarmup);
    }));
    ASSERT_EQ(gen_r.threads, pre_ref_r.threads);
    EXPECT_EQ(gen_r.instructions, pre_ref_r.instructions);
    EXPECT_EQ(gen_r.cycles, pre_ref_r.cycles);
    EXPECT_EQ(gen_r.cache, pre_ref_r.cache);
    for (unsigned t = 0; t < gen_r.threads; ++t) {
      EXPECT_EQ(gen_r.branch_stats[t], pre_ref_r.branch_stats[t]);
    }
  }
}

TEST(InstrBlock, PregenSmtInterleaveBitIdentical) {
  // Two pregenerated per-thread streams through the SMT-2 configuration:
  // the shared-BPU access interleave, context switches and both threads'
  // cycles must reproduce the two-generator run exactly.
  constexpr std::uint64_t kBudget = 10'000, kWarmup = 1'000;
  const auto p0 = trace::profile_by_name("bwaves");
  const auto p1 = trace::profile_by_name("mcf");
  const auto a0 = trace::generate_instr_trace(p0, kBudget + kWarmup + 4096);
  const auto a1 = trace::generate_instr_trace(p1, kBudget + kWarmup + 4096);
  const models::ModelSpec spec{.model = models::ModelKind::kStbpu,
                               .direction = models::DirectionKind::kTage64};
  sim::OooResult gen_r{}, pre_r{}, mixed_r{};
  ASSERT_TRUE(exp::for_each_engine(spec, [&](auto& engine) {
    trace::SyntheticInstrGenerator g0(p0), g1(p1);
    gen_r = sim::run_ooo({}, engine, {&g0, &g1}, kBudget, kWarmup);
  }));
  ASSERT_TRUE(exp::for_each_engine(spec, [&](auto& engine) {
    trace::InstrTraceStream s0(a0), s1(a1);
    pre_r = sim::run_ooo({}, engine, {&s0, &s1}, kBudget, kWarmup);
  }));
  expect_same_result(gen_r, pre_r);
  EXPECT_EQ(gen_r.threads, 2u);
  EXPECT_EQ(gen_r.ipc_harmonic_mean(), pre_r.ipc_harmonic_mean());

  // Mixed sources — thread 0 pregenerated, thread 1 live — must also be
  // identical: the window policy is per thread.
  ASSERT_TRUE(exp::for_each_engine(spec, [&](auto& engine) {
    trace::InstrTraceStream s0(a0);
    trace::SyntheticInstrGenerator g1(p1);
    mixed_r = sim::run_ooo({}, engine, {&s0, &g1}, kBudget, kWarmup);
  }));
  expect_same_result(gen_r, mixed_r);
}

}  // namespace
}  // namespace stbpu
