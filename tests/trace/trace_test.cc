// Trace substrate: profiles registry, generator statistical contracts,
// stream utilities, binary IO.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>

#include "bpu/predictor.h"
#include "trace/generator.h"
#include "trace/instr.h"
#include "trace/io.h"
#include "trace/profile.h"
#include "trace/stream.h"

namespace stbpu::trace {
namespace {

TEST(Profiles, RegistrySizesMatchPaper) {
  EXPECT_EQ(spec2017_profiles().size(), 23u);       // Figure 3 SPEC block
  EXPECT_EQ(application_profiles().size(), 14u);    // Figure 3 app block
  EXPECT_EQ(figure3_profiles().size(), 37u);
  EXPECT_EQ(figure4_profiles().size(), 18u);        // Figures 4/5 workloads
}

TEST(Profiles, LookupByShortAndNumberedName) {
  EXPECT_EQ(profile_by_name("mcf").name, "mcf");
  EXPECT_EQ(profile_by_name("505.mcf").name, "505.mcf");
  EXPECT_EQ(profile_by_name("apache2_prefork_c128").num_processes, 4u);
  EXPECT_THROW(profile_by_name("no_such_workload"), std::out_of_range);
}

TEST(Profiles, SeedsAreDistinctPerWorkload) {
  std::map<std::uint64_t, std::string> seeds;
  for (const auto& p : figure3_profiles()) {
    const auto [it, inserted] = seeds.emplace(p.seed, p.name);
    EXPECT_TRUE(inserted) << p.name << " shares a seed with " << it->second;
  }
}

TEST(Profiles, BehaviourFractionsAreSane) {
  for (const auto& p : figure3_profiles()) {
    EXPECT_GT(p.biased_frac, 0.0) << p.name;
    EXPECT_LE(p.biased_frac + p.loop_frac + p.pattern_frac, 1.0 + 1e-9) << p.name;
    EXPECT_GT(p.branch_density, 0.0) << p.name;
    EXPECT_LE(p.frac_call + p.frac_direct_jump + p.frac_indirect, 0.5) << p.name;
  }
}

TEST(Generator, DeterministicAndResettable) {
  const auto profile = profile_by_name("mcf");
  SyntheticWorkloadGenerator g1(profile), g2(profile);
  bpu::BranchRecord a, b;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(g1.next(a));
    ASSERT_TRUE(g2.next(b));
    ASSERT_EQ(a.ip, b.ip);
    ASSERT_EQ(a.taken, b.taken);
    ASSERT_EQ(a.target, b.target);
  }
  g1.reset();
  SyntheticWorkloadGenerator g3(profile);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(g1.next(a));
    ASSERT_TRUE(g3.next(b));
    ASSERT_EQ(a.ip, b.ip);
    ASSERT_EQ(a.taken, b.taken);
  }
}

TEST(Generator, AddressesStayWithin48Bits) {
  SyntheticWorkloadGenerator gen(profile_by_name("perlbench"));
  bpu::BranchRecord r;
  for (int i = 0; i < 20000; ++i) {
    gen.next(r);
    EXPECT_LE(r.ip, bpu::kVirtualAddressMask);
    EXPECT_LE(r.target, bpu::kVirtualAddressMask);
  }
}

TEST(Generator, TypeMixTracksProfile) {
  const auto profile = profile_by_name("perlbench");
  SyntheticWorkloadGenerator gen(profile);
  std::map<bpu::BranchType, unsigned> counts;
  bpu::BranchRecord r;
  constexpr unsigned kN = 200'000;
  for (unsigned i = 0; i < kN; ++i) {
    gen.next(r);
    ++counts[r.type];
  }
  const double calls = counts[bpu::BranchType::kDirectCall];
  const double rets = counts[bpu::BranchType::kReturn];
  // Loop bursts dilute non-conditional types relative to the raw profile
  // fraction — allow a wide but meaningful band.
  EXPECT_GT(calls / kN, profile.frac_call * 0.3);
  EXPECT_LT(calls / kN, profile.frac_call * 1.3);
  EXPECT_NEAR(rets / calls, 1.0, 0.25) << "calls and returns must balance";
  EXPECT_GT(counts[bpu::BranchType::kConditional], kN / 2);
  EXPECT_GT(counts[bpu::BranchType::kIndirectJump] +
                counts[bpu::BranchType::kIndirectCall],
            0u);
}

TEST(Generator, ReturnsMatchCallSites) {
  // Every return's target must be a previously-pushed call site + 4.
  SyntheticWorkloadGenerator gen(profile_by_name("povray"));
  std::map<std::uint16_t, std::vector<std::uint64_t>> stacks;
  bpu::BranchRecord r;
  unsigned returns_checked = 0;
  for (int i = 0; i < 100'000; ++i) {
    gen.next(r);
    if (r.ctx.kernel) continue;
    if (is_call(r.type)) {
      stacks[r.ctx.pid].push_back(r.ip + bpu::kBranchInstrLen);
    } else if (r.type == bpu::BranchType::kReturn) {
      auto& st = stacks[r.ctx.pid];
      ASSERT_FALSE(st.empty()) << "return without a call";
      EXPECT_EQ(r.target, st.back());
      st.pop_back();
      ++returns_checked;
    }
  }
  EXPECT_GT(returns_checked, 1000u);
}

TEST(Generator, KernelExcursionsHappenAtProfileRate) {
  const auto profile = profile_by_name("apache2_prefork_c128");
  SyntheticWorkloadGenerator gen(profile);
  bpu::BranchRecord r;
  unsigned kernel = 0;
  constexpr unsigned kN = 100'000;
  for (unsigned i = 0; i < kN; ++i) {
    gen.next(r);
    kernel += r.ctx.kernel;
  }
  // syscall_rate ~1.2% with ~36-branch excursions → roughly 20-50% kernel.
  EXPECT_GT(kernel, kN / 10);
  EXPECT_LT(kernel, kN * 6 / 10);
}

TEST(Generator, ContextSwitchesOccurForMultiProcess) {
  SyntheticWorkloadGenerator gen(profile_by_name("apache2_prefork_c512"));
  bpu::BranchRecord r;
  std::uint16_t last = 0;
  unsigned switches = 0;
  std::map<std::uint16_t, unsigned> pid_seen;
  for (int i = 0; i < 300'000; ++i) {
    gen.next(r);
    ++pid_seen[r.ctx.pid];
    if (last != 0 && r.ctx.pid != last) ++switches;
    last = r.ctx.pid;
  }
  EXPECT_GT(switches, 10u);
  EXPECT_GT(pid_seen.size(), 2u);
}

TEST(Generator, SpecWorkloadsAreComputeDominated) {
  // SPEC profiles model the benchmark plus light background system
  // activity: the benchmark process must dominate execution.
  SyntheticWorkloadGenerator gen(profile_by_name("bwaves"));
  bpu::BranchRecord r;
  std::map<std::uint16_t, unsigned> pids;
  constexpr unsigned kN = 100'000;
  for (unsigned i = 0; i < kN; ++i) {
    gen.next(r);
    ++pids[r.ctx.pid];
  }
  unsigned dominant = 0;
  for (const auto& [pid, count] : pids) dominant = std::max(dominant, count);
  EXPECT_GT(dominant, kN * 8 / 10);
}

TEST(Streams, LimitStreamCaps) {
  SyntheticWorkloadGenerator gen(profile_by_name("mcf"));
  LimitStream limited(&gen, 100);
  bpu::BranchRecord r;
  unsigned n = 0;
  while (limited.next(r)) ++n;
  EXPECT_EQ(n, 100u);
  limited.reset();
  n = 0;
  while (limited.next(r)) ++n;
  EXPECT_EQ(n, 100u);
}

TEST(Streams, VectorStreamReplays) {
  SyntheticWorkloadGenerator gen(profile_by_name("mcf"));
  const auto records = collect(gen, 500);
  VectorStream vs(records);
  bpu::BranchRecord r;
  for (const auto& expected : records) {
    ASSERT_TRUE(vs.next(r));
    EXPECT_EQ(r.ip, expected.ip);
  }
  EXPECT_FALSE(vs.next(r));
}

TEST(TraceIo, RoundTrips) {
  SyntheticWorkloadGenerator gen(profile_by_name("xz"));
  const auto records = collect(gen, 2000);
  const std::string path = "/tmp/stbpu_io_test.trace";
  ASSERT_TRUE(write_trace(path, records));
  const auto loaded = read_trace(path);
  ASSERT_EQ(loaded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(loaded[i].ip, records[i].ip);
    EXPECT_EQ(loaded[i].target, records[i].target);
    EXPECT_EQ(loaded[i].type, records[i].type);
    EXPECT_EQ(loaded[i].taken, records[i].taken);
    EXPECT_EQ(loaded[i].ctx, records[i].ctx);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsGarbage) {
  const std::string path = "/tmp/stbpu_io_bad.trace";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a trace", f);
  std::fclose(f);
  EXPECT_THROW(read_trace(path), std::runtime_error);
  EXPECT_THROW(read_trace("/nonexistent/file.trace"), std::runtime_error);
  std::remove(path.c_str());
}

TEST(InstrGenerator, BranchDensityTracksProfile) {
  const auto profile = profile_by_name("leela");
  SyntheticInstrGenerator gen(profile);
  InstrRecord r;
  unsigned branches = 0;
  constexpr unsigned kN = 100'000;
  for (unsigned i = 0; i < kN; ++i) {
    gen.next(r);
    branches += r.kind == InstrRecord::Kind::kBranch;
  }
  EXPECT_NEAR(static_cast<double>(branches) / kN, profile.branch_density, 0.05);
}

TEST(InstrGenerator, MemoryOpsCarryAddresses) {
  SyntheticInstrGenerator gen(profile_by_name("mcf"));
  InstrRecord r;
  for (int i = 0; i < 20'000; ++i) {
    gen.next(r);
    if (r.kind == InstrRecord::Kind::kLoad || r.kind == InstrRecord::Kind::kStore) {
      EXPECT_NE(r.mem_addr, 0u);
    }
  }
}

TEST(InstrGenerator, Deterministic) {
  const auto profile = profile_by_name("namd");
  SyntheticInstrGenerator g1(profile), g2(profile);
  InstrRecord a, b;
  for (int i = 0; i < 20'000; ++i) {
    g1.next(a);
    g2.next(b);
    ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind));
    ASSERT_EQ(a.mem_addr, b.mem_addr);
    if (a.kind == InstrRecord::Kind::kBranch) {
      ASSERT_EQ(a.branch.ip, b.branch.ip);
    }
  }
}

}  // namespace
}  // namespace stbpu::trace
