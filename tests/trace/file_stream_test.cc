// FileStream (block-buffered disk replay) coverage: the three consumption
// modes — next(), next_batch(), borrow_run() — must all reproduce the
// written records exactly, reset() must rewind, and replaying a file trace
// through sim::replay (which takes the borrow_run SoA fast path) must
// yield bit-identical statistics to replaying the same records from
// memory.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "models/engine.h"
#include "models/models.h"
#include "sim/bpu_sim.h"
#include "trace/batch.h"
#include "trace/generator.h"
#include "trace/io.h"
#include "trace/profile.h"
#include "trace/stream.h"

namespace stbpu {
namespace {

class FileStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "file_stream_test.trace";
    trace::SyntheticWorkloadGenerator gen(trace::profile_by_name("mcf"));
    // Deliberately NOT a multiple of kDefaultBatch: the tail block is the
    // interesting read.
    records_ = trace::collect(gen, trace::kDefaultBatch * 2 + 777);
    ASSERT_TRUE(trace::write_trace(path_, records_));
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  std::vector<bpu::BranchRecord> records_;
};

bool same_record(const bpu::BranchRecord& a, const bpu::BranchRecord& b) {
  return a.ip == b.ip && a.target == b.target && a.type == b.type && a.taken == b.taken &&
         a.ctx == b.ctx;
}

TEST_F(FileStreamTest, NextMatchesWrittenRecords) {
  trace::FileStream stream(path_);
  EXPECT_EQ(stream.count(), records_.size());
  bpu::BranchRecord r;
  for (const auto& expected : records_) {
    ASSERT_TRUE(stream.next(r));
    ASSERT_TRUE(same_record(r, expected));
  }
  EXPECT_FALSE(stream.next(r));
}

TEST_F(FileStreamTest, NextBatchReadsBlocks) {
  trace::FileStream stream(path_);
  trace::BranchBatch batch;
  std::size_t off = 0;
  // An awkward batch size exercises refills straddling buffer boundaries.
  const std::size_t limit = trace::kDefaultBatch / 3 + 11;
  while (const std::size_t n = stream.next_batch(batch, limit)) {
    ASSERT_LE(off + n, records_.size());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(same_record(batch.record(i), records_[off + i]));
    }
    off += n;
  }
  EXPECT_EQ(off, records_.size());
}

TEST_F(FileStreamTest, BorrowRunExposesContiguousRuns) {
  trace::FileStream stream(path_);
  std::size_t off = 0;
  std::size_t n = 0;
  while (const bpu::BranchRecord* run = stream.borrow_run(trace::kDefaultBatch, n)) {
    ASSERT_GT(n, 0u);
    ASSERT_LE(off + n, records_.size());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(same_record(run[i], records_[off + i]));
    }
    off += n;
  }
  EXPECT_EQ(off, records_.size());
}

TEST_F(FileStreamTest, ResetRewindsToTheFirstRecord) {
  trace::FileStream stream(path_);
  bpu::BranchRecord r;
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(stream.next(r));
  stream.reset();
  ASSERT_TRUE(stream.next(r));
  EXPECT_TRUE(same_record(r, records_[0]));
}

TEST_F(FileStreamTest, ReplayMatchesInMemoryStream) {
  // The disk path must be a pure transport: identical stats to VectorStream
  // on the same records, through both read modes (mmap and buffered fread).
  const sim::BpuSimOptions opt{.max_branches = records_.size() - 1000,
                               .warmup_branches = 1000};
  for (const auto kind : {models::ModelKind::kUnprotected, models::ModelKind::kStbpu}) {
    const models::ModelSpec spec{.model = kind};

    trace::VectorStream memory(records_);
    auto memory_engine = models::make_engine(spec);
    const auto memory_stats = models::replay_engine(*memory_engine, memory, opt);

    trace::FileStream file(path_, trace::FileStreamMode::kBuffered);
    EXPECT_FALSE(file.mmap_active());
    auto file_engine = models::make_engine(spec);
    const auto file_stats = models::replay_engine(*file_engine, file, opt);

    EXPECT_EQ(memory_stats, file_stats) << models::to_string(kind);
    EXPECT_GT(file_stats.branches, 0u);

#if defined(__unix__) || defined(__APPLE__)
    trace::FileStream mapped(path_, trace::FileStreamMode::kMmap);
    EXPECT_TRUE(mapped.mmap_active());
    auto mapped_engine = models::make_engine(spec);
    const auto mapped_stats = models::replay_engine(*mapped_engine, mapped, opt);
    EXPECT_EQ(memory_stats, mapped_stats) << models::to_string(kind) << " (mmap)";
#endif
  }
}

#if defined(__unix__) || defined(__APPLE__)
TEST_F(FileStreamTest, MmapModeReproducesEveryConsumptionPath) {
  trace::FileStream stream(path_, trace::FileStreamMode::kMmap);
  ASSERT_TRUE(stream.mmap_active());
  EXPECT_EQ(stream.count(), records_.size());

  // next() record for record.
  bpu::BranchRecord r;
  for (const auto& expected : records_) {
    ASSERT_TRUE(stream.next(r));
    ASSERT_TRUE(same_record(r, expected));
  }
  EXPECT_FALSE(stream.next(r));

  // reset() rewinds and re-establishes the mapping.
  stream.reset();
  ASSERT_TRUE(stream.mmap_active());

  // borrow_run() after reset: the SoA fast path out of the mapping.
  std::size_t off = 0, n = 0;
  while (const bpu::BranchRecord* run = stream.borrow_run(trace::kDefaultBatch / 5, n)) {
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(same_record(run[i], records_[off + i]));
    }
    off += n;
  }
  EXPECT_EQ(off, records_.size());

  // Auto mode picks mmap where supported.
  trace::FileStream auto_stream(path_, trace::FileStreamMode::kAuto);
  EXPECT_TRUE(auto_stream.mmap_active());
}

TEST(FileStreamErrors, MmapRejectsHeaderThatOverpromises) {
  // A header claiming more records than the file holds must fail at open
  // in mmap mode (the fread path reports the same file as truncated later).
  const std::string path = ::testing::TempDir() + "overpromise.trace";
  trace::SyntheticWorkloadGenerator gen(trace::profile_by_name("mcf"));
  ASSERT_TRUE(trace::write_trace(path, trace::collect(gen, 100)));
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  const std::uint32_t bogus_count = 1'000'000;
  std::fseek(f, 8, SEEK_SET);  // header[2] = low word of the record count
  std::fwrite(&bogus_count, sizeof(bogus_count), 1, f);
  std::fclose(f);
  EXPECT_THROW(trace::FileStream(path, trace::FileStreamMode::kMmap),
               std::runtime_error);
  std::remove(path.c_str());
}
#endif

TEST(FileStreamErrors, MissingAndMalformedFiles) {
  EXPECT_THROW(trace::FileStream("/nonexistent/trace.bin"), std::runtime_error);

  const std::string bad = ::testing::TempDir() + "bad_header.trace";
  std::FILE* f = std::fopen(bad.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("garbage", f);
  std::fclose(f);
  EXPECT_THROW(trace::FileStream{bad}, std::runtime_error);
  std::remove(bad.c_str());
}

}  // namespace
}  // namespace stbpu
