// STManager (secret tokens) and EventMonitor (re-randomization MSRs).
#include <gtest/gtest.h>

#include "core/monitor.h"
#include "core/secret_token.h"

namespace stbpu::core {
namespace {

const bpu::ExecContext kUserA{.pid = 1, .hart = 0, .kernel = false};
const bpu::ExecContext kUserB{.pid = 2, .hart = 0, .kernel = false};
const bpu::ExecContext kKernel{.pid = 1, .hart = 0, .kernel = true};

TEST(STManager, TokensAreStablePerEntity) {
  STManager stm(1);
  const SecretToken t1 = stm.token(kUserA);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(stm.token(kUserA), t1);
}

TEST(STManager, DistinctEntitiesGetDistinctTokens) {
  STManager stm(1);
  EXPECT_NE(stm.token(kUserA), stm.token(kUserB));
  EXPECT_NE(stm.token(kUserA), stm.token(kKernel));
}

TEST(STManager, KernelIsOneEntityAcrossProcesses) {
  STManager stm(1);
  bpu::ExecContext k2 = kKernel;
  k2.pid = 42;  // kernel running on behalf of another process
  EXPECT_EQ(stm.token(kKernel), stm.token(k2))
      << "the kernel is a single software entity with one ST";
}

TEST(STManager, RerandomizeChangesOnlyThatEntity) {
  STManager stm(1);
  const SecretToken a0 = stm.token(kUserA);
  const SecretToken b0 = stm.token(kUserB);
  const SecretToken k0 = stm.token(kKernel);
  stm.rerandomize(kUserA);
  EXPECT_NE(stm.token(kUserA), a0) << "re-randomized";
  EXPECT_EQ(stm.token(kUserB), b0) << "other entities keep their history";
  EXPECT_EQ(stm.token(kKernel), k0);
  EXPECT_EQ(stm.rerandomizations(), 1u);
}

TEST(STManager, RerandomizeKernel) {
  STManager stm(1);
  const SecretToken k0 = stm.token(kKernel);
  const SecretToken a0 = stm.token(kUserA);
  stm.rerandomize(kKernel);
  EXPECT_NE(stm.token(kKernel), k0);
  EXPECT_EQ(stm.token(kUserA), a0);
}

TEST(STManager, ShareGroupsUseOneToken) {
  STManager stm(1);
  stm.share(/*pid=*/5, /*leader=*/1);
  bpu::ExecContext worker{.pid = 5, .hart = 0, .kernel = false};
  EXPECT_EQ(stm.token(kUserA), stm.token(worker))
      << "OS-granted selective history sharing (paper §IV-A)";
  // Re-randomizing the leader rotates the whole group.
  const SecretToken before = stm.token(worker);
  stm.rerandomize(kUserA);
  EXPECT_NE(stm.token(worker), before);
  EXPECT_EQ(stm.token(worker), stm.token(kUserA));
}

TEST(STManager, SetTokenIsPrivilegedOverride) {
  STManager stm(1);
  stm.set_token(kUserA, {0x11, 0x22});
  EXPECT_EQ(stm.token(kUserA).psi, 0x11u);
  EXPECT_EQ(stm.token(kUserA).phi, 0x22u);
}

TEST(STManager, SeedsAreReproducible) {
  STManager a(77), b(77);
  EXPECT_EQ(a.token(kUserA), b.token(kUserA));
  EXPECT_EQ(a.token(kKernel), b.token(kKernel));
}

TEST(STManager, RetireForcesFreshTokenOnPidReuse) {
  STManager stm(1);
  const SecretToken victim = stm.token(kUserA);
  // Without retire, a recycled pid would silently serve the previous
  // entity's ST — handing the successor the victim's usable history. The
  // OS slot-recycling path closes that.
  stm.retire(kUserA);
  EXPECT_FALSE(stm.has_token(kUserA));
  EXPECT_NE(stm.token(kUserA), victim)
      << "successor under the recycled pid must draw a fresh ST";
}

TEST(STManager, RetireBumpsMutationsOnlyWhenSlotWasLive) {
  STManager stm(1);
  const std::uint64_t m0 = stm.mutations();
  stm.retire(kUserA);  // never-filled slot: nothing to invalidate
  EXPECT_EQ(stm.mutations(), m0) << "no-op retire must not thrash memo-caches";
  (void)stm.token(kUserA);
  stm.retire(kUserA);
  EXPECT_GT(stm.mutations(), m0) << "memo-caches must drop the stale psi";
}

TEST(STManager, HasTokenProbesWithoutCreating) {
  STManager a(9), b(9);
  EXPECT_FALSE(a.has_token(kUserB));
  EXPECT_TRUE(a.has_token(kKernel)) << "kernel entity always exists";
  // The probe must not perturb the lazy PRNG draw order: both managers
  // still hand kUserA the same first token.
  EXPECT_EQ(a.token(kUserA), b.token(kUserA));
}

TEST(STManager, RetireNeverTouchesKernel) {
  STManager stm(1);
  const SecretToken k0 = stm.token(kKernel);
  stm.retire(kKernel);
  EXPECT_TRUE(stm.has_token(kKernel));
  EXPECT_EQ(stm.token(kKernel), k0);
}

TEST(STManager, ValidSlotsCountsLiveEntities) {
  STManager stm(1);
  EXPECT_EQ(stm.valid_slots(), 0u);
  (void)stm.token(kUserA);
  (void)stm.token(kUserB);
  EXPECT_EQ(stm.valid_slots(), 2u);
  stm.retire(kUserA);
  EXPECT_EQ(stm.valid_slots(), 1u);
}

// ------------------------------------------------------------- monitor ----

TEST(EventMonitor, FiresAtMispredictionThreshold) {
  STManager stm(1);
  EventMonitor mon(&stm, {.misprediction_threshold = 5, .eviction_threshold = 100});
  const SecretToken before = stm.token(kUserA);
  for (int i = 0; i < 4; ++i) mon.on_misprediction(kUserA, false);
  EXPECT_EQ(stm.token(kUserA), before) << "below threshold";
  mon.on_misprediction(kUserA, false);
  EXPECT_NE(stm.token(kUserA), before) << "threshold reached — ST rotated";
  EXPECT_EQ(mon.rerandomizations(), 1u);
}

TEST(EventMonitor, FiresAtEvictionThreshold) {
  STManager stm(1);
  EventMonitor mon(&stm, {.misprediction_threshold = 100, .eviction_threshold = 3});
  const SecretToken before = stm.token(kUserA);
  mon.on_btb_eviction(kUserA);
  mon.on_btb_eviction(kUserA);
  EXPECT_EQ(stm.token(kUserA), before);
  mon.on_btb_eviction(kUserA);
  EXPECT_NE(stm.token(kUserA), before);
}

TEST(EventMonitor, CountersReloadAfterFire) {
  STManager stm(1);
  EventMonitor mon(&stm, {.misprediction_threshold = 3, .eviction_threshold = 100});
  for (int fire = 0; fire < 4; ++fire) {
    for (int i = 0; i < 3; ++i) mon.on_misprediction(kUserA, false);
  }
  EXPECT_EQ(mon.rerandomizations(), 4u);
}

TEST(EventMonitor, CountersArePerEntity) {
  STManager stm(1);
  EventMonitor mon(&stm, {.misprediction_threshold = 3, .eviction_threshold = 100});
  mon.on_misprediction(kUserA, false);
  mon.on_misprediction(kUserA, false);
  mon.on_misprediction(kUserB, false);  // separate budget
  EXPECT_EQ(mon.rerandomizations(), 0u);
  EXPECT_EQ(mon.remaining(kUserA).misp, 1u);
  EXPECT_EQ(mon.remaining(kUserB).misp, 2u);
}

TEST(EventMonitor, SeparateTaggedCounterWhenConfigured) {
  STManager stm(1);
  EventMonitor mon(&stm, {.misprediction_threshold = 3, .eviction_threshold = 100,
                          .tagged_misprediction_threshold = 5});
  // Tagged mispredictions drain their own register (ST_TAGE designs).
  for (int i = 0; i < 4; ++i) mon.on_misprediction(kUserA, true);
  EXPECT_EQ(mon.rerandomizations(), 0u);
  EXPECT_EQ(mon.remaining(kUserA).misp, 3u) << "base counter untouched";
  mon.on_misprediction(kUserA, true);
  EXPECT_EQ(mon.rerandomizations(), 1u);
}

TEST(EventMonitor, TaggedFoldsIntoBaseWithoutSeparateRegister) {
  STManager stm(1);
  EventMonitor mon(&stm, {.misprediction_threshold = 3, .eviction_threshold = 100,
                          .tagged_misprediction_threshold = 0});
  // ST_SKLCond behaviour: every misprediction hits the single register —
  // which is why it re-randomizes more under SMT (paper §VII-B2).
  mon.on_misprediction(kUserA, true);
  mon.on_misprediction(kUserA, false);
  mon.on_misprediction(kUserA, true);
  EXPECT_EQ(mon.rerandomizations(), 1u);
}

TEST(EventMonitor, SaveRestoreRoundTripsRemaining) {
  STManager stm(1);
  EventMonitor mon(&stm, {.misprediction_threshold = 10, .eviction_threshold = 20});
  mon.on_misprediction(kUserA, false);
  mon.on_misprediction(kUserA, false);
  mon.on_btb_eviction(kUserA);
  const auto saved = mon.remaining(kUserA);
  EXPECT_EQ(saved.misp, 8u);
  EXPECT_EQ(saved.evict, 19u);
  // Another entity drains the slot's successor budget...
  for (int i = 0; i < 7; ++i) mon.on_misprediction(kUserA, false);
  // ...then the OS switches the original entity back in.
  mon.restore(kUserA, saved);
  EXPECT_EQ(mon.remaining(kUserA), saved) << "restored image must drain from 8";
  for (int i = 0; i < 7; ++i) mon.on_misprediction(kUserA, false);
  EXPECT_EQ(mon.rerandomizations(), 0u);
  mon.on_misprediction(kUserA, false);
  EXPECT_EQ(mon.rerandomizations(), 1u);
}

TEST(EventMonitor, PerSlotConfigOverridesReloads) {
  STManager stm(1);
  EventMonitor mon(&stm, {.misprediction_threshold = 100, .eviction_threshold = 100});
  // QoS: pid 1 gets an 8x stricter budget than the monitor-wide config.
  mon.set_config(kUserA, {.misprediction_threshold = 2, .eviction_threshold = 100});
  mon.on_misprediction(kUserA, false);
  mon.on_misprediction(kUserA, false);
  EXPECT_EQ(mon.rerandomizations(), 1u) << "strict per-slot threshold fired";
  mon.on_misprediction(kUserB, false);
  EXPECT_EQ(mon.remaining(kUserB).misp, 99u) << "other slots keep the global config";
  // The override also governs the post-fire reload.
  mon.on_misprediction(kUserA, false);
  mon.on_misprediction(kUserA, false);
  EXPECT_EQ(mon.rerandomizations(), 2u);
}

TEST(EventMonitor, RemainingFullMatchesReload) {
  const MonitorConfig plain{.misprediction_threshold = 7, .eviction_threshold = 9};
  const auto f = EventMonitor::Remaining::full(plain);
  EXPECT_EQ(f.misp, 7u);
  EXPECT_EQ(f.evict, 9u);
  EXPECT_EQ(f.tagged, ~std::uint64_t{0}) << "no tagged register: never fires";
  const MonitorConfig tagged{.misprediction_threshold = 7, .eviction_threshold = 9,
                             .tagged_misprediction_threshold = 5};
  EXPECT_EQ(EventMonitor::Remaining::full(tagged).tagged, 5u);
}

TEST(EventMonitor, FromDifficultyScalesThresholds) {
  const auto cfg1 = MonitorConfig::from_difficulty(0.1, false);
  EXPECT_EQ(cfg1.misprediction_threshold, 83'800u);
  EXPECT_EQ(cfg1.eviction_threshold, 53'000u);
  const auto cfg2 = MonitorConfig::from_difficulty(0.05, true);
  EXPECT_EQ(cfg2.misprediction_threshold, 41'900u);
  EXPECT_EQ(cfg2.eviction_threshold, 26'500u);
  EXPECT_EQ(cfg2.tagged_misprediction_threshold, cfg2.misprediction_threshold);
  // Even absurdly small r never reaches zero thresholds.
  const auto cfg3 = MonitorConfig::from_difficulty(1e-12, false);
  EXPECT_GE(cfg3.misprediction_threshold, 1u);
}

}  // namespace
}  // namespace stbpu::core
