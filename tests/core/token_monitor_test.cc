// STManager (secret tokens) and EventMonitor (re-randomization MSRs).
#include <gtest/gtest.h>

#include "core/monitor.h"
#include "core/secret_token.h"

namespace stbpu::core {
namespace {

const bpu::ExecContext kUserA{.pid = 1, .hart = 0, .kernel = false};
const bpu::ExecContext kUserB{.pid = 2, .hart = 0, .kernel = false};
const bpu::ExecContext kKernel{.pid = 1, .hart = 0, .kernel = true};

TEST(STManager, TokensAreStablePerEntity) {
  STManager stm(1);
  const SecretToken t1 = stm.token(kUserA);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(stm.token(kUserA), t1);
}

TEST(STManager, DistinctEntitiesGetDistinctTokens) {
  STManager stm(1);
  EXPECT_NE(stm.token(kUserA), stm.token(kUserB));
  EXPECT_NE(stm.token(kUserA), stm.token(kKernel));
}

TEST(STManager, KernelIsOneEntityAcrossProcesses) {
  STManager stm(1);
  bpu::ExecContext k2 = kKernel;
  k2.pid = 42;  // kernel running on behalf of another process
  EXPECT_EQ(stm.token(kKernel), stm.token(k2))
      << "the kernel is a single software entity with one ST";
}

TEST(STManager, RerandomizeChangesOnlyThatEntity) {
  STManager stm(1);
  const SecretToken a0 = stm.token(kUserA);
  const SecretToken b0 = stm.token(kUserB);
  const SecretToken k0 = stm.token(kKernel);
  stm.rerandomize(kUserA);
  EXPECT_NE(stm.token(kUserA), a0) << "re-randomized";
  EXPECT_EQ(stm.token(kUserB), b0) << "other entities keep their history";
  EXPECT_EQ(stm.token(kKernel), k0);
  EXPECT_EQ(stm.rerandomizations(), 1u);
}

TEST(STManager, RerandomizeKernel) {
  STManager stm(1);
  const SecretToken k0 = stm.token(kKernel);
  const SecretToken a0 = stm.token(kUserA);
  stm.rerandomize(kKernel);
  EXPECT_NE(stm.token(kKernel), k0);
  EXPECT_EQ(stm.token(kUserA), a0);
}

TEST(STManager, ShareGroupsUseOneToken) {
  STManager stm(1);
  stm.share(/*pid=*/5, /*leader=*/1);
  bpu::ExecContext worker{.pid = 5, .hart = 0, .kernel = false};
  EXPECT_EQ(stm.token(kUserA), stm.token(worker))
      << "OS-granted selective history sharing (paper §IV-A)";
  // Re-randomizing the leader rotates the whole group.
  const SecretToken before = stm.token(worker);
  stm.rerandomize(kUserA);
  EXPECT_NE(stm.token(worker), before);
  EXPECT_EQ(stm.token(worker), stm.token(kUserA));
}

TEST(STManager, SetTokenIsPrivilegedOverride) {
  STManager stm(1);
  stm.set_token(kUserA, {0x11, 0x22});
  EXPECT_EQ(stm.token(kUserA).psi, 0x11u);
  EXPECT_EQ(stm.token(kUserA).phi, 0x22u);
}

TEST(STManager, SeedsAreReproducible) {
  STManager a(77), b(77);
  EXPECT_EQ(a.token(kUserA), b.token(kUserA));
  EXPECT_EQ(a.token(kKernel), b.token(kKernel));
}

// ------------------------------------------------------------- monitor ----

TEST(EventMonitor, FiresAtMispredictionThreshold) {
  STManager stm(1);
  EventMonitor mon(&stm, {.misprediction_threshold = 5, .eviction_threshold = 100});
  const SecretToken before = stm.token(kUserA);
  for (int i = 0; i < 4; ++i) mon.on_misprediction(kUserA, false);
  EXPECT_EQ(stm.token(kUserA), before) << "below threshold";
  mon.on_misprediction(kUserA, false);
  EXPECT_NE(stm.token(kUserA), before) << "threshold reached — ST rotated";
  EXPECT_EQ(mon.rerandomizations(), 1u);
}

TEST(EventMonitor, FiresAtEvictionThreshold) {
  STManager stm(1);
  EventMonitor mon(&stm, {.misprediction_threshold = 100, .eviction_threshold = 3});
  const SecretToken before = stm.token(kUserA);
  mon.on_btb_eviction(kUserA);
  mon.on_btb_eviction(kUserA);
  EXPECT_EQ(stm.token(kUserA), before);
  mon.on_btb_eviction(kUserA);
  EXPECT_NE(stm.token(kUserA), before);
}

TEST(EventMonitor, CountersReloadAfterFire) {
  STManager stm(1);
  EventMonitor mon(&stm, {.misprediction_threshold = 3, .eviction_threshold = 100});
  for (int fire = 0; fire < 4; ++fire) {
    for (int i = 0; i < 3; ++i) mon.on_misprediction(kUserA, false);
  }
  EXPECT_EQ(mon.rerandomizations(), 4u);
}

TEST(EventMonitor, CountersArePerEntity) {
  STManager stm(1);
  EventMonitor mon(&stm, {.misprediction_threshold = 3, .eviction_threshold = 100});
  mon.on_misprediction(kUserA, false);
  mon.on_misprediction(kUserA, false);
  mon.on_misprediction(kUserB, false);  // separate budget
  EXPECT_EQ(mon.rerandomizations(), 0u);
  EXPECT_EQ(mon.remaining(kUserA).misp, 1u);
  EXPECT_EQ(mon.remaining(kUserB).misp, 2u);
}

TEST(EventMonitor, SeparateTaggedCounterWhenConfigured) {
  STManager stm(1);
  EventMonitor mon(&stm, {.misprediction_threshold = 3, .eviction_threshold = 100,
                          .tagged_misprediction_threshold = 5});
  // Tagged mispredictions drain their own register (ST_TAGE designs).
  for (int i = 0; i < 4; ++i) mon.on_misprediction(kUserA, true);
  EXPECT_EQ(mon.rerandomizations(), 0u);
  EXPECT_EQ(mon.remaining(kUserA).misp, 3u) << "base counter untouched";
  mon.on_misprediction(kUserA, true);
  EXPECT_EQ(mon.rerandomizations(), 1u);
}

TEST(EventMonitor, TaggedFoldsIntoBaseWithoutSeparateRegister) {
  STManager stm(1);
  EventMonitor mon(&stm, {.misprediction_threshold = 3, .eviction_threshold = 100,
                          .tagged_misprediction_threshold = 0});
  // ST_SKLCond behaviour: every misprediction hits the single register —
  // which is why it re-randomizes more under SMT (paper §VII-B2).
  mon.on_misprediction(kUserA, true);
  mon.on_misprediction(kUserA, false);
  mon.on_misprediction(kUserA, true);
  EXPECT_EQ(mon.rerandomizations(), 1u);
}

TEST(EventMonitor, FromDifficultyScalesThresholds) {
  const auto cfg1 = MonitorConfig::from_difficulty(0.1, false);
  EXPECT_EQ(cfg1.misprediction_threshold, 83'800u);
  EXPECT_EQ(cfg1.eviction_threshold, 53'000u);
  const auto cfg2 = MonitorConfig::from_difficulty(0.05, true);
  EXPECT_EQ(cfg2.misprediction_threshold, 41'900u);
  EXPECT_EQ(cfg2.eviction_threshold, 26'500u);
  EXPECT_EQ(cfg2.tagged_misprediction_threshold, cfg2.misprediction_threshold);
  // Even absurdly small r never reaches zero thresholds.
  const auto cfg3 = MonitorConfig::from_difficulty(1e-12, false);
  EXPECT_GE(cfg3.misprediction_threshold, 1u);
}

}  // namespace
}  // namespace stbpu::core
