// Keyed remapping functions R1..R4/Rt/Rp: determinism, output geometry
// (Table II), uniformity (C2) and avalanche (C3) — the same criteria the
// §V generator enforces — plus the security-critical properties: ψ
// sensitivity and full-48-bit address consumption.
#include "core/remap.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace stbpu::core {
namespace {

TEST(Remap, Deterministic) {
  for (std::uint64_t ip : {0x0ULL, 0x1234'5678'9ABCULL, 0xFFFF'FFFF'FFFFULL}) {
    EXPECT_EQ(Remapper::r1(0xABC, ip), Remapper::r1(0xABC, ip));
    EXPECT_EQ(Remapper::r3(0xABC, ip), Remapper::r3(0xABC, ip));
    EXPECT_EQ(Remapper::r4(0xABC, ip, 0x55), Remapper::r4(0xABC, ip, 0x55));
    EXPECT_EQ(Remapper::rp(0xABC, ip, 10), Remapper::rp(0xABC, ip, 10));
  }
}

TEST(Remap, OutputGeometryMatchesTable2) {
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t ip = rng() & bpu::kVirtualAddressMask;
    const std::uint32_t psi = static_cast<std::uint32_t>(rng());
    const auto r1 = Remapper::r1(psi, ip);
    EXPECT_LT(r1.set, 1u << 9);
    EXPECT_LT(r1.tag, 1u << 8);
    EXPECT_LT(r1.offset, 1u << 5);
    EXPECT_LT(Remapper::r2(psi, rng()), 1u << 8);
    EXPECT_LT(Remapper::r3(psi, ip), 1u << 14);
    EXPECT_LT(Remapper::r4(psi, ip, rng()), 1u << 14);
    EXPECT_LT(Remapper::rt_index(psi, ip, rng(), 3, 13), 1u << 13);
    EXPECT_LT(Remapper::rt_tag(psi, ip, rng(), 3, 12), 1u << 12);
    EXPECT_LT(Remapper::rp(psi, ip, 10), 1u << 10);
  }
}

TEST(Remap, PsiChangesMapping) {
  // Re-randomizing ψ must relocate essentially every branch.
  util::Xoshiro256 rng(2);
  unsigned same = 0;
  const unsigned n = 2000;
  for (unsigned i = 0; i < n; ++i) {
    const std::uint64_t ip = rng() & bpu::kVirtualAddressMask;
    if (Remapper::r3(0x1111'1111, ip) == Remapper::r3(0x2222'2222, ip)) ++same;
  }
  // Chance collision rate is 2^-14.
  EXPECT_LT(same, 5u);
}

TEST(Remap, ConsumesFull48BitAddress) {
  // Same-address-space aliases (+2^30) must NOT collide — this is the
  // property that defeats transient trojans [78] (§IV-B).
  util::Xoshiro256 rng(3);
  unsigned collide_r1 = 0, collide_r3 = 0;
  const unsigned n = 2000;
  for (unsigned i = 0; i < n; ++i) {
    const std::uint64_t ip = rng() & (bpu::kVirtualAddressMask >> 1);
    const std::uint64_t alias = ip + (1ULL << 30);
    if (Remapper::r1(0xABC, ip) == Remapper::r1(0xABC, alias)) ++collide_r1;
    if (Remapper::r3(0xABC, ip) == Remapper::r3(0xABC, alias)) ++collide_r3;
  }
  EXPECT_LT(collide_r1, 3u);
  EXPECT_LT(collide_r3, 5u);
}

TEST(Remap, FunctionsAreMutuallyIndependent) {
  // R3 and Rp (both 80→k) must not be correlated projections of one
  // another: equal low bits should occur at chance rate only.
  util::Xoshiro256 rng(4);
  unsigned matches = 0;
  const unsigned n = 4000;
  for (unsigned i = 0; i < n; ++i) {
    const std::uint64_t ip = rng() & bpu::kVirtualAddressMask;
    matches += (Remapper::r3(0x77, ip) & 0x3FF) == Remapper::rp(0x77, ip, 10);
  }
  EXPECT_NEAR(static_cast<double>(matches) / n, 1.0 / 1024, 0.01);
}

TEST(Remap, UniformityOverContiguousCode) {
  // C2 on the *hard* input distribution: contiguous stride-16 branch
  // addresses (the regression that motivated the sigma diffusion layers).
  constexpr unsigned kSites = 8192;
  std::vector<double> bins(1u << 9, 0.0);
  for (unsigned i = 0; i < kSites; ++i) {
    bins[Remapper::r1(0xDEADBEEF, 0x0000'1000'0000ULL + i * 16).set] += 1.0;
  }
  const double ideal_cv = 1.0 / std::sqrt(static_cast<double>(kSites) / bins.size());
  EXPECT_LT(util::coefficient_of_variation(bins), 1.35 * ideal_cv);
}

TEST(Remap, UniformityOverRandomInputs) {
  util::Xoshiro256 rng(5);
  std::vector<double> bins(1u << 10, 0.0);
  constexpr unsigned kSamples = 1u << 17;
  for (unsigned i = 0; i < kSamples; ++i) {
    bins[Remapper::r3(0x1357'9BDF, rng() & bpu::kVirtualAddressMask) & 0x3FF] += 1.0;
  }
  const double ideal_cv = 1.0 / std::sqrt(static_cast<double>(kSamples) / bins.size());
  EXPECT_LT(util::coefficient_of_variation(bins), 1.25 * ideal_cv);
}

TEST(Remap, AvalancheOnAddressBits) {
  // C3: flipping any single address bit flips ~50% of R3's output bits.
  util::Xoshiro256 rng(6);
  constexpr unsigned kLambdas = 400;
  std::vector<double> rates;
  for (unsigned bit = 0; bit < 48; ++bit) {
    double flips = 0;
    for (unsigned i = 0; i < kLambdas; ++i) {
      const std::uint64_t ip = rng() & bpu::kVirtualAddressMask;
      const auto a = Remapper::r3(0x2468'ACE0, ip);
      const auto b = Remapper::r3(0x2468'ACE0, ip ^ (1ULL << bit));
      flips += util::hamming(a, b);
    }
    rates.push_back(flips / kLambdas / 14.0);
  }
  for (unsigned bit = 0; bit < 48; ++bit) {
    EXPECT_GT(rates[bit], 0.35) << "input bit " << bit << " barely diffuses";
    EXPECT_LT(rates[bit], 0.65) << "input bit " << bit;
  }
  EXPECT_NEAR(util::mean(rates), 0.5, 0.03);
}

TEST(Remap, AvalancheOnKeyBits) {
  // Flipping any ψ bit must also avalanche (attacker cannot learn ψ
  // bit-by-bit from output deltas).
  util::Xoshiro256 rng(7);
  for (unsigned bit = 0; bit < 32; ++bit) {
    double flips = 0;
    constexpr unsigned kLambdas = 300;
    for (unsigned i = 0; i < kLambdas; ++i) {
      const std::uint64_t ip = rng() & bpu::kVirtualAddressMask;
      const std::uint32_t psi = static_cast<std::uint32_t>(rng());
      flips += util::hamming(Remapper::r3(psi, ip),
                             Remapper::r3(psi ^ (1u << bit), ip));
    }
    EXPECT_NEAR(flips / kLambdas / 14.0, 0.5, 0.15) << "key bit " << bit;
  }
}

TEST(Remap, ScaledVariantHonoursGeometry) {
  util::Xoshiro256 rng(8);
  for (int i = 0; i < 500; ++i) {
    const auto idx =
        Remapper::r1_scaled(static_cast<std::uint32_t>(rng()), rng(), 4, 3, 1);
    EXPECT_LT(idx.set, 16u);
    EXPECT_LT(idx.tag, 8u);
    EXPECT_LT(idx.offset, 2u);
  }
}

TEST(Remap, TageTablesDecorrelated) {
  // Rt for different table ids must produce independent indices.
  util::Xoshiro256 rng(9);
  unsigned same = 0;
  const unsigned n = 4000;
  for (unsigned i = 0; i < n; ++i) {
    const std::uint64_t ip = rng() & bpu::kVirtualAddressMask;
    same += Remapper::rt_index(0x99, ip, 0x1234, 0, 10) ==
            Remapper::rt_index(0x99, ip, 0x1234, 1, 10);
  }
  EXPECT_NEAR(static_cast<double>(same) / n, 1.0 / 1024, 0.01);
}

}  // namespace
}  // namespace stbpu::core
