// Bit-identity properties of the batched mix kernels: every rendering of
// the substitution layers (byte LUT, 16-bit double-byte LUT) and every
// lane count of detail::mix_batch must reproduce scalar detail::mix
// exactly, over random and adversarial inputs and across ψ re-keys —
// that identity is what lets the remap cache fill entries from batched
// kernels without the equivalence tests ever noticing.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "core/remap.h"
#include "util/rng.h"

namespace stbpu::core {
namespace {

using detail::kPresentByteLut;
using detail::kPresentLut16;
using detail::kSpongentByteLut;
using detail::kSpongentLut16;

std::vector<std::uint64_t> adversarial_words() {
  return {0x0ULL,
          ~0x0ULL,
          0x0101010101010101ULL,
          0x8080808080808080ULL,
          0xAAAAAAAAAAAAAAAAULL,
          0x5555555555555555ULL,
          0x00000000FFFFFFFFULL,
          0xFFFFFFFF00000000ULL,
          0x0000FFFF0000FFFFULL,
          0xF0F0F0F0F0F0F0F0ULL,
          0x0123456789ABCDEFULL,
          0xFEDCBA9876543210ULL};
}

TEST(MixBatch, Lut16SboxLayerMatchesByteLut) {
  util::Xoshiro256 rng(0x51B0);
  auto check = [](std::uint64_t x) {
    EXPECT_EQ(detail::sbox_layer16<kPresentLut16>(x),
              detail::sbox_layer<kPresentByteLut>(x))
        << std::hex << x;
    EXPECT_EQ(detail::sbox_layer16<kSpongentLut16>(x),
              detail::sbox_layer<kSpongentByteLut>(x))
        << std::hex << x;
  };
  for (const std::uint64_t x : adversarial_words()) check(x);
  for (int i = 0; i < 20000; ++i) check(rng());
}

TEST(MixBatch, Lut16TableIsTheByteTableOnBothHalves) {
  // Structural identity, checked exhaustively: entry i of the wide table
  // is the byte LUT applied independently to i's two bytes.
  for (unsigned i = 0; i < 65536; ++i) {
    const std::uint16_t expect = static_cast<std::uint16_t>(
        kPresentByteLut[i & 0xFF] | (unsigned{kPresentByteLut[i >> 8]} << 8));
    ASSERT_EQ(kPresentLut16[i], expect) << i;
    const std::uint16_t expect_s = static_cast<std::uint16_t>(
        kSpongentByteLut[i & 0xFF] | (unsigned{kSpongentByteLut[i >> 8]} << 8));
    ASSERT_EQ(kSpongentLut16[i], expect_s) << i;
  }
}

template <unsigned N, bool UseLut16>
void expect_lanes_match_scalar(std::uint32_t psi, std::uint64_t tweak,
                               const std::uint64_t* lo, const std::uint64_t* hi) {
  std::uint64_t out[N];
  detail::mix_batch<N, UseLut16>(lo, hi, psi, tweak, out);
  for (unsigned i = 0; i < N; ++i) {
    EXPECT_EQ(out[i], detail::mix(lo[i], hi[i], psi, tweak))
        << "lane " << i << " of N=" << N << " lut16=" << UseLut16;
  }
  // The production dispatch entry point (AVX2 nibble-shuffle kernel when
  // the host supports it, byte-LUT lanes otherwise) must match too.
  std::uint64_t dout[N];
  detail::mix_batch_dispatch<N>(lo, hi, psi, tweak, dout);
  for (unsigned i = 0; i < N; ++i) {
    EXPECT_EQ(dout[i], detail::mix(lo[i], hi[i], psi, tweak))
        << "dispatch lane " << i << " of N=" << N
        << " avx2=" << detail::mix_avx2_available();
  }
}

template <unsigned N>
void run_property(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::uint64_t lo[N], hi[N];

  // Random inputs under random keys.
  for (int round = 0; round < 2000; ++round) {
    const std::uint32_t psi = static_cast<std::uint32_t>(rng());
    const std::uint64_t tweak = rng();
    for (unsigned i = 0; i < N; ++i) {
      lo[i] = rng();
      hi[i] = rng();
    }
    expect_lanes_match_scalar<N, false>(psi, tweak, lo, hi);
    expect_lanes_match_scalar<N, true>(psi, tweak, lo, hi);
  }

  // Adversarial lane contents: all-zeros, all-ones, and every adversarial
  // word replicated across lanes, under the real per-function tweaks.
  const auto words = adversarial_words();
  for (const std::uint64_t w : words) {
    for (unsigned i = 0; i < N; ++i) {
      lo[i] = w;
      hi[i] = words[(i + 1) % words.size()];
    }
    for (const std::uint64_t tweak :
         {Remapper::kTweakR1, Remapper::kTweakR4, Remapper::kTweakRp}) {
      expect_lanes_match_scalar<N, false>(0u, tweak, lo, hi);
      expect_lanes_match_scalar<N, true>(0u, tweak, lo, hi);
      expect_lanes_match_scalar<N, false>(~0u, tweak, lo, hi);
      expect_lanes_match_scalar<N, true>(~0u, tweak, lo, hi);
    }
  }

  // ψ re-key: the same lane inputs under two different keys must track the
  // scalar function under each key independently (no key state leaks
  // between invocations of the kernel).
  for (unsigned i = 0; i < N; ++i) {
    lo[i] = rng();
    hi[i] = rng();
  }
  const std::uint32_t psi_a = static_cast<std::uint32_t>(rng());
  const std::uint32_t psi_b = ~psi_a;
  expect_lanes_match_scalar<N, true>(psi_a, Remapper::kTweakR4, lo, hi);
  expect_lanes_match_scalar<N, true>(psi_b, Remapper::kTweakR4, lo, hi);
  expect_lanes_match_scalar<N, false>(psi_a, Remapper::kTweakR4, lo, hi);
  expect_lanes_match_scalar<N, false>(psi_b, Remapper::kTweakR4, lo, hi);
}

TEST(MixBatch, Lanes1MatchScalar) { run_property<1>(0xA1); }
TEST(MixBatch, Lanes4MatchScalar) { run_property<4>(0xA4); }
TEST(MixBatch, Lanes8MatchScalar) { run_property<8>(0xA8); }

TEST(MixBatch, RemapperHelpersMatchScalarFunctions) {
  // The from_mix extraction helpers must reproduce the public R functions
  // when fed the function's own mix — the invariant the batch fill path
  // (core/remap_cache.h) rests on.
  util::Xoshiro256 rng(0xBEE5);
  for (int i = 0; i < 5000; ++i) {
    const std::uint32_t psi = static_cast<std::uint32_t>(rng());
    const std::uint64_t ip = rng() & bpu::kVirtualAddressMask;
    const std::uint64_t ghr = rng();

    const std::uint64_t m1 = detail::mix(ip, 0, psi, Remapper::kTweakR1);
    EXPECT_EQ(Remapper::r1_from_mix(m1), Remapper::r1(psi, ip));

    const std::uint64_t m4 =
        detail::mix(ip, util::bits(ghr, 0, Remapper::kGhrBitsUsed), psi,
                    Remapper::kTweakR4);
    EXPECT_EQ(Remapper::pht_from_mix(m4), Remapper::r4(psi, ip, ghr));

    const std::uint64_t mp = detail::mix(ip, 0, psi, Remapper::kTweakRp);
    EXPECT_EQ(Remapper::rp_from_mix(mp, 10), Remapper::rp(psi, ip, 10));
  }
}

}  // namespace
}  // namespace stbpu::core
