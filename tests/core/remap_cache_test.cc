// Remap memo-cache: hits must be bit-identical to direct Remapper calls,
// and a ψ re-key or context change must never let a stale value escape —
// entries are ψ-tagged and the cache watches STManager mutations, so
// invalidation is observable through both the stats and the values.
#include "core/remap_cache.h"

#include <gtest/gtest.h>

#include "core/remap.h"
#include "core/secret_token.h"
#include "core/stbpu_mapping.h"
#include "util/rng.h"

namespace stbpu::core {
namespace {

const bpu::ExecContext kUser{.pid = 7, .hart = 0, .kernel = false};
const bpu::ExecContext kOther{.pid = 9, .hart = 1, .kernel = false};
const bpu::ExecContext kKernel{.pid = 7, .hart = 0, .kernel = true};

class RemapCacheTest : public ::testing::Test {
 protected:
  STManager stm_{0xFEED};
  CachedStbpuMapping cache_{&stm_};
};

TEST_F(RemapCacheTest, HitsAreBitIdenticalToDirectRemapperCalls) {
  util::Xoshiro256 rng(42);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t ip = rng() & bpu::kVirtualAddressMask;
    const std::uint64_t ghr = rng();
    const std::uint64_t fold = rng() & ((std::uint64_t{1} << 56) - 1);
    const unsigned table = static_cast<unsigned>(rng() & 7);
    const std::uint32_t psi = stm_.token(kUser).psi;

    // First call fills, second call hits; both must equal the direct call.
    for (int rep = 0; rep < 2; ++rep) {
      EXPECT_EQ(cache_.btb_mode1(ip, kUser), Remapper::r1(psi, ip));
      EXPECT_EQ(cache_.btb_mode2_tag(ghr, kUser), Remapper::r2(psi, ghr));
      EXPECT_EQ(cache_.pht_index_1level(ip, kUser), Remapper::r3(psi, ip));
      EXPECT_EQ(cache_.pht_index_2level(ip, ghr, kUser), Remapper::r4(psi, ip, ghr));
      EXPECT_EQ(cache_.tage_index(ip, fold, table, 10, kUser),
                Remapper::rt_index(psi, ip, fold, table, 10));
      EXPECT_EQ(cache_.tage_tag(ip, fold, table, 8, kUser),
                Remapper::rt_tag(psi, ip, fold, table, 8));
      EXPECT_EQ(cache_.perceptron_row(ip, 10, kUser), Remapper::rp(psi, ip, 10));
      const auto pair = cache_.pht_indexes(ip, ghr, kUser);
      EXPECT_EQ(pair.i1, Remapper::r3(psi, ip));
      EXPECT_EQ(pair.i2, Remapper::r4(psi, ip, ghr));
    }
  }
  EXPECT_GT(cache_.stats().hits, 0u);
}

TEST_F(RemapCacheTest, RepeatLookupsHit) {
  const std::uint64_t ip = 0x1234'5678'9ABCULL;
  (void)cache_.btb_mode1(ip, kUser);  // fill
  const auto misses_after_fill = cache_.stats().misses;
  for (int i = 0; i < 100; ++i) (void)cache_.btb_mode1(ip, kUser);
  EXPECT_EQ(cache_.stats().misses, misses_after_fill) << "repeat lookups must hit";
  EXPECT_GE(cache_.stats().hits, 100u);
}

TEST_F(RemapCacheTest, PsiRekeyInvalidatesEveryCachedEntry) {
  const std::uint64_t ip = 0xA5A5'0000'1111ULL;
  const std::uint32_t psi_before = stm_.token(kUser).psi;
  const auto before = cache_.btb_mode1(ip, kUser);
  EXPECT_EQ(before, Remapper::r1(psi_before, ip));

  stm_.rerandomize(kUser);
  const auto inv_before = cache_.stats().invalidations;

  // The next lookup observes the mutation, bumps the generation (emptying
  // every entry) and recomputes under the fresh ψ.
  const std::uint32_t psi_after = stm_.token(kUser).psi;
  ASSERT_NE(psi_before, psi_after);
  const auto misses_before = cache_.stats().misses;
  const auto after = cache_.btb_mode1(ip, kUser);
  EXPECT_EQ(after, Remapper::r1(psi_after, ip));
  EXPECT_NE(after, before) << "fresh psi must remap the branch";
  EXPECT_GT(cache_.stats().invalidations, inv_before);
  EXPECT_GT(cache_.stats().misses, misses_before) << "old entry must not be served";
}

TEST_F(RemapCacheTest, ExplicitTokenWriteInvalidates) {
  const std::uint64_t ip = 0xBEEF'0000'2222ULL;
  (void)cache_.btb_mode1(ip, kUser);
  stm_.set_token(kUser, SecretToken{.psi = 0x1234'5678, .phi = 0x9ABC'DEF0});
  EXPECT_EQ(cache_.btb_mode1(ip, kUser), Remapper::r1(0x1234'5678, ip));
  EXPECT_EQ(cache_.encode_target(0xCAFE, kUser), (0xCAFEULL ^ 0x9ABC'DEF0ULL));
}

TEST_F(RemapCacheTest, ContextSwitchNeverServesStaleValues) {
  const std::uint64_t ip = 0x0F0F'3333'4444ULL;
  // Interleave three entities (user, other-hart user, kernel) at the same
  // branch address: each must always see its own ψ's mapping.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(cache_.btb_mode1(ip, kUser), Remapper::r1(stm_.token(kUser).psi, ip));
    EXPECT_EQ(cache_.btb_mode1(ip, kOther), Remapper::r1(stm_.token(kOther).psi, ip));
    EXPECT_EQ(cache_.btb_mode1(ip, kKernel), Remapper::r1(stm_.token(kKernel).psi, ip));
  }
  // Distinct ψ per entity ⇒ distinct mappings (with overwhelming probability
  // for these seeds) — proves no cross-entity reuse happened.
  EXPECT_NE(cache_.btb_mode1(ip, kUser), cache_.btb_mode1(ip, kKernel));
}

TEST_F(RemapCacheTest, InvalidateAllEmptiesTheCache) {
  const std::uint64_t ip = 0x7777'8888'9999ULL;
  (void)cache_.pht_index_1level(ip, kUser);
  (void)cache_.pht_index_1level(ip, kUser);  // hit
  const auto hits = cache_.stats().hits;
  ASSERT_GT(hits, 0u);

  cache_.invalidate_all();
  const auto misses = cache_.stats().misses;
  (void)cache_.pht_index_1level(ip, kUser);
  EXPECT_GT(cache_.stats().misses, misses) << "entry must be gone after invalidate_all";
  // Value still bit-identical after refill.
  EXPECT_EQ(cache_.pht_index_1level(ip, kUser),
            Remapper::r3(stm_.token(kUser).psi, ip));
}

TEST_F(RemapCacheTest, HartSwitchDoesNotChangeValues) {
  // ψ is per-entity, not per-hart: the same pid on the other hart maps
  // identically (SMT interleaving needs no flushes for correctness).
  const std::uint64_t ip = 0x1111'2222'3333ULL;
  bpu::ExecContext hart0 = kUser;
  bpu::ExecContext hart1 = kUser;
  hart1.hart = 1;
  EXPECT_EQ(cache_.btb_mode1(ip, hart0), cache_.btb_mode1(ip, hart1));
}

TEST_F(RemapCacheTest, GenerationWraparoundNeverServesStaleValues) {
  // The generation tag is a u32 and 0 is the never-filled sentinel. Park
  // the counter one step below the wrap: the next invalidate_all must
  // hard-clear instead of wrapping onto 0 — otherwise every live entry
  // (stamped 0xFFFFFFFF) would read as filled-at-sentinel and, worse, a
  // second wrap could collide with surviving stamps from 4G bumps ago.
  cache_.debug_set_generation(0xFFFF'FFFFu);
  const std::uint64_t ip = 0x5151'6262'7373ULL;
  const std::uint32_t psi_before = stm_.token(kUser).psi;
  EXPECT_EQ(cache_.btb_mode1(ip, kUser), Remapper::r1(psi_before, ip));  // fill

  stm_.set_token(kUser, SecretToken{.psi = 0x0BAD'F00D, .phi = 0});
  const auto misses = cache_.stats().misses;
  // The mutation-triggered invalidate_all wraps the counter: generation
  // restarts at 1 and the filled entry must be gone, not resurrected.
  EXPECT_EQ(cache_.btb_mode1(ip, kUser), Remapper::r1(0x0BAD'F00D, ip));
  EXPECT_EQ(cache_.debug_generation(), 1u);
  EXPECT_GT(cache_.stats().misses, misses) << "wrapped entry must not be served";

  // And the sentinel discipline holds after the wrap: refill + hit works.
  const auto hits = cache_.stats().hits;
  EXPECT_EQ(cache_.btb_mode1(ip, kUser), Remapper::r1(0x0BAD'F00D, ip));
  EXPECT_GT(cache_.stats().hits, hits);
}

TEST_F(RemapCacheTest, MatchesUncachedStbpuMappingLogic) {
  // The cache and the uncached logic see the same STManager: every function
  // must agree on every input, including the φ codec.
  STManager stm2{0xFEED};
  StbpuMappingLogic plain{&stm2};
  util::Xoshiro256 rng(99);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t ip = rng() & bpu::kVirtualAddressMask;
    const std::uint64_t ghr = rng();
    EXPECT_EQ(cache_.btb_mode1(ip, kUser), plain.btb_mode1(ip, kUser));
    EXPECT_EQ(cache_.pht_index_2level(ip, ghr, kUser),
              plain.pht_index_2level(ip, ghr, kUser));
    EXPECT_EQ(cache_.encode_target(ip, kUser), plain.encode_target(ip, kUser));
    EXPECT_EQ(cache_.decode_target(ip, ghr, kUser), plain.decode_target(ip, ghr, kUser));
  }
}

}  // namespace
}  // namespace stbpu::core
