// StbpuMapping: the integration of tokens + remaps + φ codec. The isolation
// properties here are the paper's core security argument.
#include "core/stbpu_mapping.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace stbpu::core {
namespace {

const bpu::ExecContext kUserA{.pid = 1, .hart = 0, .kernel = false};
const bpu::ExecContext kUserB{.pid = 2, .hart = 0, .kernel = false};
const bpu::ExecContext kKernel{.pid = 1, .hart = 0, .kernel = true};

class StbpuMappingTest : public ::testing::Test {
 protected:
  StbpuMappingTest() : stm_(1234), map_(&stm_) {}
  STManager stm_;
  StbpuMapping map_;
};

TEST_F(StbpuMappingTest, StablePerEntity) {
  const std::uint64_t ip = 0x0000'2345'6780ULL;
  EXPECT_EQ(map_.btb_mode1(ip, kUserA), map_.btb_mode1(ip, kUserA));
  EXPECT_EQ(map_.pht_index_1level(ip, kUserA), map_.pht_index_1level(ip, kUserA));
}

TEST_F(StbpuMappingTest, EntitiesMapDifferently) {
  // The defining property: no deterministic cross-entity collisions.
  util::Xoshiro256 rng(9);
  unsigned same_set = 0, same_full = 0, same_pht = 0;
  const unsigned n = 2000;
  for (unsigned i = 0; i < n; ++i) {
    const std::uint64_t ip = rng() & bpu::kVirtualAddressMask;
    const auto a = map_.btb_mode1(ip, kUserA);
    const auto b = map_.btb_mode1(ip, kUserB);
    same_set += a.set == b.set;
    same_full += a == b;
    same_pht += map_.pht_index_1level(ip, kUserA) == map_.pht_index_1level(ip, kUserB);
  }
  EXPECT_NEAR(static_cast<double>(same_set) / n, 1.0 / 512, 0.01)
      << "set agreement at chance rate only";
  EXPECT_EQ(same_full, 0u) << "full (set,tag,offset) collisions ~ 2^-22";
  EXPECT_LT(same_pht, 5u);
}

TEST_F(StbpuMappingTest, KernelIsolatedFromItsOwnProcess) {
  util::Xoshiro256 rng(10);
  unsigned same = 0;
  const unsigned n = 2000;
  for (unsigned i = 0; i < n; ++i) {
    const std::uint64_t ip = rng() & bpu::kVirtualAddressMask;
    same += map_.btb_mode1(ip, kUserA) == map_.btb_mode1(ip, kKernel);
  }
  EXPECT_EQ(same, 0u) << "user/kernel share the address space but not the ST";
}

TEST_F(StbpuMappingTest, CodecRoundTripsWithinEntity) {
  const std::uint64_t branch = 0x0000'2345'6780ULL;
  for (std::uint64_t target : {0x0000'2345'9000ULL, 0x0000'2300'0004ULL}) {
    const auto enc = map_.encode_target(target, kUserA);
    EXPECT_EQ(map_.decode_target(branch, enc, kUserA), target);
  }
}

TEST_F(StbpuMappingTest, StoredTargetsAreEncrypted) {
  const std::uint64_t target = 0x0000'2345'9000ULL;
  const auto enc = map_.encode_target(target, kUserA);
  EXPECT_NE(enc, target & 0xFFFF'FFFFULL) << "φ must actually encrypt";
}

TEST_F(StbpuMappingTest, CrossEntityDecodeYieldsGarbage) {
  // The Spectre v2 countermeasure: a payload stored under A's φ decodes to
  // a useless address under B's φ.
  const std::uint64_t branch = 0x0000'2345'6780ULL;
  const std::uint64_t target = 0x0000'2345'9000ULL;
  const auto enc = map_.encode_target(target, kUserA);
  const auto leaked = map_.decode_target(branch, enc, kUserB);
  EXPECT_NE(leaked, target);
  // The garbage is exactly phi_a ^ phi_b off — uniformly random to B.
  const std::uint32_t expected_xor =
      stm_.token(kUserA).phi ^ stm_.token(kUserB).phi;
  EXPECT_EQ((leaked ^ target) & 0xFFFF'FFFFULL, expected_xor);
}

TEST_F(StbpuMappingTest, RerandomizationInvalidatesMapping) {
  const std::uint64_t ip = 0x0000'2345'6780ULL;
  const auto before = map_.btb_mode1(ip, kUserA);
  const auto pht_before = map_.pht_index_1level(ip, kUserA);
  stm_.rerandomize(kUserA);
  EXPECT_NE(map_.btb_mode1(ip, kUserA), before)
      << "old entries become unreachable after ST rotation";
  EXPECT_NE(map_.pht_index_1level(ip, kUserA), pht_before);
}

TEST_F(StbpuMappingTest, RerandomizationPreservesOtherEntities) {
  const std::uint64_t ip = 0x0000'2345'6780ULL;
  const auto b_before = map_.btb_mode1(ip, kUserB);
  stm_.rerandomize(kUserA);
  EXPECT_EQ(map_.btb_mode1(ip, kUserB), b_before)
      << "the key difference from flushing: others keep their history";
}

TEST_F(StbpuMappingTest, SharedGroupMapsIdentically) {
  stm_.share(/*pid=*/7, /*leader=*/1);
  const bpu::ExecContext worker{.pid = 7, .hart = 0, .kernel = false};
  const std::uint64_t ip = 0x0000'2345'6780ULL;
  EXPECT_EQ(map_.btb_mode1(ip, kUserA), map_.btb_mode1(ip, worker));
  const auto enc = map_.encode_target(0x1234, kUserA);
  EXPECT_EQ(map_.decode_target(ip, enc, worker), 0x1234u)
      << "shared ST ⇒ shared usable history";
}

TEST_F(StbpuMappingTest, Mode2TagKeyedByEntityAndBhb) {
  EXPECT_NE(map_.btb_mode2_tag(0x1234, kUserA), map_.btb_mode2_tag(0x4321, kUserA));
  EXPECT_NE(map_.btb_mode2_tag(0x1234, kUserA), map_.btb_mode2_tag(0x1234, kUserB));
}

}  // namespace
}  // namespace stbpu::core
