// CibpuMapping: conflict-invisible keyed indexing. The defining property is
// that no BTB entry installed by one security domain can ever produce a tag
// match for another — plus the arm's honest weakness, plaintext payloads.
#include "core/cibpu_mapping.h"

#include <gtest/gtest.h>

#include <vector>

#include "bpu/types.h"
#include "util/rng.h"

namespace stbpu::core {
namespace {

const bpu::ExecContext kUserA{.pid = 1, .hart = 0, .kernel = false};
const bpu::ExecContext kUserB{.pid = 2, .hart = 0, .kernel = false};
const bpu::ExecContext kKernelA{.pid = 1, .hart = 0, .kernel = true};

class CibpuMappingTest : public ::testing::Test {
 protected:
  CibpuMappingTest() : stm_(1234), map_(&stm_) {}
  STManager stm_;
  CibpuMappingLogic map_;
};

TEST_F(CibpuMappingTest, FingerprintInjectiveOverAllDomains) {
  // The fingerprint is the identity on (pid, privilege): every one of the
  // 2^17 domains gets a distinct value, so the "structurally impossible"
  // claim is exact, not probabilistic.
  std::vector<bool> seen(1u << CibpuMappingLogic::kDomainFingerprintBits, false);
  for (std::uint32_t pid = 0; pid < STManager::kMaxPids; ++pid) {
    for (const bool kernel : {false, true}) {
      const bpu::ExecContext ctx{.pid = static_cast<std::uint16_t>(pid),
                                 .hart = 0,
                                 .kernel = kernel};
      const std::uint32_t fp = CibpuMappingLogic::domain_fingerprint(ctx);
      ASSERT_LT(fp, seen.size());
      ASSERT_FALSE(seen[fp]) << "fingerprint collision at pid " << pid;
      seen[fp] = true;
    }
  }
}

TEST_F(CibpuMappingTest, CrossDomainTagsNeverMatch) {
  // Conflict invisibility: for ANY pair of domains and ANY address pair,
  // the widened tags differ (distinct fingerprints occupy disjoint values
  // in the bits above the keyed 8). Same-address probes shown here; the
  // fingerprint bits make the full cross-product case equivalent.
  util::Xoshiro256 rng(7);
  for (unsigned i = 0; i < 2000; ++i) {
    const std::uint64_t ip = rng() & bpu::kVirtualAddressMask;
    const auto a = map_.btb_mode1(ip, kUserA);
    const auto b = map_.btb_mode1(ip, kUserB);
    const auto k = map_.btb_mode1(ip, kKernelA);
    ASSERT_NE(a.tag, b.tag);
    ASSERT_NE(a.tag, k.tag);
    ASSERT_NE(b.tag, k.tag);
    // The fingerprint rides above the keyed bits, untouched by them.
    ASSERT_EQ(a.tag >> Remapper::kBtbTagBits,
              CibpuMappingLogic::domain_fingerprint(kUserA));
  }
}

TEST_F(CibpuMappingTest, ReKeyChangesIndexesForThatDomainOnly) {
  util::Xoshiro256 rng(8);
  std::vector<std::uint64_t> ips;
  for (unsigned i = 0; i < 500; ++i) ips.push_back(rng() & bpu::kVirtualAddressMask);
  std::vector<bpu::BtbIndex> before_a, before_b;
  for (const auto ip : ips) {
    before_a.push_back(map_.btb_mode1(ip, kUserA));
    before_b.push_back(map_.btb_mode1(ip, kUserB));
  }
  stm_.rerandomize(kUserA);
  unsigned moved = 0;
  for (std::size_t i = 0; i < ips.size(); ++i) {
    moved += !(map_.btb_mode1(ips[i], kUserA) == before_a[i]);
    ASSERT_EQ(map_.btb_mode1(ips[i], kUserB), before_b[i])
        << "re-keying A must not disturb B";
  }
  EXPECT_GT(moved, ips.size() * 9 / 10);
}

TEST_F(CibpuMappingTest, PlaintextCodecIsTheHonestWeakness) {
  const std::uint64_t branch = 0x0000'2345'6780ULL;
  const std::uint64_t target = 0x0000'2399'1234ULL;
  const std::uint64_t stored = map_.encode_target(target, kUserA);
  // No encryption: the stored payload IS the low target bits, and any
  // domain decodes it to a usable address (unlike STBPU's φ codec).
  EXPECT_EQ(stored, target & 0xFFFF'FFFFULL);
  EXPECT_EQ(map_.decode_target(branch, stored, kUserA), target);
  EXPECT_EQ(map_.decode_target(branch, stored, kUserB), target);
}

TEST_F(CibpuMappingTest, DeterministicPerDomain) {
  const std::uint64_t ip = 0x0000'2345'6780ULL;
  EXPECT_EQ(map_.btb_mode1(ip, kUserA), map_.btb_mode1(ip, kUserA));
  EXPECT_EQ(map_.pht_index_1level(ip, kUserA), map_.pht_index_1level(ip, kUserA));
  EXPECT_EQ(map_.pht_index_2level(ip, 0x3F, kUserA),
            map_.pht_index_2level(ip, 0x3F, kUserA));
  EXPECT_EQ(map_.tage_index(ip, 0x77, 2, 10, kUserA),
            map_.tage_index(ip, 0x77, 2, 10, kUserA));
  EXPECT_EQ(map_.perceptron_row(ip, 9, kUserA), map_.perceptron_row(ip, 9, kUserA));
}

}  // namespace
}  // namespace stbpu::core
