// XorIsolationMapping: lightweight per-domain XOR index masking + φ entry
// encryption. Verifies the isolation half (cross-domain decode garbles,
// re-key moves the masks) AND the deliberate weakness (XOR linearity: the
// baseline's collision structure survives inside a domain).
#include "core/xor_isolation_mapping.h"

#include <gtest/gtest.h>

#include <vector>

#include "bpu/types.h"
#include "util/rng.h"

namespace stbpu::core {
namespace {

const bpu::ExecContext kUserA{.pid = 1, .hart = 0, .kernel = false};
const bpu::ExecContext kUserB{.pid = 2, .hart = 0, .kernel = false};

class XorIsolationMappingTest : public ::testing::Test {
 protected:
  XorIsolationMappingTest() : stm_(1234), map_(&stm_) {}
  STManager stm_;
  XorIsolationMappingLogic map_;
  bpu::BaselineMappingLogic base_;
};

TEST_F(XorIsolationMappingTest, XorLinearityPreservesBaselineCollisions) {
  // The documented weakness: within one domain the mask cancels, so
  //   index(a) ^ index(b) == base_index(a) ^ base_index(b)
  // — attacker-controlled collision structure survives the "defense".
  util::Xoshiro256 rng(5);
  for (unsigned i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng() & bpu::kVirtualAddressMask;
    const std::uint64_t b = rng() & bpu::kVirtualAddressMask;
    EXPECT_EQ(map_.pht_index_1level(a, kUserA) ^ map_.pht_index_1level(b, kUserA),
              base_.pht_index_1level(a, kUserA) ^ base_.pht_index_1level(b, kUserA));
    EXPECT_EQ(map_.btb_mode1(a, kUserA).set ^ map_.btb_mode1(b, kUserA).set,
              base_.btb_mode1(a, kUserA).set ^ base_.btb_mode1(b, kUserA).set);
    EXPECT_EQ(map_.perceptron_row(a, 9, kUserA) ^ map_.perceptron_row(b, 9, kUserA),
              base_.perceptron_row(a, 9, kUserA) ^ base_.perceptron_row(b, 9, kUserA));
  }
}

TEST_F(XorIsolationMappingTest, DomainsSeeDifferentIndexes) {
  util::Xoshiro256 rng(6);
  unsigned same_pht = 0, same_set = 0;
  const unsigned n = 2000;
  for (unsigned i = 0; i < n; ++i) {
    const std::uint64_t ip = rng() & bpu::kVirtualAddressMask;
    same_pht += map_.pht_index_1level(ip, kUserA) == map_.pht_index_1level(ip, kUserB);
    same_set += map_.btb_mode1(ip, kUserA).set == map_.btb_mode1(ip, kUserB).set;
  }
  // Distinct domain masks shift every index by a nonzero constant, so
  // same-address agreement is all-or-nothing per structure: with these
  // tokens, nothing agrees.
  EXPECT_EQ(same_pht, 0u);
  EXPECT_EQ(same_set, 0u);
}

TEST_F(XorIsolationMappingTest, PhiCodecRoundTripsWithinDomain) {
  const std::uint64_t branch = 0x0000'2345'6780ULL;
  const std::uint64_t target = 0x0000'2399'1234ULL;
  const std::uint64_t stored = map_.encode_target(target, kUserA);
  EXPECT_NE(stored, target & 0xFFFF'FFFFULL) << "payload must be encrypted at rest";
  EXPECT_EQ(map_.decode_target(branch, stored, kUserA), target);
}

TEST_F(XorIsolationMappingTest, CrossDomainDecodeGarblesTarget) {
  const std::uint64_t branch = 0x0000'2345'6780ULL;
  const std::uint64_t target = 0x0000'2399'1234ULL;
  const std::uint64_t stored = map_.encode_target(target, kUserA);
  // A payload written under A's φ and read under B's decodes to garbage —
  // the entry-encryption half of the isolation.
  EXPECT_NE(map_.decode_target(branch, stored, kUserB), target);
}

TEST_F(XorIsolationMappingTest, ReKeyMovesMasksForThatDomainOnly) {
  util::Xoshiro256 rng(7);
  std::vector<std::uint64_t> ips;
  for (unsigned i = 0; i < 500; ++i) ips.push_back(rng() & bpu::kVirtualAddressMask);
  std::vector<std::uint32_t> before_a, before_b;
  for (const auto ip : ips) {
    before_a.push_back(map_.pht_index_1level(ip, kUserA));
    before_b.push_back(map_.pht_index_1level(ip, kUserB));
  }
  stm_.rerandomize(kUserA);
  unsigned moved = 0;
  for (std::size_t i = 0; i < ips.size(); ++i) {
    moved += map_.pht_index_1level(ips[i], kUserA) != before_a[i];
    ASSERT_EQ(map_.pht_index_1level(ips[i], kUserB), before_b[i])
        << "re-keying A must not disturb B";
  }
  // A fresh ψ yields a fresh mask; all indexes shift by the same nonzero
  // constant (XOR of old and new mask).
  EXPECT_EQ(moved, ips.size());
}

TEST_F(XorIsolationMappingTest, StructureSaltsDecorrelateMasks) {
  // Observing the PHT mask must not reveal the perceptron or TAGE masks:
  // the XOR offsets baseline→masked differ across structures.
  const std::uint64_t ip = 0x0000'2345'6780ULL;
  const std::uint32_t pht_off =
      map_.pht_index_1level(ip, kUserA) ^ base_.pht_index_1level(ip, kUserA);
  const std::uint32_t row_off =
      map_.perceptron_row(ip, 14, kUserA) ^ base_.perceptron_row(ip, 14, kUserA);
  const std::uint32_t tage_off = map_.tage_index(ip, 0x77, 1, 14, kUserA) ^
                                 base_.tage_index(ip, 0x77, 1, 14, kUserA);
  EXPECT_NE(pht_off, row_off);
  EXPECT_NE(pht_off, tage_off);
}

}  // namespace
}  // namespace stbpu::core
