// Shard determinism: a sweep executed as --shard=0/2 + --shard=1/2 and
// merged must reproduce the unsharded BENCH_*.json byte for byte — no
// dropped points, no duplicates, no float drift through the shard files
// (this is the acceptance contract of the sharded driver).
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/spec.h"

namespace stbpu::exp {
namespace {

/// Tiny OoO budgets so the 124-point fig5 grid stays unit-test cheap while
/// still exercising real simulation (nonzero doubles in every field).
ExperimentSpec tiny_fig5_spec() {
  ExperimentSpec spec;
  spec.scenario = "fig5_smt";
  spec.scale.ooo_instructions = 1'500;
  spec.scale.ooo_warmup = 150;
  spec.points = {0, 1, 2, 3, 4, 5, 6, 7};  // two pairs × four predictors
  return spec;
}

TEST(ShardMerge, Fig5ShardedMergeIsBitIdenticalToUnsharded) {
  register_builtin_scenarios();
  const Scenario* scenario = find_scenario("fig5_smt");
  ASSERT_NE(scenario, nullptr);

  // Unsharded reference run.
  ExperimentSpec spec = tiny_fig5_spec();
  RunOutcome unsharded;
  std::string err;
  ASSERT_TRUE(run_experiment(*scenario, spec, unsharded, err)) << err;
  ASSERT_EQ(unsharded.ran.size(), 8u);
  const std::string reference = final_json(*scenario, spec, unsharded.points);

  // The same sweep as two shards.
  std::vector<std::string> shard_texts;
  for (std::uint32_t shard = 0; shard < 2; ++shard) {
    ExperimentSpec shard_spec = tiny_fig5_spec();
    shard_spec.shard_index = shard;
    shard_spec.shard_count = 2;
    RunOutcome outcome;
    ASSERT_TRUE(run_experiment(*scenario, shard_spec, outcome, err)) << err;
    EXPECT_EQ(outcome.ran.size(), 4u);
    shard_texts.push_back(shard_json(*scenario, shard_spec, outcome));
  }

  std::string merged, merged_scenario;
  ASSERT_TRUE(merge_shards(shard_texts, merged, merged_scenario, err)) << err;
  EXPECT_EQ(merged_scenario, "fig5_smt");
  EXPECT_EQ(merged, reference);

  // The trajectory is complete: every selected point's row plus the
  // per-predictor AVERAGE rows.
  for (const char* label :
       {"bwaves_fotonik3d/PerceptronBP", "bwaves_cactuBSSN/TAGE_SC_L_8KB",
        "AVERAGE/SKLCond"}) {
    EXPECT_NE(merged.find(std::string("\"label\": \"") + label + "\""),
              std::string::npos)
        << label;
  }
  EXPECT_NE(merged.find("\"normalized_ipc_harmonic\":"), std::string::npos);
}

/// Flip one digit of the first double payload in a shard text: a
/// duplicate-but-DIFFERENT result for the same points, as a buggy or
/// malicious worker would produce.
std::string tamper_first_double(std::string text) {
  const std::size_t tag = text.find("\"d\", ");
  EXPECT_NE(tag, std::string::npos);
  std::size_t pos = tag + 5;
  if (pos < text.size() && text[pos] == '-') ++pos;
  EXPECT_TRUE(pos < text.size() && text[pos] >= '0' && text[pos] <= '9');
  text[pos] = text[pos] == '9' ? '8' : '9';
  return text;
}

TEST(ShardMerge, DetectsMissingPointsAndMismatchedSpecs) {
  register_builtin_scenarios();
  const Scenario* scenario = find_scenario("fig5_smt");
  ASSERT_NE(scenario, nullptr);

  ExperimentSpec shard0 = tiny_fig5_spec();
  shard0.shard_index = 0;
  shard0.shard_count = 2;
  RunOutcome outcome;
  std::string err;
  ASSERT_TRUE(run_experiment(*scenario, shard0, outcome, err)) << err;
  const std::string shard0_text = shard_json(*scenario, shard0, outcome);

  std::string merged, merged_scenario;
  // One missing shard: the even-point shard alone cannot cover the grid.
  EXPECT_FALSE(merge_shards({shard0_text}, merged, merged_scenario, err));
  EXPECT_NE(err.find("missing"), std::string::npos) << err;

  // Shards from different sweeps must not merge, and the error must name
  // the offending input and the byte offset of the mismatching value.
  ExperimentSpec other = tiny_fig5_spec();
  other.shard_index = 1;
  other.shard_count = 2;
  other.scale.ooo_instructions = 999;  // different budget = different sweep
  RunOutcome other_outcome;
  ASSERT_TRUE(run_experiment(*scenario, other, other_outcome, err)) << err;
  const std::string other_text = shard_json(*scenario, other, other_outcome);
  EXPECT_FALSE(merge_shards({shard0_text, other_text}, {"a.json", "b.json"}, merged,
                            merged_scenario, err));
  EXPECT_NE(err.find("spec differs"), std::string::npos) << err;
  EXPECT_NE(err.find("b.json"), std::string::npos) << err;
  EXPECT_NE(err.find("byte offset"), std::string::npos) << err;
}

TEST(ShardMerge, DuplicateIdenticalAcceptedDuplicateDifferentRejected) {
  // Straggler re-dispatch legitimately yields the same shard twice with
  // identical payloads — merge must union them silently. The same points
  // with a DIFFERENT payload is a correctness hazard and must be rejected
  // with the offending file named.
  register_builtin_scenarios();
  const Scenario* scenario = find_scenario("fig5_smt");
  ASSERT_NE(scenario, nullptr);

  std::string err;
  std::vector<std::string> shard_texts;
  for (std::uint32_t shard = 0; shard < 2; ++shard) {
    ExperimentSpec shard_spec = tiny_fig5_spec();
    shard_spec.shard_index = shard;
    shard_spec.shard_count = 2;
    RunOutcome outcome;
    ASSERT_TRUE(run_experiment(*scenario, shard_spec, outcome, err)) << err;
    shard_texts.push_back(shard_json(*scenario, shard_spec, outcome));
  }

  // Reference merge, then the same merge with shard 0 delivered twice.
  std::string reference, merged, merged_scenario;
  ASSERT_TRUE(merge_shards(shard_texts, reference, merged_scenario, err)) << err;
  ASSERT_TRUE(merge_shards({shard_texts[0], shard_texts[1], shard_texts[0]}, merged,
                           merged_scenario, err))
      << err;
  EXPECT_EQ(merged, reference);

  // Same shard index, one flipped digit: must be rejected, not unioned.
  const std::string tampered = tamper_first_double(shard_texts[0]);
  EXPECT_FALSE(merge_shards({shard_texts[0], shard_texts[1], tampered},
                            {"a.json", "b.json", "evil.json"}, merged, merged_scenario,
                            err));
  EXPECT_NE(err.find("duplicated with a different payload"), std::string::npos) << err;
  EXPECT_NE(err.find("evil.json"), std::string::npos) << err;
  EXPECT_NE(err.find("byte offset"), std::string::npos) << err;
}

TEST(ShardMerge, RejectsGarbageInput) {
  register_builtin_scenarios();
  std::string merged, merged_scenario, err;
  EXPECT_FALSE(merge_shards({"not json"}, merged, merged_scenario, err));
  EXPECT_FALSE(merge_shards({R"({"bench": "x"})"}, merged, merged_scenario, err));
  EXPECT_NE(err.find("format"), std::string::npos) << err;
  EXPECT_FALSE(merge_shards({}, merged, merged_scenario, err));

  // A corrupted field value (null where a double belongs) must be a merge
  // error, not a silent zero in the final trajectory.
  const std::string corrupted = R"({
    "format": "stbpu-shard-v1",
    "bench": "sec6_thresholds",
    "spec": {"scenario": "sec6_thresholds"},
    "points": [
      {"index": 0, "label": "BTB reuse-based side channel",
       "fields": [["mispredictions", "d", null]]}
    ]
  })";
  EXPECT_FALSE(merge_shards({corrupted}, merged, merged_scenario, err));
  EXPECT_NE(err.find("numeric"), std::string::npos) << err;
}

TEST(Runner, WriteFileIsAtomicAndCrashSafe) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "stbpu_write_file_test.json";
  std::remove(path.c_str());

  // Success: content lands, and no .tmp staging file is left behind.
  ASSERT_TRUE(write_file(path, "first\n"));
  std::string back;
  ASSERT_TRUE(read_file(path, back));
  EXPECT_EQ(back, "first\n");
  EXPECT_FALSE(read_file(path + ".tmp", back));

  // Overwrite goes through the same rename and replaces the old bytes.
  ASSERT_TRUE(write_file(path, "second\n"));
  ASSERT_TRUE(read_file(path, back));
  EXPECT_EQ(back, "second\n");

  // A failed write must leave the existing target untouched. Blocking the
  // staging path (a directory where <path>.tmp goes) forces the failure
  // without relying on permissions (tests may run as root).
  ASSERT_EQ(::mkdir((path + ".tmp").c_str(), 0755), 0);
  EXPECT_FALSE(write_file(path, "third\n"));
  ASSERT_TRUE(read_file(path, back));
  EXPECT_EQ(back, "second\n");
  ASSERT_EQ(::rmdir((path + ".tmp").c_str()), 0);

  // An unwritable destination fails cleanly: no file, no stray .tmp.
  const std::string bad = dir + "no_such_subdir/out.json";
  EXPECT_FALSE(write_file(bad, "x"));
  EXPECT_FALSE(read_file(bad, back));
  EXPECT_FALSE(read_file(bad + ".tmp", back));

  std::remove(path.c_str());
}

TEST(Runner, RejectsOutOfRangePoints) {
  register_builtin_scenarios();
  const Scenario* scenario = find_scenario("sec6_thresholds");
  ASSERT_NE(scenario, nullptr);
  ExperimentSpec spec;
  spec.scenario = "sec6_thresholds";
  spec.points = {10'000};
  RunOutcome outcome;
  std::string err;
  EXPECT_FALSE(run_experiment(*scenario, spec, outcome, err));
  EXPECT_NE(err.find("out of range"), std::string::npos) << err;
}

TEST(Runner, PointExceptionFailsTheRunCleanly) {
  // A bad --trace path throws inside run_point on a pool worker; the
  // runner must surface it as an error, not std::terminate.
  register_builtin_scenarios();
  const Scenario* scenario = find_scenario("fig3_oae");
  ASSERT_NE(scenario, nullptr);
  ExperimentSpec spec;
  spec.scenario = "fig3_oae";
  spec.trace_file = "/nonexistent/no_such.trace";
  RunOutcome outcome;
  std::string err;
  EXPECT_FALSE(run_experiment(*scenario, spec, outcome, err));
  EXPECT_NE(err.find("cannot open trace"), std::string::npos) << err;
  EXPECT_NE(err.find("trace:/nonexistent/no_such.trace"), std::string::npos) << err;
}

TEST(Runner, DeterministicAnalyticScenario) {
  // Cheap end-to-end: a fully analytic scenario merges bit-identically too
  // (single shard degenerate case).
  register_builtin_scenarios();
  const Scenario* scenario = find_scenario("sec6_thresholds");
  ExperimentSpec spec;
  spec.scenario = "sec6_thresholds";
  RunOutcome a, b;
  std::string err;
  ASSERT_TRUE(run_experiment(*scenario, spec, a, err)) << err;
  ASSERT_TRUE(run_experiment(*scenario, spec, b, err)) << err;
  EXPECT_EQ(final_json(*scenario, spec, a.points), final_json(*scenario, spec, b.points));

  std::string merged, merged_scenario;
  ExperimentSpec sharded = spec;
  sharded.shard_index = 0;
  sharded.shard_count = 1;
  ASSERT_TRUE(merge_shards({shard_json(*scenario, sharded, a)}, merged, merged_scenario,
                           err))
      << err;
  EXPECT_EQ(merged, final_json(*scenario, spec, a.points));
}

}  // namespace
}  // namespace stbpu::exp
