// The CI perf-regression gate's comparison semantics: correctness fields
// (strings, integer stat counters) are fatal on any difference; throughput
// fields (floating-point) only ever produce advisory deltas; grid drift
// (rows/keys on one side only) and scale mismatches are notes, never
// failures — the gate must not block a PR for legitimately evolving the
// sweep, only for silently changing what the simulation computes.
#include <gtest/gtest.h>

#include <string>

#include "exp/compare.h"

namespace stbpu::exp {
namespace {

std::string bench_json(const std::string& scale, const std::string& rows) {
  return "{\n  \"bench\": \"ooo_engine\",\n  \"scale\": \"" + scale +
         "\",\n  \"rows\": [\n    " + rows + "\n  ]\n}\n";
}

const char* kBaseRow =
    "{\"label\": \"STBPU/SKLCond\", \"branches_per_sec\": 2002791.164, "
    "\"gen_speedup\": 1.5, \"measured_branches\": 6412, \"l1d_misses\": 8174, "
    "\"identical_stats\": \"true\"}";

TEST(CompareBench, IdenticalFilesPass) {
  const std::string text = bench_json("quick", kBaseRow);
  CompareReport report;
  std::string err;
  ASSERT_TRUE(compare_bench(text, text, {}, report, err)) << err;
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.deltas.empty());
  EXPECT_TRUE(report.notes.empty());
  EXPECT_EQ(report.bench, "ooo_engine");
  EXPECT_EQ(report.compared_fields, 5u);
}

TEST(CompareBench, ThroughputDeltaIsAdvisory) {
  const std::string old_text = bench_json("quick", kBaseRow);
  const std::string new_text = bench_json(
      "quick",
      "{\"label\": \"STBPU/SKLCond\", \"branches_per_sec\": 1001395.582, "
      "\"gen_speedup\": 1.8, \"measured_branches\": 6412, \"l1d_misses\": 8174, "
      "\"identical_stats\": \"true\"}");
  CompareReport report;
  std::string err;
  ASSERT_TRUE(compare_bench(old_text, new_text, {}, report, err)) << err;
  EXPECT_TRUE(report.ok()) << "throughput halving must not fail the gate";
  ASSERT_EQ(report.deltas.size(), 2u);
  EXPECT_EQ(report.deltas[0].key, "branches_per_sec");
  EXPECT_NEAR(report.deltas[0].delta_frac, -0.5, 1e-6);
}

TEST(CompareBench, CounterChangeIsFatal) {
  const std::string old_text = bench_json("quick", kBaseRow);
  const std::string new_text = bench_json(
      "quick",
      "{\"label\": \"STBPU/SKLCond\", \"branches_per_sec\": 2002791.164, "
      "\"gen_speedup\": 1.5, \"measured_branches\": 6413, \"l1d_misses\": 8170, "
      "\"identical_stats\": \"true\"}");
  CompareReport report;
  std::string err;
  ASSERT_TRUE(compare_bench(old_text, new_text, {}, report, err)) << err;
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.regressions.size(), 2u);
  EXPECT_EQ(report.regressions[0].key, "measured_branches");
  EXPECT_EQ(report.regressions[1].key, "l1d_misses");
}

TEST(CompareBench, StringChangeIsFatal) {
  const std::string old_text = bench_json("quick", kBaseRow);
  const std::string new_text = bench_json(
      "quick",
      "{\"label\": \"STBPU/SKLCond\", \"branches_per_sec\": 2002791.164, "
      "\"gen_speedup\": 1.5, \"measured_branches\": 6412, \"l1d_misses\": 8174, "
      "\"identical_stats\": \"false\"}");
  CompareReport report;
  std::string err;
  ASSERT_TRUE(compare_bench(old_text, new_text, {}, report, err)) << err;
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.regressions.size(), 1u);
  EXPECT_EQ(report.regressions[0].key, "identical_stats");
  EXPECT_EQ(report.regressions[0].row, "STBPU/SKLCond");
}

TEST(CompareBench, IgnoreListSuppressesFatal) {
  const std::string old_text = bench_json("quick", kBaseRow);
  const std::string new_text = bench_json(
      "quick",
      "{\"label\": \"STBPU/SKLCond\", \"branches_per_sec\": 2002791.164, "
      "\"gen_speedup\": 1.5, \"measured_branches\": 9999, \"l1d_misses\": 8174, "
      "\"identical_stats\": \"true\"}");
  CompareOptions opt;
  opt.ignore_keys = {"measured_branches"};
  CompareReport report;
  std::string err;
  ASSERT_TRUE(compare_bench(old_text, new_text, opt, report, err)) << err;
  EXPECT_TRUE(report.ok());
}

TEST(CompareBench, IntegralDoubleStaysAdvisory) {
  // A measurement that happens to land on an integral value is written with
  // a trailing ".0" (scenario.cc's format_double), so it still classifies
  // as a throughput field against a fractional counterpart.
  const std::string old_text =
      bench_json("quick", "{\"label\": \"r\", \"speedup\": 1.0}");
  const std::string new_text =
      bench_json("quick", "{\"label\": \"r\", \"speedup\": 0.5}");
  CompareReport report;
  std::string err;
  ASSERT_TRUE(compare_bench(old_text, new_text, {}, report, err)) << err;
  EXPECT_TRUE(report.ok());
  ASSERT_EQ(report.deltas.size(), 1u);
  EXPECT_NEAR(report.deltas[0].delta_frac, -0.5, 1e-9);
}

TEST(CompareBench, CounterTypeChangeCannotSmuggleAValueChange) {
  // A counter that starts rendering as a float (writer bug, accidental
  // .set(key, double)) must not demote the field to advisory: a changed
  // value is fatal whichever side carries the integer literal.
  const std::string old_text =
      bench_json("quick", "{\"label\": \"r\", \"measured_branches\": 6412}");
  const std::string new_text =
      bench_json("quick", "{\"label\": \"r\", \"measured_branches\": 6413.0}");
  CompareReport report;
  std::string err;
  ASSERT_TRUE(compare_bench(old_text, new_text, {}, report, err)) << err;
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.regressions.size(), 1u);
  EXPECT_EQ(report.regressions[0].key, "measured_branches");
}

TEST(CompareBench, ValuePreservingFormatDriftPasses) {
  // "1" vs "1.0" (an older artifact's integral double vs the current
  // writer's ".0" form) is formatting drift, not a regression.
  const std::string old_text =
      bench_json("quick", "{\"label\": \"r\", \"speedup\": 1, \"n\": 6412}");
  const std::string new_text =
      bench_json("quick", "{\"label\": \"r\", \"speedup\": 1.0, \"n\": 6412.0}");
  CompareReport report;
  std::string err;
  ASSERT_TRUE(compare_bench(old_text, new_text, {}, report, err)) << err;
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.deltas.empty());
}

TEST(CompareBench, GridDriftIsAdvisory) {
  const std::string old_text = bench_json(
      "quick", std::string(kBaseRow) + ",\n    {\"label\": \"gone\", \"x\": 1}");
  const std::string new_text = bench_json(
      "quick", std::string(kBaseRow) +
                   ",\n    {\"label\": \"fresh\", \"measured_branches\": 1}");
  CompareReport report;
  std::string err;
  ASSERT_TRUE(compare_bench(old_text, new_text, {}, report, err)) << err;
  EXPECT_TRUE(report.ok());
  ASSERT_EQ(report.notes.size(), 2u);
  EXPECT_NE(report.notes[0].find("fresh"), std::string::npos);
  EXPECT_NE(report.notes[1].find("gone"), std::string::npos);
}

TEST(CompareBench, NewKeysAreAdvisory) {
  const std::string old_text = bench_json(
      "quick", "{\"label\": \"r\", \"measured_branches\": 5}");
  const std::string new_text = bench_json(
      "quick", "{\"label\": \"r\", \"measured_branches\": 5, \"l1d_hits\": 9}");
  CompareReport report;
  std::string err;
  ASSERT_TRUE(compare_bench(old_text, new_text, {}, report, err)) << err;
  EXPECT_TRUE(report.ok());
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_NE(report.notes[0].find("l1d_hits"), std::string::npos);
}

TEST(CompareBench, ScaleMismatchComparesNothing) {
  const std::string old_text = bench_json("quick", kBaseRow);
  const std::string new_text = bench_json(
      "paper",
      "{\"label\": \"STBPU/SKLCond\", \"measured_branches\": 999999}");
  CompareReport report;
  std::string err;
  ASSERT_TRUE(compare_bench(old_text, new_text, {}, report, err)) << err;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.compared_fields, 0u);
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_NE(report.notes[0].find("scale mismatch"), std::string::npos);
}

TEST(CompareBench, ScenarioMismatchIsAnError) {
  const std::string old_text = bench_json("quick", kBaseRow);
  std::string other = old_text;
  const auto at = other.find("ooo_engine");
  other.replace(at, std::string("ooo_engine").size(), "fig4_single");
  CompareReport report;
  std::string err;
  EXPECT_FALSE(compare_bench(old_text, other, {}, report, err));
  EXPECT_NE(err.find("mismatch"), std::string::npos);
}

TEST(CompareBench, MalformedInputIsAnError) {
  CompareReport report;
  std::string err;
  EXPECT_FALSE(compare_bench("{not json", bench_json("quick", kBaseRow), {}, report, err));
  EXPECT_FALSE(compare_bench(bench_json("quick", kBaseRow), "[]", {}, report, err));
  EXPECT_FALSE(compare_bench("{}", bench_json("quick", kBaseRow), {}, report, err));
}

}  // namespace
}  // namespace stbpu::exp
