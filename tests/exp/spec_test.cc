// Experiment-spec and registry coverage: JSON (de)serialization round
// trips, strict rejection of malformed specs/flags, shard/point parsing,
// and the built-in scenario set the driver exposes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/json.h"
#include "exp/scenario.h"
#include "exp/spec.h"

namespace stbpu::exp {
namespace {

TEST(Scale, NamedPresets) {
  const auto quick = Scale::named("quick");
  ASSERT_TRUE(quick.has_value());
  EXPECT_FALSE(quick->paper);
  EXPECT_EQ(quick->trace_branches, 400'000u);

  const auto paper = Scale::named("paper");
  ASSERT_TRUE(paper.has_value());
  EXPECT_TRUE(paper->paper);
  EXPECT_EQ(paper->ooo_instructions, 100'000'000u);

  EXPECT_FALSE(Scale::named("huge").has_value());
  EXPECT_FALSE(Scale::named("").has_value());
}

TEST(ExperimentSpec, JsonRoundTrip) {
  ExperimentSpec spec;
  spec.scenario = "fig5_smt";
  spec.scale = *Scale::named("paper");
  spec.scale.ooo_instructions = 12345;  // explicit override survives
  spec.jobs = 4;
  spec.shard_index = 1;
  spec.shard_count = 3;
  spec.points = {2, 5, 9};
  spec.trace_file = "/tmp/trace.bin";
  spec.seed = 77;
  spec.monitor.difficulty_r = 0.0625;
  spec.monitor.misprediction_threshold = 1000;
  spec.monitor.eviction_threshold = 500;
  spec.monitor.tagged_misprediction_threshold = 250;
  spec.arms = {"STBPU", "CIBPU"};
  spec.cache_stats = true;
  spec.stall_stats = true;

  JsonValue doc;
  std::string err;
  ASSERT_TRUE(json_parse(spec.to_json(), doc, err)) << err;
  ExperimentSpec back;
  ASSERT_TRUE(ExperimentSpec::from_json(doc, back, err)) << err;
  EXPECT_EQ(spec, back);
}

TEST(ExperimentSpec, ShardFieldsCanBeOmitted) {
  ExperimentSpec spec;
  spec.scenario = "fig3_oae";
  spec.shard_index = 1;
  spec.shard_count = 2;
  // The merged-output serialization drops shard state so it compares equal
  // to an unsharded run's.
  EXPECT_EQ(spec.to_json(false).find("shard"), std::string::npos);
  EXPECT_NE(spec.to_json(true).find("shard"), std::string::npos);
}

TEST(ExperimentSpec, RejectsUnknownFieldsAndBadScale) {
  JsonValue doc;
  std::string err;
  ExperimentSpec out;

  ASSERT_TRUE(json_parse(R"({"scenario": "x", "typo_field": 1})", doc, err));
  EXPECT_FALSE(ExperimentSpec::from_json(doc, out, err));
  EXPECT_NE(err.find("typo_field"), std::string::npos);

  ASSERT_TRUE(json_parse(R"({"scenario": "x", "scale": {"name": "huge"}})", doc, err));
  EXPECT_FALSE(ExperimentSpec::from_json(doc, out, err));
  EXPECT_NE(err.find("huge"), std::string::npos);

  ASSERT_TRUE(json_parse(R"({"scale": {"name": "quick"}})", doc, err));
  EXPECT_FALSE(ExperimentSpec::from_json(doc, out, err));  // missing scenario
}

TEST(ExperimentSpec, ArmsValidateAgainstRegisteredModelKinds) {
  JsonValue doc;
  std::string err;
  ExperimentSpec out;

  // Valid arm names round-trip; emission is skipped when empty.
  ASSERT_TRUE(json_parse(R"({"scenario": "attack_matrix",
                             "arms": ["XOR_isolation", "unprotected"]})",
                         doc, err));
  ASSERT_TRUE(ExperimentSpec::from_json(doc, out, err)) << err;
  EXPECT_EQ(out.arms, (std::vector<std::string>{"XOR_isolation", "unprotected"}));
  ExperimentSpec empty;
  empty.scenario = "x";
  EXPECT_EQ(empty.to_json().find("arms"), std::string::npos);

  // Unknown arm: the error names the offender and where it sits.
  ASSERT_TRUE(json_parse(R"({"scenario": "attack_matrix", "arms": ["CIBPV"]})", doc,
                         err));
  EXPECT_FALSE(ExperimentSpec::from_json(doc, out, err));
  EXPECT_NE(err.find("'CIBPV'"), std::string::npos) << err;
  EXPECT_NE(err.find("arms"), std::string::npos) << err;

  // Non-string entries are malformed.
  ASSERT_TRUE(json_parse(R"({"scenario": "attack_matrix", "arms": [7]})", doc, err));
  EXPECT_FALSE(ExperimentSpec::from_json(doc, out, err));
}

TEST(ExperimentSpec, ShardSelection) {
  ExperimentSpec spec;
  spec.scenario = "x";
  spec.points = {0, 1, 4, 7};
  EXPECT_TRUE(spec.selected(1));
  EXPECT_FALSE(spec.selected(2));

  // Unsharded: the whole selection.
  EXPECT_EQ(spec.owned_points(10), (std::vector<std::size_t>{0, 1, 4, 7}));

  // Shards stripe the *selection* by ordinal, so an even-only selection
  // still splits across both shards.
  spec.points = {0, 2, 4, 6};
  spec.shard_count = 2;
  spec.shard_index = 0;
  EXPECT_EQ(spec.owned_points(10), (std::vector<std::size_t>{0, 4}));
  spec.shard_index = 1;
  EXPECT_EQ(spec.owned_points(10), (std::vector<std::size_t>{2, 6}));

  // No selection: shards stripe the grid.
  spec.points.clear();
  EXPECT_EQ(spec.owned_points(5), (std::vector<std::size_t>{1, 3}));
}

TEST(ParseShard, AcceptsWellFormedRejectsRest) {
  std::uint32_t index = 9, count = 9;
  std::string err;
  ASSERT_TRUE(parse_shard("0/2", index, count, err));
  EXPECT_EQ(index, 0u);
  EXPECT_EQ(count, 2u);
  ASSERT_TRUE(parse_shard("7/8", index, count, err));
  EXPECT_EQ(index, 7u);

  EXPECT_FALSE(parse_shard("2/2", index, count, err));  // index out of range
  EXPECT_FALSE(parse_shard("1", index, count, err));
  EXPECT_FALSE(parse_shard("a/b", index, count, err));
  EXPECT_FALSE(parse_shard("1/0", index, count, err));
  EXPECT_FALSE(parse_shard("/2", index, count, err));
}

TEST(ParsePoints, ListsAndRanges) {
  std::vector<std::size_t> points;
  std::string err;
  ASSERT_TRUE(parse_points("0,3,7-9,3", points, err));
  EXPECT_EQ(points, (std::vector<std::size_t>{0, 3, 7, 8, 9}));

  EXPECT_FALSE(parse_points("", points, err));
  EXPECT_FALSE(parse_points("1,x", points, err));
  EXPECT_FALSE(parse_points("9-7", points, err));

  // Absurd ranges are hard errors, not OOMs/hangs (including the maximal
  // range whose inclusive loop would wrap).
  EXPECT_FALSE(parse_points("0-4000000000", points, err));
  EXPECT_FALSE(parse_points("0-18446744073709551615", points, err));
  EXPECT_NE(err.find("too large"), std::string::npos) << err;
}

TEST(ExperimentSpec, RejectsNegativeNumericFields) {
  JsonValue doc;
  std::string err;
  ExperimentSpec out;
  ASSERT_TRUE(json_parse(R"({"scenario": "x", "seed": -1})", doc, err));
  EXPECT_FALSE(ExperimentSpec::from_json(doc, out, err));
  ASSERT_TRUE(json_parse(
      R"({"scenario": "x", "scale": {"name": "quick", "trace_branches": -5}})", doc,
      err));
  EXPECT_FALSE(ExperimentSpec::from_json(doc, out, err));
  EXPECT_NE(err.find("non-negative"), std::string::npos) << err;
}

TEST(ExperimentSpec, MonitorOverridesRoundTripAndDefaultsAreOmitted) {
  ExperimentSpec spec;
  spec.scenario = "fig6_rsweep";
  // Unset monitor overrides must not appear in the serialization (older
  // spec files stay byte-stable).
  EXPECT_EQ(spec.to_json().find("monitor"), std::string::npos);

  spec.monitor.difficulty_r = 0.05;
  spec.monitor.eviction_threshold = 26'500;
  const std::string text = spec.to_json();
  EXPECT_NE(text.find("\"monitor\""), std::string::npos);
  EXPECT_NE(text.find("difficulty_r"), std::string::npos);
  EXPECT_EQ(text.find("misprediction_threshold"), std::string::npos)
      << "unset fields inside the monitor object are omitted too";

  JsonValue doc;
  std::string err;
  ASSERT_TRUE(json_parse(text, doc, err)) << err;
  ExperimentSpec back;
  ASSERT_TRUE(ExperimentSpec::from_json(doc, back, err)) << err;
  EXPECT_EQ(spec, back);
}

TEST(ExperimentSpec, RejectsMalformedMonitorOverrides) {
  JsonValue doc;
  std::string err;
  ExperimentSpec out;

  ASSERT_TRUE(json_parse(
      R"({"scenario": "x", "monitor": {"typo_threshold": 5}})", doc, err));
  EXPECT_FALSE(ExperimentSpec::from_json(doc, out, err));
  EXPECT_NE(err.find("typo_threshold"), std::string::npos) << err;

  ASSERT_TRUE(json_parse(
      R"({"scenario": "x", "monitor": {"difficulty_r": -0.5}})", doc, err));
  EXPECT_FALSE(ExperimentSpec::from_json(doc, out, err));
  EXPECT_NE(err.find("positive"), std::string::npos) << err;

  ASSERT_TRUE(json_parse(
      R"({"scenario": "x", "monitor": {"difficulty_r": 0}})", doc, err));
  EXPECT_FALSE(ExperimentSpec::from_json(doc, out, err))
      << "zero means unset and may not be written explicitly";

  ASSERT_TRUE(json_parse(
      R"({"scenario": "x", "monitor": {"misprediction_threshold": -3}})", doc, err));
  EXPECT_FALSE(ExperimentSpec::from_json(doc, out, err));
}

TEST(Registry, BuiltinScenarios) {
  register_builtin_scenarios();
  register_builtin_scenarios();  // idempotent
  const char* expected[] = {"fig2_remapgen",  "fig3_oae",       "fig4_single",
                            "fig5_smt",       "fig6_rsweep",    "ablation",
                            "sec6_empirical", "sec6_thresholds", "table1_attack_surface",
                            "table2_remap_functions", "ooo_engine", "mix_batch",
                            "tenant_churn",   "attack_matrix"};
  EXPECT_EQ(all_scenarios().size(), 14u);
  for (const char* name : expected) {
    EXPECT_NE(find_scenario(name), nullptr) << name;
  }
  EXPECT_EQ(find_scenario("nope"), nullptr);
}

TEST(Registry, GridShapes) {
  register_builtin_scenarios();
  ExperimentSpec spec;
  spec.scenario = "fig5_smt";
  // 31 SMT pairs × 4 direction predictors.
  EXPECT_EQ(find_scenario("fig5_smt")->point_labels(spec).size(), 124u);
  // 6 throughput combos + 18 workloads × 4 predictors.
  EXPECT_EQ(find_scenario("fig4_single")->point_labels(spec).size(), 78u);
  // A quick-scale fig6: 4 base pairs + 3 defense arms × 6 r values × 4 pairs.
  EXPECT_EQ(find_scenario("fig6_rsweep")->point_labels(spec).size(), 76u);
  // tenant_churn: 1 / 1K / 32K / 1M / 1M-under-eviction-pressure.
  EXPECT_EQ(find_scenario("tenant_churn")->point_labels(spec).size(), 5u);
  // attack_matrix: 4 attacks × 4 arms, shrinking under the arms filter.
  EXPECT_EQ(find_scenario("attack_matrix")->point_labels(spec).size(), 16u);
  spec.arms = {"STBPU"};
  EXPECT_EQ(find_scenario("attack_matrix")->point_labels(spec).size(), 4u);
}

TEST(Json, ParsesAndRejects) {
  JsonValue v;
  std::string err;
  ASSERT_TRUE(json_parse(R"({"a": [1, 2.5e3, "x\n"], "b": {"c": true}})", v, err));
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_EQ(a->items()[0].as_u64(), 1u);
  EXPECT_DOUBLE_EQ(a->items()[1].as_double(), 2500.0);
  EXPECT_EQ(a->items()[2].text(), "x\n");
  EXPECT_TRUE(v.find("b")->find("c")->as_bool());

  EXPECT_FALSE(json_parse("{", v, err));
  EXPECT_FALSE(json_parse("[1,]", v, err));
  EXPECT_FALSE(json_parse("{\"a\" 1}", v, err));
  EXPECT_FALSE(json_parse("12 34", v, err));
}

TEST(Json, DeepNestingIsAParseErrorNotACrash) {
  // Hostile/corrupt shard or spec files must fail gracefully, not blow the
  // stack.
  const std::string deep(200'000, '[');
  JsonValue v;
  std::string err;
  EXPECT_FALSE(json_parse(deep, v, err));
  EXPECT_NE(err.find("nesting too deep"), std::string::npos) << err;

  // Moderate nesting still parses.
  std::string ok;
  for (int i = 0; i < 40; ++i) ok += '[';
  ok += '1';
  for (int i = 0; i < 40; ++i) ok += ']';
  EXPECT_TRUE(json_parse(ok, v, err)) << err;
}

TEST(Json, QuoteRoundTrip) {
  const std::string nasty = "a\"b\\c\nd\te\x01f";
  JsonValue v;
  std::string err;
  ASSERT_TRUE(json_parse(json_quote(nasty), v, err)) << err;
  EXPECT_EQ(v.text(), nasty);
}

}  // namespace
}  // namespace stbpu::exp
