// Remap-circuit generator: primitive/layer cost model, circuit evaluation
// semantics, constraint enforcement, C2/C3 validation, and the Table II
// search pipeline (Figure 2 reproduction).
#include <gtest/gtest.h>

#include "remapgen/generator.h"
#include "remapgen/search.h"
#include "remapgen/validate.h"

namespace stbpu::remapgen {
namespace {

// ------------------------------------------------------------- layers ----

Layer substitution(unsigned width, std::uint8_t box = 0) {
  Layer l;
  l.kind = LayerKind::kSubstitution;
  l.in_width = l.out_width = width;
  for (unsigned c = 0; c < (width + 3) / 4; ++c) l.sbox_choice.push_back(box);
  return l;
}

Layer identity_perm(unsigned width) {
  Layer l;
  l.kind = LayerKind::kPermutation;
  l.in_width = l.out_width = width;
  for (unsigned i = 0; i < width; ++i) l.perm.push_back(static_cast<std::uint16_t>(i));
  return l;
}

Layer compression(unsigned in, unsigned out) {
  Layer l;
  l.kind = LayerKind::kCompression;
  l.in_width = in;
  l.out_width = out;
  return l;
}

TEST(Layer, SubstitutionCostModel) {
  const Layer l = substitution(16);
  EXPECT_EQ(l.transistors(), 4 * CostModel::kSbox4Transistors);
  EXPECT_EQ(l.critical_path(), CostModel::kSbox4Depth);
}

TEST(Layer, PermutationIsFreeOfTransistors) {
  const Layer l = identity_perm(32);
  EXPECT_EQ(l.transistors(), 0u);
  EXPECT_EQ(l.critical_path(), 0u);
  EXPECT_EQ(l.crossovers(), 0u) << "identity has no wire crossings";
}

TEST(Layer, ReversalMaximizesCrossovers) {
  Layer l = identity_perm(8);
  std::reverse(l.perm.begin(), l.perm.end());
  EXPECT_EQ(l.crossovers(), 8u * 7u / 2u);
}

TEST(Layer, CompressionXorTreeCost) {
  const Layer l = compression(32, 16);  // fan-in 2: one XOR2 per output
  EXPECT_EQ(l.transistors(), 16 * CostModel::kXor2Transistors);
  EXPECT_EQ(l.critical_path(), CostModel::kXor2Depth);
  const Layer l4 = compression(64, 16);  // fan-in 4: 3 XOR2, 2 levels
  EXPECT_EQ(l4.transistors(), 16 * 3 * CostModel::kXor2Transistors);
  EXPECT_EQ(l4.critical_path(), 2 * CostModel::kXor2Depth);
}

// ------------------------------------------------------------ circuit ----

TEST(Circuit, SubstitutionAppliesSbox) {
  Circuit c(8, 8);
  c.push(substitution(8, 0));  // PRESENT: S(0x0)=0xC, S(0xF)=0x2
  EXPECT_EQ(c.evaluate64(0x00, 0), 0xCCu);
  EXPECT_EQ(c.evaluate64(0xF0, 0), (0x2u << 4) | 0xCu);
}

TEST(Circuit, PermutationMovesBits) {
  Circuit c(4, 4);
  Layer l = identity_perm(4);
  l.perm = {1, 0, 3, 2};  // swap pairs
  c.push(std::move(l));
  EXPECT_EQ(c.evaluate64(0b0001, 0), 0b0010u);
  EXPECT_EQ(c.evaluate64(0b0100, 0), 0b1000u);
}

TEST(Circuit, CompressionXorsChunks) {
  Circuit c(8, 4);
  c.push(compression(8, 4));
  EXPECT_EQ(c.evaluate64(0xA5, 0), 0xAu ^ 0x5u);
}

TEST(Circuit, CostsAggregateAcrossLayers) {
  Circuit c(16, 8);
  c.push(substitution(16));
  c.push(identity_perm(16));
  c.push(compression(16, 8));
  EXPECT_EQ(c.total_transistors(),
            4 * CostModel::kSbox4Transistors + 8 * CostModel::kXor2Transistors);
  EXPECT_EQ(c.critical_path_transistors(),
            CostModel::kSbox4Depth + CostModel::kXor2Depth);
  EXPECT_TRUE(c.complete());
}

TEST(Circuit, ConstraintChecking) {
  HwConstraints hw;
  hw.max_critical_path_transistors = 15;
  Circuit c(16, 16);
  c.push(substitution(16));  // depth 10 — fits
  EXPECT_TRUE(c.satisfies(hw));
  c.push(substitution(16));  // depth 20 — violates
  EXPECT_FALSE(c.satisfies(hw));
}

TEST(Circuit, EvaluateHandlesWideInputs) {
  Circuit c(96, 48);
  c.push(substitution(96));
  c.push(compression(96, 48));
  const auto out = c.evaluate(BitVec(0x0123456789ABCDEFULL, 0xFEDCBA98ULL, 96));
  EXPECT_EQ(out.size(), 48u);
}

// ---------------------------------------------------------- generator ----

TEST(Generator, ProducesConstraintSatisfyingCircuits) {
  Generator gen({}, 42);
  for (unsigned i = 0; i < 5; ++i) {
    const auto c = gen.generate(80, 22);
    ASSERT_TRUE(c.has_value());
    EXPECT_TRUE(c->complete());
    EXPECT_TRUE(c->satisfies(HwConstraints{}));
    EXPECT_LE(c->critical_path_transistors(), 45u)
        << "C1: single-cycle transistor budget";
    EXPECT_GE(c->layers().size(), 3u);
  }
}

TEST(Generator, HandlesEveryTable2Shape) {
  Generator gen({}, 7);
  for (const auto& spec : table2_specs()) {
    const auto c = gen.generate(spec.input_bits, spec.output_bits);
    ASSERT_TRUE(c.has_value()) << spec.name;
    EXPECT_EQ(c->input_bits(), spec.input_bits);
    EXPECT_EQ(c->output_bits(), spec.output_bits);
  }
}

TEST(Generator, TightConstraintsForceDiscards) {
  GeneratorConfig cfg;
  cfg.hw.max_critical_path_transistors = 20;  // barely two S-layers
  Generator gen(cfg, 9);
  (void)gen.generate(80, 22);
  EXPECT_GT(gen.discarded(), 0u) << "scenario (ii) must occur under pressure";
}

// ---------------------------------------------------------- validation ----

TEST(Validate, GoodCircuitPasses) {
  Generator gen({}, 11);
  ValidationConfig vcfg;
  vcfg.uniformity_samples = 1 << 14;
  vcfg.avalanche_samples = 200;
  // Generated circuits are random; find one that validates within a few
  // attempts (that is exactly what search() automates).
  bool found = false;
  for (int i = 0; i < 12 && !found; ++i) {
    const auto c = gen.generate(80, 14);
    if (!c) continue;
    const auto rep = validate(*c, vcfg);
    if (rep.pass) {
      found = true;
      EXPECT_NEAR(rep.mean_avalanche, 0.5, 0.05);
      EXPECT_LT(rep.bin_cv, 1.5 * rep.ideal_bin_cv + 1e-9);
      EXPECT_GE(rep.score, 0.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Validate, TrivialCircuitFailsAvalanche) {
  // A bare compression (no S-boxes) is linear and per-bit local — it must
  // fail C3 badly.
  Circuit c(80, 14);
  c.push(compression(80, 40));
  c.push(compression(40, 14));
  ValidationConfig vcfg;
  vcfg.uniformity_samples = 1 << 12;
  vcfg.avalanche_samples = 100;
  const auto rep = validate(c, vcfg);
  EXPECT_FALSE(rep.pass);
  EXPECT_LT(rep.mean_avalanche, 0.2) << "one flipped input bit moves one output bit";
}

// -------------------------------------------------------------- search ----

TEST(Search, Table2SpecsAreThePaperSix) {
  const auto specs = table2_specs();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].name, "R1");
  EXPECT_EQ(specs[0].input_bits, 80u);
  EXPECT_EQ(specs[0].output_bits, 22u);
  EXPECT_EQ(specs[1].input_bits, 90u);   // R2: ψ + 58-bit BHB
  EXPECT_EQ(specs[3].input_bits, 96u);   // R4: ψ + GHR + address
  EXPECT_EQ(specs[4].output_bits, 25u);  // Rt: 13 index + 12 tag
}

TEST(Search, FindsValidatedCircuitForR1) {
  SearchConfig cfg;
  cfg.candidates = 10;
  cfg.validation.uniformity_samples = 1 << 13;
  cfg.validation.avalanche_samples = 128;
  const auto r = search(table2_specs()[0], cfg);
  ASSERT_TRUE(r.best.has_value()) << "no circuit passed validation";
  EXPECT_GT(r.passed, 0u);
  EXPECT_TRUE(r.best_report.pass);
  EXPECT_LE(r.best->critical_path_transistors(), 45u);
  EXPECT_FALSE(r.best->describe().empty());
}

}  // namespace
}  // namespace stbpu::remapgen
