// BaselineMapping tests: the legacy truncating/folding behaviour that the
// Table I attacks rely on must hold exactly.
#include "bpu/mapping.h"

#include <gtest/gtest.h>

namespace stbpu::bpu {
namespace {

const ExecContext kCtx{.pid = 1, .hart = 0, .kernel = false};
const ExecContext kOther{.pid = 2, .hart = 0, .kernel = false};

TEST(BaselineMapping, IgnoresProcessIdentity) {
  const BaselineMapping m;
  const std::uint64_t ip = 0x1234'5678'9ABCULL & kVirtualAddressMask;
  EXPECT_EQ(m.btb_mode1(ip, kCtx), m.btb_mode1(ip, kOther))
      << "legacy BPU keys on virtual address only — cross-process collisions";
  EXPECT_EQ(m.pht_index_1level(ip, kCtx), m.pht_index_1level(ip, kOther));
}

TEST(BaselineMapping, TruncatesAbove30Bits) {
  const BaselineMapping m;
  const std::uint64_t ip = 0x0000'2345'6780ULL;
  const std::uint64_t alias = ip + (1ULL << 30);
  EXPECT_EQ(m.btb_mode1(ip, kCtx), m.btb_mode1(alias, kCtx))
      << "same-address-space aliases (transient trojans [78])";
  EXPECT_EQ(m.pht_index_1level(ip, kCtx), m.pht_index_1level(alias, kCtx));
}

TEST(BaselineMapping, BtbFieldWidths) {
  const BaselineMapping m;
  for (std::uint64_t ip = 0; ip < 4096; ip += 17) {
    const BtbIndex idx = m.btb_mode1(ip * 0x9E3779B9ULL & kVirtualAddressMask, kCtx);
    EXPECT_LT(idx.set, 512u);
    EXPECT_LE(idx.tag, 0xFFu);
    EXPECT_LT(idx.offset, 32u);
  }
}

TEST(BaselineMapping, SetComesFromLowBits) {
  const BaselineMapping m;
  // set = bits 5..13: two addresses differing only in bit 5 land in
  // adjacent sets.
  const std::uint64_t ip = 0x0000'1000'0000ULL;
  EXPECT_EQ(m.btb_mode1(ip, kCtx).set + 1, m.btb_mode1(ip + 32, kCtx).set);
}

TEST(BaselineMapping, TagFoldCollisionsAreConstructible) {
  const BaselineMapping m;
  // fold_xor is linear: flipping the same bit pattern in two folded chunks
  // cancels. bits 14..21 and 22..29 fold onto each other.
  const std::uint64_t ip = 0x0000'2345'6780ULL;
  const std::uint64_t crafted = ip ^ (0x5ULL << 14) ^ (0x5ULL << 22);
  ASSERT_NE(ip, crafted);
  EXPECT_EQ(m.btb_mode1(ip, kCtx).set, m.btb_mode1(crafted, kCtx).set);
  EXPECT_EQ(m.btb_mode1(ip, kCtx).tag, m.btb_mode1(crafted, kCtx).tag);
}

TEST(BaselineMapping, Function5RebuildsNearbyTargets) {
  const BaselineMapping m;
  const std::uint64_t branch = 0x0000'2345'6780ULL;
  const std::uint64_t target = 0x0000'2345'9000ULL;  // same upper 16 bits
  const auto stored = m.encode_target(target, kCtx);
  EXPECT_LE(stored, 0xFFFF'FFFFULL) << "baseline stores 32 bits";
  EXPECT_EQ(m.decode_target(branch, stored, kCtx), target);
}

TEST(BaselineMapping, Function5BreaksFarTargets) {
  const BaselineMapping m;
  // A target whose upper 16 bits differ from the branch's cannot be
  // reconstructed — inherent legacy truncation loss.
  const std::uint64_t branch = 0x7FFF'0000'1000ULL;
  const std::uint64_t target = 0x0000'2345'9000ULL;
  EXPECT_NE(m.decode_target(branch, m.encode_target(target, kCtx), kCtx), target);
}

TEST(BaselineMapping, Mode2TagDependsOnBhb) {
  const BaselineMapping m;
  EXPECT_NE(m.btb_mode2_tag(0x123456, kCtx), m.btb_mode2_tag(0x654321, kCtx));
  EXPECT_EQ(m.btb_mode2_tag(0x123456, kCtx), m.btb_mode2_tag(0x123456, kOther));
}

TEST(BaselineMapping, TwoLevelIndexMixesHistory) {
  const BaselineMapping m;
  const std::uint64_t ip = 0x0000'2345'6780ULL;
  EXPECT_NE(m.pht_index_2level(ip, 0b1010, kCtx), m.pht_index_2level(ip, 0b0101, kCtx));
  // With identical history it reduces to a deterministic index.
  EXPECT_EQ(m.pht_index_2level(ip, 0b1010, kCtx), m.pht_index_2level(ip, 0b1010, kCtx));
}

TEST(BaselineMapping, TageHooksAreDeterministic) {
  const BaselineMapping m;
  const std::uint64_t ip = 0x0000'2345'6780ULL;
  EXPECT_EQ(m.tage_index(ip, 0xABC, 3, 10, kCtx), m.tage_index(ip, 0xABC, 3, 10, kCtx));
  EXPECT_LT(m.tage_index(ip, 0xABC, 3, 10, kCtx), 1u << 10);
  EXPECT_LT(m.tage_tag(ip, 0xABC, 3, 8, kCtx), 1u << 8);
  EXPECT_LT(m.perceptron_row(ip, 10, kCtx), 1u << 10);
}

}  // namespace
}  // namespace stbpu::bpu
