#include "bpu/btb.h"

#include <gtest/gtest.h>

namespace stbpu::bpu {
namespace {

BtbIndex idx(std::uint32_t set, std::uint64_t tag, std::uint32_t off = 0) {
  return BtbIndex{.set = set, .tag = tag, .offset = off};
}

TEST(Btb, MissOnEmpty) {
  BranchTargetBuffer btb;
  EXPECT_FALSE(btb.lookup(idx(3, 7), 0).hit);
}

TEST(Btb, InsertThenHit) {
  BranchTargetBuffer btb;
  btb.insert(idx(3, 7), 0xABCD, 0);
  const auto r = btb.lookup(idx(3, 7), 0);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.payload, 0xABCDu);
}

TEST(Btb, TagAndOffsetBothMatch) {
  BranchTargetBuffer btb;
  btb.insert(idx(3, 7, 1), 0xABCD, 0);
  EXPECT_FALSE(btb.lookup(idx(3, 7, 2), 0).hit);   // offset mismatch
  EXPECT_FALSE(btb.lookup(idx(3, 8, 1), 0).hit);   // tag mismatch
  EXPECT_TRUE(btb.lookup(idx(3, 7, 1), 0).hit);
}

TEST(Btb, OverwriteSameKeyIsNotEviction) {
  BranchTargetBuffer btb;
  btb.insert(idx(3, 7), 1, 0);
  const auto r = btb.insert(idx(3, 7), 2, 0);
  EXPECT_TRUE(r.hit);
  EXPECT_FALSE(r.evicted);
  EXPECT_EQ(btb.lookup(idx(3, 7), 0).payload, 2u);
}

TEST(Btb, EvictsLruWhenSetFull) {
  BranchTargetBuffer btb({.sets = 4, .ways = 2});
  btb.insert(idx(1, 10), 10, 0);
  btb.insert(idx(1, 11), 11, 0);
  // Touch tag 10 so 11 is LRU.
  EXPECT_TRUE(btb.lookup(idx(1, 10), 0).hit);
  const auto r = btb.insert(idx(1, 12), 12, 0);
  EXPECT_TRUE(r.evicted);
  EXPECT_TRUE(btb.lookup(idx(1, 10), 0).hit);   // survivor
  EXPECT_FALSE(btb.lookup(idx(1, 11), 0).hit);  // LRU victim
  EXPECT_TRUE(btb.lookup(idx(1, 12), 0).hit);
}

TEST(Btb, InvalidWaysPreferredOverEviction) {
  BranchTargetBuffer btb({.sets = 4, .ways = 4});
  for (unsigned i = 0; i < 4; ++i) {
    const auto r = btb.insert(idx(2, i), i, 0);
    EXPECT_FALSE(r.evicted) << "way " << i;
  }
  EXPECT_TRUE(btb.insert(idx(2, 99), 99, 0).evicted);
}

TEST(Btb, SetsAreIndependent) {
  BranchTargetBuffer btb({.sets = 4, .ways = 1});
  btb.insert(idx(0, 5), 50, 0);
  btb.insert(idx(1, 5), 51, 0);
  EXPECT_EQ(btb.lookup(idx(0, 5), 0).payload, 50u);
  EXPECT_EQ(btb.lookup(idx(1, 5), 0).payload, 51u);
}

TEST(Btb, FlushInvalidatesEverything) {
  BranchTargetBuffer btb;
  btb.insert(idx(3, 7), 1, 0);
  btb.insert(idx(4, 8), 2, 0);
  EXPECT_EQ(btb.valid_entries(), 2u);
  btb.flush();
  EXPECT_EQ(btb.valid_entries(), 0u);
  EXPECT_FALSE(btb.lookup(idx(3, 7), 0).hit);
}

TEST(Btb, FlushIndirectKeepsDirectEntries) {
  BranchTargetBuffer btb;
  btb.insert(idx(1, 1), 1, 0, /*indirect=*/false);
  btb.insert(idx(2, 2), 2, 0, /*indirect=*/true);
  btb.flush_indirect();
  EXPECT_TRUE(btb.lookup(idx(1, 1), 0).hit);
  EXPECT_FALSE(btb.lookup(idx(2, 2), 0).hit);
}

TEST(Btb, InvalidateSpecificEntry) {
  BranchTargetBuffer btb;
  btb.insert(idx(3, 7), 1, 0);
  EXPECT_TRUE(btb.invalidate(idx(3, 7), 0));
  EXPECT_FALSE(btb.lookup(idx(3, 7), 0).hit);
  EXPECT_FALSE(btb.invalidate(idx(3, 7), 0));  // already gone
}

TEST(Btb, HartPartitioningSeparatesThreads) {
  BranchTargetBuffer shared({.sets = 8, .ways = 1, .partition_by_hart = false});
  shared.insert(idx(3, 7), 1, /*hart=*/0);
  EXPECT_TRUE(shared.lookup(idx(3, 7), /*hart=*/1).hit) << "shared BTB must alias";

  BranchTargetBuffer stibp({.sets = 8, .ways = 1, .partition_by_hart = true});
  stibp.insert(idx(3, 7), 1, /*hart=*/0);
  EXPECT_FALSE(stibp.lookup(idx(3, 7), /*hart=*/1).hit)
      << "STIBP partition must isolate SMT siblings";
  EXPECT_TRUE(stibp.lookup(idx(3, 7), /*hart=*/0).hit);
}

TEST(Btb, PartitionHalvesCapacityPerHart) {
  BranchTargetBuffer stibp({.sets = 8, .ways = 1, .partition_by_hart = true});
  // Sets 0..7 from hart 0 land in the lower half (4 effective sets).
  for (unsigned s = 0; s < 8; ++s) {
    stibp.insert(idx(s, 100 + s), s, 0);
  }
  EXPECT_LE(stibp.valid_entries(), 4u);
}

TEST(Btb, SetIndexWrapsModuloSets) {
  BranchTargetBuffer btb({.sets = 4, .ways = 1});
  btb.insert(idx(5, 7), 1, 0);  // 5 mod 4 == 1
  EXPECT_TRUE(btb.lookup(idx(1, 7), 0).hit);
}

class BtbGeometry : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(BtbGeometry, FillToCapacityWithoutEviction) {
  const auto [sets, ways] = GetParam();
  BranchTargetBuffer btb({.sets = sets, .ways = ways});
  unsigned evictions = 0;
  for (unsigned s = 0; s < sets; ++s) {
    for (unsigned w = 0; w < ways; ++w) {
      evictions += btb.insert(idx(s, w), s * ways + w, 0).evicted ? 1 : 0;
    }
  }
  EXPECT_EQ(evictions, 0u);
  EXPECT_EQ(btb.valid_entries(), std::size_t{sets} * ways);
  // One more insert per set must evict.
  evictions = 0;
  for (unsigned s = 0; s < sets; ++s) {
    evictions += btb.insert(idx(s, 9999), 0, 0).evicted ? 1 : 0;
  }
  EXPECT_EQ(evictions, sets);
}

INSTANTIATE_TEST_SUITE_P(Geometries, BtbGeometry,
                         ::testing::Values(std::pair{4u, 2u}, std::pair{16u, 4u},
                                           std::pair{64u, 8u}, std::pair{512u, 8u},
                                           std::pair{256u, 8u}));

}  // namespace
}  // namespace stbpu::bpu
