// CorePredictor behaviour: direction learning, target caching, RSB return
// prediction, mode-2 indirect prediction, event generation, flush scopes.
#include "bpu/predictor.h"

#include <gtest/gtest.h>

#include "bpu/direction.h"
#include "bpu/mapping.h"

namespace stbpu::bpu {
namespace {

const ExecContext kCtx{.pid = 1, .hart = 0, .kernel = false};

class CorePredictorTest : public ::testing::Test {
 protected:
  CorePredictorTest()
      : core_({}, &mapping_, std::make_unique<SklCondPredictor>(&mapping_)) {}

  AccessResult run(std::uint64_t ip, BranchType type, bool taken, std::uint64_t target,
                   const ExecContext& ctx = kCtx) {
    return core_.access({.ip = ip, .target = target, .type = type, .taken = taken,
                         .ctx = ctx});
  }

  BaselineMapping mapping_;
  CorePredictor core_;
};

TEST_F(CorePredictorTest, LearnsDirectJumpTarget) {
  const auto first = run(0x1000, BranchType::kDirectJump, true, 0x9000);
  EXPECT_FALSE(first.target_correct) << "cold BTB cannot know the target";
  const auto second = run(0x1000, BranchType::kDirectJump, true, 0x9000);
  EXPECT_TRUE(second.target_correct);
  EXPECT_TRUE(second.overall_correct);
}

TEST_F(CorePredictorTest, LearnsConditionalDirection) {
  // Train taken thrice — the hybrid PHT must converge.
  for (int i = 0; i < 3; ++i) run(0x2000, BranchType::kConditional, true, 0x2800);
  const auto res = run(0x2000, BranchType::kConditional, true, 0x2800);
  EXPECT_TRUE(res.direction_correct);
  EXPECT_TRUE(res.pred.taken);
}

TEST_F(CorePredictorTest, NotTakenConditionalNeedsNoTarget) {
  for (int i = 0; i < 3; ++i) run(0x2000, BranchType::kConditional, false, 0x2800);
  const auto res = run(0x2000, BranchType::kConditional, false, 0x2800);
  EXPECT_TRUE(res.overall_correct);
  EXPECT_FALSE(res.pred.taken);
}

TEST_F(CorePredictorTest, TakenConditionalNeedsTargetToo) {
  // Direction learned but BTB never sees the target (first taken run
  // trains it, so check the very first access).
  const auto res = run(0x3000, BranchType::kConditional, true, 0x3800);
  EXPECT_FALSE(res.overall_correct) << "OAE: direction AND target required";
}

TEST_F(CorePredictorTest, ReturnPredictedThroughRsb) {
  run(0x4000, BranchType::kDirectCall, true, 0x8000);
  const auto ret = run(0x8080, BranchType::kReturn, true, 0x4000 + kBranchInstrLen);
  EXPECT_TRUE(ret.target_correct);
  EXPECT_FALSE(ret.rsb_underflow);
}

TEST_F(CorePredictorTest, NestedCallsUnwindInOrder) {
  run(0x4000, BranchType::kDirectCall, true, 0x8000);
  run(0x8040, BranchType::kDirectCall, true, 0x9000);
  const auto r1 = run(0x9080, BranchType::kReturn, true, 0x8040 + kBranchInstrLen);
  EXPECT_TRUE(r1.target_correct);
  const auto r2 = run(0x8080, BranchType::kReturn, true, 0x4000 + kBranchInstrLen);
  EXPECT_TRUE(r2.target_correct);
}

TEST_F(CorePredictorTest, RsbUnderflowReported) {
  const auto res = run(0x9080, BranchType::kReturn, true, 0x1234);
  EXPECT_TRUE(res.rsb_underflow);
}

TEST_F(CorePredictorTest, RsbIsPerHart) {
  ExecContext h0 = kCtx;
  ExecContext h1 = kCtx;
  h1.hart = 1;
  run(0x4000, BranchType::kDirectCall, true, 0x8000, h0);
  // Hart 1's return cannot consume hart 0's RSB entry.
  const auto res = run(0x8080, BranchType::kReturn, true, 0x4004, h1);
  EXPECT_TRUE(res.rsb_underflow);
}

TEST_F(CorePredictorTest, IndirectLearnsTargetWithStableHistory) {
  // With a repeating history context, mode 2 should learn the target.
  for (int rep = 0; rep < 4; ++rep) {
    // Fixed history walk.
    for (int i = 0; i < 30; ++i) {
      run(0x6000 + i * 16, BranchType::kDirectJump, true, 0x6000 + i * 16 + 16);
    }
    run(0x7000, BranchType::kIndirectJump, true, 0xAAA0);
  }
  for (int i = 0; i < 30; ++i) {
    run(0x6000 + i * 16, BranchType::kDirectJump, true, 0x6000 + i * 16 + 16);
  }
  const auto res = run(0x7000, BranchType::kIndirectJump, true, 0xAAA0);
  EXPECT_TRUE(res.target_correct);
}

TEST_F(CorePredictorTest, EvictionEventFiresWhenSetOverflows) {
  // 9 branches with identical set+offset bits but different tags (tag is a
  // fold of bits 14..29) overflow the 8-way set.
  bool evicted = false;
  for (unsigned i = 0; i < 9; ++i) {
    const std::uint64_t ip = 0x1000 | (std::uint64_t{i} << 14);
    const auto res = run(ip, BranchType::kDirectJump, true, 0x9000);
    evicted |= res.btb_eviction;
  }
  EXPECT_TRUE(evicted);
}

TEST_F(CorePredictorTest, EventSinkReceivesEvents) {
  struct CountingSink final : IEventSink {
    unsigned misp = 0, evict = 0;
    void on_misprediction(const ExecContext&, bool) override { ++misp; }
    void on_btb_eviction(const ExecContext&) override { ++evict; }
  } sink;
  core_.set_event_sink(&sink);
  run(0x1000, BranchType::kDirectJump, true, 0x9000);  // cold miss
  EXPECT_EQ(sink.misp, 1u);
  run(0x1000, BranchType::kDirectJump, true, 0x9000);  // now correct
  EXPECT_EQ(sink.misp, 1u);
  for (unsigned i = 0; i < 9; ++i) {
    run(0x1000 | (std::uint64_t{i} << 14), BranchType::kDirectJump, true, 0x9000);
  }
  EXPECT_GT(sink.evict, 0u);
}

TEST_F(CorePredictorTest, FlushForgetsEverything) {
  run(0x1000, BranchType::kDirectJump, true, 0x9000);
  core_.flush();
  const auto res = run(0x1000, BranchType::kDirectJump, true, 0x9000);
  EXPECT_FALSE(res.target_correct);
}

TEST_F(CorePredictorTest, FlushTargetsKeepsDirectEntries) {
  run(0x1000, BranchType::kDirectJump, true, 0x9000);
  core_.flush_targets();  // IBRS: only indirect state goes
  const auto res = run(0x1000, BranchType::kDirectJump, true, 0x9000);
  EXPECT_TRUE(res.target_correct) << "direct targets survive an IBRS barrier";
}

TEST_F(CorePredictorTest, FlushTargetsDropsRsb) {
  run(0x4000, BranchType::kDirectCall, true, 0x8000);
  core_.flush_targets();
  const auto ret = run(0x8080, BranchType::kReturn, true, 0x4004);
  EXPECT_TRUE(ret.rsb_underflow);
}

TEST_F(CorePredictorTest, PredictOnlyDoesNotTrain) {
  const BranchRecord rec{.ip = 0x1000, .target = 0x9000,
                         .type = BranchType::kDirectJump, .taken = true, .ctx = kCtx};
  (void)core_.predict_only(rec);
  // Still cold: a real access must see a target miss.
  const auto res = core_.access(rec);
  EXPECT_FALSE(res.target_correct);
}

TEST_F(CorePredictorTest, PredictOnlyDoesNotPopRsb) {
  run(0x4000, BranchType::kDirectCall, true, 0x8000);
  const BranchRecord ret{.ip = 0x8080, .target = 0x4004,
                         .type = BranchType::kReturn, .taken = true, .ctx = kCtx};
  (void)core_.predict_only(ret);
  EXPECT_EQ(core_.rsb(0).depth(), 1u);
}

}  // namespace
}  // namespace stbpu::bpu
