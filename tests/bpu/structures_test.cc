// PHT, RSB, GHR and BHB unit tests.
#include <gtest/gtest.h>

#include "bpu/history.h"
#include "bpu/pht.h"
#include "bpu/rsb.h"

namespace stbpu::bpu {
namespace {

// ---------------------------------------------------------------- PHT ----

TEST(Pht, DefaultPredictsNotTaken) {
  PatternHistoryTable pht(16);
  for (unsigned i = 0; i < 16; ++i) EXPECT_FALSE(pht.predict(i));
}

TEST(Pht, LearnsTakenAfterTwoUpdates) {
  PatternHistoryTable pht(16);
  pht.update(3, true);
  EXPECT_TRUE(pht.predict(3));  // weakly-NT + 1 = weakly-T
}

TEST(Pht, HysteresisSurvivesOneFlip) {
  PatternHistoryTable pht(16);
  pht.update(3, true);
  pht.update(3, true);  // strongly taken
  pht.update(3, false);
  EXPECT_TRUE(pht.predict(3));  // still taken (hysteresis)
  pht.update(3, false);
  EXPECT_FALSE(pht.predict(3));
}

TEST(Pht, IndexWrapsToTableSize) {
  PatternHistoryTable pht(16);
  pht.update(3, true);
  EXPECT_TRUE(pht.predict(3 + 16));  // aliasing by construction
}

TEST(Pht, FlushResets) {
  PatternHistoryTable pht(16);
  pht.update(3, true);
  pht.update(3, true);
  pht.flush();
  EXPECT_FALSE(pht.predict(3));
  EXPECT_EQ(pht.raw(3), 1);  // weakly not-taken reset state
}

TEST(Pht, EntriesIndependent) {
  PatternHistoryTable pht(16);
  pht.update(3, true);
  EXPECT_FALSE(pht.predict(4));
}

// ---------------------------------------------------------------- RSB ----

TEST(Rsb, PopEmptyUnderflows) {
  ReturnStackBuffer rsb;
  EXPECT_FALSE(rsb.pop().has_value());
}

TEST(Rsb, LifoOrder) {
  ReturnStackBuffer rsb;
  rsb.push(1);
  rsb.push(2);
  rsb.push(3);
  EXPECT_EQ(rsb.pop(), 3u);
  EXPECT_EQ(rsb.pop(), 2u);
  EXPECT_EQ(rsb.pop(), 1u);
  EXPECT_FALSE(rsb.pop().has_value());
}

TEST(Rsb, OverflowWrapsAndLosesOldest) {
  ReturnStackBuffer rsb;
  for (std::uint64_t i = 0; i < ReturnStackBuffer::kEntries + 4; ++i) rsb.push(i);
  EXPECT_EQ(rsb.depth(), ReturnStackBuffer::kEntries);
  // The 16 newest survive: 4..19, popped newest-first.
  for (std::uint64_t i = ReturnStackBuffer::kEntries + 3;; --i) {
    const auto v = rsb.pop();
    if (!v.has_value()) break;
    EXPECT_EQ(*v, i);
    if (i == 4) {
      EXPECT_FALSE(rsb.pop().has_value());
      break;
    }
  }
}

TEST(Rsb, PeekDoesNotPop) {
  ReturnStackBuffer rsb;
  rsb.push(7);
  EXPECT_EQ(rsb.peek(), 7u);
  EXPECT_EQ(rsb.depth(), 1u);
  EXPECT_EQ(rsb.pop(), 7u);
}

TEST(Rsb, PokeTopOverwrites) {
  ReturnStackBuffer rsb;
  rsb.push(7);
  rsb.poke_top(9);
  EXPECT_EQ(rsb.pop(), 9u);
}

TEST(Rsb, FlushEmpties) {
  ReturnStackBuffer rsb;
  rsb.push(1);
  rsb.flush();
  EXPECT_EQ(rsb.depth(), 0u);
  EXPECT_FALSE(rsb.pop().has_value());
}

// ---------------------------------------------------------------- GHR ----

TEST(Ghr, ShiftsInOutcomes) {
  GlobalHistoryRegister ghr(4);
  ghr.push(true);
  ghr.push(false);
  ghr.push(true);
  EXPECT_EQ(ghr.value(), 0b101u);
}

TEST(Ghr, MasksToWidth) {
  GlobalHistoryRegister ghr(3);
  for (int i = 0; i < 10; ++i) ghr.push(true);
  EXPECT_EQ(ghr.value(), 0b111u);
}

TEST(Ghr, ClearAndSet) {
  GlobalHistoryRegister ghr(8);
  ghr.set(0xFFFF);  // masked to 8 bits
  EXPECT_EQ(ghr.value(), 0xFFu);
  ghr.clear();
  EXPECT_EQ(ghr.value(), 0u);
}

// ---------------------------------------------------------------- BHB ----

TEST(Bhb, AccumulatesContext) {
  BranchHistoryBuffer bhb;
  bhb.push(0x1000, 0x2000);
  const auto v1 = bhb.value();
  EXPECT_NE(v1, 0u);
  bhb.push(0x3000, 0x4000);
  EXPECT_NE(bhb.value(), v1);
}

TEST(Bhb, SameSequenceSameValue) {
  BranchHistoryBuffer a, b;
  for (int i = 0; i < 40; ++i) {
    a.push(0x1000 + i * 64, 0x2000 + i * 32);
    b.push(0x1000 + i * 64, 0x2000 + i * 32);
  }
  EXPECT_EQ(a.value(), b.value());
}

TEST(Bhb, OldHistoryAges) {
  // After enough pushes, the initial state no longer matters (58-bit
  // register, 2-bit shift per branch → 29-branch context window).
  BranchHistoryBuffer a, b;
  a.push(0xAAAA, 0xBBBB);  // divergent prefix
  for (int i = 0; i < 40; ++i) {
    a.push(0x1000 + i * 64, 0x2000);
    b.push(0x1000 + i * 64, 0x2000);
  }
  EXPECT_EQ(a.value(), b.value());
}

TEST(Bhb, StaysWithin58Bits) {
  BranchHistoryBuffer bhb;
  for (int i = 0; i < 200; ++i) bhb.push(~0ULL, ~0ULL);
  EXPECT_LE(bhb.value(), util::mask(BranchHistoryBuffer::kBits));
}

}  // namespace
}  // namespace stbpu::bpu
