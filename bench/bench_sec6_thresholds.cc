// Section VI-A5: complexities and thresholds — thin compatibility shim: the implementation lives in the
// 'sec6_thresholds' scenario (src/exp/), and this binary behaves exactly like
// `stbpu_bench run sec6_thresholds` (same flags, same BENCH_sec6_thresholds.json).
#include "exp/driver.h"

int main(int argc, char** argv) {
  return stbpu::exp::scenario_main("sec6_thresholds", argc, argv);
}
