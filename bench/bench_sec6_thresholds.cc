// §VI-A5 + §VII-A reproduction: the analytic attack-complexity table for
// the Skylake-like geometry and the derived ST re-randomization thresholds
// Γ = r·C. These are the numbers the paper prints: BTB reuse M≈6.9e8 /
// E≈2^21, PHT reuse M≈8.38e5, BTB eviction E≈5.3e5, Spectre v2/RSB ≈2^31;
// thresholds 8.3e4/5.3e4 at r=0.1 and 4.15e4/2.65e4 at r=0.05.
#include <cmath>

#include "analysis/equations.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace stbpu;
  const auto scale = bench::Scale::parse(argc, argv);
  scale.banner("Section VI-A5: attack complexities and re-randomization thresholds");
  bench::BenchJson json("sec6_thresholds", scale);

  std::printf("structure parameters (Table III, Skylake-like baseline):\n");
  const analysis::BtbGeometry btb{};
  std::printf("  BTB: W=%g ways, I=%g sets, T=%g tags, O=%g offsets, Omega=2^32\n",
              btb.ways, btb.sets, btb.tag_space, btb.offset_space);
  std::printf("  PHT: I=%g counters (effective T*O=%g — calibration, DESIGN.md)\n\n",
              analysis::PhtGeometry{}.sets, analysis::kPhtEffectiveTagOffset);

  std::printf("%-48s %16s %16s\n", "attack", "mispredictions", "evictions");
  bench::rule();
  for (const auto& row : analysis::section_vi5_table()) {
    std::printf("%-48s %16.4g %16.4g\n", row.attack.c_str(), row.mispredictions,
                row.evictions);
    json.row(row.attack)
        .set("mispredictions", row.mispredictions)
        .set("evictions", row.evictions);
  }
  std::printf("\npaper constants: 6.9e8 / 2^21 (BTB reuse), 8.38e5 (PHT reuse),\n"
              "5.3e5 (BTB eviction at P=0.5), 2^31 (target injection)\n\n");

  std::printf("naive eviction-set guessing (Eq. 3): P = (1/I)^(W-1) = %.3g\n\n",
              analysis::naive_eviction_set_probability(btb));

  std::printf("GEM eviction cost (Eq. 4) by target success rate P:\n");
  for (const double p : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    std::printf("  P=%-5g E ~= %12.4g\n", p, analysis::gem_eviction_cost(btb, p));
  }

  std::printf("\nre-randomization thresholds Gamma = r*C (binding C: M=%.4g, E=%.4g):\n",
              analysis::binding_complexity().mispredictions_c,
              analysis::binding_complexity().evictions_c);
  std::printf("%-8s %16s %16s\n", "r", "misp. threshold", "evict threshold");
  for (const double r : {1.0, 0.1, 0.05, 0.01, 0.001}) {
    const auto t = analysis::derive_thresholds(r);
    std::printf("%-8g %16llu %16llu%s\n", r,
                static_cast<unsigned long long>(t.mispredictions),
                static_cast<unsigned long long>(t.evictions),
                r == 0.05 ? "   <- paper's deployment choice" : "");
    char label[32];
    std::snprintf(label, sizeof label, "thresholds_r=%g", r);
    json.row(label)
        .set("difficulty_r", r)
        .set("misprediction_threshold", std::uint64_t{t.mispredictions})
        .set("eviction_threshold", std::uint64_t{t.evictions});
  }
  json.write();
  return 0;
}
