// Table I: attack surface, executed — thin compatibility shim: the implementation lives in the
// 'table1_attack_surface' scenario (src/exp/), and this binary behaves exactly like
// `stbpu_bench run table1_attack_surface` (same flags, same BENCH_table1_attack_surface.json).
#include "exp/driver.h"

int main(int argc, char** argv) {
  return stbpu::exp::scenario_main("table1_attack_surface", argc, argv);
}
