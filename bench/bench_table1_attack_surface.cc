// Table I reproduction: the collision-based attack surface, executed cell
// by cell against the unprotected baseline, the microcode-protected model,
// the conservative model, and STBPU. Each cell prints the attack's
// per-trial success rate (blind-guess baselines: 0.5 for 1-bit leaks, 0 for
// injection/steering) plus the attacker's event bill.
#include <functional>
#include <string>
#include <vector>

#include "attacks/table1.h"
#include "bench_common.h"
#include "models/models.h"

int main(int argc, char** argv) {
  using namespace stbpu;
  const auto scale = bench::Scale::parse(argc, argv);
  scale.banner("Table I: collision-based attack surface, executed");
  bench::BenchJson json("table1_attack_surface", scale);
  const unsigned trials = scale.paper ? 512 : 128;
  constexpr std::uint64_t kGadget = 0x0000'1122'3344ULL;

  using Attack = std::function<attacks::AttackResult(bpu::IPredictor&)>;
  struct Cell {
    const char* cls;
    Attack run;
  };
  const std::vector<Cell> cells = {
      {"RB-HE BTB ", [&](bpu::IPredictor& b) { return attacks::btb_reuse_home(b, trials, 1); }},
      {"RB-HE PHT ", [&](bpu::IPredictor& b) { return attacks::pht_reuse_home(b, trials, 2); }},
      {"RB-HE RSB ", [&](bpu::IPredictor& b) { return attacks::rsb_reuse_home(b, trials, 3); }},
      {"RB-AE PHT ", [&](bpu::IPredictor& b) { return attacks::pht_reuse_away(b, trials, 4); }},
      {"RB-AE BTB ", [&](bpu::IPredictor& b) { return attacks::btb_injection_away(b, trials, 5, kGadget); }},
      {"RB-AE RSB ", [&](bpu::IPredictor& b) { return attacks::rsb_injection_away(b, trials, 6, kGadget); }},
      {"RB same-AS", [&](bpu::IPredictor& b) { return attacks::same_address_space_trojan(b, trials, 7, kGadget); }},
      {"EB-HE BTB ", [&](bpu::IPredictor& b) { return attacks::btb_eviction_home(b, trials, 8); }},
      {"EB-AE BTB ", [&](bpu::IPredictor& b) { return attacks::btb_eviction_away(b, trials, 9); }},
      {"EB-HE RSB ", [&](bpu::IPredictor& b) { return attacks::rsb_eviction_home(b, trials, 10); }},
      {"EB-AE RSB ", [&](bpu::IPredictor& b) { return attacks::rsb_eviction_away(b, trials, 11); }},
  };

  const models::ModelKind kinds[] = {models::ModelKind::kUnprotected,
                                     models::ModelKind::kUcode1,
                                     models::ModelKind::kConservative,
                                     models::ModelKind::kStbpu};
  const char* knames[] = {"baseline", "ucode1", "conserv", "STBPU"};

  std::printf("%-11s %-46s", "class", "attack");
  for (const char* k : knames) std::printf(" %9s", k);
  std::printf("\n");
  bench::rule(' ', 0);
  bench::rule();

  // One pool job per (attack, model) cell.
  struct Cells {
    std::string name;
    double rates[4] = {};
    bool success[4] = {};
  };
  std::vector<Cells> results(cells.size());
  std::vector<std::function<void()>> jobs;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (unsigned k = 0; k < 4; ++k) {
      jobs.emplace_back([&, c, k] {
        auto model = models::BpuModel::create({.model = kinds[k]});
        const auto r = cells[c].run(*model);
        results[c].rates[k] = r.success_rate;
        results[c].success[k] = r.success;
        if (k == 0) results[c].name = r.name;
      });
    }
  }
  bench::Stopwatch sweep;
  bench::run_parallel(jobs, scale.jobs);

  for (std::size_t c = 0; c < cells.size(); ++c) {
    std::printf("%-11s %-46s", cells[c].cls, results[c].name.c_str());
    auto& row = json.row(results[c].name).set("class", cells[c].cls);
    for (unsigned k = 0; k < 4; ++k) {
      std::printf("  %6.3f %c", results[c].rates[k], results[c].success[k] ? '!' : '.');
      row.set(std::string(knames[k]) + "_success_rate", results[c].rates[k]);
      row.set(std::string(knames[k]) + "_succeeds",
              results[c].success[k] ? "true" : "false");
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  json.meta("sweep_seconds", sweep.seconds()).meta("trials", std::uint64_t{trials});
  json.write();

  std::printf("\nlegend: '!' attack succeeds, '.' attack defeated (rate at blind-guess level)\n");
  std::printf("expected: every row '!' on baseline; STBPU '.' everywhere except the\n"
              "RSB occupancy channels (content-independent; leak call counts only).\n"
              "ucode stays '!' on the same-address-space trojan — flushing cannot\n"
              "separate a trojan from its victim inside one context (paper §II-A).\n");
  return 0;
}
