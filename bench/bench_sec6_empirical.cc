// Section VI: empirical equation validation — thin compatibility shim: the implementation lives in the
// 'sec6_empirical' scenario (src/exp/), and this binary behaves exactly like
// `stbpu_bench run sec6_empirical` (same flags, same BENCH_sec6_empirical.json).
#include "exp/driver.h"

int main(int argc, char** argv) {
  return stbpu::exp::scenario_main("sec6_empirical", argc, argv);
}
