// Empirical validation of the §VI equations on scaled structures: the
// brute-force reuse search (Eq. 2) and GEM eviction-set construction
// (Eq. 4) are executed against shrunken ST-mapped BTBs, and the measured
// attacker event bills are compared with the closed forms evaluated at the
// same geometry. Attack cost grows with I·T·O, so the full-size numbers of
// §VI-A5 (10^5..10^8 events) are validated by extrapolation.
#include <algorithm>
#include <functional>
#include <vector>

#include "analysis/equations.h"
#include "attacks/brute.h"
#include "attacks/gem.h"
#include "attacks/scaled.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace stbpu;
  using attacks::ScaledGeometry;
  const auto scale = bench::Scale::parse(argc, argv);
  scale.banner("Section VI: empirical equation validation on scaled structures");
  bench::BenchJson json("sec6_empirical", scale);
  const unsigned reps = scale.paper ? 15 : 7;

  std::printf("-- Eq. (2): brute-force reuse-collision search against ST mapping --\n");
  std::printf("%-24s %10s | %12s %12s | %12s %12s\n", "geometry (I,T,O,W)", "I*T*O",
              "meas. M", "eq. M", "meas. |SB|", "eq. n");
  bench::rule();
  const ScaledGeometry geoms[] = {
      {.set_bits = 3, .tag_bits = 3, .offset_bits = 1, .ways = 4},
      {.set_bits = 4, .tag_bits = 3, .offset_bits = 1, .ways = 4},
      {.set_bits = 4, .tag_bits = 4, .offset_bits = 1, .ways = 8},
      {.set_bits = 5, .tag_bits = 4, .offset_bits = 2, .ways = 8},
  };
  constexpr std::size_t kNumGeoms = sizeof(geoms) / sizeof(geoms[0]);
  // One pool job per (geometry, repetition): each builds an independent
  // scaled target and searcher, writing into its own slot.
  struct Run {
    bool found = false;
    std::uint64_t misp = 0, size = 0;
  };
  std::vector<std::vector<Run>> runs(kNumGeoms, std::vector<Run>(reps));
  std::vector<std::function<void()>> jobs;
  for (std::size_t gi = 0; gi < kNumGeoms; ++gi) {
    for (unsigned rep = 0; rep < reps; ++rep) {
      jobs.emplace_back([&, gi, rep] {
        const auto& g = geoms[gi];
        auto target = attacks::make_scaled_target(g, /*stbpu=*/true, 1000 + rep);
        attacks::ReuseSearchConfig cfg;
        cfg.seed = 77 + rep;
        cfg.max_set_size = 64 * g.ito();
        const auto r = attacks::reuse_collision_search(*target.predictor, cfg);
        runs[gi][rep] = {.found = r.found, .misp = r.mispredictions, .size = r.set_size};
      });
    }
  }
  bench::Stopwatch sweep;
  bench::run_parallel(jobs, scale.jobs);
  json.meta("sweep_seconds", sweep.seconds());

  for (std::size_t gi = 0; gi < kNumGeoms; ++gi) {
    const auto& g = geoms[gi];
    std::vector<std::uint64_t> misp, sizes;
    for (const auto& r : runs[gi]) {
      if (r.found) {
        misp.push_back(r.misp);
        sizes.push_back(r.size);
      }
    }
    std::sort(misp.begin(), misp.end());
    std::sort(sizes.begin(), sizes.end());
    analysis::BtbGeometry eq;
    eq.sets = static_cast<double>(g.sets());
    eq.tag_space = static_cast<double>(g.tag_space());
    eq.offset_space = static_cast<double>(g.offset_space());
    eq.ways = g.ways;
    const auto predicted = analysis::btb_reuse_cost(eq);
    std::printf("I=%-3llu T=%-3llu O=%-2llu W=%-2u %10llu | %12llu %12.4g | %12llu %12.4g\n",
                static_cast<unsigned long long>(g.sets()),
                static_cast<unsigned long long>(g.tag_space()),
                static_cast<unsigned long long>(g.offset_space()), g.ways,
                static_cast<unsigned long long>(g.ito()),
                static_cast<unsigned long long>(misp.empty() ? 0 : misp[misp.size() / 2]),
                predicted.mispredictions_m,
                static_cast<unsigned long long>(sizes.empty() ? 0 : sizes[sizes.size() / 2]),
                predicted.set_size_n);
    char label[96];
    std::snprintf(label, sizeof label, "reuse_I%llu_T%llu_O%llu_W%u",
                  static_cast<unsigned long long>(g.sets()),
                  static_cast<unsigned long long>(g.tag_space()),
                  static_cast<unsigned long long>(g.offset_space()), g.ways);
    json.row(label)
        .set("ito", std::uint64_t{g.ito()})
        .set("measured_mispredictions", misp.empty() ? std::uint64_t{0} : misp[misp.size() / 2])
        .set("equation_mispredictions", predicted.mispredictions_m)
        .set("measured_set_size", sizes.empty() ? std::uint64_t{0} : sizes[sizes.size() / 2])
        .set("equation_set_size", predicted.set_size_n);
    std::fflush(stdout);
  }
  std::printf("(median over %u runs. Eq. (2) uses birthday-scale factors per pair and\n"
              " is a deliberate over-estimate of the observation count — conservative\n"
              " for threshold derivation; measured |SB| tracks n within ~2x and both\n"
              " M columns grow superlinearly in I*T*O, validating the scaling law)\n\n",
              reps);

  std::printf("-- Eq. (4): GEM eviction-set construction cost --\n");
  std::printf("%-24s | %12s %12s | %s\n", "geometry", "meas. evict", "eq. E(P=1)",
              "success");
  bench::rule();
  for (const auto& g : geoms) {
    auto target = attacks::make_scaled_target(g, /*stbpu=*/true, 4242);
    attacks::GemConfig cfg;
    cfg.ways = g.ways;
    cfg.sets_hint = static_cast<unsigned>(g.sets());
    const auto r = attacks::gem_eviction_set(*target.predictor, 0x0000'2345'6780ULL, cfg);
    analysis::BtbGeometry eq;
    eq.sets = static_cast<double>(g.sets());
    eq.ways = g.ways;
    std::printf("I=%-3llu W=%-2u              | %12llu %12.4g | %s (|set|=%zu)\n",
                static_cast<unsigned long long>(g.sets()), g.ways,
                static_cast<unsigned long long>(r.evictions),
                analysis::gem_eviction_cost(eq, 1.0),
                r.success ? "yes" : "no", r.eviction_set.size());
    std::fflush(stdout);
  }

  std::printf("\n-- the monitor wins the race --\n");
  {
    const ScaledGeometry g{.set_bits = 6, .tag_bits = 5, .offset_bits = 2, .ways = 8};
    // Thresholds scaled to the structure exactly as §VII-A does for the
    // full-size BPU (r = 0.05 of the binding complexity).
    analysis::BtbGeometry eq;
    eq.sets = static_cast<double>(g.sets());
    eq.ways = g.ways;
    core::MonitorConfig mc;
    mc.eviction_threshold = static_cast<std::uint64_t>(
        0.05 * analysis::gem_eviction_cost(eq, 0.5));
    mc.misprediction_threshold = 1'000'000;
    auto target = attacks::make_scaled_target(g, /*stbpu=*/true, 99, &mc);
    attacks::GemConfig cfg;
    cfg.ways = g.ways;
    cfg.sets_hint = static_cast<unsigned>(g.sets());
    const auto r = attacks::gem_eviction_set(*target.predictor, 0x0000'2345'6780ULL, cfg);
    std::printf("GEM vs STBPU(I=%llu, Gamma_E=%llu): evictions=%llu, ST rotations=%llu\n",
                static_cast<unsigned long long>(g.sets()),
                static_cast<unsigned long long>(mc.eviction_threshold),
                static_cast<unsigned long long>(r.evictions),
                static_cast<unsigned long long>(target.stm->rerandomizations()));
    std::printf("every rotation invalidates the partially-built eviction set —\n"
                "the attacker restarts from scratch (paper §IV-A).\n");
    json.row("monitor_race")
        .set("evictions", std::uint64_t{r.evictions})
        .set("rotations", std::uint64_t{target.stm->rerandomizations()});
  }
  json.write();
  return 0;
}
