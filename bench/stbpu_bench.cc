// The unified experiment driver: list/describe/run/merge any registered
// scenario (see docs/EXPERIMENTS.md).
#include "exp/driver.h"

int main(int argc, char** argv) { return stbpu::exp::driver_main(argc, argv); }
