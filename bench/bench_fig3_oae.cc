// Figure 3: OAE accuracy of the five BPU models — thin compatibility shim: the implementation lives in the
// 'fig3_oae' scenario (src/exp/), and this binary behaves exactly like
// `stbpu_bench run fig3_oae` (same flags, same BENCH_fig3_oae.json).
#include "exp/driver.h"

int main(int argc, char** argv) {
  return stbpu::exp::scenario_main("fig3_oae", argc, argv);
}
