// Figure 3 reproduction: overall effective prediction accuracy (OAE),
// normalized to the unprotected baseline, for the five BPU models over the
// 23 SPEC CPU 2017 traces and 14 user/server application traces.
// Paper reference averages: STBPU 0.99, ucode1 0.88, ucode2 0.82,
// conservative 0.77 (flush/partition designs collapse on switch-heavy app
// workloads; STBPU stays at the baseline).
#include <vector>

#include "bench_common.h"
#include "models/models.h"
#include "sim/bpu_sim.h"
#include "trace/generator.h"
#include "trace/profile.h"

int main(int argc, char** argv) {
  using namespace stbpu;
  const auto scale = bench::Scale::parse(argc, argv);
  scale.banner("Figure 3: OAE prediction accuracy, STBPU vs secure BPU models");

  const sim::BpuSimOptions opt{.max_branches = scale.trace_branches,
                               .warmup_branches = scale.trace_warmup};
  const models::ModelKind kinds[] = {
      models::ModelKind::kUnprotected, models::ModelKind::kUcode1,
      models::ModelKind::kUcode2, models::ModelKind::kConservative,
      models::ModelKind::kStbpu};
  const char* cols[] = {"baseline", "ucode1", "ucode2", "conserv", "STBPU"};

  std::printf("%-24s %9s %9s %9s %9s %9s   (normalized OAE; baseline column absolute)\n",
              "workload", cols[0], cols[1], cols[2], cols[3], cols[4]);
  bench::rule();

  std::vector<double> norm_sum(5, 0.0);
  const auto profiles = trace::figure3_profiles();
  for (const auto& profile : profiles) {
    trace::SyntheticWorkloadGenerator gen(profile);
    double base_oae = 0.0;
    std::printf("%-24s", profile.name.c_str());
    for (unsigned k = 0; k < 5; ++k) {
      gen.reset();
      auto model = models::BpuModel::create({.model = kinds[k]});
      const auto stats = sim::simulate_bpu(*model, gen, opt);
      if (k == 0) {
        base_oae = stats.oae();
        norm_sum[0] += 1.0;
        std::printf(" %9.4f", base_oae);
      } else {
        const double norm = base_oae > 0 ? stats.oae() / base_oae : 0.0;
        norm_sum[k] += norm;
        std::printf(" %9.4f", norm);
      }
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  bench::rule();
  std::printf("%-24s %9s", "AVERAGE (normalized)", "1.0000");
  for (unsigned k = 1; k < 5; ++k) {
    std::printf(" %9.4f", norm_sum[k] / static_cast<double>(profiles.size()));
  }
  std::printf("\n\npaper averages:                      ucode1 ~0.88, ucode2 ~0.82, "
              "conservative ~0.77, STBPU ~0.99\n");
  return 0;
}
