// Figure 3 reproduction: overall effective prediction accuracy (OAE),
// normalized to the unprotected baseline, for the five BPU models over the
// 23 SPEC CPU 2017 traces and 14 user/server application traces.
// Paper reference averages: STBPU 0.99, ucode1 0.88, ucode2 0.82,
// conservative 0.77 (flush/partition designs collapse on switch-heavy app
// workloads; STBPU stays at the baseline).
//
// Workloads run as thread-pool jobs over the devirtualized engine
// (bit-identical to the legacy BpuModel — see the equivalence test); each
// job materializes its trace once and replays it through all five models.
#include <array>
#include <functional>
#include <vector>

#include "bench_common.h"
#include "models/engine.h"
#include "models/models.h"
#include "sim/bpu_sim.h"
#include "trace/generator.h"
#include "trace/profile.h"
#include "trace/stream.h"

int main(int argc, char** argv) {
  using namespace stbpu;
  const auto scale = bench::Scale::parse(argc, argv);
  scale.banner("Figure 3: OAE prediction accuracy, STBPU vs secure BPU models");
  bench::BenchJson json("fig3_oae", scale);

  const sim::BpuSimOptions opt{.max_branches = scale.trace_branches,
                               .warmup_branches = scale.trace_warmup};
  const models::ModelKind kinds[] = {
      models::ModelKind::kUnprotected, models::ModelKind::kUcode1,
      models::ModelKind::kUcode2, models::ModelKind::kConservative,
      models::ModelKind::kStbpu};
  const char* cols[] = {"baseline", "ucode1", "ucode2", "conserv", "STBPU"};

  const auto profiles = trace::figure3_profiles();
  std::vector<std::array<double, 5>> oae(profiles.size());

  std::vector<std::function<void()>> jobs;
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    jobs.emplace_back([&, p] {
      trace::SyntheticWorkloadGenerator gen(profiles[p]);
      trace::VectorStream stream(
          trace::collect(gen, opt.warmup_branches + opt.max_branches));
      for (unsigned k = 0; k < 5; ++k) {
        stream.reset();
        auto model = models::make_engine({.model = kinds[k]});
        oae[p][k] = models::replay_engine(*model, stream, opt).oae();
      }
    });
  }
  bench::Stopwatch sweep;
  bench::run_parallel(jobs, scale.jobs);
  const double sweep_secs = sweep.seconds();

  std::printf("%-24s %9s %9s %9s %9s %9s   (normalized OAE; baseline column absolute)\n",
              "workload", cols[0], cols[1], cols[2], cols[3], cols[4]);
  bench::rule();

  std::vector<double> norm_sum(5, 0.0);
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    const double base_oae = oae[p][0];
    std::printf("%-24s %9.4f", profiles[p].name.c_str(), base_oae);
    auto& row = json.row(profiles[p].name).set("baseline_oae", base_oae);
    norm_sum[0] += 1.0;
    for (unsigned k = 1; k < 5; ++k) {
      const double norm = base_oae > 0 ? oae[p][k] / base_oae : 0.0;
      norm_sum[k] += norm;
      std::printf(" %9.4f", norm);
      row.set(std::string(cols[k]) + "_norm_oae", norm);
    }
    std::printf("\n");
  }

  bench::rule();
  std::printf("%-24s %9s", "AVERAGE (normalized)", "1.0000");
  auto& avg = json.row("AVERAGE");
  for (unsigned k = 1; k < 5; ++k) {
    const double v = norm_sum[k] / static_cast<double>(profiles.size());
    std::printf(" %9.4f", v);
    avg.set(std::string(cols[k]) + "_norm_oae", v);
  }
  std::printf("\n\npaper averages:                      ucode1 ~0.88, ucode2 ~0.82, "
              "conservative ~0.77, STBPU ~0.99\n");

  json.meta("sweep_seconds", sweep_secs)
      .meta("workloads", std::uint64_t{profiles.size()})
      .meta("branches_per_workload", std::uint64_t{opt.warmup_branches + opt.max_branches});
  json.write();
  return 0;
}
