// Ablation study (extension beyond the paper's figures, motivated by its
// design discussion): STBPU combines three mechanisms — keyed remapping
// (ψ), target encryption (φ), and event-triggered re-randomization. Each
// is load-bearing for a different attack class:
//   * remap-only  (φ = 0): SpectreRSB still works — the RSB is a stack,
//     not an indexed table, so only encryption protects its payloads;
//   * encrypt-only (legacy indices + φ codec): BranchScope still works —
//     PHT counters store directions, not targets, so encryption is moot;
//   * no monitor: brute-force collision search eventually succeeds — the
//     keyed mapping is non-cryptographic by construction (§V) and relies
//     on re-randomization to stay ahead of reverse engineering.
#include <array>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "attacks/brute.h"
#include "attacks/table1.h"
#include "bench_common.h"
#include "bpu/direction.h"
#include "bpu/predictor.h"
#include "core/monitor.h"
#include "core/stbpu_mapping.h"

namespace {

using namespace stbpu;

/// ψ-remapping without φ-encryption.
class RemapOnlyMapping final : public bpu::MappingProvider {
 public:
  explicit RemapOnlyMapping(core::STManager* stm) : inner_(stm) {}
  bpu::BtbIndex btb_mode1(std::uint64_t ip, const bpu::ExecContext& c) const override {
    return inner_.btb_mode1(ip, c);
  }
  std::uint32_t btb_mode2_tag(std::uint64_t b, const bpu::ExecContext& c) const override {
    return inner_.btb_mode2_tag(b, c);
  }
  std::uint32_t pht_index_1level(std::uint64_t ip, const bpu::ExecContext& c) const override {
    return inner_.pht_index_1level(ip, c);
  }
  std::uint32_t pht_index_2level(std::uint64_t ip, std::uint64_t g,
                                 const bpu::ExecContext& c) const override {
    return inner_.pht_index_2level(ip, g, c);
  }
  std::uint64_t encode_target(std::uint64_t t, const bpu::ExecContext&) const override {
    return t & 0xFFFF'FFFFULL;  // plaintext store
  }
  std::uint64_t decode_target(std::uint64_t ip, std::uint64_t s,
                              const bpu::ExecContext&) const override {
    return (ip & 0xFFFF'0000'0000ULL) | (s & 0xFFFF'FFFFULL);
  }
  std::uint32_t tage_index(std::uint64_t ip, std::uint64_t f, unsigned t, unsigned b,
                           const bpu::ExecContext& c) const override {
    return inner_.tage_index(ip, f, t, b, c);
  }
  std::uint32_t tage_tag(std::uint64_t ip, std::uint64_t f, unsigned t, unsigned b,
                         const bpu::ExecContext& c) const override {
    return inner_.tage_tag(ip, f, t, b, c);
  }
  std::uint32_t perceptron_row(std::uint64_t ip, unsigned b,
                               const bpu::ExecContext& c) const override {
    return inner_.perceptron_row(ip, b, c);
  }

 private:
  core::StbpuMapping inner_;
};

/// φ-encryption on top of the legacy (deterministic) index mapping.
class EncryptOnlyMapping final : public bpu::BaselineMapping {
 public:
  explicit EncryptOnlyMapping(core::STManager* stm) : stm_(stm) {}
  std::uint64_t encode_target(std::uint64_t t, const bpu::ExecContext& c) const override {
    return (t & 0xFFFF'FFFFULL) ^ stm_->token(c).phi;
  }
  std::uint64_t decode_target(std::uint64_t ip, std::uint64_t s,
                              const bpu::ExecContext& c) const override {
    return (ip & 0xFFFF'0000'0000ULL) | ((s ^ stm_->token(c).phi) & 0xFFFF'FFFFULL);
  }

 private:
  core::STManager* stm_;
};

struct Variant {
  const char* name;
  std::unique_ptr<core::STManager> stm;
  std::unique_ptr<bpu::MappingProvider> mapping;
  std::unique_ptr<core::EventMonitor> monitor;
  std::unique_ptr<bpu::CorePredictor> bpu;
};

Variant make_variant(int which) {
  Variant v;
  v.stm = std::make_unique<core::STManager>(0x1234);
  switch (which) {
    case 0:
      v.name = "full STBPU";
      v.mapping = std::make_unique<core::StbpuMapping>(v.stm.get());
      v.monitor = std::make_unique<core::EventMonitor>(
          v.stm.get(), core::MonitorConfig::from_difficulty(0.05, false));
      break;
    case 1:
      v.name = "remap only (no phi)";
      v.mapping = std::make_unique<RemapOnlyMapping>(v.stm.get());
      break;
    case 2:
      v.name = "encrypt only (no psi)";
      v.mapping = std::make_unique<EncryptOnlyMapping>(v.stm.get());
      break;
    case 3:
      v.name = "no monitor";
      v.mapping = std::make_unique<core::StbpuMapping>(v.stm.get());
      break;
  }
  v.bpu = std::make_unique<bpu::CorePredictor>(
      bpu::CorePredictorConfig{}, v.mapping.get(),
      std::make_unique<bpu::SklCondPredictor>(v.mapping.get()), v.monitor.get());
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = stbpu::bench::Scale::parse(argc, argv);
  scale.banner("Ablation: which STBPU mechanism stops which attack");
  stbpu::bench::BenchJson json("ablation", scale);
  const unsigned trials = scale.paper ? 512 : 128;
  constexpr std::uint64_t kGadget = 0x0000'1122'3344ULL;

  // One pool job per (variant, attack) cell; each job wires its own
  // predictor so the attacks never share mutable state.
  struct Row {
    const char* name = "";
    stbpu::attacks::AttackResult rsb{}, pht{};
    std::uint64_t rerands = 0;
  };
  std::array<Row, 4> rows;
  std::vector<std::function<void()>> jobs;
  for (int which = 0; which < 4; ++which) {
    jobs.emplace_back([&, which] {
      auto v = make_variant(which);
      rows[which].name = v.name;
      rows[which].rsb = stbpu::attacks::rsb_injection_away(*v.bpu, trials, 6, kGadget);
    });
    jobs.emplace_back([&, which] {
      auto v = make_variant(which);
      rows[which].pht = stbpu::attacks::pht_reuse_home(*v.bpu, trials, 2);
    });
    jobs.emplace_back([&, which] {
      auto v = make_variant(which);
      stbpu::attacks::ReuseSearchConfig cfg;
      cfg.max_set_size = scale.paper ? 400'000 : 60'000;
      cfg.internal_collision_checks = false;
      (void)stbpu::attacks::reuse_collision_search(*v.bpu, cfg);
      rows[which].rerands = v.stm->rerandomizations();
    });
  }
  stbpu::bench::Stopwatch sweep;
  stbpu::bench::run_parallel(jobs, scale.jobs);

  std::printf("%-24s | %12s %12s %12s\n", "variant", "SpectreRSB", "BranchScope",
              "rotations*");
  stbpu::bench::rule();
  for (const auto& row : rows) {
    std::printf("%-24s | %9.3f %c  %9.3f %c  %12llu\n", row.name, row.rsb.success_rate,
                row.rsb.success ? '!' : '.', row.pht.success_rate,
                row.pht.success ? '!' : '.', static_cast<unsigned long long>(row.rerands));
    json.row(row.name)
        .set("spectre_rsb_success_rate", row.rsb.success_rate)
        .set("branchscope_success_rate", row.pht.success_rate)
        .set("rotations", row.rerands);
  }
  json.meta("sweep_seconds", sweep.seconds()).meta("trials", std::uint64_t{trials});
  json.write();
  std::printf("\n* ST rotations while a brute-force collision search probes the BTB\n"
              "(fresh branches, constant evictions). Each mechanism is necessary:\n"
              "dropping phi re-opens SpectreRSB (the RSB is a stack — remapping\n"
              "cannot protect it); dropping psi re-opens BranchScope (directions\n"
              "are not targets — encryption cannot protect them); dropping the\n"
              "monitor gives brute force unlimited time against a non-cryptographic\n"
              "keyed hash (paper §V) — 0 rotations means nothing ever stops it.\n");
  return 0;
}
