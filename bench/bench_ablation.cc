// Ablation: which STBPU mechanism stops which attack — thin compatibility shim: the implementation lives in the
// 'ablation' scenario (src/exp/), and this binary behaves exactly like
// `stbpu_bench run ablation` (same flags, same BENCH_ablation.json).
#include "exp/driver.h"

int main(int argc, char** argv) {
  return stbpu::exp::scenario_main("ablation", argc, argv);
}
