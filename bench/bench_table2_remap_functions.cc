// Table II: remap-function microbenchmarks — thin compatibility shim: the implementation lives in the
// 'table2_remap_functions' scenario (src/exp/), and this binary behaves exactly like
// `stbpu_bench run table2_remap_functions` (same flags, same BENCH_table2_remap_functions.json).
#include "exp/driver.h"

int main(int argc, char** argv) {
  return stbpu::exp::scenario_main("table2_remap_functions", argc, argv);
}
