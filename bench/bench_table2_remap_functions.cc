// Table II reproduction + remap-function microbenchmarks (google-benchmark):
// the I/O geometry of every baseline and STBPU function, and the per-call
// cost of the software rendering of the R-functions (the hardware cost is
// the transistor budget — see bench_fig2_remapgen).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bpu/mapping.h"
#include "core/remap.h"
#include "core/secret_token.h"
#include "core/stbpu_mapping.h"

namespace {

using namespace stbpu;

void print_table2() {
  std::printf("== Table II: I/O bits for baseline and STBPU functions ==\n");
  std::printf("%-4s %-28s %-28s %-22s %s\n", "fn", "baseline input", "STBPU input",
              "output", "mapping");
  std::printf("%-4s %-28s %-28s %-22s %s\n", "1", "32 s", "32 psi, 48 s",
              "9 ind, 8 tag, 5 offs", "R1(80 -> 22)");
  std::printf("%-4s %-28s %-28s %-22s %s\n", "2", "58 BHB", "32 psi, 58 BHB", "8 tag",
              "R2(90 -> 8)");
  std::printf("%-4s %-28s %-28s %-22s %s\n", "3", "32 s", "32 psi, 48 s", "14 ind",
              "R3(80 -> 14)");
  std::printf("%-4s %-28s %-28s %-22s %s\n", "4", "18 GHR, 32 s", "32 psi, 16 GHR, 48 s",
              "14 ind", "R4(96 -> 14)");
  std::printf("%-4s %-28s %-28s %-22s %s\n", "t", "48 s, L(GHR)", "32 psi, 48 s, L(GHR)",
              "10/13 ind, 8/12 tag", "Rt(80+ -> 25)");
  std::printf("%-4s %-28s %-28s %-22s %s\n\n", "p", "48 s", "32 psi, 48 s", "10 ind",
              "Rp(80 -> 10)");
}

const bpu::ExecContext kCtx{.pid = 1, .hart = 0, .kernel = false};

void BM_Baseline_F1(benchmark::State& state) {
  bpu::BaselineMapping m;
  std::uint64_t ip = 0x0000'2345'6780ULL;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.btb_mode1(ip, kCtx));
    ip += 16;
  }
}
BENCHMARK(BM_Baseline_F1);

void BM_Stbpu_R1(benchmark::State& state) {
  std::uint64_t ip = 0x0000'2345'6780ULL;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Remapper::r1(0xDEADBEEF, ip));
    ip += 16;
  }
}
BENCHMARK(BM_Stbpu_R1);

void BM_Stbpu_R2(benchmark::State& state) {
  std::uint64_t bhb = 0x12345;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Remapper::r2(0xDEADBEEF, bhb));
    bhb = bhb * 3 + 1;
  }
}
BENCHMARK(BM_Stbpu_R2);

void BM_Stbpu_R3(benchmark::State& state) {
  std::uint64_t ip = 0x0000'2345'6780ULL;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Remapper::r3(0xDEADBEEF, ip));
    ip += 16;
  }
}
BENCHMARK(BM_Stbpu_R3);

void BM_Stbpu_R4(benchmark::State& state) {
  std::uint64_t ip = 0x0000'2345'6780ULL;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Remapper::r4(0xDEADBEEF, ip, ip & 0xFFFF));
    ip += 16;
  }
}
BENCHMARK(BM_Stbpu_R4);

void BM_Stbpu_Rt(benchmark::State& state) {
  std::uint64_t ip = 0x0000'2345'6780ULL;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Remapper::rt_index(0xDEADBEEF, ip, ip >> 3, 5, 13));
    ip += 16;
  }
}
BENCHMARK(BM_Stbpu_Rt);

void BM_Stbpu_Rp(benchmark::State& state) {
  std::uint64_t ip = 0x0000'2345'6780ULL;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Remapper::rp(0xDEADBEEF, ip, 10));
    ip += 16;
  }
}
BENCHMARK(BM_Stbpu_Rp);

void BM_TargetCodecRoundtrip(benchmark::State& state) {
  core::STManager stm(1);
  core::StbpuMapping map(&stm);
  std::uint64_t t = 0x0000'2345'9000ULL;
  for (auto _ : state) {
    const auto enc = map.encode_target(t, kCtx);
    benchmark::DoNotOptimize(map.decode_target(0x0000'2345'6780ULL, enc, kCtx));
    t += 64;
  }
}
BENCHMARK(BM_TargetCodecRoundtrip);

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\nnote: in hardware each R-function is a <=45-transistor-deep circuit\n"
              "(single cycle); these numbers measure the simulator's software stand-in.\n");
  return 0;
}
