// Table II reproduction + remap-function microbenchmarks (google-benchmark):
// the I/O geometry of every baseline and STBPU function, and the per-call
// cost of the software rendering of the R-functions (the hardware cost is
// the transistor budget — see bench_fig2_remapgen).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "bpu/mapping.h"
#include "core/remap.h"
#include "core/remap_cache.h"
#include "core/secret_token.h"
#include "core/stbpu_mapping.h"

namespace {

using namespace stbpu;

void print_table2() {
  std::printf("== Table II: I/O bits for baseline and STBPU functions ==\n");
  std::printf("%-4s %-28s %-28s %-22s %s\n", "fn", "baseline input", "STBPU input",
              "output", "mapping");
  std::printf("%-4s %-28s %-28s %-22s %s\n", "1", "32 s", "32 psi, 48 s",
              "9 ind, 8 tag, 5 offs", "R1(80 -> 22)");
  std::printf("%-4s %-28s %-28s %-22s %s\n", "2", "58 BHB", "32 psi, 58 BHB", "8 tag",
              "R2(90 -> 8)");
  std::printf("%-4s %-28s %-28s %-22s %s\n", "3", "32 s", "32 psi, 48 s", "14 ind",
              "R3(80 -> 14)");
  std::printf("%-4s %-28s %-28s %-22s %s\n", "4", "18 GHR, 32 s", "32 psi, 16 GHR, 48 s",
              "14 ind", "R4(96 -> 14)");
  std::printf("%-4s %-28s %-28s %-22s %s\n", "t", "48 s, L(GHR)", "32 psi, 48 s, L(GHR)",
              "10/13 ind, 8/12 tag", "Rt(80+ -> 25)");
  std::printf("%-4s %-28s %-28s %-22s %s\n\n", "p", "48 s", "32 psi, 48 s", "10 ind",
              "Rp(80 -> 10)");
}

const bpu::ExecContext kCtx{.pid = 1, .hart = 0, .kernel = false};

void BM_Baseline_F1(benchmark::State& state) {
  bpu::BaselineMapping m;
  std::uint64_t ip = 0x0000'2345'6780ULL;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.btb_mode1(ip, kCtx));
    ip += 16;
  }
}
BENCHMARK(BM_Baseline_F1);

void BM_Stbpu_R1(benchmark::State& state) {
  std::uint64_t ip = 0x0000'2345'6780ULL;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Remapper::r1(0xDEADBEEF, ip));
    ip += 16;
  }
}
BENCHMARK(BM_Stbpu_R1);

void BM_Stbpu_R2(benchmark::State& state) {
  std::uint64_t bhb = 0x12345;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Remapper::r2(0xDEADBEEF, bhb));
    bhb = bhb * 3 + 1;
  }
}
BENCHMARK(BM_Stbpu_R2);

void BM_Stbpu_R3(benchmark::State& state) {
  std::uint64_t ip = 0x0000'2345'6780ULL;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Remapper::r3(0xDEADBEEF, ip));
    ip += 16;
  }
}
BENCHMARK(BM_Stbpu_R3);

void BM_Stbpu_R4(benchmark::State& state) {
  std::uint64_t ip = 0x0000'2345'6780ULL;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Remapper::r4(0xDEADBEEF, ip, ip & 0xFFFF));
    ip += 16;
  }
}
BENCHMARK(BM_Stbpu_R4);

void BM_Stbpu_Rt(benchmark::State& state) {
  std::uint64_t ip = 0x0000'2345'6780ULL;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Remapper::rt_index(0xDEADBEEF, ip, ip >> 3, 5, 13));
    ip += 16;
  }
}
BENCHMARK(BM_Stbpu_Rt);

void BM_Stbpu_Rp(benchmark::State& state) {
  std::uint64_t ip = 0x0000'2345'6780ULL;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Remapper::rp(0xDEADBEEF, ip, 10));
    ip += 16;
  }
}
BENCHMARK(BM_Stbpu_Rp);

void BM_CachedR1_Hit(benchmark::State& state) {
  // The devirtualized engine's hot path: R1 through the memo-cache with a
  // resident working set (site-keyed lookups hit ~always in traces).
  core::STManager stm(1);
  core::CachedStbpuMapping map(&stm);
  std::uint64_t ip = 0x0000'2345'6780ULL;
  unsigned i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.btb_mode1(ip + 16 * (i & 255), kCtx));
    ++i;
  }
}
BENCHMARK(BM_CachedR1_Hit);

void BM_CachedR4_Churn(benchmark::State& state) {
  // History-keyed worst case: every (ip, GHR) pair fresh — the memo-cache
  // pays the probe AND the mix, bounding its overhead over the direct call.
  core::STManager stm(1);
  core::CachedStbpuMapping map(&stm);
  std::uint64_t ip = 0x0000'2345'6780ULL, ghr = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.pht_index_2level(ip, ghr, kCtx));
    ghr = ghr * 6364136223846793005ULL + 1442695040888963407ULL;
  }
}
BENCHMARK(BM_CachedR4_Churn);

void BM_TargetCodecRoundtrip(benchmark::State& state) {
  core::STManager stm(1);
  core::StbpuMapping map(&stm);
  std::uint64_t t = 0x0000'2345'9000ULL;
  for (auto _ : state) {
    const auto enc = map.encode_target(t, kCtx);
    benchmark::DoNotOptimize(map.decode_target(0x0000'2345'6780ULL, enc, kCtx));
    t += 64;
  }
}
BENCHMARK(BM_TargetCodecRoundtrip);

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  const auto scale = bench::Scale::parse(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\nnote: in hardware each R-function is a <=45-transistor-deep circuit\n"
              "(single cycle); these numbers measure the simulator's software stand-in.\n");

  // Machine-readable per-call costs (Stopwatch-timed, pool-independent):
  // the direct R functions vs the memo-cached hit path.
  bench::BenchJson json("table2_remap_functions", scale);
  const auto time_ns = [](auto&& fn) {
    constexpr int kIters = 2'000'000;
    bench::Stopwatch sw;
    std::uint64_t acc = 0;
    for (int i = 0; i < kIters; ++i) acc += fn(static_cast<std::uint64_t>(i));
    benchmark::DoNotOptimize(acc);
    return sw.seconds() / kIters * 1e9;
  };
  json.row("R1_direct").set("ns_per_call", time_ns([](std::uint64_t i) {
    return core::Remapper::r1(0xDEADBEEF, 0x2345'6780ULL + 16 * i).set;
  }));
  json.row("R4_direct").set("ns_per_call", time_ns([](std::uint64_t i) {
    return core::Remapper::r4(0xDEADBEEF, 0x2345'6780ULL, i & 0xFFFF);
  }));
  core::STManager stm(1);
  core::CachedStbpuMapping map(&stm);
  json.row("R1_cached_hit").set("ns_per_call", time_ns([&](std::uint64_t i) {
    return map.btb_mode1(0x2345'6780ULL + 16 * (i & 255), kCtx).set;
  }));
  json.row("R4_cached_churn").set("ns_per_call", time_ns([&](std::uint64_t i) {
    return map.pht_index_2level(0x2345'6780ULL, i, kCtx);
  }));
  json.write();
  return 0;
}
