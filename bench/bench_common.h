// Shared bench-harness plumbing: --scale=quick|paper budget selection,
// table printing helpers, a thread-pool experiment runner for sweep
// benches, wall-clock timing, and the BENCH_*.json perf-trajectory writer
// every bench emits for machine consumption (CI artifacts, regression
// tracking).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace stbpu::bench {

struct Scale {
  bool paper = false;
  std::uint64_t trace_branches = 400'000;
  std::uint64_t trace_warmup = 50'000;
  std::uint64_t ooo_instructions = 300'000;
  std::uint64_t ooo_warmup = 30'000;
  unsigned jobs = 0;  ///< worker threads for sweep benches (0 = hardware)

  static Scale parse(int argc, char** argv) {
    Scale s;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--scale=paper") == 0) {
        s.paper = true;
        s.trace_branches = 5'000'000;
        s.trace_warmup = 500'000;
        s.ooo_instructions = 100'000'000;  // paper: 110M incl. warm-up
        s.ooo_warmup = 10'000'000;
      } else if (std::strcmp(argv[i], "--scale=quick") == 0) {
        // defaults
      } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
        std::fprintf(stderr, "unknown scale '%s' (use quick|paper)\n", argv[i]);
      } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
        s.jobs = static_cast<unsigned>(std::strtoul(argv[i] + 7, nullptr, 10));
      }
    }
    return s;
  }

  void banner(const char* what) const {
    std::printf("== %s ==\n", what);
    std::printf("scale: %s (trace %llu+%lluk branches, ooo %llu+%lluk instr)\n\n",
                paper ? "paper" : "quick",
                static_cast<unsigned long long>(trace_branches / 1000),
                static_cast<unsigned long long>(trace_warmup / 1000),
                static_cast<unsigned long long>(ooo_instructions / 1000),
                static_cast<unsigned long long>(ooo_warmup / 1000));
  }
};

inline void rule(char c = '-', int n = 100) {
  for (int i = 0; i < n; ++i) std::putchar(c);
  std::putchar('\n');
}

// ---------------------------------------------------------------------------
// Timing
// ---------------------------------------------------------------------------

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  void restart() { start_ = clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// ---------------------------------------------------------------------------
// Thread-pool experiment runner
// ---------------------------------------------------------------------------

/// Worker count for sweep benches: `requested` if nonzero, else the
/// hardware concurrency (at least 1).
inline unsigned worker_count(unsigned requested, std::size_t jobs) {
  unsigned n = requested != 0 ? requested : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  if (jobs != 0 && n > jobs) n = static_cast<unsigned>(jobs);
  return n;
}

/// Run every job, `workers` at a time (atomic work-stealing index). Each
/// job owns its configuration point and writes results into its own
/// pre-allocated slot, so sweeps stay deterministic regardless of
/// scheduling; callers print/serialize after the pool drains.
inline void run_parallel(const std::vector<std::function<void()>>& jobs,
                         unsigned workers = 0) {
  const unsigned n = worker_count(workers, jobs.size());
  if (n <= 1) {
    for (const auto& job : jobs) job();
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(n);
  for (unsigned w = 0; w < n; ++w) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < jobs.size(); i = next.fetch_add(1)) {
        jobs[i]();
      }
    });
  }
  for (auto& t : pool) t.join();
}

// ---------------------------------------------------------------------------
// BENCH_*.json writer
// ---------------------------------------------------------------------------

/// Minimal JSON string escaping (quotes, backslashes, control chars).
inline std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

/// Accumulates labelled rows of numeric/string fields and writes them as
/// `BENCH_<name>.json` in the working directory:
///   {"bench": "...", "scale": "...", "meta": {...}, "rows": [{...}, ...]}
/// Populate rows after run_parallel drains (single-threaded), in sweep
/// order, so files are reproducible.
class BenchJson {
 public:
  class Row {
   public:
    explicit Row(std::string label) { set("label", std::move(label)); }
    Row& set(const std::string& key, const std::string& value) {
      fields_.emplace_back(key, json_quote(value));
      return *this;
    }
    Row& set(const std::string& key, const char* value) {
      return set(key, std::string(value));
    }
    Row& set(const std::string& key, double value) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.10g", value);
      fields_.emplace_back(key, buf);
      return *this;
    }
    Row& set(const std::string& key, std::uint64_t value) {
      fields_.emplace_back(key, std::to_string(value));
      return *this;
    }
    Row& set(const std::string& key, int value) {
      fields_.emplace_back(key, std::to_string(value));
      return *this;
    }

   private:
    friend class BenchJson;
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  BenchJson(std::string name, const Scale& scale) : name_(std::move(name)) {
    meta("scale", scale.paper ? "paper" : "quick");
  }

  BenchJson& meta(const std::string& key, const std::string& value) {
    meta_.emplace_back(key, json_quote(value));
    return *this;
  }
  BenchJson& meta(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.10g", value);
    meta_.emplace_back(key, buf);
    return *this;
  }
  BenchJson& meta(const std::string& key, std::uint64_t value) {
    meta_.emplace_back(key, std::to_string(value));
    return *this;
  }

  /// rows_ is a deque so the returned reference stays valid across later
  /// row() calls (callers hold a Row& while chaining set()s).
  Row& row(const std::string& label) { return rows_.emplace_back(label); }

  /// Write BENCH_<name>.json; prints the path so operators can find it.
  bool write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": %s,\n", json_quote(name_).c_str());
    for (const auto& [k, v] : meta_) {
      std::fprintf(f, "  %s: %s,\n", json_quote(k).c_str(), v.c_str());
    }
    std::fprintf(f, "  \"rows\": [");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "%s\n    {", i == 0 ? "" : ",");
      const auto& fields = rows_[i].fields_;
      for (std::size_t j = 0; j < fields.size(); ++j) {
        std::fprintf(f, "%s%s: %s", j == 0 ? "" : ", ", json_quote(fields[j].first).c_str(),
                     fields[j].second.c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
    return true;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::deque<Row> rows_;
};

}  // namespace stbpu::bench
