// Shared bench-harness plumbing: --scale=quick|paper budget selection and
// table printing helpers. Every bench prints the paper-style rows for its
// table/figure; `quick` (default) finishes in seconds-to-minutes, `paper`
// uses budgets comparable to the paper's 110M-instruction runs.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

namespace stbpu::bench {

struct Scale {
  bool paper = false;
  std::uint64_t trace_branches = 400'000;
  std::uint64_t trace_warmup = 50'000;
  std::uint64_t ooo_instructions = 300'000;
  std::uint64_t ooo_warmup = 30'000;

  static Scale parse(int argc, char** argv) {
    Scale s;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--scale=paper") == 0) {
        s.paper = true;
        s.trace_branches = 5'000'000;
        s.trace_warmup = 500'000;
        s.ooo_instructions = 100'000'000;  // paper: 110M incl. warm-up
        s.ooo_warmup = 10'000'000;
      } else if (std::strcmp(argv[i], "--scale=quick") == 0) {
        // defaults
      } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
        std::fprintf(stderr, "unknown scale '%s' (use quick|paper)\n", argv[i]);
      }
    }
    return s;
  }

  void banner(const char* what) const {
    std::printf("== %s ==\n", what);
    std::printf("scale: %s (trace %llu+%lluk branches, ooo %llu+%lluk instr)\n\n",
                paper ? "paper" : "quick",
                static_cast<unsigned long long>(trace_branches / 1000),
                static_cast<unsigned long long>(trace_warmup / 1000),
                static_cast<unsigned long long>(ooo_instructions / 1000),
                static_cast<unsigned long long>(ooo_warmup / 1000));
  }
};

inline void rule(char c = '-', int n = 100) {
  for (int i = 0; i < n; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace stbpu::bench
