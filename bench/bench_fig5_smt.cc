// Figure 5: SMT workload-pair evaluation — thin compatibility shim: the implementation lives in the
// 'fig5_smt' scenario (src/exp/), and this binary behaves exactly like
// `stbpu_bench run fig5_smt` (same flags, same BENCH_fig5_smt.json).
#include "exp/driver.h"

int main(int argc, char** argv) {
  return stbpu::exp::scenario_main("fig5_smt", argc, argv);
}
