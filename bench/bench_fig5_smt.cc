// Figure 5 reproduction: SMT-pair evaluation — two SPEC workloads share one
// physical core (and one BPU). Reported: reduction of direction/target
// prediction rates (combined over both threads) and the harmonic-mean
// normalized IPC. Paper averages:
//   direction reduction: ST_Perceptron 0.013, ST_SKLCond 0.038,
//                        ST_TAGE64 0.016, ST_TAGE8 0.019
//   target reduction:    0.037 / 0.004 / 0.021 / 0.017
//   normalized IPC:      1.009 / 0.951 / 0.981 / 0.980
// ST_SKLCond suffers most: it lacks the separate TAGE-table misprediction
// register, so SMT noise re-randomizes it more often (paper §VII-B2).
//
// Each (pair, predictor) point is one thread-pool job over devirtualized
// engines; results land in preallocated slots so the sweep order — and the
// BENCH_fig5_smt.json trajectory — is deterministic.
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "models/engine.h"
#include "models/models.h"
#include "sim/ooo.h"
#include "trace/instr.h"
#include "trace/profile.h"

namespace {
// The 31 pairs of Figure 5, in the paper's axis order.
const char* kPairs[][2] = {
    {"bwaves", "fotonik3d"}, {"bwaves", "cactuBSSN"}, {"bwaves", "leela"},
    {"bwaves", "cam4"},      {"exchange2", "nab"},    {"bwaves", "wrf"},
    {"leela", "namd"},       {"exchange2", "mcf"},    {"bwaves", "deepsjeng"},
    {"exchange2", "fotonik3d"}, {"deepsjeng", "lbm"}, {"bwaves", "namd"},
    {"bwaves", "lbm"},       {"leela", "mcf"},        {"lbm", "xz"},
    {"fotonik3d", "mcf"},    {"lbm", "namd"},         {"lbm", "mcf"},
    {"exchange2", "leela"},  {"fotonik3d", "lbm"},    {"cam4", "mcf"},
    {"nab", "xz"},           {"exchange2", "namd"},   {"bwaves", "roms"},
    {"mcf", "xz"},           {"exchange2", "lbm"},    {"bwaves", "povray"},
    {"fotonik3d", "leela"},  {"fotonik3d", "namd"},   {"deepsjeng", "xz"},
    {"bwaves", "exchange2"}};
constexpr std::size_t kNumPairs = sizeof(kPairs) / sizeof(kPairs[0]);
}  // namespace

int main(int argc, char** argv) {
  using namespace stbpu;
  const auto scale = bench::Scale::parse(argc, argv);
  scale.banner("Figure 5: SMT workload-pair evaluation (harmonic-mean IPC)");
  bench::BenchJson json("fig5_smt", scale);

  const models::DirectionKind dirs[] = {
      models::DirectionKind::kPerceptron, models::DirectionKind::kSklCond,
      models::DirectionKind::kTage64, models::DirectionKind::kTage8};
  const char* names[] = {"PerceptronBP", "SKLCond", "TAGE_SC_L_64KB", "TAGE_SC_L_8KB"};

  struct Cell {
    double dred = 0.0, tred = 0.0, nipc = 0.0;
  };
  std::vector<std::vector<Cell>> cells(kNumPairs, std::vector<Cell>(4));

  std::vector<std::function<void()>> jobs;
  for (std::size_t p = 0; p < kNumPairs; ++p) {
    for (unsigned d = 0; d < 4; ++d) {
      jobs.emplace_back([&, p, d] {
        const auto p0 = trace::profile_by_name(kPairs[p][0]);
        const auto p1 = trace::profile_by_name(kPairs[p][1]);
        double dir[2], tgt[2], hipc[2];
        for (int st = 0; st < 2; ++st) {
          auto model = models::make_engine(
              {.model = st ? models::ModelKind::kStbpu : models::ModelKind::kUnprotected,
               .direction = dirs[d]});
          trace::SyntheticInstrGenerator g0(p0), g1(p1);
          sim::OooCore core({}, model.get(), {&g0, &g1});
          const auto r = core.run(scale.ooo_instructions, scale.ooo_warmup);
          const auto combined = r.combined_stats();
          dir[st] = combined.direction_rate();
          tgt[st] = combined.target_rate();
          hipc[st] = r.ipc_harmonic_mean();
        }
        cells[p][d] = {.dred = dir[0] - dir[1],
                       .tred = tgt[0] - tgt[1],
                       .nipc = hipc[0] > 0 ? hipc[1] / hipc[0] : 0.0};
      });
    }
  }
  bench::Stopwatch sweep;
  bench::run_parallel(jobs, scale.jobs);
  const double sweep_secs = sweep.seconds();

  std::printf("%-22s | %-14s | %10s %10s %10s\n", "pair", "predictor", "dir. red.",
              "tgt. red.", "norm. IPC(H)");
  bench::rule();
  std::vector<double> sum_dir(4, 0.0), sum_tgt(4, 0.0), sum_ipc(4, 0.0);
  for (std::size_t p = 0; p < kNumPairs; ++p) {
    const std::string label = std::string(kPairs[p][0]) + "_" + kPairs[p][1];
    for (unsigned d = 0; d < 4; ++d) {
      const Cell& c = cells[p][d];
      sum_dir[d] += c.dred;
      sum_tgt[d] += c.tred;
      sum_ipc[d] += c.nipc;
      std::printf("%-22s | ST_%-11s | %10.4f %10.4f %10.4f\n", label.c_str(), names[d],
                  c.dred, c.tred, c.nipc);
      json.row(label + "/" + names[d])
          .set("direction_reduction", c.dred)
          .set("target_reduction", c.tred)
          .set("normalized_ipc_harmonic", c.nipc);
    }
  }

  bench::rule();
  for (unsigned d = 0; d < 4; ++d) {
    const double n = static_cast<double>(kNumPairs);
    std::printf("%-22s | ST_%-11s | %10.4f %10.4f %10.4f   (avg)\n", "AVERAGE",
                names[d], sum_dir[d] / n, sum_tgt[d] / n, sum_ipc[d] / n);
    json.row(std::string("AVERAGE/") + names[d])
        .set("direction_reduction", sum_dir[d] / n)
        .set("target_reduction", sum_tgt[d] / n)
        .set("normalized_ipc_harmonic", sum_ipc[d] / n);
  }
  std::printf("\npaper averages: dir red 0.013/0.038/0.016/0.019, "
              "tgt red 0.037/0.004/0.021/0.017, norm IPC 1.009/0.951/0.981/0.980\n");

  json.meta("sweep_seconds", sweep_secs)
      .meta("sweep_jobs", std::uint64_t{jobs.size()})
      .meta("workers", std::uint64_t{bench::worker_count(scale.jobs, jobs.size())});
  json.write();
  return 0;
}
