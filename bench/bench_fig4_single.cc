// Figure 4 reproduction: single-workload cycle-level evaluation of the four
// ST designs against their unprotected counterparts over 18 SPEC workloads.
// Reported per the paper: reduction of direction prediction rate, reduction
// of target prediction rate, and normalized IPC. Paper averages:
//   direction reduction: ST_Perceptron 0.001, ST_SKLCond 0.010,
//                        ST_TAGE64 0.009, ST_TAGE8 0.011
//   target reduction:    0.012 / -0.001 / 0.018 / 0.017
//   normalized IPC:      1.066 / 0.984 / 0.977 / 0.969
// (Table IV machine: 8-issue OoO, ROB 192, IQ/LQ/SQ 64/32/32, 3-level caches.)
#include <vector>

#include "bench_common.h"
#include "models/models.h"
#include "sim/ooo.h"
#include "trace/instr.h"
#include "trace/profile.h"

int main(int argc, char** argv) {
  using namespace stbpu;
  const auto scale = bench::Scale::parse(argc, argv);
  scale.banner("Figure 4: single-workload gem5-style evaluation (Table IV config)");

  const models::DirectionKind dirs[] = {
      models::DirectionKind::kPerceptron, models::DirectionKind::kSklCond,
      models::DirectionKind::kTage64, models::DirectionKind::kTage8};
  const char* names[] = {"PerceptronBP", "SKLCond", "TAGE_SC_L_64KB", "TAGE_SC_L_8KB"};

  std::printf("%-12s | %-14s | %10s %10s %10s\n", "workload", "predictor",
              "dir. red.", "tgt. red.", "norm. IPC");
  bench::rule();

  std::vector<double> sum_dir(4, 0.0), sum_tgt(4, 0.0), sum_ipc(4, 0.0);
  const auto profiles = trace::figure4_profiles();
  for (const auto& profile : profiles) {
    for (unsigned d = 0; d < 4; ++d) {
      double dir[2], tgt[2], ipc[2];
      for (int st = 0; st < 2; ++st) {
        auto model = models::BpuModel::create(
            {.model = st ? models::ModelKind::kStbpu : models::ModelKind::kUnprotected,
             .direction = dirs[d]});
        trace::SyntheticInstrGenerator gen(profile);
        sim::OooCore core({}, model.get(), {&gen});
        const auto r = core.run(scale.ooo_instructions, scale.ooo_warmup);
        dir[st] = r.branch_stats[0].direction_rate();
        tgt[st] = r.branch_stats[0].target_rate();
        ipc[st] = r.ipc[0];
      }
      const double dred = dir[0] - dir[1];
      const double tred = tgt[0] - tgt[1];
      const double nipc = ipc[0] > 0 ? ipc[1] / ipc[0] : 0.0;
      sum_dir[d] += dred;
      sum_tgt[d] += tred;
      sum_ipc[d] += nipc;
      std::printf("%-12s | ST_%-11s | %10.4f %10.4f %10.4f\n", profile.name.c_str(),
                  names[d], dred, tred, nipc);
      std::fflush(stdout);
    }
  }

  bench::rule();
  const double n = static_cast<double>(profiles.size());
  for (unsigned d = 0; d < 4; ++d) {
    std::printf("%-12s | ST_%-11s | %10.4f %10.4f %10.4f   (avg)\n", "AVERAGE",
                names[d], sum_dir[d] / n, sum_tgt[d] / n, sum_ipc[d] / n);
  }
  std::printf("\npaper averages: dir red 0.001/0.010/0.009/0.011, "
              "tgt red 0.012/-0.001/0.018/0.017, norm IPC 1.066/0.984/0.977/0.969\n");
  return 0;
}
