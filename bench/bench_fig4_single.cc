// Figure 4 reproduction: single-workload cycle-level evaluation of the four
// ST designs against their unprotected counterparts over 18 SPEC workloads.
// Reported per the paper: reduction of direction prediction rate, reduction
// of target prediction rate, and normalized IPC. Paper averages:
//   direction reduction: ST_Perceptron 0.001, ST_SKLCond 0.010,
//                        ST_TAGE64 0.009, ST_TAGE8 0.011
//   target reduction:    0.012 / -0.001 / 0.018 / 0.017
//   normalized IPC:      1.066 / 0.984 / 0.977 / 0.969
// (Table IV machine: 8-issue OoO, ROB 192, IQ/LQ/SQ 64/32/32, 3-level caches.)
//
// The bench additionally measures simulator throughput (branches/sec) of
// the devirtualized + remap-cached engine against the virtual-dispatch
// BpuModel on identical materialized traces — the perf trajectory recorded
// in BENCH_fig4_single.json — and cross-checks that both engines produce
// bit-identical statistics.
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "models/engine.h"
#include "models/models.h"
#include "sim/bpu_sim.h"
#include "sim/ooo.h"
#include "trace/generator.h"
#include "trace/instr.h"
#include "trace/profile.h"
#include "trace/stream.h"

namespace {

using namespace stbpu;

struct ThroughputResult {
  std::string label;
  double legacy_bps = 0.0;
  double devirt_bps = 0.0;
  double speedup = 0.0;
  double cache_hit_rate = 0.0;
  bool identical_stats = false;
};

ThroughputResult measure_throughput(const models::ModelSpec& spec,
                                    trace::VectorStream& stream,
                                    const sim::BpuSimOptions& opt, unsigned reps) {
  ThroughputResult r;
  r.label = models::to_string(spec.model) + "/" + models::to_string(spec.direction);
  const double branches =
      static_cast<double>(opt.warmup_branches + opt.max_branches);

  // Interleave repetitions of both paths and keep each path's best time —
  // standard noise suppression for wall-clock microbenchmarks on shared
  // machines. Every repetition uses a freshly built model so both paths
  // start cold and produce the full statistics (compared for identity).
  double legacy_secs = 1e300, devirt_secs = 1e300;
  sim::BranchStats legacy_stats, devirt_stats;
  for (unsigned rep = 0; rep < reps; ++rep) {
    stream.reset();
    auto legacy = models::BpuModel::create(spec);
    bench::Stopwatch sw;
    legacy_stats = sim::simulate_bpu(*legacy, stream, opt);
    legacy_secs = std::min(legacy_secs, std::max(sw.seconds(), 1e-9));

    stream.reset();
    auto engine = models::make_engine(spec);
    sw.restart();
    devirt_stats = models::replay_engine(*engine, stream, opt);
    devirt_secs = std::min(devirt_secs, std::max(sw.seconds(), 1e-9));
    if (rep == 0) {
      r.cache_hit_rate = models::engine_remap_cache_stats(*engine).hit_rate();
    }
  }

  r.legacy_bps = branches / legacy_secs;
  r.devirt_bps = branches / devirt_secs;
  r.speedup = r.devirt_bps / r.legacy_bps;
  r.identical_stats = legacy_stats == devirt_stats;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = bench::Scale::parse(argc, argv);
  scale.banner("Figure 4: single-workload gem5-style evaluation (Table IV config)");
  bench::BenchJson json("fig4_single", scale);

  // --- Engine throughput: devirtualized + remap-cached vs virtual dispatch
  {
    const auto profile = trace::profile_by_name("mcf");
    trace::SyntheticWorkloadGenerator gen(profile);
    const sim::BpuSimOptions opt{.max_branches = scale.trace_branches,
                                 .warmup_branches = scale.trace_warmup};
    trace::VectorStream stream(
        trace::collect(gen, opt.warmup_branches + opt.max_branches));

    const models::ModelSpec combos[] = {
        {.model = models::ModelKind::kUnprotected,
         .direction = models::DirectionKind::kSklCond},
        {.model = models::ModelKind::kStbpu,
         .direction = models::DirectionKind::kSklCond},
        {.model = models::ModelKind::kStbpu,
         .direction = models::DirectionKind::kPerceptron},
        {.model = models::ModelKind::kStbpu,
         .direction = models::DirectionKind::kTage8},
    };

    std::printf("engine throughput on materialized '%s' trace (branches/sec):\n",
                profile.name.c_str());
    std::printf("%-26s | %14s %14s %8s %10s %6s\n", "config", "virtual", "devirt+cache",
                "speedup", "cache hit", "equal");
    bench::rule();
    for (const auto& spec : combos) {
      const auto r = measure_throughput(spec, stream, opt, /*reps=*/3);
      std::printf("%-26s | %14.0f %14.0f %7.2fx %9.1f%% %6s\n", r.label.c_str(),
                  r.legacy_bps, r.devirt_bps, r.speedup, 100.0 * r.cache_hit_rate,
                  r.identical_stats ? "yes" : "NO!");
      std::fflush(stdout);
      json.row(r.label)
          .set("section", "throughput")
          .set("legacy_branches_per_sec", r.legacy_bps)
          .set("devirt_branches_per_sec", r.devirt_bps)
          .set("branches_per_sec", r.devirt_bps)
          .set("speedup", r.speedup)
          .set("remap_cache_hit_rate", r.cache_hit_rate)
          .set("identical_stats", r.identical_stats ? "true" : "false");
    }
    std::printf("\n");
  }

  // --- Figure 4 table (one pool job per workload × predictor) -------------
  const models::DirectionKind dirs[] = {
      models::DirectionKind::kPerceptron, models::DirectionKind::kSklCond,
      models::DirectionKind::kTage64, models::DirectionKind::kTage8};
  const char* names[] = {"PerceptronBP", "SKLCond", "TAGE_SC_L_64KB", "TAGE_SC_L_8KB"};

  struct Cell {
    double dred = 0.0, tred = 0.0, nipc = 0.0;
  };
  const auto profiles = trace::figure4_profiles();
  std::vector<std::vector<Cell>> cells(profiles.size(), std::vector<Cell>(4));

  std::vector<std::function<void()>> jobs;
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    for (unsigned d = 0; d < 4; ++d) {
      jobs.emplace_back([&, p, d] {
        double dir[2], tgt[2], ipc[2];
        for (int st = 0; st < 2; ++st) {
          auto model = models::make_engine(
              {.model = st ? models::ModelKind::kStbpu : models::ModelKind::kUnprotected,
               .direction = dirs[d]});
          trace::SyntheticInstrGenerator gen(profiles[p]);
          sim::OooCore core({}, model.get(), {&gen});
          const auto r = core.run(scale.ooo_instructions, scale.ooo_warmup);
          dir[st] = r.branch_stats[0].direction_rate();
          tgt[st] = r.branch_stats[0].target_rate();
          ipc[st] = r.ipc[0];
        }
        cells[p][d] = {.dred = dir[0] - dir[1],
                       .tred = tgt[0] - tgt[1],
                       .nipc = ipc[0] > 0 ? ipc[1] / ipc[0] : 0.0};
      });
    }
  }
  bench::Stopwatch sweep_timer;
  bench::run_parallel(jobs, scale.jobs);
  const double sweep_secs = sweep_timer.seconds();

  std::printf("%-12s | %-14s | %10s %10s %10s\n", "workload", "predictor",
              "dir. red.", "tgt. red.", "norm. IPC");
  bench::rule();
  std::vector<double> sum_dir(4, 0.0), sum_tgt(4, 0.0), sum_ipc(4, 0.0);
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    for (unsigned d = 0; d < 4; ++d) {
      const Cell& c = cells[p][d];
      sum_dir[d] += c.dred;
      sum_tgt[d] += c.tred;
      sum_ipc[d] += c.nipc;
      std::printf("%-12s | ST_%-11s | %10.4f %10.4f %10.4f\n",
                  profiles[p].name.c_str(), names[d], c.dred, c.tred, c.nipc);
      json.row(profiles[p].name + "/" + names[d])
          .set("section", "figure4")
          .set("direction_reduction", c.dred)
          .set("target_reduction", c.tred)
          .set("normalized_ipc", c.nipc);
    }
  }

  bench::rule();
  const double n = static_cast<double>(profiles.size());
  for (unsigned d = 0; d < 4; ++d) {
    std::printf("%-12s | ST_%-11s | %10.4f %10.4f %10.4f   (avg)\n", "AVERAGE",
                names[d], sum_dir[d] / n, sum_tgt[d] / n, sum_ipc[d] / n);
    json.row(std::string("AVERAGE/") + names[d])
        .set("section", "figure4_average")
        .set("direction_reduction", sum_dir[d] / n)
        .set("target_reduction", sum_tgt[d] / n)
        .set("normalized_ipc", sum_ipc[d] / n);
  }
  std::printf("\npaper averages: dir red 0.001/0.010/0.009/0.011, "
              "tgt red 0.012/-0.001/0.018/0.017, norm IPC 1.066/0.984/0.977/0.969\n");

  json.meta("sweep_seconds", sweep_secs)
      .meta("sweep_jobs", std::uint64_t{jobs.size()})
      .meta("workers", std::uint64_t{bench::worker_count(scale.jobs, jobs.size())});
  json.write();
  return 0;
}
