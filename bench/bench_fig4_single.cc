// Figure 4: single-workload cycle-level evaluation — thin compatibility shim: the implementation lives in the
// 'fig4_single' scenario (src/exp/), and this binary behaves exactly like
// `stbpu_bench run fig4_single` (same flags, same BENCH_fig4_single.json).
#include "exp/driver.h"

int main(int argc, char** argv) {
  return stbpu::exp::scenario_main("fig4_single", argc, argv);
}
