// Figure 6 reproduction: aggressive ST re-randomization. Lowering the
// attack-difficulty factor r (Γ = r·C) simulates defending against ever
// faster attack algorithms. The paper sweeps r for the TAGE_SC_L_64KB
// STBPU in SMT mode (most sensitive to history loss): accuracy stays >95%
// until the thresholds shrink to a few hundred events, where BPU training
// effectively ceases and IPC collapses.
#include <vector>

#include "bench_common.h"
#include "models/models.h"
#include "sim/ooo.h"
#include "trace/instr.h"
#include "trace/profile.h"

int main(int argc, char** argv) {
  using namespace stbpu;
  const auto scale = bench::Scale::parse(argc, argv);
  scale.banner("Figure 6: performance under aggressive re-randomization (r sweep)");

  // SMT pairs averaged (paper: 42 combinations; a representative subset in
  // quick mode).
  const char* pairs[][2] = {{"bwaves", "mcf"},      {"exchange2", "leela"},
                            {"fotonik3d", "namd"},  {"deepsjeng", "xz"},
                            {"bwaves", "exchange2"}, {"leela", "mcf"}};
  const unsigned npairs = scale.paper ? 6 : 4;

  const double rs[] = {0.05, 0.01, 1e-3, 1e-4, 1e-5, 5e-6};

  std::printf("%-10s %14s %14s %12s %12s %12s\n", "r", "misp. thresh",
              "evict thresh", "dir. rate", "tgt. rate", "norm. IPC(H)");
  bench::rule();

  // Unprotected reference per pair (normalization base).
  std::vector<double> base_ipc(npairs, 0.0);
  for (unsigned p = 0; p < npairs; ++p) {
    auto model = models::BpuModel::create(
        {.model = models::ModelKind::kUnprotected,
         .direction = models::DirectionKind::kTage64});
    trace::SyntheticInstrGenerator g0(trace::profile_by_name(pairs[p][0]));
    trace::SyntheticInstrGenerator g1(trace::profile_by_name(pairs[p][1]));
    sim::OooCore core({}, model.get(), {&g0, &g1});
    base_ipc[p] = core.run(scale.ooo_instructions, scale.ooo_warmup).ipc_harmonic_mean();
  }

  for (const double r : rs) {
    double dir = 0, tgt = 0, nipc = 0;
    std::uint64_t rerands = 0;
    core::MonitorConfig mc = core::MonitorConfig::from_difficulty(r, true);
    for (unsigned p = 0; p < npairs; ++p) {
      models::ModelSpec spec{.model = models::ModelKind::kStbpu,
                             .direction = models::DirectionKind::kTage64};
      spec.rerand_difficulty_r = r;
      auto model = models::BpuModel::create(spec);
      trace::SyntheticInstrGenerator g0(trace::profile_by_name(pairs[p][0]));
      trace::SyntheticInstrGenerator g1(trace::profile_by_name(pairs[p][1]));
      sim::OooCore core({}, model.get(), {&g0, &g1});
      const auto res = core.run(scale.ooo_instructions, scale.ooo_warmup);
      const auto combined = res.combined_stats();
      dir += combined.direction_rate();
      tgt += combined.target_rate();
      nipc += base_ipc[p] > 0 ? res.ipc_harmonic_mean() / base_ipc[p] : 0.0;
      rerands += model->tokens()->rerandomizations();
    }
    std::printf("%-10g %14llu %14llu %12.4f %12.4f %12.4f   (%llu rerands)\n", r,
                static_cast<unsigned long long>(mc.misprediction_threshold),
                static_cast<unsigned long long>(mc.eviction_threshold), dir / npairs,
                tgt / npairs, nipc / npairs, static_cast<unsigned long long>(rerands));
    std::fflush(stdout);
  }

  std::printf("\npaper shape: accuracy >95%% down to thresholds of a few thousand\n"
              "events; once thresholds reach a few hundred, re-randomization\n"
              "effectively disables BPU training and throughput collapses.\n");
  return 0;
}
