// Figure 6: aggressive re-randomization sweep — thin compatibility shim: the implementation lives in the
// 'fig6_rsweep' scenario (src/exp/), and this binary behaves exactly like
// `stbpu_bench run fig6_rsweep` (same flags, same BENCH_fig6_rsweep.json).
#include "exp/driver.h"

int main(int argc, char** argv) {
  return stbpu::exp::scenario_main("fig6_rsweep", argc, argv);
}
