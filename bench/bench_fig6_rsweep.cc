// Figure 6 reproduction: aggressive ST re-randomization. Lowering the
// attack-difficulty factor r (Γ = r·C) simulates defending against ever
// faster attack algorithms. The paper sweeps r for the TAGE_SC_L_64KB
// STBPU in SMT mode (most sensitive to history loss): accuracy stays >95%
// until the thresholds shrink to a few hundred events, where BPU training
// effectively ceases and IPC collapses.
//
// Every (r, pair) point — including the unprotected normalization bases —
// is one thread-pool job over devirtualized engines.
#include <functional>
#include <vector>

#include "bench_common.h"
#include "models/engine.h"
#include "models/models.h"
#include "sim/ooo.h"
#include "trace/instr.h"
#include "trace/profile.h"

int main(int argc, char** argv) {
  using namespace stbpu;
  const auto scale = bench::Scale::parse(argc, argv);
  scale.banner("Figure 6: performance under aggressive re-randomization (r sweep)");
  bench::BenchJson json("fig6_rsweep", scale);

  // SMT pairs averaged (paper: 42 combinations; a representative subset in
  // quick mode).
  const char* pairs[][2] = {{"bwaves", "mcf"},      {"exchange2", "leela"},
                            {"fotonik3d", "namd"},  {"deepsjeng", "xz"},
                            {"bwaves", "exchange2"}, {"leela", "mcf"}};
  const unsigned npairs = scale.paper ? 6 : 4;

  const double rs[] = {0.05, 0.01, 1e-3, 1e-4, 1e-5, 5e-6};
  constexpr unsigned kNumRs = 6;

  // Unprotected reference per pair (normalization base) + the sweep grid.
  std::vector<double> base_ipc(npairs, 0.0);
  struct Point {
    double dir = 0.0, tgt = 0.0, hipc = 0.0;
    std::uint64_t rerands = 0;
  };
  std::vector<std::vector<Point>> grid(kNumRs, std::vector<Point>(npairs));

  std::vector<std::function<void()>> jobs;
  for (unsigned p = 0; p < npairs; ++p) {
    jobs.emplace_back([&, p] {
      auto model = models::make_engine(
          {.model = models::ModelKind::kUnprotected,
           .direction = models::DirectionKind::kTage64});
      trace::SyntheticInstrGenerator g0(trace::profile_by_name(pairs[p][0]));
      trace::SyntheticInstrGenerator g1(trace::profile_by_name(pairs[p][1]));
      sim::OooCore core({}, model.get(), {&g0, &g1});
      base_ipc[p] = core.run(scale.ooo_instructions, scale.ooo_warmup).ipc_harmonic_mean();
    });
  }
  for (unsigned ri = 0; ri < kNumRs; ++ri) {
    for (unsigned p = 0; p < npairs; ++p) {
      jobs.emplace_back([&, ri, p] {
        models::ModelSpec spec{.model = models::ModelKind::kStbpu,
                               .direction = models::DirectionKind::kTage64};
        spec.rerand_difficulty_r = rs[ri];
        auto model = models::make_engine(spec);
        trace::SyntheticInstrGenerator g0(trace::profile_by_name(pairs[p][0]));
        trace::SyntheticInstrGenerator g1(trace::profile_by_name(pairs[p][1]));
        sim::OooCore core({}, model.get(), {&g0, &g1});
        const auto res = core.run(scale.ooo_instructions, scale.ooo_warmup);
        const auto combined = res.combined_stats();
        std::uint64_t rerands = 0;
        if (auto* mon = models::engine_monitor(*model)) rerands = mon->rerandomizations();
        grid[ri][p] = {.dir = combined.direction_rate(),
                       .tgt = combined.target_rate(),
                       .hipc = res.ipc_harmonic_mean(),
                       .rerands = rerands};
      });
    }
  }
  bench::Stopwatch sweep;
  bench::run_parallel(jobs, scale.jobs);
  const double sweep_secs = sweep.seconds();

  std::printf("%-10s %14s %14s %12s %12s %12s\n", "r", "misp. thresh",
              "evict thresh", "dir. rate", "tgt. rate", "norm. IPC(H)");
  bench::rule();
  for (unsigned ri = 0; ri < kNumRs; ++ri) {
    const double r = rs[ri];
    const core::MonitorConfig mc = core::MonitorConfig::from_difficulty(r, true);
    double dir = 0, tgt = 0, nipc = 0;
    std::uint64_t rerands = 0;
    for (unsigned p = 0; p < npairs; ++p) {
      dir += grid[ri][p].dir;
      tgt += grid[ri][p].tgt;
      nipc += base_ipc[p] > 0 ? grid[ri][p].hipc / base_ipc[p] : 0.0;
      rerands += grid[ri][p].rerands;
    }
    std::printf("%-10g %14llu %14llu %12.4f %12.4f %12.4f   (%llu rerands)\n", r,
                static_cast<unsigned long long>(mc.misprediction_threshold),
                static_cast<unsigned long long>(mc.eviction_threshold), dir / npairs,
                tgt / npairs, nipc / npairs, static_cast<unsigned long long>(rerands));
    char label[32];
    std::snprintf(label, sizeof label, "r=%g", r);
    json.row(label)
        .set("difficulty_r", r)
        .set("misprediction_threshold", std::uint64_t{mc.misprediction_threshold})
        .set("eviction_threshold", std::uint64_t{mc.eviction_threshold})
        .set("direction_rate", dir / npairs)
        .set("target_rate", tgt / npairs)
        .set("normalized_ipc_harmonic", nipc / npairs)
        .set("rerandomizations", rerands);
  }

  std::printf("\npaper shape: accuracy >95%% down to thresholds of a few thousand\n"
              "events; once thresholds reach a few hundred, re-randomization\n"
              "effectively disables BPU training and throughput collapses.\n");

  json.meta("sweep_seconds", sweep_secs)
      .meta("sweep_jobs", std::uint64_t{jobs.size()})
      .meta("pairs", std::uint64_t{npairs});
  json.write();
  return 0;
}
