// Figure 2 reproduction: the automated remapping-function generator finds
// S/P/C-box circuits for every Table II spec under the §V-A hardware
// constraints, validates C2 (uniformity) and C3 (avalanche), scores with
// the Eq. (1) equal-weight objective, and prints the winning R1 design —
// the paper's Figure 2 (theirs has a 36-transistor critical path; the
// budget is 45).
#include <functional>
#include <vector>

#include "bench_common.h"
#include "remapgen/search.h"

int main(int argc, char** argv) {
  using namespace stbpu;
  const auto scale = bench::Scale::parse(argc, argv);
  scale.banner("Figure 2: automated remapping-function generation (Table II specs)");
  bench::BenchJson json("fig2_remapgen", scale);

  remapgen::SearchConfig cfg;
  cfg.candidates = scale.paper ? 64 : 16;
  cfg.validation.uniformity_samples = scale.paper ? (1u << 17) : (1u << 14);
  cfg.validation.avalanche_samples = scale.paper ? 2048 : 256;

  std::printf("%-4s %7s %7s | %6s %7s %9s | %8s %8s %8s %8s\n", "fn", "in", "out",
              "gen'd", "passed", "discarded", "critpath", "transist", "avalanche",
              "score");
  bench::rule();

  // Every Table II spec searches independently — one pool job each.
  const auto specs = remapgen::table2_specs();
  std::vector<remapgen::SearchResult> results(specs.size());
  std::vector<std::function<void()>> jobs;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    jobs.emplace_back([&, i] { results[i] = remapgen::search(specs[i], cfg); });
  }
  bench::Stopwatch sweep;
  bench::run_parallel(jobs, scale.jobs);
  json.meta("sweep_seconds", sweep.seconds());

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& spec = specs[i];
    const auto& r = results[i];
    if (r.best) {
      std::printf("%-4s %7u %7u | %6u %7u %9llu | %8u %8u %8.4f %8.4f\n",
                  spec.name.c_str(), spec.input_bits, spec.output_bits, r.generated,
                  r.passed, static_cast<unsigned long long>(r.discarded),
                  r.best->critical_path_transistors(), r.best->total_transistors(),
                  r.best_report.mean_avalanche, r.best_report.score);
      json.row(spec.name)
          .set("input_bits", std::uint64_t{spec.input_bits})
          .set("output_bits", std::uint64_t{spec.output_bits})
          .set("generated", std::uint64_t{r.generated})
          .set("passed", std::uint64_t{r.passed})
          .set("critical_path_transistors",
               std::uint64_t{r.best->critical_path_transistors()})
          .set("total_transistors", std::uint64_t{r.best->total_transistors()})
          .set("mean_avalanche", r.best_report.mean_avalanche)
          .set("score", r.best_report.score);
    } else {
      std::printf("%-4s %7u %7u | no candidate passed validation\n", spec.name.c_str(),
                  spec.input_bits, spec.output_bits);
      json.row(spec.name).set("passed", std::uint64_t{0});
    }
    std::fflush(stdout);
  }

  // The Figure 2 winner in detail.
  std::printf("\n== selected R1 construction (cf. paper Figure 2) ==\n");
  const auto r1 = remapgen::search(remapgen::table2_specs()[0], cfg);
  if (r1.best) {
    std::printf("%s", r1.best->describe().c_str());
    std::printf("validation: uniformity CV %.4f (ideal %.4f), avalanche %.4f,\n"
                "            per-lambda CV %.4f, per-bit spread %.4f, Eq.(1) score %.4f\n",
                r1.best_report.bin_cv, r1.best_report.ideal_bin_cv,
                r1.best_report.mean_avalanche, r1.best_report.avalanche_cv,
                r1.best_report.per_bit_spread, r1.best_report.score);
  }
  std::printf("\npaper: chosen R1 has a 36-transistor critical path (within the\n"
              "45-transistor single-cycle budget), alternating substitution (PRESENT/\n"
              "SPONGENT S-boxes), permutation and compression C-S layers.\n");
  json.write();
  return 0;
}
