// Figure 2 reproduction: the automated remapping-function generator finds
// S/P/C-box circuits for every Table II spec under the §V-A hardware
// constraints, validates C2 (uniformity) and C3 (avalanche), scores with
// the Eq. (1) equal-weight objective, and prints the winning R1 design —
// the paper's Figure 2 (theirs has a 36-transistor critical path; the
// budget is 45).
#include "bench_common.h"
#include "remapgen/search.h"

int main(int argc, char** argv) {
  using namespace stbpu;
  const auto scale = bench::Scale::parse(argc, argv);
  scale.banner("Figure 2: automated remapping-function generation (Table II specs)");

  remapgen::SearchConfig cfg;
  cfg.candidates = scale.paper ? 64 : 16;
  cfg.validation.uniformity_samples = scale.paper ? (1u << 17) : (1u << 14);
  cfg.validation.avalanche_samples = scale.paper ? 2048 : 256;

  std::printf("%-4s %7s %7s | %6s %7s %9s | %8s %8s %8s %8s\n", "fn", "in", "out",
              "gen'd", "passed", "discarded", "critpath", "transist", "avalanche",
              "score");
  bench::rule();

  for (const auto& spec : remapgen::table2_specs()) {
    const auto r = remapgen::search(spec, cfg);
    if (r.best) {
      std::printf("%-4s %7u %7u | %6u %7u %9llu | %8u %8u %8.4f %8.4f\n",
                  spec.name.c_str(), spec.input_bits, spec.output_bits, r.generated,
                  r.passed, static_cast<unsigned long long>(r.discarded),
                  r.best->critical_path_transistors(), r.best->total_transistors(),
                  r.best_report.mean_avalanche, r.best_report.score);
    } else {
      std::printf("%-4s %7u %7u | no candidate passed validation\n", spec.name.c_str(),
                  spec.input_bits, spec.output_bits);
    }
    std::fflush(stdout);
  }

  // The Figure 2 winner in detail.
  std::printf("\n== selected R1 construction (cf. paper Figure 2) ==\n");
  const auto r1 = remapgen::search(remapgen::table2_specs()[0], cfg);
  if (r1.best) {
    std::printf("%s", r1.best->describe().c_str());
    std::printf("validation: uniformity CV %.4f (ideal %.4f), avalanche %.4f,\n"
                "            per-lambda CV %.4f, per-bit spread %.4f, Eq.(1) score %.4f\n",
                r1.best_report.bin_cv, r1.best_report.ideal_bin_cv,
                r1.best_report.mean_avalanche, r1.best_report.avalanche_cv,
                r1.best_report.per_bit_spread, r1.best_report.score);
  }
  std::printf("\npaper: chosen R1 has a 36-transistor critical path (within the\n"
              "45-transistor single-cycle budget), alternating substitution (PRESENT/\n"
              "SPONGENT S-boxes), permutation and compression C-S layers.\n");
  return 0;
}
