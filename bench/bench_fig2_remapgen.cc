// Figure 2: automated remapping-function generation — thin compatibility shim: the implementation lives in the
// 'fig2_remapgen' scenario (src/exp/), and this binary behaves exactly like
// `stbpu_bench run fig2_remapgen` (same flags, same BENCH_fig2_remapgen.json).
#include "exp/driver.h"

int main(int argc, char** argv) {
  return stbpu::exp::scenario_main("fig2_remapgen", argc, argv);
}
