// Devirtualized simulation engine: the same five secure-BPU designs as
// models::BpuModel, but assembled from concrete final types so every
// mapping and direction-predictor call resolves at compile time and
// inlines into CorePredictorT's access loop. The only virtual dispatch
// left on a branch's path is the single IPredictor::access() call at the
// simulator boundary.
//
// STBPU engines additionally route every R-function through the remap
// memo-cache (core/remap_cache.h), exploiting that R outputs are constant
// between ψ re-keys.
//
// make_engine(spec) mirrors BpuModel::create(spec) exactly — same token
// manager seeding, monitor wiring and switch policy — so both produce
// bit-identical prediction statistics on identical traces
// (tests/integration/engine_equivalence_test.cc asserts this).
#pragma once

#include <memory>
#include <string>

#include "bpu/direction.h"
#include "bpu/predictor.h"
#include "core/monitor.h"
#include "core/remap_cache.h"
#include "core/secret_token.h"
#include "models/models.h"
#include "perceptron/perceptron.h"
#include "sim/bpu_sim.h"
#include "tage/tage.h"

namespace stbpu::models {

template <class Mapping, class Direction>
class EngineT final : public bpu::IPredictor {
 public:
  /// `make_direction` is invoked with the address of the engine-owned
  /// mapping — the mapping must be addressed *after* it is moved into
  /// place, which is why a factory callback is taken instead of a
  /// ready-made direction predictor.
  template <class DirFactory>
  EngineT(const ModelSpec& spec, const bpu::CorePredictorConfig& cfg,
          std::unique_ptr<core::STManager> stm,
          std::unique_ptr<core::EventMonitor> monitor, Mapping mapping,
          DirFactory&& make_direction)
      : spec_(spec),
        stm_(std::move(stm)),
        monitor_(std::move(monitor)),
        mapping_(std::move(mapping)),
        core_(cfg, &mapping_, make_direction(&mapping_), monitor_.get()),
        name_(to_string(spec.model) + "/" + to_string(spec.direction)) {
    core_.set_name(name_);
  }

  bpu::AccessResult access(const bpu::BranchRecord& rec) override {
    return core_.access(rec);
  }

  void on_switch(const bpu::ExecContext& from, const bpu::ExecContext& to) override {
    // The software memo-cache is emptied on context switches (its entries
    // are ψ-tagged, so this is belt-and-braces, not a correctness
    // requirement); the flush policy itself is the shared
    // apply_switch_policy so the engine can never drift from BpuModel.
    if constexpr (requires(const Mapping& m) { m.invalidate_all(); }) {
      if (spec_.model == ModelKind::kStbpu && from.pid != to.pid) {
        mapping_.invalidate_all();
      }
    }
    if (apply_switch_policy(spec_.model, from, to, core_)) ++flushes_;
  }

  void flush() override { core_.flush(); }
  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] const ModelSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] bpu::CorePredictorT<Mapping, Direction>& core() noexcept { return core_; }
  [[nodiscard]] Mapping& mapping() noexcept { return mapping_; }
  [[nodiscard]] core::STManager* tokens() noexcept { return stm_.get(); }
  [[nodiscard]] core::EventMonitor* monitor() noexcept { return monitor_.get(); }
  [[nodiscard]] std::uint64_t policy_flushes() const noexcept { return flushes_; }

 private:
  ModelSpec spec_;
  std::unique_ptr<core::STManager> stm_;
  std::unique_ptr<core::EventMonitor> monitor_;
  Mapping mapping_;
  bpu::CorePredictorT<Mapping, Direction> core_;
  std::string name_;
  std::uint64_t flushes_ = 0;
};

/// Build the devirtualized engine for `spec`. Drop-in IPredictor
/// replacement for BpuModel::create(spec) with identical statistics.
[[nodiscard]] std::unique_ptr<bpu::IPredictor> make_engine(const ModelSpec& spec);

namespace detail {

/// Visit `engine` as its concrete EngineT type for one mapping family
/// (one dynamic_cast per direction-predictor combo).
template <class Mapping, class Fn>
bool visit_engine_mapping(bpu::IPredictor& engine, Fn&& fn) {
  const auto try_one = [&](auto* typed) {
    if (typed == nullptr) return false;
    fn(*typed);
    return true;
  };
  return try_one(dynamic_cast<EngineT<Mapping, bpu::SklCondPredictorT<Mapping>>*>(&engine)) ||
         try_one(dynamic_cast<EngineT<Mapping, tage::TagePredictorT<Mapping>>*>(&engine)) ||
         try_one(
             dynamic_cast<EngineT<Mapping, perceptron::PerceptronPredictorT<Mapping>>*>(
                 &engine));
}

}  // namespace detail

/// Typed-dispatch visitor over every engine make_engine can assemble: one
/// dynamic_cast chain per run recovers the concrete EngineT<Mapping,
/// Direction>, after which `fn`'s body compiles against the final type —
/// callers that instantiate sim::OooCoreT (or sim::replay) on it get a
/// fully devirtualized per-branch path. Returns false when `engine` is a
/// foreign predictor (e.g. the legacy BpuModel); callers then fall back to
/// the interface-typed path.
template <class Fn>
bool visit_engine(bpu::IPredictor& engine, Fn&& fn) {
  return detail::visit_engine_mapping<core::CachedStbpuMapping>(engine, fn) ||
         detail::visit_engine_mapping<bpu::BaselineMappingLogic>(engine, fn) ||
         detail::visit_engine_mapping<ConservativeMappingLogic>(engine, fn);
}

/// Remap-cache statistics of an STBPU engine built by make_engine
/// (zeros for non-STBPU engines or foreign predictors).
[[nodiscard]] core::RemapCacheStats engine_remap_cache_stats(const bpu::IPredictor& engine);

/// Event monitor of an STBPU engine built by make_engine (nullptr for
/// non-STBPU engines or foreign predictors).
[[nodiscard]] core::EventMonitor* engine_monitor(bpu::IPredictor& engine);

/// Batched trace replay with the engine's concrete type recovered (one
/// dynamic_cast per run, not per branch): the per-branch access() then
/// devirtualizes and inlines into the replay loop — zero virtual dispatch
/// on the branch path. Falls back to the interface-typed loop for foreign
/// predictors (e.g. legacy BpuModel), where it behaves exactly like
/// sim::replay.
[[nodiscard]] sim::BranchStats replay_engine(bpu::IPredictor& engine,
                                             trace::BranchStream& stream,
                                             const sim::BpuSimOptions& opt = {});

}  // namespace stbpu::models
