// Devirtualized simulation engine: the same secure-BPU designs as
// models::BpuModel (all seven ModelKind arms), but assembled from concrete
// final types so every mapping and direction-predictor call resolves at
// compile time and inlines into CorePredictorT's access loop. The only
// virtual dispatch left on a branch's path is the single
// IPredictor::access() call at the simulator boundary.
//
// Mapping arms plug in through ONE registration point — the RegisteredArms
// typelist below. Each entry ties a ModelKind to its mapping type and
// structural config; make_engine, the visit_engine typed dispatch and the
// parametrized test/attack harnesses all iterate that list, so adding an
// arm is a one-line edit here (plus a name row in models.cc). Registration
// static_asserts the bpu::MappingCore concept, and the optional
// capabilities (bpu::Invalidatable / BatchPrecompute / StatsReporting) are
// detected per arm — see bpu/mapping.h for the documented contract.
//
// STBPU engines additionally route every R-function through the remap
// memo-cache (core/remap_cache.h), exploiting that R outputs are constant
// between ψ re-keys.
//
// make_engine(spec) mirrors BpuModel::create(spec) exactly — same token
// manager seeding, monitor wiring and switch policy — so both produce
// bit-identical prediction statistics on identical traces
// (tests/integration/engine_equivalence_test.cc asserts this).
#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <string>
#include <tuple>
#include <type_traits>
#include <vector>

#include "bpu/direction.h"
#include "bpu/predictor.h"
#include "core/cibpu_mapping.h"
#include "core/monitor.h"
#include "core/remap_cache.h"
#include "core/secret_token.h"
#include "core/xor_isolation_mapping.h"
#include "models/models.h"
#include "perceptron/perceptron.h"
#include "sim/bpu_sim.h"
#include "tage/tage.h"

namespace stbpu::models {

template <class Mapping, class Direction>
class EngineT final : public bpu::IPredictor {
 public:
  /// `make_direction` is invoked with the address of the engine-owned
  /// mapping — the mapping must be addressed *after* it is moved into
  /// place, which is why a factory callback is taken instead of a
  /// ready-made direction predictor.
  template <class DirFactory>
  EngineT(const ModelSpec& spec, const bpu::CorePredictorConfig& cfg,
          std::unique_ptr<core::STManager> stm,
          std::unique_ptr<core::EventMonitor> monitor, Mapping mapping,
          DirFactory&& make_direction)
      : spec_(spec),
        stm_(std::move(stm)),
        monitor_(std::move(monitor)),
        mapping_(std::move(mapping)),
        core_(cfg, &mapping_, make_direction(&mapping_), monitor_.get()),
        name_(to_string(spec.model) + "/" + to_string(spec.direction)) {
    core_.set_name(name_);
  }

  bpu::AccessResult access(const bpu::BranchRecord& rec) override {
    return core_.access(rec);
  }

  // -------------------------------------------------------------------------
  // Batch-native prediction API. A front end that knows the next K branches
  // hands them over as a span; the engine starts their keyed mixes together
  // (one mix_batch kernel per compacted miss list) so the later per-branch
  // access() finds its R outputs already resident. Purely a cache-warming
  // contract: every filled value is bit-identical to what the demand path
  // computes, requests with stale speculative GHRs simply never match at
  // access time, and requests for entities whose token the demand path has
  // not yet established are dropped — so prediction statistics cannot be
  // affected by batching (the equivalence tests are the oracle).
  // -------------------------------------------------------------------------

  /// True when the mapping implements the batch probe/fill layer (STBPU's
  /// memo-cached mapping); baseline/conservative mappings compute indexes in
  /// a handful of cycles and precompute compiles away to nothing.
  static constexpr bool kBatchMapping = bpu::BatchPrecompute<Mapping>;
  /// True when the direction predictor keys its 2-level index on the GHR —
  /// lookahead requests must then carry a speculative GHR.
  static constexpr bool kGhrLookahead =
      std::is_same_v<Direction, bpu::SklCondPredictorT<Mapping>>;
  /// True when the direction predictor keys its tables on per-table folded
  /// geometric histories (TAGE) — the lookahead then replicates the fold
  /// state in a shadow fold-forward walk and emits Rt key requests.
  static constexpr bool kTageLookahead =
      std::is_same_v<Direction, tage::TagePredictorT<Mapping>>;
  /// True when this engine's precompute actually does work — the gate
  /// front ends (the integer-tick sim::OooCoreT's lookahead window and its
  /// double-precision reference OooCoreRefT, sim::replay's chunked walk)
  /// use to skip buffering/request-building on the model×direction combos
  /// where precompute compiles to a no-op and the bookkeeping would be pure
  /// per-record overhead.
  static constexpr bool kBatchPrecompute =
      kBatchMapping && (kGhrLookahead || kTageLookahead);

  /// Largest span one precompute pass should cover. The staging caches are
  /// direct-mapped: precomputing far more keys than they hold makes fills
  /// evict each other before their demand access (wasting the batched mix
  /// AND paying the scalar recompute). SKLCond emits one R4 key per
  /// conditional into the 4096-entry fused cache, so 512 records fit with
  /// ~12% self-eviction; TAGE emits num_tables (6-10) index AND tag keys
  /// per conditional into each 4096-entry Rt cache, so the window shrinks
  /// to 64 records to stay in the same self-eviction band. Callers with
  /// larger windows — sim::replay's 4096-record runs, access_batch —
  /// precompute in chunks of this size interleaved with the accesses.
  static constexpr std::size_t kPrecomputeWindow = kTageLookahead ? 64 : 512;

  /// Warm the mapping caches for explicit requests (the raw API — callers
  /// that track their own speculative GHR, e.g. tests and attack studies).
  void precompute(std::span<const bpu::PredictRequest> reqs) {
    if constexpr (kBatchMapping) {
      mapping_.precompute(reqs, precompute_select());
    } else {
      (void)reqs;
    }
  }

  /// Warm the mapping caches for a run of upcoming trace records. The
  /// speculative per-hart GHR starts from the direction predictor's current
  /// value and advances by each record's trace outcome, mirroring the push
  /// the predictor itself will perform — exact in trace-driven simulation
  /// unless ψ re-keys mid-run, in which case the ψ-tagged entries are
  /// discarded by the demand path's tag check.
  void precompute_records(std::span<const bpu::BranchRecord> recs) {
    precompute_n(recs.size(), [&recs](std::size_t i) -> const bpu::BranchRecord& {
      return recs[i];
    });
  }

  /// SoA rendering of precompute_records for sim::replay's generator path:
  /// warms records [begin, end) of the batch.
  void precompute_batch(const trace::BranchBatch& batch, std::size_t begin,
                        std::size_t end) {
    end = std::min(end, batch.size());
    if (begin >= end) return;
    precompute_n(end - begin,
                 [&batch, begin](std::size_t i) { return batch.record(begin + i); });
  }

  /// Batched access: precompute window by window, then run the per-branch
  /// accesses. Statement sequence per branch is exactly access(), so the
  /// results are bit-identical to a scalar loop; context/mode switches
  /// within the span are not modelled (drive on_switch() yourself, as
  /// sim::replay does, if the span crosses entities).
  void access_batch(std::span<const bpu::BranchRecord> recs,
                    std::span<bpu::AccessResult> out) {
    const std::size_t n = std::min(recs.size(), out.size());
    for (std::size_t at = 0; at < n; at += kPrecomputeWindow) {
      const std::size_t c = std::min(kPrecomputeWindow, n - at);
      precompute_records(recs.subspan(at, c));
      for (std::size_t i = 0; i < c; ++i) out[at + i] = core_.access(recs[at + i]);
    }
  }

  void on_switch(const bpu::ExecContext& from, const bpu::ExecContext& to) override {
    // Invalidatable mappings empty their derived state (memo-cache) on
    // context switches — entries are ψ-tagged, so this is belt-and-braces,
    // not a correctness requirement; the flush policy itself is the shared
    // apply_switch_policy so the engine can never drift from BpuModel.
    if constexpr (bpu::Invalidatable<Mapping>) {
      if (from.pid != to.pid) mapping_.invalidate_all();
    }
    if (apply_switch_policy(spec_.model, from, to, core_)) ++flushes_;
  }

  void flush() override { core_.flush(); }
  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] const ModelSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] bpu::CorePredictorT<Mapping, Direction>& core() noexcept { return core_; }
  [[nodiscard]] Mapping& mapping() noexcept { return mapping_; }
  [[nodiscard]] core::STManager* tokens() noexcept { return stm_.get(); }
  [[nodiscard]] core::EventMonitor* monitor() noexcept { return monitor_.get(); }
  [[nodiscard]] std::uint64_t policy_flushes() const noexcept { return flushes_; }

 private:
  /// Which R functions this engine's precompute warms, fixed by the
  /// direction-predictor type. Measured discipline, not completeness: only
  /// the history-keyed functions have compulsory demand-miss rates worth
  /// paying a per-record probe for — the fused R3+R4 probe for SKLCond
  /// (~0.75 misses/branch) and the per-table Rt index/tag pair for TAGE
  /// (the folds change every branch, so nearly every key is fresh). The
  /// address-keyed functions already memoize at ≥99% demand hit rates
  /// (R1 ~99.4%, Rp ~99.7% on the fig4 workloads), so probing them per
  /// lookahead record costs more than the handful of misses it would
  /// batch. Recorded honestly in docs/API.md — the mapping-level API
  /// (PrecomputeSelect) still supports r1/rp warming for callers that
  /// want it.
  template <class M = Mapping>
  [[nodiscard]] typename M::PrecomputeSelect precompute_select() const {
    typename M::PrecomputeSelect sel;
    sel.r1 = false;
    sel.r34 = kGhrLookahead;
    sel.rt = kTageLookahead;
    return sel;
  }

  /// Shared request-building walk: `at(i)` yields record i of the window.
  /// The shadow history is seeded lazily per hart from the live predictor
  /// so a window that never touches a hart never reads it. Compiles to
  /// nothing unless this engine actually has functions worth warming (see
  /// precompute_select) — engines with no batchable compulsory misses must
  /// not pay request-building overhead per record.
  template <class RecAt>
  void precompute_n(std::size_t n, RecAt&& at) {
    if constexpr (kTageLookahead && kBatchMapping) {
      if (n == 0) return;
      precompute_tage_n(n, at);
    } else if constexpr (kBatchPrecompute) {
      if (n == 0) return;
      reqs_.clear();
      reqs_.reserve(n);
      std::uint64_t g[2] = {0, 0};
      bool seeded[2] = {false, false};
      for (std::size_t i = 0; i < n; ++i) {
        const bpu::BranchRecord& rec = at(i);
        // Only conditionals consume the fused R3+R4 probe; other branch
        // types would only generate no-op requests.
        if (rec.type != bpu::BranchType::kConditional) continue;
        const unsigned h = rec.ctx.hart & 1;
        if (!seeded[h]) {
          g[h] = core_.direction().ghr_value(static_cast<std::uint8_t>(h));
          seeded[h] = true;
        }
        reqs_.push_back(bpu::PredictRequest{
            .ip = rec.ip, .ghr = g[h], .ctx = rec.ctx, .type = rec.type});
        g[h] = ((g[h] << 1) | static_cast<std::uint64_t>(rec.taken)) &
               util::mask(Direction::kGhrBits);
      }
      if (!reqs_.empty()) mapping_.precompute(reqs_, precompute_select());
    } else {
      (void)n;
    }
  }

  /// TAGE rendering of the request walk: a shadow fold-forward walk. Each
  /// hart's complete fold state (history ring, per-table CSR folds, path) is
  /// copied from the live predictor at its first history-advancing record in
  /// the window, then advanced through Direction::ShadowHistory::advance —
  /// the SAME advance the demand path runs at the end of each update()/
  /// track(), so the shadow's (ip, folded, table) Rt keys are exactly the
  /// keys the per-branch loop will demand. Conditionals emit one request per
  /// tagged table (covering both the Rt index and Rt tag); taken
  /// unconditionals advance the shadow without emitting (they consume no Rt
  /// keys, but skipping their history push would derail every later fold).
  /// Mis-speculation discard is structural, exactly as for the GHR walk: a
  /// wrong trace outcome yields folded keys the demand path never asks for,
  /// so the ψ+key-tagged cache entries simply age out — zero stat pollution.
  template <class RecAt>
  void precompute_tage_n(std::size_t n, RecAt&& at) {
    const tage::TageConfig& cfg = core_.direction().config();
    auto& sh = tage_shadow_.sh;
    auto& reqs = tage_shadow_.reqs;
    reqs.clear();
    reqs.reserve(n * cfg.num_tables);
    bool seeded[2] = {false, false};
    for (std::size_t i = 0; i < n; ++i) {
      const bpu::BranchRecord& rec = at(i);
      const bool conditional = rec.type == bpu::BranchType::kConditional;
      // Not-taken unconditionals neither consume Rt keys nor advance the
      // history — invisible to the walk, exactly as to the predictor.
      if (!conditional && !rec.taken) continue;
      const unsigned h = rec.ctx.hart & 1;
      if (!seeded[h]) {
        core_.direction().seed_shadow(sh[h], static_cast<std::uint8_t>(h));
        seeded[h] = true;
      }
      if (conditional) {
        for (unsigned t = 0; t < cfg.num_tables; ++t) {
          const std::uint64_t fi = Direction::folded_key(sh[h], t, /*for_tag=*/false);
          reqs.push_back(bpu::TageRtRequest{.ip = rec.ip,
                                            .folded_index = fi,
                                            .folded_tag = Direction::tag_key(fi),
                                            .table = t,
                                            .ctx = rec.ctx});
        }
      }
      sh[h].advance(conditional ? rec.taken : true, rec.ip);
    }
    if (!reqs.empty()) mapping_.precompute_rt(reqs, cfg.index_bits, cfg.tag_bits);
  }

  /// Shadow fold state + request scratch for TAGE lookahead engines. The
  /// nested struct is only completed when kTageLookahead selects it, so
  /// non-TAGE directions never require Direction::ShadowHistory to exist.
  struct TageShadowState {
    typename Direction::ShadowHistory sh[2];
    std::vector<bpu::TageRtRequest> reqs;
  };
  struct NoShadowState {};

  ModelSpec spec_;
  std::unique_ptr<core::STManager> stm_;
  std::unique_ptr<core::EventMonitor> monitor_;
  Mapping mapping_;
  bpu::CorePredictorT<Mapping, Direction> core_;
  std::string name_;
  std::uint64_t flushes_ = 0;
  std::vector<bpu::PredictRequest> reqs_;  ///< reused precompute scratch
  [[no_unique_address]] std::conditional_t<kTageLookahead && kBatchMapping,
                                           TageShadowState, NoShadowState>
      tage_shadow_;
};

/// Build the devirtualized engine for `spec`. Drop-in IPredictor
/// replacement for BpuModel::create(spec) with identical statistics.
[[nodiscard]] std::unique_ptr<bpu::IPredictor> make_engine(const ModelSpec& spec);

// ---------------------------------------------------------------------------
// Mapping-arm registry — the SINGLE registration point for model arms.
// ---------------------------------------------------------------------------

/// One registered arm: ties a ModelKind to its engine mapping type and the
/// structural config make_engine applies. `TokenKeyed` arms get the ST
/// manager + event monitor plumbing and a mapping constructed over the
/// token manager; others default-construct their (stateless) mapping.
/// Registration is where the mapping contract is enforced: an arm whose
/// mapping fails bpu::MappingCore is a named compile error here, not an
/// overload-resolution maze inside the predictors.
template <ModelKind K, class MappingT, bool TokenKeyed, bool PartitionByHart = false,
          unsigned BtbSets = 0>
struct ArmDef {
  static_assert(bpu::MappingCore<MappingT>,
                "registered mapping must implement the nine const mapping "
                "functions of bpu::MappingCore (see bpu/mapping.h)");
  static constexpr ModelKind kKind = K;
  using mapping_type = MappingT;
  static constexpr bool kTokenKeyed = TokenKeyed;
  static constexpr bool kPartitionByHart = PartitionByHart;
  static constexpr unsigned kBtbSets = BtbSets;  ///< 0 = default geometry
};

/// Every model arm make_engine can assemble — ONE line per arm. The
/// factory switch, the visit_engine dispatch, the scenario grids and the
/// parametrized equivalence/attack tests all derive from this list.
using RegisteredArms = std::tuple<
    ArmDef<ModelKind::kUnprotected, bpu::BaselineMappingLogic, false>,
    ArmDef<ModelKind::kUcode1, bpu::BaselineMappingLogic, false>,
    ArmDef<ModelKind::kUcode2, bpu::BaselineMappingLogic, false, true>,
    ArmDef<ModelKind::kConservative, ConservativeMappingLogic, false, true,
           ConservativeMappingLogic::kSets>,
    ArmDef<ModelKind::kStbpu, core::CachedStbpuMapping, true>,
    ArmDef<ModelKind::kCibpu, core::CibpuMappingLogic, true>,
    ArmDef<ModelKind::kXorIsolation, core::XorIsolationMappingLogic, true>>;

namespace detail {

template <class... Ms>
struct MappingTypeList {};

template <class List, class M>
inline constexpr bool list_contains = false;
template <class... Ms, class M>
inline constexpr bool list_contains<MappingTypeList<Ms...>, M> =
    (std::is_same_v<Ms, M> || ...);

template <class List, class M, bool Add>
struct AppendIf {
  using type = List;
};
template <class... Ms, class M>
struct AppendIf<MappingTypeList<Ms...>, M, true> {
  using type = MappingTypeList<Ms..., M>;
};

/// Deduplicated mapping types of RegisteredArms (several arms share
/// BaselineMappingLogic) — the list visit_engine iterates.
template <class List, class... Arms>
struct UniqueMappingsImpl {
  using type = List;
};
template <class List, class Arm, class... Rest>
struct UniqueMappingsImpl<List, Arm, Rest...> {
  using with_arm = typename AppendIf<
      List, typename Arm::mapping_type,
      !list_contains<List, typename Arm::mapping_type>>::type;
  using type = typename UniqueMappingsImpl<with_arm, Rest...>::type;
};

template <class Arms>
struct UniqueMappings;
template <class... Arms>
struct UniqueMappings<std::tuple<Arms...>> {
  using type = typename UniqueMappingsImpl<MappingTypeList<>, Arms...>::type;
};

using UniqueEngineMappings = typename UniqueMappings<RegisteredArms>::type;

/// Visit `engine` as its concrete EngineT type for one mapping family.
/// This lambda holds the ONE generic dynamic_cast of the visit machinery —
/// every registered mapping × direction combination instantiates it; no
/// per-mapping cast lines exist anywhere else.
template <class Mapping, class Fn>
bool visit_engine_mapping(bpu::IPredictor& engine, Fn&& fn) {
  const auto try_one = [&]<class Direction>(std::type_identity<Direction>) {
    auto* typed = dynamic_cast<EngineT<Mapping, Direction>*>(&engine);
    if (typed == nullptr) return false;
    fn(*typed);
    return true;
  };
  return try_one(std::type_identity<bpu::SklCondPredictorT<Mapping>>{}) ||
         try_one(std::type_identity<tage::TagePredictorT<Mapping>>{}) ||
         try_one(std::type_identity<perceptron::PerceptronPredictorT<Mapping>>{});
}

template <class Fn, class... Ms>
bool visit_engine_list(bpu::IPredictor& engine, Fn&& fn, MappingTypeList<Ms...>) {
  return (visit_engine_mapping<Ms>(engine, fn) || ...);
}

}  // namespace detail

/// Typed-dispatch visitor over every engine make_engine can assemble: one
/// dynamic_cast chain per run (driven by the deduplicated RegisteredArms
/// mapping typelist) recovers the concrete EngineT<Mapping, Direction>,
/// after which `fn`'s body compiles against the final type — callers that
/// instantiate the integer-tick sim::OooCoreT (or sim::replay, or the
/// reference sim::OooCoreRefT) on it get a fully devirtualized per-branch
/// path. Returns false when `engine` is a foreign predictor (e.g. the
/// legacy BpuModel); callers then fall back to the interface-typed path.
template <class Fn>
bool visit_engine(bpu::IPredictor& engine, Fn&& fn) {
  return detail::visit_engine_list(engine, fn, detail::UniqueEngineMappings{});
}

/// Remap-cache statistics of an STBPU engine built by make_engine
/// (zeros for non-STBPU engines or foreign predictors).
[[nodiscard]] core::RemapCacheStats engine_remap_cache_stats(const bpu::IPredictor& engine);

/// Event monitor of an STBPU engine built by make_engine (nullptr for
/// non-STBPU engines or foreign predictors).
[[nodiscard]] core::EventMonitor* engine_monitor(bpu::IPredictor& engine);

/// Batched trace replay with the engine's concrete type recovered (one
/// dynamic_cast per run, not per branch): the per-branch access() then
/// devirtualizes and inlines into the replay loop — zero virtual dispatch
/// on the branch path. Falls back to the interface-typed loop for foreign
/// predictors (e.g. legacy BpuModel), where it behaves exactly like
/// sim::replay.
[[nodiscard]] sim::BranchStats replay_engine(bpu::IPredictor& engine,
                                             trace::BranchStream& stream,
                                             const sim::BpuSimOptions& opt = {});

}  // namespace stbpu::models
