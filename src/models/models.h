// Secure BPU model factory (paper §VII-B1): builds the five evaluated
// designs around the same CorePredictor machinery —
//   * unprotected  — baseline mapping, no policies (the normalization base);
//   * ucode1       — IBPB + IBRS: flush the whole BPU on context switches
//                    and the target structures on kernel entry;
//   * ucode2       — ucode1 + STIBP: logically partition the BTB between
//                    SMT hardware threads;
//   * conservative — full 48-bit BTB tags + untruncated targets (collision-
//                    free by construction) at reduced capacity, plus the
//                    ucode flush policy: stops every known collision attack
//                    the way structural changes would;
//   * stbpu        — secret-token remapping + φ encryption + event-driven
//                    re-randomization (the paper's design);
//   * cibpu        — rival arm (arxiv 2501.10983): keyed indexing like
//                    STBPU plus conflict-invisible domain-widened BTB tags,
//                    but plaintext payloads (core/cibpu_mapping.h);
//   * xor_isolation— rival arm (arxiv 2005.08183): baseline indexing XORed
//                    with cheap per-domain masks + φ entry encryption
//                    (core/xor_isolation_mapping.h).
// Each model can host any of the four direction predictors of §VII-B2
// (SKLCond, TAGE-SC-L 8KB/64KB, PerceptronBP).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "bpu/mapping.h"
#include "bpu/predictor.h"
#include "core/monitor.h"
#include "core/secret_token.h"
#include "core/stbpu_mapping.h"

namespace stbpu::models {

enum class ModelKind : std::uint8_t {
  kUnprotected,
  kUcode1,        // IBPB + IBRS
  kUcode2,        // IBPB + IBRS + STIBP
  kConservative,  // full tags, reduced capacity, flush
  kStbpu,
  kCibpu,          // rival arm: conflict-invisible keyed indexing
  kXorIsolation,   // rival arm: XOR index masks + entry encryption
};

enum class DirectionKind : std::uint8_t {
  kSklCond,
  kTage8,
  kTage64,
  kPerceptron,
};

[[nodiscard]] std::string to_string(ModelKind m);
[[nodiscard]] std::string to_string(DirectionKind d);

/// Every registered model kind, in declaration order — the one list the
/// parsers, scenario grids and parametrized tests iterate so a new arm
/// shows up everywhere by construction.
[[nodiscard]] std::span<const ModelKind> all_model_kinds();
[[nodiscard]] std::span<const DirectionKind> all_direction_kinds();

/// Parse a model/direction kind from its to_string name. On failure the
/// error names the offending string AND lists every registered kind —
/// `unknown model kind 'foo' (registered: unprotected, ..., XOR_isolation)`
/// — so a typo in a spec or CLI flag is self-diagnosing.
[[nodiscard]] bool parse_model_kind(std::string_view name, ModelKind& out,
                                    std::string& err);
[[nodiscard]] bool parse_direction_kind(std::string_view name, DirectionKind& out,
                                        std::string& err);

/// Conservative mapping logic: the BTB keeps the complete 48-bit branch
/// address (set bits excluded) as its tag and the complete target — no
/// compression, no truncation, hence no aliasing. Budget-neutral capacity
/// reduction is applied by the factory (2048 entries vs 4096; see the
/// model notes in docs/EXPERIMENTS.md). Non-virtual (shadows the baseline
/// methods it changes) for the devirtualized engine.
class ConservativeMappingLogic : public bpu::BaselineMappingLogic {
 public:
  // Budget-neutral entry count: a baseline entry is ~45 bits (8 tag + 5
  // offset + 32 target); a conservative entry holds the full remaining
  // address (35 bits) + full 48-bit target + metadata ~= 120 bits. The
  // 4096-entry budget therefore shrinks to ~1024 entries.
  static constexpr unsigned kSets = 128;

  [[nodiscard]] bpu::BtbIndex btb_mode1(std::uint64_t ip, const bpu::ExecContext&) const {
    return bpu::BtbIndex{
        .set = static_cast<std::uint32_t>(util::bits(ip, 5, 8)),
        .tag = (ip & bpu::kVirtualAddressMask) >> 13,  // full remaining address
        .offset = static_cast<std::uint32_t>(util::bits(ip, 0, 5)),
    };
  }
  [[nodiscard]] std::uint64_t encode_target(std::uint64_t target,
                                            const bpu::ExecContext&) const {
    return target & bpu::kVirtualAddressMask;
  }
  [[nodiscard]] std::uint64_t decode_target(std::uint64_t, std::uint64_t stored,
                                            const bpu::ExecContext&) const {
    return stored;
  }
};

/// Virtual adapter over ConservativeMappingLogic (API edge).
class ConservativeMapping final : public bpu::BaselineMapping {
 public:
  static constexpr unsigned kSets = ConservativeMappingLogic::kSets;

  [[nodiscard]] bpu::BtbIndex btb_mode1(std::uint64_t ip,
                                        const bpu::ExecContext& ctx) const override {
    return logic_.btb_mode1(ip, ctx);
  }
  [[nodiscard]] std::uint64_t encode_target(std::uint64_t target,
                                            const bpu::ExecContext& ctx) const override {
    return logic_.encode_target(target, ctx);
  }
  [[nodiscard]] std::uint64_t decode_target(std::uint64_t branch_ip, std::uint64_t stored,
                                            const bpu::ExecContext& ctx) const override {
    return logic_.decode_target(branch_ip, stored, ctx);
  }

 private:
  ConservativeMappingLogic logic_;
};

struct ModelSpec {
  ModelKind model = ModelKind::kUnprotected;
  DirectionKind direction = DirectionKind::kSklCond;
  /// Attack-difficulty factor r for STBPU thresholds (Γ = r · C, §VII-A).
  double rerand_difficulty_r = 0.05;
  std::uint64_t seed = 0x57B9;
  /// Explicit monitor thresholds (0 = derive from rerand_difficulty_r via
  /// MonitorConfig::from_difficulty) — the spec-level "monitor" overrides
  /// land here so sweeps can pin Γ without recompiling.
  std::uint64_t misprediction_threshold = 0;
  std::uint64_t eviction_threshold = 0;
  std::uint64_t tagged_misprediction_threshold = 0;
};

/// The one place the STBPU monitor config is derived from a ModelSpec —
/// shared by BpuModel::create and make_engine so the legacy and
/// devirtualized factories can never drift (their statistics must stay
/// bit-identical). Explicit thresholds override the r-derived defaults.
[[nodiscard]] inline core::MonitorConfig monitor_config_for(const ModelSpec& spec,
                                                            bool separate_tagged) {
  core::MonitorConfig cfg =
      core::MonitorConfig::from_difficulty(spec.rerand_difficulty_r, separate_tagged);
  if (spec.misprediction_threshold != 0) {
    cfg.misprediction_threshold = spec.misprediction_threshold;
  }
  if (spec.eviction_threshold != 0) cfg.eviction_threshold = spec.eviction_threshold;
  if (spec.tagged_misprediction_threshold != 0) {
    cfg.tagged_misprediction_threshold = spec.tagged_misprediction_threshold;
  }
  return cfg;
}

/// The context/mode-switch flush policy of §VII-B1, shared verbatim by the
/// legacy BpuModel and the devirtualized engine so the two can never drift
/// apart (their statistics must stay bit-identical). Returns true when the
/// policy flushed something.
template <class Core>
bool apply_switch_policy(ModelKind kind, const bpu::ExecContext& from,
                         const bpu::ExecContext& to, Core& core) {
  switch (kind) {
    case ModelKind::kUnprotected:
    case ModelKind::kStbpu:
    case ModelKind::kCibpu:
    case ModelKind::kXorIsolation:
      // Token-keyed designs retain history across switches: the OS reloads
      // the ST register, modelled implicitly by the per-entity token lookup.
      return false;
    case ModelKind::kUcode1:
    case ModelKind::kUcode2:
    case ModelKind::kConservative:
      if (from.pid != to.pid) {
        // IBPB: full barrier on context switch.
        core.flush();
        return true;
      }
      if (to.kernel && !from.kernel) {
        // IBRS: entering a more privileged mode must not speculate on
        // lower-privileged BPU contents — flush target structures.
        core.flush_targets();
        return true;
      }
      return false;
  }
  return false;
}

/// A fully assembled BPU model: owns the mapping provider, token manager,
/// monitor, and predictor, and applies the model's switch policy.
class BpuModel final : public bpu::IPredictor {
 public:
  static std::unique_ptr<BpuModel> create(const ModelSpec& spec);

  bpu::AccessResult access(const bpu::BranchRecord& rec) override {
    return core_->access(rec);
  }

  void on_switch(const bpu::ExecContext& from, const bpu::ExecContext& to) override;
  void flush() override { core_->flush(); }
  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] const ModelSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] bpu::CorePredictor& core() noexcept { return *core_; }
  /// Non-null only for STBPU models.
  [[nodiscard]] core::STManager* tokens() noexcept { return stm_.get(); }
  [[nodiscard]] core::EventMonitor* monitor() noexcept { return monitor_.get(); }
  /// Total flushes triggered by the switch policy (perf diagnostics).
  [[nodiscard]] std::uint64_t policy_flushes() const noexcept { return flushes_; }

 private:
  BpuModel() = default;

  ModelSpec spec_;
  std::string name_;
  std::unique_ptr<bpu::MappingProvider> mapping_;
  std::unique_ptr<core::STManager> stm_;
  std::unique_ptr<core::EventMonitor> monitor_;
  std::unique_ptr<bpu::CorePredictor> core_;
  std::uint64_t flushes_ = 0;
};

}  // namespace stbpu::models
