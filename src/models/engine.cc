#include "models/engine.h"

#include "bpu/direction.h"
#include "bpu/mapping.h"
#include "core/stbpu_mapping.h"
#include "perceptron/perceptron.h"
#include "tage/tage.h"

namespace stbpu::models {

namespace {

/// Instantiate the engine for one mapping type across the four direction
/// predictors of §VII-B2.
template <class Mapping>
std::unique_ptr<bpu::IPredictor> with_direction(
    const ModelSpec& spec, const bpu::CorePredictorConfig& cfg,
    std::unique_ptr<core::STManager> stm, std::unique_ptr<core::EventMonitor> monitor,
    Mapping mapping) {
  switch (spec.direction) {
    case DirectionKind::kSklCond: {
      using Dir = bpu::SklCondPredictorT<Mapping>;
      return std::make_unique<EngineT<Mapping, Dir>>(
          spec, cfg, std::move(stm), std::move(monitor), std::move(mapping),
          [](const Mapping* m) { return std::make_unique<Dir>(m); });
    }
    case DirectionKind::kTage8: {
      using Dir = tage::TagePredictorT<Mapping>;
      return std::make_unique<EngineT<Mapping, Dir>>(
          spec, cfg, std::move(stm), std::move(monitor), std::move(mapping),
          [&spec](const Mapping* m) {
            return std::make_unique<Dir>(tage::TageConfig::kb8(), m, spec.seed);
          });
    }
    case DirectionKind::kTage64: {
      using Dir = tage::TagePredictorT<Mapping>;
      return std::make_unique<EngineT<Mapping, Dir>>(
          spec, cfg, std::move(stm), std::move(monitor), std::move(mapping),
          [&spec](const Mapping* m) {
            return std::make_unique<Dir>(tage::TageConfig::kb64(), m, spec.seed);
          });
    }
    case DirectionKind::kPerceptron: {
      using Dir = perceptron::PerceptronPredictorT<Mapping>;
      return std::make_unique<EngineT<Mapping, Dir>>(
          spec, cfg, std::move(stm), std::move(monitor), std::move(mapping),
          [](const Mapping* m) { return std::make_unique<Dir>(m); });
    }
  }
  return nullptr;
}

/// Assemble one registered arm. Mirrors BpuModel::create — same configs,
/// same token/monitor seeding order — so the devirtualized and legacy
/// engines are statistically indistinguishable.
template <class Arm>
std::unique_ptr<bpu::IPredictor> build_arm(const ModelSpec& spec) {
  using Mapping = typename Arm::mapping_type;
  bpu::CorePredictorConfig cfg;
  if constexpr (Arm::kBtbSets != 0) cfg.btb.sets = Arm::kBtbSets;
  cfg.btb.partition_by_hart = Arm::kPartitionByHart;
  if constexpr (Arm::kTokenKeyed) {
    auto stm = std::make_unique<core::STManager>(spec.seed);
    const bool separate_tagged = spec.direction == DirectionKind::kTage8 ||
                                 spec.direction == DirectionKind::kTage64;
    auto monitor = std::make_unique<core::EventMonitor>(
        stm.get(), monitor_config_for(spec, separate_tagged));
    Mapping mapping(stm.get());
    return with_direction(spec, cfg, std::move(stm), std::move(monitor),
                          std::move(mapping));
  } else {
    return with_direction(spec, cfg, nullptr, nullptr, Mapping{});
  }
}

}  // namespace

std::unique_ptr<bpu::IPredictor> make_engine(const ModelSpec& spec) {
  // Fold over the registry: the arm whose kKind matches builds the engine.
  // No per-arm switch to maintain — registering an arm IS the factory edit.
  std::unique_ptr<bpu::IPredictor> out;
  [&]<class... Arms>(std::type_identity<std::tuple<Arms...>>) {
    (void)((spec.model == Arms::kKind ? (out = build_arm<Arms>(spec), true)
                                      : false) ||
           ...);
  }(std::type_identity<RegisteredArms>{});
  return out;
}

core::RemapCacheStats engine_remap_cache_stats(const bpu::IPredictor& engine) {
  core::RemapCacheStats stats;
  visit_engine(const_cast<bpu::IPredictor&>(engine), [&](auto& e) {
    using Mapping = std::remove_reference_t<decltype(e.mapping())>;
    if constexpr (bpu::StatsReporting<Mapping>) stats = e.mapping().stats();
  });
  return stats;
}

core::EventMonitor* engine_monitor(bpu::IPredictor& engine) {
  core::EventMonitor* monitor = nullptr;
  visit_engine(engine, [&](auto& e) { monitor = e.monitor(); });
  return monitor;
}

sim::BranchStats replay_engine(bpu::IPredictor& engine, trace::BranchStream& stream,
                               const sim::BpuSimOptions& opt) {
  sim::BranchStats stats;
  if (visit_engine(engine, [&](auto& e) { stats = sim::replay(e, stream, opt); })) {
    return stats;
  }
  return sim::replay(engine, stream, opt);
}

}  // namespace stbpu::models
