#include "models/engine.h"

#include "bpu/direction.h"
#include "bpu/mapping.h"
#include "core/stbpu_mapping.h"
#include "perceptron/perceptron.h"
#include "tage/tage.h"

namespace stbpu::models {

namespace {

/// Instantiate the engine for one mapping type across the four direction
/// predictors of §VII-B2.
template <class Mapping>
std::unique_ptr<bpu::IPredictor> with_direction(
    const ModelSpec& spec, const bpu::CorePredictorConfig& cfg,
    std::unique_ptr<core::STManager> stm, std::unique_ptr<core::EventMonitor> monitor,
    Mapping mapping) {
  switch (spec.direction) {
    case DirectionKind::kSklCond: {
      using Dir = bpu::SklCondPredictorT<Mapping>;
      return std::make_unique<EngineT<Mapping, Dir>>(
          spec, cfg, std::move(stm), std::move(monitor), std::move(mapping),
          [](const Mapping* m) { return std::make_unique<Dir>(m); });
    }
    case DirectionKind::kTage8: {
      using Dir = tage::TagePredictorT<Mapping>;
      return std::make_unique<EngineT<Mapping, Dir>>(
          spec, cfg, std::move(stm), std::move(monitor), std::move(mapping),
          [&spec](const Mapping* m) {
            return std::make_unique<Dir>(tage::TageConfig::kb8(), m, spec.seed);
          });
    }
    case DirectionKind::kTage64: {
      using Dir = tage::TagePredictorT<Mapping>;
      return std::make_unique<EngineT<Mapping, Dir>>(
          spec, cfg, std::move(stm), std::move(monitor), std::move(mapping),
          [&spec](const Mapping* m) {
            return std::make_unique<Dir>(tage::TageConfig::kb64(), m, spec.seed);
          });
    }
    case DirectionKind::kPerceptron: {
      using Dir = perceptron::PerceptronPredictorT<Mapping>;
      return std::make_unique<EngineT<Mapping, Dir>>(
          spec, cfg, std::move(stm), std::move(monitor), std::move(mapping),
          [](const Mapping* m) { return std::make_unique<Dir>(m); });
    }
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<bpu::IPredictor> make_engine(const ModelSpec& spec) {
  // Mirrors BpuModel::create — same configs, same seeding order — so the
  // devirtualized and legacy engines are statistically indistinguishable.
  bpu::CorePredictorConfig cfg;
  switch (spec.model) {
    case ModelKind::kUnprotected:
    case ModelKind::kUcode1:
      return with_direction(spec, cfg, nullptr, nullptr, bpu::BaselineMappingLogic{});
    case ModelKind::kUcode2:
      cfg.btb.partition_by_hart = true;  // STIBP logical segmentation
      return with_direction(spec, cfg, nullptr, nullptr, bpu::BaselineMappingLogic{});
    case ModelKind::kConservative:
      cfg.btb.sets = ConservativeMappingLogic::kSets;
      cfg.btb.partition_by_hart = true;
      return with_direction(spec, cfg, nullptr, nullptr, ConservativeMappingLogic{});
    case ModelKind::kStbpu: {
      auto stm = std::make_unique<core::STManager>(spec.seed);
      const bool separate_tagged = spec.direction == DirectionKind::kTage8 ||
                                   spec.direction == DirectionKind::kTage64;
      auto monitor = std::make_unique<core::EventMonitor>(
          stm.get(), monitor_config_for(spec, separate_tagged));
      core::CachedStbpuMapping mapping(stm.get());
      return with_direction(spec, cfg, std::move(stm), std::move(monitor),
                            std::move(mapping));
    }
  }
  return nullptr;
}

core::RemapCacheStats engine_remap_cache_stats(const bpu::IPredictor& engine) {
  core::RemapCacheStats stats;
  visit_engine(const_cast<bpu::IPredictor&>(engine), [&](auto& e) {
    if constexpr (requires { e.mapping().stats(); }) stats = e.mapping().stats();
  });
  return stats;
}

core::EventMonitor* engine_monitor(bpu::IPredictor& engine) {
  core::EventMonitor* monitor = nullptr;
  visit_engine(engine, [&](auto& e) { monitor = e.monitor(); });
  return monitor;
}

sim::BranchStats replay_engine(bpu::IPredictor& engine, trace::BranchStream& stream,
                               const sim::BpuSimOptions& opt) {
  sim::BranchStats stats;
  if (visit_engine(engine, [&](auto& e) { stats = sim::replay(e, stream, opt); })) {
    return stats;
  }
  return sim::replay(engine, stream, opt);
}

}  // namespace stbpu::models
