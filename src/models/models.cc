#include "models/models.h"

#include "bpu/direction.h"
#include "perceptron/perceptron.h"
#include "tage/tage.h"

namespace stbpu::models {

std::string to_string(ModelKind m) {
  switch (m) {
    case ModelKind::kUnprotected: return "unprotected";
    case ModelKind::kUcode1: return "ucode1_IBPB+IBRS";
    case ModelKind::kUcode2: return "ucode2_IBPB+IBRS+STIBP";
    case ModelKind::kConservative: return "conservative";
    case ModelKind::kStbpu: return "STBPU";
  }
  return "?";
}

std::string to_string(DirectionKind d) {
  switch (d) {
    case DirectionKind::kSklCond: return "SKLCond";
    case DirectionKind::kTage8: return "TAGE_SC_L_8KB";
    case DirectionKind::kTage64: return "TAGE_SC_L_64KB";
    case DirectionKind::kPerceptron: return "PerceptronBP";
  }
  return "?";
}

namespace {

std::unique_ptr<bpu::IDirectionPredictor> make_direction(DirectionKind kind,
                                                         const bpu::MappingProvider* map,
                                                         std::uint64_t seed) {
  switch (kind) {
    case DirectionKind::kSklCond:
      return std::make_unique<bpu::SklCondPredictor>(map);
    case DirectionKind::kTage8:
      return std::make_unique<tage::TagePredictor>(tage::TageConfig::kb8(), map, seed);
    case DirectionKind::kTage64:
      return std::make_unique<tage::TagePredictor>(tage::TageConfig::kb64(), map, seed);
    case DirectionKind::kPerceptron:
      return std::make_unique<perceptron::PerceptronPredictor>(map);
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<BpuModel> BpuModel::create(const ModelSpec& spec) {
  auto model = std::unique_ptr<BpuModel>(new BpuModel());
  model->spec_ = spec;

  bpu::CorePredictorConfig core_cfg;
  switch (spec.model) {
    case ModelKind::kUnprotected:
    case ModelKind::kUcode1:
      model->mapping_ = std::make_unique<bpu::BaselineMapping>();
      break;
    case ModelKind::kUcode2:
      model->mapping_ = std::make_unique<bpu::BaselineMapping>();
      core_cfg.btb.partition_by_hart = true;  // STIBP logical segmentation
      break;
    case ModelKind::kConservative:
      model->mapping_ = std::make_unique<ConservativeMapping>();
      // Full 48-bit tags + untruncated targets nearly triple the entry
      // size (budget-neutral entry reduction), and the structure is also
      // partitioned between hardware threads ("flushing or partitioning").
      core_cfg.btb.sets = ConservativeMapping::kSets;
      core_cfg.btb.partition_by_hart = true;
      break;
    case ModelKind::kStbpu: {
      model->stm_ = std::make_unique<core::STManager>(spec.seed);
      const bool separate_tagged = spec.direction == DirectionKind::kTage8 ||
                                   spec.direction == DirectionKind::kTage64;
      model->monitor_ = std::make_unique<core::EventMonitor>(
          model->stm_.get(), monitor_config_for(spec, separate_tagged));
      model->mapping_ = std::make_unique<core::StbpuMapping>(model->stm_.get());
      break;
    }
  }

  model->core_ = std::make_unique<bpu::CorePredictor>(
      core_cfg, model->mapping_.get(),
      make_direction(spec.direction, model->mapping_.get(), spec.seed),
      model->monitor_.get());
  model->name_ =
      to_string(spec.model) + "/" + to_string(spec.direction);
  model->core_->set_name(model->name_);
  return model;
}

void BpuModel::on_switch(const bpu::ExecContext& from, const bpu::ExecContext& to) {
  if (apply_switch_policy(spec_.model, from, to, *core_)) ++flushes_;
}

}  // namespace stbpu::models
