#include "models/models.h"

#include "bpu/direction.h"
#include "core/cibpu_mapping.h"
#include "core/xor_isolation_mapping.h"
#include "perceptron/perceptron.h"
#include "tage/tage.h"

namespace stbpu::models {

namespace {

// Single source of truth for kind <-> name: to_string, the parsers and
// all_*_kinds all walk these tables, so adding an enum entry without a row
// here is a -Wswitch error in to_string and nothing else can drift.
struct ModelRow {
  ModelKind kind;
  const char* name;
};
constexpr ModelRow kModelRows[] = {
    {ModelKind::kUnprotected, "unprotected"},
    {ModelKind::kUcode1, "ucode1_IBPB+IBRS"},
    {ModelKind::kUcode2, "ucode2_IBPB+IBRS+STIBP"},
    {ModelKind::kConservative, "conservative"},
    {ModelKind::kStbpu, "STBPU"},
    {ModelKind::kCibpu, "CIBPU"},
    {ModelKind::kXorIsolation, "XOR_isolation"},
};

struct DirectionRow {
  DirectionKind kind;
  const char* name;
};
constexpr DirectionRow kDirectionRows[] = {
    {DirectionKind::kSklCond, "SKLCond"},
    {DirectionKind::kTage8, "TAGE_SC_L_8KB"},
    {DirectionKind::kTage64, "TAGE_SC_L_64KB"},
    {DirectionKind::kPerceptron, "PerceptronBP"},
};

constexpr ModelKind kAllModelKinds[] = {
    ModelKind::kUnprotected, ModelKind::kUcode1,      ModelKind::kUcode2,
    ModelKind::kConservative, ModelKind::kStbpu,      ModelKind::kCibpu,
    ModelKind::kXorIsolation,
};
constexpr DirectionKind kAllDirectionKinds[] = {
    DirectionKind::kSklCond, DirectionKind::kTage8, DirectionKind::kTage64,
    DirectionKind::kPerceptron,
};

template <class Row, class Kind, std::size_t N>
bool parse_kind(const Row (&rows)[N], const char* what, std::string_view name,
                Kind& out, std::string& err) {
  for (const Row& row : rows) {
    if (name == row.name) {
      out = row.kind;
      return true;
    }
  }
  err = std::string("unknown ") + what + " kind '" + std::string(name) +
        "' (registered:";
  for (const Row& row : rows) {
    err += ' ';
    err += row.name;
    err += &row == &rows[N - 1] ? ')' : ',';
  }
  return false;
}

}  // namespace

std::string to_string(ModelKind m) {
  switch (m) {
    case ModelKind::kUnprotected:
    case ModelKind::kUcode1:
    case ModelKind::kUcode2:
    case ModelKind::kConservative:
    case ModelKind::kStbpu:
    case ModelKind::kCibpu:
    case ModelKind::kXorIsolation:
      break;
  }
  for (const ModelRow& row : kModelRows) {
    if (row.kind == m) return row.name;
  }
  return "?";
}

std::string to_string(DirectionKind d) {
  switch (d) {
    case DirectionKind::kSklCond:
    case DirectionKind::kTage8:
    case DirectionKind::kTage64:
    case DirectionKind::kPerceptron:
      break;
  }
  for (const DirectionRow& row : kDirectionRows) {
    if (row.kind == d) return row.name;
  }
  return "?";
}

std::span<const ModelKind> all_model_kinds() { return kAllModelKinds; }
std::span<const DirectionKind> all_direction_kinds() { return kAllDirectionKinds; }

bool parse_model_kind(std::string_view name, ModelKind& out, std::string& err) {
  return parse_kind(kModelRows, "model", name, out, err);
}

bool parse_direction_kind(std::string_view name, DirectionKind& out,
                          std::string& err) {
  return parse_kind(kDirectionRows, "direction", name, out, err);
}

namespace {

std::unique_ptr<bpu::IDirectionPredictor> make_direction(DirectionKind kind,
                                                         const bpu::MappingProvider* map,
                                                         std::uint64_t seed) {
  switch (kind) {
    case DirectionKind::kSklCond:
      return std::make_unique<bpu::SklCondPredictor>(map);
    case DirectionKind::kTage8:
      return std::make_unique<tage::TagePredictor>(tage::TageConfig::kb8(), map, seed);
    case DirectionKind::kTage64:
      return std::make_unique<tage::TagePredictor>(tage::TageConfig::kb64(), map, seed);
    case DirectionKind::kPerceptron:
      return std::make_unique<perceptron::PerceptronPredictor>(map);
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<BpuModel> BpuModel::create(const ModelSpec& spec) {
  auto model = std::unique_ptr<BpuModel>(new BpuModel());
  model->spec_ = spec;

  bpu::CorePredictorConfig core_cfg;
  switch (spec.model) {
    case ModelKind::kUnprotected:
    case ModelKind::kUcode1:
      model->mapping_ = std::make_unique<bpu::BaselineMapping>();
      break;
    case ModelKind::kUcode2:
      model->mapping_ = std::make_unique<bpu::BaselineMapping>();
      core_cfg.btb.partition_by_hart = true;  // STIBP logical segmentation
      break;
    case ModelKind::kConservative:
      model->mapping_ = std::make_unique<ConservativeMapping>();
      // Full 48-bit tags + untruncated targets nearly triple the entry
      // size (budget-neutral entry reduction), and the structure is also
      // partitioned between hardware threads ("flushing or partitioning").
      core_cfg.btb.sets = ConservativeMapping::kSets;
      core_cfg.btb.partition_by_hart = true;
      break;
    case ModelKind::kStbpu:
    case ModelKind::kCibpu:
    case ModelKind::kXorIsolation: {
      // Token-keyed arms share the ST manager + event monitor plumbing;
      // construction order (tokens, then monitor, then mapping) is
      // architectural state — it fixes the token-creation sequence and
      // must match make_engine exactly (bit-identity contract).
      model->stm_ = std::make_unique<core::STManager>(spec.seed);
      const bool separate_tagged = spec.direction == DirectionKind::kTage8 ||
                                   spec.direction == DirectionKind::kTage64;
      model->monitor_ = std::make_unique<core::EventMonitor>(
          model->stm_.get(), monitor_config_for(spec, separate_tagged));
      if (spec.model == ModelKind::kStbpu) {
        model->mapping_ = std::make_unique<core::StbpuMapping>(model->stm_.get());
      } else if (spec.model == ModelKind::kCibpu) {
        model->mapping_ = std::make_unique<core::CibpuMapping>(model->stm_.get());
      } else {
        model->mapping_ =
            std::make_unique<core::XorIsolationMapping>(model->stm_.get());
      }
      break;
    }
  }

  model->core_ = std::make_unique<bpu::CorePredictor>(
      core_cfg, model->mapping_.get(),
      make_direction(spec.direction, model->mapping_.get(), spec.seed),
      model->monitor_.get());
  model->name_ =
      to_string(spec.model) + "/" + to_string(spec.direction);
  model->core_->set_name(model->name_);
  return model;
}

void BpuModel::on_switch(const bpu::ExecContext& from, const bpu::ExecContext& to) {
  if (apply_switch_policy(spec_.model, from, to, *core_)) ++flushes_;
}

}  // namespace stbpu::models
