// Perceptron direction predictor (Jimenez & Lin [29], "PerceptronBP" in the
// paper's gem5 figures). A table of weight vectors selected by Rp under
// STBPU (Table II: 10-bit row), dot-producted with the global history.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "bpu/direction.h"
#include "bpu/mapping.h"
#include "bpu/types.h"
#include "util/bits.h"

namespace stbpu::perceptron {

struct PerceptronConfig {
  unsigned row_bits = 10;       ///< 1024 perceptrons (Table II, Rp: 80 ↦ 10)
  unsigned history_length = 32; ///< GHR bits per dot product
  int weight_max = 127;         ///< 8-bit weights
};

/// Template over the mapping type so the Rp row selection inlines in the
/// devirtualized engine; `PerceptronPredictor` below is the legacy alias.
template <class Mapping = bpu::MappingProvider>
class PerceptronPredictorT final : public bpu::IDirectionPredictor {
 public:
  explicit PerceptronPredictorT(const Mapping* mapping,
                                const PerceptronConfig& cfg = {})
      : cfg_(cfg),
        mapping_(mapping),
        // Training threshold θ = ⌊1.93h + 14⌋ (Jimenez & Lin).
        theta_(static_cast<int>(1.93 * cfg.history_length + 14)),
        weights_(std::size_t{1} << cfg.row_bits,
                 std::vector<std::int16_t>(cfg.history_length + 1, 0)) {}

  [[nodiscard]] bpu::DirPrediction predict(std::uint64_t ip,
                                           const bpu::ExecContext& ctx) override {
    const std::uint32_t row = mapping_->perceptron_row(ip, cfg_.row_bits, ctx);
    scratch_sum_ = dot(row, ghr_[ctx.hart & 1]);
    return {.taken = scratch_sum_ >= 0, .from_tagged = false};
  }

  void update(std::uint64_t ip, const bpu::ExecContext& ctx, bool taken,
              const bpu::DirPrediction& pred) override {
    const std::uint32_t row = mapping_->perceptron_row(ip, cfg_.row_bits, ctx);
    std::uint64_t& ghr = ghr_[ctx.hart & 1];
    // Train on misprediction or weak margin (|y| <= θ).
    if (pred.taken != taken || std::abs(scratch_sum_) <= theta_) {
      auto& w = weights_[row];
      bump(w[0], taken);  // bias weight
      for (unsigned i = 0; i < cfg_.history_length; ++i) {
        const bool hist_bit = (ghr >> i) & 1;
        bump(w[i + 1], hist_bit == taken);
      }
    }
    ghr = (ghr << 1) | static_cast<std::uint64_t>(taken);
  }

  void track(const bpu::BranchRecord& rec) override {
    if (rec.taken && is_indirect(rec.type)) {
      ghr_[rec.ctx.hart & 1] = (ghr_[rec.ctx.hart & 1] << 1) | 1u;
    }
  }

  void flush() override {
    for (auto& row : weights_) std::fill(row.begin(), row.end(), 0);
    ghr_[0] = ghr_[1] = 0;
  }
  void flush_hart(std::uint8_t hart) override { ghr_[hart & 1] = 0; }

  [[nodiscard]] std::string_view name() const override { return "PerceptronBP"; }
  [[nodiscard]] int theta() const noexcept { return theta_; }
  /// Row-selection width — the batch-precompute path needs it to key Rp
  /// exactly as predict()/update() do.
  [[nodiscard]] unsigned row_bits() const noexcept { return cfg_.row_bits; }

 private:
  [[nodiscard]] int dot(std::uint32_t row, std::uint64_t ghr) const {
    const auto& w = weights_[row];
    int sum = w[0];
    // Branchless sign-select (w ^ m) - m keeps the loop vectorizable; the
    // result is bit-identical to the ternary form.
    for (unsigned i = 0; i < cfg_.history_length; ++i) {
      const int m = -static_cast<int>((ghr >> i) & 1) ^ -1;  // taken: 0, not: -1
      sum += (static_cast<int>(w[i + 1]) ^ m) - m;
    }
    return sum;
  }

  void bump(std::int16_t& w, bool up) const {
    // Branchless saturate: identical outcomes to the compare-then-step form.
    if (up) {
      w = static_cast<std::int16_t>(w + (w < cfg_.weight_max ? 1 : 0));
    } else {
      w = static_cast<std::int16_t>(w - (w > -cfg_.weight_max - 1 ? 1 : 0));
    }
  }

  PerceptronConfig cfg_;
  const Mapping* mapping_;
  int theta_;
  std::vector<std::vector<std::int16_t>> weights_;
  std::uint64_t ghr_[2] = {0, 0};
  int scratch_sum_ = 0;
};

/// Legacy dynamic-dispatch instantiation.
using PerceptronPredictor = PerceptronPredictorT<>;

}  // namespace stbpu::perceptron
