#include "tenant/token_service.h"

#include <algorithm>

#include "util/rng.h"

namespace stbpu::tenant {

namespace {

std::uint64_t hash_id(TenantId id) noexcept {
  std::uint64_t s = id;
  return util::splitmix64(s);
}

}  // namespace

TokenService::TokenService(const TokenServiceConfig& cfg,
                           std::vector<core::MonitorConfig> qos_classes)
    : cfg_(cfg), qos_(std::move(qos_classes)) {
  if (qos_.empty()) qos_.emplace_back();
  const std::uint32_t shard_bits = std::min<std::uint32_t>(cfg_.shard_bits, 16);
  shards_.resize(std::size_t{1} << shard_bits);
  for (Shard& s : shards_) {
    // One bucket per capacity slot keeps expected chain length ≤ 1 at full
    // occupancy; rounded up to a power of two for mask indexing.
    std::size_t buckets = 1;
    while (buckets < cfg_.shard_capacity) buckets <<= 1;
    s.buckets.assign(buckets, kNone);
    s.slab.reserve(std::min<std::size_t>(cfg_.shard_capacity, 1u << 12));
  }
  const std::size_t slots =
      std::min<std::size_t>(cfg_.pid_slots, 0xFFFFu - cfg_.first_pid);
  slots_.resize(std::max<std::size_t>(slots, 1));
  free_slots_.reserve(slots_.size());
  // Pop order is ascending: slot 0 (pid first_pid) binds first, which keeps
  // the single-tenant context deterministic.
  for (std::size_t i = slots_.size(); i > 0; --i) {
    free_slots_.push_back(static_cast<std::uint32_t>(i - 1));
  }
}

std::uint32_t TokenService::shard_of(TenantId id) const noexcept {
  // Top hash bits pick the shard, bottom bits pick the bucket — the two
  // stay independent.
  const unsigned bits = 31 - static_cast<unsigned>(__builtin_clz(
                                 static_cast<std::uint32_t>(shards_.size())));
  return bits == 0 ? 0 : static_cast<std::uint32_t>(hash_id(id) >> (64 - bits));
}

std::uint32_t TokenService::bucket_of(const Shard& s, TenantId id) const {
  return static_cast<std::uint32_t>(hash_id(id) & (s.buckets.size() - 1));
}

std::uint32_t TokenService::find(Shard& s, TenantId id, std::uint32_t& probe) {
  ++stats_.lookups;
  std::uint32_t idx = s.buckets[bucket_of(s, id)];
  while (idx != kNone) {
    ++probe;
    ++stats_.probe_steps;
    if (s.slab[idx].id == id) return idx;
    idx = s.slab[idx].next;
  }
  return kNone;
}

const TokenService::Entry* TokenService::find_const(TenantId id) const {
  const Shard& s = shards_[shard_of(id)];
  std::uint32_t idx = s.buckets[hash_id(id) & (s.buckets.size() - 1)];
  while (idx != kNone) {
    if (s.slab[idx].id == id) return &s.slab[idx];
    idx = s.slab[idx].next;
  }
  return nullptr;
}

void TokenService::unlink(Shard& s, std::uint32_t idx) {
  std::uint32_t* link = &s.buckets[bucket_of(s, s.slab[idx].id)];
  while (*link != idx) link = &s.slab[*link].next;
  *link = s.slab[idx].next;
  s.slab[idx].next = kNone;
}

std::uint32_t TokenService::clock_evict(std::uint32_t si, Shard& s) {
  (void)si;
  const std::size_t n = s.slab.size();
  for (std::size_t sweep = 0; sweep < 2 * n; ++sweep) {
    const std::uint32_t i = s.hand;
    s.hand = (s.hand + 1 == n) ? 0 : s.hand + 1;
    Entry& e = s.slab[i];
    if (e.state == TenantState::kLive) continue;  // scheduled — pinned
    if (e.referenced) {
      e.referenced = false;  // second chance
      continue;
    }
    // Evict: drop the table entry. If the tenant still holds a pid binding
    // (COLD but bound), hand the slot back to the free pool; the slot's
    // ever_used flag forces every future occupant through the
    // retire/set_token/rerandomize install paths, so the stale ST left in
    // STManager can never be served to another tenant.
    if (e.slot != kNone && e.slot < slots_.size() && slots_[e.slot].bound &&
        slots_[e.slot].tenant == e.id) {
      if (slots_[e.slot].live) continue;  // scheduled under another state — pinned
      slots_[e.slot].bound = false;
      free_slots_.push_back(e.slot);
    }
    unlink(s, i);
    ++stats_.evictions;
    --live_entries_;
    return i;
  }
  return kNone;
}

std::uint32_t TokenService::insert(std::uint32_t si, Shard& s, TenantId id,
                                   std::uint8_t qos) {
  std::uint32_t idx;
  if (!s.free_list.empty()) {
    idx = s.free_list.back();
    s.free_list.pop_back();
  } else if (s.slab.size() < cfg_.shard_capacity) {
    idx = static_cast<std::uint32_t>(s.slab.size());
    s.slab.emplace_back();
  } else {
    idx = clock_evict(si, s);
    if (idx == kNone) return kNone;  // all LIVE — named kTableFull upstream
  }
  Entry& e = s.slab[idx];
  e = Entry{};
  e.id = id;
  e.gen = s.generation;
  e.qos = qos < qos_.size() ? qos : std::uint8_t{0};
  e.referenced = true;
  const std::uint32_t b = bucket_of(s, id);
  e.next = s.buckets[b];
  s.buckets[b] = idx;
  ++live_entries_;
  return idx;
}

AcquireStatus TokenService::register_tenant(TenantId id, std::uint8_t qos_class) {
  ++stats_.registrations;
  const std::uint32_t si = shard_of(id);
  Shard& s = shards_[si];
  std::uint32_t probe = 0;
  std::uint32_t idx = find(s, id, probe);
  if (idx != kNone) {
    s.slab[idx].qos = qos_class < qos_.size() ? qos_class : std::uint8_t{0};
    return AcquireStatus::kOk;
  }
  idx = insert(si, s, id, qos_class);
  if (idx == kNone) {
    ++stats_.table_full;
    return AcquireStatus::kTableFull;
  }
  return AcquireStatus::kOk;
}

void TokenService::save_slot_state(std::uint32_t slot, core::STManager& stm,
                                   core::EventMonitor* mon) {
  PidSlot& ps = slots_[slot];
  if (!ps.bound) return;
  const bpu::ExecContext ctx = slot_ctx(slot);
  Shard& s = shards_[shard_of(ps.tenant)];
  std::uint32_t probe = 0;
  const std::uint32_t idx = find(s, ps.tenant, probe);
  if (idx != kNone) {
    Entry& e = s.slab[idx];
    // has_token probes without creating: a tenant that was bound but never
    // ran a branch has no token, and saving must not perturb the engine
    // PRNG's lazy draw order.
    if (stm.has_token(ctx)) {
      e.token = stm.token(ctx);
      e.has_token = true;
      if (mon != nullptr) {
        e.budget = mon->remaining(ctx);
        e.has_budget = true;
      }
    } else {
      e.has_token = false;
      e.has_budget = false;
    }
    e.slot = kNone;
    if (e.state == TenantState::kLive) e.state = TenantState::kCold;
  }
  // The entity behind this pid is being replaced: kill its slot so the next
  // occupant can never silently inherit the token (STManager::retire is the
  // named fix for the old silent-reuse path).
  stm.retire(ctx);
  ps.bound = false;
}

std::uint32_t TokenService::take_slot(core::STManager& stm, core::EventMonitor* mon) {
  if (!free_slots_.empty()) {
    const std::uint32_t idx = free_slots_.back();
    free_slots_.pop_back();
    return idx;
  }
  const std::size_t n = slots_.size();
  for (std::size_t sweep = 0; sweep < 2 * n; ++sweep) {
    const std::uint32_t i = slot_hand_;
    slot_hand_ = (slot_hand_ + 1 == n) ? 0 : slot_hand_ + 1;
    PidSlot& ps = slots_[i];
    if (ps.live) continue;
    if (ps.referenced) {
      ps.referenced = false;
      continue;
    }
    save_slot_state(i, stm, mon);
    return i;
  }
  return kNone;
}

TokenService::Acquired TokenService::acquire(TenantId id, core::STManager& stm,
                                             core::EventMonitor* mon) {
  ++stats_.acquires;
  const std::uint32_t si = shard_of(id);
  Shard& s = shards_[si];
  Acquired out;
  std::uint32_t idx = find(s, id, out.probe_steps);
  if (idx == kNone) {
    idx = insert(si, s, id, 0);
    if (idx == kNone) {
      ++stats_.table_full;
      out.status = AcquireStatus::kTableFull;
      return out;
    }
  }
  Entry& e = s.slab[idx];
  e.referenced = true;
  const bool stale =
      e.gen != s.generation || e.state == TenantState::kRerandomizing;

  if (e.slot != kNone && e.slot < slots_.size() && slots_[e.slot].bound &&
      slots_[e.slot].tenant == id) {
    // Fast resume: the tenant's register images are still in place.
    PidSlot& ps = slots_[e.slot];
    out.ctx = slot_ctx(e.slot);
    if (stale) {
      stm.rerandomize(out.ctx);
      if (mon != nullptr) {
        mon->restore(out.ctx, core::EventMonitor::Remaining::full(qos_[e.qos]));
      }
      ++stats_.rekeys;
      out.rekeyed = out.installed = true;
    }
    ps.live = true;
    ps.referenced = true;
    ++stats_.resumes;
  } else {
    const std::uint32_t slot = take_slot(stm, mon);
    if (slot == kNone) {
      ++stats_.pid_exhausted;
      out.status = AcquireStatus::kPidSpaceExhausted;
      return out;
    }
    PidSlot& ps = slots_[slot];
    out.ctx = slot_ctx(slot);
    if (ps.ever_used) ++stats_.slot_recycles;
    ps.tenant = id;
    ps.bound = true;
    ps.live = true;
    ps.referenced = true;
    e.slot = slot;
    if (stale) {
      // Invalidated or explicitly marked: fresh ST from the on-chip PRNG
      // (whatever the slot held is overwritten), full QoS budget.
      stm.rerandomize(out.ctx);
      if (mon != nullptr) {
        mon->set_config(out.ctx, qos_[e.qos]);
        mon->restore(out.ctx, core::EventMonitor::Remaining::full(qos_[e.qos]));
      }
      ++stats_.rekeys;
      out.rekeyed = out.installed = true;
    } else if (e.has_token) {
      // Returning tenant: restore its saved ST register + monitor image.
      stm.set_token(out.ctx, e.token);
      if (mon != nullptr) {
        mon->set_config(out.ctx, qos_[e.qos]);
        mon->restore(out.ctx, e.has_budget
                                  ? e.budget
                                  : core::EventMonitor::Remaining::full(qos_[e.qos]));
      }
      ++stats_.installs;
      out.installed = true;
    } else if (ps.ever_used) {
      // Fresh tenant on a recycled pid: retire the previous occupant's slot
      // so the engine PRNG lazily draws a fresh ST on first use.
      stm.retire(out.ctx);
      if (mon != nullptr) {
        mon->set_config(out.ctx, qos_[e.qos]);
        mon->restore(out.ctx, core::EventMonitor::Remaining::full(qos_[e.qos]));
      }
      ++stats_.fresh_tokens;
      out.installed = true;
    } else {
      // Fresh tenant on a never-used pid: issue ZERO engine calls and let
      // STManager/EventMonitor lazily materialize — this is the
      // single-tenant bit-identity path. A non-default QoS class still has
      // to be programmed before the monitor's first reload.
      if (e.qos != 0 && mon != nullptr) {
        mon->set_config(out.ctx, qos_[e.qos]);
        out.installed = true;
      }
    }
    ps.ever_used = true;
  }

  e.gen = s.generation;
  e.state = TenantState::kLive;
  // Whatever was saved is now stale: the live images belong to the engine.
  e.has_token = false;
  e.has_budget = false;
  return out;
}

void TokenService::release(TenantId id) {
  ++stats_.releases;
  Shard& s = shards_[shard_of(id)];
  std::uint32_t probe = 0;
  const std::uint32_t idx = find(s, id, probe);
  if (idx == kNone) return;
  Entry& e = s.slab[idx];
  if (e.state == TenantState::kLive) e.state = TenantState::kCold;
  if (e.slot != kNone && e.slot < slots_.size() && slots_[e.slot].tenant == id) {
    slots_[e.slot].live = false;
  }
}

void TokenService::invalidate_shard(std::uint32_t shard) {
  Shard& s = shards_[shard % shards_.size()];
  ++stats_.invalidations;
  if (++s.generation == 0) {
    // u32 wrap (once per 4G invalidations): restamp every entry with the
    // always-stale sentinel 0 and restart at 1 — same discipline as the
    // remap memo-cache's generation wrap.
    for (Entry& e : s.slab) {
      e.gen = 0;
      ++stats_.invalidation_entry_touches;
    }
    s.generation = 1;
  }
}

void TokenService::invalidate_all_shards() {
  for (std::uint32_t i = 0; i < shards_.size(); ++i) invalidate_shard(i);
}

bool TokenService::mark_rerandomize(TenantId id) {
  Shard& s = shards_[shard_of(id)];
  std::uint32_t probe = 0;
  const std::uint32_t idx = find(s, id, probe);
  if (idx == kNone) return false;
  s.slab[idx].state = TenantState::kRerandomizing;
  return true;
}

bool TokenService::contains(TenantId id) const { return find_const(id) != nullptr; }

TenantState TokenService::state(TenantId id) const {
  const Entry* e = find_const(id);
  if (e == nullptr) return TenantState::kCold;
  const Shard& s = shards_[shard_of(id)];
  if (e->state != TenantState::kLive && e->gen != s.generation) {
    return TenantState::kRerandomizing;  // stale generation ⇒ re-key pending
  }
  return e->state;
}

void TokenService::debug_set_shard_generation(std::uint32_t shard, std::uint32_t gen) {
  shards_[shard % shards_.size()].generation = gen == 0 ? 1 : gen;
}

std::uint32_t TokenService::debug_shard_generation(std::uint32_t shard) const {
  return shards_[shard % shards_.size()].generation;
}

}  // namespace stbpu::tenant
