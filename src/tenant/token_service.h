// Multi-tenant ψ-token service: the OS-side layer between millions of
// logical tenants (users/contexts) and the bounded per-core machinery the
// paper models (STManager's per-pid ST register image, EventMonitor's
// per-pid MSR counters).
//
// The paper's hardware holds ONE ST register per hart; the OS saves and
// restores it on context switches (§IV). STManager simulates that as one
// token per pid — but pids are 16-bit and a server-class deployment has
// millions of live contexts. This service closes the gap exactly the way
// an OS does: tenants are 64-bit ids living in a sharded token table, and
// only the tenants currently scheduled on the core occupy one of a small
// pool of engine pids. Scheduling a tenant onto a pid ("acquire") restores
// its saved ST + monitor budget; descheduling ("release") is O(1) — the
// state is saved lazily, only when the pid is actually recycled for
// another tenant, which makes the common resume path free.
//
// Table layout (per shard):
//   * power-of-two shard count; a tenant's shard is a splitmix64 hash of
//     its id, so shard-level operations can't be steered by id choice;
//   * slab + chained-bucket hash index + free list — entries never move,
//     so (shard, slab index) is a stable handle;
//   * a shard-local generation counter, mirroring the remap cache's
//     ψ-tagged generation trick: invalidate_shard() bumps the counter
//     (O(1), no sweep) and every entry stamped with an older generation is
//     treated as RERANDOMIZING at its next acquire — it gets a fresh ST
//     before it can touch the predictor again. Generation 0 is the
//     always-stale sentinel; on u32 wrap the shard is swept once (entries
//     restamped 0) and the counter restarts at 1;
//   * clock-hand (second-chance) eviction: a full shard evicts the first
//     unreferenced COLD tenant the hand finds. LIVE tenants are never
//     evicted; a shard full of LIVE tenants reports kTableFull — a named
//     error, never silent reuse.
//
// Per-tenant state machine (the dual-key-remap per-mapping idiom at scale):
//   COLD --acquire--> LIVE --release--> COLD
//   {COLD, LIVE} --mark_rerandomize / stale generation--> RERANDOMIZING
//   RERANDOMIZING --acquire--> LIVE (with a fresh ST, counted as a rekey)
//
// QoS: each tenant carries a MonitorConfig class index (Γ_M/Γ_E as
// per-tenant policy). Class 0 is by contract the engine's own monitor
// config; installing a tenant programs its class into the per-pid monitor
// slot, so an under-attack tenant can re-randomize 8× faster than its
// neighbors without touching them.
//
// Single-tenant bit-identity contract: one tenant, QoS class 0, never
// invalidated ⇒ the service issues ZERO STManager/EventMonitor calls
// beyond what a plain replay does (its first acquire binds a never-used
// pid and lets STManager draw the token lazily on first use). The
// tenant_churn scenario asserts the resulting BranchStats equal
// models::replay_engine bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "bpu/types.h"
#include "core/monitor.h"
#include "core/secret_token.h"

namespace stbpu::tenant {

using TenantId = std::uint64_t;

enum class TenantState : std::uint8_t { kCold, kLive, kRerandomizing };

enum class AcquireStatus : std::uint8_t {
  kOk,
  kTableFull,          ///< shard full of LIVE tenants — registration refused
  kPidSpaceExhausted,  ///< every engine pid slot is LIVE right now
};

struct TokenServiceConfig {
  std::uint32_t shard_bits = 6;        ///< 2^bits shards (power of two)
  std::uint32_t shard_capacity = 1u << 14;  ///< entries per shard
  std::uint16_t pid_slots = 256;       ///< resident contexts (engine pid pool)
  std::uint16_t first_pid = 1;         ///< pool occupies [first_pid, first_pid+slots)
  std::uint64_t seed = 0x7E4A97;       ///< reserved for service-side randomness
};

struct ServiceStats {
  std::uint64_t registrations = 0;
  std::uint64_t acquires = 0;
  std::uint64_t releases = 0;
  std::uint64_t resumes = 0;        ///< acquire reused the tenant's live binding
  std::uint64_t slot_recycles = 0;  ///< a pid was rebound to a different tenant
  std::uint64_t installs = 0;       ///< saved ST written back (set_token)
  std::uint64_t fresh_tokens = 0;   ///< retire-path fresh entities on a used pid
  std::uint64_t rekeys = 0;         ///< generation/mark-driven re-randomizations
  std::uint64_t evictions = 0;      ///< clock-hand table evictions
  std::uint64_t table_full = 0;
  std::uint64_t pid_exhausted = 0;
  std::uint64_t invalidations = 0;  ///< shard generation bumps
  /// Entries touched by invalidations — stays 0 except on a generation
  /// wrap sweep; the O(1)-invalidation test pins it.
  std::uint64_t invalidation_entry_touches = 0;
  std::uint64_t lookups = 0;
  std::uint64_t probe_steps = 0;  ///< hash-chain steps across all lookups
};

class TokenService {
 public:
  explicit TokenService(const TokenServiceConfig& cfg,
                        std::vector<core::MonitorConfig> qos_classes);

  /// Add (or re-class) a tenant. May clock-evict a COLD tenant to make
  /// room; returns kTableFull when its shard is pinned by LIVE tenants.
  AcquireStatus register_tenant(TenantId id, std::uint8_t qos_class = 0);

  struct Acquired {
    AcquireStatus status = AcquireStatus::kOk;
    bpu::ExecContext ctx{};      ///< engine context to run the tenant under
    std::uint32_t probe_steps = 0;  ///< hash-chain steps of this lookup
    bool rekeyed = false;        ///< fresh ST (RERANDOMIZING / stale gen)
    bool installed = false;      ///< any STManager/monitor state was written
  };

  /// Schedule `id` onto an engine pid, restoring (or freshening) its ST and
  /// monitor budget. Auto-registers unknown tenants in QoS class 0.
  Acquired acquire(TenantId id, core::STManager& stm, core::EventMonitor* mon);

  /// Deschedule: O(1) state flip to COLD. The pid binding is kept so an
  /// immediate re-acquire is free; state is saved only when the pid is
  /// recycled for someone else.
  void release(TenantId id);

  /// O(1) shard-wide invalidation: every tenant in the shard re-keys at its
  /// next acquire. No entry is touched (except the once-per-4G wrap sweep).
  void invalidate_shard(std::uint32_t shard);
  void invalidate_all_shards();

  /// Force one tenant to re-key at next acquire (targeted response, e.g.
  /// its own monitor tripped at the service level).
  bool mark_rerandomize(TenantId id);

  [[nodiscard]] bool contains(TenantId id) const;
  [[nodiscard]] TenantState state(TenantId id) const;  ///< kCold if unknown
  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] std::uint32_t shard_of(TenantId id) const noexcept;
  [[nodiscard]] std::uint64_t size() const noexcept { return live_entries_; }
  [[nodiscard]] const ServiceStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const core::MonitorConfig& qos_class(std::uint8_t cls) const {
    return qos_[cls < qos_.size() ? cls : 0];
  }

  /// Test hook: place a shard's generation near the u32 wrap point so the
  /// wrap sweep is reachable without 4G invalidations.
  void debug_set_shard_generation(std::uint32_t shard, std::uint32_t gen);
  [[nodiscard]] std::uint32_t debug_shard_generation(std::uint32_t shard) const;

 private:
  static constexpr std::uint32_t kNone = 0xFFFF'FFFFu;

  struct Entry {
    TenantId id = 0;
    core::SecretToken token{};              ///< saved ST (when has_token)
    core::EventMonitor::Remaining budget{};  ///< saved monitor image
    std::uint32_t gen = 0;    ///< shard generation stamp at last acquire
    std::uint32_t next = kNone;  ///< hash-bucket chain
    std::uint32_t slot = kNone;  ///< bound pid slot (kNone = unbound)
    TenantState state = TenantState::kCold;
    std::uint8_t qos = 0;
    bool has_token = false;
    bool has_budget = false;
    bool referenced = false;  ///< clock-hand second-chance bit
  };

  struct Shard {
    std::uint32_t generation = 1;
    std::vector<std::uint32_t> buckets;  ///< head slab index or kNone
    std::vector<Entry> slab;
    std::vector<std::uint32_t> free_list;
    std::uint32_t hand = 0;  ///< clock hand over the slab
  };

  struct PidSlot {
    TenantId tenant = 0;
    bool bound = false;
    bool live = false;      ///< currently acquired (never recycled/evicted)
    bool ever_used = false; ///< some tenant ran under this pid before
    bool referenced = false;
  };

  [[nodiscard]] std::uint32_t bucket_of(const Shard& s, TenantId id) const;
  /// Lookup within a shard; counts probe steps. Returns slab index or kNone.
  std::uint32_t find(Shard& s, TenantId id, std::uint32_t& probe);
  [[nodiscard]] const Entry* find_const(TenantId id) const;
  /// Insert (evicting if needed); kNone on kTableFull.
  std::uint32_t insert(std::uint32_t si, Shard& s, TenantId id, std::uint8_t qos);
  /// Clock-hand sweep for an evictable COLD entry; kNone if all pinned.
  std::uint32_t clock_evict(std::uint32_t si, Shard& s);
  void unlink(Shard& s, std::uint32_t idx);
  /// Pick a pid slot for a new binding, saving the victim's state.
  std::uint32_t take_slot(core::STManager& stm, core::EventMonitor* mon);
  void save_slot_state(std::uint32_t slot, core::STManager& stm,
                       core::EventMonitor* mon);
  [[nodiscard]] bpu::ExecContext slot_ctx(std::uint32_t slot) const noexcept {
    return {.pid = static_cast<std::uint16_t>(cfg_.first_pid + slot),
            .hart = 0,
            .kernel = false};
  }

  TokenServiceConfig cfg_;
  std::vector<core::MonitorConfig> qos_;
  std::vector<Shard> shards_;
  std::vector<PidSlot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint32_t slot_hand_ = 0;
  std::uint64_t live_entries_ = 0;
  ServiceStats stats_;
};

}  // namespace stbpu::tenant
