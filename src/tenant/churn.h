// Context-switch-storm driver for the multi-tenant ψ-token service: the
// tenant_churn scenario's workload generator. Three phases —
//
//   1. registration: all N tenants enter the sharded token table;
//   2. storm: `storm_passes` full acquire/release sweeps over every tenant
//      with zero branches between them — pure scheduling pressure that
//      exercises pid-slot recycling (save/retire/restore) at rates far
//      above any branchy workload;
//   3. branchy churn: a seeded scheduler picks a tenant (hot-set biased),
//      acquires it, replays a burst of trace records under its engine
//      context, releases it — with optional scripted shard invalidations
//      driving generation-based re-keys mid-run.
//
// The replay loop mirrors sim::replay's statement sequence exactly
// (on_switch before the first access of a differing context; post-warmup
// switch counters; absorb gated on processed >= warmup; processed bumped
// after), so a 1-tenant run — where the service's virgin-slot path issues
// zero STManager/EventMonitor calls — produces BranchStats bit-identical
// to models::replay_engine on the same records. The tenant_churn scenario
// asserts that equality; it is the subsystem's correctness anchor.
//
// Templated on the engine so the concrete EngineT recovered by
// exp::for_each_engine keeps the per-branch access() devirtualized.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "bpu/types.h"
#include "core/monitor.h"
#include "core/secret_token.h"
#include "sim/stats.h"
#include "tenant/token_service.h"
#include "util/percentile.h"
#include "util/rng.h"

namespace stbpu::tenant {

struct ChurnConfig {
  std::uint64_t tenants = 1;
  TokenServiceConfig service{};
  /// Phase-2 acquire/release sweeps over all tenants (0 = skip the storm).
  std::uint64_t storm_passes = 0;
  std::uint64_t max_branches = 400'000;
  std::uint64_t warmup_branches = 50'000;
  std::uint32_t burst = 64;  ///< branches per scheduling quantum
  /// Scheduler skew: with probability hot_fraction the next tenant comes
  /// from the first `hot_tenants` ids (a resident working set), otherwise
  /// uniformly from all N (the cold long tail).
  std::uint64_t hot_tenants = 16;
  double hot_fraction = 0.9;
  /// Invalidate one shard (round-robin) every this many bursts; 0 = never.
  std::uint64_t invalidate_every = 0;
  std::uint64_t seed = 0x5EED5;
  TenantId first_id = 1;
};

struct ChurnResult {
  sim::BranchStats stats;    ///< post-warmup aggregate, replay-identical
  ServiceStats service;      ///< token-service counters at end of run
  std::uint64_t table_size = 0;   ///< live table entries at end of run
  std::uint64_t branches_processed = 0;  ///< including warmup
  std::uint64_t storm_acquires = 0;
  std::uint64_t failed_acquires = 0;
  std::uint64_t tenants_touched = 0;  ///< ran ≥1 post-warmup branch
  std::uint64_t stm_rerandomizations = 0;
  std::uint64_t monitor_rerandomizations = 0;
  // Per-tenant misprediction-rate tail (each touched tenant contributes its
  // post-warmup mispredictions/branches once) and per-acquire lookup cost
  // in hash-chain probe steps — both from seeded reservoirs, so they are
  // deterministic for a fixed (workload, seed) pair.
  double misp_p50 = 0.0, misp_p99 = 0.0;
  double probe_p50 = 0.0, probe_p99 = 0.0;
  double storm_seconds = 0.0, churn_seconds = 0.0;
};

template <class Engine>
ChurnResult run_churn(Engine& engine, std::span<const bpu::BranchRecord> base,
                      const ChurnConfig& cfg,
                      std::vector<core::MonitorConfig> qos_classes) {
  using clock = std::chrono::steady_clock;
  ChurnResult out;
  if (base.empty() || cfg.tenants == 0) return out;

  // Engines without token state (the unprotected baseline) still drive the
  // service's full scheduling machinery against a standby manager — the
  // service's behavior must not depend on the engine family.
  core::STManager* stm = engine.tokens();
  core::STManager standby(cfg.seed ^ 0xA5A5);
  if (stm == nullptr) stm = &standby;
  core::EventMonitor* mon = engine.monitor();
  const std::uint64_t stm_rerand0 = stm->rerandomizations();
  const std::uint64_t mon_rerand0 = mon != nullptr ? mon->rerandomizations() : 0;

  const std::size_t n_qos = qos_classes.empty() ? 1 : qos_classes.size();
  TokenService svc(cfg.service, std::move(qos_classes));
  const auto qos_of = [n_qos](std::uint64_t t) {
    return static_cast<std::uint8_t>(t % n_qos);
  };

  // Phase 1: registration. Tenant t=0 lands in QoS class 0 — the engine's
  // own monitor config — which the 1-tenant bit-identity contract requires.
  for (std::uint64_t t = 0; t < cfg.tenants; ++t) {
    (void)svc.register_tenant(cfg.first_id + t, qos_of(t));
  }

  // Phase 2: context-switch storm, zero branches.
  const auto storm_start = clock::now();
  for (std::uint64_t pass = 0; pass < cfg.storm_passes; ++pass) {
    for (std::uint64_t t = 0; t < cfg.tenants; ++t) {
      const TenantId id = cfg.first_id + t;
      const auto a = svc.acquire(id, *stm, mon);
      if (a.status != AcquireStatus::kOk) {
        ++out.failed_acquires;
        continue;
      }
      ++out.storm_acquires;
      svc.release(id);
    }
  }
  out.storm_seconds = std::chrono::duration<double>(clock::now() - storm_start).count();

  // Phase 3: branchy churn. The loop body mirrors sim::replay record for
  // record; every deviation would break the bit-identity anchor.
  util::Xoshiro256 rng(cfg.seed);
  std::vector<std::uint32_t> cursor(cfg.tenants);
  for (std::uint64_t t = 0; t < cfg.tenants; ++t) {
    cursor[t] = static_cast<std::uint32_t>((t * 9973) % base.size());
  }
  std::vector<std::uint32_t> tenant_branches(cfg.tenants, 0);
  std::vector<std::uint32_t> tenant_misses(cfg.tenants, 0);
  util::PercentileReservoir probe_res(std::size_t{1} << 16, 0x9E11E5);

  const std::uint64_t budget = cfg.warmup_branches + cfg.max_branches;
  const std::uint32_t burst_len = std::max<std::uint32_t>(cfg.burst, 1);
  const std::uint64_t hot = std::min(cfg.hot_tenants, cfg.tenants);
  std::uint64_t processed = 0;
  std::uint64_t bursts = 0;
  std::uint32_t next_shard = 0;
  bpu::ExecContext prev{};
  bool have_prev = false;

  const auto churn_start = clock::now();
  while (processed < budget) {
    std::uint64_t t = 0;
    if (cfg.tenants > 1) {
      t = (hot > 0 && rng.chance(cfg.hot_fraction)) ? rng.below(hot)
                                                    : rng.below(cfg.tenants);
    }
    const auto a = svc.acquire(cfg.first_id + t, *stm, mon);
    if (a.status != AcquireStatus::kOk) {
      ++out.failed_acquires;
      continue;
    }
    probe_res.add(static_cast<double>(a.probe_steps));
    if (have_prev && !(a.ctx == prev)) {
      engine.on_switch(prev, a.ctx);
      if (processed >= cfg.warmup_branches) {
        if (a.ctx.pid != prev.pid) {
          ++out.stats.context_switches;
        } else {
          ++out.stats.mode_switches;
        }
      }
    }
    prev = a.ctx;
    have_prev = true;

    std::uint32_t cur = cursor[t];
    const std::uint32_t burst = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(burst_len, budget - processed));
    for (std::uint32_t i = 0; i < burst; ++i) {
      bpu::BranchRecord rec = base[cur];
      cur = (cur + 1 == base.size()) ? 0 : cur + 1;
      rec.ctx = a.ctx;
      const bpu::AccessResult res = engine.access(rec);
      if (processed >= cfg.warmup_branches) {
        out.stats.absorb(rec, res);
        ++tenant_branches[t];
        if (!res.overall_correct) ++tenant_misses[t];
      }
      ++processed;
    }
    cursor[t] = cur;
    svc.release(cfg.first_id + t);
    ++bursts;
    if (cfg.invalidate_every != 0 && bursts % cfg.invalidate_every == 0) {
      svc.invalidate_shard(next_shard);
      next_shard = (next_shard + 1) % svc.shard_count();
    }
  }
  out.churn_seconds = std::chrono::duration<double>(clock::now() - churn_start).count();

  util::PercentileReservoir misp_res(std::size_t{1} << 16, 0x7A115);
  for (std::uint64_t t = 0; t < cfg.tenants; ++t) {
    if (tenant_branches[t] == 0) continue;
    ++out.tenants_touched;
    misp_res.add(static_cast<double>(tenant_misses[t]) /
                 static_cast<double>(tenant_branches[t]));
  }
  out.misp_p50 = misp_res.p50();
  out.misp_p99 = misp_res.p99();
  out.probe_p50 = probe_res.p50();
  out.probe_p99 = probe_res.p99();
  out.branches_processed = processed;
  out.stm_rerandomizations = stm->rerandomizations() - stm_rerand0;
  out.monitor_rerandomizations =
      mon != nullptr ? mon->rerandomizations() - mon_rerand0 : 0;
  out.service = svc.stats();
  out.table_size = svc.size();
  return out;
}

}  // namespace stbpu::tenant
