// Branch target buffer (paper §II-A): set-associative cache of encoded
// branch targets with two addressing modes (mode 1: address only; mode 2:
// address + BHB context for indirect branches). Baseline geometry is the
// Skylake-like 4096-entry / 8-way table; the conservative secure model uses
// the same class with 48-bit tags and reduced capacity; STIBP-style logical
// partitioning is supported by constraining the set index per hart.
//
// Storage is structure-of-arrays: the match keys of one set (valid bit,
// offset, tag packed into one word per way) occupy a single cache line, so
// the 8-way scan every lookup/insert performs touches one line instead of
// walking interleaved 32-byte entries — the simulator's hottest non-mapping
// loop. Payloads and LRU stamps live in parallel arrays touched only on
// hit/victim selection. Match semantics are identical to an exact
// (valid, tag, offset) comparison for tags up to 36 bits and offsets up to
// 21 bits — every mapping provider in the tree satisfies this (widest: the
// conservative model's 35-bit full-address tag; offsets are 5-bit).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "bpu/mapping.h"
#include "bpu/types.h"
#include "util/bits.h"

namespace stbpu::bpu {

struct BtbConfig {
  std::uint32_t sets = 512;
  std::uint32_t ways = 8;
  /// STIBP model: when true, each hart owns half the sets (logical
  /// segmentation so SMT siblings cannot collide).
  bool partition_by_hart = false;
};

class BranchTargetBuffer {
 public:
  struct LookupResult {
    bool hit = false;
    std::uint64_t payload = 0;  ///< stored (possibly φ-encrypted) target bits
  };
  struct InsertResult {
    bool hit = false;       ///< an existing entry was refreshed/overwritten
    bool evicted = false;   ///< a *different* valid entry was displaced
  };

  explicit BranchTargetBuffer(const BtbConfig& cfg = {})
      : cfg_(cfg),
        keys_(std::size_t{cfg.sets} * cfg.ways, 0),
        payloads_(std::size_t{cfg.sets} * cfg.ways, 0),
        lru_(std::size_t{cfg.sets} * cfg.ways, 0) {}

  [[nodiscard]] const BtbConfig& config() const noexcept { return cfg_; }

  LookupResult lookup(const BtbIndex& idx, std::uint8_t hart) noexcept {
    const std::size_t base = set_base(idx.set, hart);
    const std::uint64_t want = match_key(idx);
    for (std::size_t w = 0; w < cfg_.ways; ++w) {
      if (((keys_[base + w] ^ want) & kMatchMask) == 0) {
        lru_[base + w] = ++clock_;
        return {.hit = true, .payload = payloads_[base + w]};
      }
    }
    return {};
  }

  InsertResult insert(const BtbIndex& idx, std::uint64_t payload, std::uint8_t hart,
                      bool indirect = false) noexcept {
    const std::size_t base = set_base(idx.set, hart);
    const std::uint64_t want = match_key(idx);
    std::size_t victim = base;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (std::size_t w = 0; w < cfg_.ways; ++w) {
      const std::uint64_t k = keys_[base + w];
      if (((k ^ want) & kMatchMask) == 0) {
        payloads_[base + w] = payload;
        keys_[base + w] = want | (indirect ? kIndirectBit : 0);
        lru_[base + w] = ++clock_;
        return {.hit = true, .evicted = false};
      }
      if ((k & kValidBit) == 0) {
        // Prefer an invalid way; mark it "oldest possible".
        if (oldest != 0) {
          oldest = 0;
          victim = base + w;
        }
      } else if (lru_[base + w] < oldest) {
        oldest = lru_[base + w];
        victim = base + w;
      }
    }
    const bool evicted = (keys_[victim] & kValidBit) != 0;
    keys_[victim] = want | (indirect ? kIndirectBit : 0);
    payloads_[victim] = payload;
    lru_[victim] = ++clock_;
    return {.hit = false, .evicted = evicted};
  }

  /// IBRS-style barrier: invalidate only indirect-predictor entries
  /// (mode-2 targets); direct-branch targets are not speculation-controlled
  /// by lower-privilege software and survive.
  void flush_indirect() noexcept {
    for (auto& k : keys_) {
      if ((k & kIndirectBit) != 0) k &= ~kValidBit;
    }
  }

  /// Invalidate a matching entry if present (used by flush-style probes).
  bool invalidate(const BtbIndex& idx, std::uint8_t hart) noexcept {
    const std::size_t base = set_base(idx.set, hart);
    const std::uint64_t want = match_key(idx);
    for (std::size_t w = 0; w < cfg_.ways; ++w) {
      if (((keys_[base + w] ^ want) & kMatchMask) == 0) {
        keys_[base + w] &= ~kValidBit;
        return true;
      }
    }
    return false;
  }

  void flush() noexcept {
    for (auto& k : keys_) k &= ~kValidBit;
  }

  [[nodiscard]] std::size_t valid_entries() const noexcept {
    std::size_t n = 0;
    for (const auto& k : keys_) n += (k & kValidBit) != 0 ? 1 : 0;
    return n;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return keys_.size(); }

 private:
  // Packed match key: [63] valid, [62] indirect (excluded from matching),
  // [57..36] offset (22 bits), [35..0] tag (36 bits).
  static constexpr unsigned kTagBits = 36;
  static constexpr unsigned kOffsetBits = 22;
  static constexpr std::uint64_t kValidBit = std::uint64_t{1} << 63;
  static constexpr std::uint64_t kIndirectBit = std::uint64_t{1} << 62;
  static constexpr std::uint64_t kMatchMask = ~kIndirectBit;

  [[nodiscard]] static std::uint64_t match_key(const BtbIndex& idx) noexcept {
    assert(idx.tag < (std::uint64_t{1} << kTagBits) && "BTB tag exceeds 36 bits");
    assert(idx.offset < (std::uint32_t{1} << kOffsetBits) && "BTB offset exceeds 22 bits");
    return kValidBit | (std::uint64_t{idx.offset} << kTagBits) |
           (idx.tag & util::mask(kTagBits));
  }

  [[nodiscard]] std::size_t set_base(std::uint32_t set, std::uint8_t hart) const noexcept {
    std::uint32_t s = set & (cfg_.sets - 1);
    if (cfg_.partition_by_hart) {
      const std::uint32_t half = cfg_.sets / 2;
      s = (s & (half - 1)) | (static_cast<std::uint32_t>(hart & 1) * half);
    }
    return std::size_t{s} * cfg_.ways;
  }

  BtbConfig cfg_;
  std::vector<std::uint64_t> keys_;      ///< one packed match word per way
  std::vector<std::uint64_t> payloads_;
  std::vector<std::uint64_t> lru_;
  std::uint64_t clock_ = 0;
};

}  // namespace stbpu::bpu
