// Branch target buffer (paper §II-A): set-associative cache of encoded
// branch targets with two addressing modes (mode 1: address only; mode 2:
// address + BHB context for indirect branches). Baseline geometry is the
// Skylake-like 4096-entry / 8-way table; the conservative secure model uses
// the same class with 48-bit tags and reduced capacity; STIBP-style logical
// partitioning is supported by constraining the set index per hart.
#pragma once

#include <cstdint>
#include <vector>

#include "bpu/mapping.h"
#include "bpu/types.h"
#include "util/bits.h"

namespace stbpu::bpu {

struct BtbConfig {
  std::uint32_t sets = 512;
  std::uint32_t ways = 8;
  /// STIBP model: when true, each hart owns half the sets (logical
  /// segmentation so SMT siblings cannot collide).
  bool partition_by_hart = false;
};

class BranchTargetBuffer {
 public:
  struct LookupResult {
    bool hit = false;
    std::uint64_t payload = 0;  ///< stored (possibly φ-encrypted) target bits
  };
  struct InsertResult {
    bool hit = false;       ///< an existing entry was refreshed/overwritten
    bool evicted = false;   ///< a *different* valid entry was displaced
  };

  explicit BranchTargetBuffer(const BtbConfig& cfg = {})
      : cfg_(cfg), entries_(std::size_t{cfg.sets} * cfg.ways) {}

  [[nodiscard]] const BtbConfig& config() const noexcept { return cfg_; }

  LookupResult lookup(const BtbIndex& idx, std::uint8_t hart) noexcept {
    const std::size_t base = set_base(idx.set, hart);
    for (std::size_t w = 0; w < cfg_.ways; ++w) {
      Entry& e = entries_[base + w];
      if (e.valid && e.tag == idx.tag && e.offset == idx.offset) {
        e.lru = ++clock_;
        return {.hit = true, .payload = e.payload};
      }
    }
    return {};
  }

  InsertResult insert(const BtbIndex& idx, std::uint64_t payload, std::uint8_t hart,
                      bool indirect = false) noexcept {
    const std::size_t base = set_base(idx.set, hart);
    std::size_t victim = base;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (std::size_t w = 0; w < cfg_.ways; ++w) {
      Entry& e = entries_[base + w];
      if (e.valid && e.tag == idx.tag && e.offset == idx.offset) {
        e.payload = payload;
        e.indirect = indirect;
        e.lru = ++clock_;
        return {.hit = true, .evicted = false};
      }
      if (!e.valid) {
        // Prefer an invalid way; mark it "oldest possible".
        if (oldest != 0) {
          oldest = 0;
          victim = base + w;
        }
      } else if (e.lru < oldest) {
        oldest = e.lru;
        victim = base + w;
      }
    }
    Entry& v = entries_[victim];
    const bool evicted = v.valid;
    v = Entry{.valid = true, .indirect = indirect, .offset = idx.offset,
              .tag = idx.tag, .payload = payload, .lru = ++clock_};
    return {.hit = false, .evicted = evicted};
  }

  /// IBRS-style barrier: invalidate only indirect-predictor entries
  /// (mode-2 targets); direct-branch targets are not speculation-controlled
  /// by lower-privilege software and survive.
  void flush_indirect() noexcept {
    for (auto& e : entries_) {
      if (e.indirect) e.valid = false;
    }
  }

  /// Invalidate a matching entry if present (used by flush-style probes).
  bool invalidate(const BtbIndex& idx, std::uint8_t hart) noexcept {
    const std::size_t base = set_base(idx.set, hart);
    for (std::size_t w = 0; w < cfg_.ways; ++w) {
      Entry& e = entries_[base + w];
      if (e.valid && e.tag == idx.tag && e.offset == idx.offset) {
        e.valid = false;
        return true;
      }
    }
    return false;
  }

  void flush() noexcept {
    for (auto& e : entries_) e.valid = false;
  }

  [[nodiscard]] std::size_t valid_entries() const noexcept {
    std::size_t n = 0;
    for (const auto& e : entries_) n += e.valid ? 1 : 0;
    return n;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    bool valid = false;
    bool indirect = false;  ///< stored via mode-2 (indirect predictor) path
    std::uint32_t offset = 0;
    std::uint64_t tag = 0;
    std::uint64_t payload = 0;
    std::uint64_t lru = 0;
  };

  [[nodiscard]] std::size_t set_base(std::uint32_t set, std::uint8_t hart) const noexcept {
    std::uint32_t s = set & (cfg_.sets - 1);
    if (cfg_.partition_by_hart) {
      const std::uint32_t half = cfg_.sets / 2;
      s = (s & (half - 1)) | (static_cast<std::uint32_t>(hart & 1) * half);
    }
    return std::size_t{s} * cfg_.ways;
  }

  BtbConfig cfg_;
  std::vector<Entry> entries_;
  std::uint64_t clock_ = 0;
};

}  // namespace stbpu::bpu
