// Return stack buffer (paper §II-A): fixed 16-entry hardware stack of
// encoded return targets. Calls push, returns pop. Overflow silently wraps
// (oldest entries are overwritten — the RSB-overflow DoS of Table I);
// underflow reports failure and the predictor falls back to the indirect
// predictor, exactly the behaviour SpectreRSB [34, 43] abuses.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

namespace stbpu::bpu {

class ReturnStackBuffer {
 public:
  static constexpr std::uint32_t kEntries = 16;

  void push(std::uint64_t payload) noexcept {
    top_ = (top_ + 1) % kEntries;
    ring_[top_] = payload;
    if (depth_ < kEntries) ++depth_;
  }

  /// Pops the predicted return target; std::nullopt on underflow.
  std::optional<std::uint64_t> pop() noexcept {
    if (depth_ == 0) return std::nullopt;
    const std::uint64_t v = ring_[top_];
    top_ = (top_ + kEntries - 1) % kEntries;
    --depth_;
    return v;
  }

  /// Overwrite the current top (reuse-based RSB attack primitive).
  void poke_top(std::uint64_t payload) noexcept {
    if (depth_ > 0) ring_[top_] = payload;
  }

  /// Read the current top without popping (const prediction path).
  [[nodiscard]] std::optional<std::uint64_t> peek() const noexcept {
    if (depth_ == 0) return std::nullopt;
    return ring_[top_];
  }

  [[nodiscard]] std::uint32_t depth() const noexcept { return depth_; }
  void flush() noexcept {
    depth_ = 0;
    top_ = 0;
  }

 private:
  std::array<std::uint64_t, kEntries> ring_{};
  std::uint32_t top_ = 0;
  std::uint32_t depth_ = 0;
};

}  // namespace stbpu::bpu
