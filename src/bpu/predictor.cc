#include "bpu/predictor.h"

namespace stbpu::bpu {

// Legacy dynamic-dispatch engine (MappingProvider + IDirectionPredictor),
// compiled once here; the devirtualized combinations are instantiated in
// src/models/engine.cc.
template class CorePredictorT<>;

}  // namespace stbpu::bpu
