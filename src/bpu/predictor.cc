#include "bpu/predictor.h"

namespace stbpu::bpu {

CorePredictor::CorePredictor(const CorePredictorConfig& cfg,
                             const MappingProvider* mapping,
                             std::unique_ptr<IDirectionPredictor> direction,
                             IEventSink* sink)
    : cfg_(cfg),
      mapping_(mapping),
      direction_(std::move(direction)),
      sink_(sink ? sink : &null_sink_),
      btb_(cfg.btb) {}

BtbIndex CorePredictor::mode2_index(std::uint64_t ip, const ExecContext& ctx) const {
  // Mode 2: the set comes from the address as in mode 1, but the tag also
  // mixes the BHB so one indirect branch can hold several context-dependent
  // targets (paper §II-A).
  BtbIndex idx = mapping_->btb_mode1(ip, ctx);
  idx.tag ^= mapping_->btb_mode2_tag(bhb_[ctx.hart & 1].value(), ctx);
  return idx;
}

CorePredictor::TargetPrediction CorePredictor::predict_target(const BranchRecord& rec,
                                                              bool pop_rsb) {
  const ExecContext& ctx = rec.ctx;
  TargetPrediction out;
  switch (rec.type) {
    case BranchType::kReturn: {
      auto& rsb = rsb_[cfg_.rsb_per_hart ? (ctx.hart & 1) : 0];
      const auto popped = pop_rsb ? rsb.pop() : rsb.peek();
      if (popped) {
        out.valid = true;
        out.target = mapping_->decode_target(rec.ip, *popped, ctx);
        return out;
      }
      out.rsb_underflow = true;
      // Fall back to the indirect predictor (BTB mode 2), as real parts do.
      [[fallthrough]];
    }
    case BranchType::kIndirectJump:
    case BranchType::kIndirectCall: {
      const auto m2 = btb_.lookup(mode2_index(rec.ip, ctx), ctx.hart);
      if (m2.hit) {
        out.valid = true;
        out.target = mapping_->decode_target(rec.ip, m2.payload, ctx);
        return out;
      }
      const auto m1 = btb_.lookup(mapping_->btb_mode1(rec.ip, ctx), ctx.hart);
      if (m1.hit) {
        out.valid = true;
        out.target = mapping_->decode_target(rec.ip, m1.payload, ctx);
      }
      return out;
    }
    case BranchType::kConditional:
    case BranchType::kDirectJump:
    case BranchType::kDirectCall: {
      const auto m1 = btb_.lookup(mapping_->btb_mode1(rec.ip, ctx), ctx.hart);
      if (m1.hit) {
        out.valid = true;
        out.target = mapping_->decode_target(rec.ip, m1.payload, ctx);
      }
      return out;
    }
  }
  return out;
}

Prediction CorePredictor::predict_only(const BranchRecord& rec) const {
  // Const prediction path for front-end modelling: replicates access()'s
  // prediction without mutating structures (RSB peek instead of pop).
  Prediction pred;
  auto* self = const_cast<CorePredictor*>(this);
  if (rec.type == BranchType::kConditional) {
    const DirPrediction d = self->direction_->predict(rec.ip, rec.ctx);
    pred.taken = d.taken;
    pred.from_tagged = d.from_tagged;
  } else {
    pred.taken = true;
  }
  const TargetPrediction t = self->predict_target(rec, /*pop_rsb=*/false);
  pred.target_valid = t.valid;
  pred.target = t.target;
  return pred;
}

void CorePredictor::train_target(const BranchRecord& rec, AccessResult& res) {
  const ExecContext& ctx = rec.ctx;
  // BTB allocates on taken control transfers only; a not-taken conditional
  // needs no target.
  if (!rec.taken) return;

  const std::uint64_t payload = mapping_->encode_target(rec.target, ctx);
  BtbIndex idx;
  bool indirect = false;
  switch (rec.type) {
    case BranchType::kReturn:
      // Returns are repaired through the RSB; BTB mode-2 training only
      // happens for them when they were predicted via the fallback path
      // (modelled by always refreshing the mode-2 entry on underflow).
      if (!res.rsb_underflow) return;
      idx = mode2_index(rec.ip, ctx);
      indirect = true;
      break;
    case BranchType::kIndirectJump:
    case BranchType::kIndirectCall:
      idx = mode2_index(rec.ip, ctx);
      indirect = true;
      break;
    default:
      idx = mapping_->btb_mode1(rec.ip, ctx);
      break;
  }
  const auto ins = btb_.insert(idx, payload, ctx.hart, indirect);
  res.btb_eviction = ins.evicted;
}

AccessResult CorePredictor::access(const BranchRecord& rec) {
  const ExecContext& ctx = rec.ctx;
  AccessResult res;

  // --- predict ---------------------------------------------------------
  Prediction pred;
  if (rec.type == BranchType::kConditional) {
    const DirPrediction d = direction_->predict(rec.ip, ctx);
    pred.taken = d.taken;
    pred.from_tagged = d.from_tagged;
    res.from_tagged = d.from_tagged;
  } else {
    pred.taken = true;
  }
  const TargetPrediction tgt = predict_target(rec, /*pop_rsb=*/true);
  pred.target_valid = tgt.valid;
  pred.target = tgt.target;
  res.rsb_underflow = tgt.rsb_underflow;
  res.pred = pred;

  // --- resolve ---------------------------------------------------------
  res.direction_correct =
      rec.type != BranchType::kConditional || pred.taken == rec.taken;
  const bool needs_target = rec.taken && pred.taken;
  res.target_correct = !needs_target || (tgt.valid && tgt.target == rec.target);
  res.overall_correct = res.direction_correct && (!rec.taken || res.target_correct);
  res.direction_mispredicted = !res.direction_correct;
  res.target_mispredicted = needs_target && !res.target_correct;

  // --- train -----------------------------------------------------------
  if (rec.type == BranchType::kConditional) {
    direction_->update(rec.ip, ctx, rec.taken,
                       DirPrediction{pred.taken, pred.from_tagged});
  } else {
    direction_->track(rec);
  }
  if (is_call(rec.type)) {
    auto& rsb = rsb_[cfg_.rsb_per_hart ? (ctx.hart & 1) : 0];
    rsb.push(mapping_->encode_target(rec.ip + kBranchInstrLen, ctx));
  }
  train_target(rec, res);
  if (rec.taken) bhb_[ctx.hart & 1].push(rec.ip, rec.target);

  // --- events ----------------------------------------------------------
  if (!res.overall_correct) sink_->on_misprediction(ctx, res.from_tagged);
  if (res.btb_eviction) sink_->on_btb_eviction(ctx);
  return res;
}

void CorePredictor::flush() {
  btb_.flush();
  direction_->flush();
  for (auto& r : rsb_) r.flush();
  for (auto& b : bhb_) b.clear();
}

void CorePredictor::flush_targets() {
  // IBRS semantics: indirect prediction must not consume lower-privilege
  // state — mode-2 BTB entries, the RSB and the BHB context go; direct
  // targets stay.
  btb_.flush_indirect();
  for (auto& r : rsb_) r.flush();
  for (auto& b : bhb_) b.clear();
}

void CorePredictor::flush_hart(std::uint8_t hart) {
  direction_->flush_hart(hart);
  rsb_[hart & 1].flush();
  bhb_[hart & 1].clear();
}

}  // namespace stbpu::bpu
