// CorePredictor — the full BPU of Figure 1: a direction predictor
// (SKLCond / TAGE-SC-L / Perceptron), the BTB with its two addressing
// modes, the per-hart RSB and BHB, all wired through a MappingProvider so
// the identical prediction machinery runs unprotected (BaselineMapping),
// conservatively, or secured (STBPU mapping). Every access reports the
// events STBPU's MSRs monitor.
#pragma once

#include <memory>
#include <string_view>

#include "bpu/btb.h"
#include "bpu/direction.h"
#include "bpu/history.h"
#include "bpu/mapping.h"
#include "bpu/rsb.h"
#include "bpu/types.h"

namespace stbpu::bpu {

/// All branch instructions in the synthetic ISA are 4 bytes, so a call at
/// `ip` returns to `ip + kBranchInstrLen`. The trace generator honours this.
inline constexpr std::uint64_t kBranchInstrLen = 4;

/// Top-level predictor interface consumed by the simulators, the secure
/// model wrappers and the attack framework.
class IPredictor {
 public:
  virtual ~IPredictor() = default;

  /// Predict + resolve + train for one dynamic branch. Returns the
  /// prediction made and the events it generated.
  virtual AccessResult access(const BranchRecord& rec) = 0;

  /// Called by the simulator when the running context changes (context
  /// switch when pid changes, mode switch when kernel bit changes). The
  /// microcode/conservative models flush here; STBPU reloads the ST
  /// register implicitly (it keys every mapping call by context).
  virtual void on_switch(const ExecContext& from, const ExecContext& to) {
    (void)from;
    (void)to;
  }

  virtual void flush() = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
};

struct CorePredictorConfig {
  BtbConfig btb{};
  bool rsb_per_hart = true;  ///< real SMT parts statically partition the RSB
};

class CorePredictor final : public IPredictor {
 public:
  CorePredictor(const CorePredictorConfig& cfg, const MappingProvider* mapping,
                std::unique_ptr<IDirectionPredictor> direction,
                IEventSink* sink = nullptr);

  AccessResult access(const BranchRecord& rec) override;
  void flush() override;
  [[nodiscard]] std::string_view name() const override { return name_; }

  /// Flush only shared target structures (IBRS-style partial flush).
  void flush_targets();
  /// Flush the per-hart state of one hardware thread.
  void flush_hart(std::uint8_t hart);

  [[nodiscard]] IDirectionPredictor& direction() noexcept { return *direction_; }
  [[nodiscard]] BranchTargetBuffer& btb() noexcept { return btb_; }
  [[nodiscard]] ReturnStackBuffer& rsb(std::uint8_t hart) noexcept {
    return rsb_[hart & 1];
  }
  [[nodiscard]] std::uint64_t bhb_value(std::uint8_t hart) const noexcept {
    return bhb_[hart & 1].value();
  }
  void set_event_sink(IEventSink* sink) noexcept { sink_ = sink ? sink : &null_sink_; }
  void set_name(std::string_view name) { name_ = name; }

  /// The prediction half of access(), without any state change other than
  /// the RSB pop it models; exposed for the OoO front end.
  [[nodiscard]] Prediction predict_only(const BranchRecord& rec) const;

 private:
  struct TargetPrediction {
    bool valid = false;
    std::uint64_t target = 0;
    bool rsb_underflow = false;
  };

  [[nodiscard]] BtbIndex mode2_index(std::uint64_t ip, const ExecContext& ctx) const;
  TargetPrediction predict_target(const BranchRecord& rec, bool pop_rsb);
  void train_target(const BranchRecord& rec, AccessResult& res);

  CorePredictorConfig cfg_;
  const MappingProvider* mapping_;
  std::unique_ptr<IDirectionPredictor> direction_;
  NullEventSink null_sink_;
  IEventSink* sink_;
  BranchTargetBuffer btb_;
  ReturnStackBuffer rsb_[2];
  BranchHistoryBuffer bhb_[2];
  std::string name_ = "core";
};

}  // namespace stbpu::bpu
