// CorePredictor — the full BPU of Figure 1: a direction predictor
// (SKLCond / TAGE-SC-L / Perceptron), the BTB with its two addressing
// modes, the per-hart RSB and BHB, all wired through a mapping provider so
// the identical prediction machinery runs unprotected (BaselineMapping),
// conservatively, or secured (STBPU mapping). Every access reports the
// events STBPU's MSRs monitor.
//
// The predictor is a template over the mapping and direction types
// (CorePredictorT). Instantiated with the virtual interfaces
// (MappingProvider / IDirectionPredictor — the `CorePredictor` alias) it is
// the legacy dynamic-dispatch engine; instantiated with concrete final
// classes (BaselineMappingLogic, CachedStbpuMapping, SklCondPredictorT<...>)
// every mapping and direction call resolves at compile time and inlines
// into the access loop — the devirtualized engine src/models/engine.h
// builds. Both instantiations execute the identical statement sequence, so
// prediction statistics are bit-identical by construction (asserted by
// tests/integration/engine_equivalence_test.cc).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "bpu/btb.h"
#include "bpu/direction.h"
#include "bpu/history.h"
#include "bpu/mapping.h"
#include "bpu/rsb.h"
#include "bpu/types.h"

namespace stbpu::bpu {

/// All branch instructions in the synthetic ISA are 4 bytes, so a call at
/// `ip` returns to `ip + kBranchInstrLen`. The trace generator honours this.
inline constexpr std::uint64_t kBranchInstrLen = 4;

/// Top-level predictor interface consumed by the simulators, the secure
/// model wrappers and the attack framework.
class IPredictor {
 public:
  virtual ~IPredictor() = default;

  /// Predict + resolve + train for one dynamic branch. Returns the
  /// prediction made and the events it generated.
  virtual AccessResult access(const BranchRecord& rec) = 0;

  /// Called by the simulator when the running context changes (context
  /// switch when pid changes, mode switch when kernel bit changes). The
  /// microcode/conservative models flush here; STBPU reloads the ST
  /// register implicitly (it keys every mapping call by context).
  virtual void on_switch(const ExecContext& from, const ExecContext& to) {
    (void)from;
    (void)to;
  }

  virtual void flush() = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
};

struct CorePredictorConfig {
  BtbConfig btb{};
  bool rsb_per_hart = true;  ///< real SMT parts statically partition the RSB
};

template <class Mapping = MappingProvider, class Direction = IDirectionPredictor>
class CorePredictorT final : public IPredictor {
 public:
  CorePredictorT(const CorePredictorConfig& cfg, const Mapping* mapping,
                 std::unique_ptr<Direction> direction, IEventSink* sink = nullptr)
      : cfg_(cfg),
        mapping_(mapping),
        direction_(std::move(direction)),
        sink_(sink ? sink : &null_sink_),
        btb_(cfg.btb) {}

  AccessResult access(const BranchRecord& rec) override;
  void flush() override;
  [[nodiscard]] std::string_view name() const override { return name_; }

  /// Flush only shared target structures (IBRS-style partial flush).
  void flush_targets();
  /// Flush the per-hart state of one hardware thread.
  void flush_hart(std::uint8_t hart);

  [[nodiscard]] Direction& direction() noexcept { return *direction_; }
  [[nodiscard]] BranchTargetBuffer& btb() noexcept { return btb_; }
  [[nodiscard]] ReturnStackBuffer& rsb(std::uint8_t hart) noexcept {
    return rsb_[hart & 1];
  }
  [[nodiscard]] std::uint64_t bhb_value(std::uint8_t hart) const noexcept {
    return bhb_[hart & 1].value();
  }
  void set_event_sink(IEventSink* sink) noexcept { sink_ = sink ? sink : &null_sink_; }
  void set_name(std::string_view name) { name_ = name; }

  /// The prediction half of access(), without any state change other than
  /// the RSB pop it models; exposed for the OoO front end.
  [[nodiscard]] Prediction predict_only(const BranchRecord& rec) const;

 private:
  struct TargetPrediction {
    bool valid = false;
    std::uint64_t target = 0;
    bool rsb_underflow = false;
  };

  [[nodiscard]] BtbIndex mode2_index(std::uint64_t ip, const ExecContext& ctx) const;
  TargetPrediction predict_target(const BranchRecord& rec, bool pop_rsb);
  void train_target(const BranchRecord& rec, AccessResult& res);

  /// R1 for `ip`, reused across the predict/train phases of one access when
  /// the mapping is remap-aware (R outputs are pure until the monitor fires
  /// at the end of the access, so the value cannot go stale mid-access).
  /// Non-aware mappings recompute every time — the seed's exact behaviour.
  [[nodiscard]] BtbIndex mode1_index(std::uint64_t ip, const ExecContext& ctx) const {
    if constexpr (RemapAwareMapping<Mapping>) {
      if (!m1_valid_ || m1_ip_ != ip) {
        m1_ = mapping_->btb_mode1(ip, ctx);
        m1_ip_ = ip;
        m1_valid_ = true;
      }
      return m1_;
    } else {
      return mapping_->btb_mode1(ip, ctx);
    }
  }

  CorePredictorConfig cfg_;
  const Mapping* mapping_;
  mutable BtbIndex m1_;  ///< intra-access R1 scratch (remap-aware mappings)
  mutable std::uint64_t m1_ip_ = 0;
  mutable bool m1_valid_ = false;
  std::unique_ptr<Direction> direction_;
  NullEventSink null_sink_;
  IEventSink* sink_;
  BranchTargetBuffer btb_;
  ReturnStackBuffer rsb_[2];
  BranchHistoryBuffer bhb_[2];
  std::string name_ = "core";
};

/// Legacy dynamic-dispatch instantiation — the API-edge engine.
using CorePredictor = CorePredictorT<>;

// ---------------------------------------------------------------------------
// Implementation (template — shared verbatim by every instantiation).
// ---------------------------------------------------------------------------

template <class Mapping, class Direction>
BtbIndex CorePredictorT<Mapping, Direction>::mode2_index(std::uint64_t ip,
                                                         const ExecContext& ctx) const {
  // Mode 2: the set comes from the address as in mode 1, but the tag also
  // mixes the BHB so one indirect branch can hold several context-dependent
  // targets (paper §II-A). The mode-2 component is architecturally
  // kBtbMode2TagBits wide; mask before combining so wide (conservative)
  // tags keep their high bits intact.
  BtbIndex idx = mode1_index(ip, ctx);
  idx.tag ^= util::bits(mapping_->btb_mode2_tag(bhb_[ctx.hart & 1].value(), ctx), 0,
                        kBtbMode2TagBits);
  return idx;
}

template <class Mapping, class Direction>
typename CorePredictorT<Mapping, Direction>::TargetPrediction
CorePredictorT<Mapping, Direction>::predict_target(const BranchRecord& rec, bool pop_rsb) {
  const ExecContext& ctx = rec.ctx;
  TargetPrediction out;
  switch (rec.type) {
    case BranchType::kReturn: {
      auto& rsb = rsb_[cfg_.rsb_per_hart ? (ctx.hart & 1) : 0];
      const auto popped = pop_rsb ? rsb.pop() : rsb.peek();
      if (popped) {
        out.valid = true;
        out.target = mapping_->decode_target(rec.ip, *popped, ctx);
        return out;
      }
      out.rsb_underflow = true;
      // Fall back to the indirect predictor (BTB mode 2), as real parts do.
      [[fallthrough]];
    }
    case BranchType::kIndirectJump:
    case BranchType::kIndirectCall: {
      const auto m2 = btb_.lookup(mode2_index(rec.ip, ctx), ctx.hart);
      if (m2.hit) {
        out.valid = true;
        out.target = mapping_->decode_target(rec.ip, m2.payload, ctx);
        return out;
      }
      const auto m1 = btb_.lookup(mode1_index(rec.ip, ctx), ctx.hart);
      if (m1.hit) {
        out.valid = true;
        out.target = mapping_->decode_target(rec.ip, m1.payload, ctx);
      }
      return out;
    }
    case BranchType::kConditional:
    case BranchType::kDirectJump:
    case BranchType::kDirectCall: {
      const auto m1 = btb_.lookup(mode1_index(rec.ip, ctx), ctx.hart);
      if (m1.hit) {
        out.valid = true;
        out.target = mapping_->decode_target(rec.ip, m1.payload, ctx);
      }
      return out;
    }
  }
  return out;
}

template <class Mapping, class Direction>
Prediction CorePredictorT<Mapping, Direction>::predict_only(const BranchRecord& rec) const {
  // Const prediction path for front-end modelling: replicates access()'s
  // prediction without mutating structures (RSB peek instead of pop).
  Prediction pred;
  m1_valid_ = false;  // R1 scratch never spans accesses (ψ may re-key between)
  auto* self = const_cast<CorePredictorT*>(this);
  if (rec.type == BranchType::kConditional) {
    const DirPrediction d = self->direction_->predict(rec.ip, rec.ctx);
    pred.taken = d.taken;
    pred.from_tagged = d.from_tagged;
  } else {
    pred.taken = true;
  }
  const TargetPrediction t = self->predict_target(rec, /*pop_rsb=*/false);
  pred.target_valid = t.valid;
  pred.target = t.target;
  return pred;
}

template <class Mapping, class Direction>
void CorePredictorT<Mapping, Direction>::train_target(const BranchRecord& rec,
                                                      AccessResult& res) {
  const ExecContext& ctx = rec.ctx;
  // BTB allocates on taken control transfers only; a not-taken conditional
  // needs no target.
  if (!rec.taken) return;

  const std::uint64_t payload = mapping_->encode_target(rec.target, ctx);
  BtbIndex idx;
  bool indirect = false;
  switch (rec.type) {
    case BranchType::kReturn:
      // Returns are repaired through the RSB; BTB mode-2 training only
      // happens for them when they were predicted via the fallback path
      // (modelled by always refreshing the mode-2 entry on underflow).
      if (!res.rsb_underflow) return;
      idx = mode2_index(rec.ip, ctx);
      indirect = true;
      break;
    case BranchType::kIndirectJump:
    case BranchType::kIndirectCall:
      idx = mode2_index(rec.ip, ctx);
      indirect = true;
      break;
    default:
      idx = mode1_index(rec.ip, ctx);
      break;
  }
  const auto ins = btb_.insert(idx, payload, ctx.hart, indirect);
  res.btb_eviction = ins.evicted;
}

template <class Mapping, class Direction>
AccessResult CorePredictorT<Mapping, Direction>::access(const BranchRecord& rec) {
  const ExecContext& ctx = rec.ctx;
  AccessResult res;
  m1_valid_ = false;  // R1 scratch never spans accesses (ψ may re-key between)

  // --- predict ---------------------------------------------------------
  Prediction pred;
  if (rec.type == BranchType::kConditional) {
    const DirPrediction d = direction_->predict(rec.ip, ctx);
    pred.taken = d.taken;
    pred.from_tagged = d.from_tagged;
    res.from_tagged = d.from_tagged;
  } else {
    pred.taken = true;
  }
  const TargetPrediction tgt = predict_target(rec, /*pop_rsb=*/true);
  pred.target_valid = tgt.valid;
  pred.target = tgt.target;
  res.rsb_underflow = tgt.rsb_underflow;
  res.pred = pred;

  // --- resolve ---------------------------------------------------------
  res.direction_correct =
      rec.type != BranchType::kConditional || pred.taken == rec.taken;
  const bool needs_target = rec.taken && pred.taken;
  res.target_correct = !needs_target || (tgt.valid && tgt.target == rec.target);
  res.overall_correct = res.direction_correct && (!rec.taken || res.target_correct);
  res.direction_mispredicted = !res.direction_correct;
  res.target_mispredicted = needs_target && !res.target_correct;

  // --- train -----------------------------------------------------------
  if (rec.type == BranchType::kConditional) {
    direction_->update(rec.ip, ctx, rec.taken,
                       DirPrediction{pred.taken, pred.from_tagged});
  } else {
    direction_->track(rec);
  }
  if (is_call(rec.type)) {
    auto& rsb = rsb_[cfg_.rsb_per_hart ? (ctx.hart & 1) : 0];
    rsb.push(mapping_->encode_target(rec.ip + kBranchInstrLen, ctx));
  }
  train_target(rec, res);
  if (rec.taken) bhb_[ctx.hart & 1].push(rec.ip, rec.target);

  // --- events ----------------------------------------------------------
  if (!res.overall_correct) sink_->on_misprediction(ctx, res.from_tagged);
  if (res.btb_eviction) sink_->on_btb_eviction(ctx);
  return res;
}

template <class Mapping, class Direction>
void CorePredictorT<Mapping, Direction>::flush() {
  btb_.flush();
  direction_->flush();
  for (auto& r : rsb_) r.flush();
  for (auto& b : bhb_) b.clear();
}

template <class Mapping, class Direction>
void CorePredictorT<Mapping, Direction>::flush_targets() {
  // IBRS semantics: indirect prediction must not consume lower-privilege
  // state — mode-2 BTB entries, the RSB and the BHB context go; direct
  // targets stay.
  btb_.flush_indirect();
  for (auto& r : rsb_) r.flush();
  for (auto& b : bhb_) b.clear();
}

template <class Mapping, class Direction>
void CorePredictorT<Mapping, Direction>::flush_hart(std::uint8_t hart) {
  direction_->flush_hart(hart);
  rsb_[hart & 1].flush();
  bhb_[hart & 1].clear();
}

/// The legacy instantiation is compiled once in predictor.cc.
extern template class CorePredictorT<>;

}  // namespace stbpu::bpu
