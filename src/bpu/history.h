// Shift-register branch histories (paper §II-A): the global history register
// (GHR) feeding the conditional predictor's 2-level mode, and the branch
// history buffer (BHB) accumulating branch context for the indirect
// predictor. Both are per-hardware-thread, as in SMT processors.
#pragma once

#include <cstdint>

#include "bpu/types.h"
#include "util/bits.h"

namespace stbpu::bpu {

/// Global taken/not-taken history. The Skylake-like baseline uses 18 bits
/// for PHT mode 2 (Table II); STBPU consumes 16 of them. TAGE keeps its own
/// much longer history internally.
class GlobalHistoryRegister {
 public:
  explicit GlobalHistoryRegister(unsigned bits = 18) noexcept : bits_(bits) {}

  void push(bool taken) noexcept {
    value_ = ((value_ << 1) | static_cast<std::uint64_t>(taken)) & util::mask(bits_);
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] unsigned width() const noexcept { return bits_; }
  void clear() noexcept { value_ = 0; }
  void set(std::uint64_t v) noexcept { value_ = v & util::mask(bits_); }

 private:
  unsigned bits_;
  std::uint64_t value_ = 0;
};

/// Branch history buffer: 58-bit register mixed from the source and target
/// addresses of taken branches (reverse engineered in the Spectre paper,
/// [32]). Used as part of BTB mode-2 lookups so one indirect branch can
/// hold multiple context-dependent targets.
class BranchHistoryBuffer {
 public:
  static constexpr unsigned kBits = 58;

  void push(std::uint64_t src, std::uint64_t dst) noexcept {
    // Two-bit shift then XOR-mix of low source/target bits, following the
    // publicly reverse-engineered Haswell/Skylake update function shape.
    const std::uint64_t mix = util::bits(src, 4, 15) ^ (util::bits(dst, 0, 6) << 12);
    value_ = ((value_ << 2) ^ mix) & util::mask(kBits);
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void clear() noexcept { value_ = 0; }
  void set(std::uint64_t v) noexcept { value_ = v & util::mask(kBits); }

 private:
  std::uint64_t value_ = 0;
};

}  // namespace stbpu::bpu
