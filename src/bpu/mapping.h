// The mapping-provider abstraction — the seam STBPU plugs into.
//
// Every BPU structure computes indexes/tags/offsets and encodes/decodes
// stored targets exclusively through this interface (functions 1-5 of the
// paper's Figure 1 plus the TAGE/perceptron hooks of Table II). The
// baseline provider below reproduces the legacy truncating/folding
// behaviour reverse-engineered from Intel parts — deterministic and
// collision-friendly, which is exactly what the Table I attacks exploit.
// The STBPU provider (src/core/stbpu_mapping.h) swaps in the keyed
// R-functions and the XOR target codec without touching the predictors.
//
// Two parallel renderings of each mapping exist:
//   * a non-virtual "logic" class (BaselineMappingLogic here, the STBPU
//     equivalents in src/core/) consumed by the templated predictors — the
//     devirtualized hot path the simulation engine is built on;
//   * a thin MappingProvider adapter that delegates to the logic class —
//     the stable virtual seam kept for tests, attacks and ad-hoc model
//     variants where dispatch cost does not matter.
#pragma once

#include <concepts>
#include <cstdint>

#include "bpu/types.h"
#include "util/bits.h"

namespace stbpu::bpu {

/// Detects mapping types that declare `kRemapAware = true` — memoized
/// mappings whose outputs are pure between re-keys, letting templated
/// predictors reuse values across the phases of a single access.
template <class Mapping>
concept RemapAwareMapping = requires { requires Mapping::kRemapAware; };

struct BtbIndex;

// ---------------------------------------------------------------------------
// The mapping contract, formalized. A mapping arm registered with the
// devirtualized engine (models/engine.h's RegisteredArms typelist) must
// satisfy MappingCore — the nine index/tag/codec functions of the paper's
// Figure 1 + Table II, all callable on a const object (mappings are pure
// between re-keys; mutable internals like memo-caches must be logically
// const). The three capability concepts below are optional: the engine
// detects them per arm and lights up the corresponding machinery, so a new
// mapping opts in by simply providing the member. Registration
// static_asserts MappingCore for every arm (see engine.h), turning a
// half-implemented mapping into a named compile error instead of an
// overload-resolution maze.
// ---------------------------------------------------------------------------

/// Required: the nine pure mapping functions every predictor structure
/// calls through. Matches the virtual MappingProvider signature set, minus
/// virtuality.
template <class M>
concept MappingCore =
    requires(const M m, std::uint64_t a, unsigned bits, const ExecContext& ctx) {
      { m.btb_mode1(a, ctx) } -> std::convertible_to<BtbIndex>;
      { m.btb_mode2_tag(a, ctx) } -> std::convertible_to<std::uint32_t>;
      { m.pht_index_1level(a, ctx) } -> std::convertible_to<std::uint32_t>;
      { m.pht_index_2level(a, a, ctx) } -> std::convertible_to<std::uint32_t>;
      { m.encode_target(a, ctx) } -> std::convertible_to<std::uint64_t>;
      { m.decode_target(a, a, ctx) } -> std::convertible_to<std::uint64_t>;
      { m.tage_index(a, a, bits, bits, ctx) } -> std::convertible_to<std::uint32_t>;
      { m.tage_tag(a, a, bits, bits, ctx) } -> std::convertible_to<std::uint32_t>;
      { m.perceptron_row(a, bits, ctx) } -> std::convertible_to<std::uint32_t>;
    };

/// Optional capability: the mapping holds invalidatable derived state
/// (e.g. a memo-cache) that the engine empties on context switches —
/// belt-and-braces hygiene, never a correctness requirement (derived state
/// must already be tagged/validated against re-keys).
template <class M>
concept Invalidatable = requires(const M m) { m.invalidate_all(); };

/// Optional capability: the mapping implements the batch probe/fill layer
/// (`precompute(span<PredictRequest>, PrecomputeSelect)` and friends) that
/// the engine's lookahead walks feed — STBPU's memo-cached mapping today.
/// Arms without it compute indexes in a handful of cycles and the engine's
/// precompute compiles away to nothing.
template <class M>
concept BatchPrecompute = requires { typename M::PrecomputeSelect; };

/// Optional capability: the mapping reports per-structure cache statistics
/// (`stats()`), surfaced through models::engine_remap_cache_stats.
template <class M>
concept StatsReporting = requires(const M m) { m.stats(); };

/// Output of function 1 / R1: where a branch lives in the BTB.
///
/// `tag` is 64-bit because the conservative model stores the complete
/// remaining 48-bit address as its tag; narrow providers (baseline 8-bit
/// fold, STBPU R1) must produce already-masked values in the same field —
/// never a narrowed-then-rewidened cast.
struct BtbIndex {
  std::uint32_t set = 0;     ///< 9 bits baseline
  std::uint64_t tag = 0;     ///< 8 bits baseline (full address, conservative model)
  std::uint32_t offset = 0;  ///< 5 bits baseline
  friend constexpr bool operator==(const BtbIndex&, const BtbIndex&) = default;
};

/// Architectural width of the mode-2 (BHB-derived) tag component. Every
/// provider's btb_mode2_tag must fit in this many bits; the predictor masks
/// with it before XOR-combining into BtbIndex::tag so a misbehaving
/// provider cannot corrupt high tag bits (conservative tags are 35 bits).
inline constexpr unsigned kBtbMode2TagBits = 8;

class MappingProvider {
 public:
  virtual ~MappingProvider() = default;

  /// Function 1 / R1 — BTB set/tag/offset from the branch address.
  [[nodiscard]] virtual BtbIndex btb_mode1(std::uint64_t ip,
                                           const ExecContext& ctx) const = 0;

  /// Function 2 / R2 — extra tag from the BHB for mode-2 (indirect) lookups.
  [[nodiscard]] virtual std::uint32_t btb_mode2_tag(std::uint64_t bhb,
                                                    const ExecContext& ctx) const = 0;

  /// Function 3 / R3 — PHT 1-level index.
  [[nodiscard]] virtual std::uint32_t pht_index_1level(std::uint64_t ip,
                                                       const ExecContext& ctx) const = 0;

  /// Function 4 / R4 — PHT 2-level (gshare) index from address + GHR.
  [[nodiscard]] virtual std::uint32_t pht_index_2level(std::uint64_t ip, std::uint64_t ghr,
                                                       const ExecContext& ctx) const = 0;

  /// Target store codec (function 5 and STBPU's φ encryption). The baseline
  /// BTB/RSB store 32 bits; decode re-extends using the 16 upper bits of the
  /// branch instruction pointer. STBPU XORs the stored payload with φ both
  /// ways. The conservative model stores the full 48 bits (hence uint64).
  [[nodiscard]] virtual std::uint64_t encode_target(std::uint64_t target,
                                                    const ExecContext& ctx) const = 0;
  [[nodiscard]] virtual std::uint64_t decode_target(std::uint64_t branch_ip,
                                                    std::uint64_t stored,
                                                    const ExecContext& ctx) const = 0;

  /// Rt — TAGE tagged-table index/tag from address + folded history.
  [[nodiscard]] virtual std::uint32_t tage_index(std::uint64_t ip, std::uint64_t folded_hist,
                                                 unsigned table, unsigned index_bits,
                                                 const ExecContext& ctx) const = 0;
  [[nodiscard]] virtual std::uint32_t tage_tag(std::uint64_t ip, std::uint64_t folded_hist,
                                               unsigned table, unsigned tag_bits,
                                               const ExecContext& ctx) const = 0;

  /// Rp — perceptron row selection.
  [[nodiscard]] virtual std::uint32_t perceptron_row(std::uint64_t ip, unsigned row_bits,
                                                     const ExecContext& ctx) const = 0;
};

/// Legacy (insecure) mapping logic reproducing the baseline model of §II-A:
///  * only the low 30 bits of the 48-bit virtual address are consumed, so
///    addresses equal modulo 2^30 collide fully (same-address-space attacks,
///    transient trojans [78]);
///  * the BTB tag is an 8-bit XOR-fold of bits 14..29, so crafted aliases
///    collide within one address space too (Jump-over-ASLR [19]);
///  * stored targets are truncated to 32 bits and re-extended with the upper
///    16 bits of the *predicting* branch's address (function 5).
///
/// Non-virtual: the templated engine calls these directly so every mapping
/// call inlines into the predictor loops.
class BaselineMappingLogic {
 public:
  static constexpr unsigned kUsedAddressBits = 30;
  static constexpr unsigned kBtbSetBits = 9;     // 512 sets
  static constexpr unsigned kBtbTagBits = 8;
  static constexpr unsigned kBtbOffsetBits = 5;
  static constexpr unsigned kPhtIndexBits = 14;  // 16K entries
  static constexpr unsigned kGhrBits = 18;

  [[nodiscard]] BtbIndex btb_mode1(std::uint64_t ip, const ExecContext&) const {
    BtbIndex out;
    out.offset = static_cast<std::uint32_t>(util::bits(ip, 0, kBtbOffsetBits));
    out.set = static_cast<std::uint32_t>(util::bits(ip, kBtbOffsetBits, kBtbSetBits));
    out.tag = util::fold_xor(util::bits(ip, kBtbOffsetBits + kBtbSetBits,
                                        kUsedAddressBits - kBtbOffsetBits - kBtbSetBits),
                             kBtbTagBits);
    return out;
  }

  [[nodiscard]] std::uint32_t btb_mode2_tag(std::uint64_t bhb, const ExecContext&) const {
    return static_cast<std::uint32_t>(util::fold_xor(bhb, kBtbMode2TagBits));
  }

  [[nodiscard]] std::uint32_t pht_index_1level(std::uint64_t ip, const ExecContext&) const {
    // XOR-fold of the 30 utilized address bits — deterministic and linear,
    // so an attacker can solve for colliding addresses (BranchScope), but
    // without the naive bits-0..13 systematic aliasing.
    return static_cast<std::uint32_t>(
        util::fold_xor(util::bits(ip, 0, kUsedAddressBits), kPhtIndexBits));
  }

  [[nodiscard]] std::uint32_t pht_index_2level(std::uint64_t ip, std::uint64_t ghr,
                                               const ExecContext& ctx) const {
    // gshare-style: folded address XOR folded 18-bit global history.
    const std::uint64_t hist = util::fold_xor(util::bits(ghr, 0, kGhrBits), kPhtIndexBits);
    return pht_index_1level(ip, ctx) ^ static_cast<std::uint32_t>(hist);
  }

  [[nodiscard]] std::uint64_t encode_target(std::uint64_t target, const ExecContext&) const {
    return util::bits(target, 0, 32);
  }

  [[nodiscard]] std::uint64_t decode_target(std::uint64_t branch_ip, std::uint64_t stored,
                                            const ExecContext&) const {
    // Function 5: 16 upper bits from the branch IP + 32 stored bits.
    return (branch_ip & 0xFFFF'0000'0000ULL) | (stored & 0xFFFF'FFFFULL);
  }

  [[nodiscard]] std::uint32_t tage_index(std::uint64_t ip, std::uint64_t folded_hist,
                                         unsigned table, unsigned index_bits,
                                         const ExecContext&) const {
    // TAGE index hash (Seznec-quality mix). Unlike the BTB/PHT truncations
    // above, shipping TAGE designs use strong index hashes; modelling them
    // as weak would flatter STBPU in Figures 4/5. Not security-relevant:
    // the hash is keyless and public.
    std::uint64_t x = ip ^ (folded_hist * 0x9E3779B97F4A7C15ULL) ^
                      (std::uint64_t{table} << 59);
    x ^= x >> 29;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 32;
    return static_cast<std::uint32_t>(util::bits(x, 0, index_bits));
  }

  [[nodiscard]] std::uint32_t tage_tag(std::uint64_t ip, std::uint64_t folded_hist,
                                       unsigned table, unsigned tag_bits,
                                       const ExecContext&) const {
    std::uint64_t x = (ip * 0xC2B2AE3D27D4EB4FULL) ^ (folded_hist << 1) ^
                      (folded_hist >> 2) ^ (std::uint64_t{table} * 0x9E55ULL);
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return static_cast<std::uint32_t>(util::bits(x, 0, tag_bits));
  }

  [[nodiscard]] std::uint32_t perceptron_row(std::uint64_t ip, unsigned row_bits,
                                             const ExecContext&) const {
    std::uint64_t x = (ip >> 2) * 0x9E3779B97F4A7C15ULL;
    x ^= x >> 33;
    return static_cast<std::uint32_t>(util::bits(x, 0, row_bits));
  }
};

/// Virtual adapter over any non-virtual mapping-logic class: forwards the
/// complete MappingProvider interface to an owned Logic instance. The three
/// concrete adapters (baseline / conservative / STBPU) are one-liners over
/// this template instead of three hand-maintained forwarding blocks.
template <class Logic>
class MappingAdapterT : public MappingProvider {
 public:
  MappingAdapterT() = default;
  explicit MappingAdapterT(Logic logic) : logic_(std::move(logic)) {}

  [[nodiscard]] BtbIndex btb_mode1(std::uint64_t ip, const ExecContext& ctx) const override {
    return logic_.btb_mode1(ip, ctx);
  }
  [[nodiscard]] std::uint32_t btb_mode2_tag(std::uint64_t bhb,
                                            const ExecContext& ctx) const override {
    return logic_.btb_mode2_tag(bhb, ctx);
  }
  [[nodiscard]] std::uint32_t pht_index_1level(std::uint64_t ip,
                                               const ExecContext& ctx) const override {
    return logic_.pht_index_1level(ip, ctx);
  }
  [[nodiscard]] std::uint32_t pht_index_2level(std::uint64_t ip, std::uint64_t ghr,
                                               const ExecContext& ctx) const override {
    return logic_.pht_index_2level(ip, ghr, ctx);
  }
  [[nodiscard]] std::uint64_t encode_target(std::uint64_t target,
                                            const ExecContext& ctx) const override {
    return logic_.encode_target(target, ctx);
  }
  [[nodiscard]] std::uint64_t decode_target(std::uint64_t branch_ip, std::uint64_t stored,
                                            const ExecContext& ctx) const override {
    return logic_.decode_target(branch_ip, stored, ctx);
  }
  [[nodiscard]] std::uint32_t tage_index(std::uint64_t ip, std::uint64_t folded_hist,
                                         unsigned table, unsigned index_bits,
                                         const ExecContext& ctx) const override {
    return logic_.tage_index(ip, folded_hist, table, index_bits, ctx);
  }
  [[nodiscard]] std::uint32_t tage_tag(std::uint64_t ip, std::uint64_t folded_hist,
                                       unsigned table, unsigned tag_bits,
                                       const ExecContext& ctx) const override {
    return logic_.tage_tag(ip, folded_hist, table, tag_bits, ctx);
  }
  [[nodiscard]] std::uint32_t perceptron_row(std::uint64_t ip, unsigned row_bits,
                                             const ExecContext& ctx) const override {
    return logic_.perceptron_row(ip, row_bits, ctx);
  }

 protected:
  Logic logic_;
};

/// Virtual adapter over BaselineMappingLogic (API edge; derived classes in
/// the attack/ablation code override individual functions).
class BaselineMapping : public MappingAdapterT<BaselineMappingLogic> {
 public:
  static constexpr unsigned kUsedAddressBits = BaselineMappingLogic::kUsedAddressBits;
  static constexpr unsigned kBtbSetBits = BaselineMappingLogic::kBtbSetBits;
  static constexpr unsigned kBtbTagBits = BaselineMappingLogic::kBtbTagBits;
  static constexpr unsigned kBtbOffsetBits = BaselineMappingLogic::kBtbOffsetBits;
  static constexpr unsigned kPhtIndexBits = BaselineMappingLogic::kPhtIndexBits;
  static constexpr unsigned kGhrBits = BaselineMappingLogic::kGhrBits;
};

}  // namespace stbpu::bpu
