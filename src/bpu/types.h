// Common branch-prediction types: branch records as they appear in traces,
// the execution context that identifies a software entity (paper §IV), and
// the per-access result bookkeeping that drives both the OAE metric
// (paper §VII-B1) and the STBPU event monitors (paper §IV-B).
#pragma once

#include <cstdint>
#include <string_view>

namespace stbpu::bpu {

/// Virtual addresses are 48-bit in the paper's machine model.
inline constexpr unsigned kVirtualAddressBits = 48;
inline constexpr std::uint64_t kVirtualAddressMask =
    (std::uint64_t{1} << kVirtualAddressBits) - 1;

/// ISA branch classes per paper §II-A.
enum class BranchType : std::uint8_t {
  kConditional,   // jcc — direction predicted by PHT/TAGE/Perceptron
  kDirectJump,    // jmp imm
  kDirectCall,    // call imm — pushes RSB
  kIndirectJump,  // jmp reg/mem — BTB mode 2 (BHB-assisted)
  kIndirectCall,  // call reg/mem — pushes RSB, BTB mode 2
  kReturn,        // ret — RSB, falls back to indirect predictor on underflow
};

[[nodiscard]] constexpr std::string_view to_string(BranchType t) noexcept {
  switch (t) {
    case BranchType::kConditional: return "cond";
    case BranchType::kDirectJump: return "jmp";
    case BranchType::kDirectCall: return "call";
    case BranchType::kIndirectJump: return "ijmp";
    case BranchType::kIndirectCall: return "icall";
    case BranchType::kReturn: return "ret";
  }
  return "?";
}

[[nodiscard]] constexpr bool is_call(BranchType t) noexcept {
  return t == BranchType::kDirectCall || t == BranchType::kIndirectCall;
}
[[nodiscard]] constexpr bool is_indirect(BranchType t) noexcept {
  return t == BranchType::kIndirectJump || t == BranchType::kIndirectCall ||
         t == BranchType::kReturn;
}

/// Identifies the software entity executing a branch. STBPU assigns one
/// secret token per entity requiring isolation (paper §IV): user processes
/// are keyed by pid; the kernel is its own entity even though it shares the
/// user's virtual address space (threat model "Kernel/VMM as victim").
struct ExecContext {
  std::uint16_t pid = 0;  ///< software entity (process) id
  std::uint8_t hart = 0;  ///< hardware thread within the physical core (SMT)
  bool kernel = false;    ///< privileged mode

  friend constexpr bool operator==(const ExecContext&, const ExecContext&) = default;
};

/// One dynamic branch execution as recorded in a trace.
struct BranchRecord {
  std::uint64_t ip = 0;      ///< branch instruction virtual address (48-bit)
  std::uint64_t target = 0;  ///< resolved target (48-bit); fall-through if not taken
  BranchType type = BranchType::kConditional;
  bool taken = true;  ///< always true for unconditional branches
  ExecContext ctx;
};

/// One queued prediction request of the batch-native front-end API: a
/// branch the front end knows it will access soon, carried as the (ip,
/// speculative GHR) pair that keys the remapping functions plus the
/// context that selects the secret token. Engines precompute the keyed
/// mixes for a whole span of these at once (models::EngineT::precompute);
/// a request whose speculative GHR turns out wrong simply never matches at
/// access time — the remap cache's tag check detects and discards it, so
/// mis-speculated lookaheads cannot pollute prediction statistics.
struct PredictRequest {
  std::uint64_t ip = 0;
  std::uint64_t ghr = 0;  ///< speculative GHR at predict time (R4 key); 0 if unused
  ExecContext ctx;
  BranchType type = BranchType::kConditional;
};

/// One queued TAGE Rt-key request of the batch-native API: the (ip, folded
/// geometric history, table) triple that keys one tagged table's Rt
/// index/tag under STBPU. A TAGE engine's lookahead replicates the
/// predictor's incremental per-table folded-history state in a shadow
/// fold-forward walk (tage::TagePredictorT::ShadowHistory) and emits one of
/// these per (branch, table); the mapping batches the keyed mixes. Same
/// discard contract as PredictRequest: a request built from a wrong
/// speculative outcome carries a folded value the demand path never asks
/// for, so the remap cache's key check discards it without stat pollution.
struct TageRtRequest {
  std::uint64_t ip = 0;
  std::uint64_t folded_index = 0;  ///< packed folded key for the Rt index
  std::uint64_t folded_tag = 0;    ///< packed folded key for the Rt tag
                                   ///< (distinct: the tag pack scrambles the
                                   ///< base differently, by design)
  std::uint32_t table = 0;         ///< tagged table number (part of the Rt key)
  ExecContext ctx;
};

/// What the front end would do with this branch before resolution.
struct Prediction {
  bool taken = false;           ///< predicted direction (conditionals)
  bool target_valid = false;    ///< BTB/RSB produced a target
  std::uint64_t target = 0;     ///< predicted target if target_valid
  bool from_tagged = false;     ///< direction came from a tagged TAGE table
                                ///< (drives the separate ST_TAGE threshold MSR)
};

/// Per-access outcome; the trace simulator aggregates these into the OAE
/// metric and the event monitors consume the misprediction/eviction bits.
struct AccessResult {
  bool direction_correct = true;  ///< conditionals only; true otherwise
  bool target_correct = true;     ///< taken branches needing a target
  bool overall_correct = true;    ///< OAE: all necessary predictions correct
  bool direction_mispredicted = false;
  bool target_mispredicted = false;
  bool btb_eviction = false;  ///< this update evicted a BTB entry
  bool rsb_underflow = false;
  bool from_tagged = false;  ///< direction provider class (TAGE bookkeeping)
  /// What the front end predicted before resolution — the speculative
  /// control flow an attacker manipulates (and observes through timing).
  Prediction pred;
};

/// Sink for the hardware events STBPU's MSRs monitor (paper §IV-B): branch
/// mispredictions (direction or target) and BTB evictions. The core STBPU
/// module implements this to drive ST re-randomization; the default sink
/// ignores everything (unprotected designs).
class IEventSink {
 public:
  virtual ~IEventSink() = default;
  /// `tagged_component` distinguishes mispredictions whose direction was
  /// provided by a tagged TAGE table; ST_TAGE designs give those a separate
  /// threshold register (paper §VII-B2).
  virtual void on_misprediction(const ExecContext& ctx, bool tagged_component) = 0;
  virtual void on_btb_eviction(const ExecContext& ctx) = 0;
};

/// No-op sink used by unprotected/microcode models.
class NullEventSink final : public IEventSink {
 public:
  void on_misprediction(const ExecContext&, bool) override {}
  void on_btb_eviction(const ExecContext&) override {}
};

}  // namespace stbpu::bpu
