// Pattern history table (paper §II-A): one 16K-entry array of 2-bit
// saturating counters addressed in two modes (1-level address-only and
// 2-level gshare-style with the GHR). Both modes address the *same*
// physical array, as in the reverse-engineered baseline — which is why
// PHT collisions (BranchScope) are possible and why there are no
// "evictions", only counter perturbation.
#pragma once

#include <cstdint>
#include <vector>

#include "util/saturating_counter.h"

namespace stbpu::bpu {

class PatternHistoryTable {
 public:
  explicit PatternHistoryTable(std::uint32_t entries = 1u << 14)
      : counters_(entries) {}

  [[nodiscard]] bool predict(std::uint32_t index) const noexcept {
    return counters_[index & (counters_.size() - 1)].taken();
  }
  [[nodiscard]] std::uint8_t raw(std::uint32_t index) const noexcept {
    return counters_[index & (counters_.size() - 1)].raw();
  }
  void update(std::uint32_t index, bool taken) noexcept {
    counters_[index & (counters_.size() - 1)].update(taken);
  }
  void flush() noexcept {
    for (auto& c : counters_) c = util::SaturatingCounter<2>{};
  }
  [[nodiscard]] std::uint32_t entries() const noexcept {
    return static_cast<std::uint32_t>(counters_.size());
  }

 private:
  std::vector<util::SaturatingCounter<2>> counters_;
};

}  // namespace stbpu::bpu
