// Direction-predictor abstraction and the Skylake-like conditional
// predictor ("SKLCond" in the paper's gem5 figures): a single shared 16K
// PHT addressed in 1-level and 2-level (gshare) modes with a small choice
// mechanism deciding which mode to trust per branch.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "bpu/history.h"
#include "bpu/mapping.h"
#include "bpu/pht.h"
#include "bpu/types.h"
#include "util/saturating_counter.h"

namespace stbpu::bpu {

struct DirPrediction {
  bool taken = false;
  bool from_tagged = false;  ///< tagged TAGE component supplied the prediction
};

/// Interface all conditional-direction predictors implement (SKLCond, TAGE
/// variants, Perceptron). Implementations own their internal histories,
/// per hardware thread where the real structures are per-thread.
class IDirectionPredictor {
 public:
  virtual ~IDirectionPredictor() = default;
  [[nodiscard]] virtual DirPrediction predict(std::uint64_t ip, const ExecContext& ctx) = 0;
  virtual void update(std::uint64_t ip, const ExecContext& ctx, bool taken,
                      const DirPrediction& pred) = 0;
  /// Observe a non-conditional control transfer (for path histories).
  virtual void track(const BranchRecord& rec) { (void)rec; }
  virtual void flush() = 0;
  /// Flush only per-hart state (STIBP-style isolation needs this).
  virtual void flush_hart(std::uint8_t hart) { (void)hart; flush(); }
  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// The baseline conditional predictor of §II-A. Hybrid of:
///  * 1-level mode: PHT indexed by function 3 (address only);
///  * 2-level mode: PHT indexed by function 4 (address hashed with GHR);
///  * a per-branch choice table steering between the modes.
/// Both modes share one physical 16K counter array (paper: "two distinct
/// modes of addressing" of a single table), so cross-mode aliasing exists.
///
/// Template over the mapping type: with a concrete final mapping class the
/// four index computations per branch inline into predict()/update().
template <class Mapping = MappingProvider>
class SklCondPredictorT final : public IDirectionPredictor {
 public:
  static constexpr unsigned kChoiceBits = 12;  // 4K-entry choice table
  static constexpr unsigned kGhrBits = 18;

  explicit SklCondPredictorT(const Mapping* mapping)
      : mapping_(mapping), pht_(1u << 14), choice_(1u << kChoiceBits) {
    for (auto& g : ghr_) g = GlobalHistoryRegister{kGhrBits};
  }

  [[nodiscard]] DirPrediction predict(std::uint64_t ip, const ExecContext& ctx) override {
    const auto [i1, i2, ci] = indexes(ip, ctx);
    if constexpr (RemapAwareMapping<Mapping>) {
      // Stash the indexes for the paired update() of the same branch: ψ is
      // stable until the access ends, so the R3/R4 values cannot change
      // between the two phases (TAGE relies on the same pairing contract).
      scratch_ = {i1, i2, ci};
      scratch_ip_ = ip;
      scratch_hart_ = ctx.hart;
      scratch_valid_ = true;
    }
    const bool use_2level = choice_[ci].taken();
    const bool taken = pht_.predict(use_2level ? i2 : i1);
    return {.taken = taken, .from_tagged = false};
  }

  void update(std::uint64_t ip, const ExecContext& ctx, bool taken,
              const DirPrediction&) override {
    const auto [i1, i2, ci] = update_indexes(ip, ctx);
    const bool p1 = pht_.predict(i1);
    const bool p2 = pht_.predict(i2);
    // Train the chosen entry always; reinforce the unchosen entry only when
    // it was already correct (training the loser would let a cold 2-level
    // entry shadow a well-trained base counter and thrash the shared array).
    const bool use_2level = choice_[ci].taken();
    pht_.update(use_2level ? i2 : i1, taken);
    if (p1 != p2) {
      // Steer the choice toward whichever mode was correct.
      if (p2 == taken) {
        choice_[ci].increment();
      } else {
        choice_[ci].decrement();
      }
      // The correct-but-unchosen entry keeps learning; the wrong one is
      // left alone.
      const std::uint32_t other = use_2level ? i1 : i2;
      const bool other_pred = use_2level ? p1 : p2;
      if (other_pred == taken) pht_.update(other, taken);
    }
    ghr_[ctx.hart].push(taken);
  }

  void flush() override {
    pht_.flush();
    for (auto& c : choice_) c = util::SaturatingCounter<2>{};
    for (auto& g : ghr_) g.clear();
  }

  void flush_hart(std::uint8_t hart) override { ghr_[hart & 1].clear(); }

  [[nodiscard]] std::string_view name() const override { return "SKLCond"; }

  [[nodiscard]] const PatternHistoryTable& pht() const noexcept { return pht_; }
  [[nodiscard]] std::uint64_t ghr_value(std::uint8_t hart) const noexcept {
    return ghr_[hart & 1].value();
  }

 private:
  struct Indexes {
    std::uint32_t i1, i2, ci;
  };

  /// update()'s view of the indexes: reuse predict()'s stash when the
  /// mapping is remap-aware and this is the paired call (same branch, same
  /// hart, GHR untouched in between); recompute otherwise — identical
  /// values either way, R functions being pure between re-keys.
  [[nodiscard]] Indexes update_indexes(std::uint64_t ip, const ExecContext& ctx) {
    if constexpr (RemapAwareMapping<Mapping>) {
      if (scratch_valid_ && scratch_ip_ == ip && scratch_hart_ == ctx.hart) {
        scratch_valid_ = false;
        return scratch_;
      }
    }
    return indexes(ip, ctx);
  }
  [[nodiscard]] Indexes indexes(std::uint64_t ip, const ExecContext& ctx) const {
    std::uint32_t i1, i2;
    if constexpr (requires(const Mapping& m) { m.pht_indexes(ip, 0ULL, ctx); }) {
      // Remap-aware mappings expose a fused R3+R4 probe (identical values,
      // one lookup) — only reachable through the devirtualized engine.
      const auto pair = mapping_->pht_indexes(ip, ghr_[ctx.hart & 1].value(), ctx);
      i1 = pair.i1;
      i2 = pair.i2;
    } else {
      i1 = mapping_->pht_index_1level(ip, ctx);
      i2 = mapping_->pht_index_2level(ip, ghr_[ctx.hart & 1].value(), ctx);
    }
    // Choice is addressed through the (remapped) 1-level index so STBPU
    // randomizes it too.
    const std::uint32_t ci = i1 & ((1u << kChoiceBits) - 1);
    return {i1, i2, ci};
  }

  const Mapping* mapping_;
  PatternHistoryTable pht_;
  std::vector<util::SaturatingCounter<2>> choice_;
  GlobalHistoryRegister ghr_[2];
  Indexes scratch_{};  ///< predict→update index stash (remap-aware only)
  std::uint64_t scratch_ip_ = 0;
  std::uint8_t scratch_hart_ = 0;
  bool scratch_valid_ = false;
};

/// Legacy dynamic-dispatch instantiation.
using SklCondPredictor = SklCondPredictorT<>;

}  // namespace stbpu::bpu
