// Brute-force reuse-collision search (paper §VI-A2) and its cost
// measurement: the attacker grows a set SB of mutually non-colliding
// branches until one collides with the victim's static branch, counting the
// mispredictions (M) and evictions (E) triggered along the way — the
// quantities Equation (2) approximates and the ST monitors throttle.
#pragma once

#include <cstdint>

#include "bpu/predictor.h"

namespace stbpu::attacks {

struct ReuseSearchConfig {
  std::uint64_t victim_ip = 0x0000'2345'6780ULL;
  std::uint64_t max_set_size = 1 << 14;
  std::uint64_t seed = 0xB24E;
  /// Verify candidates against the existing set for internal collisions
  /// (the paper's SB hygiene steps). Quadratic — disable for large runs.
  bool internal_collision_checks = true;
};

struct ReuseSearchResult {
  bool found = false;                ///< a collision with V was detected
  std::uint64_t set_size = 0;        ///< |SB| when found (or at the cap)
  /// Collision-observation mispredictions: re-execution probes that missed
  /// (what Eq. (2)'s M estimates — first-touch cold misses excluded).
  std::uint64_t mispredictions = 0;
  std::uint64_t total_mispredictions = 0;  ///< including cold misses
  std::uint64_t evictions = 0;             ///< attacker evictions (E)
  std::uint64_t branches = 0;
  std::uint64_t rerandomizations = 0;  ///< filled by caller for ST targets
};

/// Run the search against the shared predictor. The victim periodically
/// re-executes its branch; the attacker detects collisions by observing
/// its own mispredictions after victim activity.
ReuseSearchResult reuse_collision_search(bpu::IPredictor& bpu,
                                         const ReuseSearchConfig& cfg);

}  // namespace stbpu::attacks
