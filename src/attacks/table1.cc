#include "attacks/table1.h"

namespace stbpu::attacks {

namespace {

// Fixed addresses (48-bit space). Cross-process attacks use identical
// virtual addresses in both spaces — the classic collision vector, since
// the legacy BPU keys on (truncated) virtual addresses only.
constexpr std::uint64_t kVictimBranch = 0x0000'2345'6780ULL;
constexpr std::uint64_t kVictimTarget = 0x0000'2345'9000ULL;
constexpr std::uint64_t kAttackerTarget = 0x0000'6666'0000ULL;
constexpr std::uint64_t kFunction = 0x0000'2400'0000ULL;

/// Score a 1-bit leak: fraction of trials where the recovered bit equals
/// the secret bit.
AttackResult score(std::string name, Harness& h, unsigned trials, unsigned correct,
                   double baseline, std::string detail = {}) {
  AttackResult r;
  r.name = std::move(name);
  r.success_rate = trials ? static_cast<double>(correct) / trials : 0.0;
  r.baseline_rate = baseline;
  // An attack "works" when it clears the blind-guess rate decisively.
  r.success = r.success_rate > baseline + 0.4 * (1.0 - baseline);
  r.detail = std::move(detail);
  h.fill(r);
  return r;
}

}  // namespace

AttackResult btb_reuse_home(bpu::IPredictor& bpu, unsigned trials, std::uint64_t seed) {
  Harness h(&bpu);
  util::Xoshiro256 rng(seed);
  unsigned correct = 0;
  for (unsigned t = 0; t < trials; ++t) {
    const bool secret = rng.chance(0.5);
    if (secret) {
      // V: jmp s → d; BTB ← (s, d)
      h.jmp(Harness::kVictim, kVictimBranch, kVictimTarget);
    }
    // A: jmp s → d'; if (s, d) is reused A observes a misprediction whose
    // predicted target is V's d.
    const auto res = h.jmp(Harness::kAttacker, kVictimBranch, kAttackerTarget);
    const bool recovered = res.pred.target_valid && res.pred.target == kVictimTarget;
    if (recovered == secret) ++correct;
  }
  return score("BTB reuse (home): V's jump leaked", h, trials, correct, 0.5);
}

AttackResult pht_reuse_home(bpu::IPredictor& bpu, unsigned trials, std::uint64_t seed) {
  Harness h(&bpu);
  util::Xoshiro256 rng(seed);
  unsigned correct = 0;
  // BranchScope's mode-priming: the hybrid predictor must be steered into
  // its 1-level (base) mode before the counter can be read. A branch that
  // shares the victim's *choice* entry but not its PHT counter (the legacy
  // fold is linear, so flipping address bit 12 flips PHT index bit 12 while
  // the 12-bit choice index is untouched) is executed with a consistent
  // outcome under varying history — 1-level right, 2-level cold-wrong —
  // dragging the shared choice toward the base predictor.
  const std::uint64_t mode_primer = kVictimBranch ^ (1ULL << 12);
  for (unsigned t = 0; t < trials; ++t) {
    const bool secret = rng.chance(0.5);
    for (int i = 0; i < 6; ++i) {
      h.jcc(Harness::kAttacker, mode_primer, true, kAttackerTarget);
    }
    // V: secret-dependent conditional, executed thrice to saturate the
    // 2-bit counter (BranchScope's prime phase).
    for (int i = 0; i < 3; ++i) {
      h.jcc(Harness::kVictim, kVictimBranch, secret, kVictimTarget);
    }
    // A: probe the colliding counter; the *prediction* is the leak.
    const auto res = h.jcc(Harness::kAttacker, kVictimBranch, true, kAttackerTarget);
    if (res.pred.taken == secret) ++correct;
    // A restores a neutral state for the next trial (counter hygiene).
    h.jcc(Harness::kAttacker, kVictimBranch, false, kAttackerTarget);
  }
  return score("PHT reuse (home): BranchScope direction leak", h, trials, correct, 0.5);
}

AttackResult rsb_reuse_home(bpu::IPredictor& bpu, unsigned trials, std::uint64_t seed) {
  Harness h(&bpu);
  util::Xoshiro256 rng(seed);
  const std::uint64_t site0 = 0x0000'2345'1000ULL;
  const std::uint64_t site1 = 0x0000'2345'2000ULL;
  unsigned correct = 0;
  for (unsigned t = 0; t < trials; ++t) {
    const bool secret = rng.chance(0.5);
    // V: call from a secret-dependent site; RSB ← (site + 4).
    h.call(Harness::kVictim, secret ? site1 : site0, kFunction);
    // A: ret; the predicted target reveals V's call site.
    const auto res = h.ret(Harness::kAttacker, kFunction + 128, site0 + 4);
    const bool recovered =
        res.pred.target_valid && res.pred.target == site1 + bpu::kBranchInstrLen;
    if (recovered == secret) ++correct;
  }
  return score("RSB reuse (home): V's call site leaked", h, trials, correct, 0.5);
}

AttackResult pht_reuse_away(bpu::IPredictor& bpu, unsigned trials, std::uint64_t seed) {
  Harness h(&bpu);
  util::Xoshiro256 rng(seed);
  unsigned steered = 0;
  for (unsigned t = 0; t < trials; ++t) {
    // A: train not-taken into the shared counter (V's branch is taken).
    for (int i = 0; i < 3; ++i) {
      h.jcc(Harness::kAttacker, kVictimBranch, false, kAttackerTarget);
    }
    // V: executes its (actually taken) branch; if the attacker's training
    // is reused, V mispredicts and speculatively executes the fall-through.
    const auto res = h.jcc(Harness::kVictim, kVictimBranch, true, kVictimTarget);
    if (!res.pred.taken) ++steered;
  }
  return score("PHT reuse (away): V steered to wrong path", h, trials, steered, 0.0);
}

AttackResult btb_injection_away(bpu::IPredictor& bpu, unsigned trials,
                                std::uint64_t seed, std::uint64_t gadget) {
  Harness h(&bpu);
  util::Xoshiro256 rng(seed);
  unsigned injected = 0;
  for (unsigned t = 0; t < trials; ++t) {
    // A: reach the shared indirect branch with the victim's history, then
    // train the gadget target (Spectre v2 priming).
    h.align_history(Harness::kAttacker);
    h.ijmp(Harness::kAttacker, kVictimBranch, gadget);
    // V: same history, same branch — does it speculate at the gadget?
    h.align_history(Harness::kVictim);
    const auto res = h.ijmp(Harness::kVictim, kVictimBranch, kVictimTarget);
    if (res.pred.target_valid && res.pred.target == gadget) ++injected;
  }
  return score("BTB injection (away): Spectre v2", h, trials, injected, 0.0);
}

AttackResult rsb_injection_away(bpu::IPredictor& bpu, unsigned trials,
                                std::uint64_t seed, std::uint64_t gadget) {
  Harness h(&bpu);
  util::Xoshiro256 rng(seed);
  unsigned injected = 0;
  for (unsigned t = 0; t < trials; ++t) {
    // A: call whose return address is the gadget (call at gadget - 4).
    h.call(Harness::kAttacker, gadget - bpu::kBranchInstrLen, kFunction);
    // V: ret — speculates with the attacker's RSB entry (SpectreRSB).
    const auto res = h.ret(Harness::kVictim, kFunction + 128, kVictimTarget);
    if (res.pred.target_valid && res.pred.target == gadget) ++injected;
  }
  return score("RSB injection (away): SpectreRSB", h, trials, injected, 0.0);
}

AttackResult same_address_space_trojan(bpu::IPredictor& bpu, unsigned trials,
                                       std::uint64_t seed, std::uint64_t gadget) {
  Harness h(&bpu);
  util::Xoshiro256 rng(seed);
  unsigned injected = 0;
  // Trojan branch aliases the victim branch modulo 2^30 — the legacy BPU
  // discards the upper address bits, so both map to one BTB entry [78].
  const std::uint64_t trojan = kVictimBranch + (1ULL << 30);
  for (unsigned t = 0; t < trials; ++t) {
    // Trojan gadget runs inside the victim's own process (same ST!).
    h.jmp(Harness::kVictim, trojan, gadget);
    const auto res = h.jcc(Harness::kVictim, kVictimBranch, true, kVictimTarget);
    if (res.pred.target_valid && res.pred.target == gadget) ++injected;
  }
  return score("same-address-space trojan (2^30 alias)", h, trials, injected, 0.0,
               "defeated only by full 48-bit remapping, not by flushing");
}

namespace {

/// Baseline-mapping collision family for kVictimBranch's BTB set: same set
/// and offset bits, distinct tags (bit flips above bit 13).
std::uint64_t set_alias(unsigned i) { return kVictimBranch ^ (std::uint64_t{i + 1} << 14); }

}  // namespace

AttackResult btb_eviction_home(bpu::IPredictor& bpu, unsigned trials, std::uint64_t seed) {
  Harness h(&bpu);
  util::Xoshiro256 rng(seed);
  constexpr unsigned kWays = 8;
  unsigned correct = 0;
  for (unsigned t = 0; t < trials; ++t) {
    const bool secret = rng.chance(0.5);
    // A: prime the victim's set with `ways` same-set branches.
    for (unsigned i = 0; i < kWays; ++i) {
      h.jmp(Harness::kAttacker, set_alias(i), kAttackerTarget + i * 64);
    }
    if (secret) {
      // V: executes a branch landing in the primed set, evicting A's LRU.
      h.jmp(Harness::kVictim, kVictimBranch, kVictimTarget);
    }
    // A: probe — any miss among the primed branches betrays V.
    bool evicted = false;
    for (unsigned i = 0; i < kWays; ++i) {
      const auto res = h.jmp(Harness::kAttacker, set_alias(i), kAttackerTarget + i * 64);
      if (!res.target_correct) evicted = true;
    }
    if (evicted == secret) ++correct;
  }
  return score("BTB eviction (home): prime+probe on V's set", h, trials, correct, 0.5);
}

AttackResult btb_eviction_away(bpu::IPredictor& bpu, unsigned trials, std::uint64_t seed) {
  Harness h(&bpu);
  util::Xoshiro256 rng(seed);
  constexpr unsigned kWays = 8;
  unsigned degraded = 0;
  for (unsigned t = 0; t < trials; ++t) {
    // V: trains its branch.
    h.jmp(Harness::kVictim, kVictimBranch, kVictimTarget);
    // A: floods the victim's set.
    for (unsigned i = 0; i < kWays; ++i) {
      h.jmp(Harness::kAttacker, set_alias(i), kAttackerTarget + i * 64);
    }
    // V: re-executes; a BTB miss forces the static (no-target) prediction.
    const auto res = h.jmp(Harness::kVictim, kVictimBranch, kVictimTarget);
    if (!res.target_correct) ++degraded;
  }
  return score("BTB eviction (away): V forced to static prediction", h, trials,
               degraded, 0.0);
}

AttackResult rsb_eviction_home(bpu::IPredictor& bpu, unsigned trials, std::uint64_t seed) {
  Harness h(&bpu);
  util::Xoshiro256 rng(seed);
  unsigned correct = 0;
  const std::uint64_t a_site = 0x0000'7777'0000ULL;
  for (unsigned t = 0; t < trials; ++t) {
    const bool secret = rng.chance(0.5);
    // A: fill the RSB with its own calls.
    for (unsigned i = 0; i < 16; ++i) {
      h.call(Harness::kAttacker, a_site + i * 64, kFunction);
    }
    if (secret) {
      // V: two calls overwrite A's oldest entries (ring wrap).
      h.call(Harness::kVictim, kVictimBranch, kFunction);
      h.call(Harness::kVictim, kVictimBranch + 64, kFunction);
    }
    // A: unwind; mispredicted returns reveal V's call activity. This is an
    // occupancy channel: it works regardless of target encryption, but
    // leaks only call counts, never addresses.
    bool noticed = false;
    for (int i = 15; i >= 0; --i) {
      const auto res =
          h.ret(Harness::kAttacker, kFunction + 128, a_site + i * 64 + 4);
      if (!res.target_correct) noticed = true;
    }
    if (noticed == secret) ++correct;
  }
  return score("RSB eviction (home): call-count occupancy channel", h, trials, correct,
               0.5, "content-independent; STBPU bounds it to call counts");
}

AttackResult rsb_eviction_away(bpu::IPredictor& bpu, unsigned trials, std::uint64_t seed) {
  Harness h(&bpu);
  util::Xoshiro256 rng(seed);
  unsigned degraded_returns = 0;
  unsigned total_returns = 0;
  const std::uint64_t v_site = 0x0000'2345'0000ULL;
  const std::uint64_t a_site = 0x0000'7777'0000ULL;
  for (unsigned t = 0; t < trials; ++t) {
    // V: builds a deep call chain.
    for (unsigned i = 0; i < 8; ++i) {
      h.call(Harness::kVictim, v_site + i * 64, kFunction);
    }
    // A: loops calls, overflowing the shared RSB (Table I: "overflows RSB
    // by looping call s' → d'").
    for (unsigned i = 0; i < 16; ++i) {
      h.call(Harness::kAttacker, a_site + i * 64, kFunction);
    }
    // V: unwinds; its returns lost their RSB entries.
    for (int i = 7; i >= 0; --i) {
      const auto res = h.ret(Harness::kVictim, kFunction + 128, v_site + i * 64 + 4);
      ++total_returns;
      if (!res.target_correct) ++degraded_returns;
    }
  }
  AttackResult r;
  Harness& href = h;
  r = score("RSB eviction (away): V's returns degraded", href, total_returns,
            degraded_returns, 0.0,
            "denial of prediction; shared-occupancy effect");
  return r;
}

}  // namespace stbpu::attacks
