// Scaled-geometry mappings + predictors for empirical validation of the
// §VI attack-complexity equations. Attack cost grows with I·T·O (structure
// geometry), so the experiments shrink the BTB, measure misprediction /
// eviction counts, and compare them to Equations (2)-(4) evaluated at the
// same geometry — then the analysis module extrapolates to the full-size
// Skylake numbers of §VI-A5.
#pragma once

#include <memory>

#include "bpu/direction.h"
#include "bpu/mapping.h"
#include "bpu/predictor.h"
#include "core/monitor.h"
#include "core/remap.h"
#include "core/secret_token.h"
#include "core/stbpu_mapping.h"

namespace stbpu::attacks {

struct ScaledGeometry {
  unsigned set_bits = 4;     ///< I = 2^set_bits
  unsigned tag_bits = 3;     ///< T = 2^tag_bits
  unsigned offset_bits = 1;  ///< O = 2^offset_bits
  unsigned ways = 4;         ///< W

  [[nodiscard]] std::uint64_t sets() const { return 1ULL << set_bits; }
  [[nodiscard]] std::uint64_t tag_space() const { return 1ULL << tag_bits; }
  [[nodiscard]] std::uint64_t offset_space() const { return 1ULL << offset_bits; }
  /// I·T·O — the collision space of one structure.
  [[nodiscard]] std::uint64_t ito() const {
    return sets() * tag_space() * offset_space();
  }
};

/// Legacy mapping at reduced geometry (deterministic truncation/folding).
class ScaledBaselineMapping final : public bpu::BaselineMapping {
 public:
  explicit ScaledBaselineMapping(const ScaledGeometry& g) : g_(g) {}

  [[nodiscard]] bpu::BtbIndex btb_mode1(std::uint64_t ip,
                                        const bpu::ExecContext&) const override {
    bpu::BtbIndex out;
    out.offset = static_cast<std::uint32_t>(util::bits(ip, 0, g_.offset_bits));
    out.set = static_cast<std::uint32_t>(util::bits(ip, g_.offset_bits, g_.set_bits));
    out.tag = util::fold_xor(
        util::bits(ip, g_.offset_bits + g_.set_bits,
                   kUsedAddressBits - g_.offset_bits - g_.set_bits),
        g_.tag_bits);
    return out;
  }

 private:
  ScaledGeometry g_;
};

/// STBPU mapping at reduced geometry (keyed R1 with narrow outputs).
class ScaledStbpuMapping final : public bpu::BaselineMapping {
 public:
  ScaledStbpuMapping(core::STManager* stm, const ScaledGeometry& g)
      : stm_(stm), g_(g) {}

  [[nodiscard]] bpu::BtbIndex btb_mode1(std::uint64_t ip,
                                        const bpu::ExecContext& ctx) const override {
    return core::Remapper::r1_scaled(stm_->token(ctx).psi, ip, g_.set_bits,
                                     g_.tag_bits, g_.offset_bits);
  }
  [[nodiscard]] std::uint64_t encode_target(std::uint64_t target,
                                            const bpu::ExecContext& ctx) const override {
    return util::bits(target, 0, 32) ^ stm_->token(ctx).phi;
  }
  [[nodiscard]] std::uint64_t decode_target(std::uint64_t branch_ip, std::uint64_t stored,
                                            const bpu::ExecContext& ctx) const override {
    const std::uint64_t lo = (stored ^ stm_->token(ctx).phi) & 0xFFFF'FFFFULL;
    return (branch_ip & 0xFFFF'0000'0000ULL) | lo;
  }

 private:
  core::STManager* stm_;
  ScaledGeometry g_;
};

/// A fully wired scaled experiment target: CorePredictor over a scaled BTB
/// with either the legacy or the ST mapping (and optionally a live monitor).
struct ScaledTarget {
  std::unique_ptr<core::STManager> stm;
  std::unique_ptr<core::EventMonitor> monitor;
  std::unique_ptr<bpu::MappingProvider> mapping;
  std::unique_ptr<bpu::CorePredictor> predictor;
};

inline ScaledTarget make_scaled_target(const ScaledGeometry& g, bool stbpu,
                                       std::uint64_t seed,
                                       const core::MonitorConfig* monitor_cfg = nullptr) {
  ScaledTarget t;
  bpu::CorePredictorConfig cfg;
  cfg.btb.sets = static_cast<std::uint32_t>(g.sets());
  cfg.btb.ways = g.ways;
  if (stbpu) {
    t.stm = std::make_unique<core::STManager>(seed);
    if (monitor_cfg != nullptr) {
      t.monitor = std::make_unique<core::EventMonitor>(t.stm.get(), *monitor_cfg);
    }
    t.mapping = std::make_unique<ScaledStbpuMapping>(t.stm.get(), g);
  } else {
    t.mapping = std::make_unique<ScaledBaselineMapping>(g);
  }
  t.predictor = std::make_unique<bpu::CorePredictor>(
      cfg, t.mapping.get(), std::make_unique<bpu::SklCondPredictor>(t.mapping.get()),
      t.monitor.get());
  return t;
}

}  // namespace stbpu::attacks
