#include "attacks/brute.h"

#include <vector>

#include "attacks/harness.h"
#include "util/rng.h"

namespace stbpu::attacks {

namespace {
constexpr std::uint64_t kVictimTarget = 0x0000'2345'9000ULL;

/// Collision test between two attacker branches a and b: train a, execute
/// b, re-execute a — a misprediction on the re-execution means b displaced
/// or rewrote a's entry (same index/tag/offset ⇒ reuse collision). Only the
/// final probe is an *observation* misprediction (Eq. (2)'s M); the
/// training executions' cold misses are bookkept separately.
bool collide(Harness& h, std::uint64_t a, std::uint64_t b,
             std::uint64_t& observed_misp) {
  h.jmp(Harness::kAttacker, a, a + 256);
  h.jmp(Harness::kAttacker, b, b + 256);
  const auto res = h.jmp(Harness::kAttacker, a, a + 256);
  if (!res.target_correct) ++observed_misp;
  return !res.target_correct;
}

}  // namespace

ReuseSearchResult reuse_collision_search(bpu::IPredictor& bpu,
                                         const ReuseSearchConfig& cfg) {
  Harness h(&bpu);
  util::Xoshiro256 rng(cfg.seed);
  ReuseSearchResult out;
  std::vector<std::uint64_t> sb;

  std::uint64_t observed = 0;
  const auto account = [&] {
    out.mispredictions = observed;
    out.total_mispredictions = h.attacker_mispredictions();
    out.evictions = h.attacker_evictions();
    out.branches = h.attacker_branches();
  };

  while (sb.size() < cfg.max_set_size) {
    // i) choose a new branch in the attacker's address space
    const std::uint64_t b_new = 0x0000'4000'0000ULL + (rng.below(1ULL << 30) << 4);

    // ii) SB hygiene: discard b_new if it collides with any existing member
    if (cfg.internal_collision_checks) {
      bool internal = false;
      for (const std::uint64_t b : sb) {
        if (collide(h, b, b_new, observed)) {
          internal = true;
          break;
        }
      }
      if (internal) continue;
    }
    sb.push_back(b_new);

    // iii) probe against the victim: train b_new, let V run, re-execute.
    h.jmp(Harness::kAttacker, b_new, b_new + 256);
    h.jmp(Harness::kVictim, cfg.victim_ip, kVictimTarget);
    const auto res = h.jmp(Harness::kAttacker, b_new, b_new + 256);
    if (!res.target_correct) {
      ++observed;
      out.found = true;
      out.set_size = sb.size();
      account();
      return out;
    }
  }
  out.set_size = sb.size();
  account();
  return out;
}

}  // namespace stbpu::attacks
