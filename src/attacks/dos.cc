#include "attacks/dos.h"

#include <functional>
#include <utility>

#include "attacks/harness.h"
#include "util/rng.h"

namespace stbpu::attacks {

namespace {

constexpr std::uint64_t kVictimCode = 0x0000'2345'0000ULL;

/// One round of the victim's hot loop; returns (correct, total).
std::pair<std::uint64_t, std::uint64_t> victim_round(Harness& h, unsigned hot) {
  std::uint64_t correct = 0;
  for (unsigned i = 0; i < hot; ++i) {
    const std::uint64_t ip = kVictimCode + i * 16;
    const auto res = h.jmp(Harness::kVictim, ip, ip + 1024);
    if (res.overall_correct) ++correct;
  }
  return {correct, hot};
}

double run_victim(bpu::IPredictor& bpu, const DosConfig& cfg,
                  const std::function<void(Harness&, std::uint64_t)>& attacker) {
  Harness h(&bpu);
  std::uint64_t correct = 0, total = 0;
  // Warm the victim up once so steady-state accuracy is measured.
  victim_round(h, cfg.victim_hot_branches);
  for (std::uint64_t r = 0; r < cfg.rounds; ++r) {
    if (attacker) attacker(h, r);
    const auto [c, n] = victim_round(h, cfg.victim_hot_branches);
    correct += c;
    total += n;
  }
  return total ? static_cast<double>(correct) / static_cast<double>(total) : 0.0;
}

}  // namespace

DosResult dos_eviction(bpu::IPredictor& clean_bpu, bpu::IPredictor& attacked_bpu,
                       const DosConfig& cfg, bool targeted) {
  DosResult out;
  out.victim_oae_clean = run_victim(clean_bpu, cfg, nullptr);

  util::Xoshiro256 rng(cfg.seed);
  std::uint64_t attacker_branches = 0;
  out.victim_oae_attacked = run_victim(
      attacked_bpu, cfg, [&](Harness& h, std::uint64_t round) {
        for (unsigned i = 0; i < cfg.attacker_burst; ++i) {
          std::uint64_t ip;
          if (targeted) {
            // Fill a victim line's whole set: `ways` aliases back-to-back
            // (same set/offset bits under the legacy mapping, distinct
            // tags) so LRU pushes the victim's entry out.
            const unsigned line =
                static_cast<unsigned>((round + i / 8) % cfg.victim_hot_branches);
            ip = (kVictimCode + line * 16) ^ (std::uint64_t{1 + i % 8} << 14);
          } else {
            // Blind flood: uniformly random branches.
            ip = 0x0000'4000'0000ULL + (rng.below(1ULL << 30) << 4);
          }
          h.jmp(Harness::kAttacker, ip, ip + 64);
          ++attacker_branches;
        }
      });
  out.attacker_branches = attacker_branches;
  return out;
}

DosResult dos_reuse(bpu::IPredictor& clean_bpu, bpu::IPredictor& attacked_bpu,
                    const DosConfig& cfg) {
  DosResult out;
  out.victim_oae_clean = run_victim(clean_bpu, cfg, nullptr);

  std::uint64_t attacker_branches = 0;
  out.victim_oae_attacked = run_victim(
      attacked_bpu, cfg, [&](Harness& h, std::uint64_t) {
        // Fill the victim's exact (virtual-address) entries with bogus
        // targets; on the legacy BPU these are reuse collisions.
        for (unsigned i = 0; i < cfg.victim_hot_branches; ++i) {
          const std::uint64_t ip = kVictimCode + i * 16;
          h.jmp(Harness::kAttacker, ip, 0x0000'6660'0000ULL + i * 16);
          ++attacker_branches;
        }
      });
  out.attacker_branches = attacker_branches;
  return out;
}

}  // namespace stbpu::attacks
