// The complete collision-based attack surface of Table I, implemented as
// executable attack procedures. Each returns a per-trial success rate: on
// the unprotected baseline the attack's rate should be near 1.0, while a
// protected design pushes it to the blind-guess baseline (0.5 for 1-bit
// leaks, ~0 for target injection). The bench bench_table1_attack_surface
// reproduces the table by running every cell against every model.
//
// Attack naming: <structure>_<reuse|eviction|injection>_<home|away>:
//   * home  — the adversarial effect is observed in the attacker's own
//             execution (side channel: A times its own branches);
//   * away  — the effect lands in the victim's execution (V is steered
//             into mispredicting / speculating at an attacker-chosen
//             address).
#pragma once

#include "attacks/harness.h"
#include "util/rng.h"

namespace stbpu::attacks {

/// RB-HE / BTB: A observes V's jump s→d by reusing V's BTB entry.
AttackResult btb_reuse_home(bpu::IPredictor& bpu, unsigned trials, std::uint64_t seed);

/// RB-HE / PHT: BranchScope — A reads the direction V trained into a
/// shared PHT counter.
AttackResult pht_reuse_home(bpu::IPredictor& bpu, unsigned trials, std::uint64_t seed);

/// RB-HE / RSB: A pops V's return address and learns V's call site.
AttackResult rsb_reuse_home(bpu::IPredictor& bpu, unsigned trials, std::uint64_t seed);

/// RB-AE / PHT: A trains a direction into V's conditional branch; V
/// speculatively executes the attacker-chosen path.
AttackResult pht_reuse_away(bpu::IPredictor& bpu, unsigned trials, std::uint64_t seed);

/// RB-AE / BTB: Spectre v2 — A injects a gadget target into V's indirect
/// branch.
AttackResult btb_injection_away(bpu::IPredictor& bpu, unsigned trials,
                                std::uint64_t seed, std::uint64_t gadget);

/// RB-AE / RSB: SpectreRSB — A plants a return target V speculates with.
AttackResult rsb_injection_away(bpu::IPredictor& bpu, unsigned trials,
                                std::uint64_t seed, std::uint64_t gadget);

/// Same-address-space transient trojan [78]: a branch aliased modulo 2^30
/// injects a target into a victim branch of the same process.
AttackResult same_address_space_trojan(bpu::IPredictor& bpu, unsigned trials,
                                       std::uint64_t seed, std::uint64_t gadget);

/// EB-HE / BTB: A primes V's BTB set and detects V's execution via the
/// eviction of one of A's entries.
AttackResult btb_eviction_home(bpu::IPredictor& bpu, unsigned trials, std::uint64_t seed);

/// EB-AE / BTB: A evicts V's entry; V falls back to static prediction.
AttackResult btb_eviction_away(bpu::IPredictor& bpu, unsigned trials, std::uint64_t seed);

/// EB-HE / RSB: A fills the RSB and counts V's calls via overwritten
/// entries (occupancy channel — content-independent).
AttackResult rsb_eviction_home(bpu::IPredictor& bpu, unsigned trials, std::uint64_t seed);

/// EB-AE / RSB: A overflows the RSB by looping calls; V's deep returns
/// lose their predictions.
AttackResult rsb_eviction_away(bpu::IPredictor& bpu, unsigned trials, std::uint64_t seed);

}  // namespace stbpu::attacks
