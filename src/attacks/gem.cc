#include "attacks/gem.h"

#include <algorithm>

#include "attacks/harness.h"
#include "util/rng.h"

namespace stbpu::attacks {

namespace {

constexpr std::uint64_t kProbeTarget = 0x0000'5555'0000ULL;

/// Eviction oracle: train the probe branch, walk the candidate lines, and
/// re-execute the probe — a misprediction means the candidates evicted it.
bool evicts(Harness& h, std::uint64_t target_ip,
            const std::vector<std::uint64_t>& lines, GemResult& stats) {
  ++stats.probes;
  h.jmp(Harness::kAttacker, target_ip, kProbeTarget);
  for (const std::uint64_t s : lines) {
    const auto res = h.jmp(Harness::kAttacker, s, s + 128);
    if (res.btb_eviction) ++stats.evictions;
  }
  const auto res = h.jmp(Harness::kAttacker, target_ip, kProbeTarget);
  if (res.btb_eviction) ++stats.evictions;
  return !res.target_correct;
}

}  // namespace

GemResult gem_eviction_set(bpu::IPredictor& bpu, std::uint64_t target_ip,
                           const GemConfig& cfg) {
  Harness h(&bpu);
  util::Xoshiro256 rng(cfg.seed);
  GemResult out;

  // Candidate pool L: random branch addresses across the attacker's space.
  const unsigned l0 = cfg.initial_lines != 0
                          ? cfg.initial_lines
                          : 2u * cfg.ways * cfg.sets_hint;
  std::vector<std::uint64_t> lines;
  lines.reserve(l0);
  for (unsigned i = 0; i < l0; ++i) {
    lines.push_back(0x0000'4000'0000ULL + (rng.below(1ULL << 30) << 4));
  }

  if (!evicts(h, target_ip, lines, out)) {
    out.branches = h.attacker_branches();
    return out;  // pool too small — cannot even evict once
  }

  // Group elimination: drop one of (ways+1) groups per round whenever the
  // remainder still evicts the target. Group assignment is re-randomized
  // every round — with a fixed partition a single unlucky layout (every
  // group holding one essential line) would wedge the reduction.
  unsigned stuck = 0;
  while (lines.size() > cfg.ways && out.rounds < cfg.max_rounds) {
    ++out.rounds;
    for (std::size_t i = lines.size(); i > 1; --i) {
      std::swap(lines[i - 1], lines[rng.below(i)]);
    }
    const std::size_t groups = std::min<std::size_t>(cfg.ways + 1, lines.size());
    const std::size_t chunk = (lines.size() + groups - 1) / groups;
    bool reduced = false;
    for (std::size_t g = 0; g < groups; ++g) {
      std::vector<std::uint64_t> rest;
      rest.reserve(lines.size());
      for (std::size_t i = 0; i < lines.size(); ++i) {
        if (i / chunk != g) rest.push_back(lines[i]);
      }
      if (rest.size() < lines.size() && evicts(h, target_ip, rest, out)) {
        lines = std::move(rest);
        reduced = true;
        break;
      }
    }
    if (!reduced && ++stuck >= 8) break;  // truly minimal (or mapping moved)
    if (reduced) stuck = 0;
  }

  out.eviction_set = lines;
  out.success = lines.size() <= cfg.ways && evicts(h, target_ip, lines, out);
  out.branches = h.attacker_branches();
  return out;
}

}  // namespace stbpu::attacks
