// Denial-of-service attacks on the BPU (paper §VI-A6): the attacker does
// not try to leak data, only to degrade the victim's prediction accuracy —
// either by evicting the victim's performance-critical BTB entries or by
// filling the BTB with bogus targets the victim then speculates on.
#pragma once

#include <cstdint>

#include "bpu/predictor.h"

namespace stbpu::attacks {

struct DosConfig {
  unsigned victim_hot_branches = 64;   ///< the victim's hot loop footprint
  std::uint64_t rounds = 2000;         ///< interleaved execution rounds
  unsigned attacker_burst = 64;        ///< attacker branches per round
  std::uint64_t seed = 0xD05;
};

struct DosResult {
  double victim_oae_clean = 0.0;     ///< accuracy without the attacker
  double victim_oae_attacked = 0.0;  ///< accuracy under attack
  std::uint64_t attacker_branches = 0;
  [[nodiscard]] double degradation() const {
    return victim_oae_clean - victim_oae_attacked;
  }
};

/// Eviction-based DoS: attacker spams branches hoping to displace the
/// victim's hot BTB entries. `targeted` uses the known legacy mapping to
/// aim at the victim's sets (only meaningful against the baseline).
DosResult dos_eviction(bpu::IPredictor& clean_bpu, bpu::IPredictor& attacked_bpu,
                       const DosConfig& cfg, bool targeted);

/// Reuse-based DoS: attacker pre-fills colliding entries with bogus targets
/// so the victim keeps speculating to wrong addresses.
DosResult dos_reuse(bpu::IPredictor& clean_bpu, bpu::IPredictor& attacked_bpu,
                    const DosConfig& cfg);

}  // namespace stbpu::attacks
