// GEM — the group-elimination method of Qureshi [59], adapted from
// randomized caches to the BTB (paper §VI-A4). The attacker reduces a large
// candidate set of branches to a minimal eviction set for a chosen target
// branch purely from eviction observations, without knowing the mapping.
// Against STBPU the construction triggers enough evictions that the ST
// monitor re-randomizes the mapping out from under the attacker.
#pragma once

#include <cstdint>
#include <vector>

#include "bpu/predictor.h"

namespace stbpu::attacks {

struct GemConfig {
  unsigned ways = 8;
  /// Initial candidate-line count L; 0 = auto (≈ 2·ways·sets worth).
  unsigned initial_lines = 0;
  unsigned sets_hint = 512;  ///< used only for the auto sizing of L
  unsigned max_rounds = 4096;
  std::uint64_t seed = 0x6E4D;
};

struct GemResult {
  bool success = false;          ///< reduced to ≤ ways lines that still evict
  std::vector<std::uint64_t> eviction_set;
  std::uint64_t branches = 0;    ///< attacker branch executions
  std::uint64_t evictions = 0;   ///< attacker-triggered BTB evictions
  std::uint64_t probes = 0;      ///< evicts() oracle calls
  unsigned rounds = 0;
};

/// Build a minimal eviction set for the attacker's own probe branch
/// `target_ip` on the shared BTB behind `bpu`.
GemResult gem_eviction_set(bpu::IPredictor& bpu, std::uint64_t target_ip,
                           const GemConfig& cfg);

}  // namespace stbpu::attacks
