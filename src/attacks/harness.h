// Attack harness — the actor model for the Table I attack surface.
//
// Attacker (A) and victim (V) are software entities sharing one BPU, either
// cross-process (time-sliced or SMT-sibling) or user/kernel within one
// address space (paper §III threat model). The harness provides the branch
// primitives attacks are composed of, counts the misprediction/eviction
// events the attacker inevitably triggers (the quantities §VI's equations
// bound and the ST monitors watch), and exposes the observation channel:
// whether the attacker's own branch was mispredicted — the
// microarchitectural proxy for the timing measurement a real attacker does
// with rdtscp.
#pragma once

#include <cstdint>
#include <string>

#include "bpu/predictor.h"
#include "bpu/types.h"

namespace stbpu::attacks {

struct AttackResult {
  std::string name;
  bool success = false;       ///< attack achieved its goal at realistic cost
  double success_rate = 0.0;  ///< per-trial goal-achievement frequency
  double baseline_rate = 0.5; ///< blind-guess rate for this attack's goal
  std::uint64_t branches = 0; ///< attacker branches executed
  std::uint64_t attacker_mispredictions = 0;
  std::uint64_t attacker_evictions = 0;
  std::uint64_t rerandomizations = 0;  ///< STBPU ST rotations during attack
  std::string detail;
};

class Harness {
 public:
  explicit Harness(bpu::IPredictor* bpu) : bpu_(bpu) {}

  [[nodiscard]] bpu::IPredictor& bpu() noexcept { return *bpu_; }

  static constexpr bpu::ExecContext kAttacker{.pid = 100, .hart = 0, .kernel = false};
  static constexpr bpu::ExecContext kVictim{.pid = 200, .hart = 0, .kernel = false};
  /// Same-address-space victim (kernel mode of the attacker's process).
  static constexpr bpu::ExecContext kKernelVictim{.pid = 100, .hart = 0, .kernel = true};

  /// Execute one branch as `ctx`, simulating the OS context/mode switch
  /// when the running entity changes.
  bpu::AccessResult run(const bpu::ExecContext& ctx, std::uint64_t ip,
                        bpu::BranchType type, bool taken, std::uint64_t target) {
    if (has_last_ && !(last_ == ctx)) bpu_->on_switch(last_, ctx);
    last_ = ctx;
    has_last_ = true;
    bpu::BranchRecord rec{.ip = ip, .target = target, .type = type,
                          .taken = taken, .ctx = ctx};
    const bpu::AccessResult res = bpu_->access(rec);
    if (ctx.pid == kAttacker.pid && !ctx.kernel) {
      ++attacker_branches_;
      if (!res.overall_correct) ++attacker_misp_;
      if (res.btb_eviction) ++attacker_evict_;
    }
    return res;
  }

  // Convenience wrappers (Table I notation).
  bpu::AccessResult jmp(const bpu::ExecContext& c, std::uint64_t s, std::uint64_t d) {
    return run(c, s, bpu::BranchType::kDirectJump, true, d);
  }
  bpu::AccessResult jcc(const bpu::ExecContext& c, std::uint64_t s, bool taken,
                        std::uint64_t d) {
    return run(c, s, bpu::BranchType::kConditional, taken,
               taken ? d : s + bpu::kBranchInstrLen);
  }
  bpu::AccessResult ijmp(const bpu::ExecContext& c, std::uint64_t s, std::uint64_t d) {
    return run(c, s, bpu::BranchType::kIndirectJump, true, d);
  }
  bpu::AccessResult call(const bpu::ExecContext& c, std::uint64_t s, std::uint64_t d) {
    return run(c, s, bpu::BranchType::kDirectCall, true, d);
  }
  bpu::AccessResult ret(const bpu::ExecContext& c, std::uint64_t s, std::uint64_t d) {
    return run(c, s, bpu::BranchType::kReturn, true, d);
  }

  /// Equalize the BHB for `ctx` by walking a fixed branch sequence — what
  /// real Spectre v2 exploits do to reach the victim's indirect branch with
  /// a chosen history (sequence is address-based, so attacker and victim
  /// reach identical BHB values on the legacy BPU).
  void align_history(const bpu::ExecContext& ctx) {
    for (unsigned i = 0; i < 32; ++i) {
      const std::uint64_t s = 0x0'4440'0000ULL + i * 64;
      jmp(ctx, s, s + 64);
    }
  }

  [[nodiscard]] std::uint64_t attacker_branches() const { return attacker_branches_; }
  [[nodiscard]] std::uint64_t attacker_mispredictions() const { return attacker_misp_; }
  [[nodiscard]] std::uint64_t attacker_evictions() const { return attacker_evict_; }

  void fill(AttackResult& r) const {
    r.branches = attacker_branches_;
    r.attacker_mispredictions = attacker_misp_;
    r.attacker_evictions = attacker_evict_;
  }

 private:
  bpu::IPredictor* bpu_;
  bpu::ExecContext last_{};
  bool has_last_ = false;
  std::uint64_t attacker_branches_ = 0;
  std::uint64_t attacker_misp_ = 0;
  std::uint64_t attacker_evict_ = 0;
};

}  // namespace stbpu::attacks
