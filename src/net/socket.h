// Minimal POSIX TCP layer for the distributed sweep fabric: non-blocking
// sockets driven by monotonic-millisecond deadlines. Every blocking
// operation (connect, accept, send, recv) takes an explicit timeout or
// deadline so the coordinator can enforce per-shard deadlines and the
// worker can never hang on a half-open peer — the fabric's robustness
// story starts here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace stbpu::net {

/// Monotonic clock in milliseconds (deadline arithmetic base; never wall
/// clock, so NTP steps cannot fire or starve timeouts).
[[nodiscard]] std::int64_t mono_now_ms();

/// Sleep helper (reconnect backoff, chaos stalls).
void sleep_ms(std::int64_t ms);

/// Move-only owner of a socket fd (always O_NONBLOCK once constructed).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
};

/// One TCP connection. send/recv transfer exactly the requested byte count
/// or fail — timeouts, EOF and resets are all errors with a message; a
/// deadline-exceeded error always contains "deadline exceeded" so callers
/// can classify timeouts without extra plumbing.
class TcpConn {
 public:
  TcpConn() = default;

  /// Connect to host:port within timeout_ms (resolution + TCP handshake).
  static bool connect(const std::string& host, std::uint16_t port, int timeout_ms,
                      TcpConn& out, std::string& err);

  [[nodiscard]] bool valid() const noexcept { return sock_.valid(); }
  [[nodiscard]] int fd() const noexcept { return sock_.fd(); }

  /// Send exactly `n` bytes before `deadline_ms` (mono_now_ms scale).
  bool send_all(const void* data, std::size_t n, std::int64_t deadline_ms,
                std::string& err);
  /// Receive exactly `n` bytes before `deadline_ms`. A peer close mid-read
  /// reports "connection closed"; an expired deadline "deadline exceeded".
  bool recv_all(void* data, std::size_t n, std::int64_t deadline_ms, std::string& err);

  void close() { sock_.close(); }

 private:
  friend class TcpListener;
  Socket sock_;
};

/// Listening socket. `accept` polls in bounded slices so a serve loop can
/// check its stop flag between waits.
class TcpListener {
 public:
  /// Bind + listen on `port` (0 = kernel-assigned ephemeral port; read it
  /// back via port()). Binds all interfaces with SO_REUSEADDR.
  bool listen(std::uint16_t port, std::string& err);
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] bool valid() const noexcept { return sock_.valid(); }

  /// Wait up to timeout_ms for a connection: 1 = accepted into `out`,
  /// 0 = timeout, -1 = listener error (closed / invalid).
  int accept(TcpConn& out, int timeout_ms, std::string& err);

  void close() { sock_.close(); }

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

}  // namespace stbpu::net
