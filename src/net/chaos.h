// Deterministic fault injection for the sweep fabric. A worker started
// with --chaos=drop:P,stall:MS,corrupt:P,seed:S sabotages its own
// connections — dropped sockets, mid-stream stalls, flipped and truncated
// payloads — from an explicitly seeded RNG, so every recovery path in the
// coordinator (timeout, backoff, retry, re-dispatch, local fallback) is
// exercised on demand and *reproducibly*: the same seed yields the same
// verdict for the n-th accepted connection, independent of wall clock or
// scheduling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace stbpu::net {

/// Parsed --chaos= configuration. All fields zero = chaos disabled.
struct ChaosSpec {
  double drop_p = 0.0;      ///< P(connection dropped without a valid response)
  double corrupt_p = 0.0;   ///< P(response payload flipped or truncated)
  std::uint32_t stall_ms = 0;  ///< mid-stream stall injected into every response
  std::uint64_t seed = 1;   ///< verdict-sequence seed

  [[nodiscard]] bool enabled() const noexcept {
    return drop_p > 0.0 || corrupt_p > 0.0 || stall_ms > 0;
  }

  /// Parse "drop:P,stall:MS,corrupt:P,seed:S" (any subset, any order).
  /// Probabilities must be in [0, 1]; unknown keys and malformed values are
  /// errors.
  static bool parse(const std::string& text, ChaosSpec& out, std::string& err);
  [[nodiscard]] std::string to_string() const;
};

/// What the chaos layer does to one accepted connection. Drop modes cover
/// the three places a worker can die relative to a request; corrupt modes
/// cover the two ways a payload can arrive damaged (checksum-detectable
/// flip vs EOF-detectable truncation).
enum class ChaosAction : std::uint8_t {
  kNone = 0,
  kDropEarly,        ///< close before reading the request
  kDropAfterRequest, ///< read the request, then close without responding
  kDropMidResponse,  ///< send roughly half the response frame, then close
  kCorruptFlip,      ///< flip one payload byte (fails the frame checksum)
  kCorruptTruncate,  ///< declare the full length but send a short payload
};

[[nodiscard]] const char* chaos_action_name(ChaosAction a);

struct ChaosVerdict {
  ChaosAction action = ChaosAction::kNone;
  std::uint32_t stall_ms = 0;  ///< mid-stream stall before finishing the send
  /// Position selector in [0, 1): which payload byte to flip / where to cut.
  double detail = 0.0;

  friend bool operator==(const ChaosVerdict&, const ChaosVerdict&) = default;
};

/// Draws one verdict per accepted connection. A fixed number of RNG draws
/// per verdict (consumed whether used or not) keeps the sequence aligned:
/// verdict k depends only on (seed, k).
class ChaosEngine {
 public:
  explicit ChaosEngine(const ChaosSpec& spec) : spec_(spec), rng_(spec.seed) {}

  ChaosVerdict next();

  [[nodiscard]] const ChaosSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::vector<ChaosVerdict>& log() const noexcept { return log_; }

 private:
  ChaosSpec spec_;
  util::Xoshiro256 rng_;
  std::vector<ChaosVerdict> log_;
};

}  // namespace stbpu::net
