#include "net/frame.h"

#include <cstring>

namespace stbpu::net {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  out += static_cast<char>(v & 0xFF);
  out += static_cast<char>((v >> 8) & 0xFF);
  out += static_cast<char>((v >> 16) & 0xFF);
  out += static_cast<char>((v >> 24) & 0xFF);
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out += static_cast<char>((v >> (8 * i)) & 0xFF);
}

std::uint32_t get_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::string encode_frame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  put_u32(out, kFrameMagic);
  out += static_cast<char>(type);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u64(out, fnv1a64(payload.data(), payload.size()));
  out.append(payload.data(), payload.size());
  return out;
}

bool send_frame(TcpConn& conn, FrameType type, std::string_view payload,
                std::int64_t deadline_ms, std::string& err) {
  if (payload.size() > kMaxFramePayload) {
    err = "frame payload too large";
    return false;
  }
  const std::string wire = encode_frame(type, payload);
  return conn.send_all(wire.data(), wire.size(), deadline_ms, err);
}

bool recv_frame(TcpConn& conn, FrameType& type, std::string& payload,
                std::int64_t deadline_ms, std::string& err) {
  unsigned char header[kFrameHeaderBytes];
  if (!conn.recv_all(header, sizeof header, deadline_ms, err)) return false;
  if (get_u32(header) != kFrameMagic) {
    err = "bad frame magic (peer is not speaking the fabric protocol)";
    return false;
  }
  const std::uint8_t type_byte = header[4];
  if (type_byte < static_cast<std::uint8_t>(FrameType::kRequest) ||
      type_byte > static_cast<std::uint8_t>(FrameType::kError)) {
    err = "unknown frame type " + std::to_string(type_byte);
    return false;
  }
  const std::uint32_t length = get_u32(header + 5);
  if (length > kMaxFramePayload) {
    err = "frame length " + std::to_string(length) + " exceeds protocol maximum";
    return false;
  }
  const std::uint64_t checksum = get_u64(header + 9);
  payload.resize(length);
  if (length > 0 && !conn.recv_all(payload.data(), length, deadline_ms, err)) {
    return false;
  }
  if (fnv1a64(payload.data(), payload.size()) != checksum) {
    err = "payload checksum mismatch (corrupt frame)";
    return false;
  }
  type = static_cast<FrameType>(type_byte);
  return true;
}

}  // namespace stbpu::net
