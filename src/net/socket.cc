#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

namespace stbpu::net {

std::int64_t mono_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void sleep_ms(std::int64_t ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool set_nonblocking(int fd, std::string& err) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    err = errno_text("fcntl(O_NONBLOCK)");
    return false;
  }
  return true;
}

/// Poll one fd for `events` until `deadline_ms`: 1 ready, 0 deadline
/// exceeded, -1 error.
int poll_until(int fd, short events, std::int64_t deadline_ms, std::string& err) {
  for (;;) {
    const std::int64_t remain = deadline_ms - mono_now_ms();
    if (remain <= 0) return 0;
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = events;
    const int slice = remain > 100 ? 100 : static_cast<int>(remain);
    const int r = ::poll(&pfd, 1, slice);
    if (r > 0) {
      // POLLERR/POLLHUP surface through the subsequent send/recv, which
      // produces the precise error message.
      return 1;
    }
    if (r < 0 && errno != EINTR) {
      err = errno_text("poll");
      return -1;
    }
  }
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool TcpConn::connect(const std::string& host, std::uint16_t port, int timeout_ms,
                      TcpConn& out, std::string& err) {
  struct addrinfo hints {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string port_text = std::to_string(port);
  const int gai = ::getaddrinfo(host.c_str(), port_text.c_str(), &hints, &res);
  if (gai != 0 || res == nullptr) {
    err = "cannot resolve '" + host + "': " + ::gai_strerror(gai);
    return false;
  }
  const std::int64_t deadline = mono_now_ms() + timeout_ms;
  std::string last_err = "no usable address";
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    Socket sock(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!sock.valid()) {
      last_err = errno_text("socket");
      continue;
    }
    if (!set_nonblocking(sock.fd(), last_err)) continue;
    if (::connect(sock.fd(), ai->ai_addr, ai->ai_addrlen) != 0) {
      if (errno != EINPROGRESS) {
        last_err = errno_text("connect");
        continue;
      }
      const int r = poll_until(sock.fd(), POLLOUT, deadline, last_err);
      if (r == 0) {
        last_err = "connect deadline exceeded";
        continue;
      }
      if (r < 0) continue;
      int so_error = 0;
      socklen_t len = sizeof so_error;
      if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
          so_error != 0) {
        last_err = std::string("connect: ") + std::strerror(so_error != 0 ? so_error
                                                                          : errno);
        continue;
      }
    }
    int one = 1;
    ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    out.sock_ = std::move(sock);
    ::freeaddrinfo(res);
    return true;
  }
  ::freeaddrinfo(res);
  err = "cannot connect to " + host + ":" + port_text + " (" + last_err + ")";
  return false;
}

bool TcpConn::send_all(const void* data, std::size_t n, std::int64_t deadline_ms,
                       std::string& err) {
  if (!valid()) {
    err = "send on closed connection";
    return false;
  }
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t k = ::send(sock_.fd(), p, n, MSG_NOSIGNAL);
    if (k > 0) {
      p += k;
      n -= static_cast<std::size_t>(k);
      continue;
    }
    if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int r = poll_until(sock_.fd(), POLLOUT, deadline_ms, err);
      if (r == 0) {
        err = "send deadline exceeded";
        return false;
      }
      if (r < 0) return false;
      continue;
    }
    if (k < 0 && errno == EINTR) continue;
    err = errno_text("send");
    return false;
  }
  return true;
}

bool TcpConn::recv_all(void* data, std::size_t n, std::int64_t deadline_ms,
                       std::string& err) {
  if (!valid()) {
    err = "recv on closed connection";
    return false;
  }
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t k = ::recv(sock_.fd(), p, n, 0);
    if (k > 0) {
      p += k;
      n -= static_cast<std::size_t>(k);
      continue;
    }
    if (k == 0) {
      err = "connection closed mid-message";
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const int r = poll_until(sock_.fd(), POLLIN, deadline_ms, err);
      if (r == 0) {
        err = "recv deadline exceeded";
        return false;
      }
      if (r < 0) return false;
      continue;
    }
    if (errno == EINTR) continue;
    err = errno_text("recv");
    return false;
  }
  return true;
}

bool TcpListener::listen(std::uint16_t port, std::string& err) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    err = errno_text("socket");
    return false;
  }
  int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (!set_nonblocking(sock.fd(), err)) return false;
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) != 0) {
    err = errno_text("bind");
    return false;
  }
  if (::listen(sock.fd(), 64) != 0) {
    err = errno_text("listen");
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr), &len) != 0) {
    err = errno_text("getsockname");
    return false;
  }
  port_ = ntohs(addr.sin_port);
  sock_ = std::move(sock);
  return true;
}

int TcpListener::accept(TcpConn& out, int timeout_ms, std::string& err) {
  if (!sock_.valid()) {
    err = "accept on closed listener";
    return -1;
  }
  const std::int64_t deadline = mono_now_ms() + timeout_ms;
  for (;;) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket conn(fd);
      std::string nb_err;
      if (!set_nonblocking(conn.fd(), nb_err)) {
        err = nb_err;
        return -1;
      }
      int one = 1;
      ::setsockopt(conn.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      out.sock_ = std::move(conn);
      return 1;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const int r = poll_until(sock_.fd(), POLLIN, deadline, err);
      if (r == 0) return 0;
      if (r < 0) return -1;
      continue;
    }
    if (errno == EINTR || errno == ECONNABORTED) continue;
    err = errno_text("accept");
    return -1;
  }
}

}  // namespace stbpu::net
