#include "net/chaos.h"

#include <cstdio>
#include <cstdlib>

namespace stbpu::net {

namespace {

bool parse_probability(const std::string& text, double& out, const char* key,
                       std::string& err) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || v < 0.0 || v > 1.0) {
    err = std::string("chaos '") + key + "' must be a probability in [0,1], got '" +
          text + "'";
    return false;
  }
  out = v;
  return true;
}

bool parse_unsigned(const std::string& text, std::uint64_t& out, const char* key,
                    std::string& err) {
  if (text.empty() || text[0] < '0' || text[0] > '9') {
    err = std::string("chaos '") + key + "' must be a non-negative integer, got '" +
          text + "'";
    return false;
  }
  char* end = nullptr;
  out = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    err = std::string("chaos '") + key + "' must be a non-negative integer, got '" +
          text + "'";
    return false;
  }
  return true;
}

}  // namespace

bool ChaosSpec::parse(const std::string& text, ChaosSpec& out, std::string& err) {
  out = ChaosSpec{};
  if (text.empty()) {
    err = "empty chaos spec (expected drop:P,stall:MS,corrupt:P,seed:S)";
    return false;
  }
  std::size_t at = 0;
  while (at <= text.size()) {
    const std::size_t comma = text.find(',', at);
    const std::string part =
        text.substr(at, comma == std::string::npos ? std::string::npos : comma - at);
    const std::size_t colon = part.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= part.size()) {
      err = "malformed chaos entry '" + part + "' (expected key:value)";
      return false;
    }
    const std::string key = part.substr(0, colon);
    const std::string value = part.substr(colon + 1);
    if (key == "drop") {
      if (!parse_probability(value, out.drop_p, "drop", err)) return false;
    } else if (key == "corrupt") {
      if (!parse_probability(value, out.corrupt_p, "corrupt", err)) return false;
    } else if (key == "stall") {
      std::uint64_t ms = 0;
      if (!parse_unsigned(value, ms, "stall", err)) return false;
      out.stall_ms = static_cast<std::uint32_t>(ms);
    } else if (key == "seed") {
      if (!parse_unsigned(value, out.seed, "seed", err)) return false;
    } else {
      err = "unknown chaos key '" + key + "' (use drop|stall|corrupt|seed)";
      return false;
    }
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  return true;
}

std::string ChaosSpec::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "drop:%g,stall:%u,corrupt:%g,seed:%llu", drop_p,
                stall_ms, corrupt_p, static_cast<unsigned long long>(seed));
  return buf;
}

const char* chaos_action_name(ChaosAction a) {
  switch (a) {
    case ChaosAction::kNone: return "none";
    case ChaosAction::kDropEarly: return "drop-early";
    case ChaosAction::kDropAfterRequest: return "drop-after-request";
    case ChaosAction::kDropMidResponse: return "drop-mid-response";
    case ChaosAction::kCorruptFlip: return "corrupt-flip";
    case ChaosAction::kCorruptTruncate: return "corrupt-truncate";
  }
  return "?";
}

ChaosVerdict ChaosEngine::next() {
  // Fixed draw schedule — every verdict consumes exactly five values so the
  // k-th verdict is a pure function of (seed, k).
  const double drop_draw = rng_.uniform();
  const std::uint64_t drop_mode = rng_.below(3);
  const double corrupt_draw = rng_.uniform();
  const std::uint64_t corrupt_mode = rng_.below(2);
  const double detail = rng_.uniform();

  ChaosVerdict v;
  v.stall_ms = spec_.stall_ms;
  v.detail = detail;
  if (drop_draw < spec_.drop_p) {
    v.action = drop_mode == 0   ? ChaosAction::kDropEarly
               : drop_mode == 1 ? ChaosAction::kDropAfterRequest
                                : ChaosAction::kDropMidResponse;
  } else if (corrupt_draw < spec_.corrupt_p) {
    v.action = corrupt_mode == 0 ? ChaosAction::kCorruptFlip
                                 : ChaosAction::kCorruptTruncate;
  }
  log_.push_back(v);
  return v;
}

}  // namespace stbpu::net
