// Length-prefixed wire framing for the sweep fabric. One frame carries one
// message (a shard-assignment spec JSON, a shard-result JSON, or an error
// string):
//
//   u32  magic     "SBF1" (0x53424631, little-endian on the wire)
//   u8   type      FrameType
//   u32  length    payload byte count
//   u64  checksum  FNV-1a 64 over the payload
//   ...  payload
//
// The checksum is what makes the chaos layer's corrupted/truncated payloads
// *detectable* rather than silently merged: a flipped payload byte fails
// the checksum at recv_frame, a truncated stream fails recv_all with EOF,
// and a garbage header fails the magic check — every corruption mode maps
// to a distinct, retryable error.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "net/socket.h"

namespace stbpu::net {

enum class FrameType : std::uint8_t {
  kRequest = 1,   ///< coordinator -> worker: shard-assignment spec JSON
  kResponse = 2,  ///< worker -> coordinator: full-precision shard JSON
  kError = 3,     ///< worker -> coordinator: non-retryable failure message
};

constexpr std::uint32_t kFrameMagic = 0x53424631u;  // "SBF1"
constexpr std::size_t kFrameHeaderBytes = 4 + 1 + 4 + 8;
/// Shard JSONs are KB-scale even at paper scale; anything larger than this
/// is a protocol violation, not a payload.
constexpr std::uint32_t kMaxFramePayload = 1u << 28;

/// FNV-1a 64-bit (the payload checksum).
[[nodiscard]] std::uint64_t fnv1a64(const void* data, std::size_t n);

/// Wire-encode one complete frame (header + payload). The worker's chaos
/// layer mutates these bytes before the raw send, guaranteeing injected
/// corruption travels through the exact detection path a real fault would.
[[nodiscard]] std::string encode_frame(FrameType type, std::string_view payload);

/// Send one frame before `deadline_ms`.
bool send_frame(TcpConn& conn, FrameType type, std::string_view payload,
                std::int64_t deadline_ms, std::string& err);

/// Receive one frame before `deadline_ms`: validates magic, length bound
/// and payload checksum. Any violation is an error (never a partial
/// result); "deadline exceeded" in `err` identifies timeouts.
bool recv_frame(TcpConn& conn, FrameType& type, std::string& payload,
                std::int64_t deadline_ms, std::string& err);

}  // namespace stbpu::net
