// Engine-typed fan-out for experiment scenarios: build the devirtualized
// engine for a ModelSpec and hand it to `fn` as its concrete
// EngineT<Mapping, Direction> type. The registry-driven visit runs once per
// engine — scenario bodies that instantiate sim::OooCoreT (via
// sim::run_ooo) or sim::replay on the typed reference execute the whole
// per-branch path without a single virtual call.
#pragma once

#include <utility>

#include "models/engine.h"

namespace stbpu::exp {

/// Build the engine for `spec` and visit it typed. `fn` is instantiated
/// for every concrete engine combination (all mappings × all direction
/// predictors); the matching one runs. Always dispatches for specs
/// make_engine understands.
template <class Fn>
bool for_each_engine(const models::ModelSpec& spec, Fn&& fn) {
  const auto engine = models::make_engine(spec);
  return engine != nullptr && models::visit_engine(*engine, std::forward<Fn>(fn));
}

}  // namespace stbpu::exp
