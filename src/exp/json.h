// Minimal JSON layer for the experiment API: a recursive-descent parser
// producing an ordered DOM (object keys keep file order, numbers keep their
// raw literal text) plus the quoting helper shared by every writer.
//
// The raw-text preservation matters: sharded sweeps serialize doubles with
// %.17g (exact round-trip), and `stbpu_bench merge` re-reads them through
// strtod so the merged aggregate is computed on bit-identical values — the
// merged BENCH_*.json must equal an unsharded run byte for byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace stbpu::exp {

/// JSON string escaping (quotes, backslashes, control chars).
[[nodiscard]] std::string json_quote(const std::string& s);

class JsonValue {
 public:
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_object() const noexcept { return type_ == Type::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_string() const noexcept { return type_ == Type::kString; }
  [[nodiscard]] bool is_number() const noexcept { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }

  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  /// String payload, or the raw literal text for numbers.
  [[nodiscard]] const std::string& text() const noexcept { return text_; }
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] long as_long() const;

  /// Byte offset of this value's first character in the parsed text (0 for
  /// values not produced by json_parse). Error messages that point at a
  /// specific shard-file value (merge validation) use this.
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

  [[nodiscard]] const std::vector<JsonValue>& items() const noexcept { return items_; }
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const noexcept {
    return members_;
  }
  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

 private:
  friend class JsonParser;
  Type type_ = Type::kNull;
  std::size_t offset_ = 0;
  bool bool_ = false;
  std::string text_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parse `text`; returns false (with a position-annotated message in `err`)
/// on malformed input.
bool json_parse(const std::string& text, JsonValue& out, std::string& err);

}  // namespace stbpu::exp
