#include "exp/fabric.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>
#include <sys/socket.h>
#include <thread>

#include "exp/json.h"
#include "exp/runner.h"
#include "net/frame.h"
#include "util/rng.h"

namespace stbpu::exp {

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

struct WorkerServer::Impl {
  WorkerOptions opts;
  net::TcpListener listener;
  std::thread thread;
  std::atomic<bool> stop_flag{false};
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> served{0};
  std::atomic<int> active_fd{-1};
  mutable std::mutex chaos_mutex;
  std::optional<net::ChaosEngine> chaos;

  void log(const char* fmt, const std::string& detail) const {
    if (opts.verbose) {
      std::fprintf(stderr, "stbpu_bench worker[:%u]: ", listener.port());
      std::fprintf(stderr, fmt, detail.c_str());
      std::fputc('\n', stderr);
    }
  }

  void serve();
  void handle(net::TcpConn conn);
  bool send_response(net::TcpConn& conn, const std::string& body,
                     const net::ChaosVerdict& verdict);
};

namespace {

/// Frame-level error reply; best-effort (the peer may already be gone).
void send_error(net::TcpConn& conn, const std::string& message, int timeout_ms) {
  std::string err;
  net::send_frame(conn, net::FrameType::kError, message,
                  net::mono_now_ms() + timeout_ms, err);
}

}  // namespace

bool WorkerServer::Impl::send_response(net::TcpConn& conn, const std::string& body,
                                       const net::ChaosVerdict& verdict) {
  std::string wire = net::encode_frame(net::FrameType::kResponse, body);
  std::size_t limit = wire.size();
  using net::ChaosAction;
  if (verdict.action == ChaosAction::kCorruptFlip && !body.empty()) {
    // Flip one payload byte: the header still declares the original
    // checksum, so the coordinator must detect and reject the frame.
    const std::size_t at = net::kFrameHeaderBytes +
                           static_cast<std::size_t>(verdict.detail *
                                                    static_cast<double>(body.size()));
    wire[std::min(at, wire.size() - 1)] ^= 0x5A;
  } else if (verdict.action == ChaosAction::kCorruptTruncate) {
    // Declare the full length but stop short: the coordinator sees EOF
    // mid-payload.
    limit = net::kFrameHeaderBytes + body.size() / 2;
  } else if (verdict.action == ChaosAction::kDropMidResponse) {
    limit = wire.size() / 2;
  }

  const std::int64_t deadline =
      net::mono_now_ms() + opts.response_timeout_ms + verdict.stall_ms;
  std::string err;
  if (verdict.stall_ms > 0 && limit > net::kFrameHeaderBytes) {
    // Mid-stream stall: ship the first half, sleep, ship the rest. The
    // coordinator's deadline has to ride this out (or expire — both paths
    // are exercised by tests).
    const std::size_t half = limit / 2;
    if (!conn.send_all(wire.data(), half, deadline, err)) return false;
    net::sleep_ms(verdict.stall_ms);
    if (stop_flag.load()) return false;
    if (!conn.send_all(wire.data() + half, limit - half, deadline, err)) return false;
  } else {
    if (!conn.send_all(wire.data(), limit, deadline, err)) return false;
  }
  return limit == wire.size() && verdict.action == ChaosAction::kNone;
}

void WorkerServer::Impl::handle(net::TcpConn conn) {
  net::ChaosVerdict verdict;
  if (chaos.has_value()) {
    const std::lock_guard<std::mutex> lock(chaos_mutex);
    verdict = chaos->next();
    if (verdict.action != net::ChaosAction::kNone || verdict.stall_ms > 0) {
      log("chaos: %s", std::string(net::chaos_action_name(verdict.action)) +
                           (verdict.stall_ms > 0
                                ? " stall:" + std::to_string(verdict.stall_ms) + "ms"
                                : ""));
    }
  }
  using net::ChaosAction;
  if (verdict.action == ChaosAction::kDropEarly) return;

  net::FrameType type{};
  std::string payload, err;
  if (!net::recv_frame(conn, type, payload,
                       net::mono_now_ms() + opts.request_timeout_ms, err)) {
    log("bad request: %s", err);
    return;
  }
  if (type != net::FrameType::kRequest) {
    send_error(conn, "expected a request frame", opts.response_timeout_ms);
    return;
  }

  JsonValue doc;
  ExperimentSpec spec;
  if (!json_parse(payload, doc, err) || !ExperimentSpec::from_json(doc, spec, err)) {
    log("bad spec: %s", err);
    send_error(conn, "bad shard spec: " + err, opts.response_timeout_ms);
    return;
  }
  const Scenario* scenario = find_scenario(spec.scenario);
  if (scenario == nullptr) {
    send_error(conn, "unknown scenario '" + spec.scenario + "'",
               opts.response_timeout_ms);
    return;
  }
  if (opts.jobs != 0) spec.jobs = opts.jobs;

  if (verdict.action == ChaosAction::kDropAfterRequest) return;

  log("running shard %s",
      std::to_string(spec.shard_index) + "/" + std::to_string(spec.shard_count) +
          " of " + spec.scenario);
  RunOutcome outcome;
  if (!run_experiment(*scenario, spec, outcome, err)) {
    log("run failed: %s", err);
    send_error(conn, "shard execution failed: " + err, opts.response_timeout_ms);
    return;
  }
  const std::string body = shard_json(*scenario, spec, outcome);
  if (send_response(conn, body, verdict)) {
    served.fetch_add(1);
    log("served shard %s", std::to_string(spec.shard_index) + "/" +
                               std::to_string(spec.shard_count) + " (" +
                               std::to_string(body.size()) + " bytes)");
  }
}

void WorkerServer::Impl::serve() {
  while (!stop_flag.load()) {
    if (opts.max_requests != 0 && accepted.load() >= opts.max_requests) break;
    net::TcpConn conn;
    std::string err;
    const int r = listener.accept(conn, 100, err);
    if (r == 0) continue;
    if (r < 0) break;
    accepted.fetch_add(1);
    active_fd.store(conn.fd());
    handle(std::move(conn));
    active_fd.store(-1);
  }
  listener.close();
}

WorkerServer::WorkerServer() : impl_(std::make_unique<Impl>()) {}

WorkerServer::~WorkerServer() { stop(); }

bool WorkerServer::start(const WorkerOptions& opts, std::string& err) {
  register_builtin_scenarios();
  impl_->opts = opts;
  if (!impl_->listener.listen(opts.port, err)) return false;
  if (opts.chaos.enabled()) impl_->chaos.emplace(opts.chaos);
  if (!opts.port_file.empty() &&
      !write_file(opts.port_file, std::to_string(impl_->listener.port()) + "\n")) {
    err = "cannot write port file '" + opts.port_file + "'";
    impl_->listener.close();
    return false;
  }
  impl_->thread = std::thread([this] { impl_->serve(); });
  return true;
}

void WorkerServer::stop() {
  if (impl_ == nullptr) return;
  impl_->stop_flag.store(true);
  // Kill any in-flight connection so a coordinator blocked on this worker
  // sees EOF immediately — this is the "worker dies mid-shard" semantics.
  const int fd = impl_->active_fd.load();
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  if (impl_->thread.joinable()) impl_->thread.join();
}

void WorkerServer::wait() {
  if (impl_->thread.joinable()) impl_->thread.join();
}

std::uint16_t WorkerServer::port() const { return impl_->listener.port(); }

std::uint64_t WorkerServer::served() const { return impl_->served.load(); }

std::uint64_t WorkerServer::accepted() const { return impl_->accepted.load(); }

std::vector<net::ChaosVerdict> WorkerServer::chaos_log() const {
  const std::lock_guard<std::mutex> lock(impl_->chaos_mutex);
  return impl_->chaos.has_value() ? impl_->chaos->log()
                                  : std::vector<net::ChaosVerdict>{};
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

namespace {

enum class AttemptOutcome : std::uint8_t {
  kOk,
  kConnectFailure,
  kTimeout,
  kTransport,        ///< EOF / reset / bad frame mid-exchange
  kRejectedPayload,  ///< checksum or shard-validation failure
  kWorkerError,      ///< explicit error frame — non-retryable
};

struct ShardState {
  ExperimentSpec spec;               ///< the shard's assignment (shard i/N)
  std::string request_json;          ///< spec serialized for the wire
  std::vector<std::size_t> owned;    ///< grid indices this shard must cover
  std::string result;                ///< winning shard JSON text
  bool done = false;
  int attempts = 0;                  ///< remote attempts started
  int in_flight = 0;
  std::int64_t started_ms = 0;       ///< newest attempt's start (straggler pick)
};

struct Coordinator {
  std::mutex mutex;
  const Scenario* scenario = nullptr;
  const DispatchOptions* opts = nullptr;
  std::vector<ShardState> shards;
  std::deque<std::uint32_t> pending;
  std::size_t done_count = 0;
  bool fatal = false;
  std::string fatal_err;
  DispatchStats stats;

  void event(std::string text) { stats.events.push_back(std::move(text)); }
};

/// Deterministic backoff: exponential in the attempt number with +/-50%
/// jitter that depends only on (seed, shard, attempt) — reproducible
/// recovery schedules regardless of thread interleaving.
std::int64_t backoff_ms(const DispatchOptions& opts, std::uint32_t shard, int attempt) {
  const int exp = std::min(attempt > 0 ? attempt - 1 : 0, 20);
  std::int64_t base = static_cast<std::int64_t>(opts.backoff_base_ms) << exp;
  base = std::min<std::int64_t>(base, opts.backoff_max_ms);
  std::uint64_t state = opts.jitter_seed ^ (static_cast<std::uint64_t>(shard) << 32) ^
                        static_cast<std::uint64_t>(attempt);
  const std::uint64_t draw = util::splitmix64(state);
  const double jitter = 0.5 + static_cast<double>(draw >> 11) * 0x1.0p-53;  // [0.5,1.5)
  const auto ms = static_cast<std::int64_t>(static_cast<double>(base) * jitter);
  return ms > 0 ? ms : 1;
}

/// Validate a worker's response against the shard it was assigned: it must
/// be a well-formed shard file for the same spec (modulo jobs, which is an
/// execution detail) covering exactly the shard's grid indices. Anything
/// else is a rejected payload — retried, never merged.
bool validate_response(const ShardState& shard, const std::string& payload,
                       std::string& err) {
  JsonValue doc;
  if (!json_parse(payload, doc, err)) {
    err = "response does not parse: " + err;
    return false;
  }
  const JsonValue* format = doc.find("format");
  if (format == nullptr || format->text() != "stbpu-shard-v1") {
    err = "response is not a stbpu shard file";
    return false;
  }
  const JsonValue* spec_v = doc.find("spec");
  ExperimentSpec got;
  if (spec_v == nullptr || !ExperimentSpec::from_json(*spec_v, got, err)) {
    err = "response spec invalid: " + err;
    return false;
  }
  ExperimentSpec want = shard.spec;
  got.jobs = 0;
  want.jobs = 0;
  if (!(got == want)) {
    err = "response spec does not match the assigned shard";
    return false;
  }
  const JsonValue* pts = doc.find("points");
  if (pts == nullptr || !pts->is_array()) {
    err = "response has no points array";
    return false;
  }
  std::vector<std::size_t> indices;
  indices.reserve(pts->items().size());
  for (const JsonValue& pv : pts->items()) {
    const JsonValue* index_v = pv.find("index");
    if (index_v == nullptr || !index_v->is_number()) {
      err = "response point entry has no index";
      return false;
    }
    indices.push_back(static_cast<std::size_t>(index_v->as_u64()));
  }
  std::sort(indices.begin(), indices.end());
  if (indices != shard.owned) {
    err = "response covers " + std::to_string(indices.size()) +
          " points, expected the shard's " + std::to_string(shard.owned.size());
    return false;
  }
  return true;
}

AttemptOutcome attempt_shard(const std::string& host, std::uint16_t port,
                             const ShardState& shard, const DispatchOptions& opts,
                             std::string& out_payload, std::string& err) {
  const std::int64_t deadline = net::mono_now_ms() + opts.shard_deadline_ms;
  net::TcpConn conn;
  if (!net::TcpConn::connect(host, port, opts.connect_timeout_ms, conn, err)) {
    return AttemptOutcome::kConnectFailure;
  }
  if (!net::send_frame(conn, net::FrameType::kRequest, shard.request_json, deadline,
                       err)) {
    return err.find("deadline exceeded") != std::string::npos
               ? AttemptOutcome::kTimeout
               : AttemptOutcome::kTransport;
  }
  net::FrameType type{};
  std::string payload;
  if (!net::recv_frame(conn, type, payload, deadline, err)) {
    if (err.find("deadline exceeded") != std::string::npos) {
      return AttemptOutcome::kTimeout;
    }
    return err.find("checksum mismatch") != std::string::npos
               ? AttemptOutcome::kRejectedPayload
               : AttemptOutcome::kTransport;
  }
  if (type == net::FrameType::kError) {
    err = "worker reported: " + payload;
    return AttemptOutcome::kWorkerError;
  }
  if (type != net::FrameType::kResponse) {
    err = "unexpected frame type";
    return AttemptOutcome::kTransport;
  }
  if (!validate_response(shard, payload, err)) return AttemptOutcome::kRejectedPayload;
  out_payload = std::move(payload);
  return AttemptOutcome::kOk;
}

/// One worker endpoint's dispatch loop: drain the pending queue, duplicate
/// the oldest straggler when idle, retire after worker_failure_limit
/// consecutive failures.
void worker_loop(Coordinator& coord, const std::string& endpoint, const std::string& host,
                 std::uint16_t port) {
  const DispatchOptions& opts = *coord.opts;
  int consecutive_failures = 0;
  for (;;) {
    int shard_id = -1;
    int attempt_no = 0;
    bool is_redispatch = false;
    {
      const std::lock_guard<std::mutex> lock(coord.mutex);
      if (coord.fatal || coord.done_count == coord.shards.size()) return;
      if (!coord.pending.empty()) {
        shard_id = static_cast<int>(coord.pending.front());
        coord.pending.pop_front();
      } else {
        // Straggler re-dispatch: duplicate the longest-outstanding in-flight
        // shard (at most one duplicate, and only while remote retries
        // remain plausible). First valid result wins; the loser's payload
        // is discarded by shard identity.
        std::int64_t oldest = std::numeric_limits<std::int64_t>::max();
        for (std::size_t i = 0; i < coord.shards.size(); ++i) {
          const ShardState& s = coord.shards[i];
          if (s.done || s.in_flight != 1 || s.attempts >= opts.retry_limit + 2) continue;
          if (s.started_ms < oldest) {
            oldest = s.started_ms;
            shard_id = static_cast<int>(i);
          }
        }
        if (shard_id >= 0) {
          is_redispatch = true;
          ++coord.stats.redispatches;
          coord.event("shard " + std::to_string(shard_id) +
                      ": straggler re-dispatch to " + endpoint);
        } else {
          bool any_in_flight = false;
          for (const ShardState& s : coord.shards) {
            if (!s.done && s.in_flight > 0) any_in_flight = true;
          }
          // Nothing pending, nothing to duplicate, nothing that could still
          // requeue -> every remaining shard has exhausted remote retries;
          // leave them for local fallback.
          if (!any_in_flight) return;
        }
      }
      if (shard_id >= 0) {
        ShardState& s = coord.shards[static_cast<std::size_t>(shard_id)];
        ++s.in_flight;
        attempt_no = ++s.attempts;
        s.started_ms = net::mono_now_ms();
      }
    }
    if (shard_id < 0) {
      net::sleep_ms(10);
      continue;
    }

    std::string payload, attempt_err;
    const AttemptOutcome outcome =
        attempt_shard(host, port, coord.shards[static_cast<std::size_t>(shard_id)], opts,
                      payload, attempt_err);

    bool failed = false;
    {
      const std::lock_guard<std::mutex> lock(coord.mutex);
      ShardState& s = coord.shards[static_cast<std::size_t>(shard_id)];
      --s.in_flight;
      switch (outcome) {
        case AttemptOutcome::kOk:
          consecutive_failures = 0;
          if (!s.done) {
            s.done = true;
            s.result = std::move(payload);
            ++coord.done_count;
            ++coord.stats.remote_shards;
            coord.event("shard " + std::to_string(shard_id) + ": served by " +
                        endpoint + " (attempt " + std::to_string(attempt_no) + ")");
          } else {
            ++coord.stats.duplicates_discarded;
            coord.event("shard " + std::to_string(shard_id) +
                        ": duplicate result from " + endpoint + " discarded");
          }
          break;
        case AttemptOutcome::kWorkerError:
          // Deterministic remote failure (bad spec, unknown scenario, run
          // error) — retrying or falling back locally would fail the same
          // way, so surface it.
          coord.fatal = true;
          coord.fatal_err = "shard " + std::to_string(shard_id) + " via " + endpoint +
                            ": " + attempt_err;
          return;
        default: {
          failed = true;
          ++consecutive_failures;
          ++coord.stats.failed_attempts;
          if (outcome == AttemptOutcome::kConnectFailure) ++coord.stats.connect_failures;
          if (outcome == AttemptOutcome::kTimeout) ++coord.stats.timeouts;
          if (outcome == AttemptOutcome::kRejectedPayload) {
            ++coord.stats.rejected_payloads;
          }
          coord.event("shard " + std::to_string(shard_id) + ": attempt " +
                      std::to_string(attempt_no) + " via " + endpoint +
                      " failed: " + attempt_err);
          if (!s.done && s.attempts < opts.retry_limit && !is_redispatch) {
            coord.pending.push_back(static_cast<std::uint32_t>(shard_id));
          } else if (!s.done && s.in_flight == 0 && s.attempts >= opts.retry_limit) {
            coord.event("shard " + std::to_string(shard_id) +
                        ": remote retries exhausted");
          }
          break;
        }
      }
    }
    if (failed) {
      if (consecutive_failures >= opts.worker_failure_limit) {
        const std::lock_guard<std::mutex> lock(coord.mutex);
        coord.event("worker " + endpoint + " marked dead after " +
                    std::to_string(consecutive_failures) + " consecutive failures");
        return;
      }
      net::sleep_ms(backoff_ms(opts, static_cast<std::uint32_t>(shard_id), attempt_no));
    }
  }
}

}  // namespace

bool parse_endpoint(const std::string& text, std::string& host, std::uint16_t& port,
                    std::string& err) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size()) {
    err = "worker endpoint must look like host:port, got '" + text + "'";
    return false;
  }
  host = text.substr(0, colon);
  char* end = nullptr;
  const unsigned long p = std::strtoul(text.c_str() + colon + 1, &end, 10);
  if (*end != '\0' || p == 0 || p > 65535) {
    err = "bad port in worker endpoint '" + text + "'";
    return false;
  }
  port = static_cast<std::uint16_t>(p);
  return true;
}

bool dispatch_experiment(const Scenario& scenario, const ExperimentSpec& spec,
                         const DispatchOptions& opts, std::string& out_json,
                         DispatchStats& stats, std::string& err) {
  stats = DispatchStats{};
  if (spec.sharded()) {
    err = "dispatch partitions the grid itself; use --shards=N, not --shard";
    return false;
  }
  std::vector<std::string> hosts(opts.workers.size());
  std::vector<std::uint16_t> ports(opts.workers.size());
  for (std::size_t i = 0; i < opts.workers.size(); ++i) {
    if (!parse_endpoint(opts.workers[i], hosts[i], ports[i], err)) return false;
  }

  const std::vector<std::string> labels = scenario.point_labels(spec);
  for (const std::size_t p : spec.points) {
    if (p >= labels.size()) {
      err = "point " + std::to_string(p) + " out of range (grid has " +
            std::to_string(labels.size()) + " points)";
      return false;
    }
  }
  const std::size_t selected = spec.owned_points(labels.size()).size();
  if (selected == 0) {
    err = "nothing to dispatch: the selection is empty";
    return false;
  }
  std::uint32_t shard_count = opts.shard_count;
  if (shard_count == 0) {
    shard_count = static_cast<std::uint32_t>(
        std::min<std::size_t>(selected, std::max<std::size_t>(2 * opts.workers.size(),
                                                              1)));
  }
  shard_count = static_cast<std::uint32_t>(
      std::min<std::size_t>(shard_count, selected));
  if (shard_count == 0) shard_count = 1;

  Coordinator coord;
  coord.scenario = &scenario;
  coord.opts = &opts;
  coord.stats.shard_count = shard_count;
  coord.shards.resize(shard_count);
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    ShardState& s = coord.shards[i];
    s.spec = spec;
    s.spec.shard_index = i;
    s.spec.shard_count = shard_count;
    s.request_json = s.spec.to_json(/*with_shard=*/true);
    s.owned = s.spec.owned_points(labels.size());
    coord.pending.push_back(i);
  }

  std::vector<std::thread> threads;
  threads.reserve(opts.workers.size());
  for (std::size_t w = 0; w < opts.workers.size(); ++w) {
    threads.emplace_back([&coord, &opts, &hosts, &ports, w] {
      worker_loop(coord, opts.workers[w], hosts[w], ports[w]);
    });
  }
  for (std::thread& t : threads) t.join();

  if (coord.fatal) {
    stats = coord.stats;
    err = coord.fatal_err;
    return false;
  }

  // Graceful degradation: shards no worker served run through the
  // in-process pool — the exact code path of a local --shard=i/N run, so
  // the merged output cannot tell remote from local execution.
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    ShardState& s = coord.shards[i];
    if (s.done) continue;
    if (!opts.local_fallback) {
      stats = coord.stats;
      err = "shard " + std::to_string(i) + " unserved after " +
            std::to_string(s.attempts) + " remote attempt(s) and local fallback is "
            "disabled";
      return false;
    }
    RunOutcome outcome;
    if (!run_experiment(scenario, s.spec, outcome, err)) {
      stats = coord.stats;
      err = "local fallback for shard " + std::to_string(i) + " failed: " + err;
      return false;
    }
    s.result = shard_json(scenario, s.spec, outcome);
    s.done = true;
    ++coord.done_count;
    ++coord.stats.local_shards;
    coord.event("shard " + std::to_string(i) + ": degraded to local execution");
  }

  std::vector<std::string> texts(shard_count), names(shard_count);
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    texts[i] = std::move(coord.shards[i].result);
    names[i] = "dispatched shard " + std::to_string(i) + "/" +
               std::to_string(shard_count);
  }
  std::string merged_scenario;
  if (!merge_shards(texts, names, out_json, merged_scenario, err)) {
    stats = coord.stats;
    err = "merge of dispatched shards failed: " + err;
    return false;
  }
  stats = coord.stats;
  return true;
}

}  // namespace stbpu::exp
