// The `stbpu_bench` driver: one binary that lists, describes, runs and
// merges every registered scenario — the unified replacement for the old
// per-figure bench executables (which remain as thin delegates through
// scenario_main for compatibility).
#pragma once

namespace stbpu::exp {

/// Entry point of the `stbpu_bench` binary:
///   stbpu_bench list
///   stbpu_bench describe <scenario> [run flags]
///   stbpu_bench run <scenario> [run flags]
///   stbpu_bench merge [--json=PATH] <shard.json>...
///   stbpu_bench compare OLD.json NEW.json [--ignore=...]
///   stbpu_bench worker --listen=PORT [--chaos=...] [--jobs=N] ...
///   stbpu_bench dispatch --workers=host:port,... <scenario> [run flags] ...
/// Unknown flags and malformed values are rejected with a usage message
/// and a non-zero exit code.
int driver_main(int argc, char** argv);

/// Entry point of the legacy bench executables: behaves exactly like
/// `stbpu_bench run <scenario> <argv...>`.
int scenario_main(const char* scenario, int argc, char** argv);

}  // namespace stbpu::exp
