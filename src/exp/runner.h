// Experiment runner: executes a spec's selected grid points on the shared
// thread pool, serializes results — either the final BENCH_*.json (rows
// built by the scenario's aggregate step) or an intermediate shard file —
// and merges shard files back into the exact unsharded trajectory.
//
// Determinism contract: every point writes into its own pre-allocated slot
// (scheduling cannot reorder results), aggregate only ever sees the full
// point set in grid order, and shard files persist doubles at full
// precision — so `run --shard=i/N` × N + `merge` is byte-identical to a
// single unsharded `run`.
#pragma once

#include <string>
#include <vector>

#include "exp/scenario.h"
#include "exp/spec.h"

namespace stbpu::exp {

/// Worker count: `requested` if nonzero, else hardware concurrency,
/// clamped to the job count (at least 1).
[[nodiscard]] unsigned worker_count(unsigned requested, std::size_t jobs);

/// Result of executing the spec's share of the grid.
struct RunOutcome {
  std::vector<std::string> labels;    ///< full grid, in sweep order
  std::vector<PointResult> points;    ///< full grid; only `ran` slots are live
  std::vector<std::size_t> ran;       ///< grid indices this run executed
  double seconds = 0.0;               ///< pool wall-clock (reporting only)
};

/// Run every selected-and-owned grid point of `spec` through the pool.
/// Fails (false + err) on unknown points in the selection.
bool run_experiment(const Scenario& scenario, const ExperimentSpec& spec,
                    RunOutcome& out, std::string& err);

/// Final BENCH_*.json text: scenario aggregate over the complete point set,
/// rendered in the legacy bench schema.
[[nodiscard]] std::string final_json(const Scenario& scenario, const ExperimentSpec& spec,
                                     const std::vector<PointResult>& points);

/// Intermediate shard-file text for this outcome (full-precision fields +
/// the spec, so merge can verify completeness).
[[nodiscard]] std::string shard_json(const Scenario& scenario, const ExperimentSpec& spec,
                                     const RunOutcome& outcome);

/// Union shard files into the final BENCH_*.json text. Verifies that the
/// shards agree on the spec and that the union covers the selected grid
/// exactly once. A point present in several shards is accepted when the
/// payloads are identical (straggler re-dispatch produces exactly this) and
/// rejected when they differ. `shard_names` label the inputs in error
/// messages (file paths from the CLI, endpoints from the fabric); parse and
/// validation failures name the offending input and the byte offset of the
/// bad value.
bool merge_shards(const std::vector<std::string>& shard_texts,
                  const std::vector<std::string>& shard_names, std::string& out_json,
                  std::string& out_scenario, std::string& err);
/// Convenience overload: names default to "shard 0", "shard 1", ...
bool merge_shards(const std::vector<std::string>& shard_texts, std::string& out_json,
                  std::string& out_scenario, std::string& err);

/// Whole-file convenience I/O (runner + driver + tests). Writes are
/// crash-safe: content lands in `<path>.tmp` and is renamed over `path`
/// only once complete, so a killed process can never leave a truncated
/// JSON that later poisons `merge`/`compare`, and a failed write leaves any
/// pre-existing `path` untouched.
bool write_file(const std::string& path, const std::string& content);
bool read_file(const std::string& path, std::string& out);

}  // namespace stbpu::exp
