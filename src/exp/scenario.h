// Scenario registry — the experiment API's unit of registration. Each of
// the paper's figures/tables is a named Scenario exposing
//   * a deterministic point grid (the sweep's configuration points, in
//     sweep order — the unit of thread-pool scheduling and of cross-process
//     sharding), and
//   * a point-runner producing typed fields, plus an aggregate step that
//     turns the full point set into the scenario's BENCH_*.json rows
//     (averages, normalizations, medians — anything needing every point).
// The split is what makes sharding exact: shards persist raw point fields
// (doubles at full precision), and `merge` re-runs only the aggregate.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "exp/spec.h"

namespace stbpu::exp {

/// Typed scalar field. The type tag travels through shard files so the
/// final JSON rendering (legacy BenchJson formats: %.10g doubles, decimal
/// integers, quoted strings) is reproduced exactly on merge.
class Value {
 public:
  enum class Type : std::uint8_t { kString, kDouble, kU64, kInt };

  Value() : type_(Type::kString) {}
  /* implicit */ Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  /* implicit */ Value(const char* s) : type_(Type::kString), str_(s) {}
  /* implicit */ Value(double d) : type_(Type::kDouble), num_(d) {}
  /* implicit */ Value(std::uint64_t u) : type_(Type::kU64), u64_(u) {}
  /* implicit */ Value(int i) : type_(Type::kInt), int_(i) {}
  /* implicit */ Value(bool) = delete;  // use "true"/"false" strings (legacy schema)

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] const std::string& str() const noexcept { return str_; }
  [[nodiscard]] double num() const noexcept { return num_; }
  [[nodiscard]] std::uint64_t u64() const noexcept { return u64_; }
  [[nodiscard]] int int_value() const noexcept { return int_; }

  /// Render as a JSON literal in the legacy BENCH_*.json format.
  [[nodiscard]] std::string render() const;
  /// Render for shard files: doubles at %.17g so strtod round-trips to the
  /// identical bit pattern on merge.
  [[nodiscard]] std::string render_exact() const;

 private:
  Type type_;
  std::string str_;
  double num_ = 0.0;
  std::uint64_t u64_ = 0;
  int int_ = 0;
};

struct Field {
  std::string key;
  Value value;
};

/// Raw result of one grid point: ordered named fields.
struct PointResult {
  std::vector<Field> fields;

  PointResult& set(std::string key, Value v) {
    fields.push_back({std::move(key), std::move(v)});
    return *this;
  }
  [[nodiscard]] const Value* find(std::string_view key) const {
    for (const auto& f : fields) {
      if (f.key == key) return &f.value;
    }
    return nullptr;
  }
  [[nodiscard]] double num(std::string_view key) const {
    const Value* v = find(key);
    return v == nullptr ? 0.0 : v->num();
  }
  [[nodiscard]] std::uint64_t u64(std::string_view key) const {
    const Value* v = find(key);
    return v == nullptr ? 0 : v->u64();
  }
  [[nodiscard]] std::string str(std::string_view key) const {
    const Value* v = find(key);
    return v == nullptr ? std::string{} : v->str();
  }
};

/// One output row of the final BENCH_*.json ("label" plus fields).
struct Row {
  std::string label;
  std::vector<Field> fields;

  explicit Row(std::string l) : label(std::move(l)) {}
  Row& set(std::string key, Value v) {
    fields.push_back({std::move(key), std::move(v)});
    return *this;
  }
};

/// The aggregated scenario result: deterministic meta fields (after the
/// "scale" entry) and the rows, in the legacy bench's order and schema.
struct ScenarioOutput {
  std::vector<Field> meta;
  std::vector<Row> rows;
};

class Scenario {
 public:
  virtual ~Scenario() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  /// One-line banner/description shown by `list` and `run`.
  [[nodiscard]] virtual std::string_view title() const = 0;

  /// The point grid for `spec`, in sweep order. Labels are stable
  /// identifiers (shown by `describe`, used for shard bookkeeping).
  [[nodiscard]] virtual std::vector<std::string> point_labels(
      const ExperimentSpec& spec) const = 0;

  /// Run grid point `index`. Called concurrently from the pool — must not
  /// touch shared mutable state. Exceptions are caught by the runner and
  /// fail the whole run with the point's label attached.
  [[nodiscard]] virtual PointResult run_point(const ExperimentSpec& spec,
                                              std::size_t index) const = 0;

  /// True for points whose fields are wall-clock measurements: the runner
  /// executes them sequentially on the calling thread *after* the pool
  /// drains, so Stopwatch-timed sections never share cores with
  /// simulation jobs (the old standalone benches measured throughput
  /// outside their pools; sharded/parallel runs must not distort the
  /// perf trajectory).
  [[nodiscard]] virtual bool timing_sensitive(const ExperimentSpec& spec,
                                              std::size_t index) const {
    (void)spec;
    (void)index;
    return false;
  }

  /// Build the final rows from the complete point set (indexed by grid
  /// position). Only called with every point present.
  [[nodiscard]] virtual ScenarioOutput aggregate(
      const ExperimentSpec& spec, const std::vector<PointResult>& points) const = 0;
};

/// Register a scenario (takes ownership). Names must be unique.
void register_scenario(const Scenario* scenario);
/// nullptr when unknown.
[[nodiscard]] const Scenario* find_scenario(std::string_view name);
/// All scenarios in registration order (the `list` order).
[[nodiscard]] const std::vector<const Scenario*>& all_scenarios();

/// Register the built-in scenario set (the paper's figures/tables plus the
/// engine-typed OoO fan-out study). Idempotent.
void register_builtin_scenarios();

}  // namespace stbpu::exp
