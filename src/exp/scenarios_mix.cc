// mix_batch — the keyed-mix kernel study behind the batch-native
// prediction API. detail::mix() is the residual cost of the STBPU engine
// (~0.8 compulsory R4/Rt recomputations per branch whose history-keyed
// inputs are genuinely fresh), and it can be spent in two regimes:
//   * latency-bound — one mix at a time, each stage waiting on the last
//     (what the scalar demand path pays on every memo-cache miss);
//   * throughput-bound — N independent mixes interleaved so the machine
//     overlaps their LUT loads (what the remap cache's compacted miss
//     lists pay via detail::mix_batch<N>).
// This scenario measures both regimes for both substitution-layer
// renderings (256-entry byte LUT vs 64K-entry double-byte LUT) and
// records, per point, whether the kernel's outputs were bit-identical to
// scalar mix over the same inputs — the honesty check that backs the
// equivalence contract.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/remap.h"
#include "exp/scenarios_internal.h"
#include "exp/timing.h"
#include "util/rng.h"

namespace stbpu::exp {

namespace {

constexpr std::size_t kInputRing = 4096;  ///< divisible by every lane count
constexpr std::uint64_t kMixSeed = 0x5717'B9u;

struct MixInputs {
  std::vector<std::uint64_t> lo, hi;
  std::uint32_t psi;
};

MixInputs make_inputs(const ExperimentSpec& spec) {
  MixInputs in;
  util::Xoshiro256 rng(spec.seed != 0 ? spec.seed : kMixSeed);
  in.lo.resize(kInputRing);
  in.hi.resize(kInputRing);
  for (std::size_t i = 0; i < kInputRing; ++i) {
    in.lo[i] = rng() & bpu::kVirtualAddressMask;
    in.hi[i] = rng() & 0xFFFF;  // GHR-slice-shaped second operand
  }
  in.psi = static_cast<std::uint32_t>(rng());
  return in;
}

constexpr std::uint64_t kTweak = core::Remapper::kTweakR4;

/// One measured kernel variant: runs `iters` mixes over the input ring and
/// returns the XOR checksum (prevents dead-code elimination and feeds the
/// bit-identity check).
using KernelFn = std::uint64_t (*)(const MixInputs&, std::uint64_t iters);

std::uint64_t run_scalar_latency(const MixInputs& in, std::uint64_t iters) {
  // Dependent chain: each mix's input folds in the previous output, so the
  // measured cost is the full 3-round latency — the regime the demand path
  // pays on a compulsory miss.
  std::uint64_t x = 0;
  for (std::uint64_t it = 0; it < iters; ++it) {
    const std::size_t i = static_cast<std::size_t>(it) & (kInputRing - 1);
    x = core::detail::mix(in.lo[i] ^ x, in.hi[i], in.psi, kTweak);
  }
  return x;
}

std::uint64_t run_scalar_throughput(const MixInputs& in, std::uint64_t iters) {
  std::uint64_t acc = 0;
  for (std::uint64_t it = 0; it < iters; ++it) {
    const std::size_t i = static_cast<std::size_t>(it) & (kInputRing - 1);
    acc ^= core::detail::mix(in.lo[i], in.hi[i], in.psi, kTweak);
  }
  return acc;
}

template <bool UseLut16>
std::uint64_t run_lut_latency(const MixInputs& in, std::uint64_t iters) {
  std::uint64_t x = 0;
  std::uint64_t lo, out;
  for (std::uint64_t it = 0; it < iters; ++it) {
    const std::size_t i = static_cast<std::size_t>(it) & (kInputRing - 1);
    lo = in.lo[i] ^ x;
    core::detail::mix_batch<1, UseLut16>(&lo, &in.hi[i], in.psi, kTweak, &out);
    x = out;
  }
  return x;
}

template <unsigned N, bool UseLut16>
std::uint64_t run_batch(const MixInputs& in, std::uint64_t iters) {
  std::uint64_t acc = 0;
  std::uint64_t out[N];
  for (std::uint64_t it = 0; it + N <= iters; it += N) {
    const std::size_t i = static_cast<std::size_t>(it) & (kInputRing - 1);
    core::detail::mix_batch<N, UseLut16>(&in.lo[i], &in.hi[i], in.psi, kTweak, out);
    for (unsigned j = 0; j < N; ++j) acc ^= out[j];
  }
  return acc;
}

template <unsigned N>
std::uint64_t run_batch_simd(const MixInputs& in, std::uint64_t iters) {
  // The production dispatch path: AVX2 nibble-shuffle kernel where the
  // host has it, byte-LUT lanes otherwise (the point reports which).
  std::uint64_t acc = 0;
  std::uint64_t out[N];
  for (std::uint64_t it = 0; it + N <= iters; it += N) {
    const std::size_t i = static_cast<std::size_t>(it) & (kInputRing - 1);
    core::detail::mix_batch_dispatch<N>(&in.lo[i], &in.hi[i], in.psi, kTweak, out);
    for (unsigned j = 0; j < N; ++j) acc ^= out[j];
  }
  return acc;
}

struct Variant {
  const char* label;
  const char* kernel;
  const char* regime;  ///< "latency" (dependent chain) or "throughput"
  unsigned lanes;      ///< mixes per kernel invocation (trim granularity)
  bool headline;       ///< include in the SPEEDUP-vs-scalar-latency rows
  KernelFn fn;
  KernelFn reference;  ///< scalar rendering of the identical computation
};

constexpr Variant kVariants[] = {
    {"scalar/latency", "byte-lut", "latency", 1, false, run_scalar_latency,
     run_scalar_latency},
    {"scalar/throughput", "byte-lut", "throughput", 1, false, run_scalar_throughput,
     run_scalar_throughput},
    {"lut16/latency", "lut16", "latency", 1, false, run_lut_latency<true>,
     run_scalar_latency},
    {"lut16/throughput", "lut16", "throughput", 1, false, run_batch<1, true>,
     run_scalar_throughput},
    {"batch4/byte-lut", "byte-lut", "throughput", 4, false, run_batch<4, false>,
     run_scalar_throughput},
    {"batch8/byte-lut", "byte-lut", "throughput", 8, true, run_batch<8, false>,
     run_scalar_throughput},
    {"batch4/lut16", "lut16", "throughput", 4, false, run_batch<4, true>,
     run_scalar_throughput},
    {"batch8/lut16", "lut16", "throughput", 8, true, run_batch<8, true>,
     run_scalar_throughput},
    {"batch4/simd", "simd-dispatch", "throughput", 4, false, run_batch_simd<4>,
     run_scalar_throughput},
    {"batch8/simd", "simd-dispatch", "throughput", 8, true, run_batch_simd<8>,
     run_scalar_throughput},
};
constexpr std::size_t kNumVariants = sizeof(kVariants) / sizeof(kVariants[0]);

class MixBatchScenario final : public ScenarioBase {
 public:
  MixBatchScenario()
      : ScenarioBase("mix_batch",
                     "Keyed-mix kernel study: scalar vs 16-bit-LUT vs N-lane "
                     "batched (latency vs throughput regimes)") {}

  std::vector<std::string> point_labels(const ExperimentSpec&) const override {
    std::vector<std::string> labels;
    for (const Variant& v : kVariants) labels.emplace_back(v.label);
    return labels;
  }

  bool timing_sensitive(const ExperimentSpec&, std::size_t) const override {
    return true;  // every point is a best-of-3 wall-clock measurement
  }

  PointResult run_point(const ExperimentSpec& spec, std::size_t index) const override {
    const Variant& v = kVariants[index];
    const MixInputs in = make_inputs(spec);
    // trace_branches doubles as the mix budget; clamp up to the lane count
    // so a tiny override can never trim a lane kernel to zero measured
    // mixes (division by zero → `inf` in the JSON).
    const std::uint64_t iters =
        std::max<std::uint64_t>(v.lanes, spec.scale.trace_branches);

    std::uint64_t checksum = 0;
    double secs = 1e300;
    for (unsigned rep = 0; rep < 3; ++rep) {
      Stopwatch sw;
      checksum = v.fn(in, iters);
      secs = std::min(secs, std::max(sw.seconds(), 1e-9));
    }
    // Lane kernels drop the (iters % N) tail, so the scalar reference runs
    // the identical trimmed count — the checksums compare like for like.
    const std::uint64_t trimmed = iters - iters % v.lanes;
    const std::uint64_t reference = v.reference(in, trimmed);
    const double measured = static_cast<double>(trimmed);

    PointResult p;
    p.set("kernel", v.kernel)
        .set("regime", v.regime)
        .set("lanes", std::uint64_t{v.lanes})
        .set("ns_per_mix", secs * 1e9 / measured)
        .set("mixes_per_sec", measured / secs)
        .set("checksum", checksum)
        .set("identical_to_scalar", checksum == reference ? "true" : "false");
    if (std::string(v.kernel) == "simd-dispatch") {
      p.set("simd", core::detail::mix_avx2_available() ? "avx2" : "byte-lut-fallback");
    }
    return p;
  }

  ScenarioOutput aggregate(const ExperimentSpec& spec,
                           const std::vector<PointResult>& points) const override {
    ScenarioOutput out;
    for (const std::size_t i : selected_indices(spec, points.size())) {
      Row& row = out.rows.emplace_back(kVariants[i].label);
      row.fields = points[i].fields;
    }
    // Headline ratios: the batching win over the scalar demand path — how
    // much cheaper one compulsory miss becomes once it rides a compacted
    // 8-lane batch instead of a latency-bound chain.
    if (spec.selected(0)) {
      const double scalar_ns = points[0].num("ns_per_mix");
      for (std::size_t i = 0; i < kNumVariants; ++i) {
        if (!kVariants[i].headline || !spec.selected(i)) continue;
        const double batch_ns = points[i].num("ns_per_mix");
        if (batch_ns > 0) {
          out.rows.emplace_back(std::string("SPEEDUP/") + kVariants[i].label)
              .set("vs", "scalar/latency")
              .set("speedup", scalar_ns / batch_ns);
        }
      }
    }
    return out;
  }
};

}  // namespace

namespace scenarios {

void register_mix() { register_scenario(new MixBatchScenario); }

}  // namespace scenarios

}  // namespace stbpu::exp
