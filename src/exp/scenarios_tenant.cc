// tenant_churn — the multi-tenant ψ-token service under scheduling churn:
// N tenants (1 → ≥1M) multiplexed onto the engine's bounded pid pool
// through tenant::TokenService, driven by tenant::run_churn's
// register → context-switch-storm → branchy-churn phases. Reports
// aggregate throughput, the service's scheduling/eviction counters, and
// per-tenant misprediction + lookup tails (p50/p99).
//
// The 1-tenant point is the subsystem's correctness anchor: the service's
// virgin-slot path issues zero STManager/EventMonitor calls, so its
// BranchStats must equal models::replay_engine on the identical records
// bit for bit — published as the string field "identical_stats", which the
// CI compare gate treats as fatal on mismatch.
#include <algorithm>
#include <memory>
#include <string>

#include "core/monitor.h"
#include "exp/engine_visit.h"
#include "exp/scenarios_internal.h"
#include "exp/timing.h"
#include "models/engine.h"
#include "models/models.h"
#include "sim/bpu_sim.h"
#include "tenant/churn.h"
#include "tenant/token_service.h"
#include "trace/generator.h"
#include "trace/profile.h"
#include "trace/stream.h"

namespace stbpu::exp {

namespace {

struct TenantPoint {
  const char* label;
  std::uint64_t tenants;
  std::uint32_t shard_capacity;  ///< per-shard entries (eviction pressure knob)
};

// Default service: 64 shards × 16K entries = exactly 1,048,576 managed
// contexts. The last point re-runs the 1M-tenant storm with 1/4 the
// capacity so the clock hand must continuously evict cold tenants.
constexpr TenantPoint kPoints[] = {
    {"tenants_1", 1, 1u << 14},
    {"tenants_1024", 1024, 1u << 14},
    {"tenants_32768", 32768, 1u << 14},
    {"tenants_1048576", 1u << 20, 1u << 14},
    {"tenants_1048576_evict", 1u << 20, 1u << 12},
};

/// QoS ladder rooted at the engine's own monitor config: class 0 IS that
/// config (the bit-identity contract), class 1 re-keys 8× sooner (a
/// tenant under suspected attack), class 2 8× later (a trusted batch job).
std::vector<core::MonitorConfig> qos_ladder(const core::MonitorConfig& base) {
  const auto scaled = [&](std::uint64_t num, std::uint64_t den) {
    core::MonitorConfig c = base;
    const auto mul = [&](std::uint64_t v) {
      const std::uint64_t s = v * num / den;
      return v == 0 ? std::uint64_t{0} : std::max<std::uint64_t>(s, 1);
    };
    c.misprediction_threshold = mul(base.misprediction_threshold);
    c.eviction_threshold = mul(base.eviction_threshold);
    c.tagged_misprediction_threshold = mul(base.tagged_misprediction_threshold);
    return c;
  };
  return {base, scaled(1, 8), scaled(8, 1)};
}

class TenantChurnScenario final : public ScenarioBase {
 public:
  TenantChurnScenario()
      : ScenarioBase("tenant_churn",
                     "Multi-tenant ST token service: context-switch storm, "
                     "clock-hand eviction, per-tenant QoS and tail metrics") {}

  std::vector<std::string> point_labels(const ExperimentSpec&) const override {
    std::vector<std::string> labels;
    for (const TenantPoint& p : kPoints) labels.emplace_back(p.label);
    return labels;
  }

  bool timing_sensitive(const ExperimentSpec&, std::size_t) const override {
    return true;  // every point publishes wall-clock throughput
  }

  PointResult run_point(const ExperimentSpec& spec, std::size_t index) const override {
    const TenantPoint& pt = kPoints[index];
    const std::uint64_t total = spec.scale.trace_warmup + spec.scale.trace_branches;

    tenant::ChurnConfig cfg;
    cfg.tenants = pt.tenants;
    cfg.service.shard_capacity = pt.shard_capacity;
    cfg.max_branches = spec.scale.trace_branches;
    cfg.warmup_branches = spec.scale.trace_warmup;
    // Budget the storm at ~1M context switches regardless of tenant count
    // (whole passes over the tenant set); the 1-tenant anchor skips it to
    // keep the identity run minimal.
    cfg.storm_passes =
        pt.tenants > 1 ? std::max<std::uint64_t>((1u << 20) / pt.tenants, 1) : 0;
    cfg.hot_tenants = 64;
    cfg.invalidate_every = pt.tenants > 1 ? 1024 : 0;
    if (spec.seed != 0) cfg.seed ^= spec.seed;

    // All points replay the same materialized workload, pre-stamped with
    // the service's first slot context so the 1-tenant churn records are
    // byte-identical to what the replay anchor consumes.
    trace::SyntheticWorkloadGenerator gen(trace::profile_by_name("mcf"));
    std::vector<bpu::BranchRecord> base = trace::collect(gen, total);
    const bpu::ExecContext slot0{
        .pid = cfg.service.first_pid, .hart = 0, .kernel = false};
    for (bpu::BranchRecord& r : base) r.ctx = slot0;

    const auto mspec = apply_spec_overrides({.model = models::ModelKind::kStbpu}, spec);
    PointResult p;
    tenant::ChurnResult r;
    for_each_engine(mspec, [&](auto& engine) {
      const core::MonitorConfig mon_cfg = engine.monitor() != nullptr
                                              ? engine.monitor()->config()
                                              : core::MonitorConfig{};
      r = tenant::run_churn(engine, base, cfg, qos_ladder(mon_cfg));
    });

    if (pt.tenants == 1) {
      // Bit-identity anchor: a fresh, identically-specced engine replaying
      // the same records without the tenant layer must produce the same
      // BranchStats field for field.
      auto ref_engine = models::make_engine(mspec);
      trace::VectorStream stream(base);
      const sim::BranchStats ref = models::replay_engine(
          *ref_engine, stream,
          {.max_branches = cfg.max_branches, .warmup_branches = cfg.warmup_branches});
      p.set("identical_stats", ref == r.stats ? "true" : "false");
    }

    p.set("tenants", std::uint64_t{pt.tenants})
        .set("shard_capacity", std::uint64_t{pt.shard_capacity})
        .set("branches", r.stats.branches)
        .set("mispredictions", r.stats.mispredictions)
        .set("oae", r.stats.oae())
        .set("context_switches", r.stats.context_switches)
        .set("storm_acquires", r.storm_acquires)
        .set("failed_acquires", r.failed_acquires)
        .set("tenants_touched", r.tenants_touched)
        .set("table_size", r.table_size)
        .set("registrations", r.service.registrations)
        .set("acquires", r.service.acquires)
        .set("resumes", r.service.resumes)
        .set("slot_recycles", r.service.slot_recycles)
        .set("installs", r.service.installs)
        .set("fresh_tokens", r.service.fresh_tokens)
        .set("rekeys", r.service.rekeys)
        .set("evictions", r.service.evictions)
        .set("table_full", r.service.table_full)
        .set("pid_exhausted", r.service.pid_exhausted)
        .set("invalidations", r.service.invalidations)
        .set("invalidation_entry_touches", r.service.invalidation_entry_touches)
        .set("probe_steps", r.service.probe_steps)
        .set("stm_rerandomizations", r.stm_rerandomizations)
        .set("monitor_rerandomizations", r.monitor_rerandomizations)
        .set("misp_p50", r.misp_p50)
        .set("misp_p99", r.misp_p99)
        .set("probe_p50", r.probe_p50)
        .set("probe_p99", r.probe_p99)
        .set("storm_macq_per_s",
             r.storm_seconds > 0
                 ? static_cast<double>(r.storm_acquires) / r.storm_seconds / 1e6
                 : 0.0)
        .set("churn_mbr_per_s",
             r.churn_seconds > 0
                 ? static_cast<double>(r.branches_processed) / r.churn_seconds / 1e6
                 : 0.0);
    return p;
  }

  ScenarioOutput aggregate(const ExperimentSpec& spec,
                           const std::vector<PointResult>& points) const override {
    ScenarioOutput out;
    const auto labels = point_labels(spec);
    for (const std::size_t i : selected_indices(spec, points.size())) {
      Row& row = out.rows.emplace_back(labels[i]);
      row.fields = points[i].fields;
    }
    out.meta.push_back(
        {"branches_per_point",
         Value(std::uint64_t{spec.scale.trace_warmup + spec.scale.trace_branches})});
    out.meta.push_back({"pid_slots", Value(std::uint64_t{256})});
    return out;
  }
};

}  // namespace

namespace scenarios {

void register_tenant() { register_scenario(new TenantChurnScenario); }

}  // namespace scenarios

}  // namespace stbpu::exp
