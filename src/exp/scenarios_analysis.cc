// Analytic / generator scenarios: the §VI-A5 complexity table, the
// Figure 2 remapping-function search, and the Table II remap-function
// microbenchmarks. All grid points are independent computations, so they
// shard like any sweep.
#include <cstdio>

#include "analysis/equations.h"
#include "bpu/mapping.h"
#include "core/remap.h"
#include "core/remap_cache.h"
#include "core/secret_token.h"
#include "core/stbpu_mapping.h"
#include "exp/scenarios_internal.h"
#include "exp/timing.h"
#include "remapgen/search.h"

namespace stbpu::exp {

namespace {

std::string format_r(double r) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", r);
  return buf;
}

// ---------------------------------------------------------------------------
// sec6_thresholds — §VI-A5 attack complexities + Γ = r·C thresholds.
// ---------------------------------------------------------------------------

constexpr double kThresholdRs[] = {1.0, 0.1, 0.05, 0.01, 0.001};

class Sec6ThresholdsScenario final : public ScenarioBase {
 public:
  Sec6ThresholdsScenario()
      : ScenarioBase("sec6_thresholds",
                     "Section VI-A5: attack complexities and re-randomization "
                     "thresholds") {}

  std::vector<std::string> point_labels(const ExperimentSpec&) const override {
    std::vector<std::string> labels;
    for (const auto& row : analysis::section_vi5_table()) labels.push_back(row.attack);
    for (const double r : kThresholdRs) labels.push_back("thresholds_r=" + format_r(r));
    return labels;
  }

  PointResult run_point(const ExperimentSpec&, std::size_t index) const override {
    PointResult p;
    const auto table = analysis::section_vi5_table();
    if (index < table.size()) {
      p.set("mispredictions", table[index].mispredictions)
          .set("evictions", table[index].evictions);
    } else {
      const double r = kThresholdRs[index - table.size()];
      const auto t = analysis::derive_thresholds(r);
      p.set("difficulty_r", r)
          .set("misprediction_threshold", std::uint64_t{t.mispredictions})
          .set("eviction_threshold", std::uint64_t{t.evictions});
    }
    return p;
  }

  ScenarioOutput aggregate(const ExperimentSpec& spec,
                           const std::vector<PointResult>& points) const override {
    ScenarioOutput out;
    const auto labels = point_labels(spec);
    for (const std::size_t i : selected_indices(spec, points.size())) {
      Row& row = out.rows.emplace_back(labels[i]);
      row.fields = points[i].fields;
    }
    return out;
  }
};

// ---------------------------------------------------------------------------
// fig2_remapgen — automated remapping-function generation (Table II specs).
// ---------------------------------------------------------------------------

remapgen::SearchConfig fig2_config(const Scale& scale) {
  remapgen::SearchConfig cfg;
  cfg.candidates = scale.paper ? 64 : 16;
  cfg.validation.uniformity_samples = scale.paper ? (1u << 17) : (1u << 14);
  cfg.validation.avalanche_samples = scale.paper ? 2048 : 256;
  return cfg;
}

class Fig2Scenario final : public ScenarioBase {
 public:
  Fig2Scenario()
      : ScenarioBase("fig2_remapgen",
                     "Figure 2: automated remapping-function generation "
                     "(Table II specs)") {}

  std::vector<std::string> point_labels(const ExperimentSpec&) const override {
    std::vector<std::string> labels;
    for (const auto& spec : remapgen::table2_specs()) labels.push_back(spec.name);
    return labels;
  }

  PointResult run_point(const ExperimentSpec& spec, std::size_t index) const override {
    const auto specs = remapgen::table2_specs();
    const auto r = remapgen::search(specs[index], fig2_config(spec.scale));
    PointResult p;
    if (r.best) {
      p.set("input_bits", std::uint64_t{specs[index].input_bits})
          .set("output_bits", std::uint64_t{specs[index].output_bits})
          .set("generated", std::uint64_t{r.generated})
          .set("passed", std::uint64_t{r.passed})
          .set("critical_path_transistors",
               std::uint64_t{r.best->critical_path_transistors()})
          .set("total_transistors", std::uint64_t{r.best->total_transistors()})
          .set("mean_avalanche", r.best_report.mean_avalanche)
          .set("score", r.best_report.score);
    } else {
      p.set("passed", std::uint64_t{0});
    }
    return p;
  }

  ScenarioOutput aggregate(const ExperimentSpec& spec,
                           const std::vector<PointResult>& points) const override {
    ScenarioOutput out;
    const auto labels = point_labels(spec);
    for (const std::size_t i : selected_indices(spec, points.size())) {
      Row& row = out.rows.emplace_back(labels[i]);
      row.fields = points[i].fields;
    }
    return out;
  }
};

// ---------------------------------------------------------------------------
// table2_remap_functions — per-call software cost of the R-functions
// (direct vs memo-cached). Wall-clock: rows are not shard-deterministic.
// ---------------------------------------------------------------------------

const bpu::ExecContext kCtx{.pid = 1, .hart = 0, .kernel = false};

template <class Fn>
double time_ns_per_call(Fn&& fn) {
  constexpr int kIters = 2'000'000;
  Stopwatch sw;
  std::uint64_t acc = 0;
  for (int i = 0; i < kIters; ++i) acc += fn(static_cast<std::uint64_t>(i));
  do_not_optimize(acc);
  return sw.seconds() / kIters * 1e9;
}

class Table2Scenario final : public ScenarioBase {
 public:
  Table2Scenario()
      : ScenarioBase("table2_remap_functions",
                     "Table II: remap-function per-call cost, direct vs "
                     "memo-cached") {}

  std::vector<std::string> point_labels(const ExperimentSpec&) const override {
    return {"R1_direct", "R4_direct", "R1_cached_hit", "R4_cached_churn"};
  }

  bool timing_sensitive(const ExperimentSpec&, std::size_t) const override {
    return true;  // ns_per_call microbenchmarks must not share cores
  }

  PointResult run_point(const ExperimentSpec&, std::size_t index) const override {
    PointResult p;
    switch (index) {
      case 0:
        p.set("ns_per_call", time_ns_per_call([](std::uint64_t i) {
                return core::Remapper::r1(0xDEADBEEF, 0x2345'6780ULL + 16 * i).set;
              }));
        break;
      case 1:
        p.set("ns_per_call", time_ns_per_call([](std::uint64_t i) {
                return core::Remapper::r4(0xDEADBEEF, 0x2345'6780ULL, i & 0xFFFF);
              }));
        break;
      case 2: {
        // The devirtualized engine's hot path: R1 through the memo-cache
        // with a resident working set (site-keyed lookups hit ~always).
        core::STManager stm(1);
        core::CachedStbpuMapping map(&stm);
        p.set("ns_per_call", time_ns_per_call([&](std::uint64_t i) {
                return map.btb_mode1(0x2345'6780ULL + 16 * (i & 255), kCtx).set;
              }));
        break;
      }
      case 3: {
        // History-keyed worst case: every (ip, GHR) pair fresh — the cache
        // pays the probe AND the mix, bounding its overhead.
        core::STManager stm(1);
        core::CachedStbpuMapping map(&stm);
        p.set("ns_per_call", time_ns_per_call([&](std::uint64_t i) {
                return map.pht_index_2level(0x2345'6780ULL, i, kCtx);
              }));
        break;
      }
    }
    return p;
  }

  ScenarioOutput aggregate(const ExperimentSpec& spec,
                           const std::vector<PointResult>& points) const override {
    ScenarioOutput out;
    const auto labels = point_labels(spec);
    for (const std::size_t i : selected_indices(spec, points.size())) {
      Row& row = out.rows.emplace_back(labels[i]);
      row.fields = points[i].fields;
    }
    return out;
  }
};

}  // namespace

namespace scenarios {

void register_analysis() {
  register_scenario(new Fig2Scenario);
  register_scenario(new Sec6ThresholdsScenario);
  register_scenario(new Table2Scenario);
}

}  // namespace scenarios

}  // namespace stbpu::exp
