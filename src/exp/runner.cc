#include "exp/runner.h"

#include <atomic>
#include <cstdio>
#include <functional>
#include <mutex>
#include <thread>

#include "exp/timing.h"

namespace stbpu::exp {

unsigned worker_count(unsigned requested, std::size_t jobs) {
  unsigned n = requested != 0 ? requested : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  if (jobs != 0 && n > jobs) n = static_cast<unsigned>(jobs);
  return n;
}

namespace {

/// Run every job, `workers` at a time (atomic work-stealing index). Each
/// job owns its slot, so sweeps stay deterministic regardless of
/// scheduling.
void run_parallel(const std::vector<std::function<void()>>& jobs, unsigned workers) {
  const unsigned n = worker_count(workers, jobs.size());
  if (n <= 1) {
    for (const auto& job : jobs) job();
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(n);
  for (unsigned w = 0; w < n; ++w) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < jobs.size(); i = next.fetch_add(1)) {
        jobs[i]();
      }
    });
  }
  for (auto& t : pool) t.join();
}

void append_fields_row(std::string& out, const std::vector<Field>& fields,
                       bool with_label, const std::string& label) {
  out += "{";
  bool first = true;
  if (with_label) {
    out += "\"label\": " + json_quote(label);
    first = false;
  }
  for (const auto& f : fields) {
    if (!first) out += ", ";
    first = false;
    out += json_quote(f.key) + ": " + f.value.render();
  }
  out += "}";
}

}  // namespace

bool run_experiment(const Scenario& scenario, const ExperimentSpec& spec,
                    RunOutcome& out, std::string& err) {
  out = RunOutcome{};
  out.labels = scenario.point_labels(spec);
  for (const std::size_t p : spec.points) {
    if (p >= out.labels.size()) {
      err = "point " + std::to_string(p) + " out of range (grid has " +
            std::to_string(out.labels.size()) + " points)";
      return false;
    }
  }
  out.points.resize(out.labels.size());
  out.ran = spec.owned_points(out.labels.size());
  std::vector<std::size_t> timed;
  for (const std::size_t i : out.ran) {
    if (scenario.timing_sensitive(spec, i)) timed.push_back(i);
  }

  // A run_point exception (bad trace file, I/O failure) must fail the run
  // with a message, not std::terminate a pool worker; the first error wins.
  std::mutex error_mutex;
  std::string first_error;
  const auto run_one = [&](std::size_t index) {
    try {
      out.points[index] = scenario.run_point(spec, index);
    } catch (const std::exception& e) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (first_error.empty()) {
        first_error = "point " + std::to_string(index) + " ('" + out.labels[index] +
                      "') failed: " + e.what();
      }
    }
  };

  std::vector<std::function<void()>> jobs;
  jobs.reserve(out.ran.size());
  for (const std::size_t index : out.ran) {
    if (scenario.timing_sensitive(spec, index)) continue;
    jobs.emplace_back([&run_one, index] { run_one(index); });
  }
  Stopwatch sw;
  run_parallel(jobs, spec.jobs);
  // Wall-clock-measured points run alone, after the pool drains, so their
  // Stopwatch windows never overlap simulation jobs.
  for (const std::size_t index : timed) {
    if (first_error.empty()) run_one(index);
  }
  out.seconds = sw.seconds();
  if (!first_error.empty()) {
    err = first_error;
    return false;
  }
  return true;
}

std::string final_json(const Scenario& scenario, const ExperimentSpec& spec,
                       const std::vector<PointResult>& points) {
  const ScenarioOutput output = scenario.aggregate(spec, points);
  std::string out = "{\n  \"bench\": " + json_quote(std::string(scenario.name())) + ",\n";
  out += "  \"scale\": " + json_quote(spec.scale.name()) + ",\n";
  for (const auto& f : output.meta) {
    out += "  " + json_quote(f.key) + ": " + f.value.render() + ",\n";
  }
  out += "  \"rows\": [";
  for (std::size_t i = 0; i < output.rows.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    append_fields_row(out, output.rows[i].fields, /*with_label=*/true,
                      output.rows[i].label);
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string shard_json(const Scenario& scenario, const ExperimentSpec& spec,
                       const RunOutcome& outcome) {
  std::string out = "{\n  \"format\": \"stbpu-shard-v1\",\n";
  out += "  \"bench\": " + json_quote(std::string(scenario.name())) + ",\n";
  out += "  \"spec\": " + spec.to_json(/*with_shard=*/true) + ",\n";
  out += "  \"points\": [";
  bool first = true;
  for (const std::size_t index : outcome.ran) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"index\": " + std::to_string(index) +
           ", \"label\": " + json_quote(outcome.labels[index]) + ", \"fields\": [";
    const auto& fields = outcome.points[index].fields;
    for (std::size_t j = 0; j < fields.size(); ++j) {
      if (j != 0) out += ", ";
      const char* tag = "s";
      switch (fields[j].value.type()) {
        case Value::Type::kString: tag = "s"; break;
        case Value::Type::kDouble: tag = "d"; break;
        case Value::Type::kU64: tag = "u"; break;
        case Value::Type::kInt: tag = "i"; break;
      }
      // Split concatenation (GCC 12 -Wrestrict false positive on
      // `"lit" + std::string&&` chains).
      out += "[";
      out += json_quote(fields[j].key);
      out += ", \"";
      out += tag;
      out += "\", ";
      out += fields[j].value.type() == Value::Type::kString
                 ? json_quote(fields[j].value.str())
                 : fields[j].value.render_exact();
      out += "]";
    }
    out += "]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

namespace {

bool parse_shard_field(const JsonValue& v, Field& out, std::string& err) {
  if (!v.is_array() || v.items().size() != 3 || !v.items()[0].is_string() ||
      !v.items()[1].is_string()) {
    err = "malformed shard field (expected [key, type, value])";
    return false;
  }
  out.key = v.items()[0].text();
  const std::string& tag = v.items()[1].text();
  const JsonValue& val = v.items()[2];
  if (tag == "s") {
    if (!val.is_string()) {
      err = "shard field '" + out.key + "': expected string value";
      return false;
    }
    out.value = Value(val.text());
  } else if (tag == "d") {
    if (!val.is_number()) {
      err = "shard field '" + out.key + "': expected numeric value";
      return false;
    }
    out.value = Value(val.as_double());
  } else if (tag == "u") {
    if (!val.is_number() || val.text().find_first_of("-+.eE") != std::string::npos) {
      err = "shard field '" + out.key + "': expected non-negative integer value";
      return false;
    }
    out.value = Value(val.as_u64());
  } else if (tag == "i") {
    if (!val.is_number()) {
      err = "shard field '" + out.key + "': expected integer value";
      return false;
    }
    out.value = Value(static_cast<int>(val.as_long()));
  } else {
    err = "shard field '" + out.key + "': unknown type tag '" + tag + "'";
    return false;
  }
  return true;
}

}  // namespace

namespace {

/// Exact equality of two parsed point payloads (key order, type tags and
/// bit-identical values — %.17g rendering uniquely identifies doubles).
/// Straggler re-dispatch legitimately produces byte-identical duplicates;
/// anything else claiming the same shard slot is corruption.
bool same_point(const PointResult& a, const PointResult& b) {
  if (a.fields.size() != b.fields.size()) return false;
  for (std::size_t i = 0; i < a.fields.size(); ++i) {
    const Field& fa = a.fields[i];
    const Field& fb = b.fields[i];
    if (fa.key != fb.key || fa.value.type() != fb.value.type()) return false;
    if (fa.value.type() == Value::Type::kString) {
      if (fa.value.str() != fb.value.str()) return false;
    } else if (fa.value.render_exact() != fb.value.render_exact()) {
      return false;
    }
  }
  return true;
}

std::string at_offset(const JsonValue& v) {
  return " (at byte offset " + std::to_string(v.offset()) + ")";
}

}  // namespace

bool merge_shards(const std::vector<std::string>& shard_texts, std::string& out_json,
                  std::string& out_scenario, std::string& err) {
  std::vector<std::string> names(shard_texts.size());
  for (std::size_t i = 0; i < names.size(); ++i) names[i] = "shard " + std::to_string(i);
  return merge_shards(shard_texts, names, out_json, out_scenario, err);
}

bool merge_shards(const std::vector<std::string>& shard_texts,
                  const std::vector<std::string>& shard_names, std::string& out_json,
                  std::string& out_scenario, std::string& err) {
  if (shard_texts.empty()) {
    err = "no shard files to merge";
    return false;
  }
  if (shard_names.size() != shard_texts.size()) {
    err = "shard name/text count mismatch";
    return false;
  }

  ExperimentSpec spec;
  bool have_spec = false;
  std::vector<PointResult> points;
  std::vector<bool> have_point;
  std::vector<std::string> labels;
  const Scenario* scenario = nullptr;

  for (std::size_t si = 0; si < shard_texts.size(); ++si) {
    const std::string& where = shard_names[si];
    JsonValue doc;
    if (!json_parse(shard_texts[si], doc, err)) {
      err = where + ": " + err;
      return false;
    }
    const JsonValue* format = doc.find("format");
    if (format == nullptr || format->text() != "stbpu-shard-v1") {
      err = where + ": not a stbpu shard file (missing format tag)" +
            at_offset(format != nullptr ? *format : doc);
      return false;
    }
    const JsonValue* spec_v = doc.find("spec");
    if (spec_v == nullptr) {
      err = where + ": missing spec" + at_offset(doc);
      return false;
    }
    ExperimentSpec shard_spec;
    if (!ExperimentSpec::from_json(*spec_v, shard_spec, err)) {
      err = where + ": " + err + at_offset(*spec_v);
      return false;
    }
    if (!have_spec) {
      spec = shard_spec;
      // Shard identity and worker count are execution details, not sweep
      // identity — shards run with different --jobs still merge.
      spec.shard_index = 0;
      spec.shard_count = 1;
      spec.jobs = 0;
      have_spec = true;
      scenario = find_scenario(spec.scenario);
      if (scenario == nullptr) {
        err = where + ": unknown scenario '" + spec.scenario + "'";
        return false;
      }
      labels = scenario->point_labels(spec);
      points.resize(labels.size());
      have_point.assign(labels.size(), false);
    } else {
      ExperimentSpec normalized = shard_spec;
      normalized.shard_index = 0;
      normalized.shard_count = 1;
      normalized.jobs = 0;
      if (!(normalized == spec)) {
        err = where + ": spec differs from the first shard's (same sweep required)" +
              at_offset(*spec_v);
        return false;
      }
    }

    const JsonValue* pts = doc.find("points");
    if (pts == nullptr || !pts->is_array()) {
      err = where + ": missing points array" + at_offset(doc);
      return false;
    }
    for (const JsonValue& pv : pts->items()) {
      const JsonValue* index_v = pv.find("index");
      const JsonValue* label_v = pv.find("label");
      const JsonValue* fields_v = pv.find("fields");
      if (index_v == nullptr || label_v == nullptr || fields_v == nullptr ||
          !fields_v->is_array()) {
        err = where + ": malformed point entry" + at_offset(pv);
        return false;
      }
      const std::size_t index = static_cast<std::size_t>(index_v->as_u64());
      if (index >= labels.size()) {
        err = where + ": point index " + std::to_string(index) + " out of range" +
              at_offset(*index_v);
        return false;
      }
      if (labels[index] != label_v->text()) {
        err = where + ": point " + std::to_string(index) + " label '" +
              label_v->text() + "' does not match grid label '" + labels[index] + "'" +
              at_offset(*label_v);
        return false;
      }
      PointResult pr;
      for (const JsonValue& fv : fields_v->items()) {
        Field f;
        if (!parse_shard_field(fv, f, err)) {
          err = where + ": " + err + at_offset(fv);
          return false;
        }
        pr.fields.push_back(std::move(f));
      }
      if (have_point[index]) {
        // Duplicate-identical is legitimate (a straggler's re-dispatched
        // shard landing twice); duplicate-but-different is corruption and
        // must never be silently resolved either way.
        if (same_point(points[index], pr)) continue;
        err = where + ": point " + std::to_string(index) + " ('" + labels[index] +
              "') duplicated with a different payload" + at_offset(pv);
        return false;
      }
      points[index] = std::move(pr);
      have_point[index] = true;
    }
  }

  // Completeness: the union must cover the selected grid exactly.
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (spec.selected(i) && !have_point[i]) {
      err = "incomplete merge: point " + std::to_string(i) + " ('" + labels[i] +
            "') missing from every shard";
      return false;
    }
  }

  out_json = final_json(*scenario, spec, points);
  out_scenario = spec.scenario;
  return true;
}

bool write_file(const std::string& path, const std::string& content) {
  // Crash-safe: write the complete content to <path>.tmp, then rename over
  // the target. A process killed mid-write leaves at worst a stale .tmp —
  // never a truncated BENCH/shard JSON at `path` that a later merge or
  // compare would choke on — and a failed write leaves an existing `path`
  // untouched.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = content.empty() || std::fwrite(content.data(), content.size(), 1, f) == 1;
  ok = std::fflush(f) == 0 && ok;
  ok = std::fclose(f) == 0 && ok;
  if (ok) ok = std::rename(tmp.c_str(), path.c_str()) == 0;
  if (!ok) std::remove(tmp.c_str());
  return ok;
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out.clear();
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace stbpu::exp
