#include "exp/runner.h"

#include <atomic>
#include <cstdio>
#include <functional>
#include <mutex>
#include <thread>

#include "exp/timing.h"

namespace stbpu::exp {

unsigned worker_count(unsigned requested, std::size_t jobs) {
  unsigned n = requested != 0 ? requested : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  if (jobs != 0 && n > jobs) n = static_cast<unsigned>(jobs);
  return n;
}

namespace {

/// Run every job, `workers` at a time (atomic work-stealing index). Each
/// job owns its slot, so sweeps stay deterministic regardless of
/// scheduling.
void run_parallel(const std::vector<std::function<void()>>& jobs, unsigned workers) {
  const unsigned n = worker_count(workers, jobs.size());
  if (n <= 1) {
    for (const auto& job : jobs) job();
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(n);
  for (unsigned w = 0; w < n; ++w) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < jobs.size(); i = next.fetch_add(1)) {
        jobs[i]();
      }
    });
  }
  for (auto& t : pool) t.join();
}

void append_fields_row(std::string& out, const std::vector<Field>& fields,
                       bool with_label, const std::string& label) {
  out += "{";
  bool first = true;
  if (with_label) {
    out += "\"label\": " + json_quote(label);
    first = false;
  }
  for (const auto& f : fields) {
    if (!first) out += ", ";
    first = false;
    out += json_quote(f.key) + ": " + f.value.render();
  }
  out += "}";
}

}  // namespace

bool run_experiment(const Scenario& scenario, const ExperimentSpec& spec,
                    RunOutcome& out, std::string& err) {
  out = RunOutcome{};
  out.labels = scenario.point_labels(spec);
  for (const std::size_t p : spec.points) {
    if (p >= out.labels.size()) {
      err = "point " + std::to_string(p) + " out of range (grid has " +
            std::to_string(out.labels.size()) + " points)";
      return false;
    }
  }
  out.points.resize(out.labels.size());
  out.ran = spec.owned_points(out.labels.size());
  std::vector<std::size_t> timed;
  for (const std::size_t i : out.ran) {
    if (scenario.timing_sensitive(spec, i)) timed.push_back(i);
  }

  // A run_point exception (bad trace file, I/O failure) must fail the run
  // with a message, not std::terminate a pool worker; the first error wins.
  std::mutex error_mutex;
  std::string first_error;
  const auto run_one = [&](std::size_t index) {
    try {
      out.points[index] = scenario.run_point(spec, index);
    } catch (const std::exception& e) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (first_error.empty()) {
        first_error = "point " + std::to_string(index) + " ('" + out.labels[index] +
                      "') failed: " + e.what();
      }
    }
  };

  std::vector<std::function<void()>> jobs;
  jobs.reserve(out.ran.size());
  for (const std::size_t index : out.ran) {
    if (scenario.timing_sensitive(spec, index)) continue;
    jobs.emplace_back([&run_one, index] { run_one(index); });
  }
  Stopwatch sw;
  run_parallel(jobs, spec.jobs);
  // Wall-clock-measured points run alone, after the pool drains, so their
  // Stopwatch windows never overlap simulation jobs.
  for (const std::size_t index : timed) {
    if (first_error.empty()) run_one(index);
  }
  out.seconds = sw.seconds();
  if (!first_error.empty()) {
    err = first_error;
    return false;
  }
  return true;
}

std::string final_json(const Scenario& scenario, const ExperimentSpec& spec,
                       const std::vector<PointResult>& points) {
  const ScenarioOutput output = scenario.aggregate(spec, points);
  std::string out = "{\n  \"bench\": " + json_quote(std::string(scenario.name())) + ",\n";
  out += "  \"scale\": " + json_quote(spec.scale.name()) + ",\n";
  for (const auto& f : output.meta) {
    out += "  " + json_quote(f.key) + ": " + f.value.render() + ",\n";
  }
  out += "  \"rows\": [";
  for (std::size_t i = 0; i < output.rows.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    append_fields_row(out, output.rows[i].fields, /*with_label=*/true,
                      output.rows[i].label);
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string shard_json(const Scenario& scenario, const ExperimentSpec& spec,
                       const RunOutcome& outcome) {
  std::string out = "{\n  \"format\": \"stbpu-shard-v1\",\n";
  out += "  \"bench\": " + json_quote(std::string(scenario.name())) + ",\n";
  out += "  \"spec\": " + spec.to_json(/*with_shard=*/true) + ",\n";
  out += "  \"points\": [";
  bool first = true;
  for (const std::size_t index : outcome.ran) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"index\": " + std::to_string(index) +
           ", \"label\": " + json_quote(outcome.labels[index]) + ", \"fields\": [";
    const auto& fields = outcome.points[index].fields;
    for (std::size_t j = 0; j < fields.size(); ++j) {
      if (j != 0) out += ", ";
      const char* tag = "s";
      switch (fields[j].value.type()) {
        case Value::Type::kString: tag = "s"; break;
        case Value::Type::kDouble: tag = "d"; break;
        case Value::Type::kU64: tag = "u"; break;
        case Value::Type::kInt: tag = "i"; break;
      }
      // Split concatenation (GCC 12 -Wrestrict false positive on
      // `"lit" + std::string&&` chains).
      out += "[";
      out += json_quote(fields[j].key);
      out += ", \"";
      out += tag;
      out += "\", ";
      out += fields[j].value.type() == Value::Type::kString
                 ? json_quote(fields[j].value.str())
                 : fields[j].value.render_exact();
      out += "]";
    }
    out += "]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

namespace {

bool parse_shard_field(const JsonValue& v, Field& out, std::string& err) {
  if (!v.is_array() || v.items().size() != 3 || !v.items()[0].is_string() ||
      !v.items()[1].is_string()) {
    err = "malformed shard field (expected [key, type, value])";
    return false;
  }
  out.key = v.items()[0].text();
  const std::string& tag = v.items()[1].text();
  const JsonValue& val = v.items()[2];
  if (tag == "s") {
    if (!val.is_string()) {
      err = "shard field '" + out.key + "': expected string value";
      return false;
    }
    out.value = Value(val.text());
  } else if (tag == "d") {
    if (!val.is_number()) {
      err = "shard field '" + out.key + "': expected numeric value";
      return false;
    }
    out.value = Value(val.as_double());
  } else if (tag == "u") {
    if (!val.is_number() || val.text().find_first_of("-+.eE") != std::string::npos) {
      err = "shard field '" + out.key + "': expected non-negative integer value";
      return false;
    }
    out.value = Value(val.as_u64());
  } else if (tag == "i") {
    if (!val.is_number()) {
      err = "shard field '" + out.key + "': expected integer value";
      return false;
    }
    out.value = Value(static_cast<int>(val.as_long()));
  } else {
    err = "shard field '" + out.key + "': unknown type tag '" + tag + "'";
    return false;
  }
  return true;
}

}  // namespace

bool merge_shards(const std::vector<std::string>& shard_texts, std::string& out_json,
                  std::string& out_scenario, std::string& err) {
  if (shard_texts.empty()) {
    err = "no shard files to merge";
    return false;
  }

  ExperimentSpec spec;
  bool have_spec = false;
  std::vector<PointResult> points;
  std::vector<bool> have_point;
  std::vector<std::string> labels;
  const Scenario* scenario = nullptr;

  for (std::size_t si = 0; si < shard_texts.size(); ++si) {
    const std::string where = "shard " + std::to_string(si);
    JsonValue doc;
    if (!json_parse(shard_texts[si], doc, err)) {
      err = where + ": " + err;
      return false;
    }
    const JsonValue* format = doc.find("format");
    if (format == nullptr || format->text() != "stbpu-shard-v1") {
      err = where + ": not a stbpu shard file (missing format tag)";
      return false;
    }
    const JsonValue* spec_v = doc.find("spec");
    if (spec_v == nullptr) {
      err = where + ": missing spec";
      return false;
    }
    ExperimentSpec shard_spec;
    if (!ExperimentSpec::from_json(*spec_v, shard_spec, err)) {
      err = where + ": " + err;
      return false;
    }
    if (!have_spec) {
      spec = shard_spec;
      // Shard identity and worker count are execution details, not sweep
      // identity — shards run with different --jobs still merge.
      spec.shard_index = 0;
      spec.shard_count = 1;
      spec.jobs = 0;
      have_spec = true;
      scenario = find_scenario(spec.scenario);
      if (scenario == nullptr) {
        err = where + ": unknown scenario '" + spec.scenario + "'";
        return false;
      }
      labels = scenario->point_labels(spec);
      points.resize(labels.size());
      have_point.assign(labels.size(), false);
    } else {
      ExperimentSpec normalized = shard_spec;
      normalized.shard_index = 0;
      normalized.shard_count = 1;
      normalized.jobs = 0;
      if (!(normalized == spec)) {
        err = where + ": spec differs from the first shard's (same sweep required)";
        return false;
      }
    }

    const JsonValue* pts = doc.find("points");
    if (pts == nullptr || !pts->is_array()) {
      err = where + ": missing points array";
      return false;
    }
    for (const JsonValue& pv : pts->items()) {
      const JsonValue* index_v = pv.find("index");
      const JsonValue* label_v = pv.find("label");
      const JsonValue* fields_v = pv.find("fields");
      if (index_v == nullptr || label_v == nullptr || fields_v == nullptr ||
          !fields_v->is_array()) {
        err = where + ": malformed point entry";
        return false;
      }
      const std::size_t index = static_cast<std::size_t>(index_v->as_u64());
      if (index >= labels.size()) {
        err = where + ": point index " + std::to_string(index) + " out of range";
        return false;
      }
      if (labels[index] != label_v->text()) {
        err = where + ": point " + std::to_string(index) + " label '" +
              label_v->text() + "' does not match grid label '" + labels[index] + "'";
        return false;
      }
      if (have_point[index]) {
        err = where + ": duplicate point " + std::to_string(index) + " ('" +
              labels[index] + "')";
        return false;
      }
      PointResult pr;
      for (const JsonValue& fv : fields_v->items()) {
        Field f;
        if (!parse_shard_field(fv, f, err)) {
          err = where + ": " + err;
          return false;
        }
        pr.fields.push_back(std::move(f));
      }
      points[index] = std::move(pr);
      have_point[index] = true;
    }
  }

  // Completeness: the union must cover the selected grid exactly.
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (spec.selected(i) && !have_point[i]) {
      err = "incomplete merge: point " + std::to_string(i) + " ('" + labels[i] +
            "') missing from every shard";
      return false;
    }
  }

  out_json = final_json(*scenario, spec, points);
  out_scenario = spec.scenario;
  return true;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      content.empty() || std::fwrite(content.data(), content.size(), 1, f) == 1;
  std::fclose(f);
  return ok;
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out.clear();
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace stbpu::exp
