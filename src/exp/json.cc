#include "exp/json.h"

#include <cstdio>
#include <cstdlib>

namespace stbpu::exp {

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

double JsonValue::as_double() const { return std::strtod(text_.c_str(), nullptr); }

std::uint64_t JsonValue::as_u64() const {
  return std::strtoull(text_.c_str(), nullptr, 10);
}

long JsonValue::as_long() const { return std::strtol(text_.c_str(), nullptr, 10); }

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string& err) : s_(text), err_(err) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing characters after JSON value");
    return true;
  }

 private:
  bool fail(const std::string& what) {
    err_ = what + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= s_.size(); }
  [[nodiscard]] char peek() const { return s_[pos_]; }

  bool literal(const char* word, JsonValue& out, JsonValue::Type type, bool b) {
    const std::size_t len = std::string(word).size();
    if (s_.compare(pos_, len, word) != 0) return fail("bad literal");
    pos_ += len;
    out.type_ = type;
    out.bool_ = b;
    return true;
  }

  bool string_body(std::string& out) {
    ++pos_;  // opening quote
    while (true) {
      if (at_end()) return fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (at_end()) return fail("unterminated escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return fail("short \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("bad \\u escape");
              }
            }
            // The writers only emit \u00xx control escapes; decode the
            // BMP point as UTF-8 for completeness.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!at_end() && (peek() == '-' || peek() == '+')) ++pos_;
    bool digits = false;
    const auto eat_digits = [&] {
      while (!at_end() && peek() >= '0' && peek() <= '9') {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (!at_end() && peek() == '.') {
      ++pos_;
      eat_digits();
    }
    if (!digits) return fail("bad number");
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '-' || peek() == '+')) ++pos_;
      bool exp_digits = false;
      while (!at_end() && peek() >= '0' && peek() <= '9') {
        ++pos_;
        exp_digits = true;
      }
      if (!exp_digits) return fail("bad exponent");
    }
    out.type_ = JsonValue::Type::kNumber;
    out.text_ = s_.substr(start, pos_ - start);
    return true;
  }

  bool value(JsonValue& out) {
    if (at_end()) return fail("unexpected end of input");
    // Bounded nesting: malformed/hostile input must produce a parse error,
    // not exhaust the stack (this parser also reads --spec and shard files).
    if (depth_ >= kMaxDepth) return fail("nesting too deep");
    out.offset_ = pos_;
    ++depth_;
    const bool ok = value_inner(out);
    --depth_;
    return ok;
  }

  bool value_inner(JsonValue& out) {
    switch (peek()) {
      case 'n': return literal("null", out, JsonValue::Type::kNull, false);
      case 't': return literal("true", out, JsonValue::Type::kBool, true);
      case 'f': return literal("false", out, JsonValue::Type::kBool, false);
      case '"':
        out.type_ = JsonValue::Type::kString;
        return string_body(out.text_);
      case '[': {
        ++pos_;
        out.type_ = JsonValue::Type::kArray;
        skip_ws();
        if (!at_end() && peek() == ']') {
          ++pos_;
          return true;
        }
        while (true) {
          JsonValue item;
          skip_ws();
          if (!value(item)) return false;
          out.items_.push_back(std::move(item));
          skip_ws();
          if (at_end()) return fail("unterminated array");
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          if (peek() == ']') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '{': {
        ++pos_;
        out.type_ = JsonValue::Type::kObject;
        skip_ws();
        if (!at_end() && peek() == '}') {
          ++pos_;
          return true;
        }
        while (true) {
          skip_ws();
          if (at_end() || peek() != '"') return fail("expected object key");
          std::string key;
          if (!string_body(key)) return false;
          skip_ws();
          if (at_end() || peek() != ':') return fail("expected ':'");
          ++pos_;
          skip_ws();
          JsonValue member;
          if (!value(member)) return false;
          out.members_.emplace_back(std::move(key), std::move(member));
          skip_ws();
          if (at_end()) return fail("unterminated object");
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          if (peek() == '}') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      default:
        return number(out);
    }
  }

  static constexpr int kMaxDepth = 96;

  const std::string& s_;
  std::string& err_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

bool json_parse(const std::string& text, JsonValue& out, std::string& err) {
  out = JsonValue{};
  return JsonParser(text, err).parse(out);
}

}  // namespace stbpu::exp
