// Cycle-level (OoO) scenarios: Figures 4-6 and the engine-typed fan-out
// study. Every simulated point goes through exp::for_each_engine — the
// concrete EngineT<Mapping, Direction> is recovered once per run and
// sim::run_ooo instantiates the cycle-level core on it, so the per-branch
// access()/on_switch() path is fully devirtualized (the trace-replay
// equivalent of models::replay_engine).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "core/monitor.h"
#include "exp/engine_visit.h"
#include "exp/scenarios_internal.h"
#include "exp/timing.h"
#include "models/engine.h"
#include "models/models.h"
#include "sim/bpu_sim.h"
#include "sim/ooo.h"
#include "trace/generator.h"
#include "trace/instr.h"
#include "trace/pregen.h"
#include "trace/profile.h"
#include "trace/stream.h"

namespace stbpu::exp {

namespace {

// ---------------------------------------------------------------------------
// Instruction sources. Every cycle-level point replays a deterministic
// (profile, seed) instruction stream; at CI/quick scales the stream is a
// pregenerated whole-run SoA artifact shared across arms, repetitions and
// sweep points (trace::shared_instr_trace — generated once per process),
// which the cores consume zero-copy through their lookahead windows. Very
// large budgets fall back to on-the-fly generation (a paper-scale 100M
// instruction artifact would be several GB); records are bit-identical
// either way, so the fallback changes wall-clock only.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kPregenMaxInstrs = 4'000'000;

std::uint64_t pregen_instr_count(const ExperimentSpec& spec) {
  // Upper bound on per-thread consumption: warm-up + measured budget plus
  // the lookahead window's prefetch slack (frontend_depth × width, far
  // below 4096 for any config used here). The cores stop at their budgets,
  // so a stream at least this long is indistinguishable from an infinite
  // generator.
  return spec.scale.ooo_warmup + spec.scale.ooo_instructions + 4096;
}

bool pregen_enabled(const ExperimentSpec& spec) {
  return pregen_instr_count(spec) <= kPregenMaxInstrs;
}

/// Hand `fn` an InstrStream positioned at the start of `profile`'s stream:
/// a fresh cursor over the shared pregenerated artifact when the budget
/// fits the pregen cap, a fresh generator otherwise.
template <class Fn>
void with_instr_stream(const ExperimentSpec& spec, const trace::WorkloadProfile& profile,
                       Fn&& fn) {
  if (pregen_enabled(spec)) {
    trace::InstrTraceStream stream(
        trace::shared_instr_trace(profile, pregen_instr_count(spec)));
    fn(stream);
  } else {
    trace::SyntheticInstrGenerator gen(profile);
    fn(gen);
  }
}

constexpr models::DirectionKind kDirs[] = {
    models::DirectionKind::kPerceptron, models::DirectionKind::kSklCond,
    models::DirectionKind::kTage64, models::DirectionKind::kTage8};
constexpr const char* kDirNames[] = {"PerceptronBP", "SKLCond", "TAGE_SC_L_64KB",
                                     "TAGE_SC_L_8KB"};

models::ModelSpec with_seed(models::ModelSpec mspec, const ExperimentSpec& spec) {
  return apply_spec_overrides(mspec, spec);
}

// The defense arms of the rival study (§VII plus the CIBPU / XOR-isolation
// rivals from the registry). STBPU stays arm 0 so every cell's legacy
// unsuffixed fields keep their values; rival arms add `<kind>_`-prefixed
// copies of the same fields alongside them.
constexpr models::ModelKind kDefenseArms[] = {models::ModelKind::kStbpu,
                                              models::ModelKind::kCibpu,
                                              models::ModelKind::kXorIsolation};
constexpr std::size_t kNumDefenseArms = sizeof(kDefenseArms) / sizeof(kDefenseArms[0]);

/// Per-arm cell result: {dir reduction, tgt reduction, norm IPC} relative
/// to the unprotected run.
struct OooCell {
  double dred = 0.0, tred = 0.0, nipc = 0.0;
};

/// One figure cell across every defense arm (shared unprotected baseline).
struct MultiArmCell {
  OooCell arm[kNumDefenseArms];
};

/// `<kind>_` field prefix for defense arm `a` (empty for STBPU, whose
/// fields keep the legacy unsuffixed names).
std::string arm_prefix(std::size_t a) {
  return a == 0 ? std::string{} : models::to_string(kDefenseArms[a]) + "_";
}

/// Single-workload cell: one unprotected cycle-level run plus one per
/// defense arm, all on the concrete engine type.
MultiArmCell run_single_cell(const ExperimentSpec& spec,
                             const trace::WorkloadProfile& profile,
                             models::DirectionKind dir) {
  double dirr = 0, tgt = 0, ipc = 0;
  const auto measure = [&](models::ModelKind kind) {
    const auto mspec = with_seed({.model = kind, .direction = dir}, spec);
    for_each_engine(mspec, [&](auto& engine) {
      with_instr_stream(spec, profile, [&](trace::InstrStream& stream) {
        const auto r = sim::run_ooo({}, engine, {&stream}, spec.scale.ooo_instructions,
                                    spec.scale.ooo_warmup);
        dirr = r.branch_stats[0].direction_rate();
        tgt = r.branch_stats[0].target_rate();
        ipc = r.ipc[0];
      });
    });
  };
  measure(models::ModelKind::kUnprotected);
  const double base_dir = dirr, base_tgt = tgt, base_ipc = ipc;
  MultiArmCell out;
  for (std::size_t a = 0; a < kNumDefenseArms; ++a) {
    measure(kDefenseArms[a]);
    out.arm[a] = {.dred = base_dir - dirr,
                  .tred = base_tgt - tgt,
                  .nipc = base_ipc > 0 ? ipc / base_ipc : 0.0};
  }
  return out;
}

/// SMT-pair cell (two workloads sharing one BPU), same engine-typed path.
MultiArmCell run_smt_cell(const ExperimentSpec& spec, const trace::WorkloadProfile& p0,
                          const trace::WorkloadProfile& p1, models::DirectionKind dir) {
  double dirr = 0, tgt = 0, hipc = 0;
  const auto measure = [&](models::ModelKind kind) {
    const auto mspec = with_seed({.model = kind, .direction = dir}, spec);
    for_each_engine(mspec, [&](auto& engine) {
      with_instr_stream(spec, p0, [&](trace::InstrStream& s0) {
        with_instr_stream(spec, p1, [&](trace::InstrStream& s1) {
          const auto r = sim::run_ooo({}, engine, {&s0, &s1},
                                      spec.scale.ooo_instructions, spec.scale.ooo_warmup);
          const auto combined = r.combined_stats();
          dirr = combined.direction_rate();
          tgt = combined.target_rate();
          hipc = r.ipc_harmonic_mean();
        });
      });
    });
  };
  measure(models::ModelKind::kUnprotected);
  const double base_dir = dirr, base_tgt = tgt, base_ipc = hipc;
  MultiArmCell out;
  for (std::size_t a = 0; a < kNumDefenseArms; ++a) {
    measure(kDefenseArms[a]);
    out.arm[a] = {.dred = base_dir - dirr,
                  .tred = base_tgt - tgt,
                  .nipc = base_ipc > 0 ? hipc / base_ipc : 0.0};
  }
  return out;
}

/// Emit a three-way cell's fields: unsuffixed STBPU values first (legacy
/// schema, value-stable under the compare gate), then the rivals'
/// prefixed copies.
void set_cell_fields(PointResult& p, const MultiArmCell& c, const char* ipc_field) {
  for (std::size_t a = 0; a < kNumDefenseArms; ++a) {
    const std::string prefix = arm_prefix(a);
    p.set(prefix + "direction_reduction", c.arm[a].dred)
        .set(prefix + "target_reduction", c.arm[a].tred)
        .set(prefix + ipc_field, c.arm[a].nipc);
  }
}

// ---------------------------------------------------------------------------
// fig4_single — single-workload evaluation + engine throughput section.
// ---------------------------------------------------------------------------

constexpr models::ModelKind kThroughputModels[] = {
    models::ModelKind::kUnprotected, models::ModelKind::kStbpu,
    models::ModelKind::kStbpu,       models::ModelKind::kStbpu,
    models::ModelKind::kCibpu,       models::ModelKind::kXorIsolation};
constexpr models::DirectionKind kThroughputDirs[] = {
    models::DirectionKind::kSklCond,    models::DirectionKind::kSklCond,
    models::DirectionKind::kPerceptron, models::DirectionKind::kTage8,
    models::DirectionKind::kSklCond,    models::DirectionKind::kSklCond};
constexpr std::size_t kNumThroughput = 6;

class Fig4Scenario final : public ScenarioBase {
 public:
  Fig4Scenario()
      : ScenarioBase("fig4_single",
                     "Figure 4: single-workload gem5-style evaluation "
                     "(Table IV config)") {}

  std::vector<std::string> point_labels(const ExperimentSpec&) const override {
    std::vector<std::string> labels;
    for (std::size_t t = 0; t < kNumThroughput; ++t) {
      labels.push_back("throughput/" + models::to_string(kThroughputModels[t]) + "/" +
                       models::to_string(kThroughputDirs[t]));
    }
    for (const auto& profile : trace::figure4_profiles()) {
      for (const char* d : kDirNames) labels.push_back(profile.name + "/" + d);
    }
    return labels;
  }

  bool timing_sensitive(const ExperimentSpec&, std::size_t index) const override {
    return index < kNumThroughput;  // Stopwatch-timed replay throughput
  }

  PointResult run_point(const ExperimentSpec& spec, std::size_t index) const override {
    PointResult p;
    if (index < kNumThroughput) {
      // Replay throughput of the devirtualized + remap-cached engine vs the
      // virtual-dispatch BpuModel on an identical materialized trace.
      const auto mspec = with_seed(
          {.model = kThroughputModels[index], .direction = kThroughputDirs[index]}, spec);
      const sim::BpuSimOptions opt{.max_branches = spec.scale.trace_branches,
                                   .warmup_branches = spec.scale.trace_warmup};
      trace::SyntheticWorkloadGenerator gen(trace::profile_by_name("mcf"));
      trace::VectorStream stream(
          trace::collect(gen, opt.warmup_branches + opt.max_branches));
      const double branches =
          static_cast<double>(opt.warmup_branches + opt.max_branches);

      // Interleave repetitions of all three arms and keep each arm's best
      // time; every repetition rebuilds its model so all start cold. The
      // third arm replays the same devirtualized engine binary with window
      // precompute disabled (BpuSimOptions::precompute = false), so
      // precompute_speedup is a same-binary A/B of the batch pipeline.
      double legacy_secs = 1e300, devirt_secs = 1e300, noprec_secs = 1e300;
      core::RemapCacheStats cache_stats;
      sim::BranchStats legacy_stats, devirt_stats, noprec_stats;
      sim::BpuSimOptions opt_off = opt;
      opt_off.precompute = false;
      for (unsigned rep = 0; rep < 3; ++rep) {
        stream.reset();
        auto legacy = models::BpuModel::create(mspec);
        Stopwatch sw;
        legacy_stats = sim::simulate_bpu(*legacy, stream, opt);
        legacy_secs = std::min(legacy_secs, std::max(sw.seconds(), 1e-9));

        stream.reset();
        auto engine = models::make_engine(mspec);
        sw.restart();
        devirt_stats = models::replay_engine(*engine, stream, opt);
        devirt_secs = std::min(devirt_secs, std::max(sw.seconds(), 1e-9));
        if (rep == 0) {
          cache_stats = models::engine_remap_cache_stats(*engine);
        }

        stream.reset();
        auto off_engine = models::make_engine(mspec);
        sw.restart();
        noprec_stats = models::replay_engine(*off_engine, stream, opt_off);
        noprec_secs = std::min(noprec_secs, std::max(sw.seconds(), 1e-9));
      }
      const double legacy_bps = branches / legacy_secs;
      const double devirt_bps = branches / devirt_secs;
      const double noprec_bps = branches / noprec_secs;
      const bool identical =
          legacy_stats == devirt_stats && legacy_stats == noprec_stats;
      p.set("section", "throughput")
          .set("legacy_branches_per_sec", legacy_bps)
          .set("devirt_branches_per_sec", devirt_bps)
          .set("noprecompute_branches_per_sec", noprec_bps)
          .set("branches_per_sec", devirt_bps)
          .set("speedup", devirt_bps / legacy_bps)
          .set("precompute_speedup", devirt_bps / noprec_bps)
          .set("remap_cache_hit_rate", cache_stats.hit_rate())
          .set("identical_stats", identical ? "true" : "false");
      if (spec.cache_stats) append_cache_stats(p, cache_stats);
      return p;
    }

    const std::size_t cell = index - kNumThroughput;
    const auto profiles = trace::figure4_profiles();
    const auto c = run_single_cell(spec, profiles[cell / 4], kDirs[cell % 4]);
    p.set("section", "figure4");
    set_cell_fields(p, c, "normalized_ipc");
    return p;
  }

  ScenarioOutput aggregate(const ExperimentSpec& spec,
                           const std::vector<PointResult>& points) const override {
    ScenarioOutput out;
    const auto profiles = trace::figure4_profiles();
    for (std::size_t t = 0; t < kNumThroughput; ++t) {
      if (!spec.selected(t)) continue;
      Row& row = out.rows.emplace_back(models::to_string(kThroughputModels[t]) + "/" +
                                       models::to_string(kThroughputDirs[t]));
      row.fields = points[t].fields;
    }
    double sum_dir[kNumDefenseArms][4] = {}, sum_tgt[kNumDefenseArms][4] = {},
           sum_ipc[kNumDefenseArms][4] = {};
    unsigned count[4] = {};
    for (std::size_t p = 0; p < profiles.size(); ++p) {
      for (unsigned d = 0; d < 4; ++d) {
        const std::size_t index = kNumThroughput + p * 4 + d;
        if (!spec.selected(index)) continue;
        const PointResult& cell = points[index];
        for (std::size_t a = 0; a < kNumDefenseArms; ++a) {
          const std::string prefix = arm_prefix(a);
          sum_dir[a][d] += cell.num(prefix + "direction_reduction");
          sum_tgt[a][d] += cell.num(prefix + "target_reduction");
          sum_ipc[a][d] += cell.num(prefix + "normalized_ipc");
        }
        ++count[d];
        Row& row = out.rows.emplace_back(profiles[p].name + "/" + kDirNames[d]);
        row.fields = cell.fields;
      }
    }
    for (unsigned d = 0; d < 4; ++d) {
      if (count[d] == 0) continue;
      const double n = static_cast<double>(count[d]);
      Row& row = out.rows.emplace_back(std::string("AVERAGE/") + kDirNames[d]);
      row.set("section", "figure4_average");
      for (std::size_t a = 0; a < kNumDefenseArms; ++a) {
        const std::string prefix = arm_prefix(a);
        row.set(prefix + "direction_reduction", sum_dir[a][d] / n)
            .set(prefix + "target_reduction", sum_tgt[a][d] / n)
            .set(prefix + "normalized_ipc", sum_ipc[a][d] / n);
      }
    }
    return out;
  }
};

// ---------------------------------------------------------------------------
// fig5_smt — SMT workload-pair evaluation (harmonic-mean IPC).
// ---------------------------------------------------------------------------

// The 31 pairs of Figure 5, in the paper's axis order.
constexpr const char* kFig5Pairs[][2] = {
    {"bwaves", "fotonik3d"}, {"bwaves", "cactuBSSN"}, {"bwaves", "leela"},
    {"bwaves", "cam4"},      {"exchange2", "nab"},    {"bwaves", "wrf"},
    {"leela", "namd"},       {"exchange2", "mcf"},    {"bwaves", "deepsjeng"},
    {"exchange2", "fotonik3d"}, {"deepsjeng", "lbm"}, {"bwaves", "namd"},
    {"bwaves", "lbm"},       {"leela", "mcf"},        {"lbm", "xz"},
    {"fotonik3d", "mcf"},    {"lbm", "namd"},         {"lbm", "mcf"},
    {"exchange2", "leela"},  {"fotonik3d", "lbm"},    {"cam4", "mcf"},
    {"nab", "xz"},           {"exchange2", "namd"},   {"bwaves", "roms"},
    {"mcf", "xz"},           {"exchange2", "lbm"},    {"bwaves", "povray"},
    {"fotonik3d", "leela"},  {"fotonik3d", "namd"},   {"deepsjeng", "xz"},
    {"bwaves", "exchange2"}};
constexpr std::size_t kNumFig5Pairs = sizeof(kFig5Pairs) / sizeof(kFig5Pairs[0]);

class Fig5Scenario final : public ScenarioBase {
 public:
  Fig5Scenario()
      : ScenarioBase("fig5_smt",
                     "Figure 5: SMT workload-pair evaluation (harmonic-mean "
                     "IPC)") {}

  std::vector<std::string> point_labels(const ExperimentSpec&) const override {
    std::vector<std::string> labels;
    for (const auto& pair : kFig5Pairs) {
      const std::string base = std::string(pair[0]) + "_" + pair[1];
      for (const char* d : kDirNames) labels.push_back(base + "/" + d);
    }
    return labels;
  }

  PointResult run_point(const ExperimentSpec& spec, std::size_t index) const override {
    const auto& pair = kFig5Pairs[index / 4];
    const auto c = run_smt_cell(spec, trace::profile_by_name(pair[0]),
                                trace::profile_by_name(pair[1]), kDirs[index % 4]);
    PointResult p;
    set_cell_fields(p, c, "normalized_ipc_harmonic");
    return p;
  }

  ScenarioOutput aggregate(const ExperimentSpec& spec,
                           const std::vector<PointResult>& points) const override {
    ScenarioOutput out;
    const auto labels = point_labels(spec);
    double sum_dir[kNumDefenseArms][4] = {}, sum_tgt[kNumDefenseArms][4] = {},
           sum_ipc[kNumDefenseArms][4] = {};
    unsigned count[4] = {};
    for (std::size_t p = 0; p < kNumFig5Pairs; ++p) {
      for (unsigned d = 0; d < 4; ++d) {
        const std::size_t index = p * 4 + d;
        if (!spec.selected(index)) continue;
        const PointResult& cell = points[index];
        for (std::size_t a = 0; a < kNumDefenseArms; ++a) {
          const std::string prefix = arm_prefix(a);
          sum_dir[a][d] += cell.num(prefix + "direction_reduction");
          sum_tgt[a][d] += cell.num(prefix + "target_reduction");
          sum_ipc[a][d] += cell.num(prefix + "normalized_ipc_harmonic");
        }
        ++count[d];
        Row& row = out.rows.emplace_back(labels[index]);
        row.fields = cell.fields;
      }
    }
    for (unsigned d = 0; d < 4; ++d) {
      if (count[d] == 0) continue;
      const double n = static_cast<double>(count[d]);
      Row& row = out.rows.emplace_back(std::string("AVERAGE/") + kDirNames[d]);
      for (std::size_t a = 0; a < kNumDefenseArms; ++a) {
        const std::string prefix = arm_prefix(a);
        row.set(prefix + "direction_reduction", sum_dir[a][d] / n)
            .set(prefix + "target_reduction", sum_tgt[a][d] / n)
            .set(prefix + "normalized_ipc_harmonic", sum_ipc[a][d] / n);
      }
    }
    return out;
  }
};

// ---------------------------------------------------------------------------
// fig6_rsweep — performance under aggressive re-randomization.
// ---------------------------------------------------------------------------

constexpr const char* kFig6Pairs[][2] = {{"bwaves", "mcf"},      {"exchange2", "leela"},
                                         {"fotonik3d", "namd"},  {"deepsjeng", "xz"},
                                         {"bwaves", "exchange2"}, {"leela", "mcf"}};
constexpr double kFig6Rs[] = {0.05, 0.01, 1e-3, 1e-4, 1e-5, 5e-6};
constexpr unsigned kNumFig6Rs = 6;

unsigned fig6_pairs(const Scale& scale) { return scale.paper ? 6 : 4; }

std::string fig6_r_label(double r) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "r=%g", r);
  return buf;
}

class Fig6Scenario final : public ScenarioBase {
 public:
  Fig6Scenario()
      : ScenarioBase("fig6_rsweep",
                     "Figure 6: performance under aggressive re-randomization "
                     "(r sweep)") {}

  // Grid: `npairs` unprotected baselines, then per defense arm (STBPU
  // first, keeping the legacy indices and labels byte-identical) the full
  // r × pair sweep. Rival-arm labels carry the arm kind as an extra path
  // segment: "r=1e-05/CIBPU/bwaves_mcf".
  std::vector<std::string> point_labels(const ExperimentSpec& spec) const override {
    const unsigned npairs = fig6_pairs(spec.scale);
    std::vector<std::string> labels;
    for (unsigned p = 0; p < npairs; ++p) {
      labels.push_back(std::string("base/") + kFig6Pairs[p][0] + "_" + kFig6Pairs[p][1]);
    }
    for (std::size_t a = 0; a < kNumDefenseArms; ++a) {
      const std::string arm =
          a == 0 ? std::string{} : models::to_string(kDefenseArms[a]) + "/";
      for (const double r : kFig6Rs) {
        for (unsigned p = 0; p < npairs; ++p) {
          labels.push_back(fig6_r_label(r) + "/" + arm + kFig6Pairs[p][0] + "_" +
                           kFig6Pairs[p][1]);
        }
      }
    }
    return labels;
  }

  PointResult run_point(const ExperimentSpec& spec, std::size_t index) const override {
    const unsigned npairs = fig6_pairs(spec.scale);
    PointResult out;
    const auto run_pair = [&](unsigned p, const models::ModelSpec& mspec) {
      for_each_engine(mspec, [&](auto& engine) {
        with_instr_stream(spec, trace::profile_by_name(kFig6Pairs[p][0]),
                          [&](trace::InstrStream& s0) {
        with_instr_stream(spec, trace::profile_by_name(kFig6Pairs[p][1]),
                          [&](trace::InstrStream& s1) {
        const auto res = sim::run_ooo({}, engine, {&s0, &s1},
                                      spec.scale.ooo_instructions, spec.scale.ooo_warmup);
        if (mspec.model == models::ModelKind::kUnprotected) {
          out.set("ipc_harmonic", res.ipc_harmonic_mean());
        } else {
          const auto combined = res.combined_stats();
          std::uint64_t rerands = 0;
          if (auto* mon = engine.monitor()) rerands = mon->rerandomizations();
          out.set("direction_rate", combined.direction_rate())
              .set("target_rate", combined.target_rate())
              .set("ipc_harmonic", res.ipc_harmonic_mean())
              .set("rerandomizations", rerands);
        }
        });
        });
      });
    };
    if (index < npairs) {
      run_pair(static_cast<unsigned>(index),
               with_seed({.model = models::ModelKind::kUnprotected,
                          .direction = models::DirectionKind::kTage64},
                         spec));
    } else {
      const std::size_t per_arm = std::size_t{kNumFig6Rs} * npairs;
      const std::size_t sweep = index - npairs;
      const std::size_t arm = sweep / per_arm;
      const unsigned ri = static_cast<unsigned>((sweep % per_arm) / npairs);
      const unsigned p = static_cast<unsigned>(sweep % npairs);
      models::ModelSpec mspec = with_seed({.model = kDefenseArms[arm],
                                           .direction = models::DirectionKind::kTage64},
                                          spec);
      mspec.rerand_difficulty_r = kFig6Rs[ri];
      run_pair(p, mspec);
    }
    return out;
  }

  ScenarioOutput aggregate(const ExperimentSpec& spec,
                           const std::vector<PointResult>& points) const override {
    ScenarioOutput out;
    const unsigned npairs = fig6_pairs(spec.scale);
    const bool separate_tagged = true;  // TAGE-based arms (§VII-B2)
    const std::size_t per_arm = std::size_t{kNumFig6Rs} * npairs;
    for (std::size_t a = 0; a < kNumDefenseArms; ++a) {
      // STBPU rows keep the legacy "r=..." labels; rival rows append the
      // arm kind ("r=.../CIBPU"). Split concatenation (GCC 12 -Wrestrict
      // false positive on `"lit" + std::string&&`, as in runner.cc).
      std::string arm_suffix;
      if (a != 0) {
        arm_suffix = "/";
        arm_suffix += models::to_string(kDefenseArms[a]);
      }
      for (unsigned ri = 0; ri < kNumFig6Rs; ++ri) {
        double dir = 0, tgt = 0, nipc = 0;
        std::uint64_t rerands = 0;
        unsigned count = 0;
        for (unsigned p = 0; p < npairs; ++p) {
          const std::size_t base_index = p;
          const std::size_t index = npairs + a * per_arm + ri * std::size_t{npairs} + p;
          if (!spec.selected(index) || !spec.selected(base_index)) continue;
          const double base_ipc = points[base_index].num("ipc_harmonic");
          dir += points[index].num("direction_rate");
          tgt += points[index].num("target_rate");
          nipc += base_ipc > 0 ? points[index].num("ipc_harmonic") / base_ipc : 0.0;
          rerands += points[index].u64("rerandomizations");
          ++count;
        }
        if (count == 0) continue;
        const double r = kFig6Rs[ri];
        const core::MonitorConfig mc =
            core::MonitorConfig::from_difficulty(r, separate_tagged);
        out.rows.emplace_back(fig6_r_label(r) + arm_suffix)
            .set("difficulty_r", r)
            .set("misprediction_threshold", std::uint64_t{mc.misprediction_threshold})
            .set("eviction_threshold", std::uint64_t{mc.eviction_threshold})
            .set("direction_rate", dir / count)
            .set("target_rate", tgt / count)
            .set("normalized_ipc_harmonic", nipc / count)
            .set("rerandomizations", rerands);
      }
    }
    out.meta.push_back({"pairs", Value(std::uint64_t{npairs})});
    return out;
  }
};

// ---------------------------------------------------------------------------
// ooo_engine — engine-typed OoO fan-out vs the interface-typed core.
// ---------------------------------------------------------------------------

class OooEngineScenario final : public ScenarioBase {
 public:
  OooEngineScenario()
      : ScenarioBase("ooo_engine",
                     "Cycle-level core study: integer-tick SoA core vs the "
                     "double-precision reference, typed vs IPredictor "
                     "dispatch, pregenerated vs on-the-fly streams") {}

  std::vector<std::string> point_labels(const ExperimentSpec&) const override {
    std::vector<std::string> labels;
    for (std::size_t t = 0; t < kNumThroughput; ++t) {
      labels.push_back(models::to_string(kThroughputModels[t]) + "/" +
                       models::to_string(kThroughputDirs[t]));
    }
    return labels;
  }

  bool timing_sensitive(const ExperimentSpec&, std::size_t) const override {
    return true;  // every point is a best-of-3 wall-clock measurement
  }

  PointResult run_point(const ExperimentSpec& spec, std::size_t index) const override {
    const auto mspec = with_seed(
        {.model = kThroughputModels[index], .direction = kThroughputDirs[index]}, spec);
    const auto profile = trace::profile_by_name("mcf");

    // Interleaved best-of-3 (fresh engine + stream per repetition), five
    // arms: the interface-typed tick core, the engine-typed tick core
    // through for_each_engine — with its lookahead front end (the shipping
    // configuration) and without it (attributing the front-end batching
    // separately from devirtualization) — the engine-typed double-precision
    // reference core (OooCoreRefT), the controlled A/B for the integer-tick
    // + SoA rewrite (`int_speedup`), and the pregenerated-stream arm: the
    // identical engine-typed tick core fed by a cursor over the shared
    // whole-run SoA artifact instead of the on-the-fly generator
    // (`gen_speedup` — the generation cost every other arm pays per run is
    // exactly what pregeneration removes; the artifact itself is built once
    // per process, outside every stopwatch, and reused across arms, reps
    // and sweep points).
    double iface_secs = 1e300, typed_secs = 1e300, nola_secs = 1e300, ref_secs = 1e300,
           pregen_secs = 1e300;
    sim::OooResult iface_result{}, typed_result{}, nola_result{}, ref_result{},
        pregen_result{};
    core::RemapCacheStats cache_stats;
    const bool pregen = pregen_enabled(spec);
    std::shared_ptr<const trace::InstrTrace> pregen_trace;
    if (pregen) {
      pregen_trace = trace::shared_instr_trace(profile, pregen_instr_count(spec));
    }
    for (unsigned rep = 0; rep < 3; ++rep) {
      {
        auto engine = models::make_engine(mspec);
        trace::SyntheticInstrGenerator gen(profile);
        bpu::IPredictor* iface = engine.get();
        Stopwatch sw;
        iface_result = sim::run_ooo({}, *iface, {&gen}, spec.scale.ooo_instructions,
                                    spec.scale.ooo_warmup);
        iface_secs = std::min(iface_secs, std::max(sw.seconds(), 1e-9));
      }
      for_each_engine(mspec, [&](auto& engine) {
        trace::SyntheticInstrGenerator gen(profile);
        Stopwatch sw;
        typed_result = sim::run_ooo({}, engine, {&gen}, spec.scale.ooo_instructions,
                                    spec.scale.ooo_warmup);
        typed_secs = std::min(typed_secs, std::max(sw.seconds(), 1e-9));
        if (rep == 0) {
          cache_stats = models::engine_remap_cache_stats(engine);
        }
      });
      for_each_engine(mspec, [&](auto& engine) {
        trace::SyntheticInstrGenerator gen(profile);
        sim::OooConfig cfg;
        cfg.lookahead = false;
        Stopwatch sw;
        nola_result = sim::run_ooo(cfg, engine, {&gen}, spec.scale.ooo_instructions,
                                   spec.scale.ooo_warmup);
        nola_secs = std::min(nola_secs, std::max(sw.seconds(), 1e-9));
      });
      for_each_engine(mspec, [&](auto& engine) {
        trace::SyntheticInstrGenerator gen(profile);
        Stopwatch sw;
        ref_result = sim::run_ooo_ref({}, engine, {&gen}, spec.scale.ooo_instructions,
                                      spec.scale.ooo_warmup);
        ref_secs = std::min(ref_secs, std::max(sw.seconds(), 1e-9));
      });
      for_each_engine(mspec, [&](auto& engine) {
        // Generator fallback keeps the arm honest at budgets beyond the
        // pregen cap: gen_speedup is then ~1.0 by construction.
        if (pregen) {
          trace::InstrTraceStream stream(pregen_trace);
          Stopwatch sw;
          pregen_result = sim::run_ooo({}, engine, {&stream},
                                       spec.scale.ooo_instructions,
                                       spec.scale.ooo_warmup);
          pregen_secs = std::min(pregen_secs, std::max(sw.seconds(), 1e-9));
        } else {
          trace::SyntheticInstrGenerator gen(profile);
          Stopwatch sw;
          pregen_result = sim::run_ooo({}, engine, {&gen},
                                       spec.scale.ooo_instructions,
                                       spec.scale.ooo_warmup);
          pregen_secs = std::min(pregen_secs, std::max(sw.seconds(), 1e-9));
        }
      });
    }
    const double branches = static_cast<double>(typed_result.combined_stats().branches);
    const double iface_bps = branches / iface_secs;
    const double typed_bps = branches / typed_secs;
    const double nola_bps = branches / nola_secs;
    const double ref_bps = branches / ref_secs;
    const double pregen_bps = branches / pregen_secs;
    // Every arm must be bit-identical in everything the simulation
    // computes: BranchStats, instruction counts, cycles, the cache
    // hierarchy's demand counters, and — among the tick-core arms — the
    // stall attribution (the double reference predates the counters and
    // leaves them zero by design).
    const bool identical =
        iface_result.combined_stats() == typed_result.combined_stats() &&
        iface_result.instructions == typed_result.instructions &&
        iface_result.cycles == typed_result.cycles &&
        iface_result.cache == typed_result.cache &&
        iface_result.stalls == typed_result.stalls &&
        nola_result.combined_stats() == typed_result.combined_stats() &&
        nola_result.cycles == typed_result.cycles &&
        nola_result.cache == typed_result.cache &&
        nola_result.stalls == typed_result.stalls &&
        ref_result.combined_stats() == typed_result.combined_stats() &&
        ref_result.instructions == typed_result.instructions &&
        ref_result.cycles == typed_result.cycles &&
        ref_result.cache == typed_result.cache &&
        pregen_result.combined_stats() == typed_result.combined_stats() &&
        pregen_result.instructions == typed_result.instructions &&
        pregen_result.cycles == typed_result.cycles &&
        pregen_result.cache == typed_result.cache &&
        pregen_result.stalls == typed_result.stalls;
    PointResult p;
    p.set("iface_branches_per_sec", iface_bps)
        .set("typed_branches_per_sec", typed_bps)
        .set("typed_nolookahead_branches_per_sec", nola_bps)
        .set("ref_double_branches_per_sec", ref_bps)
        .set("pregen_branches_per_sec", pregen_bps)
        .set("branches_per_sec", typed_bps)
        .set("speedup", typed_bps / iface_bps)
        .set("lookahead_speedup", typed_bps / nola_bps)
        .set("int_speedup", typed_bps / ref_bps)
        .set("gen_speedup", pregen_bps / typed_bps)
        .set("pregen_mode", pregen ? "artifact" : "generator-fallback")
        .set("measured_branches", std::uint64_t{typed_result.combined_stats().branches})
        .set("ipc", typed_result.ipc[0])
        .set("l1d_hits", typed_result.cache.l1d_hits)
        .set("l1d_misses", typed_result.cache.l1d_misses)
        .set("l2_hits", typed_result.cache.l2_hits)
        .set("l2_misses", typed_result.cache.l2_misses)
        .set("llc_hits", typed_result.cache.llc_hits)
        .set("llc_misses", typed_result.cache.llc_misses)
        .set("identical_stats", identical ? "true" : "false");
    if (spec.cache_stats) append_cache_stats(p, cache_stats);
    if (spec.stall_stats) append_stall_stats(p, typed_result);
    return p;
  }

  ScenarioOutput aggregate(const ExperimentSpec& spec,
                           const std::vector<PointResult>& points) const override {
    ScenarioOutput out;
    const auto labels = point_labels(spec);
    for (const std::size_t i : selected_indices(spec, points.size())) {
      Row& row = out.rows.emplace_back(labels[i]);
      row.fields = points[i].fields;
    }
    return out;
  }
};

}  // namespace

namespace scenarios {

void register_ooo() {
  register_scenario(new Fig4Scenario);
  register_scenario(new Fig5Scenario);
  register_scenario(new Fig6Scenario);
  register_scenario(new OooEngineScenario);
}

}  // namespace scenarios

}  // namespace stbpu::exp
