#include "exp/compare.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <map>
#include <utility>

#include "exp/json.h"

namespace stbpu::exp {

namespace {

/// A bare (optionally signed) digit run — the literal form of the kU64/kInt
/// writers. Doubles always carry '.', 'e' or 'E' (scenario.cc's
/// format_double guarantees it for integral values).
bool is_integer_literal(const std::string& t) {
  if (t.empty()) return false;
  std::size_t i = t[0] == '-' ? 1 : 0;
  if (i >= t.size()) return false;
  for (; i < t.size(); ++i) {
    if (t[i] < '0' || t[i] > '9') return false;
  }
  return true;
}

std::string literal_text(const JsonValue& v) {
  if (v.is_string()) return "\"" + v.text() + "\"";
  if (v.is_bool()) return v.as_bool() ? "true" : "false";
  return v.text();  // numbers keep their raw literal text
}

struct Comparer {
  const CompareOptions& opt;
  CompareReport& report;

  [[nodiscard]] bool ignored(const std::string& key) const {
    return std::find(opt.ignore_keys.begin(), opt.ignore_keys.end(), key) !=
           opt.ignore_keys.end();
  }

  void compare_field(const std::string& row, const std::string& key,
                     const JsonValue& oldv, const JsonValue& newv) {
    if (ignored(key)) return;
    ++report.compared_fields;
    const std::string old_text = literal_text(oldv);
    const std::string new_text = literal_text(newv);
    if (old_text == new_text) return;

    if (oldv.is_number() && newv.is_number()) {
      const bool old_int = is_integer_literal(oldv.text());
      const bool new_int = is_integer_literal(newv.text());
      if (!old_int && !new_int) {
        // Measurement field on both sides: advisory delta only.
        const double o = oldv.as_double();
        const double n = newv.as_double();
        // A zero baseline has no meaningful relative delta; signal it as
        // infinity so reporters print n/a instead of a misleading +0.00%.
        report.deltas.push_back(
            {.row = row,
             .key = key,
             .old_value = old_text,
             .new_value = new_text,
             .delta_frac = o != 0.0 ? n / o - 1.0
                                    : std::numeric_limits<double>::infinity()});
        return;
      }
      // Integer literal on either side: the field is (or was) a counter. A
      // pure formatting drift that preserves the value ("1" vs "1.0") is
      // fine; a changed value — including one smuggled across an
      // integer↔float type change — falls through to the fatal class.
      if (old_int != new_int && oldv.as_double() == newv.as_double()) return;
    }
    // Correctness field (string, bool, integer counter — or a type change):
    // any difference is a regression.
    report.regressions.push_back(
        {.row = row, .key = key, .old_value = old_text, .new_value = new_text});
  }

  /// Compare the members of two field-holding objects, noting keys present
  /// on only one side.
  void compare_objects(const std::string& row, const JsonValue& oldo,
                       const JsonValue& newo,
                       const std::vector<std::string>& skip_keys) {
    const auto skipped = [&](const std::string& k) {
      return std::find(skip_keys.begin(), skip_keys.end(), k) != skip_keys.end();
    };
    std::string only_old, only_new;
    for (const auto& [key, value] : oldo.members()) {
      if (skipped(key)) continue;
      if (const JsonValue* nv = newo.find(key)) {
        compare_field(row, key, value, *nv);
      } else {
        if (!only_old.empty()) only_old += ", ";
        only_old += key;
      }
    }
    for (const auto& [key, value] : newo.members()) {
      (void)value;
      if (!skipped(key) && oldo.find(key) == nullptr) {
        if (!only_new.empty()) only_new += ", ";
        only_new += key;
      }
    }
    const std::string where = row.empty() ? "top level" : "row '" + row + "'";
    if (!only_old.empty()) {
      report.notes.push_back(where + ": keys only in OLD (skipped): " + only_old);
    }
    if (!only_new.empty()) {
      report.notes.push_back(where + ": keys only in NEW (skipped): " + only_new);
    }
  }
};

bool parse_bench(const std::string& text, const char* which, JsonValue& doc,
                 std::string& bench, std::string& scale, std::string& err) {
  if (!json_parse(text, doc, err)) {
    err = std::string(which) + ": " + err;
    return false;
  }
  if (!doc.is_object()) {
    err = std::string(which) + ": not a JSON object";
    return false;
  }
  const JsonValue* b = doc.find("bench");
  if (b == nullptr || !b->is_string()) {
    err = std::string(which) + ": missing \"bench\" (not a BENCH_*.json file?)";
    return false;
  }
  bench = b->text();
  const JsonValue* s = doc.find("scale");
  scale = s != nullptr && s->is_string() ? s->text() : "";
  return true;
}

}  // namespace

bool compare_bench(const std::string& old_text, const std::string& new_text,
                   const CompareOptions& opt, CompareReport& out, std::string& err) {
  out = CompareReport{};
  JsonValue old_doc, new_doc;
  std::string old_bench, new_bench, old_scale, new_scale;
  if (!parse_bench(old_text, "OLD", old_doc, old_bench, old_scale, err)) return false;
  if (!parse_bench(new_text, "NEW", new_doc, new_bench, new_scale, err)) return false;
  if (old_bench != new_bench) {
    err = "scenario mismatch: OLD is '" + old_bench + "', NEW is '" + new_bench + "'";
    return false;
  }
  out.bench = new_bench;

  if (old_scale != new_scale) {
    // Different budgets: nothing is comparable (counters legitimately
    // differ); inventory only.
    out.notes.push_back("scale mismatch (OLD=" + old_scale + ", NEW=" + new_scale +
                        "): fields not compared");
    return true;
  }

  Comparer cmp{.opt = opt, .report = out};
  // Top-level meta fields (everything but the row array and the identity
  // fields handled above).
  cmp.compare_objects("", old_doc, new_doc, {"bench", "scale", "rows"});

  // Rows matched by label; grid drift (new/removed rows) is advisory.
  const JsonValue* old_rows = old_doc.find("rows");
  const JsonValue* new_rows = new_doc.find("rows");
  std::map<std::string, const JsonValue*> old_by_label;
  if (old_rows != nullptr && old_rows->is_array()) {
    for (const JsonValue& row : old_rows->items()) {
      if (const JsonValue* l = row.find("label")) old_by_label[l->text()] = &row;
    }
  }
  std::map<std::string, bool> matched;
  if (new_rows != nullptr && new_rows->is_array()) {
    for (const JsonValue& row : new_rows->items()) {
      const JsonValue* l = row.find("label");
      if (l == nullptr) continue;
      const auto it = old_by_label.find(l->text());
      if (it == old_by_label.end()) {
        out.notes.push_back("row '" + l->text() + "' only in NEW (skipped)");
        continue;
      }
      matched[l->text()] = true;
      cmp.compare_objects(l->text(), *it->second, row, {"label"});
    }
  }
  for (const auto& [label, row] : old_by_label) {
    (void)row;
    if (!matched.contains(label)) {
      out.notes.push_back("row '" + label + "' only in OLD (skipped)");
    }
  }
  return true;
}

}  // namespace stbpu::exp
