// BENCH_*.json comparison — the CI perf-regression gate's core logic
// (`stbpu_bench compare OLD.json NEW.json`). The gate's contract follows
// the repo's honest-measurement discipline: correctness fields must never
// drift silently, throughput may (machines differ), so
//   * string fields (identical_stats, sections, modes) and integer fields
//     (stat counters: measured branches, cache hits/misses, thresholds,
//     rerandomization counts) are CORRECTNESS — any difference on a row +
//     key present in both files is a fatal regression;
//   * floating-point fields (branches/sec, speedups, rates, IPC) are
//     THROUGHPUT/measurement — deltas are reported, never fatal;
//   * rows or keys present in only one file are advisory notes (scenario
//     grids legitimately evolve between PRs), as is a scale mismatch note
//     when the two files were produced at different --scale presets (then
//     nothing is comparable and the files are only inventoried).
// Field classes are recovered from the JSON literals themselves (the
// writer preserves number text: integers render without '.'/exponent).
#pragma once

#include <string>
#include <vector>

namespace stbpu::exp {

struct CompareOptions {
  /// Keys excluded from the fatal check (escape hatch for a PR that
  /// intentionally changes a counter's meaning: `--ignore=key,key`).
  std::vector<std::string> ignore_keys;
};

struct CompareFinding {
  std::string row;        ///< row label ("" for top-level meta fields)
  std::string key;
  std::string old_value;  ///< raw JSON literal text
  std::string new_value;
  double delta_frac = 0.0;  ///< new/old - 1 (numeric advisory findings)
};

struct CompareReport {
  std::string bench;                        ///< scenario name (from NEW)
  std::vector<CompareFinding> regressions;  ///< fatal correctness mismatches
  std::vector<CompareFinding> deltas;       ///< advisory numeric deltas
  std::vector<std::string> notes;           ///< grid drift, scale mismatch, ...
  std::size_t compared_fields = 0;          ///< fields checked on matched rows

  [[nodiscard]] bool ok() const noexcept { return regressions.empty(); }
};

/// Compare two BENCH_*.json texts. Returns false (with `err`) only on
/// malformed input or mismatched scenarios — a correctness regression is a
/// successful comparison with report.ok() == false.
bool compare_bench(const std::string& old_text, const std::string& new_text,
                   const CompareOptions& opt, CompareReport& out, std::string& err);

}  // namespace stbpu::exp
