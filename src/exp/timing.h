// Wall-clock timing helpers for throughput scenarios (moved from the old
// bench_common.h so the driver and any remaining standalone tools share
// one implementation).
#pragma once

#include <chrono>

namespace stbpu::exp {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  void restart() { start_ = clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Compiler barrier for microbenchmark loops (keeps the measured value
/// alive without google-benchmark's DoNotOptimize).
template <class T>
inline void do_not_optimize(T const& value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r,m"(value) : "memory");
#else
  volatile T sink = value;
  (void)sink;
#endif
}

}  // namespace stbpu::exp
