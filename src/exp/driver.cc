#include "exp/driver.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exp/compare.h"
#include "exp/fabric.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "models/models.h"

namespace stbpu::exp {

namespace {

constexpr int kExitUsage = 2;

void print_usage(std::FILE* to) {
  std::fprintf(to,
               "usage: stbpu_bench <command> [options]\n"
               "\n"
               "commands:\n"
               "  list                       show all registered scenarios\n"
               "  describe <scenario>        show a scenario's point grid\n"
               "  run <scenario> [options]   execute a scenario\n"
               "  merge <shard.json>...      union shard files into BENCH_<name>.json\n"
               "  compare OLD.json NEW.json  diff two same-scenario BENCH files: exits\n"
               "                             nonzero when a correctness field (string or\n"
               "                             integer stat counter) regressed; throughput\n"
               "                             (floating-point) deltas are reported only\n"
               "  worker                     serve shard assignments over TCP (the\n"
               "                             fabric's execution side)\n"
               "  dispatch <scenario>        partition the grid and execute it across\n"
               "                             --workers= with retry/timeout/local-fallback,\n"
               "                             then merge (byte-identical to a local run)\n"
               "\n"
               "run/describe options:\n"
               "  --scale=quick|paper        simulation budgets (default quick)\n"
               "  --jobs=N                   worker threads (default: hardware)\n"
               "  --shard=I/N                run the I-th of N even stripes of the\n"
               "                             (selected) point grid; writes\n"
               "                             BENCH_<name>.shard<I>of<N>.json\n"
               "  --points=LIST              run a subset, e.g. 0,3,7-9\n"
               "  --json=PATH                output path override\n"
               "  --spec=FILE                load an ExperimentSpec JSON (flags override)\n"
               "  --trace=PATH               replay an on-disk branch trace (trace-replay\n"
               "                             scenarios)\n"
               "  --seed=N                   model seed override (0 = scenario default)\n"
               "  --arms=KIND[,KIND]         defense-arm filter for multi-arm scenarios\n"
               "                             (attack_matrix), e.g. --arms=STBPU,CIBPU;\n"
               "                             names per models::to_string(ModelKind)\n"
               "  --difficulty-r=R           monitor difficulty factor (Γ = r·C,\n"
               "                             paper §VII-A; 0 = scenario default)\n"
               "  --gamma-m=N --gamma-e=N --gamma-tagged=N\n"
               "                             explicit Γ_M / Γ_E / tagged-Γ monitor\n"
               "                             thresholds (0 = derive from difficulty r)\n"
               "  --cache-stats              attach remap memo-cache per-function\n"
               "                             hit/miss/batch-fill counters to measurement\n"
               "                             points (JSON side-channel fields)\n"
               "  --stall-stats              attach the OoO core's per-thread stall\n"
               "                             attribution (fetch-bandwidth / redirect /\n"
               "                             ROB/IQ/LQ/SQ cycles) to cycle-level points\n"
               "  --trace-branches=N --trace-warmup=N\n"
               "  --ooo-instructions=N --ooo-warmup=N\n"
               "                             individual budget overrides\n"
               "\n"
               "merge options:\n"
               "  --json=PATH                output path (default BENCH_<name>.json)\n"
               "\n"
               "compare options:\n"
               "  --ignore=KEY[,KEY]         exclude fields from the correctness check\n"
               "                             (for a PR that intentionally changes a\n"
               "                             counter's meaning)\n"
               "\n"
               "worker options:\n"
               "  --listen=PORT              TCP port (0 = kernel-assigned)\n"
               "  --port-file=PATH           write the bound port here once listening\n"
               "  --jobs=N                   override each request's worker threads\n"
               "  --max-requests=N           exit after N accepted connections\n"
               "  --chaos=drop:P,stall:MS,corrupt:P,seed:S\n"
               "                             deterministic fault injection: connection\n"
               "                             drops, mid-stream stalls, corrupted and\n"
               "                             truncated payloads\n"
               "\n"
               "dispatch options (plus all run options except --shard/--json semantics):\n"
               "  --workers=HOST:PORT,...    worker endpoints (required)\n"
               "  --shards=N                 shard count (default: min(points, 2*workers))\n"
               "  --deadline-ms=N            per-attempt shard deadline (default 300000)\n"
               "  --connect-timeout-ms=N     TCP connect timeout (default 2000)\n"
               "  --retries=N                remote attempts per shard (default 3)\n"
               "  --backoff-ms=N             reconnect backoff base (default 50,\n"
               "                             exponential with deterministic jitter)\n"
               "  --no-local-fallback        fail instead of running unserved shards\n"
               "                             through the in-process pool\n");
}

int usage_error(const std::string& message) {
  std::fprintf(stderr, "stbpu_bench: %s\n\n", message.c_str());
  print_usage(stderr);
  return kExitUsage;
}

bool parse_u64_flag(const char* arg, const char* prefix, std::uint64_t& out,
                    std::string& err) {
  const std::size_t len = std::strlen(prefix);
  const char* text = arg + len;
  // Digits only: strtoull would silently wrap "-1" to 2^64-1.
  if (*text < '0' || *text > '9') {
    err = std::string("bad value in '") + arg + "'";
    return false;
  }
  char* end = nullptr;
  out = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    err = std::string("bad value in '") + arg + "'";
    return false;
  }
  return true;
}

bool parse_positive_double_flag(const char* arg, const char* prefix, double& out,
                                std::string& err) {
  const char* text = arg + std::strlen(prefix);
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || !(v > 0.0)) {
    err = std::string("bad value in '") + arg + "' (want a positive number)";
    return false;
  }
  out = v;
  return true;
}

struct RunOptions {
  ExperimentSpec spec;
  std::string json_path;  ///< empty = default naming
};

/// Strict run-flag parsing: every argument must be a known flag with a
/// well-formed value. Unknown arguments are errors, not warnings.
bool parse_run_flags(const std::vector<std::string>& args, RunOptions& out,
                     std::string& err) {
  const auto starts_with = [](const std::string& s, const char* p) {
    return s.rfind(p, 0) == 0;
  };
  // --spec files load first so explicit flags override their contents.
  for (const std::string& arg : args) {
    if (starts_with(arg, "--spec=")) {
      const std::string path = arg.substr(7);
      std::string text;
      if (!read_file(path, text)) {
        err = "cannot read spec file '" + path + "'";
        return false;
      }
      JsonValue doc;
      if (!json_parse(text, doc, err)) {
        err = "spec file '" + path + "': " + err;
        return false;
      }
      const std::string scenario = out.spec.scenario;
      if (!ExperimentSpec::from_json(doc, out.spec, err)) {
        err = "spec file '" + path + "': " + err;
        return false;
      }
      if (!scenario.empty() && out.spec.scenario != scenario) {
        err = "spec file '" + path + "' is for scenario '" + out.spec.scenario +
              "', not '" + scenario + "'";
        return false;
      }
    }
  }
  for (const std::string& arg : args) {
    std::uint64_t u = 0;
    if (starts_with(arg, "--spec=")) {
      continue;  // handled above
    } else if (starts_with(arg, "--scale=")) {
      const std::string name = arg.substr(8);
      const auto preset = Scale::named(name);
      if (!preset) {
        err = "unknown scale '" + name + "' (use quick|paper)";
        return false;
      }
      out.spec.scale = *preset;
    } else if (starts_with(arg, "--jobs=")) {
      if (!parse_u64_flag(arg.c_str(), "--jobs=", u, err)) return false;
      out.spec.jobs = static_cast<unsigned>(u);
    } else if (starts_with(arg, "--shard=")) {
      if (!parse_shard(arg.substr(8), out.spec.shard_index, out.spec.shard_count, err)) {
        return false;
      }
    } else if (starts_with(arg, "--points=")) {
      if (!parse_points(arg.substr(9), out.spec.points, err)) return false;
    } else if (starts_with(arg, "--json=")) {
      out.json_path = arg.substr(7);
    } else if (starts_with(arg, "--trace=")) {
      out.spec.trace_file = arg.substr(8);
    } else if (starts_with(arg, "--seed=")) {
      if (!parse_u64_flag(arg.c_str(), "--seed=", out.spec.seed, err)) return false;
    } else if (starts_with(arg, "--arms=")) {
      out.spec.arms.clear();
      std::string list = arg.substr(7);
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = std::min(list.find(',', pos), list.size());
        const std::string name = list.substr(pos, comma - pos);
        models::ModelKind kind;
        if (!models::parse_model_kind(name, kind, err)) return false;
        out.spec.arms.push_back(name);
        pos = comma + 1;
      }
      if (out.spec.arms.empty()) {
        err = "empty arm list in '" + arg + "'";
        return false;
      }
    } else if (starts_with(arg, "--difficulty-r=")) {
      if (!parse_positive_double_flag(arg.c_str(), "--difficulty-r=",
                                      out.spec.monitor.difficulty_r, err)) {
        return false;
      }
    } else if (starts_with(arg, "--gamma-m=")) {
      if (!parse_u64_flag(arg.c_str(), "--gamma-m=",
                          out.spec.monitor.misprediction_threshold, err)) {
        return false;
      }
    } else if (starts_with(arg, "--gamma-e=")) {
      if (!parse_u64_flag(arg.c_str(), "--gamma-e=",
                          out.spec.monitor.eviction_threshold, err)) {
        return false;
      }
    } else if (starts_with(arg, "--gamma-tagged=")) {
      if (!parse_u64_flag(arg.c_str(), "--gamma-tagged=",
                          out.spec.monitor.tagged_misprediction_threshold, err)) {
        return false;
      }
    } else if (arg == "--cache-stats") {
      out.spec.cache_stats = true;
    } else if (arg == "--stall-stats") {
      out.spec.stall_stats = true;
    } else if (starts_with(arg, "--trace-branches=")) {
      if (!parse_u64_flag(arg.c_str(), "--trace-branches=", out.spec.scale.trace_branches,
                          err)) {
        return false;
      }
    } else if (starts_with(arg, "--trace-warmup=")) {
      if (!parse_u64_flag(arg.c_str(), "--trace-warmup=", out.spec.scale.trace_warmup,
                          err)) {
        return false;
      }
    } else if (starts_with(arg, "--ooo-instructions=")) {
      if (!parse_u64_flag(arg.c_str(),
                          "--ooo-instructions=", out.spec.scale.ooo_instructions, err)) {
        return false;
      }
    } else if (starts_with(arg, "--ooo-warmup=")) {
      if (!parse_u64_flag(arg.c_str(), "--ooo-warmup=", out.spec.scale.ooo_warmup, err)) {
        return false;
      }
    } else {
      err = "unknown argument '" + arg + "'";
      return false;
    }
  }
  return true;
}

const Scenario* lookup(const std::string& name) {
  const Scenario* s = find_scenario(name);
  if (s == nullptr) {
    std::fprintf(stderr, "stbpu_bench: unknown scenario '%s'; available:\n",
                 name.c_str());
    for (const Scenario* sc : all_scenarios()) {
      std::fprintf(stderr, "  %s\n", std::string(sc->name()).c_str());
    }
  }
  return s;
}

int cmd_list() {
  for (const Scenario* s : all_scenarios()) {
    std::printf("%-24s %s\n", std::string(s->name()).c_str(),
                std::string(s->title()).c_str());
  }
  return 0;
}

int cmd_describe(const std::string& name, const std::vector<std::string>& args) {
  RunOptions opt;
  std::string err;
  opt.spec.scenario = name;
  if (!parse_run_flags(args, opt, err)) return usage_error(err);
  const Scenario* s = lookup(name);
  if (s == nullptr) return kExitUsage;
  std::printf("%s — %s\n", std::string(s->name()).c_str(),
              std::string(s->title()).c_str());
  std::printf("spec: %s\n", opt.spec.to_json().c_str());
  const auto labels = s->point_labels(opt.spec);
  const auto owned = opt.spec.owned_points(labels.size());
  std::printf("%zu grid points:\n", labels.size());
  for (std::size_t i = 0, o = 0; i < labels.size(); ++i) {
    const bool mine = o < owned.size() && owned[o] == i;
    if (mine) ++o;
    std::printf("  [%4zu]%s %s\n", i, mine ? " " : "-", labels[i].c_str());
  }
  if (opt.spec.sharded() || !opt.spec.points.empty()) {
    std::printf("('-' marks points excluded by --points/--shard)\n");
  }
  return 0;
}

void print_rows(const Scenario& scenario, const ExperimentSpec& spec,
                const std::vector<PointResult>& points) {
  const ScenarioOutput output = scenario.aggregate(spec, points);
  for (const Row& row : output.rows) {
    std::printf("%-32s |", row.label.c_str());
    for (const auto& f : row.fields) {
      std::printf(" %s=%s", f.key.c_str(), f.value.render().c_str());
    }
    std::printf("\n");
  }
}

int cmd_run(const std::string& name, const std::vector<std::string>& args) {
  RunOptions opt;
  std::string err;
  opt.spec.scenario = name;
  if (!parse_run_flags(args, opt, err)) return usage_error(err);
  const Scenario* s = lookup(name);
  if (s == nullptr) return kExitUsage;

  std::printf("== %s: %s ==\n", std::string(s->name()).c_str(),
              std::string(s->title()).c_str());
  std::printf("spec: %s\n", opt.spec.to_json().c_str());

  RunOutcome outcome;
  if (!run_experiment(*s, opt.spec, outcome, err)) {
    std::fprintf(stderr, "stbpu_bench: %s\n", err.c_str());
    return 1;
  }
  std::printf("ran %zu/%zu grid points in %.2fs (%u workers)\n", outcome.ran.size(),
              outcome.labels.size(), outcome.seconds,
              worker_count(opt.spec.jobs, outcome.ran.size()));

  std::string path = opt.json_path;
  if (opt.spec.sharded()) {
    if (path.empty()) {
      path = "BENCH_" + std::string(s->name()) + ".shard" +
             std::to_string(opt.spec.shard_index) + "of" +
             std::to_string(opt.spec.shard_count) + ".json";
    }
    if (!write_file(path, shard_json(*s, opt.spec, outcome))) {
      std::fprintf(stderr, "stbpu_bench: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote shard %u/%u to %s (merge shards with `stbpu_bench merge`)\n",
                opt.spec.shard_index, opt.spec.shard_count, path.c_str());
    return 0;
  }

  print_rows(*s, opt.spec, outcome.points);
  if (path.empty()) path = "BENCH_" + std::string(s->name()) + ".json";
  if (!write_file(path, final_json(*s, opt.spec, outcome.points))) {
    std::fprintf(stderr, "stbpu_bench: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

int cmd_merge(const std::vector<std::string>& args) {
  std::string json_path;
  std::vector<std::string> paths;
  for (const std::string& arg : args) {
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--", 0) == 0) {
      return usage_error("unknown argument '" + arg + "'");
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage_error("merge needs at least one shard file");

  std::vector<std::string> texts(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (!read_file(paths[i], texts[i])) {
      std::fprintf(stderr, "stbpu_bench: cannot read %s\n", paths[i].c_str());
      return 1;
    }
  }
  std::string merged, scenario, err;
  if (!merge_shards(texts, paths, merged, scenario, err)) {
    std::fprintf(stderr, "stbpu_bench: merge failed: %s\n", err.c_str());
    return 1;
  }
  if (json_path.empty()) json_path = "BENCH_" + scenario + ".json";
  if (!write_file(json_path, merged)) {
    std::fprintf(stderr, "stbpu_bench: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("merged %zu shards into %s\n", paths.size(), json_path.c_str());
  return 0;
}

int cmd_worker(const std::vector<std::string>& args) {
  WorkerOptions opt;
  opt.verbose = true;
  bool have_listen = false;
  std::string err;
  for (const std::string& arg : args) {
    std::uint64_t u = 0;
    if (arg.rfind("--listen=", 0) == 0) {
      if (!parse_u64_flag(arg.c_str(), "--listen=", u, err)) return usage_error(err);
      if (u > 65535) return usage_error("port out of range in '" + arg + "'");
      opt.port = static_cast<std::uint16_t>(u);
      have_listen = true;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      if (!parse_u64_flag(arg.c_str(), "--jobs=", u, err)) return usage_error(err);
      opt.jobs = static_cast<unsigned>(u);
    } else if (arg.rfind("--max-requests=", 0) == 0) {
      if (!parse_u64_flag(arg.c_str(), "--max-requests=", opt.max_requests, err)) {
        return usage_error(err);
      }
    } else if (arg.rfind("--port-file=", 0) == 0) {
      opt.port_file = arg.substr(12);
    } else if (arg.rfind("--chaos=", 0) == 0) {
      if (!net::ChaosSpec::parse(arg.substr(8), opt.chaos, err)) {
        return usage_error(err);
      }
    } else {
      return usage_error("unknown argument '" + arg + "'");
    }
  }
  if (!have_listen) return usage_error("worker needs --listen=PORT");

  WorkerServer server;
  if (!server.start(opt, err)) {
    std::fprintf(stderr, "stbpu_bench: %s\n", err.c_str());
    return 1;
  }
  std::printf("worker listening on port %u%s%s\n", server.port(),
              opt.chaos.enabled() ? " with chaos " : "",
              opt.chaos.enabled() ? opt.chaos.to_string().c_str() : "");
  std::fflush(stdout);
  server.wait();
  std::printf("worker exiting after %llu accepted connection(s), %llu served\n",
              static_cast<unsigned long long>(server.accepted()),
              static_cast<unsigned long long>(server.served()));
  return 0;
}

int cmd_dispatch(const std::string& name, const std::vector<std::string>& args) {
  DispatchOptions fabric;
  std::vector<std::string> run_args;
  std::string err;
  for (const std::string& arg : args) {
    std::uint64_t u = 0;
    if (arg.rfind("--workers=", 0) == 0) {
      std::string list = arg.substr(10);
      std::size_t at = 0;
      while (at <= list.size()) {
        const std::size_t comma = list.find(',', at);
        const std::string endpoint = list.substr(at, comma - at);
        if (!endpoint.empty()) fabric.workers.push_back(endpoint);
        if (comma == std::string::npos) break;
        at = comma + 1;
      }
    } else if (arg.rfind("--shards=", 0) == 0) {
      if (!parse_u64_flag(arg.c_str(), "--shards=", u, err)) return usage_error(err);
      if (u == 0) return usage_error("--shards must be at least 1");
      fabric.shard_count = static_cast<std::uint32_t>(u);
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      if (!parse_u64_flag(arg.c_str(), "--deadline-ms=", u, err)) return usage_error(err);
      fabric.shard_deadline_ms = static_cast<int>(u);
    } else if (arg.rfind("--connect-timeout-ms=", 0) == 0) {
      if (!parse_u64_flag(arg.c_str(), "--connect-timeout-ms=", u, err)) {
        return usage_error(err);
      }
      fabric.connect_timeout_ms = static_cast<int>(u);
    } else if (arg.rfind("--retries=", 0) == 0) {
      if (!parse_u64_flag(arg.c_str(), "--retries=", u, err)) return usage_error(err);
      fabric.retry_limit = static_cast<int>(u);
    } else if (arg.rfind("--backoff-ms=", 0) == 0) {
      if (!parse_u64_flag(arg.c_str(), "--backoff-ms=", u, err)) return usage_error(err);
      fabric.backoff_base_ms = static_cast<int>(u);
    } else if (arg == "--no-local-fallback") {
      fabric.local_fallback = false;
    } else {
      run_args.push_back(arg);
    }
  }
  if (fabric.workers.empty()) {
    return usage_error("dispatch needs --workers=host:port[,host:port...]");
  }

  RunOptions opt;
  opt.spec.scenario = name;
  if (!parse_run_flags(run_args, opt, err)) return usage_error(err);
  if (opt.spec.sharded()) {
    return usage_error("dispatch partitions the grid itself; use --shards=N, not "
                       "--shard=I/N");
  }
  const Scenario* s = lookup(name);
  if (s == nullptr) return kExitUsage;

  std::printf("== dispatch %s: %s ==\n", std::string(s->name()).c_str(),
              std::string(s->title()).c_str());
  std::printf("spec: %s\n", opt.spec.to_json().c_str());
  std::printf("workers:");
  for (const std::string& w : fabric.workers) std::printf(" %s", w.c_str());
  std::printf("\n");

  std::string merged;
  DispatchStats stats;
  if (!dispatch_experiment(*s, opt.spec, fabric, merged, stats, err)) {
    for (const std::string& e : stats.events) std::printf("  %s\n", e.c_str());
    std::fprintf(stderr, "stbpu_bench: dispatch failed: %s\n", err.c_str());
    return 1;
  }
  for (const std::string& e : stats.events) std::printf("  %s\n", e.c_str());
  std::printf(
      "dispatched %u shard(s): %u remote, %u local-fallback; %u failed attempt(s), "
      "%u re-dispatch(es), %u duplicate(s) discarded, %u rejected payload(s), "
      "%u timeout(s), %u connect failure(s)\n",
      stats.shard_count, stats.remote_shards, stats.local_shards, stats.failed_attempts,
      stats.redispatches, stats.duplicates_discarded, stats.rejected_payloads,
      stats.timeouts, stats.connect_failures);

  std::string path = opt.json_path;
  if (path.empty()) path = "BENCH_" + std::string(s->name()) + ".json";
  if (!write_file(path, merged)) {
    std::fprintf(stderr, "stbpu_bench: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

int cmd_compare(const std::vector<std::string>& args) {
  CompareOptions opt;
  std::vector<std::string> paths;
  for (const std::string& arg : args) {
    if (arg.rfind("--ignore=", 0) == 0) {
      std::string list = arg.substr(9);
      std::size_t at = 0;
      while (at <= list.size()) {
        const std::size_t comma = list.find(',', at);
        const std::string key = list.substr(at, comma - at);
        if (!key.empty()) opt.ignore_keys.push_back(key);
        if (comma == std::string::npos) break;
        at = comma + 1;
      }
    } else if (arg.rfind("--", 0) == 0) {
      return usage_error("unknown argument '" + arg + "'");
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) return usage_error("compare needs exactly OLD.json NEW.json");

  std::string old_text, new_text, err;
  if (!read_file(paths[0], old_text)) {
    std::fprintf(stderr, "stbpu_bench: cannot read %s\n", paths[0].c_str());
    return 1;
  }
  if (!read_file(paths[1], new_text)) {
    std::fprintf(stderr, "stbpu_bench: cannot read %s\n", paths[1].c_str());
    return 1;
  }
  CompareReport report;
  if (!compare_bench(old_text, new_text, opt, report, err)) {
    std::fprintf(stderr, "stbpu_bench: compare failed: %s\n", err.c_str());
    return 1;
  }
  std::printf("== compare %s: %s -> %s ==\n", report.bench.c_str(), paths[0].c_str(),
              paths[1].c_str());
  for (const std::string& note : report.notes) {
    std::printf("note: %s\n", note.c_str());
  }
  for (const CompareFinding& d : report.deltas) {
    if (std::isfinite(d.delta_frac)) {
      std::printf("%-32s | %s: %s -> %s (%+.2f%%)\n",
                  d.row.empty() ? "(meta)" : d.row.c_str(), d.key.c_str(),
                  d.old_value.c_str(), d.new_value.c_str(), d.delta_frac * 100.0);
    } else {
      std::printf("%-32s | %s: %s -> %s (delta n/a: zero baseline)\n",
                  d.row.empty() ? "(meta)" : d.row.c_str(), d.key.c_str(),
                  d.old_value.c_str(), d.new_value.c_str());
    }
  }
  for (const CompareFinding& r : report.regressions) {
    std::printf("CORRECTNESS REGRESSION %-9s | %s: %s != %s\n",
                r.row.empty() ? "(meta)" : r.row.c_str(), r.key.c_str(),
                r.old_value.c_str(), r.new_value.c_str());
  }
  std::printf(
      "%zu fields compared: %zu correctness regression(s), %zu throughput delta(s), "
      "%zu note(s)\n",
      report.compared_fields, report.regressions.size(), report.deltas.size(),
      report.notes.size());
  if (!report.ok()) {
    std::fprintf(stderr,
                 "stbpu_bench: correctness fields regressed (throughput deltas alone "
                 "never fail the gate)\n");
    return 1;
  }
  return 0;
}

}  // namespace

int driver_main(int argc, char** argv) {
  register_builtin_scenarios();
  if (argc < 2) {
    print_usage(stderr);
    return kExitUsage;
  }
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);

  if (command == "list") {
    if (!args.empty()) return usage_error("list takes no arguments");
    return cmd_list();
  }
  if (command == "describe" || command == "run") {
    if (args.empty() || args[0].rfind("--", 0) == 0) {
      return usage_error(command + " needs a scenario name");
    }
    const std::string name = args[0];
    args.erase(args.begin());
    return command == "run" ? cmd_run(name, args) : cmd_describe(name, args);
  }
  if (command == "dispatch") {
    // The scenario name may come before or after the fabric flags
    // (`dispatch --workers=... fig5_smt` reads naturally).
    std::string name;
    for (auto it = args.begin(); it != args.end(); ++it) {
      if (it->rfind("--", 0) != 0) {
        name = *it;
        args.erase(it);
        break;
      }
    }
    if (name.empty()) return usage_error("dispatch needs a scenario name");
    return cmd_dispatch(name, args);
  }
  if (command == "worker") return cmd_worker(args);
  if (command == "merge") return cmd_merge(args);
  if (command == "compare") return cmd_compare(args);
  if (command == "help" || command == "--help" || command == "-h") {
    print_usage(stdout);
    return 0;
  }
  return usage_error("unknown command '" + command + "'");
}

int scenario_main(const char* scenario, int argc, char** argv) {
  register_builtin_scenarios();
  std::vector<std::string> args(argv + 1, argv + argc);
  return cmd_run(scenario, args);
}

}  // namespace stbpu::exp
