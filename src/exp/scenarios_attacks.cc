// Attack-execution scenarios: the Table I attack surface, the mechanism
// ablation study, and the §VI empirical equation validation on scaled
// structures. Every grid point wires its own predictor/target, so points
// are pool- and shard-safe.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "analysis/equations.h"
#include "attacks/brute.h"
#include "attacks/dos.h"
#include "attacks/gem.h"
#include "attacks/scaled.h"
#include "attacks/table1.h"
#include "bpu/direction.h"
#include "bpu/predictor.h"
#include "core/monitor.h"
#include "core/stbpu_mapping.h"
#include "exp/scenarios_internal.h"
#include "models/engine.h"
#include "models/models.h"

namespace stbpu::exp {

namespace {

unsigned attack_trials(const Scale& scale) { return scale.paper ? 512 : 128; }

// ---------------------------------------------------------------------------
// table1_attack_surface — Table I, executed cell by cell.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kGadget = 0x0000'1122'3344ULL;

struct Table1Cell {
  const char* cls;  ///< class label (legacy trailing-space formatting kept)
};
constexpr Table1Cell kTable1Cells[] = {
    {"RB-HE BTB "}, {"RB-HE PHT "}, {"RB-HE RSB "}, {"RB-AE PHT "},
    {"RB-AE BTB "}, {"RB-AE RSB "}, {"RB same-AS"}, {"EB-HE BTB "},
    {"EB-AE BTB "}, {"EB-HE RSB "}, {"EB-AE RSB "},
};
constexpr std::size_t kNumTable1Cells = sizeof(kTable1Cells) / sizeof(kTable1Cells[0]);

attacks::AttackResult run_table1_cell(std::size_t cell, bpu::IPredictor& b,
                                      unsigned trials) {
  // Seeds follow the legacy bench's 1..11 ordering so results stay
  // byte-comparable across the refactor.
  switch (cell) {
    case 0: return attacks::btb_reuse_home(b, trials, 1);
    case 1: return attacks::pht_reuse_home(b, trials, 2);
    case 2: return attacks::rsb_reuse_home(b, trials, 3);
    case 3: return attacks::pht_reuse_away(b, trials, 4);
    case 4: return attacks::btb_injection_away(b, trials, 5, kGadget);
    case 5: return attacks::rsb_injection_away(b, trials, 6, kGadget);
    case 6: return attacks::same_address_space_trojan(b, trials, 7, kGadget);
    case 7: return attacks::btb_eviction_home(b, trials, 8);
    case 8: return attacks::btb_eviction_away(b, trials, 9);
    case 9: return attacks::rsb_eviction_home(b, trials, 10);
    default: return attacks::rsb_eviction_away(b, trials, 11);
  }
}

constexpr models::ModelKind kTable1Kinds[] = {
    models::ModelKind::kUnprotected, models::ModelKind::kUcode1,
    models::ModelKind::kConservative, models::ModelKind::kStbpu,
    models::ModelKind::kCibpu,        models::ModelKind::kXorIsolation};
constexpr const char* kTable1KindNames[] = {"baseline", "ucode1", "conserv",
                                            "STBPU",    "CIBPU",  "XORiso"};
constexpr std::size_t kNumTable1Kinds = sizeof(kTable1Kinds) / sizeof(kTable1Kinds[0]);

std::string trimmed(const char* s) {
  std::string t = s;
  while (!t.empty() && t.back() == ' ') t.pop_back();
  return t;
}

class Table1Scenario final : public ScenarioBase {
 public:
  Table1Scenario()
      : ScenarioBase("table1_attack_surface",
                     "Table I: collision-based attack surface, executed") {}

  std::vector<std::string> point_labels(const ExperimentSpec&) const override {
    std::vector<std::string> labels;
    for (const auto& cell : kTable1Cells) {
      for (const char* k : kTable1KindNames) {
        labels.push_back(trimmed(cell.cls) + "/" + k);
      }
    }
    return labels;
  }

  PointResult run_point(const ExperimentSpec& spec, std::size_t index) const override {
    const std::size_t cell = index / kNumTable1Kinds;
    const unsigned k = static_cast<unsigned>(index % kNumTable1Kinds);
    const auto mspec = apply_spec_overrides({.model = kTable1Kinds[k]}, spec);
    auto model = models::BpuModel::create(mspec);
    const auto r = run_table1_cell(cell, *model, attack_trials(spec.scale));
    PointResult p;
    p.set("name", r.name)
        .set("success_rate", r.success_rate)
        .set("succeeds", r.success ? "true" : "false");
    return p;
  }

  ScenarioOutput aggregate(const ExperimentSpec& spec,
                           const std::vector<PointResult>& points) const override {
    ScenarioOutput out;
    // One output row per attack; only cells whose per-model points are all
    // selected produce a complete legacy row.
    for (std::size_t cell = 0; cell < kNumTable1Cells; ++cell) {
      std::string name;
      std::vector<Field> fields;
      fields.push_back({"class", Value(kTable1Cells[cell].cls)});
      bool complete = true;
      for (unsigned k = 0; k < kNumTable1Kinds; ++k) {
        const std::size_t index = cell * kNumTable1Kinds + k;
        if (!spec.selected(index)) {
          complete = false;
          break;
        }
        const PointResult& p = points[index];
        if (k == 0) name = p.str("name");
        fields.push_back({std::string(kTable1KindNames[k]) + "_success_rate",
                          Value(p.num("success_rate"))});
        fields.push_back(
            {std::string(kTable1KindNames[k]) + "_succeeds", Value(p.str("succeeds"))});
      }
      if (!complete) continue;
      Row& row = out.rows.emplace_back(name);
      row.fields = std::move(fields);
    }
    out.meta.push_back({"trials", Value(std::uint64_t{attack_trials(spec.scale)})});
    return out;
  }
};

// ---------------------------------------------------------------------------
// ablation — which STBPU mechanism stops which attack.
// ---------------------------------------------------------------------------

/// ψ-remapping without φ-encryption.
class RemapOnlyMapping final : public bpu::MappingProvider {
 public:
  explicit RemapOnlyMapping(core::STManager* stm) : inner_(stm) {}
  bpu::BtbIndex btb_mode1(std::uint64_t ip, const bpu::ExecContext& c) const override {
    return inner_.btb_mode1(ip, c);
  }
  std::uint32_t btb_mode2_tag(std::uint64_t b, const bpu::ExecContext& c) const override {
    return inner_.btb_mode2_tag(b, c);
  }
  std::uint32_t pht_index_1level(std::uint64_t ip, const bpu::ExecContext& c) const override {
    return inner_.pht_index_1level(ip, c);
  }
  std::uint32_t pht_index_2level(std::uint64_t ip, std::uint64_t g,
                                 const bpu::ExecContext& c) const override {
    return inner_.pht_index_2level(ip, g, c);
  }
  std::uint64_t encode_target(std::uint64_t t, const bpu::ExecContext&) const override {
    return t & 0xFFFF'FFFFULL;  // plaintext store
  }
  std::uint64_t decode_target(std::uint64_t ip, std::uint64_t s,
                              const bpu::ExecContext&) const override {
    return (ip & 0xFFFF'0000'0000ULL) | (s & 0xFFFF'FFFFULL);
  }
  std::uint32_t tage_index(std::uint64_t ip, std::uint64_t f, unsigned t, unsigned b,
                           const bpu::ExecContext& c) const override {
    return inner_.tage_index(ip, f, t, b, c);
  }
  std::uint32_t tage_tag(std::uint64_t ip, std::uint64_t f, unsigned t, unsigned b,
                         const bpu::ExecContext& c) const override {
    return inner_.tage_tag(ip, f, t, b, c);
  }
  std::uint32_t perceptron_row(std::uint64_t ip, unsigned b,
                               const bpu::ExecContext& c) const override {
    return inner_.perceptron_row(ip, b, c);
  }

 private:
  core::StbpuMapping inner_;
};

/// φ-encryption on top of the legacy (deterministic) index mapping.
class EncryptOnlyMapping final : public bpu::BaselineMapping {
 public:
  explicit EncryptOnlyMapping(core::STManager* stm) : stm_(stm) {}
  std::uint64_t encode_target(std::uint64_t t, const bpu::ExecContext& c) const override {
    return (t & 0xFFFF'FFFFULL) ^ stm_->token(c).phi;
  }
  std::uint64_t decode_target(std::uint64_t ip, std::uint64_t s,
                              const bpu::ExecContext& c) const override {
    return (ip & 0xFFFF'0000'0000ULL) | ((s ^ stm_->token(c).phi) & 0xFFFF'FFFFULL);
  }

 private:
  core::STManager* stm_;
};

constexpr const char* kVariantNames[] = {"full STBPU", "remap only (no phi)",
                                         "encrypt only (no psi)", "no monitor"};
constexpr const char* kAblationJobs[] = {"spectre_rsb", "branchscope", "brute_force"};

struct AblationVariant {
  std::unique_ptr<core::STManager> stm;
  std::unique_ptr<bpu::MappingProvider> mapping;
  std::unique_ptr<core::EventMonitor> monitor;
  std::unique_ptr<bpu::CorePredictor> bpu;
};

AblationVariant make_variant(unsigned which) {
  AblationVariant v;
  v.stm = std::make_unique<core::STManager>(0x1234);
  switch (which) {
    case 0:
      v.mapping = std::make_unique<core::StbpuMapping>(v.stm.get());
      v.monitor = std::make_unique<core::EventMonitor>(
          v.stm.get(), core::MonitorConfig::from_difficulty(0.05, false));
      break;
    case 1:
      v.mapping = std::make_unique<RemapOnlyMapping>(v.stm.get());
      break;
    case 2:
      v.mapping = std::make_unique<EncryptOnlyMapping>(v.stm.get());
      break;
    default:
      v.mapping = std::make_unique<core::StbpuMapping>(v.stm.get());
      break;
  }
  v.bpu = std::make_unique<bpu::CorePredictor>(
      bpu::CorePredictorConfig{}, v.mapping.get(),
      std::make_unique<bpu::SklCondPredictor>(v.mapping.get()), v.monitor.get());
  return v;
}

class AblationScenario final : public ScenarioBase {
 public:
  AblationScenario()
      : ScenarioBase("ablation", "Ablation: which STBPU mechanism stops which attack") {}

  std::vector<std::string> point_labels(const ExperimentSpec&) const override {
    std::vector<std::string> labels;
    for (const char* variant : kVariantNames) {
      for (const char* job : kAblationJobs) {
        labels.push_back(std::string(variant) + "/" + job);
      }
    }
    return labels;
  }

  PointResult run_point(const ExperimentSpec& spec, std::size_t index) const override {
    const unsigned which = static_cast<unsigned>(index / 3);
    const unsigned job = static_cast<unsigned>(index % 3);
    const unsigned trials = attack_trials(spec.scale);
    auto v = make_variant(which);
    PointResult p;
    if (job == 0) {
      const auto r = attacks::rsb_injection_away(*v.bpu, trials, 6, kGadget);
      p.set("success_rate", r.success_rate).set("success", r.success ? 1 : 0);
    } else if (job == 1) {
      const auto r = attacks::pht_reuse_home(*v.bpu, trials, 2);
      p.set("success_rate", r.success_rate).set("success", r.success ? 1 : 0);
    } else {
      attacks::ReuseSearchConfig cfg;
      cfg.max_set_size = spec.scale.paper ? 400'000 : 60'000;
      cfg.internal_collision_checks = false;
      (void)attacks::reuse_collision_search(*v.bpu, cfg);
      p.set("rotations", std::uint64_t{v.stm->rerandomizations()});
    }
    return p;
  }

  ScenarioOutput aggregate(const ExperimentSpec& spec,
                           const std::vector<PointResult>& points) const override {
    ScenarioOutput out;
    for (unsigned which = 0; which < 4; ++which) {
      const std::size_t base = which * std::size_t{3};
      if (!spec.selected(base) || !spec.selected(base + 1) || !spec.selected(base + 2)) {
        continue;
      }
      out.rows.emplace_back(kVariantNames[which])
          .set("spectre_rsb_success_rate", points[base].num("success_rate"))
          .set("branchscope_success_rate", points[base + 1].num("success_rate"))
          .set("rotations", points[base + 2].u64("rotations"));
    }
    out.meta.push_back({"trials", Value(std::uint64_t{attack_trials(spec.scale)})});
    return out;
  }
};

// ---------------------------------------------------------------------------
// sec6_empirical — Eq. (2)/(4) validated against scaled structures.
// ---------------------------------------------------------------------------

constexpr attacks::ScaledGeometry kGeoms[] = {
    {.set_bits = 3, .tag_bits = 3, .offset_bits = 1, .ways = 4},
    {.set_bits = 4, .tag_bits = 3, .offset_bits = 1, .ways = 4},
    {.set_bits = 4, .tag_bits = 4, .offset_bits = 1, .ways = 8},
    {.set_bits = 5, .tag_bits = 4, .offset_bits = 2, .ways = 8},
};
constexpr std::size_t kNumGeoms = sizeof(kGeoms) / sizeof(kGeoms[0]);

unsigned empirical_reps(const Scale& scale) { return scale.paper ? 15 : 7; }

std::string geom_label(const attacks::ScaledGeometry& g) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "reuse_I%llu_T%llu_O%llu_W%u",
                static_cast<unsigned long long>(g.sets()),
                static_cast<unsigned long long>(g.tag_space()),
                static_cast<unsigned long long>(g.offset_space()), g.ways);
  return buf;
}

class Sec6EmpiricalScenario final : public ScenarioBase {
 public:
  Sec6EmpiricalScenario()
      : ScenarioBase("sec6_empirical",
                     "Section VI: empirical equation validation on scaled "
                     "structures") {}

  std::vector<std::string> point_labels(const ExperimentSpec& spec) const override {
    std::vector<std::string> labels;
    const unsigned reps = empirical_reps(spec.scale);
    for (const auto& g : kGeoms) {
      for (unsigned rep = 0; rep < reps; ++rep) {
        labels.push_back(geom_label(g) + "/rep" + std::to_string(rep));
      }
    }
    labels.emplace_back("monitor_race");
    return labels;
  }

  PointResult run_point(const ExperimentSpec& spec, std::size_t index) const override {
    const unsigned reps = empirical_reps(spec.scale);
    PointResult p;
    if (index < kNumGeoms * std::size_t{reps}) {
      const auto& g = kGeoms[index / reps];
      const unsigned rep = static_cast<unsigned>(index % reps);
      auto target = attacks::make_scaled_target(g, /*stbpu=*/true, 1000 + rep);
      attacks::ReuseSearchConfig cfg;
      cfg.seed = 77 + rep;
      cfg.max_set_size = 64 * g.ito();
      const auto r = attacks::reuse_collision_search(*target.predictor, cfg);
      p.set("found", r.found ? 1 : 0)
          .set("mispredictions", std::uint64_t{r.mispredictions})
          .set("set_size", std::uint64_t{r.set_size});
    } else {
      // The monitor wins the race: GEM against a scaled STBPU whose
      // eviction threshold is r=0.05 of the structure's binding complexity.
      const attacks::ScaledGeometry g{
          .set_bits = 6, .tag_bits = 5, .offset_bits = 2, .ways = 8};
      analysis::BtbGeometry eq;
      eq.sets = static_cast<double>(g.sets());
      eq.ways = g.ways;
      core::MonitorConfig mc;
      mc.eviction_threshold =
          static_cast<std::uint64_t>(0.05 * analysis::gem_eviction_cost(eq, 0.5));
      mc.misprediction_threshold = 1'000'000;
      auto target = attacks::make_scaled_target(g, /*stbpu=*/true, 99, &mc);
      attacks::GemConfig cfg;
      cfg.ways = g.ways;
      cfg.sets_hint = static_cast<unsigned>(g.sets());
      const auto r = attacks::gem_eviction_set(*target.predictor, 0x0000'2345'6780ULL, cfg);
      p.set("evictions", std::uint64_t{r.evictions})
          .set("rotations", std::uint64_t{target.stm->rerandomizations()});
    }
    return p;
  }

  ScenarioOutput aggregate(const ExperimentSpec& spec,
                           const std::vector<PointResult>& points) const override {
    ScenarioOutput out;
    const unsigned reps = empirical_reps(spec.scale);
    for (std::size_t gi = 0; gi < kNumGeoms; ++gi) {
      std::vector<std::uint64_t> misp, sizes;
      bool complete = true;
      for (unsigned rep = 0; rep < reps; ++rep) {
        const std::size_t index = gi * reps + rep;
        if (!spec.selected(index)) {
          complete = false;
          break;
        }
        const PointResult& p = points[index];
        const Value* found = p.find("found");
        if (found != nullptr && found->int_value() != 0) {
          misp.push_back(p.u64("mispredictions"));
          sizes.push_back(p.u64("set_size"));
        }
      }
      if (!complete) continue;
      std::sort(misp.begin(), misp.end());
      std::sort(sizes.begin(), sizes.end());
      const auto& g = kGeoms[gi];
      analysis::BtbGeometry eq;
      eq.sets = static_cast<double>(g.sets());
      eq.tag_space = static_cast<double>(g.tag_space());
      eq.offset_space = static_cast<double>(g.offset_space());
      eq.ways = g.ways;
      const auto predicted = analysis::btb_reuse_cost(eq);
      out.rows.emplace_back(geom_label(g))
          .set("ito", std::uint64_t{g.ito()})
          .set("measured_mispredictions",
               misp.empty() ? std::uint64_t{0} : misp[misp.size() / 2])
          .set("equation_mispredictions", predicted.mispredictions_m)
          .set("measured_set_size",
               sizes.empty() ? std::uint64_t{0} : sizes[sizes.size() / 2])
          .set("equation_set_size", predicted.set_size_n);
    }
    const std::size_t race = kNumGeoms * std::size_t{reps};
    if (spec.selected(race)) {
      out.rows.emplace_back("monitor_race")
          .set("evictions", points[race].u64("evictions"))
          .set("rotations", points[race].u64("rotations"));
    }
    return out;
  }
};

// ---------------------------------------------------------------------------
// attack_matrix — the rival-defense study: every collision/DoS attack
// against every registered defense arm, executed twice per point (legacy
// virtual BpuModel and the devirtualized engine) so each cell doubles as a
// bit-identity anchor (`identical_stats`).
// ---------------------------------------------------------------------------

constexpr const char* kMatrixAttackNames[] = {"brute_reuse", "gem_btb", "dos_eviction",
                                              "dos_reuse"};
constexpr std::size_t kNumMatrixAttacks =
    sizeof(kMatrixAttackNames) / sizeof(kMatrixAttackNames[0]);

/// The matrix's arm axis after the spec's `arms` filter (names validated at
/// spec-parse time, so an unknown name never reaches this point).
std::vector<models::ModelKind> matrix_arms(const ExperimentSpec& spec) {
  constexpr models::ModelKind kAll[] = {
      models::ModelKind::kUnprotected, models::ModelKind::kStbpu,
      models::ModelKind::kCibpu, models::ModelKind::kXorIsolation};
  std::vector<models::ModelKind> arms;
  for (const models::ModelKind kind : kAll) {
    if (spec.arms.empty()) {
      arms.push_back(kind);
      continue;
    }
    const std::string name = models::to_string(kind);
    for (const std::string& a : spec.arms) {
      if (a == name) {
        arms.push_back(kind);
        break;
      }
    }
  }
  return arms;
}

class AttackMatrixScenario final : public ScenarioBase {
 public:
  AttackMatrixScenario()
      : ScenarioBase("attack_matrix",
                     "Rival-defense matrix: collision/DoS attacks vs every "
                     "defense arm, legacy and engine paths compared") {}

  std::vector<std::string> point_labels(const ExperimentSpec& spec) const override {
    std::vector<std::string> labels;
    const auto arms = matrix_arms(spec);
    for (const char* attack : kMatrixAttackNames) {
      for (const models::ModelKind kind : arms) {
        labels.push_back(std::string(attack) + "/" + models::to_string(kind));
      }
    }
    return labels;
  }

  PointResult run_point(const ExperimentSpec& spec, std::size_t index) const override {
    const auto arms = matrix_arms(spec);
    const std::size_t attack = index / arms.size();
    const models::ModelKind kind = arms[index % arms.size()];
    const auto mspec = apply_spec_overrides(
        {.model = kind, .direction = models::DirectionKind::kSklCond}, spec);
    PointResult p;
    p.set("model", models::to_string(kind));
    const auto rerands_of = [](bpu::IPredictor& engine) -> std::uint64_t {
      core::EventMonitor* mon = models::engine_monitor(engine);
      return mon != nullptr ? mon->rerandomizations() : 0;
    };
    switch (attack) {
      case 0: {  // brute-force reuse-collision search (§VI-A2)
        attacks::ReuseSearchConfig cfg;
        cfg.max_set_size = spec.scale.paper ? 120'000 : 20'000;
        cfg.internal_collision_checks = false;
        auto legacy = models::BpuModel::create(mspec);
        const auto rl = attacks::reuse_collision_search(*legacy, cfg);
        auto engine = models::make_engine(mspec);
        const auto re = attacks::reuse_collision_search(*engine, cfg);
        const bool identical =
            rl.found == re.found && rl.set_size == re.set_size &&
            rl.mispredictions == re.mispredictions &&
            rl.total_mispredictions == re.total_mispredictions &&
            rl.evictions == re.evictions && rl.branches == re.branches;
        p.set("succeeds", re.found ? "true" : "false")
            .set("set_size", std::uint64_t{re.set_size})
            .set("mispredictions", std::uint64_t{re.mispredictions})
            .set("evictions", std::uint64_t{re.evictions})
            .set("branches", std::uint64_t{re.branches})
            .set("rerandomizations", rerands_of(*engine))
            .set("identical_stats", identical ? "true" : "false");
        break;
      }
      case 1: {  // GEM eviction-set construction (§VI-A4)
        const attacks::GemConfig cfg;
        auto legacy = models::BpuModel::create(mspec);
        const auto rl = attacks::gem_eviction_set(*legacy, 0x0000'2345'6780ULL, cfg);
        auto engine = models::make_engine(mspec);
        const auto re = attacks::gem_eviction_set(*engine, 0x0000'2345'6780ULL, cfg);
        const bool identical =
            rl.success == re.success && rl.eviction_set == re.eviction_set &&
            rl.branches == re.branches && rl.evictions == re.evictions &&
            rl.probes == re.probes && rl.rounds == re.rounds;
        p.set("succeeds", re.success ? "true" : "false")
            .set("eviction_set_size", std::uint64_t{re.eviction_set.size()})
            .set("rounds", std::uint64_t{re.rounds})
            .set("probes", std::uint64_t{re.probes})
            .set("evictions", std::uint64_t{re.evictions})
            .set("branches", std::uint64_t{re.branches})
            .set("rerandomizations", rerands_of(*engine))
            .set("identical_stats", identical ? "true" : "false");
        break;
      }
      default: {  // DoS: eviction-based (targeted) or reuse-based (§VI-A6)
        attacks::DosConfig cfg;
        cfg.rounds = spec.scale.paper ? 2000 : 500;
        const auto run = [&](bpu::IPredictor& clean, bpu::IPredictor& attacked) {
          return attack == 2 ? attacks::dos_eviction(clean, attacked, cfg,
                                                     /*targeted=*/true)
                             : attacks::dos_reuse(clean, attacked, cfg);
        };
        auto legacy_clean = models::BpuModel::create(mspec);
        auto legacy_attacked = models::BpuModel::create(mspec);
        const auto rl = run(*legacy_clean, *legacy_attacked);
        auto engine_clean = models::make_engine(mspec);
        auto engine_attacked = models::make_engine(mspec);
        const auto re = run(*engine_clean, *engine_attacked);
        const bool identical = rl.victim_oae_clean == re.victim_oae_clean &&
                               rl.victim_oae_attacked == re.victim_oae_attacked &&
                               rl.attacker_branches == re.attacker_branches;
        // A DoS "succeeds" when it costs the victim more than five points
        // of prediction accuracy.
        p.set("succeeds", re.degradation() > 0.05 ? "true" : "false")
            .set("clean_accuracy", re.victim_oae_clean)
            .set("attacked_accuracy", re.victim_oae_attacked)
            .set("degradation", re.degradation())
            .set("attacker_branches", std::uint64_t{re.attacker_branches})
            .set("rerandomizations", rerands_of(*engine_attacked))
            .set("identical_stats", identical ? "true" : "false");
        break;
      }
    }
    return p;
  }

  ScenarioOutput aggregate(const ExperimentSpec& spec,
                           const std::vector<PointResult>& points) const override {
    ScenarioOutput out;
    const auto arms = matrix_arms(spec);
    // One row per attack, one `<arm>_`-prefixed field group per selected
    // arm (Table I style: the three-way comparison reads across a row).
    for (std::size_t attack = 0; attack < kNumMatrixAttacks; ++attack) {
      Row& row = out.rows.emplace_back(kMatrixAttackNames[attack]);
      for (std::size_t ai = 0; ai < arms.size(); ++ai) {
        const std::size_t index = attack * arms.size() + ai;
        if (!spec.selected(index)) continue;
        const std::string prefix = models::to_string(arms[ai]) + "_";
        for (const Field& f : points[index].fields) {
          if (f.key == "model") continue;
          row.fields.push_back({prefix + f.key, f.value});
        }
      }
    }
    out.meta.push_back({"arms", Value(std::uint64_t{arms.size()})});
    return out;
  }
};

}  // namespace

namespace scenarios {

void register_attacks() {
  register_scenario(new Table1Scenario);
  register_scenario(new AblationScenario);
  register_scenario(new Sec6EmpiricalScenario);
  register_scenario(new AttackMatrixScenario);
}

}  // namespace scenarios

}  // namespace stbpu::exp
