// Shared plumbing for the built-in scenario implementations (one
// registration function per translation unit, called from
// register_builtin_scenarios in scenarios.cc).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "exp/scenario.h"

namespace stbpu::exp {

class ScenarioBase : public Scenario {
 public:
  ScenarioBase(std::string name, std::string title)
      : name_(std::move(name)), title_(std::move(title)) {}
  [[nodiscard]] std::string_view name() const final { return name_; }
  [[nodiscard]] std::string_view title() const final { return title_; }

 private:
  std::string name_, title_;
};

/// Indices of the spec's selected grid points, in sweep order (the whole
/// grid when no explicit --points selection). Aggregates iterate this so a
/// subset run produces rows — and averages — over exactly what ran.
inline std::vector<std::size_t> selected_indices(const ExperimentSpec& spec,
                                                 std::size_t grid_size) {
  std::vector<std::size_t> out;
  out.reserve(grid_size);
  for (std::size_t i = 0; i < grid_size; ++i) {
    if (spec.selected(i)) out.push_back(i);
  }
  return out;
}

namespace scenarios {
void register_analysis();  // fig2_remapgen, sec6_thresholds, table2_remap_functions
void register_attacks();   // table1_attack_surface, ablation, sec6_empirical
void register_trace();     // fig3_oae
void register_ooo();       // fig4_single, fig5_smt, fig6_rsweep, ooo_engine
}  // namespace scenarios

}  // namespace stbpu::exp
