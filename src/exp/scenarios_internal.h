// Shared plumbing for the built-in scenario implementations (one
// registration function per translation unit, called from
// register_builtin_scenarios in scenarios.cc).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/remap_cache.h"
#include "exp/scenario.h"
#include "models/models.h"
#include "sim/ooo.h"

namespace stbpu::exp {

class ScenarioBase : public Scenario {
 public:
  ScenarioBase(std::string name, std::string title)
      : name_(std::move(name)), title_(std::move(title)) {}
  [[nodiscard]] std::string_view name() const final { return name_; }
  [[nodiscard]] std::string_view title() const final { return title_; }

 private:
  std::string name_, title_;
};

/// Indices of the spec's selected grid points, in sweep order (the whole
/// grid when no explicit --points selection). Aggregates iterate this so a
/// subset run produces rows — and averages — over exactly what ran.
inline std::vector<std::size_t> selected_indices(const ExperimentSpec& spec,
                                                 std::size_t grid_size) {
  std::vector<std::size_t> out;
  out.reserve(grid_size);
  for (std::size_t i = 0; i < grid_size; ++i) {
    if (spec.selected(i)) out.push_back(i);
  }
  return out;
}

/// Model spec with the experiment spec's overrides applied: the seed, and
/// the optional monitor thresholds / difficulty factor (the spec's nested
/// "monitor" object). One helper shared by every scenario that builds
/// engines, so a --gamma-m sweep reaches all of them identically. fig6 is
/// the deliberate exception for difficulty_r: it sweeps r itself, so it
/// overwrites rerand_difficulty_r per point after this call (explicit Γ
/// overrides still pin the thresholds there — documented in
/// docs/EXPERIMENTS.md).
inline models::ModelSpec apply_spec_overrides(models::ModelSpec mspec,
                                              const ExperimentSpec& spec) {
  if (spec.seed != 0) mspec.seed = spec.seed;
  if (spec.monitor.difficulty_r != 0.0) {
    mspec.rerand_difficulty_r = spec.monitor.difficulty_r;
  }
  mspec.misprediction_threshold = spec.monitor.misprediction_threshold;
  mspec.eviction_threshold = spec.monitor.eviction_threshold;
  mspec.tagged_misprediction_threshold = spec.monitor.tagged_misprediction_threshold;
  return mspec;
}

/// The `--cache-stats` side channel: per-function remap memo-cache counters
/// attached to a measurement point, so a BENCH_*.json consumer can
/// attribute batching wins (probe hits, compacted-miss batch fills, drops)
/// instead of inferring them from throughput deltas.
inline void append_cache_stats(PointResult& p, const core::RemapCacheStats& s) {
  p.set("cache_hits", s.hits)
      .set("cache_misses", s.misses)
      .set("cache_invalidations", s.invalidations)
      .set("cache_batch_requests", s.batch_requests)
      .set("cache_batch_rt_requests", s.batch_rt_requests)
      .set("cache_batch_drops", s.batch_drops)
      .set("cache_batch_probe_hits", s.batch_probe_hits)
      .set("cache_batch_fills", s.batch_fills);
  for (unsigned f = 0; f < core::RemapCacheStats::kFnCount; ++f) {
    const std::string base = std::string("cache_") + core::RemapCacheStats::fn_name(f);
    p.set(base + "_hits", s.fn_hits[f]).set(base + "_misses", s.fn_misses[f]);
    if (s.fn_batch_fills[f] != 0) p.set(base + "_batch_fills", s.fn_batch_fills[f]);
    if (s.fn_batch_probe_hits[f] != 0) {
      p.set(base + "_batch_probe_hits", s.fn_batch_probe_hits[f]);
    }
  }
}

/// The `--stall-stats` side channel: the tick core's per-thread stall
/// attribution attached to a cycle-level measurement point — where the
/// simulated machine's cycles went (shared fetch port, branch redirects,
/// ROB/IQ/LQ/SQ occupancy), so IPC deltas between configurations are
/// attributable to a pipeline structure instead of inferred.
inline void append_stall_stats(PointResult& p, const sim::OooResult& r) {
  for (unsigned t = 0; t < r.threads; ++t) {
    const sim::OooThreadStalls& s = r.stalls[t];
    // Split concatenation (GCC 12 -Wrestrict false positive on
    // `"lit" + std::string&&` chains, as in runner.cc).
    std::string base = "t";
    base += std::to_string(t);
    base += "_stall_";
    p.set(base + "fetch_bandwidth_cycles", s.fetch_bandwidth)
        .set(base + "redirect_cycles", s.redirect)
        .set(base + "rob_cycles", s.rob)
        .set(base + "iq_cycles", s.iq)
        .set(base + "lq_cycles", s.lq)
        .set(base + "sq_cycles", s.sq);
  }
}

namespace scenarios {
void register_analysis();  // fig2_remapgen, sec6_thresholds, table2_remap_functions
void register_attacks();   // table1_attack_surface, ablation, sec6_empirical
void register_trace();     // fig3_oae
void register_ooo();       // fig4_single, fig5_smt, fig6_rsweep, ooo_engine
void register_mix();       // mix_batch (keyed-mix kernel study)
void register_tenant();    // tenant_churn (multi-tenant ψ-token service)
}  // namespace scenarios

}  // namespace stbpu::exp
