#include "exp/scenario.h"
#include "exp/scenarios_internal.h"

namespace stbpu::exp {

void register_builtin_scenarios() {
  static const bool once = [] {
    // Registration order is the `list` order: the paper's figures, the
    // extension studies, then the simulator-engineering scenarios.
    scenarios::register_analysis();
    scenarios::register_trace();
    scenarios::register_ooo();
    scenarios::register_attacks();
    scenarios::register_mix();
    scenarios::register_tenant();
    return true;
  }();
  (void)once;
}

}  // namespace stbpu::exp
