#include "exp/scenario.h"

#include <cstdio>

#include "exp/json.h"

namespace stbpu::exp {

namespace {

std::string format_double(double d, const char* fmt) {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, d);
  std::string out = buf;
  // Keep double-typed fields recognizably floating-point in the JSON text
  // (integral values would otherwise render as bare integers): the compare
  // gate classifies correctness fields (integer literals) vs measurement
  // fields (floating literals) from the literal form alone.
  if (out.find_first_of(".eE") == std::string::npos &&
      out.find_first_not_of("-0123456789") == std::string::npos) {
    out += ".0";
  }
  return out;
}

std::vector<const Scenario*>& registry() {
  // Deliberately immortal (never-destroyed) singleton: scenarios register
  // once and live for the whole process, and keeping the vector itself
  // alive through exit keeps every registered Scenario* reachable — so
  // LeakSanitizer sees "still reachable", not a leak. A plain static
  // vector would run its destructor before the leak check and orphan the
  // registry's contents.
  static auto* scenarios = new std::vector<const Scenario*>();
  return *scenarios;
}

}  // namespace

std::string Value::render() const {
  switch (type_) {
    case Type::kString: return json_quote(str_);
    case Type::kDouble: return format_double(num_, "%.10g");
    case Type::kU64: return std::to_string(u64_);
    case Type::kInt: return std::to_string(int_);
  }
  return "null";
}

std::string Value::render_exact() const {
  if (type_ == Type::kDouble) return format_double(num_, "%.17g");
  return render();
}

void register_scenario(const Scenario* scenario) { registry().push_back(scenario); }

const Scenario* find_scenario(std::string_view name) {
  for (const Scenario* s : registry()) {
    if (s->name() == name) return s;
  }
  return nullptr;
}

const std::vector<const Scenario*>& all_scenarios() { return registry(); }

}  // namespace stbpu::exp
