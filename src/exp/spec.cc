#include "exp/spec.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "models/models.h"

namespace stbpu::exp {

namespace {

/// Shortest-round-trip double literal: %.17g always parses back to the same
/// bits, so spec → JSON → spec is exact for difficulty_r.
std::string double_literal(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::optional<Scale> Scale::named(const std::string& name) {
  if (name == "quick") return Scale{};
  if (name == "paper") {
    Scale s;
    s.paper = true;
    s.trace_branches = 5'000'000;
    s.trace_warmup = 500'000;
    s.ooo_instructions = 100'000'000;  // paper: 110M incl. warm-up
    s.ooo_warmup = 10'000'000;
    return s;
  }
  return std::nullopt;
}

bool ExperimentSpec::selected(std::size_t index) const noexcept {
  if (points.empty()) return true;
  return std::binary_search(points.begin(), points.end(), index);
}

std::vector<std::size_t> ExperimentSpec::owned_points(std::size_t grid_size) const {
  std::vector<std::size_t> out;
  std::size_t ordinal = 0;
  for (std::size_t i = 0; i < grid_size; ++i) {
    if (!selected(i)) continue;
    if (ordinal % shard_count == shard_index) out.push_back(i);
    ++ordinal;
  }
  return out;
}

std::string ExperimentSpec::to_json(bool with_shard) const {
  std::string out = "{";
  out += "\"scenario\": " + json_quote(scenario);
  out += ", \"scale\": {\"name\": " + json_quote(scale.name());
  out += ", \"trace_branches\": " + std::to_string(scale.trace_branches);
  out += ", \"trace_warmup\": " + std::to_string(scale.trace_warmup);
  out += ", \"ooo_instructions\": " + std::to_string(scale.ooo_instructions);
  out += ", \"ooo_warmup\": " + std::to_string(scale.ooo_warmup) + "}";
  if (jobs != 0) out += ", \"jobs\": " + std::to_string(jobs);
  if (with_shard && sharded()) {
    out += ", \"shard\": {\"index\": " + std::to_string(shard_index) +
           ", \"count\": " + std::to_string(shard_count) + "}";
  }
  if (!points.empty()) {
    out += ", \"points\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (i != 0) out += ", ";
      out += std::to_string(points[i]);
    }
    out += "]";
  }
  if (!trace_file.empty()) out += ", \"trace_file\": " + json_quote(trace_file);
  if (seed != 0) out += ", \"seed\": " + std::to_string(seed);
  if (!arms.empty()) {
    out += ", \"arms\": [";
    for (std::size_t i = 0; i < arms.size(); ++i) {
      if (i != 0) out += ", ";
      out += json_quote(arms[i]);
    }
    out += "]";
  }
  if (monitor.any()) {
    out += ", \"monitor\": {";
    bool first = true;
    const auto field = [&](const char* key, const std::string& value) {
      if (!first) out += ", ";
      first = false;
      out += std::string("\"") + key + "\": " + value;
    };
    if (monitor.difficulty_r != 0.0) {
      field("difficulty_r", double_literal(monitor.difficulty_r));
    }
    if (monitor.misprediction_threshold != 0) {
      field("misprediction_threshold", std::to_string(monitor.misprediction_threshold));
    }
    if (monitor.eviction_threshold != 0) {
      field("eviction_threshold", std::to_string(monitor.eviction_threshold));
    }
    if (monitor.tagged_misprediction_threshold != 0) {
      field("tagged_misprediction_threshold",
            std::to_string(monitor.tagged_misprediction_threshold));
    }
    out += "}";
  }
  if (cache_stats) out += ", \"cache_stats\": true";
  if (stall_stats) out += ", \"stall_stats\": true";
  out += "}";
  return out;
}

namespace {

bool want_u64(const JsonValue& v, std::uint64_t& out, const char* key, std::string& err) {
  // strtoull would silently wrap negatives to huge values; reject any
  // non-integral literal outright ("a sweep spec is never silently
  // reinterpreted").
  if (!v.is_number() || v.text().find_first_of("-+.eE") != std::string::npos) {
    err = std::string("'") + key + "' must be a non-negative integer";
    return false;
  }
  out = v.as_u64();
  return true;
}

bool want_positive_double(const JsonValue& v, double& out, const char* key,
                          std::string& err) {
  if (!v.is_number()) {
    err = std::string("'") + key + "' must be a number";
    return false;
  }
  const double d = v.as_double();
  if (!(d > 0.0)) {  // !(>) also rejects NaN
    err = std::string("'") + key + "' must be a positive number";
    return false;
  }
  out = d;
  return true;
}

}  // namespace

bool ExperimentSpec::from_json(const JsonValue& v, ExperimentSpec& out, std::string& err) {
  out = ExperimentSpec{};
  if (!v.is_object()) {
    err = "spec must be a JSON object";
    return false;
  }
  for (const auto& [key, val] : v.members()) {
    if (key == "scenario") {
      if (!val.is_string()) {
        err = "'scenario' must be a string";
        return false;
      }
      out.scenario = val.text();
    } else if (key == "scale") {
      if (!val.is_object()) {
        err = "'scale' must be an object";
        return false;
      }
      // The name seeds the preset; explicit budget fields override it.
      if (const JsonValue* name = val.find("name")) {
        const auto preset = Scale::named(name->text());
        if (!name->is_string() || !preset) {
          err = "unknown scale '" + name->text() + "' (use quick|paper)";
          return false;
        }
        out.scale = *preset;
      }
      for (const auto& [sk, sv] : val.members()) {
        if (sk == "name") continue;
        std::uint64_t* field = nullptr;
        if (sk == "trace_branches") field = &out.scale.trace_branches;
        if (sk == "trace_warmup") field = &out.scale.trace_warmup;
        if (sk == "ooo_instructions") field = &out.scale.ooo_instructions;
        if (sk == "ooo_warmup") field = &out.scale.ooo_warmup;
        if (field == nullptr) {
          err = "unknown scale field '" + sk + "'";
          return false;
        }
        if (!want_u64(sv, *field, sk.c_str(), err)) return false;
      }
    } else if (key == "jobs") {
      std::uint64_t jobs = 0;
      if (!want_u64(val, jobs, "jobs", err)) return false;
      out.jobs = static_cast<unsigned>(jobs);
    } else if (key == "shard") {
      if (!val.is_object()) {
        err = "'shard' must be an object";
        return false;
      }
      std::uint64_t index = 0, count = 1;
      if (const JsonValue* i = val.find("index")) {
        if (!want_u64(*i, index, "shard.index", err)) return false;
      }
      if (const JsonValue* c = val.find("count")) {
        if (!want_u64(*c, count, "shard.count", err)) return false;
      }
      if (count == 0 || index >= count) {
        err = "shard index must satisfy index < count";
        return false;
      }
      out.shard_index = static_cast<std::uint32_t>(index);
      out.shard_count = static_cast<std::uint32_t>(count);
    } else if (key == "points") {
      if (!val.is_array()) {
        err = "'points' must be an array of indices";
        return false;
      }
      for (const JsonValue& p : val.items()) {
        if (!p.is_number()) {
          err = "'points' entries must be numbers";
          return false;
        }
        out.points.push_back(static_cast<std::size_t>(p.as_u64()));
      }
      std::sort(out.points.begin(), out.points.end());
      out.points.erase(std::unique(out.points.begin(), out.points.end()),
                       out.points.end());
    } else if (key == "trace_file") {
      if (!val.is_string()) {
        err = "'trace_file' must be a string";
        return false;
      }
      out.trace_file = val.text();
    } else if (key == "seed") {
      if (!want_u64(val, out.seed, "seed", err)) return false;
    } else if (key == "arms") {
      if (!val.is_array()) {
        err = "'arms' must be an array of model-kind names";
        return false;
      }
      for (const JsonValue& a : val.items()) {
        if (!a.is_string()) {
          err = "'arms' entries must be strings";
          return false;
        }
        models::ModelKind kind;
        if (!models::parse_model_kind(a.text(), kind, err)) {
          err += " in 'arms'";
          return false;
        }
        out.arms.push_back(a.text());
      }
    } else if (key == "monitor") {
      if (!val.is_object()) {
        err = "'monitor' must be an object";
        return false;
      }
      for (const auto& [mk, mv] : val.members()) {
        if (mk == "difficulty_r") {
          if (!want_positive_double(mv, out.monitor.difficulty_r, "monitor.difficulty_r",
                                    err)) {
            return false;
          }
        } else if (mk == "misprediction_threshold") {
          if (!want_u64(mv, out.monitor.misprediction_threshold,
                        "monitor.misprediction_threshold", err)) {
            return false;
          }
        } else if (mk == "eviction_threshold") {
          if (!want_u64(mv, out.monitor.eviction_threshold, "monitor.eviction_threshold",
                        err)) {
            return false;
          }
        } else if (mk == "tagged_misprediction_threshold") {
          if (!want_u64(mv, out.monitor.tagged_misprediction_threshold,
                        "monitor.tagged_misprediction_threshold", err)) {
            return false;
          }
        } else {
          err = "unknown monitor field '" + mk + "'";
          return false;
        }
      }
    } else if (key == "cache_stats") {
      if (!val.is_bool()) {
        err = "'cache_stats' must be a boolean";
        return false;
      }
      out.cache_stats = val.as_bool();
    } else if (key == "stall_stats") {
      if (!val.is_bool()) {
        err = "'stall_stats' must be a boolean";
        return false;
      }
      out.stall_stats = val.as_bool();
    } else {
      err = "unknown spec field '" + key + "'";
      return false;
    }
  }
  if (out.scenario.empty()) {
    err = "spec is missing 'scenario'";
    return false;
  }
  return true;
}

bool parse_shard(const std::string& text, std::uint32_t& index, std::uint32_t& count,
                 std::string& err) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size()) {
    err = "shard must look like i/N (e.g. 0/2), got '" + text + "'";
    return false;
  }
  char* end = nullptr;
  const unsigned long i = std::strtoul(text.c_str(), &end, 10);
  if (end != text.c_str() + slash) {
    err = "bad shard index in '" + text + "'";
    return false;
  }
  const unsigned long n = std::strtoul(text.c_str() + slash + 1, &end, 10);
  if (*end != '\0' || n == 0) {
    err = "bad shard count in '" + text + "'";
    return false;
  }
  if (i >= n) {
    err = "shard index " + std::to_string(i) + " out of range for count " +
          std::to_string(n);
    return false;
  }
  index = static_cast<std::uint32_t>(i);
  count = static_cast<std::uint32_t>(n);
  return true;
}

bool parse_points(const std::string& text, std::vector<std::size_t>& out,
                  std::string& err) {
  out.clear();
  std::size_t pos = 0;
  while (pos < text.size()) {
    char* end = nullptr;
    const unsigned long first = std::strtoul(text.c_str() + pos, &end, 10);
    if (end == text.c_str() + pos) {
      err = "bad point list '" + text + "'";
      return false;
    }
    unsigned long last = first;
    if (*end == '-') {
      const char* lo = end + 1;
      last = std::strtoul(lo, &end, 10);
      if (end == lo || last < first) {
        err = "bad point range in '" + text + "'";
        return false;
      }
    }
    // Ranges materialize eagerly; cap them so an absurd (or maximal,
    // wrap-prone) range is a hard error instead of an OOM/hang. No grid
    // comes close to this — out-of-range indices are caught against the
    // actual grid size at run time.
    constexpr unsigned long kMaxPoints = 1'000'000;
    if (last - first >= kMaxPoints || out.size() + (last - first) >= kMaxPoints) {
      err = "point range in '" + text + "' is too large";
      return false;
    }
    for (unsigned long i = first; i <= last; ++i) out.push_back(i);
    pos = static_cast<std::size_t>(end - text.c_str());
    if (pos < text.size()) {
      if (text[pos] != ',') {
        err = "bad point list '" + text + "'";
        return false;
      }
      ++pos;
    }
  }
  if (out.empty()) {
    err = "empty point list";
    return false;
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return true;
}

}  // namespace stbpu::exp
