// Trace-replay scenario: Figure 3's OAE comparison of the five BPU models.
// Each grid point replays one workload's materialized trace — or, with
// --trace=PATH, an on-disk branch trace through trace::FileStream, whose
// batched reader feeds sim::replay's SoA fast path.
#include <array>
#include <memory>

#include "exp/scenarios_internal.h"
#include "models/engine.h"
#include "models/models.h"
#include "sim/bpu_sim.h"
#include "trace/generator.h"
#include "trace/io.h"
#include "trace/profile.h"
#include "trace/stream.h"

namespace stbpu::exp {

namespace {

constexpr models::ModelKind kFig3Kinds[] = {
    models::ModelKind::kUnprotected, models::ModelKind::kUcode1,
    models::ModelKind::kUcode2, models::ModelKind::kConservative,
    models::ModelKind::kStbpu};
constexpr const char* kFig3Cols[] = {"baseline", "ucode1", "ucode2", "conserv", "STBPU"};

class Fig3Scenario final : public ScenarioBase {
 public:
  Fig3Scenario()
      : ScenarioBase("fig3_oae",
                     "Figure 3: OAE prediction accuracy, STBPU vs secure BPU "
                     "models") {}

  std::vector<std::string> point_labels(const ExperimentSpec& spec) const override {
    if (!spec.trace_file.empty()) return {"trace:" + spec.trace_file};
    std::vector<std::string> labels;
    for (const auto& profile : trace::figure3_profiles()) labels.push_back(profile.name);
    return labels;
  }

  PointResult run_point(const ExperimentSpec& spec, std::size_t index) const override {
    const sim::BpuSimOptions opt{.max_branches = spec.scale.trace_branches,
                                 .warmup_branches = spec.scale.trace_warmup};
    // Replay the identical trace through all five models: a reset-able
    // stream — materialized synthetic workload, or the block-buffered
    // on-disk reader (borrow_run keeps sim::replay on its zero-copy path).
    std::unique_ptr<trace::BranchStream> stream;
    if (!spec.trace_file.empty()) {
      stream = std::make_unique<trace::FileStream>(spec.trace_file);
    } else {
      trace::SyntheticWorkloadGenerator gen(trace::figure3_profiles()[index]);
      stream = std::make_unique<trace::VectorStream>(
          trace::collect(gen, opt.warmup_branches + opt.max_branches));
    }
    PointResult p;
    for (unsigned k = 0; k < 5; ++k) {
      stream->reset();
      const auto mspec = apply_spec_overrides({.model = kFig3Kinds[k]}, spec);
      auto model = models::make_engine(mspec);
      p.set(std::string("oae_") + kFig3Cols[k],
            models::replay_engine(*model, *stream, opt).oae());
    }
    return p;
  }

  ScenarioOutput aggregate(const ExperimentSpec& spec,
                           const std::vector<PointResult>& points) const override {
    ScenarioOutput out;
    const auto labels = point_labels(spec);
    const auto selected = selected_indices(spec, points.size());
    std::array<double, 5> norm_sum{};
    for (const std::size_t i : selected) {
      const PointResult& p = points[i];
      const double base_oae = p.num("oae_baseline");
      Row& row = out.rows.emplace_back(labels[i]);
      row.set("baseline_oae", base_oae);
      norm_sum[0] += 1.0;
      for (unsigned k = 1; k < 5; ++k) {
        const double oae = p.num(std::string("oae_") + kFig3Cols[k]);
        const double norm = base_oae > 0 ? oae / base_oae : 0.0;
        norm_sum[k] += norm;
        row.set(std::string(kFig3Cols[k]) + "_norm_oae", norm);
      }
    }
    if (!selected.empty()) {
      Row& avg = out.rows.emplace_back("AVERAGE");
      for (unsigned k = 1; k < 5; ++k) {
        avg.set(std::string(kFig3Cols[k]) + "_norm_oae",
                norm_sum[k] / static_cast<double>(selected.size()));
      }
    }
    out.meta.push_back({"workloads", Value(std::uint64_t{selected.size()})});
    out.meta.push_back(
        {"branches_per_workload",
         Value(std::uint64_t{spec.scale.trace_warmup + spec.scale.trace_branches})});
    return out;
  }
};

}  // namespace

namespace scenarios {

void register_trace() { register_scenario(new Fig3Scenario); }

}  // namespace scenarios

}  // namespace stbpu::exp
