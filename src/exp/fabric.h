// The distributed sweep fabric: a coordinator that partitions a scenario's
// point grid into shards and dispatches them over the net/ worker protocol,
// and the worker server that executes assigned shards through the existing
// runner. Everything downstream of transport reuses the sharded-run
// machinery (`shard_json`, `merge_shards`), so a dispatched sweep is
// byte-identical to a local one — including under injected chaos, worker
// death and full degradation to in-process execution (docs/EXPERIMENTS.md,
// "Distributed sweeps"; docs/API.md documents the retry/timeout/fallback
// contract).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exp/scenario.h"
#include "exp/spec.h"
#include "net/chaos.h"

namespace stbpu::exp {

struct WorkerOptions {
  std::uint16_t port = 0;          ///< 0 = kernel-assigned (read back via port())
  unsigned jobs = 0;               ///< override the request spec's jobs (0 = keep)
  net::ChaosSpec chaos;            ///< fault injection (disabled by default)
  std::uint64_t max_requests = 0;  ///< stop after N accepted connections (0 = never)
  std::string port_file;           ///< write the bound port here once listening
  int request_timeout_ms = 10'000; ///< deadline for reading a request frame
  int response_timeout_ms = 60'000;  ///< deadline for streaming a response back
  bool verbose = false;            ///< per-request stderr log (the CLI sets this)
};

/// One worker process/thread: accepts connections serially, executes each
/// assigned shard via run_experiment and streams the full-precision shard
/// JSON back. `stbpu_bench worker --listen=PORT` is a thin wrapper; tests
/// embed it in-process for loopback fabrics.
class WorkerServer {
 public:
  WorkerServer();
  ~WorkerServer();
  WorkerServer(const WorkerServer&) = delete;
  WorkerServer& operator=(const WorkerServer&) = delete;

  /// Bind + start the serve thread. False (with err) if the port is taken.
  bool start(const WorkerOptions& opts, std::string& err);
  /// Hard stop: kills any in-flight connection mid-stream (the coordinator
  /// sees EOF and retries — this is the "worker dies mid-shard" test hook),
  /// stops accepting, joins the serve thread.
  void stop();
  /// Block until the serve loop exits on its own (max_requests reached).
  void wait();

  [[nodiscard]] std::uint16_t port() const;
  /// Responses fully streamed (untampered frames only).
  [[nodiscard]] std::uint64_t served() const;
  /// Connections accepted (including chaos-dropped ones).
  [[nodiscard]] std::uint64_t accepted() const;
  /// The chaos verdict sequence so far, in accept order (deterministic for
  /// a fixed seed — the chaos-determinism tests assert on this).
  [[nodiscard]] std::vector<net::ChaosVerdict> chaos_log() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

struct DispatchOptions {
  std::vector<std::string> workers;  ///< "host:port" endpoints
  /// Shard count (0 = auto: min(selected points, 2 x workers), at least 1).
  std::uint32_t shard_count = 0;
  int connect_timeout_ms = 2'000;
  /// Per-attempt deadline covering connect + remote execution + streaming.
  int shard_deadline_ms = 300'000;
  /// Max remote attempts per shard (across all workers, including straggler
  /// re-dispatches) before the shard is left for local fallback.
  int retry_limit = 3;
  /// Exponential reconnect backoff: base doubles per attempt, capped, with
  /// deterministic +/-50% jitter derived from (jitter_seed, shard, attempt).
  int backoff_base_ms = 50;
  int backoff_max_ms = 2'000;
  std::uint64_t jitter_seed = 0x5742505553544250ULL;
  /// Consecutive failures after which a worker is considered dead and its
  /// dispatch thread exits (remaining work flows to other workers / local).
  int worker_failure_limit = 3;
  /// Run shards no worker could serve through the in-process pool. With
  /// this off, an unserved shard fails the dispatch instead.
  bool local_fallback = true;
};

struct DispatchStats {
  std::uint32_t shard_count = 0;
  std::uint32_t remote_shards = 0;      ///< served by a worker
  std::uint32_t local_shards = 0;       ///< degraded to in-process execution
  std::uint32_t failed_attempts = 0;    ///< remote attempts that did not produce a result
  std::uint32_t redispatches = 0;       ///< straggler duplicates issued
  std::uint32_t duplicates_discarded = 0;  ///< valid results for already-done shards
  std::uint32_t rejected_payloads = 0;  ///< checksum/validation rejections
  std::uint32_t timeouts = 0;           ///< attempts cut by the shard deadline
  std::uint32_t connect_failures = 0;
  std::vector<std::string> events;      ///< human-readable recovery log
};

/// Execute `spec`'s selected grid across the workers: partition into
/// shards, dispatch with retry/timeout/backoff, re-dispatch stragglers to
/// idle workers (first valid result wins), degrade unserved shards to local
/// execution, and merge — `out_json` is the final BENCH text, byte-identical
/// to an unsharded local run. `spec` must not itself be sharded.
bool dispatch_experiment(const Scenario& scenario, const ExperimentSpec& spec,
                         const DispatchOptions& opts, std::string& out_json,
                         DispatchStats& stats, std::string& err);

/// Split "host:port" (the --workers= list element). False on malformed input.
bool parse_endpoint(const std::string& text, std::string& host, std::uint16_t& port,
                    std::string& err);

}  // namespace stbpu::exp
