// Declarative experiment specifications (the paper's §VII evaluation grid
// as data): which scenario to run, at which scale, over which subset of the
// scenario's point grid, and how the grid is sharded across processes.
// Specs serialize to/from JSON so a sweep can be described once and
// executed anywhere (`stbpu_bench run --spec=...`), and so shard files
// carry enough context for `stbpu_bench merge` to verify completeness and
// rebuild the exact unsharded trajectory.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "exp/json.h"

namespace stbpu::exp {

/// Simulation budgets (quick CI scale vs the paper's full scale). Every
/// field can be overridden individually — tests and CI shards use tiny
/// budgets through the same code path as the paper runs.
struct Scale {
  bool paper = false;
  std::uint64_t trace_branches = 400'000;
  std::uint64_t trace_warmup = 50'000;
  std::uint64_t ooo_instructions = 300'000;
  std::uint64_t ooo_warmup = 30'000;

  /// Named preset: "quick" or "paper". nullopt for anything else.
  static std::optional<Scale> named(const std::string& name);
  [[nodiscard]] const char* name() const { return paper ? "paper" : "quick"; }

  friend bool operator==(const Scale&, const Scale&) = default;
};

/// Optional event-monitor overrides (paper §IV-B / §VII-A): the difficulty
/// factor r of MonitorConfig::from_difficulty plus explicit Γ_M / Γ_E /
/// tagged-Γ thresholds. 0 means "unset" everywhere — the scenario's model
/// defaults apply — so re-randomization rates can be swept from a spec
/// without recompiling. Serialized as a nested "monitor" object, emitted
/// only when at least one field is set.
struct MonitorOverride {
  double difficulty_r = 0.0;
  std::uint64_t misprediction_threshold = 0;
  std::uint64_t eviction_threshold = 0;
  std::uint64_t tagged_misprediction_threshold = 0;

  [[nodiscard]] bool any() const noexcept {
    return difficulty_r != 0.0 || misprediction_threshold != 0 ||
           eviction_threshold != 0 || tagged_misprediction_threshold != 0;
  }
  friend bool operator==(const MonitorOverride&, const MonitorOverride&) = default;
};

struct ExperimentSpec {
  std::string scenario;
  Scale scale;
  unsigned jobs = 0;              ///< worker threads (0 = hardware concurrency)
  std::uint32_t shard_index = 0;  ///< this process's shard of the point grid
  std::uint32_t shard_count = 1;
  /// Explicit point selection (grid indices); empty = the whole grid.
  /// Sharding applies on top of the selection.
  std::vector<std::size_t> points;
  /// Optional on-disk branch trace replayed by trace-replay scenarios
  /// instead of their synthetic workloads (trace::FileStream).
  std::string trace_file;
  std::uint64_t seed = 0;  ///< 0 = scenario defaults
  /// Defense-arm filter for multi-arm scenarios (attack_matrix): model-kind
  /// names per models::to_string(ModelKind), e.g. ["STBPU", "CIBPU"].
  /// Empty = every arm the scenario defines. Names are validated at parse
  /// time against the registered kinds (models::parse_model_kind), so a
  /// typo'd arm is a spec error naming the offender, not a silent no-op.
  std::vector<std::string> arms;
  /// Monitor threshold overrides (0 = scenario defaults; see MonitorOverride).
  MonitorOverride monitor;
  /// Attach the remap memo-cache's per-function hit/miss/batch-fill
  /// counters to measurement points (JSON side-channel fields), so batching
  /// wins are attributable instead of inferred (`--cache-stats`).
  bool cache_stats = false;
  /// Attach the OoO core's per-thread stall attribution (cycles lost to
  /// fetch bandwidth, branch redirects, ROB/IQ/LQ/SQ occupancy) to
  /// cycle-level measurement points (`--stall-stats`), the same style of
  /// opt-in side channel as cache_stats.
  bool stall_stats = false;

  [[nodiscard]] bool sharded() const noexcept { return shard_count > 1; }
  /// True when grid point `index` is selected (before sharding).
  [[nodiscard]] bool selected(std::size_t index) const noexcept;
  /// Grid indices this spec executes: the explicit selection (or the whole
  /// grid), striped across shards by ordinal position within the selection
  /// — every shard gets an even share of the *selected* points regardless
  /// of the selection's index parity.
  [[nodiscard]] std::vector<std::size_t> owned_points(std::size_t grid_size) const;

  /// Serialize (without shard fields when `with_shard` is false, so the
  /// merged output of a sharded sweep matches an unsharded run exactly).
  [[nodiscard]] std::string to_json(bool with_shard = true) const;
  /// Parse from a JSON object. Unknown keys are errors (declarative specs
  /// should never silently drop a directive).
  static bool from_json(const JsonValue& v, ExperimentSpec& out, std::string& err);

  friend bool operator==(const ExperimentSpec&, const ExperimentSpec&) = default;
};

/// Parse "i/N" (e.g. --shard=0/2). Requires N >= 1 and i < N.
bool parse_shard(const std::string& text, std::uint32_t& index, std::uint32_t& count,
                 std::string& err);

/// Parse a point-selection list: comma-separated indices and inclusive
/// ranges, e.g. "0,3,7-9". Result is sorted and deduplicated.
bool parse_points(const std::string& text, std::vector<std::size_t>& out,
                  std::string& err);

}  // namespace stbpu::exp
