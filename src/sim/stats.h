// Shared branch-prediction statistics, including the paper's OAE metric
// (§VII-B1): a branch counts as correctly predicted only if *all* necessary
// predictions (direction and target) were correct.
#pragma once

#include <cstdint>

#include "bpu/types.h"

namespace stbpu::sim {

struct BranchStats {
  std::uint64_t branches = 0;
  std::uint64_t conditionals = 0;
  std::uint64_t direction_correct = 0;
  std::uint64_t needs_target = 0;  ///< taken branches (a target was required)
  std::uint64_t target_correct = 0;
  std::uint64_t oae_correct = 0;
  std::uint64_t mispredictions = 0;  ///< OAE-incorrect accesses
  std::uint64_t btb_evictions = 0;
  std::uint64_t rsb_underflows = 0;
  std::uint64_t context_switches = 0;
  std::uint64_t mode_switches = 0;

  void absorb(const bpu::BranchRecord& rec, const bpu::AccessResult& res) {
    ++branches;
    if (rec.type == bpu::BranchType::kConditional) {
      ++conditionals;
      if (res.direction_correct) ++direction_correct;
    }
    if (rec.taken) {
      ++needs_target;
      if (res.target_correct && res.direction_correct) ++target_correct;
    }
    if (res.overall_correct) {
      ++oae_correct;
    } else {
      ++mispredictions;
    }
    if (res.btb_eviction) ++btb_evictions;
    if (res.rsb_underflow) ++rsb_underflows;
  }

  /// Overall accuracy effective (OAE).
  [[nodiscard]] double oae() const {
    return branches == 0 ? 0.0
                         : static_cast<double>(oae_correct) / static_cast<double>(branches);
  }
  [[nodiscard]] double direction_rate() const {
    return conditionals == 0 ? 1.0
                             : static_cast<double>(direction_correct) /
                                   static_cast<double>(conditionals);
  }
  [[nodiscard]] double target_rate() const {
    return needs_target == 0 ? 1.0
                             : static_cast<double>(target_correct) /
                                   static_cast<double>(needs_target);
  }

  /// Field-wise equality — the devirtualized-vs-legacy equivalence test
  /// asserts full stat identity, not just headline rates.
  friend bool operator==(const BranchStats&, const BranchStats&) = default;

  BranchStats& operator+=(const BranchStats& o) {
    branches += o.branches;
    conditionals += o.conditionals;
    direction_correct += o.direction_correct;
    needs_target += o.needs_target;
    target_correct += o.target_correct;
    oae_correct += o.oae_correct;
    mispredictions += o.mispredictions;
    btb_evictions += o.btb_evictions;
    rsb_underflows += o.rsb_underflows;
    context_switches += o.context_switches;
    mode_switches += o.mode_switches;
    return *this;
  }
};

}  // namespace stbpu::sim
