// Trace-based BPU simulator (paper §VII-B1's "in-house BPU simulator"):
// feeds a branch stream through any IPredictor, detecting context and mode
// switches in the stream (naturally occurring in the captured workloads)
// and reporting OAE/direction/target accuracy.
#pragma once

#include <cstdint>

#include "bpu/predictor.h"
#include "sim/stats.h"
#include "trace/stream.h"

namespace stbpu::sim {

struct BpuSimOptions {
  std::uint64_t max_branches = 2'000'000;
  std::uint64_t warmup_branches = 100'000;  ///< excluded from the stats
};

/// Run `stream` through `model`. The stream is consumed from its current
/// position; callers reset() it between models to replay identical traces.
BranchStats simulate_bpu(bpu::IPredictor& model, trace::BranchStream& stream,
                         const BpuSimOptions& opt = {});

}  // namespace stbpu::sim
