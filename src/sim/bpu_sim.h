// Trace-based BPU simulator (paper §VII-B1's "in-house BPU simulator"):
// feeds a branch stream through any IPredictor, detecting context and mode
// switches in the stream (naturally occurring in the captured workloads)
// and reporting OAE/direction/target accuracy.
//
// The loop is batched (SoA, trace/batch.h) and templated over the model
// type: `replay(engine, ...)` with a concrete engine from
// models::make_engine devirtualizes the per-branch access() call;
// `simulate_bpu` is the interface-typed wrapper kept for the legacy path.
// Both run the identical statement sequence per branch, so their
// statistics are bit-identical for equivalent models.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

#include "bpu/predictor.h"
#include "sim/stats.h"
#include "trace/batch.h"
#include "trace/stream.h"

namespace stbpu::sim {

struct BpuSimOptions {
  std::uint64_t max_branches = 2'000'000;
  std::uint64_t warmup_branches = 100'000;  ///< excluded from the stats
  /// Window precompute switch for batch-capable engines. Precompute is pure
  /// cache warming (statistics are bit-identical either way), so this is an
  /// A/B lever: scenarios run the same binary with precompute on and off to
  /// measure the batch pipeline's speedup honestly rather than against a
  /// separately compiled baseline.
  bool precompute = true;
};

/// Batched replay of `stream` through `model` (anything with access() and
/// on_switch() — a concrete EngineT devirtualizes both). The stream is
/// consumed from its current position; callers reset() it between models
/// to replay identical traces.
template <class Model>
BranchStats replay(Model& model, trace::BranchStream& stream,
                   const BpuSimOptions& opt = {}) {
  BranchStats stats;
  bool have_last[2] = {false, false};
  bpu::ExecContext last[2];

  const std::uint64_t total = opt.warmup_branches + opt.max_branches;
  std::uint64_t processed = 0;
  trace::BranchBatch batch;

  const auto step = [&](const bpu::BranchRecord& rec) {
    const unsigned h = rec.ctx.hart & 1;
    if (have_last[h] && !(last[h] == rec.ctx)) {
      model.on_switch(last[h], rec.ctx);
      if (processed >= opt.warmup_branches) {
        if (last[h].pid != rec.ctx.pid) {
          ++stats.context_switches;
        } else {
          ++stats.mode_switches;
        }
      }
    }
    last[h] = rec.ctx;
    have_last[h] = true;

    const bpu::AccessResult res = model.access(rec);
    if (processed >= opt.warmup_branches) stats.absorb(rec, res);
    ++processed;
  };

  while (processed < total) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(trace::kDefaultBatch, total - processed));
    // Zero-copy fast path for materialized streams; SoA batch refill for
    // generators (amortizes the virtual stream dispatch per batch).
    // Batch-capable engines see each upcoming window before stepping it:
    // one precompute pass feeds every genuinely fresh keyed mix in the
    // window through the batched kernel, so the per-branch accesses below
    // run against warm remap caches. The window is the engine's
    // kPrecomputeWindow, not the whole 4096-record run — precomputing more
    // keys than the direct-mapped caches hold would make fills evict each
    // other before their demand access. Pure cache warming either way —
    // statistics stay bit-identical (models::EngineT::precompute_records
    // documents why).
    std::size_t n = 0;
    if (const bpu::BranchRecord* run = stream.borrow_run(want, n)) {
      if constexpr (requires {
                      model.precompute_records(std::span<const bpu::BranchRecord>{});
                      requires Model::kBatchPrecompute;
                    }) {
        if (opt.precompute) {
          for (std::size_t at = 0; at < n; at += Model::kPrecomputeWindow) {
            const std::size_t c = std::min(Model::kPrecomputeWindow, n - at);
            model.precompute_records(std::span<const bpu::BranchRecord>(run + at, c));
            for (std::size_t i = 0; i < c; ++i) step(run[at + i]);
          }
        } else {
          for (std::size_t i = 0; i < n; ++i) step(run[i]);
        }
      } else {
        for (std::size_t i = 0; i < n; ++i) step(run[i]);
      }
    } else {
      if (batch.ip.capacity() == 0) batch.reserve(trace::kDefaultBatch);
      n = stream.next_batch(batch, want);
      if (n == 0) break;
      if constexpr (requires {
                      model.precompute_batch(batch, 0, n);
                      requires Model::kBatchPrecompute;
                    }) {
        if (opt.precompute) {
          for (std::size_t at = 0; at < n; at += Model::kPrecomputeWindow) {
            const std::size_t c = std::min(Model::kPrecomputeWindow, n - at);
            model.precompute_batch(batch, at, at + c);
            for (std::size_t i = 0; i < c; ++i) step(batch.record(at + i));
          }
        } else {
          for (std::size_t i = 0; i < n; ++i) step(batch.record(i));
        }
      } else {
        for (std::size_t i = 0; i < n; ++i) step(batch.record(i));
      }
    }
  }
  return stats;
}

/// Run `stream` through `model` (interface-typed legacy entry point).
BranchStats simulate_bpu(bpu::IPredictor& model, trace::BranchStream& stream,
                         const BpuSimOptions& opt = {});

}  // namespace stbpu::sim
