// Set-associative cache hierarchy for the OoO model (Table IV: L1-D 32KB
// 8-way, L2 256KB 4-way, LLC 4MB 16-way). LRU replacement, 64-byte lines,
// inclusive fills. Shared between SMT threads, so cross-thread conflict
// misses arise naturally.
//
// Metadata layout: each set is ONE interleaved array of packed words —
// entry = (tag << kRankBits) | rank — instead of the former two parallel
// tag/LRU arrays. A set scan therefore touches one contiguous run (an
// associativity-8 set is exactly one 64-byte cache line, the same trick as
// the SoA BTB's packed match keys), and the metadata footprint halves
// (8 bytes per line instead of tag + u64 LRU clock). The rank field is the
// entry's exact LRU position within its set (0 = least recent), which
// reproduces the former global-clock LRU decisions bit for bit:
//   * the old victim was the set's minimum clock value, scan order breaking
//     ties among never-touched ways (all clock 0) — i.e. exactly the
//     rank-0 way, with untouched ways holding the lowest ranks in way
//     order (promotions preserve the relative order of the rest);
//   * a hit/fill promoted the way to the set maximum — i.e. rank ways-1,
//     every rank above the old position sliding down by one;
//   * flush() invalidated tags but kept clocks, so the post-flush victim
//     order was the pre-flush recency order — ranks are simply kept.
// tests/sim/cache_test.cc replays adversarial (mcf-like miss-heavy) access
// sequences against a retained reference implementation of the old layout
// and asserts hit/miss sequences and counters are identical.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "util/bits.h"

namespace stbpu::sim {

struct CacheLevelConfig {
  std::uint32_t size_kb = 32;
  std::uint32_t ways = 8;
  std::uint32_t latency = 4;  ///< cycles on hit at this level
};

class CacheLevel {
 public:
  static constexpr std::uint32_t kLineBytes = 64;
  /// Rank bits in a packed entry (supports up to 64 ways, leaving 58 tag
  /// bits — every line address below 2^58 is representable, i.e. the whole
  /// byte-address space; the top tag value is reserved as "invalid").
  static constexpr std::uint32_t kRankBits = 6;
  static constexpr std::uint64_t kRankMask = (std::uint64_t{1} << kRankBits) - 1;
  static constexpr std::uint64_t kInvalidTag =
      (std::uint64_t{1} << (64 - kRankBits)) - 1;

  explicit CacheLevel(const CacheLevelConfig& cfg)
      : cfg_(cfg),
        sets_(cfg.size_kb * 1024 / kLineBytes / cfg.ways),
        set_shift_(std::has_single_bit(sets_) ? std::countr_zero(sets_) : 0),
        entries_(std::size_t{sets_} * cfg.ways) {
    assert(cfg.ways >= 1 && cfg.ways <= kRankMask + 1 &&
           "packed rank field supports up to 64 ways");
    // Invalid tags everywhere; initial ranks in way order, so the first
    // misses fill way 0, 1, ... — the old clock scheme's tie-break.
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      entries_[i] = (kInvalidTag << kRankBits) | (i % cfg.ways);
    }
  }

  /// True on hit; on miss the line is filled (LRU victim).
  bool access(std::uint64_t addr) {
    const std::uint64_t line = addr / kLineBytes;
    // Every Table IV geometry has a power-of-two set count, so the set/tag
    // split is a shift+mask on the hot path; the divide stays as the exact
    // fallback for odd configs (identical values either way — this is the
    // cycle-level simulator's hottest function, see ROADMAP).
    std::uint32_t set;
    std::uint64_t tag;
    if (set_shift_ != 0 || sets_ == 1) {
      set = static_cast<std::uint32_t>(line & (sets_ - 1));
      tag = line >> set_shift_;
    } else {
      set = static_cast<std::uint32_t>(line % sets_);
      tag = line / sets_;
    }
    assert(tag < kInvalidTag && "address exceeds the packed-tag range");
    std::uint64_t* e = entries_.data() + std::size_t{set} * cfg_.ways;
    const std::uint64_t ways = cfg_.ways;
    const std::uint64_t key = tag << kRankBits;

    std::uint64_t victim = 0;
    for (std::uint64_t w = 0; w < ways; ++w) {
      if ((e[w] & ~kRankMask) == key) {
        // Promote to most-recent: ranks above the old position slide down.
        const std::uint64_t r = e[w] & kRankMask;
        for (std::uint64_t v = 0; v < ways; ++v) {
          if ((e[v] & kRankMask) > r) --e[v];
        }
        e[w] = key | (ways - 1);
        ++hits_;
        return true;
      }
      if ((e[w] & kRankMask) == 0) victim = w;
    }
    // Miss: evict the rank-0 (least recent) way, fill as most-recent.
    for (std::uint64_t v = 0; v < ways; ++v) {
      if ((e[v] & kRankMask) != 0) --e[v];
    }
    e[victim] = key | (ways - 1);
    ++misses_;
    return false;
  }

  void flush() {
    // Invalidate tags but keep recency ranks (the old layout kept the LRU
    // clocks), so the post-flush fill order is the pre-flush LRU order.
    for (std::uint64_t& e : entries_) {
      e = (kInvalidTag << kRankBits) | (e & kRankMask);
    }
  }

  [[nodiscard]] std::uint32_t latency() const noexcept { return cfg_.latency; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

 private:
  CacheLevelConfig cfg_;
  std::uint32_t sets_;
  std::uint32_t set_shift_;  ///< log2(sets_) when sets_ is a power of two, else 0
  /// Interleaved per-set metadata: sets_ × ways packed (tag | rank) words.
  std::vector<std::uint64_t> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

struct CacheHierarchyConfig {
  CacheLevelConfig l1d{.size_kb = 32, .ways = 8, .latency = 4};
  CacheLevelConfig l2{.size_kb = 256, .ways = 4, .latency = 14};
  CacheLevelConfig llc{.size_kb = 4096, .ways = 16, .latency = 42};
  std::uint32_t memory_latency = 220;
};

/// Demand hit/miss counters of all three levels — the cycle-level
/// simulator's cache-behaviour fingerprint. Surfaced in OooResult so
/// equivalence checks (and the CI compare gate) can assert the cache
/// simulation itself is bit-identical across core variants, not just the
/// IPC it produces.
struct CacheHierarchyCounters {
  std::uint64_t l1d_hits = 0, l1d_misses = 0;
  std::uint64_t l2_hits = 0, l2_misses = 0;
  std::uint64_t llc_hits = 0, llc_misses = 0;

  friend bool operator==(const CacheHierarchyCounters&,
                         const CacheHierarchyCounters&) = default;
};

class CacheHierarchy {
 public:
  explicit CacheHierarchy(const CacheHierarchyConfig& cfg = {})
      : cfg_(cfg), l1d_(cfg.l1d), l2_(cfg.l2), llc_(cfg.llc) {}

  /// Total load-to-use latency for `addr`, filling on the way. Streaming
  /// (unit-stride) accesses train the next-line prefetcher, which hides the
  /// fill latency for the following line — as hardware stream prefetchers
  /// do.
  std::uint32_t load_latency(std::uint64_t addr, bool streaming = false) {
    if (streaming) prefetch(addr + CacheLevel::kLineBytes);
    std::uint32_t lat = l1d_.latency();
    if (l1d_.access(addr)) return lat;
    lat += l2_.latency();
    if (l2_.access(addr)) return lat;
    lat += llc_.latency();
    if (llc_.access(addr)) return lat;
    return lat + cfg_.memory_latency;
  }

  /// Prefetch fill: brings the line into all levels without charging the
  /// demand access (latency is overlapped by the prefetch distance).
  void prefetch(std::uint64_t addr) {
    if (!l1d_.access(addr)) {
      l2_.access(addr);
      llc_.access(addr);
    }
  }

  [[nodiscard]] const CacheLevel& l1d() const noexcept { return l1d_; }
  [[nodiscard]] const CacheLevel& l2() const noexcept { return l2_; }
  [[nodiscard]] const CacheLevel& llc() const noexcept { return llc_; }

  [[nodiscard]] CacheHierarchyCounters counters() const noexcept {
    return {.l1d_hits = l1d_.hits(),
            .l1d_misses = l1d_.misses(),
            .l2_hits = l2_.hits(),
            .l2_misses = l2_.misses(),
            .llc_hits = llc_.hits(),
            .llc_misses = llc_.misses()};
  }

 private:
  CacheHierarchyConfig cfg_;
  CacheLevel l1d_;
  CacheLevel l2_;
  CacheLevel llc_;
};

}  // namespace stbpu::sim
