// Set-associative cache hierarchy for the OoO model (Table IV: L1-D 32KB
// 8-way, L2 256KB 4-way, LLC 4MB 16-way). LRU replacement, 64-byte lines,
// inclusive fills. Shared between SMT threads, so cross-thread conflict
// misses arise naturally.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "util/bits.h"

namespace stbpu::sim {

struct CacheLevelConfig {
  std::uint32_t size_kb = 32;
  std::uint32_t ways = 8;
  std::uint32_t latency = 4;  ///< cycles on hit at this level
};

class CacheLevel {
 public:
  static constexpr std::uint32_t kLineBytes = 64;

  explicit CacheLevel(const CacheLevelConfig& cfg)
      : cfg_(cfg),
        sets_(cfg.size_kb * 1024 / kLineBytes / cfg.ways),
        set_shift_(std::has_single_bit(sets_) ? std::countr_zero(sets_) : 0),
        tags_(std::size_t{sets_} * cfg.ways, kInvalid),
        lru_(std::size_t{sets_} * cfg.ways, 0) {}

  /// True on hit; on miss the line is filled (LRU victim).
  bool access(std::uint64_t addr) {
    const std::uint64_t line = addr / kLineBytes;
    // Every Table IV geometry has a power-of-two set count, so the set/tag
    // split is a shift+mask on the hot path; the divide stays as the exact
    // fallback for odd configs (identical values either way — this is the
    // cycle-level simulator's hottest function, see ROADMAP).
    std::uint32_t set;
    std::uint64_t tag;
    if (set_shift_ != 0 || sets_ == 1) {
      set = static_cast<std::uint32_t>(line & (sets_ - 1));
      tag = line >> set_shift_;
    } else {
      set = static_cast<std::uint32_t>(line % sets_);
      tag = line / sets_;
    }
    const std::size_t base = std::size_t{set} * cfg_.ways;
    std::size_t victim = base;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (std::size_t w = 0; w < cfg_.ways; ++w) {
      if (tags_[base + w] == tag) {
        lru_[base + w] = ++clock_;
        ++hits_;
        return true;
      }
      if (lru_[base + w] < oldest) {
        oldest = lru_[base + w];
        victim = base + w;
      }
    }
    tags_[victim] = tag;
    lru_[victim] = ++clock_;
    ++misses_;
    return false;
  }

  void flush() {
    std::fill(tags_.begin(), tags_.end(), kInvalid);
  }

  [[nodiscard]] std::uint32_t latency() const noexcept { return cfg_.latency; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

 private:
  static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};
  CacheLevelConfig cfg_;
  std::uint32_t sets_;
  std::uint32_t set_shift_;  ///< log2(sets_) when sets_ is a power of two, else 0
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> lru_;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

struct CacheHierarchyConfig {
  CacheLevelConfig l1d{.size_kb = 32, .ways = 8, .latency = 4};
  CacheLevelConfig l2{.size_kb = 256, .ways = 4, .latency = 14};
  CacheLevelConfig llc{.size_kb = 4096, .ways = 16, .latency = 42};
  std::uint32_t memory_latency = 220;
};

class CacheHierarchy {
 public:
  explicit CacheHierarchy(const CacheHierarchyConfig& cfg = {})
      : cfg_(cfg), l1d_(cfg.l1d), l2_(cfg.l2), llc_(cfg.llc) {}

  /// Total load-to-use latency for `addr`, filling on the way. Streaming
  /// (unit-stride) accesses train the next-line prefetcher, which hides the
  /// fill latency for the following line — as hardware stream prefetchers
  /// do.
  std::uint32_t load_latency(std::uint64_t addr, bool streaming = false) {
    if (streaming) prefetch(addr + CacheLevel::kLineBytes);
    std::uint32_t lat = l1d_.latency();
    if (l1d_.access(addr)) return lat;
    lat += l2_.latency();
    if (l2_.access(addr)) return lat;
    lat += llc_.latency();
    if (llc_.access(addr)) return lat;
    return lat + cfg_.memory_latency;
  }

  /// Prefetch fill: brings the line into all levels without charging the
  /// demand access (latency is overlapped by the prefetch distance).
  void prefetch(std::uint64_t addr) {
    if (!l1d_.access(addr)) {
      l2_.access(addr);
      llc_.access(addr);
    }
  }

  [[nodiscard]] const CacheLevel& l1d() const noexcept { return l1d_; }
  [[nodiscard]] const CacheLevel& l2() const noexcept { return l2_; }
  [[nodiscard]] const CacheLevel& llc() const noexcept { return llc_; }

 private:
  CacheHierarchyConfig cfg_;
  CacheLevel l1d_;
  CacheLevel l2_;
  CacheLevel llc_;
};

}  // namespace stbpu::sim
