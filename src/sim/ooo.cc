#include "sim/ooo.h"

namespace stbpu::sim {

// Legacy dynamic-dispatch instantiations (production tick core + the
// double-precision reference core); concrete-engine instantiations happen
// wherever a bench names the engine type.
template class OooCoreT<>;
template class OooCoreRefT<>;

}  // namespace stbpu::sim
