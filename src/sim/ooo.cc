#include "sim/ooo.h"

namespace stbpu::sim {

// Legacy dynamic-dispatch instantiation; concrete-engine instantiations
// happen wherever a bench names the engine type.
template class OooCoreT<>;

}  // namespace stbpu::sim
