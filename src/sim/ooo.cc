#include "sim/ooo.h"

#include <algorithm>

namespace stbpu::sim {

OooCore::OooCore(const OooConfig& cfg, bpu::IPredictor* bpu,
                 std::vector<trace::InstrStream*> threads)
    : cfg_(cfg), bpu_(bpu), caches_(cfg.caches) {
  threads_.resize(threads.size());
  const unsigned rob_share =
      std::max<unsigned>(8, cfg_.rob / static_cast<unsigned>(threads.size()));
  const unsigned iq_share =
      std::max<unsigned>(4, cfg_.iq / static_cast<unsigned>(threads.size()));
  const unsigned lq_share =
      std::max<unsigned>(4, cfg_.lq / static_cast<unsigned>(threads.size()));
  const unsigned sq_share =
      std::max<unsigned>(4, cfg_.sq / static_cast<unsigned>(threads.size()));
  for (std::size_t i = 0; i < threads.size(); ++i) {
    ThreadState& t = threads_[i];
    t.stream = threads[i];
    t.hart = static_cast<std::uint8_t>(i);
    t.rob_commit.assign(rob_share, 0.0);
    t.iq_issue.assign(iq_share, 0.0);
    t.lq_complete.assign(lq_share, 0.0);
    t.sq_commit.assign(sq_share, 0.0);
  }
}

void OooCore::step(ThreadState& t) {
  trace::InstrRecord ins;
  if (!t.stream->next(ins)) {
    t.done = true;
    t.finish_time = t.last_commit;
    return;
  }
  const double inv_w = 1.0 / cfg_.width;

  // --- fetch: thread redirect stall + shared fetch bandwidth -------------
  double fetch = std::max(t.next_fetch, t.redirect_until);
  fetch = std::max(fetch, shared_fetch_time_);
  shared_fetch_time_ = fetch + inv_w;
  t.next_fetch = fetch;

  // --- dispatch: ROB / IQ / LQ / SQ occupancy -----------------------------
  double dispatch = fetch + cfg_.frontend_depth;
  dispatch = std::max(dispatch, t.rob_commit[t.count % t.rob_commit.size()]);
  dispatch = std::max(dispatch, t.iq_issue[t.count % t.iq_issue.size()]);
  const bool is_load = ins.kind == trace::InstrRecord::Kind::kLoad;
  const bool is_store = ins.kind == trace::InstrRecord::Kind::kStore;
  if (is_load) {
    dispatch = std::max(dispatch, t.lq_complete[t.loads % t.lq_complete.size()]);
  }
  if (is_store) {
    dispatch = std::max(dispatch, t.sq_commit[t.stores % t.sq_commit.size()]);
  }

  // --- issue: dataflow + shared issue bandwidth ---------------------------
  double ready = dispatch;
  if (ins.src1 != 0) ready = std::max(ready, t.reg_ready[ins.src1]);
  if (ins.src2 != 0) ready = std::max(ready, t.reg_ready[ins.src2]);
  double issue = std::max(ready, shared_issue_time_);
  shared_issue_time_ = issue + inv_w;
  t.iq_issue[t.count % t.iq_issue.size()] = issue;

  // --- execute ------------------------------------------------------------
  double lat = cfg_.lat_alu;
  bool mispredicted = false;
  bpu::AccessResult access{};
  switch (ins.kind) {
    case trace::InstrRecord::Kind::kAlu:
      lat = cfg_.lat_alu;
      break;
    case trace::InstrRecord::Kind::kMul:
      lat = cfg_.lat_mul;
      break;
    case trace::InstrRecord::Kind::kDiv:
      lat = cfg_.lat_div;
      break;
    case trace::InstrRecord::Kind::kFp:
      lat = cfg_.lat_fp;
      break;
    case trace::InstrRecord::Kind::kLoad:
      lat = caches_.load_latency(ins.mem_addr, ins.streaming);
      break;
    case trace::InstrRecord::Kind::kStore:
      lat = 1;  // store data captured; the line is written back post-commit
      caches_.load_latency(ins.mem_addr, ins.streaming);  // allocate-on-write
      break;
    case trace::InstrRecord::Kind::kBranch: {
      lat = cfg_.lat_branch;
      bpu::BranchRecord br = ins.branch;
      br.ctx.hart = t.hart;  // hart is assigned by the core, not the trace
      if (t.has_ctx && !(t.last_ctx == br.ctx)) {
        bpu_->on_switch(t.last_ctx, br.ctx);
        if (t.measuring) {
          if (t.last_ctx.pid != br.ctx.pid) {
            ++t.stats.context_switches;
          } else {
            ++t.stats.mode_switches;
          }
        }
      }
      t.last_ctx = br.ctx;
      t.has_ctx = true;
      access = bpu_->access(br);
      mispredicted = !access.overall_correct;
      if (t.measuring) t.stats.absorb(br, access);
      break;
    }
  }
  const double complete = issue + lat;
  if (ins.dst != 0) t.reg_ready[ins.dst] = complete;
  if (is_load) {
    t.lq_complete[t.loads % t.lq_complete.size()] = complete;
    ++t.loads;
  }

  // --- resolve branches ----------------------------------------------------
  if (mispredicted) {
    // Squash: the front end refills from the correct path once the branch
    // resolves; younger wrong-path work is abandoned (penalty-modelled).
    t.redirect_until =
        std::max(t.redirect_until, complete + cfg_.mispredict_penalty);
  }

  // --- commit: in order, width per cycle ----------------------------------
  const double commit = std::max(complete, t.last_commit + inv_w);
  t.last_commit = commit;
  t.rob_commit[t.count % t.rob_commit.size()] = commit;
  if (is_store) {
    t.sq_commit[t.stores % t.sq_commit.size()] = commit;
    ++t.stores;
  }
  ++t.count;
  if (t.measuring) ++t.measured;
}

OooResult OooCore::run(std::uint64_t instr_budget, std::uint64_t warmup) {
  OooResult result;
  result.threads = static_cast<unsigned>(threads_.size());

  // Warm up all threads (round-robin so SMT contention is realistic).
  for (std::uint64_t i = 0; i < warmup; ++i) {
    for (auto& t : threads_) {
      if (!t.done) step(t);
    }
  }
  for (auto& t : threads_) {
    t.measuring = true;
    t.measure_start = t.last_commit;
  }

  // Measured window: run each thread to its budget. Fine-grain round-robin
  // keeps the shared-BPU access interleaving honest while both run.
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& t : threads_) {
      if (!t.done && t.measured < instr_budget) {
        step(t);
        progress = true;
      } else if (!t.done && t.finish_time == 0.0) {
        t.finish_time = t.last_commit;
      }
    }
  }

  for (std::size_t i = 0; i < threads_.size(); ++i) {
    ThreadState& t = threads_[i];
    if (t.finish_time == 0.0) t.finish_time = t.last_commit;
    const double cycles = std::max(1.0, t.finish_time - t.measure_start);
    result.instructions[i] = t.measured;
    result.cycles[i] = cycles;
    result.ipc[i] = static_cast<double>(t.measured) / cycles;
    result.branch_stats[i] = t.stats;
  }
  return result;
}

}  // namespace stbpu::sim
