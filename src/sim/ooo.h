// Cycle-level out-of-order core model — the gem5 DerivO3CPU substitute
// (DESIGN.md substitution #2), configured per Table IV: 8-issue OoO,
// ROB 192, IQ 64, LQ/SQ 32/32, three-level cache hierarchy, optional SMT-2.
//
// The model is trace-driven and event-ordered: for every instruction it
// computes fetch, dispatch, issue, completion and commit times subject to
//   * front-end redirect stalls after branch mispredictions (the coupling
//    Figures 4-6 measure),
//   * ROB/IQ/LQ/SQ occupancy and fetch/issue bandwidth (shared between SMT
//     threads),
//   * register dataflow dependencies and cache-hierarchy load latencies.
// Wrong-path execution is approximated by the redirect penalty, the
// standard trace-driven simplification (documented in DESIGN.md §5).
//
// Two implementations share the interface:
//   * OooCoreT — the production core. Event times are u64 *ticks*, one tick
//     = the 1/width issue quantum, so a cycle is exactly `width` ticks and
//     every max/+ in the timing recurrence is exact integer arithmetic (all
//     OooConfig latencies are unsigned; 1/width is the only fractional
//     quantum in the model). Pipeline state is structure-of-arrays: flat
//     tick rings with power-of-two masks, parallel per-thread scalar
//     arrays. It also attributes stall cycles (fetch bandwidth, redirects,
//     ROB/IQ/LQ/SQ occupancy) per thread.
//   * OooCoreRefT — the retained double-precision reference core, the
//     original AoS implementation kept verbatim so equivalence is asserted,
//     not assumed: for power-of-two widths every double the reference
//     computes is an exact multiple of 1/width, so the tick core's
//     cycles/IPC match it bit-for-bit and BranchStats are identical by
//     construction (tests/integration/ooo_typed_equivalence_test.cc,
//     tests/sim/ooo_core_test.cc).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "bpu/predictor.h"
#include "sim/cache.h"
#include "sim/stats.h"
#include "trace/instr.h"

namespace stbpu::sim {

/// Architectural integer register count (RISC-style x1..x32; index 0 in a
/// trace record means "no register dependency", so scoreboards carry
/// kNumArchRegs + 1 slots). Trace records are bounds-checked against this
/// in Debug builds — a corrupt on-disk trace must fail an assert, not
/// scribble past the scoreboard.
inline constexpr unsigned kNumArchRegs = 32;

/// The model supports at most 2-way SMT (Table IV; OooResult arrays and the
/// per-hart BPU structures are sized for it).
inline constexpr unsigned kMaxSmtThreads = 2;

/// Integer event time: 1 tick = 1/width of a cycle (the issue quantum), so
/// a cycle is exactly `width` ticks. u64 ticks overflow after ~2^64/width
/// cycles — unreachable for any simulated budget.
using Tick = std::uint64_t;

struct OooConfig {
  unsigned width = 8;           ///< fetch/issue/commit width
  unsigned rob = 192;
  unsigned iq = 64;
  unsigned lq = 32;
  unsigned sq = 32;
  unsigned frontend_depth = 6;  ///< fetch→dispatch pipeline depth
  unsigned mispredict_penalty = 14;
  CacheHierarchyConfig caches{};

  // Execution latencies (cycles).
  unsigned lat_alu = 1;
  unsigned lat_mul = 3;
  unsigned lat_div = 20;
  unsigned lat_fp = 4;
  unsigned lat_branch = 2;

  /// Decoupled lookahead front end: the core buffers frontend_depth × width
  /// upcoming instructions per thread as an SoA InstrBlock window —
  /// borrowed zero-copy from materialized streams (trace::InstrTraceStream
  /// lends pointers into the pregenerated arrays), block-filled otherwise —
  /// and, for batch-capable BPUs, issues one batched precompute for the
  /// branches in the window so the per-branch access() below finds its
  /// keyed mixes already resident — the fetch-directed-predictor structure
  /// modern cores use to run the BPU ahead of the backend. Engines without
  /// batch precompute use the window only when the stream is contiguous
  /// (the buffering is then free); with on-the-fly generators they keep
  /// the direct per-record fetch. Purely a simulator-throughput feature:
  /// results are bit-identical with it on or off
  /// (tests/integration/ooo_typed_equivalence_test.cc).
  bool lookahead = true;
};

/// BPU types whose batch-native precompute actually does work
/// (models::EngineT with kBatchPrecompute — STBPU + GHR-keyed direction).
/// Engines whose precompute is a compile-time no-op are excluded so they
/// never pay the window-buffering overhead; the interface-typed core
/// (Bpu = bpu::IPredictor) never sees this path either.
template <class Bpu>
concept LookaheadBpu = requires(Bpu& b, std::span<const bpu::BranchRecord> s) {
  b.precompute_records(s);
  requires Bpu::kBatchPrecompute;
};

/// Where a thread's instructions lost time — the ordered attribution of
/// every stall the timing recurrence models. Each constraint is blamed
/// for the delay it adds *after* the previous ones applied, in pipeline
/// order: redirect → shared fetch port at the front end, then
/// ROB → IQ → LQ → SQ at dispatch, so one instruction's delay is never
/// double-counted. Counters accumulate per instruction over the measured
/// window; in-flight instructions overlap, so a counter can exceed
/// wall-clock cycles — divide by the instruction count for the average
/// per-instruction (CPI-stack-style) contribution. Reported in cycles
/// (exact: reconstructed from integer ticks).
struct OooThreadStalls {
  double fetch_bandwidth = 0.0;  ///< shared fetch port busy (SMT sibling or own width)
  double redirect = 0.0;         ///< front end squashed by a branch mispredict
  double rob = 0.0;              ///< reorder buffer full at dispatch
  double iq = 0.0;               ///< issue queue full at dispatch
  double lq = 0.0;               ///< load queue full at dispatch
  double sq = 0.0;               ///< store queue full at dispatch

  friend bool operator==(const OooThreadStalls&, const OooThreadStalls&) = default;
};

struct OooResult {
  unsigned threads = 1;
  std::array<std::uint64_t, kMaxSmtThreads> instructions{};
  std::array<double, kMaxSmtThreads> cycles{};
  std::array<double, kMaxSmtThreads> ipc{};
  std::array<BranchStats, kMaxSmtThreads> branch_stats{};
  /// Stall attribution (tick core only; the double reference core leaves
  /// these zero — it predates the counters and stays the unadorned spec).
  std::array<OooThreadStalls, kMaxSmtThreads> stalls{};
  /// Demand hit/miss counters of the core's cache hierarchy over the whole
  /// run (warm-up included) — the cache simulation's fingerprint, asserted
  /// bit-equal across core variants by the ooo_engine scenario and watched
  /// by the CI compare gate.
  CacheHierarchyCounters cache{};

  [[nodiscard]] double ipc_harmonic_mean() const {
    if (threads == 1) return ipc[0];
    if (ipc[0] <= 0 || ipc[1] <= 0) return 0.0;
    return 2.0 / (1.0 / ipc[0] + 1.0 / ipc[1]);
  }
  [[nodiscard]] BranchStats combined_stats() const {
    BranchStats s = branch_stats[0];
    if (threads > 1) s += branch_stats[1];
    return s;
  }
};

/// The production cycle-level core: integer fixed-point event timing over
/// structure-of-arrays pipeline state.
///
/// Template over the BPU type: with the default interface type this is the
/// classic polymorphic core; instantiated with a concrete engine type the
/// per-branch access() devirtualizes like the trace replay loop.
///
/// Timing state is u64 ticks (1 tick = 1/width cycle): thread fetch/commit
/// clocks, the shared SMT fetch/issue clocks, ring entries and the register
/// scoreboard. Ring buffers live in one flat allocation per core —
/// per thread a contiguous [ROB | IQ | LQ | SQ] block — with power-of-two
/// capacities indexed by mask. Logical occupancy is preserved exactly: an
/// entry for instruction n is written at (n & mask) and the occupancy
/// constraint reads (n - logical_size) & mask, which is the commit/issue
/// time written logical_size instructions ago (or the initial 0 while the
/// structure is still filling) — bit-identical to the reference core's
/// `ring[n % logical_size]` modulo rings.
template <class Bpu = bpu::IPredictor>
class OooCoreT {
 public:
  /// `bpu` is shared between all threads (that sharing is the attack
  /// surface and the performance coupling under study).
  OooCoreT(const OooConfig& cfg, Bpu* bpu, std::vector<trace::InstrStream*> threads);

  /// Simulate `instr_budget` committed instructions per thread after
  /// `warmup` warm-up instructions per thread.
  OooResult run(std::uint64_t instr_budget, std::uint64_t warmup);

  [[nodiscard]] const CacheHierarchy& caches() const noexcept { return caches_; }

 private:
  /// Geometry of one ring structure: logical size (the architectural
  /// occupancy limit) and a power-of-two storage mask.
  struct RingGeom {
    Tick offset = 0;   ///< within a thread's ring block
    Tick size = 0;     ///< logical occupancy (architectural share)
    Tick mask = 0;     ///< pow2 storage capacity - 1
  };

  /// SoA view of the fetched instruction — filled from the window block's
  /// parallel arrays (pointer consumption, no InstrRecord reassembly) or
  /// from the per-record scratch on the direct path. `branch` points into
  /// the block's compacted branch payloads (or at scratch.branch) and is
  /// valid until the next fetch.
  struct Fetched {
    trace::InstrRecord::Kind kind;
    std::uint8_t dst, src1, src2;
    bool streaming;
    std::uint64_t mem_addr;
    const bpu::BranchRecord* branch;  ///< non-null iff kind == kBranch
  };

  void step(unsigned t);
  /// Pull the next instruction into the SoA view; false when the stream is
  /// exhausted.
  bool fetch_instr(unsigned t, trace::InstrRecord& scratch, Fetched& out);
  /// Refill the drained window — borrowing the stream's own SoA block when
  /// it has one (pregenerated traces), block-filling the core's otherwise —
  /// and precompute its branches' keyed mixes (batch-capable BPUs). The
  /// window only refills when empty, so every branch the engine has
  /// already processed is reflected in the predictor's live GHR — the
  /// speculative GHR walk inside precompute_records is exact unless ψ
  /// re-keys mid-window (then the stale entries are tag-discarded).
  void refill_window(unsigned t);

  [[nodiscard]] Tick* ring(unsigned t) noexcept {
    return rings_.data() + std::size_t{t} * ring_stride_;
  }

  OooConfig cfg_;
  Bpu* bpu_;
  CacheHierarchy caches_;
  unsigned nthreads_ = 1;

  // Precomputed tick constants (cycles × width). lat_ticks_ slots 0-3 are
  // indexed by InstrRecord::Kind directly (execute-stage lookup); branches
  // take a separate slot since their Kind value overlaps kLoad's, which
  // never reads the table. Pinned by static_asserts in the constructor.
  static constexpr unsigned kBranchLatSlot = 4;
  Tick depth_ticks_ = 0;
  Tick penalty_ticks_ = 0;
  Tick lat_ticks_[kBranchLatSlot + 1] = {};

  // --- SoA pipeline state: parallel arrays indexed by thread -------------
  std::array<trace::InstrStream*, kMaxSmtThreads> streams_{};
  std::array<Tick, kMaxSmtThreads> next_fetch_{};
  std::array<Tick, kMaxSmtThreads> redirect_until_{};
  std::array<Tick, kMaxSmtThreads> last_commit_{};
  std::array<Tick, kMaxSmtThreads> finish_tick_{};
  std::array<Tick, kMaxSmtThreads> measure_start_{};
  std::array<std::uint64_t, kMaxSmtThreads> count_{};
  std::array<std::uint64_t, kMaxSmtThreads> loads_{};
  std::array<std::uint64_t, kMaxSmtThreads> stores_{};
  std::array<std::uint64_t, kMaxSmtThreads> measured_{};
  std::array<bool, kMaxSmtThreads> done_{};
  std::array<bool, kMaxSmtThreads> measuring_{};
  std::array<bool, kMaxSmtThreads> has_ctx_{};
  std::array<bpu::ExecContext, kMaxSmtThreads> last_ctx_{};
  std::array<BranchStats, kMaxSmtThreads> stats_{};

  /// Register scoreboard: ready tick per architectural register (slot 0 is
  /// the "no dependency" register and stays 0 forever).
  std::array<std::array<Tick, kNumArchRegs + 1>, kMaxSmtThreads> reg_ready_{};

  /// Measured-window stall attribution, in ticks.
  struct StallTicks {
    Tick fetch_bw = 0, redirect = 0, rob = 0, iq = 0, lq = 0, sq = 0;
  };
  std::array<StallTicks, kMaxSmtThreads> stall_ticks_{};

  /// All ring buffers, one flat allocation: thread t's block starts at
  /// t × ring_stride_ and holds [ROB | IQ | LQ | SQ] back to back.
  std::vector<Tick> rings_;
  Tick ring_stride_ = 0;
  RingGeom rob_, iq_, lq_, sq_;

  // Shared SMT clocks (one fetch port, one issue port, width per cycle).
  Tick shared_fetch_tick_ = 0;
  Tick shared_issue_tick_ = 0;

  // Lookahead front end: per-thread SoA window blocks. `window_blk_` points
  // at the live block — the stream's own storage when it lends one
  // (borrow_block, zero copy), this core's `window_own_` after a block
  // fill — with the window spanning [window_base_, window_base_ +
  // window_size_) of it. One shared branch scratch (a refill is consumed
  // before the next one starts, so the scratch never overlaps).
  std::size_t window_cap_ = 0;
  std::array<bool, kMaxSmtThreads> use_window_{};
  std::array<trace::InstrBlock, kMaxSmtThreads> window_own_;
  std::array<const trace::InstrBlock*, kMaxSmtThreads> window_blk_{};
  std::array<std::size_t, kMaxSmtThreads> window_base_{};
  std::array<std::size_t, kMaxSmtThreads> window_pos_{};
  std::array<std::size_t, kMaxSmtThreads> window_size_{};
  std::vector<bpu::BranchRecord> window_branches_;
};

/// Legacy dynamic-dispatch instantiation (compiled once in ooo.cc).
using OooCore = OooCoreT<>;

// ---------------------------------------------------------------------------
// Implementation (template — shared verbatim by every instantiation).
// ---------------------------------------------------------------------------

template <class Bpu>
OooCoreT<Bpu>::OooCoreT(const OooConfig& cfg, Bpu* bpu,
                        std::vector<trace::InstrStream*> threads)
    : cfg_(cfg), bpu_(bpu), caches_(cfg.caches) {
  assert(cfg_.width >= 1 && "OooConfig::width must be at least 1");
  assert(!threads.empty() && threads.size() <= kMaxSmtThreads &&
         "the core models 1..kMaxSmtThreads hardware threads");
  nthreads_ = static_cast<unsigned>(threads.size());

  // The Kind-indexed latency slots and the branch slot must not collide;
  // a reordered Kind enum breaks here at compile time, not in cycle counts.
  using Kind = trace::InstrRecord::Kind;
  static_assert(static_cast<unsigned>(Kind::kAlu) == 0 &&
                    static_cast<unsigned>(Kind::kMul) == 1 &&
                    static_cast<unsigned>(Kind::kDiv) == 2 &&
                    static_cast<unsigned>(Kind::kFp) == 3,
                "execute-stage lookup indexes lat_ticks_ by Kind");
  static_assert(static_cast<unsigned>(Kind::kLoad) == kBranchLatSlot,
                "loads never read lat_ticks_, so their Kind value doubles as "
                "the branch latency slot");

  const Tick w = cfg_.width;
  depth_ticks_ = Tick{cfg_.frontend_depth} * w;
  penalty_ticks_ = Tick{cfg_.mispredict_penalty} * w;
  lat_ticks_[static_cast<unsigned>(Kind::kAlu)] = Tick{cfg_.lat_alu} * w;
  lat_ticks_[static_cast<unsigned>(Kind::kMul)] = Tick{cfg_.lat_mul} * w;
  lat_ticks_[static_cast<unsigned>(Kind::kDiv)] = Tick{cfg_.lat_div} * w;
  lat_ticks_[static_cast<unsigned>(Kind::kFp)] = Tick{cfg_.lat_fp} * w;
  lat_ticks_[kBranchLatSlot] = Tick{cfg_.lat_branch} * w;

  // Per-thread shares of the shared structures (same floor as the
  // reference core), stored with power-of-two capacity so the hot path
  // masks instead of dividing.
  const auto share = [&](unsigned total, unsigned floor_sz) {
    return std::max(floor_sz, total / nthreads_);
  };
  const auto geom = [](unsigned logical, Tick offset) {
    RingGeom g;
    g.offset = offset;
    g.size = logical;
    g.mask = std::bit_ceil(std::uint64_t{logical}) - 1;
    return g;
  };
  rob_ = geom(share(cfg_.rob, 8), 0);
  iq_ = geom(share(cfg_.iq, 4), rob_.mask + 1);
  lq_ = geom(share(cfg_.lq, 4), iq_.offset + iq_.mask + 1);
  sq_ = geom(share(cfg_.sq, 4), lq_.offset + lq_.mask + 1);
  ring_stride_ = sq_.offset + sq_.mask + 1;
  rings_.assign(std::size_t{ring_stride_} * nthreads_, Tick{0});

  for (unsigned t = 0; t < nthreads_; ++t) streams_[t] = threads[t];

  window_cap_ = std::max<std::size_t>(1, std::size_t{cfg_.frontend_depth} * cfg_.width);
  for (unsigned t = 0; t < nthreads_; ++t) {
    // Batch-capable BPUs always buffer (the window feeds their precompute);
    // other engines take the window only when the stream serves blocks from
    // materialized storage, where the windowed fetch is pure pointer
    // consumption — never pay buffering that buys nothing.
    use_window_[t] =
        cfg_.lookahead && (LookaheadBpu<Bpu> || streams_[t]->contiguous());
    if (use_window_[t]) window_own_[t].reserve(window_cap_);
  }
}

template <class Bpu>
bool OooCoreT<Bpu>::fetch_instr(const unsigned t, trace::InstrRecord& scratch,
                                Fetched& out) {
  if (use_window_[t]) {
    if (window_pos_[t] >= window_size_[t]) refill_window(t);
    const std::size_t p = window_pos_[t];
    if (p >= window_size_[t]) return false;
    ++window_pos_[t];
    const trace::InstrBlock& b = *window_blk_[t];
    const std::size_t i = window_base_[t] + p;
    out.kind = static_cast<trace::InstrRecord::Kind>(b.kind[i]);
    out.dst = b.dst[i];
    out.src1 = b.src1[i];
    out.src2 = b.src2[i];
    out.streaming = b.streaming[i] != 0;
    out.mem_addr = b.mem_addr[i];
    out.branch = out.kind == trace::InstrRecord::Kind::kBranch
                     ? &b.branches[b.branch_before[i]]
                     : nullptr;
    return true;
  }
  if (!streams_[t]->next(scratch)) return false;
  out.kind = scratch.kind;
  out.dst = scratch.dst;
  out.src1 = scratch.src1;
  out.src2 = scratch.src2;
  out.streaming = scratch.streaming;
  out.mem_addr = scratch.mem_addr;
  out.branch =
      scratch.kind == trace::InstrRecord::Kind::kBranch ? &scratch.branch : nullptr;
  return true;
}

template <class Bpu>
void OooCoreT<Bpu>::refill_window(const unsigned t) {
  std::size_t start = 0;
  std::size_t n = 0;
  const trace::InstrBlock* b = streams_[t]->borrow_block(window_cap_, start, n);
  if (b == nullptr) {
    n = streams_[t]->next_block(window_own_[t], window_cap_);
    b = &window_own_[t];
    start = 0;
  }
  window_blk_[t] = b;
  window_base_[t] = start;
  window_pos_[t] = 0;
  window_size_[t] = n;
  if constexpr (LookaheadBpu<Bpu>) {
    window_branches_.clear();
    if (n > 0) {
      const std::size_t lo = b->branch_before[start];
      const std::size_t hi = b->branch_count_through(start + n);
      for (std::size_t i = lo; i < hi; ++i) {
        bpu::BranchRecord br = b->branches[i];
        br.ctx.hart = static_cast<std::uint8_t>(t);  // the core assigns harts
        window_branches_.push_back(br);
      }
    }
    if (!window_branches_.empty()) {
      bpu_->precompute_records(std::span<const bpu::BranchRecord>(window_branches_));
    }
  }
}

template <class Bpu>
void OooCoreT<Bpu>::step(const unsigned t) {
  trace::InstrRecord scratch;
  Fetched ins;
  if (!fetch_instr(t, scratch, ins)) {
    done_[t] = true;
    finish_tick_[t] = last_commit_[t];
    return;
  }
  const bool measuring = measuring_[t];
  StallTicks& stall = stall_ticks_[t];

  // --- fetch: thread redirect stall + shared fetch bandwidth -------------
  Tick fetch = next_fetch_[t];
  if (redirect_until_[t] > fetch) {
    if (measuring) stall.redirect += redirect_until_[t] - fetch;
    fetch = redirect_until_[t];
  }
  if (shared_fetch_tick_ > fetch) {
    if (measuring) stall.fetch_bw += shared_fetch_tick_ - fetch;
    fetch = shared_fetch_tick_;
  }
  shared_fetch_tick_ = fetch + 1;
  next_fetch_[t] = fetch;

  // --- dispatch: ROB / IQ / LQ / SQ occupancy -----------------------------
  // Each constraint is blamed for the delay it adds after the previous ones
  // (pipeline order ROB → IQ → LQ → SQ), so the counters sum to the total
  // dispatch stall without double counting.
  Tick* rings = ring(t);
  const std::uint64_t n = count_[t];
  Tick dispatch = fetch + depth_ticks_;
  {
    const Tick v = rings[rob_.offset + ((n - rob_.size) & rob_.mask)];
    if (v > dispatch) {
      if (measuring) stall.rob += v - dispatch;
      dispatch = v;
    }
  }
  {
    const Tick v = rings[iq_.offset + ((n - iq_.size) & iq_.mask)];
    if (v > dispatch) {
      if (measuring) stall.iq += v - dispatch;
      dispatch = v;
    }
  }
  const bool is_load = ins.kind == trace::InstrRecord::Kind::kLoad;
  const bool is_store = ins.kind == trace::InstrRecord::Kind::kStore;
  if (is_load) {
    const Tick v = rings[lq_.offset + ((loads_[t] - lq_.size) & lq_.mask)];
    if (v > dispatch) {
      if (measuring) stall.lq += v - dispatch;
      dispatch = v;
    }
  }
  if (is_store) {
    const Tick v = rings[sq_.offset + ((stores_[t] - sq_.size) & sq_.mask)];
    if (v > dispatch) {
      if (measuring) stall.sq += v - dispatch;
      dispatch = v;
    }
  }

  // --- issue: dataflow + shared issue bandwidth ---------------------------
  assert(ins.dst <= kNumArchRegs && ins.src1 <= kNumArchRegs &&
         ins.src2 <= kNumArchRegs && "trace register index exceeds kNumArchRegs");
  const std::array<Tick, kNumArchRegs + 1>& regs = reg_ready_[t];
  Tick ready = dispatch;
  if (ins.src1 != 0) ready = std::max(ready, regs[ins.src1]);
  if (ins.src2 != 0) ready = std::max(ready, regs[ins.src2]);
  const Tick issue = std::max(ready, shared_issue_tick_);
  shared_issue_tick_ = issue + 1;
  rings[iq_.offset + (n & iq_.mask)] = issue;

  // --- execute ------------------------------------------------------------
  Tick lat = lat_ticks_[0];
  bool mispredicted = false;
  bpu::AccessResult access{};
  switch (ins.kind) {
    case trace::InstrRecord::Kind::kAlu:
    case trace::InstrRecord::Kind::kMul:
    case trace::InstrRecord::Kind::kDiv:
    case trace::InstrRecord::Kind::kFp:
      lat = lat_ticks_[static_cast<unsigned>(ins.kind)];
      break;
    case trace::InstrRecord::Kind::kLoad:
      lat = Tick{caches_.load_latency(ins.mem_addr, ins.streaming)} * cfg_.width;
      break;
    case trace::InstrRecord::Kind::kStore:
      lat = Tick{1} * cfg_.width;  // data captured; line written back post-commit
      caches_.load_latency(ins.mem_addr, ins.streaming);  // allocate-on-write
      break;
    case trace::InstrRecord::Kind::kBranch: {
      lat = lat_ticks_[kBranchLatSlot];
      bpu::BranchRecord br = *ins.branch;
      br.ctx.hart = static_cast<std::uint8_t>(t);  // hart assigned by the core
      if (has_ctx_[t] && !(last_ctx_[t] == br.ctx)) {
        bpu_->on_switch(last_ctx_[t], br.ctx);
        if (measuring) {
          if (last_ctx_[t].pid != br.ctx.pid) {
            ++stats_[t].context_switches;
          } else {
            ++stats_[t].mode_switches;
          }
        }
      }
      last_ctx_[t] = br.ctx;
      has_ctx_[t] = true;
      access = bpu_->access(br);
      mispredicted = !access.overall_correct;
      if (measuring) stats_[t].absorb(br, access);
      break;
    }
  }
  const Tick complete = issue + lat;
  if (ins.dst != 0) reg_ready_[t][ins.dst] = complete;
  if (is_load) {
    rings[lq_.offset + (loads_[t] & lq_.mask)] = complete;
    ++loads_[t];
  }

  // --- resolve branches ----------------------------------------------------
  if (mispredicted) {
    // Squash: the front end refills from the correct path once the branch
    // resolves; younger wrong-path work is abandoned (penalty-modelled).
    redirect_until_[t] = std::max(redirect_until_[t], complete + penalty_ticks_);
  }

  // --- commit: in order, width per cycle ----------------------------------
  const Tick commit = std::max(complete, last_commit_[t] + 1);
  last_commit_[t] = commit;
  rings[rob_.offset + (n & rob_.mask)] = commit;
  if (is_store) {
    rings[sq_.offset + (stores_[t] & sq_.mask)] = commit;
    ++stores_[t];
  }
  ++count_[t];
  if (measuring) ++measured_[t];
}

template <class Bpu>
OooResult OooCoreT<Bpu>::run(std::uint64_t instr_budget, std::uint64_t warmup) {
  OooResult result;
  result.threads = nthreads_;

  // Warm up all threads (round-robin so SMT contention is realistic).
  for (std::uint64_t i = 0; i < warmup; ++i) {
    for (unsigned t = 0; t < nthreads_; ++t) {
      if (!done_[t]) step(t);
    }
  }
  for (unsigned t = 0; t < nthreads_; ++t) {
    measuring_[t] = true;
    measure_start_[t] = last_commit_[t];
  }

  // Measured window: run each thread to its budget. Fine-grain round-robin
  // keeps the shared-BPU access interleaving honest while both run.
  bool progress = true;
  while (progress) {
    progress = false;
    for (unsigned t = 0; t < nthreads_; ++t) {
      if (!done_[t] && measured_[t] < instr_budget) {
        step(t);
        progress = true;
      } else if (!done_[t] && finish_tick_[t] == 0) {
        finish_tick_[t] = last_commit_[t];
      }
    }
  }

  // Report: cycles/IPC reconstructed from ticks. For power-of-two widths
  // tick/width is an exact double, so these match the reference core
  // bit-for-bit; for other widths the tick numbers are the *more* exact
  // ones (the reference accumulates 1/width rounding).
  const double scale = static_cast<double>(cfg_.width);
  for (unsigned t = 0; t < nthreads_; ++t) {
    if (finish_tick_[t] == 0) finish_tick_[t] = last_commit_[t];
    const Tick ticks = finish_tick_[t] - measure_start_[t];
    const double cycles = std::max(1.0, static_cast<double>(ticks) / scale);
    result.instructions[t] = measured_[t];
    result.cycles[t] = cycles;
    result.ipc[t] = static_cast<double>(measured_[t]) / cycles;
    result.branch_stats[t] = stats_[t];
    const StallTicks& s = stall_ticks_[t];
    result.stalls[t] = {.fetch_bandwidth = static_cast<double>(s.fetch_bw) / scale,
                        .redirect = static_cast<double>(s.redirect) / scale,
                        .rob = static_cast<double>(s.rob) / scale,
                        .iq = static_cast<double>(s.iq) / scale,
                        .lq = static_cast<double>(s.lq) / scale,
                        .sq = static_cast<double>(s.sq) / scale};
  }
  result.cache = caches_.counters();
  return result;
}

// ---------------------------------------------------------------------------
// OooCoreRefT — the double-precision reference core (retained AoS
// implementation). This is the executable specification the tick core is
// checked against; it has no stall counters and no SoA layout on purpose.
// ---------------------------------------------------------------------------

template <class Bpu = bpu::IPredictor>
class OooCoreRefT {
 public:
  OooCoreRefT(const OooConfig& cfg, Bpu* bpu, std::vector<trace::InstrStream*> threads);

  OooResult run(std::uint64_t instr_budget, std::uint64_t warmup);

  [[nodiscard]] const CacheHierarchy& caches() const noexcept { return caches_; }

 private:
  struct ThreadState {
    trace::InstrStream* stream = nullptr;
    std::uint8_t hart = 0;
    double next_fetch = 0.0;
    double redirect_until = 0.0;
    double last_commit = 0.0;
    std::uint64_t count = 0;           ///< instructions processed
    std::uint64_t loads = 0, stores = 0;
    std::vector<double> rob_commit;    ///< ring: commit time by instr index
    std::vector<double> iq_issue;      ///< ring: issue time by instr index
    std::vector<double> lq_complete;   ///< ring per load
    std::vector<double> sq_commit;     ///< ring per store
    std::array<double, kNumArchRegs + 1> reg_ready{};
    bool has_ctx = false;
    bpu::ExecContext last_ctx;
    // Measurement window.
    bool measuring = false;
    double measure_start = 0.0;
    BranchStats stats;
    std::uint64_t measured = 0;
    bool done = false;
    double finish_time = 0.0;
    // Lookahead front end: the SoA window block (borrowed from the stream
    // or block-filled into window_own) and the branch scratch handed to
    // precompute_records. Same consumption policy as the tick core.
    bool use_window = false;
    trace::InstrBlock window_own;
    const trace::InstrBlock* window_blk = nullptr;
    std::size_t window_base = 0;
    std::size_t window_pos = 0;
    std::size_t window_size = 0;
    std::vector<bpu::BranchRecord> window_branches;
  };

  void step(ThreadState& t);
  bool fetch_instr(ThreadState& t, trace::InstrRecord& out);
  void refill_window(ThreadState& t);

  OooConfig cfg_;
  Bpu* bpu_;
  CacheHierarchy caches_;
  std::vector<ThreadState> threads_;
  double shared_fetch_time_ = 0.0;
  double shared_issue_time_ = 0.0;
};

/// Interface-typed reference instantiation (compiled once in ooo.cc).
using OooCoreRef = OooCoreRefT<>;

template <class Bpu>
OooCoreRefT<Bpu>::OooCoreRefT(const OooConfig& cfg, Bpu* bpu,
                              std::vector<trace::InstrStream*> threads)
    : cfg_(cfg), bpu_(bpu), caches_(cfg.caches) {
  assert(!threads.empty() && threads.size() <= kMaxSmtThreads);
  threads_.resize(threads.size());
  const unsigned rob_share =
      std::max<unsigned>(8, cfg_.rob / static_cast<unsigned>(threads.size()));
  const unsigned iq_share =
      std::max<unsigned>(4, cfg_.iq / static_cast<unsigned>(threads.size()));
  const unsigned lq_share =
      std::max<unsigned>(4, cfg_.lq / static_cast<unsigned>(threads.size()));
  const unsigned sq_share =
      std::max<unsigned>(4, cfg_.sq / static_cast<unsigned>(threads.size()));
  for (std::size_t i = 0; i < threads.size(); ++i) {
    ThreadState& t = threads_[i];
    t.stream = threads[i];
    t.hart = static_cast<std::uint8_t>(i);
    t.rob_commit.assign(rob_share, 0.0);
    t.iq_issue.assign(iq_share, 0.0);
    t.lq_complete.assign(lq_share, 0.0);
    t.sq_commit.assign(sq_share, 0.0);
    t.use_window =
        cfg_.lookahead && (LookaheadBpu<Bpu> || t.stream->contiguous());
  }
}

template <class Bpu>
bool OooCoreRefT<Bpu>::fetch_instr(ThreadState& t, trace::InstrRecord& out) {
  if (t.use_window) {
    if (t.window_pos >= t.window_size) refill_window(t);
    if (t.window_pos < t.window_size) {
      out = t.window_blk->record(t.window_base + t.window_pos++);
      return true;
    }
    return false;
  }
  return t.stream->next(out);
}

template <class Bpu>
void OooCoreRefT<Bpu>::refill_window(ThreadState& t) {
  const std::size_t depth =
      std::max<std::size_t>(1, std::size_t{cfg_.frontend_depth} * cfg_.width);
  std::size_t start = 0;
  std::size_t n = 0;
  const trace::InstrBlock* b = t.stream->borrow_block(depth, start, n);
  if (b == nullptr) {
    n = t.stream->next_block(t.window_own, depth);
    b = &t.window_own;
    start = 0;
  }
  t.window_blk = b;
  t.window_base = start;
  t.window_pos = 0;
  t.window_size = n;
  if constexpr (LookaheadBpu<Bpu>) {
    t.window_branches.clear();
    if (n > 0) {
      const std::size_t lo = b->branch_before[start];
      const std::size_t hi = b->branch_count_through(start + n);
      for (std::size_t i = lo; i < hi; ++i) {
        bpu::BranchRecord br = b->branches[i];
        br.ctx.hart = t.hart;  // the core assigns harts, mirroring step()
        t.window_branches.push_back(br);
      }
    }
    if (!t.window_branches.empty()) {
      bpu_->precompute_records(std::span<const bpu::BranchRecord>(t.window_branches));
    }
  }
}

template <class Bpu>
void OooCoreRefT<Bpu>::step(ThreadState& t) {
  trace::InstrRecord ins;
  if (!fetch_instr(t, ins)) {
    t.done = true;
    t.finish_time = t.last_commit;
    return;
  }
  const double inv_w = 1.0 / cfg_.width;

  // --- fetch: thread redirect stall + shared fetch bandwidth -------------
  double fetch = std::max(t.next_fetch, t.redirect_until);
  fetch = std::max(fetch, shared_fetch_time_);
  shared_fetch_time_ = fetch + inv_w;
  t.next_fetch = fetch;

  // --- dispatch: ROB / IQ / LQ / SQ occupancy -----------------------------
  double dispatch = fetch + cfg_.frontend_depth;
  dispatch = std::max(dispatch, t.rob_commit[t.count % t.rob_commit.size()]);
  dispatch = std::max(dispatch, t.iq_issue[t.count % t.iq_issue.size()]);
  const bool is_load = ins.kind == trace::InstrRecord::Kind::kLoad;
  const bool is_store = ins.kind == trace::InstrRecord::Kind::kStore;
  if (is_load) {
    dispatch = std::max(dispatch, t.lq_complete[t.loads % t.lq_complete.size()]);
  }
  if (is_store) {
    dispatch = std::max(dispatch, t.sq_commit[t.stores % t.sq_commit.size()]);
  }

  // --- issue: dataflow + shared issue bandwidth ---------------------------
  assert(ins.dst <= kNumArchRegs && ins.src1 <= kNumArchRegs &&
         ins.src2 <= kNumArchRegs && "trace register index exceeds kNumArchRegs");
  double ready = dispatch;
  if (ins.src1 != 0) ready = std::max(ready, t.reg_ready[ins.src1]);
  if (ins.src2 != 0) ready = std::max(ready, t.reg_ready[ins.src2]);
  double issue = std::max(ready, shared_issue_time_);
  shared_issue_time_ = issue + inv_w;
  t.iq_issue[t.count % t.iq_issue.size()] = issue;

  // --- execute ------------------------------------------------------------
  double lat = cfg_.lat_alu;
  bool mispredicted = false;
  bpu::AccessResult access{};
  switch (ins.kind) {
    case trace::InstrRecord::Kind::kAlu:
      lat = cfg_.lat_alu;
      break;
    case trace::InstrRecord::Kind::kMul:
      lat = cfg_.lat_mul;
      break;
    case trace::InstrRecord::Kind::kDiv:
      lat = cfg_.lat_div;
      break;
    case trace::InstrRecord::Kind::kFp:
      lat = cfg_.lat_fp;
      break;
    case trace::InstrRecord::Kind::kLoad:
      lat = caches_.load_latency(ins.mem_addr, ins.streaming);
      break;
    case trace::InstrRecord::Kind::kStore:
      lat = 1;  // store data captured; the line is written back post-commit
      caches_.load_latency(ins.mem_addr, ins.streaming);  // allocate-on-write
      break;
    case trace::InstrRecord::Kind::kBranch: {
      lat = cfg_.lat_branch;
      bpu::BranchRecord br = ins.branch;
      br.ctx.hart = t.hart;  // hart is assigned by the core, not the trace
      if (t.has_ctx && !(t.last_ctx == br.ctx)) {
        bpu_->on_switch(t.last_ctx, br.ctx);
        if (t.measuring) {
          if (t.last_ctx.pid != br.ctx.pid) {
            ++t.stats.context_switches;
          } else {
            ++t.stats.mode_switches;
          }
        }
      }
      t.last_ctx = br.ctx;
      t.has_ctx = true;
      access = bpu_->access(br);
      mispredicted = !access.overall_correct;
      if (t.measuring) t.stats.absorb(br, access);
      break;
    }
  }
  const double complete = issue + lat;
  if (ins.dst != 0) t.reg_ready[ins.dst] = complete;
  if (is_load) {
    t.lq_complete[t.loads % t.lq_complete.size()] = complete;
    ++t.loads;
  }

  // --- resolve branches ----------------------------------------------------
  if (mispredicted) {
    // Squash: the front end refills from the correct path once the branch
    // resolves; younger wrong-path work is abandoned (penalty-modelled).
    t.redirect_until =
        std::max(t.redirect_until, complete + cfg_.mispredict_penalty);
  }

  // --- commit: in order, width per cycle ----------------------------------
  const double commit = std::max(complete, t.last_commit + inv_w);
  t.last_commit = commit;
  t.rob_commit[t.count % t.rob_commit.size()] = commit;
  if (is_store) {
    t.sq_commit[t.stores % t.sq_commit.size()] = commit;
    ++t.stores;
  }
  ++t.count;
  if (t.measuring) ++t.measured;
}

template <class Bpu>
OooResult OooCoreRefT<Bpu>::run(std::uint64_t instr_budget, std::uint64_t warmup) {
  OooResult result;
  result.threads = static_cast<unsigned>(threads_.size());

  // Warm up all threads (round-robin so SMT contention is realistic).
  for (std::uint64_t i = 0; i < warmup; ++i) {
    for (auto& t : threads_) {
      if (!t.done) step(t);
    }
  }
  for (auto& t : threads_) {
    t.measuring = true;
    t.measure_start = t.last_commit;
  }

  // Measured window: run each thread to its budget. Fine-grain round-robin
  // keeps the shared-BPU access interleaving honest while both run.
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& t : threads_) {
      if (!t.done && t.measured < instr_budget) {
        step(t);
        progress = true;
      } else if (!t.done && t.finish_time == 0.0) {
        t.finish_time = t.last_commit;
      }
    }
  }

  for (std::size_t i = 0; i < threads_.size(); ++i) {
    ThreadState& t = threads_[i];
    if (t.finish_time == 0.0) t.finish_time = t.last_commit;
    const double cycles = std::max(1.0, t.finish_time - t.measure_start);
    result.instructions[i] = t.measured;
    result.cycles[i] = cycles;
    result.ipc[i] = static_cast<double>(t.measured) / cycles;
    result.branch_stats[i] = t.stats;
  }
  result.cache = caches_.counters();
  return result;
}

/// The legacy instantiations are compiled once in ooo.cc.
extern template class OooCoreT<>;
extern template class OooCoreRefT<>;

/// Engine-typed fan-out entry point: run a cycle-level core instantiated on
/// the concrete BPU type. With `Bpu` a final engine from
/// models::visit_engine the per-branch access()/on_switch() calls in step()
/// devirtualize, mirroring what models::replay_engine does for trace
/// replay; with `Bpu = bpu::IPredictor` this is exactly the legacy core.
template <class Bpu>
OooResult run_ooo(const OooConfig& cfg, Bpu& bpu, std::vector<trace::InstrStream*> threads,
                  std::uint64_t instr_budget, std::uint64_t warmup) {
  OooCoreT<Bpu> core(cfg, &bpu, std::move(threads));
  return core.run(instr_budget, warmup);
}

/// Same entry point over the double-precision reference core — the A/B
/// partner for run_ooo (the ooo_engine scenario's `int_speedup` field) and
/// the oracle the equivalence tests compare against.
template <class Bpu>
OooResult run_ooo_ref(const OooConfig& cfg, Bpu& bpu,
                      std::vector<trace::InstrStream*> threads,
                      std::uint64_t instr_budget, std::uint64_t warmup) {
  OooCoreRefT<Bpu> core(cfg, &bpu, std::move(threads));
  return core.run(instr_budget, warmup);
}

}  // namespace stbpu::sim
