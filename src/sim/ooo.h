// Cycle-level out-of-order core model — the gem5 DerivO3CPU substitute
// (DESIGN.md substitution #2), configured per Table IV: 8-issue OoO,
// ROB 192, IQ 64, LQ/SQ 32/32, three-level cache hierarchy, optional SMT-2.
//
// The model is trace-driven and event-ordered: for every instruction it
// computes fetch, dispatch, issue, completion and commit times subject to
//   * front-end redirect stalls after branch mispredictions (the coupling
//    Figures 4-6 measure),
//   * ROB/IQ/LQ/SQ occupancy and fetch/issue bandwidth (shared between SMT
//     threads),
//   * register dataflow dependencies and cache-hierarchy load latencies.
// Wrong-path execution is approximated by the redirect penalty, the
// standard trace-driven simplification (documented in DESIGN.md §5).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "bpu/predictor.h"
#include "sim/cache.h"
#include "sim/stats.h"
#include "trace/instr.h"

namespace stbpu::sim {

struct OooConfig {
  unsigned width = 8;           ///< fetch/issue/commit width
  unsigned rob = 192;
  unsigned iq = 64;
  unsigned lq = 32;
  unsigned sq = 32;
  unsigned frontend_depth = 6;  ///< fetch→dispatch pipeline depth
  unsigned mispredict_penalty = 14;
  CacheHierarchyConfig caches{};

  // Execution latencies (cycles).
  unsigned lat_alu = 1;
  unsigned lat_mul = 3;
  unsigned lat_div = 20;
  unsigned lat_fp = 4;
  unsigned lat_branch = 2;

  /// Decoupled lookahead front end (batch-capable BPUs only): the core
  /// buffers frontend_depth × width upcoming instructions per thread and
  /// issues one batched precompute for the branches in the window, so the
  /// per-branch access() below finds its keyed mixes already resident —
  /// the fetch-directed-predictor structure modern cores use to run the
  /// BPU ahead of the backend. Purely a simulator-throughput feature:
  /// results are bit-identical with it on or off
  /// (tests/integration/ooo_typed_equivalence_test.cc).
  bool lookahead = true;
};

/// BPU types whose batch-native precompute actually does work
/// (models::EngineT with kBatchPrecompute — STBPU + GHR-keyed direction).
/// Engines whose precompute is a compile-time no-op are excluded so they
/// never pay the window-buffering overhead; the interface-typed core
/// (Bpu = bpu::IPredictor) never sees this path either.
template <class Bpu>
concept LookaheadBpu = requires(Bpu& b, std::span<const bpu::BranchRecord> s) {
  b.precompute_records(s);
  requires Bpu::kBatchPrecompute;
};

struct OooResult {
  unsigned threads = 1;
  std::array<std::uint64_t, 2> instructions{};
  std::array<double, 2> cycles{};
  std::array<double, 2> ipc{};
  std::array<BranchStats, 2> branch_stats{};

  [[nodiscard]] double ipc_harmonic_mean() const {
    if (threads == 1) return ipc[0];
    if (ipc[0] <= 0 || ipc[1] <= 0) return 0.0;
    return 2.0 / (1.0 / ipc[0] + 1.0 / ipc[1]);
  }
  [[nodiscard]] BranchStats combined_stats() const {
    BranchStats s = branch_stats[0];
    if (threads > 1) s += branch_stats[1];
    return s;
  }
};

/// Template over the BPU type: with the default interface type this is the
/// classic polymorphic core; instantiated with a concrete engine type the
/// per-branch access() devirtualizes like the trace replay loop.
template <class Bpu = bpu::IPredictor>
class OooCoreT {
 public:
  /// `bpu` is shared between all threads (that sharing is the attack
  /// surface and the performance coupling under study).
  OooCoreT(const OooConfig& cfg, Bpu* bpu, std::vector<trace::InstrStream*> threads);

  /// Simulate `instr_budget` committed instructions per thread after
  /// `warmup` warm-up instructions per thread.
  OooResult run(std::uint64_t instr_budget, std::uint64_t warmup);

  [[nodiscard]] const CacheHierarchy& caches() const noexcept { return caches_; }

 private:
  struct ThreadState {
    trace::InstrStream* stream = nullptr;
    std::uint8_t hart = 0;
    double next_fetch = 0.0;
    double redirect_until = 0.0;
    double last_commit = 0.0;
    std::uint64_t count = 0;           ///< instructions processed
    std::uint64_t loads = 0, stores = 0;
    std::vector<double> rob_commit;    ///< ring: commit time by instr index
    std::vector<double> iq_issue;      ///< ring: issue time by instr index
    std::vector<double> lq_complete;   ///< ring per load
    std::vector<double> sq_commit;     ///< ring per store
    std::array<double, 33> reg_ready{};
    bool has_ctx = false;
    bpu::ExecContext last_ctx;
    // Measurement window.
    bool measuring = false;
    double measure_start = 0.0;
    BranchStats stats;
    std::uint64_t measured = 0;
    bool done = false;
    double finish_time = 0.0;
    // Lookahead front end (batch-capable BPUs): buffered upcoming
    // instructions and the branch scratch handed to precompute_records.
    std::vector<trace::InstrRecord> window;
    std::size_t window_pos = 0;
    std::vector<bpu::BranchRecord> window_branches;
  };

  void step(ThreadState& t);
  /// Pull the next instruction, through the lookahead window when enabled.
  bool fetch_instr(ThreadState& t, trace::InstrRecord& out);
  /// Refill the drained window and precompute its branches' keyed mixes.
  /// The window only refills when empty, so every branch the engine has
  /// already processed is reflected in the predictor's live GHR — the
  /// speculative GHR walk inside precompute_records is exact unless ψ
  /// re-keys mid-window (then the stale entries are tag-discarded).
  void refill_window(ThreadState& t);

  OooConfig cfg_;
  Bpu* bpu_;
  CacheHierarchy caches_;
  std::vector<ThreadState> threads_;
  double shared_fetch_time_ = 0.0;
  double shared_issue_time_ = 0.0;
};

/// Legacy dynamic-dispatch instantiation (compiled once in ooo.cc).
using OooCore = OooCoreT<>;

// ---------------------------------------------------------------------------
// Implementation (template — shared verbatim by every instantiation).
// ---------------------------------------------------------------------------

template <class Bpu>
OooCoreT<Bpu>::OooCoreT(const OooConfig& cfg, Bpu* bpu,
                        std::vector<trace::InstrStream*> threads)
    : cfg_(cfg), bpu_(bpu), caches_(cfg.caches) {
  threads_.resize(threads.size());
  const unsigned rob_share =
      std::max<unsigned>(8, cfg_.rob / static_cast<unsigned>(threads.size()));
  const unsigned iq_share =
      std::max<unsigned>(4, cfg_.iq / static_cast<unsigned>(threads.size()));
  const unsigned lq_share =
      std::max<unsigned>(4, cfg_.lq / static_cast<unsigned>(threads.size()));
  const unsigned sq_share =
      std::max<unsigned>(4, cfg_.sq / static_cast<unsigned>(threads.size()));
  for (std::size_t i = 0; i < threads.size(); ++i) {
    ThreadState& t = threads_[i];
    t.stream = threads[i];
    t.hart = static_cast<std::uint8_t>(i);
    t.rob_commit.assign(rob_share, 0.0);
    t.iq_issue.assign(iq_share, 0.0);
    t.lq_complete.assign(lq_share, 0.0);
    t.sq_commit.assign(sq_share, 0.0);
  }
}

template <class Bpu>
bool OooCoreT<Bpu>::fetch_instr(ThreadState& t, trace::InstrRecord& out) {
  if constexpr (LookaheadBpu<Bpu>) {
    if (cfg_.lookahead) {
      if (t.window_pos >= t.window.size()) refill_window(t);
      if (t.window_pos < t.window.size()) {
        out = t.window[t.window_pos++];
        return true;
      }
      return false;
    }
  }
  return t.stream->next(out);
}

template <class Bpu>
void OooCoreT<Bpu>::refill_window(ThreadState& t) {
  t.window.clear();
  t.window_pos = 0;
  const std::size_t depth =
      std::max<std::size_t>(1, std::size_t{cfg_.frontend_depth} * cfg_.width);
  trace::InstrRecord ins;
  while (t.window.size() < depth && t.stream->next(ins)) t.window.push_back(ins);
  if constexpr (LookaheadBpu<Bpu>) {
    t.window_branches.clear();
    for (const trace::InstrRecord& r : t.window) {
      if (r.kind == trace::InstrRecord::Kind::kBranch) {
        bpu::BranchRecord br = r.branch;
        br.ctx.hart = t.hart;  // the core assigns harts, mirroring step()
        t.window_branches.push_back(br);
      }
    }
    if (!t.window_branches.empty()) {
      bpu_->precompute_records(std::span<const bpu::BranchRecord>(t.window_branches));
    }
  }
}

template <class Bpu>
void OooCoreT<Bpu>::step(ThreadState& t) {
  trace::InstrRecord ins;
  if (!fetch_instr(t, ins)) {
    t.done = true;
    t.finish_time = t.last_commit;
    return;
  }
  const double inv_w = 1.0 / cfg_.width;

  // --- fetch: thread redirect stall + shared fetch bandwidth -------------
  double fetch = std::max(t.next_fetch, t.redirect_until);
  fetch = std::max(fetch, shared_fetch_time_);
  shared_fetch_time_ = fetch + inv_w;
  t.next_fetch = fetch;

  // --- dispatch: ROB / IQ / LQ / SQ occupancy -----------------------------
  double dispatch = fetch + cfg_.frontend_depth;
  dispatch = std::max(dispatch, t.rob_commit[t.count % t.rob_commit.size()]);
  dispatch = std::max(dispatch, t.iq_issue[t.count % t.iq_issue.size()]);
  const bool is_load = ins.kind == trace::InstrRecord::Kind::kLoad;
  const bool is_store = ins.kind == trace::InstrRecord::Kind::kStore;
  if (is_load) {
    dispatch = std::max(dispatch, t.lq_complete[t.loads % t.lq_complete.size()]);
  }
  if (is_store) {
    dispatch = std::max(dispatch, t.sq_commit[t.stores % t.sq_commit.size()]);
  }

  // --- issue: dataflow + shared issue bandwidth ---------------------------
  double ready = dispatch;
  if (ins.src1 != 0) ready = std::max(ready, t.reg_ready[ins.src1]);
  if (ins.src2 != 0) ready = std::max(ready, t.reg_ready[ins.src2]);
  double issue = std::max(ready, shared_issue_time_);
  shared_issue_time_ = issue + inv_w;
  t.iq_issue[t.count % t.iq_issue.size()] = issue;

  // --- execute ------------------------------------------------------------
  double lat = cfg_.lat_alu;
  bool mispredicted = false;
  bpu::AccessResult access{};
  switch (ins.kind) {
    case trace::InstrRecord::Kind::kAlu:
      lat = cfg_.lat_alu;
      break;
    case trace::InstrRecord::Kind::kMul:
      lat = cfg_.lat_mul;
      break;
    case trace::InstrRecord::Kind::kDiv:
      lat = cfg_.lat_div;
      break;
    case trace::InstrRecord::Kind::kFp:
      lat = cfg_.lat_fp;
      break;
    case trace::InstrRecord::Kind::kLoad:
      lat = caches_.load_latency(ins.mem_addr, ins.streaming);
      break;
    case trace::InstrRecord::Kind::kStore:
      lat = 1;  // store data captured; the line is written back post-commit
      caches_.load_latency(ins.mem_addr, ins.streaming);  // allocate-on-write
      break;
    case trace::InstrRecord::Kind::kBranch: {
      lat = cfg_.lat_branch;
      bpu::BranchRecord br = ins.branch;
      br.ctx.hart = t.hart;  // hart is assigned by the core, not the trace
      if (t.has_ctx && !(t.last_ctx == br.ctx)) {
        bpu_->on_switch(t.last_ctx, br.ctx);
        if (t.measuring) {
          if (t.last_ctx.pid != br.ctx.pid) {
            ++t.stats.context_switches;
          } else {
            ++t.stats.mode_switches;
          }
        }
      }
      t.last_ctx = br.ctx;
      t.has_ctx = true;
      access = bpu_->access(br);
      mispredicted = !access.overall_correct;
      if (t.measuring) t.stats.absorb(br, access);
      break;
    }
  }
  const double complete = issue + lat;
  if (ins.dst != 0) t.reg_ready[ins.dst] = complete;
  if (is_load) {
    t.lq_complete[t.loads % t.lq_complete.size()] = complete;
    ++t.loads;
  }

  // --- resolve branches ----------------------------------------------------
  if (mispredicted) {
    // Squash: the front end refills from the correct path once the branch
    // resolves; younger wrong-path work is abandoned (penalty-modelled).
    t.redirect_until =
        std::max(t.redirect_until, complete + cfg_.mispredict_penalty);
  }

  // --- commit: in order, width per cycle ----------------------------------
  const double commit = std::max(complete, t.last_commit + inv_w);
  t.last_commit = commit;
  t.rob_commit[t.count % t.rob_commit.size()] = commit;
  if (is_store) {
    t.sq_commit[t.stores % t.sq_commit.size()] = commit;
    ++t.stores;
  }
  ++t.count;
  if (t.measuring) ++t.measured;
}

template <class Bpu>
OooResult OooCoreT<Bpu>::run(std::uint64_t instr_budget, std::uint64_t warmup) {
  OooResult result;
  result.threads = static_cast<unsigned>(threads_.size());

  // Warm up all threads (round-robin so SMT contention is realistic).
  for (std::uint64_t i = 0; i < warmup; ++i) {
    for (auto& t : threads_) {
      if (!t.done) step(t);
    }
  }
  for (auto& t : threads_) {
    t.measuring = true;
    t.measure_start = t.last_commit;
  }

  // Measured window: run each thread to its budget. Fine-grain round-robin
  // keeps the shared-BPU access interleaving honest while both run.
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& t : threads_) {
      if (!t.done && t.measured < instr_budget) {
        step(t);
        progress = true;
      } else if (!t.done && t.finish_time == 0.0) {
        t.finish_time = t.last_commit;
      }
    }
  }

  for (std::size_t i = 0; i < threads_.size(); ++i) {
    ThreadState& t = threads_[i];
    if (t.finish_time == 0.0) t.finish_time = t.last_commit;
    const double cycles = std::max(1.0, t.finish_time - t.measure_start);
    result.instructions[i] = t.measured;
    result.cycles[i] = cycles;
    result.ipc[i] = static_cast<double>(t.measured) / cycles;
    result.branch_stats[i] = t.stats;
  }
  return result;
}

/// The legacy instantiation is compiled once in ooo.cc.
extern template class OooCoreT<>;

/// Engine-typed fan-out entry point: run a cycle-level core instantiated on
/// the concrete BPU type. With `Bpu` a final engine from
/// models::visit_engine the per-branch access()/on_switch() calls in step()
/// devirtualize, mirroring what models::replay_engine does for trace
/// replay; with `Bpu = bpu::IPredictor` this is exactly the legacy core.
template <class Bpu>
OooResult run_ooo(const OooConfig& cfg, Bpu& bpu, std::vector<trace::InstrStream*> threads,
                  std::uint64_t instr_budget, std::uint64_t warmup) {
  OooCoreT<Bpu> core(cfg, &bpu, std::move(threads));
  return core.run(instr_budget, warmup);
}

}  // namespace stbpu::sim
