// Cycle-level out-of-order core model — the gem5 DerivO3CPU substitute
// (DESIGN.md substitution #2), configured per Table IV: 8-issue OoO,
// ROB 192, IQ 64, LQ/SQ 32/32, three-level cache hierarchy, optional SMT-2.
//
// The model is trace-driven and event-ordered: for every instruction it
// computes fetch, dispatch, issue, completion and commit times subject to
//   * front-end redirect stalls after branch mispredictions (the coupling
//    Figures 4-6 measure),
//   * ROB/IQ/LQ/SQ occupancy and fetch/issue bandwidth (shared between SMT
//     threads),
//   * register dataflow dependencies and cache-hierarchy load latencies.
// Wrong-path execution is approximated by the redirect penalty, the
// standard trace-driven simplification (documented in DESIGN.md §5).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "bpu/predictor.h"
#include "sim/cache.h"
#include "sim/stats.h"
#include "trace/instr.h"

namespace stbpu::sim {

struct OooConfig {
  unsigned width = 8;           ///< fetch/issue/commit width
  unsigned rob = 192;
  unsigned iq = 64;
  unsigned lq = 32;
  unsigned sq = 32;
  unsigned frontend_depth = 6;  ///< fetch→dispatch pipeline depth
  unsigned mispredict_penalty = 14;
  CacheHierarchyConfig caches{};

  // Execution latencies (cycles).
  unsigned lat_alu = 1;
  unsigned lat_mul = 3;
  unsigned lat_div = 20;
  unsigned lat_fp = 4;
  unsigned lat_branch = 2;
};

struct OooResult {
  unsigned threads = 1;
  std::array<std::uint64_t, 2> instructions{};
  std::array<double, 2> cycles{};
  std::array<double, 2> ipc{};
  std::array<BranchStats, 2> branch_stats{};

  [[nodiscard]] double ipc_harmonic_mean() const {
    if (threads == 1) return ipc[0];
    if (ipc[0] <= 0 || ipc[1] <= 0) return 0.0;
    return 2.0 / (1.0 / ipc[0] + 1.0 / ipc[1]);
  }
  [[nodiscard]] BranchStats combined_stats() const {
    BranchStats s = branch_stats[0];
    if (threads > 1) s += branch_stats[1];
    return s;
  }
};

class OooCore {
 public:
  /// `bpu` is shared between all threads (that sharing is the attack
  /// surface and the performance coupling under study).
  OooCore(const OooConfig& cfg, bpu::IPredictor* bpu,
          std::vector<trace::InstrStream*> threads);

  /// Simulate `instr_budget` committed instructions per thread after
  /// `warmup` warm-up instructions per thread.
  OooResult run(std::uint64_t instr_budget, std::uint64_t warmup);

  [[nodiscard]] const CacheHierarchy& caches() const noexcept { return caches_; }

 private:
  struct ThreadState {
    trace::InstrStream* stream = nullptr;
    std::uint8_t hart = 0;
    double next_fetch = 0.0;
    double redirect_until = 0.0;
    double last_commit = 0.0;
    std::uint64_t count = 0;           ///< instructions processed
    std::uint64_t loads = 0, stores = 0;
    std::vector<double> rob_commit;    ///< ring: commit time by instr index
    std::vector<double> iq_issue;      ///< ring: issue time by instr index
    std::vector<double> lq_complete;   ///< ring per load
    std::vector<double> sq_commit;     ///< ring per store
    std::array<double, 33> reg_ready{};
    bool has_ctx = false;
    bpu::ExecContext last_ctx;
    // Measurement window.
    bool measuring = false;
    double measure_start = 0.0;
    BranchStats stats;
    std::uint64_t measured = 0;
    bool done = false;
    double finish_time = 0.0;
  };

  void step(ThreadState& t);

  OooConfig cfg_;
  bpu::IPredictor* bpu_;
  CacheHierarchy caches_;
  std::vector<ThreadState> threads_;
  double shared_fetch_time_ = 0.0;
  double shared_issue_time_ = 0.0;
};

}  // namespace stbpu::sim
