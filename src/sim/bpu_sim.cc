#include "sim/bpu_sim.h"

namespace stbpu::sim {

BranchStats simulate_bpu(bpu::IPredictor& model, trace::BranchStream& stream,
                         const BpuSimOptions& opt) {
  // Deliberately the pre-batching record-at-a-time loop: this is the
  // virtual-dispatch baseline the devirtualized replay() is measured
  // against, preserved exactly as the seed implemented it. Statement
  // sequence per branch matches replay(), so statistics are bit-identical.
  BranchStats stats;
  bpu::BranchRecord rec;
  bool have_last[2] = {false, false};
  bpu::ExecContext last[2];

  const std::uint64_t total = opt.warmup_branches + opt.max_branches;
  for (std::uint64_t i = 0; i < total; ++i) {
    if (!stream.next(rec)) break;
    const unsigned h = rec.ctx.hart & 1;
    if (have_last[h] && !(last[h] == rec.ctx)) {
      model.on_switch(last[h], rec.ctx);
      if (i >= opt.warmup_branches) {
        if (last[h].pid != rec.ctx.pid) {
          ++stats.context_switches;
        } else {
          ++stats.mode_switches;
        }
      }
    }
    last[h] = rec.ctx;
    have_last[h] = true;

    const bpu::AccessResult res = model.access(rec);
    if (i >= opt.warmup_branches) stats.absorb(rec, res);
  }
  return stats;
}

}  // namespace stbpu::sim
