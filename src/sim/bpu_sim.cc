#include "sim/bpu_sim.h"

namespace stbpu::sim {

BranchStats simulate_bpu(bpu::IPredictor& model, trace::BranchStream& stream,
                         const BpuSimOptions& opt) {
  BranchStats stats;
  bpu::BranchRecord rec;
  bool have_last[2] = {false, false};
  bpu::ExecContext last[2];

  const std::uint64_t total = opt.warmup_branches + opt.max_branches;
  for (std::uint64_t i = 0; i < total; ++i) {
    if (!stream.next(rec)) break;
    const unsigned h = rec.ctx.hart & 1;
    if (have_last[h] && !(last[h] == rec.ctx)) {
      model.on_switch(last[h], rec.ctx);
      if (i >= opt.warmup_branches) {
        if (last[h].pid != rec.ctx.pid) {
          ++stats.context_switches;
        } else {
          ++stats.mode_switches;
        }
      }
    }
    last[h] = rec.ctx;
    have_last[h] = true;

    const bpu::AccessResult res = model.access(rec);
    if (i >= opt.warmup_branches) stats.absorb(rec, res);
  }
  return stats;
}

}  // namespace stbpu::sim
