// Hardware circuit model for remapping-function generation (§V-A).
//
// A candidate remapping function is a layered combinational circuit built
// from the primitive pool: 4-bit S-boxes (PRESENT [10] / SPONGENT [11]),
// 3-bit S-boxes for tiling remainders, P-boxes (pure wiring permutations),
// and compression C-S boxes (XOR trees folding |m| bits to |n| < |m|).
// Each primitive carries a transistor-count cost model so candidates can be
// checked against C1: ≤ 45 transistors on the critical path (single cycle
// at 15-20 gate levels, §V-A), plus breadth/total/crossover limits.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace stbpu::remapgen {

/// Up-to-128-bit value manipulated by circuit evaluation.
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(unsigned size) : size_(size) {}
  BitVec(std::uint64_t lo, std::uint64_t hi, unsigned size) : size_(size) {
    w_[0] = lo;
    w_[1] = hi;
  }

  [[nodiscard]] bool get(unsigned i) const { return (w_[i >> 6] >> (i & 63)) & 1; }
  void set(unsigned i, bool v) {
    const std::uint64_t m = std::uint64_t{1} << (i & 63);
    if (v) {
      w_[i >> 6] |= m;
    } else {
      w_[i >> 6] &= ~m;
    }
  }
  [[nodiscard]] unsigned size() const { return size_; }
  void resize(unsigned s) {
    size_ = s;
    if (s < 128) {
      // clear bits above the new size
      for (unsigned i = s; i < 128; ++i) set(i, false);
    }
  }
  [[nodiscard]] std::uint64_t low64() const { return w_[0]; }
  [[nodiscard]] std::uint64_t word(unsigned i) const { return w_[i]; }

  [[nodiscard]] unsigned hamming(const BitVec& o) const {
    return static_cast<unsigned>(std::popcount(w_[0] ^ o.w_[0]) +
                                 std::popcount(w_[1] ^ o.w_[1]));
  }

 private:
  std::uint64_t w_[2] = {0, 0};
  unsigned size_ = 0;
};

/// Transistor cost model (standard-cell-ish): a CMOS XOR2 is 6 transistors
/// with depth ~3; a 4-bit S-box in combinational logic is ~28 transistors,
/// ~10 on its critical path; wiring (P-box) is free of transistors but pays
/// routing cost counted as crossovers.
struct CostModel {
  static constexpr unsigned kSbox4Transistors = 28;
  static constexpr unsigned kSbox4Depth = 10;
  static constexpr unsigned kSbox3Transistors = 18;
  static constexpr unsigned kSbox3Depth = 8;
  static constexpr unsigned kXor2Transistors = 6;
  static constexpr unsigned kXor2Depth = 3;
};

enum class LayerKind : std::uint8_t {
  kSubstitution,
  kPermutation,
  kCompression,
  /// Width-preserving XOR row (a C-S box with |m| = |n|): out[i] =
  /// in[i] ^ in[(i+shift) mod n]. One XOR2 per bit — the cheap linear
  /// diffusion that carries single-nibble differences across the word,
  /// which S-boxes and wiring alone cannot do fast enough.
  kXorMix,
};

struct Layer {
  LayerKind kind = LayerKind::kSubstitution;
  unsigned in_width = 0;
  unsigned out_width = 0;
  /// Substitution: S-box id per 4-bit group (0 = PRESENT, 1 = SPONGENT);
  /// a trailing 3-bit group uses the 3-bit S-box.
  std::vector<std::uint8_t> sbox_choice;
  /// Permutation: out[i] = in[perm[i]].
  std::vector<std::uint16_t> perm;
  /// XorMix: rotation distance of the second operand row.
  unsigned shift = 0;

  [[nodiscard]] unsigned transistors() const;
  [[nodiscard]] unsigned critical_path() const;
  [[nodiscard]] unsigned crossovers() const;  ///< inversions (permutation only)
  [[nodiscard]] std::string describe() const;
};

/// Hardware constraints of §V-A (inputs to the generator).
struct HwConstraints {
  unsigned max_critical_path_transistors = 45;
  unsigned max_parallel_transistors = 2048;  ///< breadth per layer
  unsigned max_total_transistors = 12000;
  unsigned max_layers = 9;
  unsigned min_layers = 4;
  unsigned max_wire_crossover = 8192;
};

class Circuit {
 public:
  Circuit(unsigned in_bits, unsigned out_bits) : in_bits_(in_bits), out_bits_(out_bits) {}

  [[nodiscard]] unsigned input_bits() const { return in_bits_; }
  [[nodiscard]] unsigned output_bits() const { return out_bits_; }
  [[nodiscard]] const std::vector<Layer>& layers() const { return layers_; }
  [[nodiscard]] unsigned current_width() const {
    return layers_.empty() ? in_bits_ : layers_.back().out_width;
  }

  void push(Layer l) { layers_.push_back(std::move(l)); }

  [[nodiscard]] unsigned total_transistors() const;
  [[nodiscard]] unsigned critical_path_transistors() const;
  [[nodiscard]] unsigned max_breadth() const;
  [[nodiscard]] unsigned total_crossovers() const;
  [[nodiscard]] bool satisfies(const HwConstraints& hw) const;
  [[nodiscard]] bool complete() const { return current_width() == out_bits_; }

  /// Evaluate the circuit on an input value.
  [[nodiscard]] BitVec evaluate(const BitVec& in) const;
  /// Convenience: evaluate on packed 128-bit input, returning low output.
  [[nodiscard]] std::uint64_t evaluate64(std::uint64_t lo, std::uint64_t hi) const {
    return evaluate(BitVec(lo, hi, in_bits_)).low64();
  }

  [[nodiscard]] std::string describe() const;

 private:
  unsigned in_bits_;
  unsigned out_bits_;
  std::vector<Layer> layers_;
};

}  // namespace stbpu::remapgen
