#include "remapgen/search.h"

namespace stbpu::remapgen {

std::vector<RemapSpec> table2_specs() {
  return {
      {.name = "R1", .input_bits = 80, .output_bits = 22},   // 32ψ+48s → 9+8+5
      {.name = "R2", .input_bits = 90, .output_bits = 8},    // 32ψ+58BHB → 8
      {.name = "R3", .input_bits = 80, .output_bits = 14},   // 32ψ+48s → 14
      {.name = "R4", .input_bits = 96, .output_bits = 14},   // 32ψ+16GHR+48s → 14
      {.name = "Rt", .input_bits = 112, .output_bits = 25},  // +L(GHR) → 13+12
      {.name = "Rp", .input_bits = 80, .output_bits = 10},   // 32ψ+48s → 10
  };
}

SearchResult search(const RemapSpec& spec, const SearchConfig& cfg) {
  SearchResult out;
  out.spec = spec;
  Generator gen(cfg.generator, cfg.seed ^ (spec.input_bits * 131 + spec.output_bits));

  double best_score = 1e100;
  for (unsigned i = 0; i < cfg.candidates; ++i) {
    auto candidate = gen.generate(spec.input_bits, spec.output_bits);
    if (!candidate) continue;
    ++out.generated;
    const ValidationReport rep = validate(*candidate, cfg.validation);
    if (!rep.pass) continue;
    ++out.passed;
    if (rep.score < best_score) {
      best_score = rep.score;
      out.best = std::move(*candidate);
      out.best_report = rep;
    }
  }
  out.discarded = gen.discarded();
  return out;
}

}  // namespace stbpu::remapgen
