// Validation of candidate remapping functions against C2 (uniformity,
// balls-and-bins coefficient of variation [60]) and C3 (strict avalanche
// criterion), plus the Eq. (1) weighted score used for final selection
// (§V-A "Validation" and §V-B "Optimization and Remapping Selection").
#pragma once

#include <cstdint>

#include "remapgen/circuit.h"

namespace stbpu::remapgen {

struct ValidationConfig {
  std::uint64_t uniformity_samples = 1 << 16;
  std::uint64_t avalanche_samples = 1 << 10;  ///< inputs λ (paper uses 1M)
  std::uint64_t seed = 0x7A11D;
};

struct ValidationReport {
  // C2 — uniformity.
  double bin_cv = 0.0;        ///< CV of output bin loads
  double ideal_bin_cv = 0.0;  ///< CV a perfect uniform hash would show
  // C3 — avalanche.
  double mean_avalanche = 0.0;     ///< mean output-flip fraction (ideal 0.5)
  double avalanche_cv = 0.0;       ///< CV of per-λ hamming distances (ideal 0)
  double per_bit_spread = 0.0;     ///< max-min per-output-bit flip rate (ideal 0)
  // Eq. (1): equal-weight sum of normalized metric deviations (0 = ideal).
  double score = 0.0;
  bool pass = false;

  [[nodiscard]] bool uniform() const { return bin_cv <= 1.5 * ideal_bin_cv + 1e-9; }
  [[nodiscard]] bool avalanche_ok() const {
    return mean_avalanche > 0.45 && mean_avalanche < 0.55 && avalanche_cv < 0.25 &&
           per_bit_spread < 0.35;
  }
};

ValidationReport validate(const Circuit& c, const ValidationConfig& cfg);

}  // namespace stbpu::remapgen
