#include "remapgen/circuit.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace stbpu::remapgen {

namespace {
// PRESENT [10] and SPONGENT [11] 4-bit S-boxes; a 3-bit S-box (from the
// inverse-in-GF(2^3) family) tiles widths not divisible by 4.
constexpr std::array<std::uint8_t, 16> kSbox4[2] = {
    {0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2},
    {0xE, 0xD, 0xB, 0x0, 0x2, 0x1, 0x4, 0xF, 0x7, 0xA, 0x8, 0x5, 0x9, 0xC, 0x3, 0x6}};
constexpr std::array<std::uint8_t, 8> kSbox3 = {0x3, 0x6, 0x5, 0x1, 0x7, 0x2, 0x0, 0x4};
}  // namespace

unsigned Layer::transistors() const {
  switch (kind) {
    case LayerKind::kSubstitution: {
      unsigned t = 0;
      unsigned covered = 0;
      for (std::size_t g = 0; g < sbox_choice.size(); ++g) {
        if (covered + 4 <= in_width) {
          t += CostModel::kSbox4Transistors;
          covered += 4;
        } else {
          t += CostModel::kSbox3Transistors;
          covered += 3;
        }
      }
      return t;
    }
    case LayerKind::kPermutation:
      return 0;  // wiring
    case LayerKind::kCompression: {
      // out[j] folds ceil(in/out) inputs: (fan_in - 1) XOR2 gates each.
      const unsigned fan_in = (in_width + out_width - 1) / out_width;
      return out_width * (fan_in - 1) * CostModel::kXor2Transistors;
    }
    case LayerKind::kXorMix:
      return out_width * CostModel::kXor2Transistors;
  }
  return 0;
}

unsigned Layer::critical_path() const {
  switch (kind) {
    case LayerKind::kSubstitution:
      return CostModel::kSbox4Depth;
    case LayerKind::kPermutation:
      return 0;
    case LayerKind::kCompression: {
      const unsigned fan_in = (in_width + out_width - 1) / out_width;
      // Balanced XOR tree: ceil(log2(fan_in)) levels.
      const unsigned levels =
          fan_in <= 1 ? 0 : static_cast<unsigned>(std::bit_width(fan_in - 1));
      return levels * CostModel::kXor2Depth;
    }
    case LayerKind::kXorMix:
      return CostModel::kXor2Depth;
  }
  return 0;
}

unsigned Layer::crossovers() const {
  if (kind != LayerKind::kPermutation) return 0;
  // Inversion count — the planar-routing proxy for wire crossings.
  unsigned inv = 0;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    for (std::size_t j = i + 1; j < perm.size(); ++j) {
      if (perm[i] > perm[j]) ++inv;
    }
  }
  return inv;
}

std::string Layer::describe() const {
  std::ostringstream os;
  switch (kind) {
    case LayerKind::kSubstitution: {
      unsigned p = 0, s = 0, three = 0;
      unsigned covered = 0;
      for (std::size_t g = 0; g < sbox_choice.size(); ++g) {
        if (covered + 4 <= in_width) {
          (sbox_choice[g] == 0 ? p : s) += 1;
          covered += 4;
        } else {
          ++three;
          covered += 3;
        }
      }
      os << "S-layer " << in_width << "b: " << p << "x PRESENT-4, " << s
         << "x SPONGENT-4";
      if (three) os << ", " << three << "x 3-bit";
      break;
    }
    case LayerKind::kPermutation:
      os << "P-layer " << in_width << "b: wiring, " << crossovers() << " crossovers";
      break;
    case LayerKind::kCompression:
      os << "C-S layer " << in_width << "b -> " << out_width << "b (XOR fold)";
      break;
    case LayerKind::kXorMix:
      os << "C-S mix " << in_width << "b (XOR row, shift " << shift << ")";
      break;
  }
  os << "  [" << transistors() << " T, depth " << critical_path() << "]";
  return os.str();
}

unsigned Circuit::total_transistors() const {
  unsigned t = 0;
  for (const auto& l : layers_) t += l.transistors();
  return t;
}

unsigned Circuit::critical_path_transistors() const {
  unsigned t = 0;
  for (const auto& l : layers_) t += l.critical_path();
  return t;
}

unsigned Circuit::max_breadth() const {
  unsigned b = 0;
  for (const auto& l : layers_) b = std::max(b, l.transistors());
  return b;
}

unsigned Circuit::total_crossovers() const {
  unsigned c = 0;
  for (const auto& l : layers_) c += l.crossovers();
  return c;
}

bool Circuit::satisfies(const HwConstraints& hw) const {
  return critical_path_transistors() <= hw.max_critical_path_transistors &&
         max_breadth() <= hw.max_parallel_transistors &&
         total_transistors() <= hw.max_total_transistors &&
         layers_.size() <= hw.max_layers && total_crossovers() <= hw.max_wire_crossover;
}

BitVec Circuit::evaluate(const BitVec& in) const {
  BitVec cur = in;
  for (const auto& l : layers_) {
    BitVec next(l.out_width);
    switch (l.kind) {
      case LayerKind::kSubstitution: {
        unsigned covered = 0;
        for (std::size_t g = 0; g < l.sbox_choice.size(); ++g) {
          if (covered + 4 <= l.in_width) {
            unsigned v = 0;
            for (unsigned b = 0; b < 4; ++b) v |= cur.get(covered + b) << b;
            const unsigned s = kSbox4[l.sbox_choice[g] & 1][v];
            for (unsigned b = 0; b < 4; ++b) next.set(covered + b, (s >> b) & 1);
            covered += 4;
          } else {
            unsigned v = 0;
            const unsigned w = l.in_width - covered;  // 1..3 trailing bits
            for (unsigned b = 0; b < w; ++b) v |= cur.get(covered + b) << b;
            const unsigned s = kSbox3[v & 7];
            for (unsigned b = 0; b < w; ++b) next.set(covered + b, (s >> b) & 1);
            covered += w;
          }
        }
        break;
      }
      case LayerKind::kPermutation:
        for (unsigned i = 0; i < l.out_width; ++i) next.set(i, cur.get(l.perm[i]));
        break;
      case LayerKind::kCompression:
        for (unsigned i = 0; i < l.in_width; ++i) {
          const unsigned j = i % l.out_width;
          next.set(j, next.get(j) ^ cur.get(i));
        }
        break;
      case LayerKind::kXorMix:
        for (unsigned i = 0; i < l.out_width; ++i) {
          next.set(i, cur.get(i) ^ cur.get((i + l.shift) % l.in_width));
        }
        break;
    }
    cur = next;
  }
  return cur;
}

std::string Circuit::describe() const {
  std::ostringstream os;
  os << "circuit " << in_bits_ << "b -> " << out_bits_ << "b, " << layers_.size()
     << " layers, " << total_transistors() << " transistors total, critical path "
     << critical_path_transistors() << " transistors, " << total_crossovers()
     << " crossovers\n";
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    os << "  stage " << (i + 1) << ": " << layers_[i].describe() << "\n";
  }
  return os.str();
}

}  // namespace stbpu::remapgen
