#include "remapgen/generator.h"

#include <algorithm>

namespace stbpu::remapgen {

Layer Generator::make_substitution(unsigned width) {
  Layer l;
  l.kind = LayerKind::kSubstitution;
  l.in_width = l.out_width = width;
  unsigned covered = 0;
  while (covered < width) {
    l.sbox_choice.push_back(static_cast<std::uint8_t>(rng_.below(2)));
    covered += (covered + 4 <= width) ? 4 : (width - covered);
  }
  return l;
}

Layer Generator::make_permutation(unsigned width) {
  Layer l;
  l.kind = LayerKind::kPermutation;
  l.in_width = l.out_width = width;
  l.perm.resize(width);
  for (unsigned i = 0; i < width; ++i) l.perm[i] = static_cast<std::uint16_t>(i);
  // Fisher–Yates with the generator's RNG (the "pin mappings generated
  // randomly by our remap function generator" of §V-B).
  for (unsigned i = width; i > 1; --i) {
    std::swap(l.perm[i - 1], l.perm[rng_.below(i)]);
  }
  return l;
}

Layer Generator::make_compression(unsigned width, unsigned out_bits,
                                  unsigned layers_left) {
  Layer l;
  l.kind = LayerKind::kCompression;
  l.in_width = width;
  // Compress either all the way (if this is the last chance) or by roughly
  // half, never below the target output width.
  unsigned target = std::max(out_bits, width / 2);
  if (layers_left <= 2) target = out_bits;
  l.out_width = target;
  return l;
}

Layer Generator::make_xormix(unsigned width) {
  Layer l;
  l.kind = LayerKind::kXorMix;
  l.in_width = l.out_width = width;
  // A shift coprime-ish to the width carries nibble-local differences
  // across S-box group boundaries.
  l.shift = 1 + static_cast<unsigned>(rng_.range(width / 4, width - 2));
  return l;
}

std::optional<Circuit> Generator::generate(unsigned in_bits, unsigned out_bits) {
  for (unsigned attempt = 0; attempt < cfg_.max_attempts_per_candidate; ++attempt) {
    Circuit c(in_bits, out_bits);
    // Adaptive weights: substitution, permutation/mix, compression.
    double w_sub = 0.40, w_mix = 0.35, w_comp = 0.25;
    unsigned substitutions = 0;
    bool dead = false;
    while (!c.complete()) {
      if (c.layers().size() >= cfg_.hw.max_layers) {
        dead = true;  // ran out of layers before reaching the output width
        break;
      }
      const unsigned width = c.current_width();
      const unsigned layers_left =
          cfg_.hw.max_layers - static_cast<unsigned>(c.layers().size());

      Layer l;
      const double u = rng_.uniform() * (w_sub + w_mix + w_comp);
      const bool must_compress =
          width > out_bits &&
          layers_left <= 2;  // final layers must land on the output width
      const bool last_was_sub =
          !c.layers().empty() && c.layers().back().kind == LayerKind::kSubstitution;
      if (must_compress || (width > out_bits && u >= w_sub + w_mix)) {
        l = make_compression(width, out_bits, layers_left);
      } else if (u < w_sub && !last_was_sub) {
        // Two substitutions back-to-back compose into one S-box — the
        // diffusion must come between them.
        l = make_substitution(width);
        ++substitutions;
      } else {
        // Diffusion: alternate wiring permutations with XOR rows; the XOR
        // rows are what actually propagate differences across the word.
        l = rng_.chance(0.6) ? make_xormix(width) : make_permutation(width);
      }
      c.push(std::move(l));

      if (!c.satisfies(cfg_.hw)) {
        dead = true;  // scenario (ii): discard
        break;
      }
      // Scenario (iii): still incomplete — raise compression weight in
      // proportion to how much width must still be shed.
      const double excess =
          static_cast<double>(c.current_width()) / std::max(1u, out_bits);
      w_comp = 0.25 + std::min(0.55, 0.15 * excess);
    }
    // A candidate needs at least two separated S-layers for any nonlinear
    // avalanche; fewer can never pass C3.
    if (dead || c.layers().size() < cfg_.hw.min_layers || substitutions < 2) {
      ++discarded_;
      continue;
    }
    if (c.complete() && c.satisfies(cfg_.hw)) return c;  // scenario (i)
    ++discarded_;
  }
  return std::nullopt;
}

}  // namespace stbpu::remapgen
