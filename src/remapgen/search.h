// Full §V pipeline: generate candidates under the hardware constraints,
// validate C2/C3, score with Eq. (1), and select the best circuit for each
// remapping-function specification of Table II.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "remapgen/generator.h"
#include "remapgen/validate.h"

namespace stbpu::remapgen {

/// Table II I/O specification of one remapping function.
struct RemapSpec {
  std::string name;
  unsigned input_bits = 80;
  unsigned output_bits = 22;
};

/// The six specs of Table II (R1..R4, Rt, Rp). Rt is listed at its widest
/// output (13-bit index + 12-bit tag, the 64KB TAGE configuration).
[[nodiscard]] std::vector<RemapSpec> table2_specs();

struct SearchConfig {
  GeneratorConfig generator{};
  ValidationConfig validation{};
  unsigned candidates = 24;  ///< validated candidates per spec
  std::uint64_t seed = 0x5EA2C4;
};

struct SearchResult {
  RemapSpec spec;
  std::optional<Circuit> best;
  ValidationReport best_report{};
  unsigned generated = 0;
  unsigned passed = 0;
  std::uint64_t discarded = 0;  ///< constraint-violating partial designs
};

/// Run the search for one spec.
SearchResult search(const RemapSpec& spec, const SearchConfig& cfg);

}  // namespace stbpu::remapgen
