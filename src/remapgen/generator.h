// Randomized layer-by-layer circuit generation (§V-A "Automated Remap
// Generation Algorithm"): compose candidate remapping functions from the
// primitive pool, testing constraints after every layer. Outcomes per
// round: (i) complete and constraint-satisfying → candidate; (ii) violates
// a constraint → discard; (iii) incomplete → adapt the layer-kind weights
// (e.g. favour compression when width must still fall) and continue.
#pragma once

#include <optional>

#include "remapgen/circuit.h"
#include "util/rng.h"

namespace stbpu::remapgen {

struct GeneratorConfig {
  HwConstraints hw{};
  unsigned max_attempts_per_candidate = 64;
};

class Generator {
 public:
  Generator(const GeneratorConfig& cfg, std::uint64_t seed) : cfg_(cfg), rng_(seed) {}

  /// Generate one constraint-satisfying candidate (or nullopt if the
  /// attempt budget is exhausted).
  std::optional<Circuit> generate(unsigned in_bits, unsigned out_bits);

  [[nodiscard]] std::uint64_t discarded() const { return discarded_; }

 private:
  Layer make_substitution(unsigned width);
  Layer make_permutation(unsigned width);
  Layer make_compression(unsigned width, unsigned out_bits, unsigned layers_left);
  Layer make_xormix(unsigned width);

  GeneratorConfig cfg_;
  util::Xoshiro256 rng_;
  std::uint64_t discarded_ = 0;
};

}  // namespace stbpu::remapgen
