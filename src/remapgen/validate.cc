#include "remapgen/validate.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace stbpu::remapgen {

namespace {
BitVec random_input(util::Xoshiro256& rng, unsigned bits) {
  return BitVec(rng(), rng(), bits);
}
}  // namespace

ValidationReport validate(const Circuit& c, const ValidationConfig& cfg) {
  ValidationReport rep;
  util::Xoshiro256 rng(cfg.seed);
  const unsigned out_bits = c.output_bits();

  // --- C2: balls-and-bins uniformity --------------------------------------
  const unsigned bin_bits = std::min(out_bits, 12u);
  const std::size_t bins = std::size_t{1} << bin_bits;
  std::vector<double> load(bins, 0.0);
  for (std::uint64_t i = 0; i < cfg.uniformity_samples; ++i) {
    const BitVec out = c.evaluate(random_input(rng, c.input_bits()));
    load[out.low64() & (bins - 1)] += 1.0;
  }
  rep.bin_cv = util::coefficient_of_variation(load);
  const double mean_load =
      static_cast<double>(cfg.uniformity_samples) / static_cast<double>(bins);
  rep.ideal_bin_cv = 1.0 / std::sqrt(mean_load);  // Poisson loads

  // --- C3: strict avalanche criterion --------------------------------------
  std::vector<double> per_lambda_hd;
  per_lambda_hd.reserve(cfg.avalanche_samples);
  std::vector<double> bit_flips(out_bits, 0.0);
  double flip_trials = 0.0;
  for (std::uint64_t i = 0; i < cfg.avalanche_samples; ++i) {
    const BitVec x = random_input(rng, c.input_bits());
    const BitVec fx = c.evaluate(x);
    double hd_sum = 0.0;
    for (unsigned b = 0; b < c.input_bits(); ++b) {
      BitVec flipped = x;
      flipped.set(b, !x.get(b));
      const BitVec fy = c.evaluate(flipped);
      hd_sum += fx.hamming(fy);
      for (unsigned ob = 0; ob < out_bits; ++ob) {
        if (fx.get(ob) != fy.get(ob)) bit_flips[ob] += 1.0;
      }
      flip_trials += 1.0;
    }
    per_lambda_hd.push_back(hd_sum / c.input_bits() / out_bits);
  }
  rep.mean_avalanche = util::mean(per_lambda_hd);
  rep.avalanche_cv = util::coefficient_of_variation(per_lambda_hd);
  double mn = 1.0, mx = 0.0;
  for (unsigned ob = 0; ob < out_bits; ++ob) {
    const double f = bit_flips[ob] / flip_trials;
    mn = std::min(mn, f);
    mx = std::max(mx, f);
  }
  rep.per_bit_spread = mx - mn;

  // --- Eq. (1): equal-weight normalized score ------------------------------
  const double uni_term =
      std::max(0.0, rep.bin_cv / std::max(rep.ideal_bin_cv, 1e-12) - 1.0);
  const double mean_term = std::abs(rep.mean_avalanche - 0.5) / 0.5;
  const double cv_term = rep.avalanche_cv;
  const double spread_term = rep.per_bit_spread;
  rep.score = uni_term + mean_term + cv_term + spread_term;
  rep.pass = rep.uniform() && rep.avalanche_ok();
  return rep;
}

}  // namespace stbpu::remapgen
