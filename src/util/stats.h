// Small statistics helpers used by validation (remapgen C2/C3 metrics) and
// by the benches (normalized accuracy/IPC aggregation, harmonic means for
// SMT throughput per Michaud's recommendation cited in the paper).
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

namespace stbpu::util {

inline double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

inline double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

inline double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

/// Coefficient of variation — the paper's uniformity metric for the
/// balls-and-bins analysis (C2) and avalanche dispersion (C3).
inline double coefficient_of_variation(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / m;
}

/// Harmonic mean — used for SMT throughput (paper §VII-B2, [49]).
inline double harmonic_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    s += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / s;
}

/// Convenience overloads for vectors.
inline double mean(const std::vector<double>& xs) { return mean(std::span{xs}); }
inline double stddev(const std::vector<double>& xs) { return stddev(std::span{xs}); }
inline double coefficient_of_variation(const std::vector<double>& xs) {
  return coefficient_of_variation(std::span{xs});
}
inline double harmonic_mean(const std::vector<double>& xs) {
  return harmonic_mean(std::span{xs});
}

/// Online mean/min/max accumulator for streaming measurements.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }
  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double cv() const { return mean_ == 0.0 ? 0.0 : stddev() / mean_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace stbpu::util
