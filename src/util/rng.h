// Deterministic pseudo-random number generation for the whole simulator.
//
// The paper assumes STs are fetched "from low-latency in-chip pseudo-random
// number generator" (RDRAND-class). For reproducible experiments every
// random source in this repository is an explicitly seeded xoshiro256**
// instance; nothing reads global entropy. This is the substitution noted in
// DESIGN.md §1.3.
#pragma once

#include <cstdint>
#include <limits>

#include "util/bits.h"

namespace stbpu::util {

/// SplitMix64 — used to expand a single seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna) — fast, high-quality, deterministic.
/// Satisfies UniformRandomBitGenerator so it composes with <random> if needed.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x5742505553544250ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl64(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl64(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire reduction).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // 128-bit multiply keeps the distribution exactly uniform for the bound
    // sizes used here (all < 2^48).
    __extension__ using u128 = unsigned __int128;
    const u128 m = static_cast<u128>(operator()()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

 private:
  std::uint64_t state_[4]{};
};

}  // namespace stbpu::util
