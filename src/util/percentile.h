// Streaming p50/p99 accumulator: a fixed-budget reservoir (Vitter's
// Algorithm R) over doubles. Under the budget it holds every sample, so
// quantiles are exact nearest-rank; past the budget each new sample
// replaces a uniformly chosen slot, keeping an unbiased uniform sample of
// the whole stream. All randomness comes from an explicitly seeded
// Xoshiro256, so two reservoirs fed the same stream with the same seed
// report bit-identical quantiles — the tenant_churn tail metrics depend on
// that for the CI compare gate.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace stbpu::util {

class PercentileReservoir {
 public:
  static constexpr std::size_t kDefaultBudget = 4096;

  explicit PercentileReservoir(std::size_t budget = kDefaultBudget,
                               std::uint64_t seed = 0x9E11E5)
      : budget_(budget == 0 ? 1 : budget), rng_(seed) {
    samples_.reserve(std::min<std::size_t>(budget_, 1u << 16));
  }

  void add(double x) {
    ++n_;
    if (samples_.size() < budget_) {
      samples_.push_back(x);
    } else {
      // Algorithm R: sample i (1-based) survives with probability budget/i.
      const std::uint64_t j = rng_.below(n_);
      if (j < budget_) samples_[static_cast<std::size_t>(j)] = x;
    }
    sorted_ = false;
  }

  /// Samples offered so far (not the retained count).
  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  /// True while every offered sample is retained (quantiles are exact).
  [[nodiscard]] bool exact() const noexcept { return n_ <= budget_; }

  /// Nearest-rank quantile over the retained samples; 0.0 when empty.
  [[nodiscard]] double quantile(double q) const {
    if (samples_.empty()) return 0.0;
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    const double m = static_cast<double>(samples_.size());
    const double rank = std::ceil(std::clamp(q, 0.0, 1.0) * m);
    const std::size_t idx = rank < 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
    return samples_[std::min(idx, samples_.size() - 1)];
  }

  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p99() const { return quantile(0.99); }

 private:
  std::size_t budget_;
  Xoshiro256 rng_;
  std::uint64_t n_ = 0;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace stbpu::util
