// N-bit saturating counters — the finite-state machines behind the PHT,
// TAGE useful/confidence counters and the perceptron training threshold.
#pragma once

#include <cstdint>

#include "util/bits.h"

namespace stbpu::util {

/// Unsigned saturating counter with `Bits` bits.
/// For a 2-bit counter the states are the classic strongly-not-taken (0),
/// weakly-not-taken (1), weakly-taken (2), strongly-taken (3).
template <unsigned Bits>
class SaturatingCounter {
  static_assert(Bits >= 1 && Bits <= 8, "counter width out of range");

 public:
  static constexpr std::uint8_t kMax = static_cast<std::uint8_t>(mask(Bits));
  static constexpr std::uint8_t kWeaklyTaken = (kMax >> 1) + 1;

  constexpr SaturatingCounter() noexcept = default;
  explicit constexpr SaturatingCounter(std::uint8_t v) noexcept
      : value_(v > kMax ? kMax : v) {}

  constexpr void increment() noexcept {
    if (value_ < kMax) ++value_;
  }
  constexpr void decrement() noexcept {
    if (value_ > 0) --value_;
  }
  constexpr void update(bool taken) noexcept { taken ? increment() : decrement(); }

  [[nodiscard]] constexpr bool taken() const noexcept { return value_ >= kWeaklyTaken; }
  [[nodiscard]] constexpr bool is_saturated() const noexcept {
    return value_ == 0 || value_ == kMax;
  }
  [[nodiscard]] constexpr std::uint8_t raw() const noexcept { return value_; }
  constexpr void set_raw(std::uint8_t v) noexcept { value_ = v > kMax ? kMax : v; }
  constexpr void reset(bool taken_bias) noexcept {
    value_ = taken_bias ? kWeaklyTaken : kWeaklyTaken - 1;
  }

 private:
  std::uint8_t value_ = kWeaklyTaken - 1;  // weakly not-taken reset state
};

/// Signed saturating counter in [-2^(Bits-1), 2^(Bits-1)-1]; used by TAGE
/// prediction counters and the statistical corrector.
template <unsigned Bits>
class SignedSaturatingCounter {
  static_assert(Bits >= 2 && Bits <= 16, "counter width out of range");

 public:
  static constexpr int kMax = (1 << (Bits - 1)) - 1;
  static constexpr int kMin = -(1 << (Bits - 1));

  constexpr SignedSaturatingCounter() noexcept = default;
  explicit constexpr SignedSaturatingCounter(int v) noexcept { set(v); }

  constexpr void update(bool taken) noexcept {
    if (taken) {
      if (value_ < kMax) ++value_;
    } else {
      if (value_ > kMin) --value_;
    }
  }

  [[nodiscard]] constexpr bool taken() const noexcept { return value_ >= 0; }
  [[nodiscard]] constexpr int value() const noexcept { return value_; }
  [[nodiscard]] constexpr int magnitude() const noexcept {
    return value_ >= 0 ? value_ : -value_;
  }
  /// Confidence: |2c+1| relative to the max, as used by TAGE-SC-L.
  [[nodiscard]] constexpr bool high_confidence() const noexcept {
    return value_ == kMax || value_ == kMin;
  }
  constexpr void set(int v) noexcept {
    value_ = static_cast<std::int16_t>(v > kMax ? kMax : (v < kMin ? kMin : v));
  }

 private:
  std::int16_t value_ = 0;
};

}  // namespace stbpu::util
