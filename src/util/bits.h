// Bit-manipulation helpers shared by BPU structures, remapping functions and
// the remap-circuit generator. All helpers are constexpr and branch-free
// where possible since they sit on the simulator's hottest paths.
#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>

namespace stbpu::util {

/// Extract `width` bits of `value` starting at bit `lo` (LSB = bit 0).
constexpr std::uint64_t bits(std::uint64_t value, unsigned lo, unsigned width) noexcept {
  if (width == 0) return 0;
  if (width >= 64) return value >> lo;
  return (value >> lo) & ((std::uint64_t{1} << width) - 1);
}

/// Mask with the low `width` bits set.
constexpr std::uint64_t mask(unsigned width) noexcept {
  return width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
}

/// XOR-fold `value` down to `width` bits (classic hardware compressor).
constexpr std::uint64_t fold_xor(std::uint64_t value, unsigned width) noexcept {
  if (width == 0) return 0;
  std::uint64_t out = 0;
  while (value != 0) {
    out ^= value & mask(width);
    value >>= width;
  }
  return out;
}

constexpr std::uint64_t rotl64(std::uint64_t v, unsigned r) noexcept {
  return std::rotl(v, static_cast<int>(r & 63u));
}

constexpr std::uint64_t rotr64(std::uint64_t v, unsigned r) noexcept {
  return std::rotr(v, static_cast<int>(r & 63u));
}

/// Hamming distance between two words.
constexpr unsigned hamming(std::uint64_t a, std::uint64_t b) noexcept {
  return static_cast<unsigned>(std::popcount(a ^ b));
}

/// Sign-extend the low `width` bits of `v`.
constexpr std::int64_t sign_extend(std::uint64_t v, unsigned width) noexcept {
  const std::uint64_t m = std::uint64_t{1} << (width - 1);
  const std::uint64_t x = v & mask(width);
  return static_cast<std::int64_t>((x ^ m) - m);
}

/// Next power of two >= v (v > 0).
constexpr std::uint64_t next_pow2(std::uint64_t v) noexcept {
  return std::bit_ceil(v);
}

constexpr bool is_pow2(std::uint64_t v) noexcept { return std::has_single_bit(v); }

/// log2 of a power of two.
constexpr unsigned log2_pow2(std::uint64_t v) noexcept {
  return static_cast<unsigned>(std::countr_zero(v));
}

}  // namespace stbpu::util
