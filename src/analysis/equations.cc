#include "analysis/equations.h"

#include <cmath>
#include <numbers>

namespace stbpu::analysis {

namespace {
/// Birthday factor √(π/2 · x): the expected number of uniform draws from a
/// space of size x before the first repeat is √(π/2·x) (Raab & Steger
/// style approximation used by the paper).
double birthday(double x) { return std::sqrt(std::numbers::pi / 2.0 * x); }
}  // namespace

ReuseCost btb_reuse_cost(const BtbGeometry& g) {
  ReuseCost c;
  const double to = g.tag_space * g.offset_space;
  c.set_size_n = g.sets * to / 2.0;
  // M ≈ [n(n+1)/2] / (√(π/2·I) · √(π/2·TO))   (Eq. 2)
  c.mispredictions_m =
      c.set_size_n * (c.set_size_n + 1.0) / 2.0 / (birthday(g.sets) * birthday(to));
  // E ≈ I·T·O/2 − I·W
  c.evictions_e = std::max(0.0, g.sets * to / 2.0 - g.sets * g.ways);
  return c;
}

ReuseCost pht_reuse_cost(const PhtGeometry& g) {
  ReuseCost c;
  // n = I·TOeff/2 with TOeff = 2 ⇒ n = I (the full counter count).
  c.set_size_n = g.sets * g.effective_tag_offset / 2.0;
  // Only the set-collision birthday factor applies (no tags to compare).
  c.mispredictions_m =
      c.set_size_n * (c.set_size_n + 1.0) / 2.0 / birthday(g.sets);
  c.evictions_e = 0.0;  // PHT entries are not evicted, only perturbed
  return c;
}

double naive_eviction_set_probability(const BtbGeometry& g) {
  // Eq. (3): P(Se) = (1/I)^(W-1).
  return std::pow(1.0 / g.sets, g.ways - 1.0);
}

double gem_eviction_cost(const BtbGeometry& g, double p) {
  // Eq. (4): E ≈ P·I × (P·I·W + (W+1)·(1 − 1/e)·3).
  const double pi_sets = p * g.sets;
  return pi_sets *
         (pi_sets * g.ways + (g.ways + 1.0) * (1.0 - 1.0 / std::numbers::e) * 3.0);
}

double injection_attempts(double target_space) { return target_space / 2.0; }

std::vector<AttackComplexityRow> section_vi5_table() {
  const BtbGeometry btb{};
  const PhtGeometry pht{};
  const ReuseCost btb_reuse = btb_reuse_cost(btb);
  const ReuseCost pht_reuse = pht_reuse_cost(pht);
  return {
      {"BTB reuse-based side channel", btb_reuse.mispredictions_m,
       btb_reuse.evictions_e},
      {"PHT reuse-based side channel (BranchScope)", pht_reuse.mispredictions_m, 0.0},
      {"BTB eviction-based side channel (GEM, P=0.5)", 0.0,
       gem_eviction_cost(btb, 0.5)},
      {"Spectre v2 / SpectreRSB target injection", injection_attempts(), 0.0},
  };
}

BindingComplexity binding_complexity() {
  BindingComplexity c;
  c.mispredictions_c = pht_reuse_cost(PhtGeometry{}).mispredictions_m;
  c.evictions_c = gem_eviction_cost(BtbGeometry{}, 0.5);
  return c;
}

Thresholds derive_thresholds(double r) {
  const BindingComplexity c = binding_complexity();
  Thresholds t;
  t.mispredictions =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(r * c.mispredictions_c));
  t.evictions =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(r * c.evictions_c));
  return t;
}

}  // namespace stbpu::analysis
