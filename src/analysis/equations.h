// Closed-form security analysis of §VI: attack complexities (Equations
// (2)-(4) and the target-injection bound), the §VI-A5 numeric table for the
// Skylake-like geometry, and the re-randomization threshold derivation
// Γ = r · C of §VII-A.
//
// Calibration note (see DESIGN.md): the paper's printed PHT number
// (8.38×10^5) corresponds to a search-set size n equal to the full PHT
// entry count (i.e. an effective tag/offset space of 2 in n = I·T·O/2)
// with only the set-collision birthday factor in M. Both constants are kept
// here explicitly so the reproduction matches the paper's arithmetic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stbpu::analysis {

/// Table III parameters for a set-associative target structure.
struct BtbGeometry {
  double ways = 8;            ///< W
  double sets = 512;          ///< I
  double tag_space = 256;     ///< T = 2^tag-bits
  double offset_space = 32;   ///< O = 2^offset-bits
  double target_space = 4294967296.0;  ///< Ω = 2^32 (stored target bits)
};

struct PhtGeometry {
  double sets = 16384;  ///< I = 2^14 counters
  /// Effective T·O — the calibration constant reproducing the paper's
  /// 8.38e5 (one residual distinguishing bit; DESIGN.md §3).
  double effective_tag_offset = 2;
};

inline constexpr double kPhtEffectiveTagOffset = 2.0;

struct ReuseCost {
  double set_size_n = 0;        ///< |SB| for a 50% collision with V
  double mispredictions_m = 0;  ///< Eq. (2) M
  double evictions_e = 0;       ///< Eq. (2) E
};

/// Equation (2) for the BTB: full two-factor birthday form.
ReuseCost btb_reuse_cost(const BtbGeometry& g);

/// Equation (2) specialised to the PHT (no evictions; paper calibration).
ReuseCost pht_reuse_cost(const PhtGeometry& g);

/// Equation (3): probability of naively guessing W same-set branches.
double naive_eviction_set_probability(const BtbGeometry& g);

/// Equation (4): evictions for GEM-based eviction-set construction at
/// attack success rate P.
double gem_eviction_cost(const BtbGeometry& g, double p);

/// Target injection (Spectre v2 / SpectreRSB): expected attempts for a 50%
/// chance that an encrypted target decodes to the gadget address — Ω/2.
double injection_attempts(double target_space = 4294967296.0);

/// One row of the §VI-A5 numeric summary.
struct AttackComplexityRow {
  std::string attack;
  double mispredictions = 0;  ///< ~0 if not the binding event
  double evictions = 0;
};

/// The §VI-A5 table for the Skylake-like baseline geometry: BTB reuse
/// (M≈6.9e8, E≈2^21), PHT reuse (M≈8.38e5), BTB eviction (E≈5.3e5),
/// Spectre v2 / SpectreRSB (M≈2^31).
std::vector<AttackComplexityRow> section_vi5_table();

/// Attack complexity C: the binding (lowest) event counts over all attacks.
struct BindingComplexity {
  double mispredictions_c = 8.38e5;  ///< PHT reuse (BranchScope)
  double evictions_c = 5.3e5;        ///< BTB eviction-based channel
};
BindingComplexity binding_complexity();

/// Γ = r · C (§VII-A). r=1 ⇒ the attack has a 50% success chance before a
/// re-randomization; the paper's deployment choice is r=0.05.
struct Thresholds {
  std::uint64_t mispredictions = 0;
  std::uint64_t evictions = 0;
};
Thresholds derive_thresholds(double r);

}  // namespace stbpu::analysis
