// TAGE-SC-L conditional predictor (Seznec [67]), parameterized for the
// paper's 8KB and 64KB configurations. Structure:
//   * bimodal base table (the "base directional predictor" that reuse-based
//     attacks like BranchScope/BlueThunder target — paper §VI-A2);
//   * N partially-tagged tables indexed by geometrically growing global
//     history lengths, 3-bit prediction counters, 2-bit useful counters;
//   * a loop predictor (L) capturing constant trip counts;
//   * a lightweight GEHL-style statistical corrector (SC).
// All index/tag computation goes through the MappingProvider (Rt under
// STBPU — Table II: 10-bit index/8-bit tag for 8KB, 13/12 for 64KB), so the
// secured variant differs only in data representation.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "bpu/direction.h"
#include "bpu/mapping.h"
#include "bpu/types.h"
#include "util/rng.h"
#include "util/saturating_counter.h"

namespace stbpu::tage {

struct TageConfig {
  std::string_view name = "TAGE_SC_L_64KB";
  unsigned num_tables = 10;    ///< tagged tables
  unsigned index_bits = 13;    ///< per-table entries = 2^index_bits
  unsigned tag_bits = 12;
  unsigned min_history = 4;
  unsigned max_history = 256;
  unsigned bimodal_bits = 13;  ///< base table entries = 2^bimodal_bits
  bool use_loop_predictor = true;
  bool use_statistical_corrector = true;

  [[nodiscard]] static TageConfig kb64() { return {}; }
  [[nodiscard]] static TageConfig kb8() {
    return {.name = "TAGE_SC_L_8KB",
            .num_tables = 6,
            .index_bits = 10,
            .tag_bits = 8,
            .min_history = 4,
            .max_history = 64,
            .bimodal_bits = 12,
            .use_loop_predictor = true,
            .use_statistical_corrector = true};
  }
};

class TagePredictor final : public bpu::IDirectionPredictor {
 public:
  TagePredictor(const TageConfig& cfg, const bpu::MappingProvider* mapping,
                std::uint64_t seed = 0x7A6E);

  [[nodiscard]] bpu::DirPrediction predict(std::uint64_t ip,
                                           const bpu::ExecContext& ctx) override;
  void update(std::uint64_t ip, const bpu::ExecContext& ctx, bool taken,
              const bpu::DirPrediction& pred) override;
  void track(const bpu::BranchRecord& rec) override;
  void flush() override;
  void flush_hart(std::uint8_t hart) override;
  [[nodiscard]] std::string_view name() const override { return cfg_.name; }

  [[nodiscard]] const TageConfig& config() const noexcept { return cfg_; }

 private:
  struct TaggedEntry {
    util::SignedSaturatingCounter<3> ctr;
    std::uint32_t tag = 0;
    util::SaturatingCounter<2> useful{0};
    bool valid = false;
  };

  struct LoopEntry {
    std::uint32_t tag = 0;
    std::uint16_t past_iters = 0;     ///< learned trip count
    std::uint16_t current_iter = 0;
    util::SaturatingCounter<2> conf{0};
    bool valid = false;
  };

  /// Per-hart global history with incrementally maintained folded values
  /// (standard TAGE circular-shift-register folding).
  struct Folded {
    std::uint32_t value = 0;
    unsigned comp_length = 0;  ///< folded width
    unsigned orig_length = 0;  ///< history length
    void update(const std::vector<std::uint8_t>& hist, unsigned head);
  };
  struct HartState {
    std::vector<std::uint8_t> history;  ///< circular buffer, newest at head
    unsigned head = 0;
    std::vector<Folded> folded_index;
    std::vector<Folded> folded_tag;
    std::uint64_t path = 0;
    void push(bool taken, unsigned max_hist);
  };

  struct TableMatch {
    int table = -1;  ///< -1: bimodal
    std::uint32_t index = 0;
    bool prediction = false;
    bool weak = false;
  };

  [[nodiscard]] std::uint64_t folded_for(const HartState& hs, unsigned table,
                                         bool for_tag) const;
  [[nodiscard]] std::uint32_t bimodal_index(std::uint64_t ip,
                                            const bpu::ExecContext& ctx) const;
  void find_matches(std::uint64_t ip, const bpu::ExecContext& ctx, TableMatch& provider,
                    TableMatch& alt);
  [[nodiscard]] bool loop_predict(std::uint64_t ip, const bpu::ExecContext& ctx,
                                  bool& valid) const;
  void loop_update(std::uint64_t ip, const bpu::ExecContext& ctx, bool taken);
  [[nodiscard]] int sc_sum(std::uint64_t ip, const bpu::ExecContext& ctx,
                           bool tage_pred) const;
  void sc_update(std::uint64_t ip, const bpu::ExecContext& ctx, bool taken,
                 bool tage_pred);

  TageConfig cfg_;
  const bpu::MappingProvider* mapping_;
  std::vector<unsigned> history_lengths_;
  std::vector<std::vector<TaggedEntry>> tables_;
  std::vector<util::SaturatingCounter<2>> bimodal_;
  std::vector<LoopEntry> loop_;
  // SC: bias table + two GEHL history tables of 6-bit signed counters.
  std::vector<util::SignedSaturatingCounter<6>> sc_bias_;
  std::array<std::vector<util::SignedSaturatingCounter<6>>, 2> sc_gehl_;
  util::SignedSaturatingCounter<4> use_alt_on_na_;
  HartState harts_[2];
  util::Xoshiro256 rng_;
  std::uint32_t tick_ = 0;

  // Transient state between predict() and update() for the same branch —
  // the simulator always pairs them, matching speculative update repair.
  struct Scratch {
    TableMatch provider, alt;
    bool tage_pred = false;
    bool loop_valid = false;
    bool loop_pred = false;
    bool sc_used = false;
    bool final_pred = false;
  } scratch_;
};

}  // namespace stbpu::tage
